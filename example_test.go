package rpq_test

import (
	"fmt"
	"strings"

	"rpq"
)

// The paper's running example: find uses of uninitialized variables.
func ExampleGraph_Exist() {
	g := rpq.NewGraph()
	g.MustAddEdge("v1", "def(a)", "v2")
	g.MustAddEdge("v2", "use(a)", "v3")
	g.MustAddEdge("v3", "use(b)", "v4")
	g.SetStart("v1")

	p := rpq.MustParsePattern("(!def(x))* use(x)")
	res, err := g.Exist(p, nil)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		fmt.Println(a)
	}
	// Output:
	// v4 {x↦b}
}

// Universal queries quantify over all paths: available expressions survive
// only when computed on every path and not killed.
func ExampleGraph_Universal() {
	g := rpq.NewGraph()
	g.MustAddEdge("s", "exp(a,plus,b)", "p1")
	g.MustAddEdge("s", "exp(a,plus,b)", "p2")
	g.MustAddEdge("p1", "def(c)", "m")
	g.MustAddEdge("p2", "def(d)", "m")
	g.SetStart("s")

	p := rpq.MustParsePattern("_* exp(x,op,y) (!(def(x)|def(y)))*")
	res, err := g.Universal(p, nil)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		if a.Vertex == "m" {
			fmt.Println(a)
		}
	}
	// Output:
	// m {x↦a, op↦plus, y↦b}
}

// Backward queries run on the reversed graph; the catalog handles the
// reversal and the post-exit start vertex automatically.
func ExampleGraph_RunAnalysis() {
	g, err := rpq.FromMiniC(`
func main() {
	int a, b;
	a = b;
	b = a;
}
`, rpq.MiniCConfig{UseSites: true, EntryLoop: true})
	if err != nil {
		panic(err)
	}
	analysis, err := rpq.AnalysisByName("uninit-uses-bwd")
	if err != nil {
		panic(err)
	}
	res, err := g.RunAnalysis(analysis, nil)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		for _, bd := range a.Bindings {
			if bd.Param == "x" {
				fmt.Println("uninitialized:", bd.Symbol)
			}
		}
	}
	// Output:
	// uninitialized: b
}

// A single universal discipline specification generates one merged
// existential query catching every kind of violation (Section 5.4).
func ExampleGraph_Violations() {
	g, err := rpq.FromMiniC(`
func main() {
	open(f);
	close(f);
	access(f);
}
`, rpq.MiniCConfig{})
	if err != nil {
		panic(err)
	}
	res, err := g.Violations("(open(f) (access(f))* close(f))*", true, nil)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		fmt.Println("violation for", a.Bindings[0].Symbol)
	}
	// Output:
	// violation for f
}

// LTS model checking via the Section 2.3 transformation.
func ExampleFromAUT() {
	aut := `des (0, 3, 3)
(0, "send", 1)
(1, "i", 1)
(1, "recv", 2)
`
	g, err := rpq.FromAUT(strings.NewReader(aut), false)
	if err != nil {
		panic(err)
	}
	// States with an outgoing action; reachable states missing from the
	// result (here s2) are deadlocks.
	p := rpq.MustParsePattern("_* state(s) act(_)")
	res, err := g.Exist(p, nil)
	if err != nil {
		panic(err)
	}
	alive := map[string]bool{}
	for _, a := range res.Answers {
		alive[a.Bindings[0].Symbol] = true
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("s%d", i)
		if !alive[name] {
			fmt.Println("deadlock at", name)
		}
	}
	// Output:
	// deadlock at s2
}

// Patterns generalize XPath over XML documents (Section 5.4).
func ExampleFromXML() {
	doc := `<a><b lang="en"><b><c/></b></b></a>`
	g, err := rpq.FromXML(strings.NewReader(doc))
	if err != nil {
		panic(err)
	}
	// A tag nested directly inside itself — beyond XPath 1.0.
	res, err := g.Exist(rpq.MustParsePattern("_* child(t) child(t)"), nil)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		fmt.Println(a)
	}
	// Output:
	// b[2] {t↦b}
}

// Algorithm variants are selected through Options; all agree on the result.
func ExampleOptions() {
	g := rpq.NewGraph()
	g.MustAddEdge("v1", "acq(m)", "v2")
	g.MustAddEdge("v2", "acq(n)", "v3")
	g.SetStart("v1")
	p := rpq.MustParsePattern("_* acq(l1) (!rel(l1))* acq(l2) _*")
	for _, algo := range []rpq.Algorithm{rpq.Basic, rpq.Memo, rpq.Precompute} {
		res, err := g.Exist(p, &rpq.Options{Algorithm: algo, Table: rpq.NestedArrays})
		if err != nil {
			panic(err)
		}
		fmt.Println(algo, res.Answers[0])
	}
	// Output:
	// basic v3 {l1↦m, l2↦n}
	// memo v3 {l1↦m, l2↦n}
	// precomputation v3 {l1↦m, l2↦n}
}

// The MiniC and MiniPy front ends emit the same labels, so one automaton
// analyzes both languages (the paper's Section 6 demonstration).
func ExampleFromMiniPy() {
	g, err := rpq.FromMiniPy(`
def main():
    a = 1
    b = a + c
`, rpq.MiniPyConfig{})
	if err != nil {
		panic(err)
	}
	res, err := g.Exist(rpq.MustParsePattern("(!def(x))* use(x)"), nil)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Answers {
		fmt.Println("uninitialized:", a.Bindings[0].Symbol)
	}
	// Output:
	// uninitialized: c
}
