package rpq

import (
	"fmt"
	"strings"

	"rpq/internal/analyze"
	"rpq/internal/core"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// Diagnostic is one static-analysis finding about a query: a stable code
// (RPQ001…), a severity, the source span of the offending pattern fragment,
// a message, and usually a fix hint. docs/analysis.md documents every code.
type Diagnostic = analyze.Diagnostic

// LintSeverity grades a Diagnostic.
type LintSeverity = analyze.Severity

// Severity levels, in increasing order.
const (
	SeverityInfo    = analyze.Info
	SeverityWarning = analyze.Warning
	SeverityError   = analyze.Error
)

// Lint runs the graph-independent static checks on a pattern and returns
// the findings, sorted by source position: automaton emptiness and vacuity,
// parameter-binding dataflow (never-binding parameters, negations reached
// before a binding — the paper's Section 5.1 pitfalls), unsatisfiable
// labels, and structural redundancy. The existential reading of parameter
// binding is assumed; universal queries are linted with the appropriate
// semantics when Options.Lint gates them.
func Lint(p *Pattern) []Diagnostic {
	return analyze.Lint(p.expr, p.src, analyze.Config{})
}

// LintForGraph runs Lint plus the graph-dependent checks: constructors that
// never occur in the graph, arity mismatches, negations that exclude
// nothing or everything, graph-level emptiness, and cost-model advice. Like
// running the query, it compiles the pattern against the graph's universe.
func LintForGraph(g *Graph, p *Pattern) []Diagnostic {
	return analyze.LintForGraph(g.g, p.expr, p.src, analyze.Config{})
}

// LintQuery runs the analysis exactly as the query entry points would run
// it: with the graph-dependent checks when g is non-nil, universal
// parameter-binding semantics when universal is set, and variant advice
// derived from opts (algorithm and table choice). It is what cmd/rpq -lint
// uses, and what Options.Lint gates on.
func LintQuery(g *Graph, p *Pattern, universal bool, opts *Options) []Diagnostic {
	cfg := lintConfig(opts, universal)
	if g != nil {
		return analyze.LintForGraph(g.g, p.expr, p.src, cfg)
	}
	return analyze.Lint(p.expr, p.src, cfg)
}

// FormatDiagnostic renders a finding with a caret snippet into the
// pattern's source and the fix hint, for terminal display.
func FormatDiagnostic(d Diagnostic, p *Pattern) string {
	return analyze.Format(d, p.src)
}

// LintError is returned by the query entry points when Options.Lint is set
// and the pattern has error-severity findings; the query is rejected before
// any solving. Diags holds the full lint report (all severities).
type LintError struct {
	Diags []Diagnostic
}

// Error summarizes the error-severity findings.
func (e *LintError) Error() string {
	errs := analyze.Errors(e.Diags)
	var b strings.Builder
	fmt.Fprintf(&b, "rpq: query rejected by lint (%d error(s))", len(errs))
	for _, d := range errs {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// lintConfig derives the analyzer configuration for a run: the query kind's
// binding semantics plus the resolved algorithm/table for variant advice.
func lintConfig(opts *Options, universal bool) analyze.Config {
	cfg := analyze.Config{Universal: universal}
	if opts != nil {
		cfg.HaveVariant = true
		cfg.Table = subst.TableKind(opts.Table)
		// Map the public Algorithm the same way resolve does; Auto means
		// the recommended variant, which draws no advice.
		switch opts.Algorithm {
		case Basic:
			cfg.Algo = core.AlgoBasic
		case Enumerate:
			cfg.Algo = core.AlgoEnum
		default:
			cfg.HaveVariant = false
		}
	}
	return cfg
}

// lintForRun computes the lint report for a query entry point when anything
// will consume it: the Options.Lint gate or a watchdog bundle. It returns
// nil otherwise, keeping the default query path free of analysis cost.
func lintForRun(opts *Options, e pattern.Expr, src string, universal bool) []Diagnostic {
	if opts == nil || (!opts.Lint && !opts.Watchdog.Enabled()) {
		return nil
	}
	return analyze.Lint(e, src, lintConfig(opts, universal))
}

// gateLint enforces Options.Lint: with the flag set and error-severity
// findings present, the query is rejected with a *LintError before any
// solver work (zero worklist pops, no in-flight registration).
func gateLint(opts *Options, diags []Diagnostic) error {
	if opts != nil && opts.Lint && analyze.HasErrors(diags) {
		return &LintError{Diags: diags}
	}
	return nil
}

// lintPayload shapes the findings for the in-flight registry, which the
// watchdog marshals into bundles as lint.json; nil when there are none.
func lintPayload(diags []Diagnostic) any {
	if len(diags) == 0 {
		return nil
	}
	return diags
}
