package rpq

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rpq/internal/obs"
)

// telemetryGraph builds a graph large enough that a query over it makes
// hundreds of worklist pops (so progress callbacks fire) and allocates
// measurably.
func telemetryGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	const n = 400
	vtx := func(i int) string { return fmt.Sprintf("v%d", i) }
	for i := 0; i < n; i++ {
		g.MustAddEdge(vtx(i), fmt.Sprintf("def(x%d)", i%7), vtx(i+1))
		if i%3 == 0 {
			g.MustAddEdge(vtx(i), fmt.Sprintf("use(x%d)", i%7), vtx((i+13)%n))
		}
	}
	g.MustAddEdge(vtx(n), "use(x0)", vtx(0))
	g.SetStart(vtx(0))
	return g
}

func TestStatsResourceAttribution(t *testing.T) {
	g := telemetryGraph(t)
	p := MustParsePattern("_* use(x)")
	res, err := g.Exist(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AllocBytes <= 0 {
		t.Fatalf("Stats.AllocBytes = %d, want > 0", res.Stats.AllocBytes)
	}
	if res.Stats.CPUTime < 0 {
		t.Fatalf("Stats.CPUTime = %v, want >= 0", res.Stats.CPUTime)
	}
	// Where getrusage works, repeated runs must eventually show CPU time:
	// the counter advances at scheduler-tick granularity, so accumulate.
	if obs.ProcessCPUTime() > 0 {
		var total time.Duration
		for i := 0; i < 50 && total == 0; i++ {
			r, err := g.Exist(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += r.Stats.CPUTime
		}
		if total == 0 {
			t.Error("Stats.CPUTime stayed 0 across 50 runs on a getrusage platform")
		}
	}
}

func TestExplainAndGaugesCarryAttribution(t *testing.T) {
	g := telemetryGraph(t)
	reg := obs.NewRegistry()
	gauges := obs.NewSolverGauges(reg)
	opts := &Options{Explain: true, Gauges: gauges}
	res, err := g.Exist(MustParsePattern("_* use(x)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil {
		t.Fatal("no explain profile")
	}
	if res.Explain.AllocBytes != res.Stats.AllocBytes {
		t.Fatalf("Explain.AllocBytes = %d, Stats.AllocBytes = %d",
			res.Explain.AllocBytes, res.Stats.AllocBytes)
	}
	snap := reg.Snapshot()
	if snap["rpq_alloc_bytes_total"] <= 0 {
		t.Fatalf("rpq_alloc_bytes_total = %d, want > 0", snap["rpq_alloc_bytes_total"])
	}
	if snap["rpq_queries_total"] != 1 {
		t.Fatalf("rpq_queries_total = %d, want 1", snap["rpq_queries_total"])
	}
}

func TestSlowLogCarriesAttribution(t *testing.T) {
	g := telemetryGraph(t)
	var buf bytes.Buffer
	opts := &Options{SlowLog: NewSlowLog(&buf, 0)} // threshold 0: log everything
	if _, err := g.Exist(MustParsePattern("_* use(x)"), opts); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"alloc_bytes":`) {
		t.Fatalf("slow record missing alloc_bytes: %s", line)
	}
	if !strings.Contains(line, `"cpu_ns"`) && !strings.Contains(line, `"cpu_ms"`) {
		t.Fatalf("slow record missing cpu attribution: %s", line)
	}
}

func TestInflightSnapshotCarriesAttribution(t *testing.T) {
	g := telemetryGraph(t)
	var got atomic.Value // QuerySnapshot
	opts := &Options{Progress: func(Progress) {
		if got.Load() != nil {
			return
		}
		if qs := InflightQueries(); len(qs) > 0 {
			got.Store(qs[0])
		}
	}}
	if _, err := g.Exist(MustParsePattern("_* use(x)"), opts); err != nil {
		t.Fatal(err)
	}
	snap, ok := got.Load().(QuerySnapshot)
	if !ok {
		t.Skip("progress callback never fired (query too small)")
	}
	if snap.AllocBytes <= 0 {
		t.Fatalf("in-flight AllocBytes = %d, want > 0", snap.AllocBytes)
	}
	if snap.CPUMS < 0 {
		t.Fatalf("in-flight CPUMS = %v, want >= 0", snap.CPUMS)
	}
}

// TestGoroutineProfileHasQueryLabels asserts the pprof label plumbing
// deterministically: a goroutine profile taken while a query runs must show
// the rpq_query_id label on the solver goroutine.
func TestGoroutineProfileHasQueryLabels(t *testing.T) {
	g := telemetryGraph(t)
	var prof atomic.Value // string
	opts := &Options{Progress: func(Progress) {
		if prof.Load() != nil {
			return
		}
		var buf bytes.Buffer
		// debug=1 renders labels as "labels: {...}" per goroutine.
		pprof.Lookup("goroutine").WriteTo(&buf, 1)
		prof.Store(buf.String())
	}}
	if _, err := g.Exist(MustParsePattern("_* use(x)"), opts); err != nil {
		t.Fatal(err)
	}
	text, ok := prof.Load().(string)
	if !ok {
		t.Skip("progress callback never fired (query too small)")
	}
	for _, want := range []string{`"rpq_query_id":`, `"rpq_kind":"exist"`, `"variant":`, `"table":`, `"workers":`} {
		if !strings.Contains(text, want) {
			t.Errorf("goroutine profile missing label %s", want)
		}
	}
}

// TestCPUProfileHasQueryLabels runs a busy multi-query workload under the
// CPU profiler and checks the raw profile mentions the query-id label key.
// The profile is sample-based, so an unlucky profiler run with zero samples
// skips rather than fails.
func TestCPUProfileHasQueryLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling workload skipped in -short")
	}
	g := telemetryGraph(t)
	p := MustParsePattern("_* use(x)")
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := g.Exist(p, nil); err != nil {
			pprof.StopCPUProfile()
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("profile not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress profile: %v", err)
	}
	if len(raw) == 0 {
		t.Skip("empty CPU profile")
	}
	// Label keys are stored in the profile string table verbatim.
	if !bytes.Contains(raw, []byte("rpq_query_id")) {
		t.Error("CPU profile has no rpq_query_id label")
	}
}

func TestServeObservabilityWith(t *testing.T) {
	srv, err := ServeObservabilityWith("127.0.0.1:0", ObservabilityConfig{
		SampleInterval: 5 * time.Millisecond,
		TSInterval:     5 * time.Millisecond,
		Retention:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Server.Addr

	g := telemetryGraph(t)
	if _, err := g.Exist(MustParsePattern("_* use(x)"), &Options{Gauges: LiveGauges()}); err != nil {
		t.Fatal(err)
	}
	srv.Sampler.SampleOnce()
	srv.TS.Record()

	for _, path := range []string{"/metrics", "/debug/rpq/queries", "/debug/rpq/ts", "/debug/rpq/dash"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent (defer above runs it again harmlessly).
}

func TestObservabilityConfigDisables(t *testing.T) {
	srv, err := ServeObservabilityWith("127.0.0.1:0", ObservabilityConfig{
		SampleInterval: -1,
		TSInterval:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Sampler != nil || srv.TS != nil {
		t.Fatal("negative intervals must disable sampler and time-series store")
	}
	resp, err := http.Get("http://" + srv.Server.Addr + "/debug/rpq/ts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/debug/rpq/ts with store disabled: HTTP %d, want 501", resp.StatusCode)
	}
}
