package rpq

import (
	"strconv"
	"strings"
	"testing"
)

func TestResultFilterAndBinding(t *testing.T) {
	doc := `
<library>
  <book year="1999"><title>Old</title></book>
  <book year="2005"><title>New</title></book>
  <book><title>Undated</title></book>
</library>`
	g, err := FromXML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Exist(MustParsePattern("_* child('book') attr('year', y)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("books with a year = %d, want 2", len(res.Answers))
	}
	// A computation on the parameter value (Section 5.4): year > 2000.
	recent := res.Filter(func(a Answer) bool {
		y, err := strconv.Atoi(a.Binding("y"))
		return err == nil && y > 2000
	})
	if len(recent.Answers) != 1 || recent.Answers[0].Binding("y") != "2005" {
		t.Fatalf("recent books = %v", recent.Answers)
	}
	if recent.Stats.WorklistInserts != res.Stats.WorklistInserts {
		t.Fatalf("Filter dropped the stats")
	}
	if res.Answers[0].Binding("absent") != "" {
		t.Fatalf("Binding of absent parameter should be empty")
	}
}

func TestVertexLabels(t *testing.T) {
	g := NewGraph()
	g.MustAddEdge("v1", "step()", "v2")
	g.MustAddEdge("v2", "step()", "v3")
	g.SetStart("v1")
	ig := g.Internal()
	for _, v := range []string{"v1", "v2", "v3"} {
		if err := ig.AddVertexLabelStr(v, "mark("+v+")"); err != nil {
			t.Fatal(err)
		}
	}
	// The vertex label is readable mid-path without consuming progress.
	res, err := g.Exist(MustParsePattern("step() mark(m) step()"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding("m") != "v2" {
		t.Fatalf("vertex label query = %v", res.Answers)
	}
	if err := ig.AddVertexLabelStr("v1", "broken("); err == nil {
		t.Fatal("bad vertex label accepted")
	}
}
