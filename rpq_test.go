package rpq

import (
	"errors"
	"strings"
	"testing"
)

func figure1Graph(t *testing.T) *Graph {
	t.Helper()
	g, err := ReadGraphString(`
start v1
edge v1 def(a) v2
edge v2 use(a) v3
edge v3 def(a) v4
edge v4 use(b) v5
edge v5 def(b) v6
edge v6 use(a) v7
edge v6 use(c) v7
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func answers(res *Result) []string {
	var out []string
	for _, a := range res.Answers {
		out = append(out, a.String())
	}
	return out
}

func TestQuickstartExist(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	res, err := g.Exist(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(answers(res), "; ")
	if got != "v5 {x↦b}; v7 {x↦c}" {
		t.Fatalf("answers = %q", got)
	}
	if res.Stats.WorklistInserts == 0 || !res.Stats.DeterminismOK {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestAllAlgorithmsAgreeOnPublicAPI(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	ref := ""
	for i, algo := range []Algorithm{Auto, Basic, Memo, Precompute} {
		res, err := g.Exist(p, &Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		s := strings.Join(answers(res), "; ")
		if i == 0 {
			ref = s
		} else if s != ref {
			t.Errorf("%v: %q != %q", algo, s, ref)
		}
	}
	// Enumeration returns full substitutions; all its answers must extend
	// some minimal answer at the same vertex.
	res, err := g.Exist(p, &Options{Algorithm: Enumerate})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if a.Vertex != "v5" && a.Vertex != "v7" {
			t.Errorf("enumeration answer at unexpected vertex %s", a.Vertex)
		}
	}
	// Table kinds agree too.
	res2, err := g.Exist(p, &Options{Table: NestedArrays})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(answers(res2), "; ") != ref {
		t.Errorf("nested arrays disagree")
	}
}

func TestBackwardQuery(t *testing.T) {
	g, err := FromMiniC(`
func main() {
	int a, b;
	a = b;
	b = a;
}
`, MiniCConfig{UseSites: true, EntryLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	p := MustParsePattern("_* use(x,l) (!def(x))* entry()")
	res, err := g.Exist(p, &Options{Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	foundB := false
	for _, a := range res.Answers {
		for _, b := range a.Bindings {
			if b.Param == "x" && b.Symbol == "b" {
				foundB = true
			}
			if b.Param == "x" && b.Symbol == "a" {
				t.Errorf("a reported uninitialized")
			}
		}
	}
	if !foundB {
		t.Errorf("backward query missed b; answers: %v", answers(res))
	}
}

func TestUniversalAutoFallsBackToHybrid(t *testing.T) {
	g, err := FromMiniC(`
func main() {
	int a, b, c;
	a = 1;
	b = 2;
	c = a + b;
	c = a + b;
}
`, MiniCConfig{ExpLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	p := MustParsePattern("_* exp(x,op,y) (!(def(x)|def(y)))*")
	// Auto must succeed via hybrid fallback despite nondeterminism.
	res, err := g.Universal(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Answers {
		s := a.String()
		if strings.Contains(s, "x↦a") && strings.Contains(s, "y↦b") {
			found = true
		}
	}
	if !found {
		t.Errorf("a+b not available anywhere: %v", answers(res))
	}
	// Explicit Basic must report nondeterminism.
	if _, err := g.Universal(p, &Options{Algorithm: Basic}); !errors.Is(err, ErrNondeterministic) {
		t.Errorf("explicit basic universal: err = %v, want ErrNondeterministic", err)
	}
}

func TestRunAnalysisCatalog(t *testing.T) {
	if len(Analyses()) < 15 {
		t.Fatalf("catalog too small")
	}
	g, err := FromMiniC(`
func main() {
	int a, b;
	a = 1;
	b = a + 1;
	open(f);
	seteuid(1);
	close(f);
}
`, MiniCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalysisByName("setuid-security")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RunAnalysis(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("setuid-security answers = %v", answers(res))
	}
	// Backward catalog analysis runs without manual reversal.
	lv, _ := AnalysisByName("live-variables")
	if _, err := g.RunAnalysis(lv, nil); err != nil {
		t.Fatalf("live-variables: %v", err)
	}
	if _, err := AnalysisByName("nope"); err == nil {
		t.Fatal("unknown analysis accepted")
	}
}

func TestViolationsAPI(t *testing.T) {
	g, err := FromMiniC(`
func main() {
	open(f);
	close(f);
	access(f);
}
`, MiniCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Violations("(open(f) (access(f))* close(f))*", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatalf("access-after-close not reported")
	}
}

func TestFromAUT(t *testing.T) {
	aut := "des (0, 2, 3)\n(0, \"a\", 1)\n(1, \"i\", 2)\n"
	g, err := FromAUT(strings.NewReader(aut), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 5 {
		t.Fatalf("existential transform: %d/%d", g.NumVertices(), g.NumEdges())
	}
	gu, err := FromAUT(strings.NewReader(aut), true)
	if err != nil {
		t.Fatal(err)
	}
	if gu.NumVertices() != 6 || gu.NumEdges() != 5 {
		t.Fatalf("universal transform: %d/%d", gu.NumVertices(), gu.NumEdges())
	}
	if _, err := FromAUT(strings.NewReader("garbage"), false); err == nil {
		t.Fatal("bad AUT accepted")
	}
}

func TestGraphRoundTripAndAccessors(t *testing.T) {
	g := NewGraph()
	g.MustAddEdge("a", "f(x)", "b")
	g.SetStart("a")
	if g.Start() != "a" || g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("accessors broken")
	}
	back, err := ReadGraphString(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != g.String() {
		t.Fatalf("round trip differs")
	}
	if err := g.AddEdge("a", "f(", "b"); err == nil {
		t.Fatal("bad label accepted")
	}
	rev := g.Reverse()
	if rev.NumEdges() != 1 {
		t.Fatal("reverse lost edges")
	}
}

func TestOptionsValidation(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("_*")
	if _, err := g.Exist(p, &Options{Start: "nope"}); err == nil {
		t.Fatal("unknown start vertex accepted")
	}
	if _, err := g.Exist(p, &Options{Algorithm: Hybrid}); err == nil {
		t.Fatal("hybrid existential accepted")
	}
	g2 := NewGraph()
	g2.MustAddEdge("a", "f()", "b")
	if _, err := g2.Exist(p, nil); err == nil {
		t.Fatal("query without start vertex accepted")
	}
	if _, err := g2.Exist(p, &Options{Start: "b"}); err != nil {
		t.Fatalf("explicit start rejected: %v", err)
	}
}

func TestPatternAccessors(t *testing.T) {
	p := MustParsePattern("_* use(x,l) (!def(x))* entry()")
	ps := p.Params()
	if len(ps) != 2 || ps[0] != "l" || ps[1] != "x" {
		t.Fatalf("Params = %v", ps)
	}
	if _, err := ParsePattern("(((("); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAnswerString(t *testing.T) {
	a := Answer{Vertex: "v", Bindings: []Binding{{"x", "a"}, {"y", "b"}}}
	if a.String() != "v {x↦a, y↦b}" {
		t.Fatalf("Answer.String() = %q", a.String())
	}
}
