package rpq

import (
	"container/list"
	"sync"
	"sync/atomic"

	"rpq/internal/core"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/queries"
)

// cacheKind separates the compilation flavors a cache can hold: plain
// queries (existential and universal share one compiled automaton — the
// universal determinization is built lazily inside the shared Query) and the
// two violation-transform variants, whose automata are derived from the
// discipline pattern rather than compiled from it directly.
type cacheKind uint8

const (
	cacheKindQuery cacheKind = iota
	cacheKindViolations
	cacheKindViolationsExit
)

// cacheKey identifies one compiled automaton: the compilation flavor, the
// universe the pattern was compiled against (labels and symbols are interned
// per universe, so a Query is only valid for graphs sharing it — Reverse
// shares its source's universe, so forward and backward runs hit the same
// entry), and the canonical rendering of the simplified pattern AST, which
// makes syntactic variants ("(a)(b)" vs "a b") share an entry.
type cacheKey struct {
	kind      cacheKind
	universe  *label.Universe
	canonical string
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key cacheKey
	q   *core.Query
}

// QueryCacheStats is a point-in-time view of a cache's counters.
type QueryCacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// QueryCache memoizes compiled queries — pattern → built automaton — keyed
// by the canonical simplified pattern AST and the graph universe, with LRU
// eviction. Attach one via Options.Cache so repeated patterns skip
// compilation entirely; the query service shares a single cache across all
// requests, which is what keeps a heavy repeated-pattern workload off the
// compiler. All methods are safe for concurrent use, and the cached
// *core.Query values are themselves safe to share between concurrent runs.
//
// The cache maintains process-wide gauges in the default metric registry —
// rpq_qcache_hits_total, rpq_qcache_misses_total, rpq_qcache_evictions_total,
// and rpq_qcache_entries — so /metrics and cmd/bench can pin the
// no-recompile path.
type QueryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	gHits      *obs.Gauge
	gMisses    *obs.Gauge
	gEvictions *obs.Gauge
	gEntries   *obs.Gauge
}

// DefaultQueryCacheSize is the capacity NewQueryCache uses for
// non-positive requests.
const DefaultQueryCacheSize = 128

// NewQueryCache returns an empty cache holding at most capacity compiled
// queries (DefaultQueryCacheSize when capacity <= 0).
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheSize
	}
	r := obs.Default()
	return &QueryCache{
		cap:        capacity,
		ll:         list.New(),
		byKey:      map[cacheKey]*list.Element{},
		gHits:      r.Gauge("rpq_qcache_hits_total", "compiled-query cache hits since process start"),
		gMisses:    r.Gauge("rpq_qcache_misses_total", "compiled-query cache misses (compilations) since process start"),
		gEvictions: r.Gauge("rpq_qcache_evictions_total", "compiled-query cache LRU evictions since process start"),
		gEntries:   r.Gauge("rpq_qcache_entries", "compiled queries currently cached"),
	}
}

// Stats returns the cache's current counters.
func (c *QueryCache) Stats() QueryCacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return QueryCacheStats{
		Entries:   n,
		Capacity:  c.cap,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len returns the number of cached compiled queries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every cached entry; counters are kept.
func (c *QueryCache) Purge() {
	c.mu.Lock()
	c.ll.Init()
	c.byKey = map[cacheKey]*list.Element{}
	c.gEntries.Set(0)
	c.mu.Unlock()
}

// lookup returns the cached query for key, marking it most recently used.
func (c *QueryCache) lookup(key cacheKey) (*core.Query, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).q, true
}

// insert stores q under key, evicting the least recently used entry when the
// cache is full. Concurrent misses for the same key may both compile; the
// first insert wins and the loser's work is discarded.
func (c *QueryCache) insert(key cacheKey, q *core.Query) *core.Query {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).q
	}
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions.Add(1)
		c.gEvictions.Add(1)
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, q: q})
	c.gEntries.Set(int64(c.ll.Len()))
	return q
}

// getOrCompile resolves e against the cache, compiling (and inserting) on a
// miss.
func (c *QueryCache) getOrCompile(kind cacheKind, u *label.Universe, e pattern.Expr) (*core.Query, error) {
	key := cacheKey{kind: kind, universe: u, canonical: pattern.String(pattern.Simplify(e))}
	if q, ok := c.lookup(key); ok {
		c.hits.Add(1)
		c.gHits.Add(1)
		return q, nil
	}
	c.misses.Add(1)
	c.gMisses.Add(1)
	q, err := compileKind(kind, u, e)
	if err != nil {
		return nil, err
	}
	return c.insert(key, q), nil
}

// compileKind builds the automaton for one cache flavor.
func compileKind(kind cacheKind, u *label.Universe, e pattern.Expr) (*core.Query, error) {
	switch kind {
	case cacheKindViolations:
		return queries.ViolationQuery(e, u, false)
	case cacheKindViolationsExit:
		return queries.ViolationQuery(e, u, true)
	default:
		return core.Compile(e, u)
	}
}

// compileForRun compiles a pattern for one query run, going through
// Options.Cache when one is attached and straight to the compiler otherwise.
func compileForRun(opts *Options, ig *graph.Graph, kind cacheKind, e pattern.Expr) (*core.Query, error) {
	if opts != nil && opts.Cache != nil {
		return opts.Cache.getOrCompile(kind, ig.U, e)
	}
	return compileKind(kind, ig.U, e)
}
