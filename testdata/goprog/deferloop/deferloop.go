// Package deferloop is a gofront fixture for the defer-in-loop check:
// defers registered inside a loop accumulate until the function returns.
package deferloop

import "os"

// LeakAll opens every file up front but defers every close to function
// exit; with many names the descriptors pile up.
func LeakAll(names []string) error {
	for _, n := range names {
		f, err := os.Open(n)
		if err != nil {
			return err
		}
		defer f.Close() // finding: defer inside the loop
	}
	return nil
}

// Single registers one defer outside any loop; no finding.
func Single(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// Scoped hoists the loop body into a helper closure so each iteration's
// defer runs at closure exit; the defer is inside the literal, not the
// loop, so no finding.
func Scoped(names []string) error {
	for _, n := range names {
		err := func() error {
			f, err := os.Open(n)
			if err != nil {
				return err
			}
			defer f.Close()
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}
