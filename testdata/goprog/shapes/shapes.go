// Package shapes is the gofront golden fixture: its DebugDump is pinned in
// internal/gofront/testdata/shapes.golden, so any change to the lowering
// rules shows up as a reviewable diff of this package's CFG.
package shapes

// Branch: if/else with an init statement and a join.
func Branch(a int) int {
	if b := a * 2; b > 3 {
		a = b
	} else {
		a = 0
	}
	return a
}

// Loops: for with condition, break, continue, and a labeled outer loop.
func Loops(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for {
			if i > 2 {
				break outer
			}
			if i == 1 {
				continue outer
			}
			break
		}
		s += i
	}
	return s
}

// Sum: range loop with shadowing — the inner v shadows the outer one.
func Sum(xs []int) int {
	v := 0
	for _, v := range xs {
		if v > 0 {
			v--
		}
		_ = v
	}
	return v
}

// Pick: switch with fallthrough and a default clause.
func Pick(k int) int {
	switch k {
	case 0:
		k = 10
		fallthrough
	case 1:
		k = 11
	default:
		k = 12
	}
	return k
}

// Kind: type switch binding a per-clause variable.
func Kind(v interface{}) int {
	switch t := v.(type) {
	case int:
		return t
	case string:
		return len(t)
	}
	return 0
}

// Fan: goroutine launching a closure that captures ch, and a select over
// two channels.
func Fan(ch chan int, done chan struct{}) int {
	go func() {
		ch <- 1
	}()
	select {
	case v := <-ch:
		return v
	case <-done:
		return -1
	}
}

// Jump: goto over a statement.
func Jump(a int) int {
	if a > 0 {
		goto out
	}
	a = 1
out:
	return a
}

type point struct{ x, y int }

// Shift is a method; the receiver is defined at entry.
func (p *point) Shift(dx int) {
	p.x += dx
}

// Deferred: defers run in LIFO order on both return paths.
func Deferred(a int) int {
	defer release(1)
	if a > 0 {
		return a
	}
	defer release(2)
	return -a
}

func release(k int) { _ = k }
