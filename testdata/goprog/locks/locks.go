// Package locks is a gofront fixture for the lock-discipline checks:
// double-lock and unlock-without-lock, over sync.Mutex method calls on
// locals, package globals, and struct fields.
package locks

import "sync"

var mu sync.Mutex

// Double locks the package mutex twice with no intervening unlock.
func Double() {
	mu.Lock()
	mu.Lock() // finding: double-lock of locks.mu
	mu.Unlock()
	mu.Unlock()
}

// Forgot releases a mutex it never acquired.
func Forgot() {
	mu.Unlock() // finding: unlock without a preceding lock
}

// Balanced is the defer idiom; the deferred unlock is emitted on the exit
// path after the lock, so neither check fires.
func Balanced() {
	mu.Lock()
	defer mu.Unlock()
}

type counter struct {
	mu sync.Mutex
	n  int
}

// Add locks the field mutex around the update; an early return before the
// lock must not look like unlock-without-lock.
func (c *counter) Add(delta int) {
	if delta == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

// Reenter locks a field mutex twice through the same path.
func (c *counter) Reenter() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // finding: double-lock of the field mutex
	defer c.mu.Unlock()
	return c.n
}

// ReadHeavy uses the read-lock variants; rlock is a distinct constructor,
// so two RLocks are not a double-lock finding.
func ReadHeavy(rw *sync.RWMutex) int {
	rw.RLock()
	defer rw.RUnlock()
	rw.RLock()
	defer rw.RUnlock()
	return 1
}
