// Package uninit is a gofront fixture: the seeded known-positive
// uninitialized-use finding lives at the `return total` below, and its
// exact file:line:col span is pinned by internal/gocheck's golden test and
// asserted again by the CI self-analysis job.
package uninit

// Report declares total without an initializer and only assigns it on one
// branch; the fall-through path reads the zero value.
func Report(steps int) int {
	var total int
	if steps > 0 {
		total = steps
	}
	return total // seeded uninit-use: the steps<=0 path never defines total
}

// Primed initializes on every path; no finding.
func Primed(steps int) int {
	var total int
	if steps > 0 {
		total = steps
	} else {
		total = -1
	}
	return total
}

// Escaped passes &n to a helper; address-taking counts as a definition, so
// the read below must not be flagged.
func Escaped() int {
	var n int
	fill(&n)
	return n
}

func fill(p *int) {
	*p = 42
}

// Allowed demonstrates suppression: the finding is real but acknowledged.
func Allowed() int {
	var n int
	return n //rpqcheck:allow uninit-use
}
