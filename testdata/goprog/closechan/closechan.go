// Package closechan is a gofront fixture for the use-after-close check:
// channel sends and method calls on resources that were already closed.
package closechan

// Drain closes ch and then sends on it — a guaranteed panic at run time.
func Drain(ch chan int, done chan struct{}) {
	close(done)
	ch <- 1 // fine: ch itself is still open
	close(ch)
	ch <- 2 // finding: send on closed channel
}

// DoubleClose closes the same channel twice — also a panic.
func DoubleClose(ch chan int) {
	close(ch)
	close(ch) // finding: close of closed channel
}

// Reopen redefines the variable between the close and the send, so the
// second send targets a fresh channel; no finding.
func Reopen(ch chan int) {
	close(ch)
	ch = make(chan int)
	ch <- 3
}

type conn struct{}

func (c *conn) Close() error { return nil }
func (c *conn) Send(s string) error {
	_ = s
	return nil
}

// UseClosedConn calls a method on a closed resource; mcall(c, Send) after
// close(c) is the finding.
func UseClosedConn(c *conn) {
	c.Close()
	c.Send("late") // finding: method call on closed resource
}

// Guarded only uses the connection before closing; no finding.
func Guarded(c *conn) {
	c.Send("early")
	c.Close()
}
