// Package store is benchmod's mutex-guarded key store.
package store

import "sync"

type Store struct {
	mu     sync.Mutex
	vals   map[int]int
	max    int
	closed bool
}

func New(cap int) *Store {
	return &Store{vals: make(map[int]int, cap)}
}

func (s *Store) Put(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[k] = v
	if v > s.max {
		s.max = v
	}
}

func (s *Store) Get(k int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[k]
	return v, ok
}

func (s *Store) Max() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Drain empties the store under a single critical section.
func (s *Store) Drain() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.vals))
	for _, v := range s.vals {
		out = append(out, v)
	}
	s.vals = make(map[int]int)
	return out
}
