module benchmod

go 1.22
