// Package pipeline is benchmod's worker stage: fan-out over a channel with
// per-worker accumulation merged into the shared store.
package pipeline

import (
	"sync"

	"benchmod/store"
)

const workers = 4

// Run fans jobs out to workers and folds their sums into the store.
func Run(jobs chan int, s *store.Store) int {
	var wg sync.WaitGroup
	results := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sum := 0
			for j := range jobs {
				sum += weight(j)
			}
			s.Put(id, sum)
			results <- sum
		}(w)
	}
	wg.Wait()
	close(results)
	total := 0
	for r := range results {
		total += r
	}
	return total
}

func weight(j int) int {
	switch {
	case j%15 == 0:
		return 4
	case j%3 == 0:
		return 2
	case j%5 == 0:
		return 3
	}
	return 1
}
