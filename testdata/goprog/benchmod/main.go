// Package main is the root of the gofront benchmark module: a small but
// realistic multi-package program (cross-package calls, locks, channels,
// defers) that cmd/bench lowers through the frontend and queries, so the
// pinned baselines track frontend + solver cost together.
package main

import (
	"benchmod/pipeline"
	"benchmod/store"
)

func main() {
	s := store.New(64)
	defer s.Close()
	jobs := make(chan int, 8)
	go produce(jobs, 100)
	total := pipeline.Run(jobs, s)
	report(total, s)
}

func produce(jobs chan int, n int) {
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
}

func report(total int, s *store.Store) {
	var peak int
	if total > 0 {
		peak = s.Max()
	}
	_ = peak
}
