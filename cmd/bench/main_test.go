package main

import (
	"strings"
	"testing"
)

func sampleReport() *benchReport {
	return &benchReport{
		Schema: schemaVersion,
		Scenarios: []scenarioResult{
			{
				Name: "a/basic/hash/w1", Workload: "a", Kind: "exist", Algo: "basic",
				Table: "hash", Workers: 1, Reps: 3, NsPerOp: 1_000_000, SolveNS: 900_000,
				Counters: map[string]int64{"worklist_inserts": 100, "result_pairs": 5},
			},
			{
				Name: "b/memo/hash/w4", Workload: "b", Kind: "exist", Algo: "memo",
				Table: "hash", Workers: 4, Reps: 3, NsPerOp: 2_000_000, SolveNS: 1_800_000,
				Counters: map[string]int64{"worklist_inserts": 200, "result_pairs": 7},
			},
		},
	}
}

func clone(r *benchReport) *benchReport {
	out := &benchReport{Schema: r.Schema}
	for _, s := range r.Scenarios {
		c := s
		c.Counters = map[string]int64{}
		for k, v := range s.Counters {
			c.Counters[k] = v
		}
		out.Scenarios = append(out.Scenarios, c)
	}
	return out
}

func TestCompareIdenticalPasses(t *testing.T) {
	old := sampleReport()
	if p := compare(old, clone(old), 1.3); len(p) != 0 {
		t.Fatalf("identical reports flagged: %v", p)
	}
}

// TestCompareDetectsInjectedSlowdown is the harness self-test required by the
// benchmark contract: a 2x wall-time slowdown must trip the timing gate.
func TestCompareDetectsInjectedSlowdown(t *testing.T) {
	old := sampleReport()
	slow := clone(old)
	slow.Scenarios[1].NsPerOp *= 2
	p := compare(old, slow, 1.5)
	if len(p) != 1 {
		t.Fatalf("want exactly one problem, got %v", p)
	}
	if !strings.Contains(p[0], "b/memo/hash/w4") || !strings.Contains(p[0], "2.00x") {
		t.Fatalf("problem does not name the slow scenario and ratio: %q", p[0])
	}
	// Threshold 0 disables the timing gate entirely (the CI mode), so the
	// same slowdown passes there.
	if p := compare(old, slow, 0); len(p) != 0 {
		t.Fatalf("threshold 0 should ignore timing, got %v", p)
	}
}

func TestCompareDetectsCounterDrift(t *testing.T) {
	old := sampleReport()
	drift := clone(old)
	drift.Scenarios[0].Counters["worklist_inserts"] = 101
	p := compare(old, drift, 0)
	if len(p) != 1 || !strings.Contains(p[0], "worklist_inserts") {
		t.Fatalf("counter drift not detected: %v", p)
	}
}

func TestCompareDetectsMissingScenarioAndCounter(t *testing.T) {
	old := sampleReport()
	miss := clone(old)
	miss.Scenarios = miss.Scenarios[:1]
	delete(miss.Scenarios[0].Counters, "result_pairs")
	p := compare(old, miss, 0)
	if len(p) != 2 {
		t.Fatalf("want 2 problems (missing counter + missing scenario), got %v", p)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	old := sampleReport()
	other := clone(old)
	other.Schema = "rpq-bench/0"
	p := compare(old, other, 0)
	if len(p) != 1 || !strings.Contains(p[0], "schema mismatch") {
		t.Fatalf("schema mismatch not detected: %v", p)
	}
}

func TestValidate(t *testing.T) {
	good := sampleReport()
	if err := validate(good); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*benchReport)
	}{
		{"bad schema", func(r *benchReport) { r.Schema = "x" }},
		{"no scenarios", func(r *benchReport) { r.Scenarios = nil }},
		{"empty name", func(r *benchReport) { r.Scenarios[0].Name = "" }},
		{"dup name", func(r *benchReport) { r.Scenarios[1].Name = r.Scenarios[0].Name }},
		{"zero reps", func(r *benchReport) { r.Scenarios[0].Reps = 0 }},
		{"zero time", func(r *benchReport) { r.Scenarios[0].NsPerOp = 0 }},
		{"no counters", func(r *benchReport) { r.Scenarios[0].Counters = nil }},
	} {
		r := clone(good)
		tc.mutate(r)
		if err := validate(r); err == nil {
			t.Errorf("%s: validate accepted a broken report", tc.name)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]int64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %d, want 2", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("median(nil) = %d, want 0", m)
	}
}
