// Command bench is the repository's continuous benchmark harness: it runs a
// pinned set of query scenarios — C-dataflow and LTS workloads across the
// paper's algorithm variants, both table representations, and sequential vs.
// parallel solving — and emits a schema-versioned JSON report (BENCH_*.json)
// whose deterministic solver counters are machine-comparable across commits.
//
// Usage:
//
//	bench -out BENCH_3.json                 # run all scenarios, write report
//	bench -quick -out b.json                # one rep per scenario (CI smoke)
//	bench -compare BENCH_3.json             # run, diff against a baseline
//	bench -in new.json -compare old.json    # diff two saved reports, no run
//	bench -validate BENCH_3.json            # schema-check a report file
//	bench -list                             # print the scenario matrix
//
// Comparison checks every deterministic counter for exact equality and, when
// -threshold is above zero, gates the per-scenario wall time at
// old×threshold. Timing is machine-dependent, so CI runs -threshold 0
// (counters only); local perf work uses e.g. -threshold 1.3. A detected
// regression exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"rpq/internal/analyze"
	"rpq/internal/core"
	"rpq/internal/gen"
	"rpq/internal/gofront"
	"rpq/internal/graph"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/queries"
	"rpq/internal/subst"
)

// schemaVersion identifies the report format; bump it when scenario
// definitions or counter semantics change, so stale baselines fail
// validation instead of producing spurious diffs.
const schemaVersion = "rpq-bench/1"

// repTimeout is the -timeout flag: the per-rep wall-clock bound threaded
// into every scenario's Options.Deadline (0 = unbounded).
var repTimeout time.Duration

// benchReport is the top-level JSON document. The environment fields record
// where a report was produced — timing comparisons across reports are only
// meaningful when they match; the deterministic counters compare regardless.
type benchReport struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version,omitempty"`
	GOMAXPROCS int              `json:"gomaxprocs,omitempty"`
	NumCPU     int              `json:"num_cpu,omitempty"`
	Scenarios  []scenarioResult `json:"scenarios"`
}

// scenarioResult is one scenario's measurement: identity, median timing, and
// the deterministic solver counters that must reproduce exactly on any
// machine.
type scenarioResult struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Kind     string `json:"kind"` // "exist" | "universal"
	Algo     string `json:"algo"`
	Table    string `json:"table"`
	Workers  int    `json:"workers"`
	Reps     int    `json:"reps"`
	NsPerOp  int64  `json:"ns_per_op"`
	SolveNS  int64  `json:"solve_ns"`
	// LintNS is the median wall time of the static query analysis
	// (internal/analyze, graph-dependent checks included) for this
	// scenario's pattern — the lint phase must stay far below solve time.
	// omitempty keeps reports from before the field schema-compatible.
	LintNS int64 `json:"lint_ns,omitempty"`
	// CPUNS and AllocBytes are the median process CPU time and heap
	// allocation per rep — machine-dependent context like the timings, so
	// deliberately absent from Counters and from -compare. omitempty keeps
	// reports from before these fields schema-compatible.
	CPUNS      int64 `json:"cpu_ns,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// FrontendNS is the one-time cost of lowering the workload's source to
	// a program graph (gofront scenarios only) — front-end build time,
	// machine-dependent like the timings, excluded from -compare.
	FrontendNS int64            `json:"frontend_ns,omitempty"`
	Counters   map[string]int64 `json:"counters"`
	// HotState names the automaton state with the most worklist visits, from
	// the explain profile collected alongside each run.
	HotState       string `json:"hot_state,omitempty"`
	HotStateVisits int64  `json:"hot_state_visits,omitempty"`
}

// scenario is one pinned benchmark configuration.
type scenario struct {
	name     string
	workload string // key into the workload cache
	kind     string // "exist" | "universal"
	pat      string
	algo     core.Algo
	table    subst.TableKind
	workers  int
}

// Pinned workload generators. These literals are part of the benchmark
// contract: changing any field changes every deterministic counter, which
// requires a schema bump and a fresh committed baseline.
var (
	progSpec = gen.ProgSpec{
		Name: "bench-prog", Seed: 42, Edges: 2000, Vars: 120,
		UninitFrac: 0.12, UseSites: true, EntryLoop: true,
	}
	univSpec = gen.ProgSpec{
		Name: "bench-univ", Seed: 43, Edges: 400, Vars: 30,
		UninitFrac: 0.12, UseSites: true, EntryLoop: true,
	}
	ltsSpec = gen.LTSSpec{
		Name: "bench-lts", Seed: 42, States: 1500, Trans: 6000,
		Actions: 8, Deadlocks: 2, InvisibleFrac: 0.2,
	}
)

const (
	bwdUninitPattern = "_* use(x,l) (!def(x))* entry()"
	fwdUninitPattern = "(!def(x))* use(x,_)"
	dlockPattern     = "_* lock(m) (!unlock(m))* lock(m)"
	closePattern     = "_* close(x) (!def(x))* (close(x) | send(x) | mcall(x, _))"

	// benchmodDir is the committed real-Go module the gofront scenarios
	// lower; bench must run from the repository root (as CI does).
	benchmodDir = "testdata/goprog/benchmod"
)

// gofrontBuildNS records the one-time front-end lowering cost measured in
// buildWorkloads, reported on gofront scenarios as frontend_ns.
var gofrontBuildNS int64

// scenarios returns the pinned matrix: the C-dataflow workload across the
// sequential variants and both table kinds, parallel runs at 4 workers, the
// LTS deadlock workload, and the universal algorithms.
func scenarios() []scenario {
	deadlock, err := queries.ByName("lts-deadlock")
	if err != nil {
		fail("%v", err)
	}
	return []scenario{
		{"prog-bwd/basic/hash/w1", "prog-bwd", "exist", bwdUninitPattern, core.AlgoBasic, subst.Hash, 1},
		{"prog-bwd/memo/hash/w1", "prog-bwd", "exist", bwdUninitPattern, core.AlgoMemo, subst.Hash, 1},
		{"prog-bwd/memo/nested/w1", "prog-bwd", "exist", bwdUninitPattern, core.AlgoMemo, subst.Nested, 1},
		{"prog-bwd/precomp/hash/w1", "prog-bwd", "exist", bwdUninitPattern, core.AlgoPrecomp, subst.Hash, 1},
		{"prog-bwd/precomp/nested/w1", "prog-bwd", "exist", bwdUninitPattern, core.AlgoPrecomp, subst.Nested, 1},
		{"prog-fwd/enum/hash/w1", "prog-fwd", "exist", fwdUninitPattern, core.AlgoEnum, subst.Hash, 1},
		{"prog-bwd/basic/hash/w4", "prog-bwd", "exist", bwdUninitPattern, core.AlgoBasic, subst.Hash, 4},
		{"prog-bwd/memo/hash/w4", "prog-bwd", "exist", bwdUninitPattern, core.AlgoMemo, subst.Hash, 4},
		{"lts-deadlock/basic/hash/w1", "lts", "exist", deadlock.Pattern, core.AlgoBasic, subst.Hash, 1},
		{"lts-deadlock/precomp/hash/w1", "lts", "exist", deadlock.Pattern, core.AlgoPrecomp, subst.Hash, 1},
		{"lts-deadlock/memo/hash/w4", "lts", "exist", deadlock.Pattern, core.AlgoMemo, subst.Hash, 4},
		{"univ-fwd/enum/hash/w1", "univ-fwd", "universal", fwdUninitPattern, core.AlgoEnum, subst.Hash, 1},
		{"univ-fwd/hybrid/hash/w1", "univ-fwd", "universal", fwdUninitPattern, core.AlgoHybrid, subst.Hash, 1},
		// Real-Go workload: the committed multi-package benchmod module
		// lowered by gofront (interprocedural call/ret/go edges), queried
		// with two checks from the rpqcheck catalog.
		{"gofront-benchmod/dlock/memo/hash/w1", "gofront", "exist", dlockPattern, core.AlgoMemo, subst.Hash, 1},
		{"gofront-benchmod/close/basic/hash/w1", "gofront", "exist", closePattern, core.AlgoBasic, subst.Hash, 1},
	}
}

// workloads builds the pinned graphs once; the map is keyed by the
// scenario.workload field and each entry carries its start vertex.
type workloadGraph struct {
	g     *graph.Graph
	start int32
}

func buildWorkloads() map[string]workloadGraph {
	pg := gen.Program(progSpec)
	var bwdStart int32 = -1
	for v := 0; v < pg.NumVertices(); v++ {
		for _, e := range pg.Out(int32(v)) {
			if e.Label.Format(pg.U, nil) == "exit()" {
				bwdStart = e.To
			}
		}
	}
	if bwdStart < 0 {
		fail("no exit edge in generated program")
	}
	ug := gen.Program(univSpec)
	lg := gen.RandomLTS(ltsSpec).ForExistential()
	ft0 := time.Now()
	gp, err := gofront.Load([]string{benchmodDir + "/..."}, gofront.Config{Interproc: true, Workers: 1})
	if err != nil {
		fail("gofront workload: %v (run bench from the repository root)", err)
	}
	gofrontBuildNS = time.Since(ft0).Nanoseconds()
	return map[string]workloadGraph{
		"prog-fwd": {pg, pg.Start()},
		"prog-bwd": {pg.Reverse(), bwdStart},
		"univ-fwd": {ug, ug.Start()},
		"lts":      {lg, lg.Start()},
		"gofront":  {gp.Graph, gp.Graph.Start()},
	}
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report to this file (- for stdout)")
		quick     = flag.Bool("quick", false, "one rep per scenario (CI smoke); scenarios are unchanged, so counters still compare")
		reps      = flag.Int("reps", 3, "timed repetitions per scenario; the median is reported")
		compareTo = flag.String("compare", "", "baseline report to diff against; a regression exits nonzero")
		in        = flag.String("in", "", "use this saved report as the measurement instead of running")
		validateF = flag.String("validate", "", "schema-check this report file and exit")
		threshold = flag.Float64("threshold", 0, "max ns_per_op ratio vs. baseline (e.g. 1.3); 0 compares counters only")
		list      = flag.Bool("list", false, "print the scenario matrix and exit")
		timeout   = flag.Duration("timeout", 0, "per-rep wall-clock bound; a scenario exceeding it fails the run")
	)
	flag.Parse()
	repTimeout = *timeout

	if *validateF != "" {
		rep, err := loadReport(*validateF)
		if err != nil {
			fail("%v", err)
		}
		if err := validate(rep); err != nil {
			fail("%s: %v", *validateF, err)
		}
		fmt.Printf("%s: valid %s report, %d scenarios\n", *validateF, rep.Schema, len(rep.Scenarios))
		return
	}
	if *list {
		for _, sc := range scenarios() {
			fmt.Printf("%-28s %-9s %-9s workers=%d  %s\n", sc.name, sc.kind, sc.algo, sc.workers, sc.pat)
		}
		return
	}

	var rep *benchReport
	if *in != "" {
		var err error
		rep, err = loadReport(*in)
		if err != nil {
			fail("%v", err)
		}
	} else {
		n := *reps
		if *quick {
			n = 1
		}
		rep = runAll(n)
	}
	if err := validate(rep); err != nil {
		fail("internal: generated report invalid: %v", err)
	}

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail("%v", err)
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "bench: wrote %d scenarios to %s\n", len(rep.Scenarios), *out)
		}
	}

	if *compareTo != "" {
		base, err := loadReport(*compareTo)
		if err != nil {
			fail("%v", err)
		}
		problems := compare(base, rep, *threshold)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "bench: regression: %s\n", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: %d scenarios match baseline %s\n", len(rep.Scenarios), *compareTo)
	}

	if *out == "" && *compareTo == "" {
		// No sink requested: print a human summary.
		for _, s := range rep.Scenarios {
			fmt.Printf("%-28s %12dns  worklist=%-8d results=%-6d attempts=%-9d hot=%s(%d)\n",
				s.Name, s.NsPerOp, s.Counters["worklist_inserts"], s.Counters["result_pairs"],
				s.Counters["match_attempts"], s.HotState, s.HotStateVisits)
		}
	}
}

// runAll measures every scenario with n timed reps each.
func runAll(n int) *benchReport {
	wls := buildWorkloads()
	rep := &benchReport{
		Schema:     schemaVersion,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, sc := range scenarios() {
		wl, ok := wls[sc.workload]
		if !ok {
			fail("scenario %s: unknown workload %q", sc.name, sc.workload)
		}
		rep.Scenarios = append(rep.Scenarios, runScenario(sc, wl, n))
	}
	return rep
}

// runScenario compiles once, runs n timed reps, and reports the median wall
// time with the (rep-invariant) deterministic counters. A counter that
// varies across reps is a solver determinism bug, reported loudly.
func runScenario(sc scenario, wl workloadGraph, n int) scenarioResult {
	q := core.MustCompile(pattern.MustParse(sc.pat), wl.g.U)
	opts := core.Options{
		Algo:     sc.algo,
		Table:    sc.table,
		Workers:  sc.workers,
		Explain:  true,
		Deadline: repTimeout,
	}
	lintExpr := pattern.MustParse(sc.pat)
	lintCfg := analyze.Config{
		Universal:   sc.kind == "universal",
		HaveVariant: true,
		Algo:        sc.algo,
		Table:       sc.table,
	}
	// Lint is orders of magnitude cheaper than solving, so time it over a
	// fixed rep count (with one untimed warm-up) even in -quick mode; a
	// single cold sample would otherwise charge process start-up noise to
	// the lint phase.
	const lintReps = 5
	analyze.LintForGraph(wl.g, lintExpr, sc.pat, lintCfg)
	lint := make([]int64, 0, lintReps)
	for i := 0; i < lintReps; i++ {
		lt0 := time.Now()
		analyze.LintForGraph(wl.g, lintExpr, sc.pat, lintCfg)
		lint = append(lint, time.Since(lt0).Nanoseconds())
	}
	var (
		ns      = make([]int64, 0, n)
		solve   = make([]int64, 0, n)
		cpu     = make([]int64, 0, n)
		allocs  = make([]int64, 0, n)
		last    *core.Result
		prevCtr map[string]int64
	)
	for i := 0; i < n; i++ {
		cpu0, alloc0 := obs.ProcessCPUTime(), obs.HeapAllocBytes()
		t0 := time.Now()
		var (
			res *core.Result
			err error
		)
		if sc.kind == "universal" {
			res, err = core.Univ(wl.g, wl.start, q, opts)
		} else {
			res, err = core.Exist(wl.g, wl.start, q, opts)
		}
		if err != nil {
			fail("scenario %s: %v", sc.name, err)
		}
		ns = append(ns, time.Since(t0).Nanoseconds())
		cpu = append(cpu, max64(0, (obs.ProcessCPUTime()-cpu0).Nanoseconds()))
		allocs = append(allocs, max64(0, obs.HeapAllocBytes()-alloc0))
		solve = append(solve, res.Stats.Phases.Solve.Wall.Nanoseconds())
		ctr := counters(res)
		if prevCtr != nil && !equalCounters(prevCtr, ctr) {
			fail("scenario %s: counters differ across reps (nondeterministic solver?)", sc.name)
		}
		prevCtr = ctr
		last = res
	}
	out := scenarioResult{
		Name:       sc.name,
		Workload:   sc.workload,
		Kind:       sc.kind,
		Algo:       sc.algo.String(),
		Table:      tableName(sc.table),
		Workers:    sc.workers,
		Reps:       n,
		NsPerOp:    median(ns),
		SolveNS:    median(solve),
		LintNS:     median(lint),
		CPUNS:      median(cpu),
		AllocBytes: median(allocs),
		Counters:   prevCtr,
	}
	if sc.workload == "gofront" {
		out.FrontendNS = gofrontBuildNS
	}
	if ex := last.Explain; ex != nil {
		if top := ex.TopStates(1); len(top) > 0 {
			if top[0].Bad {
				out.HotState = "bad"
			} else {
				out.HotState = fmt.Sprintf("s%d", top[0].State)
			}
			out.HotStateVisits = top[0].Visits
		}
	}
	return out
}

// counters extracts the deterministic counter set: identical on every
// machine and — for the parallel solver — under any scheduling. Timing,
// byte, and cache-split counters are deliberately excluded.
func counters(res *core.Result) map[string]int64 {
	c := map[string]int64{
		"worklist_inserts": int64(res.Stats.WorklistInserts),
		"reach_size":       int64(res.Stats.ReachSize),
		"substs":           int64(res.Stats.Substs),
		"enum_substs":      int64(res.Stats.EnumSubsts),
		"result_pairs":     int64(res.Stats.ResultPairs),
	}
	if ex := res.Explain; ex != nil {
		c["match_attempts"] = ex.Totals.Attempts
		c["match_hits"] = ex.Totals.Hits
		c["visits"] = ex.Totals.Visits
		c["extensions"] = ex.Totals.Extensions
	}
	return c
}

func equalCounters(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func tableName(k subst.TableKind) string {
	if k == subst.Nested {
		return "nested"
	}
	return "hash"
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func median(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// loadReport reads and decodes a report file.
func loadReport(path string) (*benchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// validate schema-checks a report.
func validate(rep *benchReport) error {
	if rep.Schema != schemaVersion {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaVersion)
	}
	if len(rep.Scenarios) == 0 {
		return fmt.Errorf("no scenarios")
	}
	seen := map[string]bool{}
	for i, s := range rep.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("scenario %d: empty name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("scenario %q: duplicate name", s.Name)
		}
		seen[s.Name] = true
		if s.Reps < 1 {
			return fmt.Errorf("scenario %q: reps %d < 1", s.Name, s.Reps)
		}
		if s.NsPerOp <= 0 {
			return fmt.Errorf("scenario %q: ns_per_op %d <= 0", s.Name, s.NsPerOp)
		}
		if len(s.Counters) == 0 {
			return fmt.Errorf("scenario %q: no counters", s.Name)
		}
	}
	return nil
}

// compare diffs a new report against a baseline: deterministic counters must
// match exactly; when threshold > 0, ns_per_op may not exceed
// old×threshold. It returns one message per problem (empty = pass).
func compare(old, new *benchReport, threshold float64) []string {
	var problems []string
	if old.Schema != new.Schema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q vs. new %q — regenerate the baseline", old.Schema, new.Schema)}
	}
	byName := map[string]scenarioResult{}
	for _, s := range new.Scenarios {
		byName[s.Name] = s
	}
	for _, o := range old.Scenarios {
		n, ok := byName[o.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: scenario missing from new report", o.Name))
			continue
		}
		keys := make([]string, 0, len(o.Counters))
		for k := range o.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			nv, ok := n.Counters[k]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: counter %s missing from new report", o.Name, k))
				continue
			}
			if nv != o.Counters[k] {
				problems = append(problems, fmt.Sprintf("%s: counter %s = %d, baseline %d", o.Name, k, nv, o.Counters[k]))
			}
		}
		if threshold > 0 && o.NsPerOp > 0 {
			ratio := float64(n.NsPerOp) / float64(o.NsPerOp)
			if ratio > threshold {
				problems = append(problems, fmt.Sprintf("%s: ns_per_op %d is %.2fx baseline %d (threshold %.2fx)",
					o.Name, n.NsPerOp, ratio, o.NsPerOp, threshold))
			}
		}
	}
	return problems
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}
