// Command svcsmoke is the query-service smoke test used by CI: it builds
// and boots cmd/rpqd with a small admission budget, preloads the repository
// CFG fixture, then drives the public API end to end — catalog CRUD, the
// three query kinds (existential with witnesses, universal, violations),
// lint-gate rejection, compiled-query-cache hits across a repeated-pattern
// workload, a burst above the admission limit (expecting fast 429s with
// Retry-After while every admitted query completes), cancellation of an
// in-flight query through the API, a fixed-traceparent round trip (the same
// trace ID must surface in the response headers, the in-flight snapshot, the
// slow-query log, the flight-recorder bundle, and the access log), the SLO
// burn-rate endpoint, the continuous-profiling surface (an rpq-prof/1 window
// list with solver frames under the rpq_kind=exist slice, a two-window diff,
// a flight-recorder bundle carrying the pinned window's profile.pb.gz, the
// /debug/rpq/ index, and histogram exemplars in both JSON and Prometheus
// exposition), and a SIGTERM drain with a query still running (during
// which readyz must report 503 while healthz stays 200). The scraped
// /debug/rpq/ts document is written to -out, the structured access log to
// -access-log, and a captured profile window to -prof-out so CI can archive
// all three. Any failed check exits nonzero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

var (
	base   string      // API base URL, set once rpqd is up
	daemon *os.Process // the rpqd under test; fail() kills it (os.Exit skips defers)
)

func main() {
	var (
		out       = flag.String("out", "", "write the scraped rpq-tsdb/1 document to this file")
		accessLog = flag.String("access-log", "", "write the daemon's NDJSON access log to this file")
		profOut   = flag.String("prof-out", "", "write a captured profile window (gzipped pprof) to this file")
		graph     = flag.String("graph", "testdata/queries/graph.txt", "fixture graph to preload")
		vertices  = flag.Int("vertices", 1000, "heavy-graph vertices (burst/cancel workload)")
		degree    = flag.Int("degree", 5, "heavy-graph out-degree")
		symbols   = flag.Int("symbols", 12, "heavy-graph symbol count")
	)
	flag.Parse()

	bin := buildRpqd()
	defer os.RemoveAll(filepath.Dir(bin))

	logPath := *accessLog
	if logPath == "" {
		logPath = filepath.Join(filepath.Dir(bin), "access.ndjson")
	}
	slowPath := filepath.Join(filepath.Dir(bin), "slow.ndjson")
	wdDir := filepath.Join(filepath.Dir(bin), "watchdog")

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-obs", "127.0.0.1:0",
		"-load", "g="+*graph,
		"-max-concurrent", "1",
		"-max-queue", "2",
		"-queue-wait", "100ms",
		"-drain-timeout", "10s",
		"-log", logPath,
		"-log-format", "json",
		"-slowlog", slowPath,
		"-slow", "50ms",
		"-watchdog", wdDir,
		"-watchdog-slow", "50ms",
		"-slo", "query:0.999:30s",
		"-prof",
		"-prof-window", "400ms",
		"-prof-interval", "600ms",
		"-prof-retain", "16",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail("pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fail("start rpqd: %v", err)
	}
	daemon = cmd.Process
	defer cmd.Process.Kill()

	var obsBase string
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			fmt.Println("[rpqd]", sc.Text())
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	for base == "" {
		select {
		case l, ok := <-lines:
			if !ok {
				fail("rpqd exited before listening")
			}
			if rest, found := strings.CutPrefix(l, "rpqd observability on "); found {
				obsBase = rest
			}
			if rest, found := strings.CutPrefix(l, "rpqd listening on "); found {
				base = rest
			}
		case <-deadline:
			fail("rpqd did not come up within 30s")
		}
	}

	checkReadyz()
	checkCatalogAndKinds()
	checkLintGate()
	checkCacheHits()
	loadHeavyGraph(*vertices, *degree, *symbols)
	checkBurst429()
	checkCancel()
	checkTraceRoundTrip(obsBase, slowPath, wdDir)
	checkSLO(obsBase)
	checkDebugIndex(obsBase)
	checkProf(obsBase, wdDir, *profOut)
	checkExemplars(obsBase)
	scrapeTS(obsBase, *out)
	checkDrain(cmd)
	checkAccessLog(logPath, *accessLog != "")

	fmt.Println("svcsmoke: all checks passed")
}

// buildRpqd compiles the daemon into a temp dir and returns the binary path.
func buildRpqd() string {
	dir, err := os.MkdirTemp("", "svcsmoke")
	if err != nil {
		fail("tmpdir: %v", err)
	}
	bin := filepath.Join(dir, "rpqd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/rpqd")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		fail("build rpqd: %v", err)
	}
	return bin
}

// ---- checks ----

func checkCatalogAndKinds() {
	// The preloaded fixture is listed.
	var listing struct {
		Graphs []struct {
			Name  string `json:"name"`
			Edges int    `json:"edges"`
		} `json:"graphs"`
	}
	getJSON("/api/v1/graphs", &listing)
	if len(listing.Graphs) != 1 || listing.Graphs[0].Name != "g" || listing.Graphs[0].Edges == 0 {
		fail("catalog listing: %+v", listing)
	}

	// Existential with witnesses: the possibly-uninitialized-use query has
	// answers on the fixture, each carrying a path from the start vertex.
	code, body := post("/api/v1/query",
		`{"graph":"g","kind":"exist","pattern":"(!def(x))* use(x)","options":{"witnesses":true}}`)
	if code != 200 {
		fail("exist: %d %s", code, body)
	}
	var qr struct {
		QueryID int64 `json:"query_id"`
		Answers []struct {
			Vertex   string           `json:"vertex"`
			Bindings []map[string]any `json:"bindings"`
			Witness  []map[string]any `json:"witness"`
		} `json:"answers"`
	}
	mustUnmarshal(body, &qr)
	if len(qr.Answers) == 0 || qr.QueryID == 0 {
		fail("exist shape: %s", body)
	}
	for _, a := range qr.Answers {
		if a.Vertex == "" || len(a.Bindings) == 0 || len(a.Witness) == 0 {
			fail("exist answer shape: %s", body)
		}
	}

	if code, body = post("/api/v1/query", `{"graph":"g","kind":"universal","pattern":"(!use(x))* def(x) _*"}`); code != 200 {
		fail("universal: %d %s", code, body)
	}
	if code, body = post("/api/v1/query",
		`{"graph":"g","kind":"violations","pattern":"(open(f) (access(f))* close(f))*","with_exit":true}`); code != 200 {
		fail("violations: %d %s", code, body)
	}

	// Unknown graphs 404.
	if code, body = post("/api/v1/query", `{"graph":"nope","pattern":"use(x)"}`); code != 404 {
		fail("unknown graph: %d %s", code, body)
	}
}

func checkLintGate() {
	code, body := post("/api/v1/query", `{"graph":"g","pattern":"!_ use(x)"}`)
	if code != 400 || !strings.Contains(body, "lint_rejected") || !strings.Contains(body, "RPQ001") {
		fail("lint gate: %d %s", code, body)
	}
}

func checkCacheHits() {
	// Acceptance criterion: a repeated-pattern workload shows cache hits
	// through the new gauges.
	for i := 0; i < 5; i++ {
		if code, body := post("/api/v1/query", `{"graph":"g","pattern":"(malloc(p) (!free(p))* deref(p))"}`); code != 200 {
			fail("repeat %d: %d %s", i, code, body)
		}
	}
	var stats struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	getJSON("/api/v1/stats", &stats)
	if stats.Cache.Hits < 4 {
		fail("cache hits = %d after repeated pattern, want >= 4", stats.Cache.Hits)
	}
	fmt.Printf("svcsmoke: cache %d hits / %d misses\n", stats.Cache.Hits, stats.Cache.Misses)
}

// loadHeavyGraph uploads a deterministic pseudo-random def/use graph big
// enough that one enumeration query holds its solve slot for a while.
func loadHeavyGraph(vertices, degree, symbols int) {
	var b bytes.Buffer
	fmt.Fprintln(&b, "start v0")
	seed := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	for v := 0; v < vertices; v++ {
		// A cycle keeps every vertex reachable; extra random edges fan out.
		fmt.Fprintf(&b, "edge v%d use(s%d) v%d\n", v, next(symbols), (v+1)%vertices)
		for d := 1; d < degree; d++ {
			fmt.Fprintf(&b, "edge v%d use(s%d) v%d\n", v, next(symbols), next(vertices))
		}
	}
	req, _ := http.NewRequest("PUT", base+"/api/v1/graphs/heavy", &b)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail("load heavy: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		body, _ := io.ReadAll(resp.Body)
		fail("load heavy: %d %s", resp.StatusCode, body)
	}
}

// heavyQuery interleaves three parameters over the heavy graph's symbols —
// a combinatorial substitution space that holds its solve slot for a few
// hundred milliseconds (long enough to observe queue overflow and
// cancellation) while the trailing literals keep the answer set, and thus
// the response body, modest.
const heavyQuery = `{"graph":"heavy","pattern":"(use(x) | use(y) | use(z))* use(x) use(y) use(z)"}`

func checkBurst429() {
	const burst = 12
	type outcome struct {
		code       int
		retryAfter string
	}
	var wg sync.WaitGroup
	outcomes := make([]outcome, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/api/v1/query", "application/json", strings.NewReader(heavyQuery))
			if err != nil {
				fail("burst %d: %v", i, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()
	ok, rejected := 0, 0
	for i, o := range outcomes {
		switch o.code {
		case 200:
			ok++
		case 429:
			rejected++
			if o.retryAfter == "" {
				fail("burst %d: 429 without Retry-After", i)
			}
		default:
			fail("burst %d: unexpected status %d", i, o.code)
		}
	}
	// One solve slot, two queue slots, 100ms queue wait against a burst of
	// 12 long solves: the bulk must bounce, the admitted must complete.
	if ok < 1 || rejected < burst/2 || ok+rejected != burst {
		fail("burst outcome: %d ok, %d rejected of %d", ok, rejected, burst)
	}
	fmt.Printf("svcsmoke: burst %d ok / %d rejected (429)\n", ok, rejected)
}

func checkCancel() {
	// A long solve is canceled through the API; its own request returns 499.
	for attempt := 0; attempt < 5; attempt++ {
		type result struct {
			code int
			body string
		}
		done := make(chan result, 1)
		go func() {
			code, body := post("/api/v1/query", heavyQuery)
			done <- result{code, body}
		}()

		// Find its id in the in-flight listing and cancel it.
		var id int64
	poll:
		for i := 0; i < 500; i++ {
			var listing struct {
				Queries []struct {
					ID int64 `json:"id"`
				} `json:"queries"`
			}
			select {
			case r := <-done:
				// Finished before we could cancel; retry with a fresh run.
				fmt.Printf("svcsmoke: cancel attempt %d finished early (%d)\n", attempt, r.code)
				break poll
			default:
			}
			getJSON("/api/v1/queries", &listing)
			if len(listing.Queries) > 0 {
				id = listing.Queries[0].ID
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if id == 0 {
			continue
		}
		code, body := post(fmt.Sprintf("/api/v1/queries/%d/cancel", id), "")
		if code != 202 {
			fail("cancel request: %d %s", code, body)
		}
		r := <-done
		if r.code != 499 || !strings.Contains(r.body, "canceled") {
			fail("canceled query: %d %s", r.code, r.body)
		}
		fmt.Printf("svcsmoke: canceled query %d -> 499\n", id)
		return
	}
	fail("cancel: query finished before cancellation in every attempt")
}

// checkReadyz asserts the readiness probe goes green once the daemon reports
// listening. rpqd flips it right after the API listener starts, a hair after
// the "listening" line prints, so tolerate a brief 503.
func checkReadyz() {
	var last string
	for i := 0; i < 500; i++ {
		resp, err := http.Get(base + "/api/v1/readyz")
		if err != nil {
			fail("readyz: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 && strings.Contains(string(body), `"ready"`) {
			return
		}
		last = fmt.Sprintf("%d %s", resp.StatusCode, body)
		time.Sleep(2 * time.Millisecond)
	}
	fail("readyz never went ready: %s", last)
}

// fixedTraceparent is the W3C trace context svcsmoke injects: the trace ID
// must round-trip unchanged through every telemetry surface.
const (
	fixedTraceparent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	fixedTraceID     = "0123456789abcdef0123456789abcdef"
)

// checkTraceRoundTrip sends a long query with a fixed traceparent and asserts
// the same trace ID surfaces in the response headers, the observability
// plane's in-flight snapshot while the query runs, the slow-query log record,
// and the flight-recorder bundle's meta.json after it completes. (The access
// log is validated separately at the end of the run.)
func checkTraceRoundTrip(obsBase, slowPath, wdDir string) {
	type result struct {
		code, tpLen              int
		traceID, tp, reqID, body string
	}
	for attempt := 0; attempt < 5; attempt++ {
		done := make(chan result, 1)
		go func() {
			req, _ := http.NewRequest("POST", base+"/api/v1/query", strings.NewReader(heavyQuery))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("traceparent", fixedTraceparent)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				fail("trace query: %v", err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			tp := resp.Header.Get("traceparent")
			done <- result{resp.StatusCode, len(tp), resp.Header.Get("X-RPQ-Trace-Id"),
				tp, resp.Header.Get("X-RPQ-Request-Id"), string(raw)}
		}()

		// While the query runs, its snapshot on the observability plane must
		// carry the injected trace ID.
		var r result
		received, seen := false, false
		for i := 0; i < 500 && !seen && !received; i++ {
			select {
			case r = <-done:
				received = true
			default:
				var listing struct {
					Queries []struct {
						TraceID string `json:"trace_id"`
					} `json:"queries"`
				}
				getJSONURL(obsBase+"/debug/rpq/queries", &listing)
				for _, q := range listing.Queries {
					if q.TraceID == fixedTraceID {
						seen = true
					}
				}
				if !seen {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}
		if !received {
			r = <-done
		}
		if r.code != 200 {
			fail("trace query: %d %s", r.code, r.body)
		}
		if r.traceID != fixedTraceID {
			fail("X-RPQ-Trace-Id = %q, want %q", r.traceID, fixedTraceID)
		}
		if !strings.HasPrefix(r.tp, "00-"+fixedTraceID+"-") || r.tpLen != len(fixedTraceparent) {
			fail("traceparent response header = %q", r.tp)
		}
		if r.reqID == "" {
			fail("response missing X-RPQ-Request-Id")
		}
		if !seen {
			fmt.Printf("svcsmoke: trace attempt %d finished before the in-flight poll; retrying\n", attempt)
			continue
		}

		// The query ran well past the 50ms slow threshold, so by the time the
		// response was written the slow log and a flight-recorder bundle both
		// carry the trace.
		slow, err := os.ReadFile(slowPath)
		if err != nil || !strings.Contains(string(slow), fixedTraceID) {
			fail("slow log %s does not carry trace %s (err=%v)", slowPath, fixedTraceID, err)
		}
		found := false
		filepath.WalkDir(wdDir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || d.Name() != "meta.json" {
				return nil
			}
			if meta, err := os.ReadFile(path); err == nil && strings.Contains(string(meta), fixedTraceID) {
				found = true
			}
			return nil
		})
		if !found {
			fail("no flight-recorder bundle under %s carries trace %s", wdDir, fixedTraceID)
		}
		fmt.Println("svcsmoke: traceparent round-trip verified (headers, in-flight, slow log, bundle)")
		return
	}
	fail("trace: query finished before the in-flight snapshot in every attempt")
}

// checkSLO polls the burn-rate endpoint until the query route's objective has
// a usable window (the counters flow through the 1s tsdb cadence, so the
// first usable delta needs two snapshots).
func checkSLO(obsBase string) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		var doc struct {
			Schema string `json:"schema"`
			SLOs   []struct {
				Route     string  `json:"route"`
				Objective float64 `json:"objective"`
				Windows   []struct {
					Window   string  `json:"window"`
					Total    int64   `json:"total"`
					Bad      int64   `json:"bad"`
					BurnRate float64 `json:"burn_rate"`
				} `json:"windows"`
				BudgetRemaining float64 `json:"error_budget_remaining"`
			} `json:"slos"`
		}
		getJSONURL(obsBase+"/debug/rpq/slo", &doc)
		if doc.Schema != "rpq-slo/1" {
			fail("slo schema = %q", doc.Schema)
		}
		for _, s := range doc.SLOs {
			if s.Route != "query" {
				continue
			}
			for _, w := range s.Windows {
				if w.Total > 0 {
					fmt.Printf("svcsmoke: slo query objective=%.3f window=%s total=%d bad=%d burn=%.2f budget=%.3f\n",
						s.Objective, w.Window, w.Total, w.Bad, w.BurnRate, s.BudgetRemaining)
					return
				}
			}
		}
		if time.Now().After(deadline) {
			fail("slo: no usable window for route \"query\" within 15s")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// checkDebugIndex validates the /debug/rpq/ index document: it must use the
// rpq-debug/1 schema and enumerate the profiling surface as enabled.
func checkDebugIndex(obsBase string) {
	var doc struct {
		Schema   string `json:"schema"`
		Surfaces []struct {
			Path    string `json:"path"`
			Desc    string `json:"desc"`
			Enabled bool   `json:"enabled"`
		} `json:"surfaces"`
	}
	getJSONURL(obsBase+"/debug/rpq/", &doc)
	if doc.Schema != "rpq-debug/1" {
		fail("debug index schema = %q", doc.Schema)
	}
	profListed := false
	for _, s := range doc.Surfaces {
		if s.Desc == "" {
			fail("debug index surface %s has no description", s.Path)
		}
		if s.Path == "/debug/rpq/prof" {
			profListed = true
			if !s.Enabled {
				fail("debug index lists /debug/rpq/prof as disabled with -prof on")
			}
		}
	}
	if !profListed || len(doc.Surfaces) < 8 {
		fail("debug index surfaces incomplete: %+v", doc.Surfaces)
	}
	fmt.Printf("svcsmoke: debug index lists %d surfaces (prof enabled)\n", len(doc.Surfaces))
}

// checkProf drives the continuous-profiling surface end to end: heavy exist
// queries run until a capture window holds samples labeled rpq_kind=exist,
// the kind-sliced view must show a solver frame under that slice, a
// two-window diff must work, the watchdog bundles written for those slow
// queries must carry the pinned window's profile, and the captured window is
// archived to -prof-out for CI.
func checkProf(obsBase, wdDir, out string) {
	type window struct {
		ID       int64               `json:"id"`
		CPUBytes int                 `json:"cpu_bytes"`
		Err      string              `json:"error"`
		Labels   map[string][]string `json:"labels"`
	}
	var doc struct {
		Schema   string   `json:"schema"`
		WindowMS int64    `json:"window_ms"`
		Windows  []window `json:"windows"`
	}

	// The daemon captures 400ms windows every 600ms, so a ~300ms solve per
	// iteration quickly lands samples in some window.
	var existWin int64 = -1
	deadline := time.Now().Add(45 * time.Second)
	for existWin < 0 {
		if time.Now().After(deadline) {
			fail("no profile window captured rpq_kind=exist samples within 45s")
		}
		if code, body := post("/api/v1/query", heavyQuery); code != 200 {
			fail("prof workload query: %d %s", code, body)
		}
		getJSONURL(obsBase+"/debug/rpq/prof", &doc)
		if doc.Schema != "rpq-prof/1" {
			fail("prof schema = %q", doc.Schema)
		}
		if doc.WindowMS != 400 {
			fail("prof window_ms = %d, want 400", doc.WindowMS)
		}
		for _, w := range doc.Windows {
			for _, k := range w.Labels["rpq_kind"] {
				if k == "exist" {
					existWin = w.ID
				}
			}
		}
	}

	// Kind-sliced aggregation: the exist slice's frames are solver frames.
	var wdoc struct {
		Value  string `json:"value_type"`
		Slices []struct {
			Value  string `json:"value"`
			Total  int64  `json:"total"`
			Frames []struct {
				Func string `json:"func"`
			} `json:"frames"`
		} `json:"slices"`
	}
	getJSONURL(fmt.Sprintf("%s/debug/rpq/prof?window=%d&by=rpq_kind", obsBase, existWin), &wdoc)
	if wdoc.Value != "cpu" {
		fail("prof window value type = %q", wdoc.Value)
	}
	solver := false
	for _, s := range wdoc.Slices {
		if s.Value != "exist" {
			continue
		}
		for _, f := range s.Frames {
			if strings.Contains(f.Func, "rpq/internal/core.") {
				solver = true
			}
		}
	}
	if !solver {
		fail("rpq_kind=exist slice of window %d has no rpq/internal/core frame: %+v", existWin, wdoc.Slices)
	}

	// Baseline diffing between two retained windows.
	var other int64 = -1
	for _, w := range doc.Windows {
		if w.ID != existWin && w.CPUBytes > 0 {
			other = w.ID
		}
	}
	if other >= 0 {
		var ddoc struct {
			Schema string `json:"schema"`
			A      int64  `json:"a"`
			B      int64  `json:"b"`
			Diff   struct {
				Frames []struct {
					DeltaFlat int64 `json:"delta_flat"`
					DeltaCum  int64 `json:"delta_cum"`
				} `json:"frames"`
			} `json:"diff"`
		}
		getJSONURL(fmt.Sprintf("%s/debug/rpq/prof/diff?a=%d&b=%d", obsBase, existWin, other), &ddoc)
		if ddoc.Schema != "rpq-prof/1" || ddoc.A != existWin || ddoc.B != other {
			fail("prof diff %d vs %d: schema %q a=%d b=%d", existWin, other, ddoc.Schema, ddoc.A, ddoc.B)
		}
		nonzero := false
		for _, f := range ddoc.Diff.Frames {
			if f.DeltaFlat != 0 || f.DeltaCum != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			fail("prof diff %d vs %d returned no frames with nonzero deltas", existWin, other)
		}
	}

	// The slow queries above tripped the watchdog while captures were in
	// flight, so at least one bundle links a pinned window and embeds its
	// profile bytes.
	withProfile := false
	filepath.WalkDir(wdDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || d.Name() != "profile.pb.gz" {
			return nil
		}
		meta, merr := os.ReadFile(filepath.Join(filepath.Dir(path), "meta.json"))
		if merr == nil && strings.Contains(string(meta), `"profile_window"`) {
			withProfile = true
		}
		return nil
	})
	if !withProfile {
		fail("no flight-recorder bundle under %s embeds a profile window", wdDir)
	}

	// Archive the labeled window for CI.
	if out != "" {
		resp, err := http.Get(fmt.Sprintf("%s/debug/rpq/prof/download?window=%d", obsBase, existWin))
		if err != nil {
			fail("prof download: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(raw) == 0 {
			fail("prof download: %d (%d bytes)", resp.StatusCode, len(raw))
		}
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			fail("write %s: %v", out, err)
		}
		fmt.Printf("svcsmoke: wrote %s (%d bytes, window %d)\n", out, len(raw), existWin)
	}
	fmt.Printf("svcsmoke: prof window %d sliced by rpq_kind, diffed, and linked into a bundle\n", existWin)
}

// checkExemplars asserts the latency histogram's top buckets carry trace IDs
// in both the JSON surface and the Prometheus exposition.
func checkExemplars(obsBase string) {
	var doc struct {
		Exemplars []struct {
			TraceID string  `json:"trace_id"`
			ValueMS float64 `json:"value_ms"`
		} `json:"exemplars"`
	}
	getJSONURL(obsBase+"/debug/rpq/exemplars", &doc)
	if len(doc.Exemplars) == 0 {
		fail("no exemplars after a traced query workload")
	}
	for _, e := range doc.Exemplars {
		if len(e.TraceID) != 32 || e.ValueMS <= 0 {
			fail("malformed exemplar: %+v", e)
		}
	}

	resp, err := http.Get(obsBase + "/metrics")
	if err != nil {
		fail("scrape metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	found := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.Contains(line, "_hist_bucket") && strings.Contains(line, `# {trace_id="`) {
			found = true
		}
	}
	if !found {
		fail("no exemplar on any _hist_bucket line in /metrics")
	}
	fmt.Printf("svcsmoke: %d exemplars in JSON, exposition carries trace IDs\n", len(doc.Exemplars))
}

// scrapeTS archives the observability time-series window and sanity-checks
// that the service gauges are in it.
func scrapeTS(obsBase, out string) {
	resp, err := http.Get(obsBase + "/debug/rpq/ts")
	if err != nil {
		fail("scrape ts: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("scrape ts: %v", err)
	}
	var doc struct {
		Schema string                   `json:"schema"`
		Points int                      `json:"points"`
		Series map[string][]json.Number `json:"series"`
	}
	mustUnmarshal(string(raw), &doc)
	if doc.Schema != "rpq-tsdb/1" {
		fail("ts schema = %q", doc.Schema)
	}
	if doc.Points < 1 {
		fail("ts window is empty")
	}
	for _, name := range []string{"rpq_svc_admitted_total", "rpq_svc_rejected_total", "rpq_qcache_hits_total"} {
		col, ok := doc.Series[name]
		if !ok {
			fail("%s missing from ts series", name)
		}
		if len(col) != doc.Points {
			fail("%s column has %d points, want %d (misaligned)", name, len(col), doc.Points)
		}
	}
	if out != "" {
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			fail("write %s: %v", out, err)
		}
		fmt.Printf("svcsmoke: wrote %s (%d bytes, %d series)\n", out, len(raw), len(doc.Series))
	}
}

// checkDrain sends SIGTERM with a query still in flight: readiness must flip
// to 503 while liveness stays 200, the query must complete (the drain budget
// is generous), and the process must exit zero.
func checkDrain(cmd *exec.Cmd) {
	done := make(chan int, 1)
	go func() {
		code, _ := post("/api/v1/query", heavyQuery)
		done <- code
	}()
	// Wait until the query is actually in flight before pulling the plug.
	for i := 0; i < 500; i++ {
		var listing struct {
			Queries []json.RawMessage `json:"queries"`
		}
		getJSON("/api/v1/queries", &listing)
		if len(listing.Queries) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fail("SIGTERM: %v", err)
	}
	// The drain starts a moment after the signal lands; poll readyz until it
	// reports 503 (the in-flight query holds the drain open long enough).
	readyFlipped := false
	for i := 0; i < 500 && !readyFlipped; i++ {
		resp, err := http.Get(base + "/api/v1/readyz")
		if err != nil {
			fail("readyz during drain: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case 200:
			time.Sleep(2 * time.Millisecond)
		case 503:
			if !strings.Contains(string(body), "not_ready") {
				fail("readyz during drain: 503 body %s", body)
			}
			readyFlipped = true
		default:
			fail("readyz during drain: %d %s", resp.StatusCode, body)
		}
	}
	if !readyFlipped {
		fail("readyz never flipped to 503 during drain")
	}
	// Liveness is unaffected: healthz still answers 200 mid-drain.
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	getJSON("/api/v1/healthz", &health)
	if health.Status != "ok" {
		fail("healthz during drain: %+v", health)
	}
	if code := <-done; code != 200 {
		fail("in-flight query during drain: %d, want 200", code)
	}
	if err := cmd.Wait(); err != nil {
		fail("rpqd exit: %v", err)
	}
	fmt.Println("svcsmoke: drained (readyz 503, healthz 200) and exited clean")
}

// checkAccessLog validates the daemon's NDJSON access log line by line after
// the run: every line must parse as JSON and carry the schema fields, the
// fixed-traceparent query must appear with the injected trace ID and its
// query annotations, and the heavy-graph PUT must have left an audit line.
func checkAccessLog(path string, keep bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("read access log: %v", err)
	}
	type logLine struct {
		Time      string  `json:"time"`
		Level     string  `json:"level"`
		Msg       string  `json:"msg"`
		Stream    string  `json:"stream"`
		Route     string  `json:"route"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		DurMS     float64 `json:"dur_ms"`
		RequestID string  `json:"request_id"`
		TraceID   string  `json:"trace_id"`
		SpanID    string  `json:"span_id"`
		Kind      string  `json:"kind"`
		Graph     string  `json:"graph"`
		Admission string  `json:"admission"`
		CPUNS     int64   `json:"cpu_ns"`
		Action    string  `json:"action"`
		Result    string  `json:"result"`
	}
	var access, audit, traced int
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var l logLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			fail("access log line %d is not JSON: %v: %s", n, err, line)
		}
		if l.Time == "" || l.Level == "" || l.Msg == "" {
			fail("access log line %d missing slog envelope: %s", n, line)
		}
		switch l.Stream {
		case "access":
			access++
			if l.Route == "" || l.Method == "" || l.Path == "" || l.Status == 0 ||
				l.RequestID == "" || len(l.TraceID) != 32 || len(l.SpanID) != 16 {
				fail("access log line %d missing schema fields: %s", n, line)
			}
			if l.TraceID == fixedTraceID && l.Route == "query" {
				traced++
				if l.Status != 200 || l.Kind != "exist" || l.Graph != "heavy" ||
					l.Admission != "ok" || l.CPUNS <= 0 {
					fail("traced access line lacks query annotations: %s", line)
				}
			}
		case "audit":
			audit++
			if l.Action == "" || l.Graph == "" || l.Result == "" || l.RequestID == "" {
				fail("audit log line %d missing schema fields: %s", n, line)
			}
		default:
			fail("access log line %d has unknown stream %q: %s", n, l.Stream, line)
		}
	}
	if access < 10 {
		fail("access log has only %d access lines", access)
	}
	if traced == 0 {
		fail("access log has no line for trace %s on route query", fixedTraceID)
	}
	if audit == 0 {
		fail("access log has no audit line for the heavy-graph load")
	}
	where := path
	if !keep {
		where = fmt.Sprintf("%s (temporary)", path)
	}
	fmt.Printf("svcsmoke: access log valid: %d access / %d audit lines, traced query present (%s)\n",
		access, audit, where)
}

// ---- HTTP helpers ----

func post(path, body string) (int, string) {
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		fail("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

func getJSON(path string, v any) {
	getJSONURL(base+path, v)
}

func getJSONURL(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		fail("GET %s: %d %s", url, resp.StatusCode, raw)
	}
	mustUnmarshal(string(raw), v)
}

func mustUnmarshal(s string, v any) {
	if err := json.Unmarshal([]byte(s), v); err != nil {
		fail("decode %q: %v", s, err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "svcsmoke: FAIL: "+format+"\n", args...)
	if daemon != nil {
		daemon.Kill()
	}
	os.Exit(1)
}
