// Command experiments regenerates every table and figure of the paper's
// evaluation (Liu et al., PLDI 2004, Section 6) on the synthetic workloads
// of internal/gen:
//
//	experiments -table 1      Table 1: uninitialized-use detection
//	experiments -table 2      Table 2: LTS deadlock detection
//	experiments -table 3      Table 3: hashing vs. nested arrays
//	experiments -figure 3     Figure 3: worklist and time vs. graph size
//	experiments -ablation X   X ∈ direction|memo|domains|compact|scc|complete|workers
//	experiments -all          everything
//
// Absolute times differ from the paper's 2.0 GHz Pentium 4; the comparisons
// that matter are the relative ones: which variant wins, by what factor,
// and how cost scales with input size.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"rpq/internal/core"
	"rpq/internal/gen"
	"rpq/internal/graph"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/queries"
	"rpq/internal/subst"
)

// liveGauges, when -http is set, exposes each running query's worklist
// depth, reach size, and table bytes at /metrics.
var liveGauges *obs.SolverGauges

// section labels bench entries with the table/figure/ablation being run.
var section string

// workerCount is the -workers flag: goroutines for every measured
// existential query (<=1 sequential).
var workerCount int

// queryTimeout is the -timeout flag: the per-query wall-clock bound; a
// measured query exceeding it aborts the run with its partial statistics.
var queryTimeout time.Duration

// explainOn is the -explain flag: collect execution profiles for every
// measured query and carry the hot-state fields into the bench entries.
var explainOn bool

// benchEntry is one machine-comparable measurement, in the shape of a
// `go test -bench` result plus the solver counters (BENCH_*.json style).
type benchEntry struct {
	Name            string `json:"name"`
	NsPerOp         int64  `json:"ns_per_op"`
	WorklistInserts int    `json:"worklist_inserts"`
	MatchCalls      int    `json:"match_calls"`
	EnumSubsts      int    `json:"enum_substs"`
	ResultPairs     int    `json:"result_pairs"`
	Bytes           int64  `json:"bytes"`
	SolveNS         int64  `json:"solve_ns"`
	// Populated under -explain: total match attempts and the hottest
	// automaton state by visit count.
	MatchAttempts  int64  `json:"match_attempts,omitempty"`
	HotState       string `json:"hot_state,omitempty"`
	HotStateVisits int64  `json:"hot_state_visits,omitempty"`
}

var benchEntries []benchEntry

// record appends one bench entry; run() calls it for every measured query.
func record(name string, res *core.Result, dt time.Duration) {
	e := benchEntry{
		Name:            name,
		NsPerOp:         dt.Nanoseconds(),
		WorklistInserts: res.Stats.WorklistInserts,
		MatchCalls:      res.Stats.MatchCalls,
		EnumSubsts:      res.Stats.EnumSubsts,
		ResultPairs:     res.Stats.ResultPairs,
		Bytes:           res.Stats.Bytes,
		SolveNS:         res.Stats.Phases.Solve.Wall.Nanoseconds(),
	}
	if ex := res.Explain; ex != nil {
		e.MatchAttempts = ex.Totals.Attempts
		if top := ex.TopStates(1); len(top) > 0 {
			if top[0].Bad {
				e.HotState = "bad"
			} else {
				e.HotState = fmt.Sprintf("s%d", top[0].State)
			}
			e.HotStateVisits = top[0].Visits
		}
	}
	benchEntries = append(benchEntries, e)
}

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate Table 1, 2, or 3")
		figure    = flag.Int("figure", 0, "regenerate Figure 3")
		ablation  = flag.String("ablation", "", "direction|memo|domains|compact|scc|complete|workers")
		all       = flag.Bool("all", false, "run everything")
		workers   = flag.Int("workers", 1, "goroutines for every measured existential query (<=1 sequential)")
		timeout   = flag.Duration("timeout", 0, "per-query wall-clock bound; exceeding it aborts with partial stats")
		maxCost   = flag.Float64("enumcost", 2e7, "run enumeration only when substs×edges is below this (n/d otherwise, like the paper's 180 s limit)")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/vars, and /debug/pprof on this address during the run")
		benchJSON = flag.String("benchjson", "", "write a BENCH_*.json-compatible summary of every measured query to this file")
		explain   = flag.Bool("explain", false, "collect execution profiles; bench entries gain match_attempts and hot_state fields")
	)
	flag.Parse()
	workerCount = *workers
	explainOn = *explain
	queryTimeout = *timeout

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: observability on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr)
		liveGauges = obs.NewSolverGauges(nil)
	}

	ran := false
	if *table == 1 || *all {
		table1()
		ran = true
	}
	if *table == 2 || *all {
		table2(*maxCost)
		ran = true
	}
	if *table == 3 || *all {
		table3()
		ran = true
	}
	if *figure == 3 || *all {
		figure3()
		ran = true
	}
	if *ablation != "" || *all {
		names := []string{*ablation}
		if *all {
			names = []string{"direction", "memo", "domains", "compact", "scc", "complete", "workers"}
		}
		for _, n := range names {
			runAblation(n)
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			Benchmarks []benchEntry `json:"benchmarks"`
		}{benchEntries})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d bench entries to %s\n", len(benchEntries), *benchJSON)
	}
}

// run executes one query and returns the result with wall-clock time.
func run(g *graph.Graph, start int32, pat string, opts core.Options) (*core.Result, time.Duration) {
	opts.Gauges = liveGauges
	opts.Explain = explainOn
	opts.Deadline = queryTimeout
	if opts.Workers == 0 {
		opts.Workers = workerCount
	}
	q := core.MustCompile(pattern.MustParse(pat), g.U)
	t0 := time.Now()
	res, err := core.Exist(g, start, q, opts)
	if err != nil {
		var ie *core.InterruptError
		if errors.As(err, &ie) {
			fmt.Fprintf(os.Stderr, "experiments: %v (partial: worklist=%d reach=%d substs=%d)\n",
				err, ie.Stats.WorklistInserts, ie.Stats.ReachSize, ie.Stats.Substs)
		} else {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
		os.Exit(1)
	}
	dt := time.Since(t0)
	record(fmt.Sprintf("%s/%s/%s", section, opts.Algo, opts.Table), res, dt)
	return res, dt
}

// backwardSetup reverses the graph and finds the post-exit start vertex.
func backwardSetup(g *graph.Graph) (*graph.Graph, int32) {
	r := g.Reverse()
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				return r, e.To
			}
		}
	}
	fmt.Fprintln(os.Stderr, "experiments: no exit() edge")
	os.Exit(1)
	return nil, 0
}

const (
	bwdUninit = "_* use(x,l) (!def(x))* entry()"
	fwdUninit = "(!def(x))* use(x,_)"
)

func table1() {
	fmt.Println("Table 1: uninitialized-use detection (backward query for basic and")
	fmt.Println("precomputation, forward query for enumeration, as in the paper)")
	fmt.Printf("%-10s %5s %6s %7s | %9s %9s | %9s %9s | %9s %9s %7s\n",
		"input", "LOC", "edges", "result",
		"basic-wl", "time", "pre-wl", "time", "enum-wl", "time", "substs")
	for _, spec := range gen.Table1Specs() {
		section = "table1/" + spec.Name
		g := gen.Program(spec)
		rg, rstart := backwardSetup(g)

		basic, tBasic := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic})
		pre, tPre := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoPrecomp})
		enum, tEnum := run(g, g.Start(), fwdUninit, core.Options{Algo: core.AlgoEnum})

		fmt.Printf("%-10s %5d %6d %7d | %9d %8.3fs | %9d %8.3fs | %9d %8.3fs %7d\n",
			spec.Name, spec.LOC, g.NumEdges(), basic.Stats.ResultPairs,
			basic.Stats.WorklistInserts, tBasic.Seconds(),
			pre.Stats.WorklistInserts, tPre.Seconds(),
			enum.Stats.WorklistInserts, tEnum.Seconds(), enum.Stats.EnumSubsts)
	}
	fmt.Println()
}

func table2(maxCost float64) {
	deadlock, _ := queries.ByName("lts-deadlock")
	fmt.Println("Table 2: LTS deadlock detection (forward existential query)")
	fmt.Printf("%-11s %7s %7s %7s | %9s %9s | %9s %9s | %9s %9s %7s\n",
		"input", "states", "edges", "result",
		"basic-wl", "time", "pre-wl", "time", "enum-wl", "time", "substs")
	for _, spec := range gen.Table2Specs() {
		section = "table2/" + spec.Name
		l := gen.RandomLTS(spec)
		g := l.ForExistential()

		basic, tBasic := run(g, g.Start(), deadlock.Pattern, core.Options{Algo: core.AlgoBasic})
		pre, tPre := run(g, g.Start(), deadlock.Pattern, core.Options{Algo: core.AlgoPrecomp})

		q := core.MustCompile(pattern.MustParse(deadlock.Pattern), g.U)
		doms := core.ComputeDomains(q, g, core.DomainsRefined)
		enumWL, enumTime, enumSubsts := "n/d", "n/d", fmt.Sprint(doms.Count())
		if float64(doms.Count())*float64(g.NumEdges()) <= maxCost {
			enum, tEnum := run(g, g.Start(), deadlock.Pattern, core.Options{Algo: core.AlgoEnum})
			enumWL = fmt.Sprint(enum.Stats.WorklistInserts)
			enumTime = fmt.Sprintf("%8.3fs", tEnum.Seconds())
			enumSubsts = fmt.Sprint(enum.Stats.EnumSubsts)
		}
		fmt.Printf("%-11s %7d %7d %7d | %9d %8.3fs | %9d %8.3fs | %9s %9s %7s\n",
			spec.Name, spec.States, g.NumEdges(), basic.Stats.ResultPairs,
			basic.Stats.WorklistInserts, tBasic.Seconds(),
			pre.Stats.WorklistInserts, tPre.Seconds(),
			enumWL, enumTime, enumSubsts)
	}
	fmt.Println()
}

func table3() {
	fmt.Println("Table 3: memory and time, hashing vs. nested arrays (uninitialized uses)")
	fmt.Printf("%-10s | %10s %8s %10s %8s | %10s %8s %10s %8s | %10s %8s %10s %8s\n",
		"input",
		"b-hash", "time", "b-nested", "time",
		"p-hash", "time", "p-nested", "time",
		"e-hash", "time", "e-nested", "time")
	for _, spec := range gen.Table1Specs() {
		section = "table3/" + spec.Name
		g := gen.Program(spec)
		rg, rstart := backwardSetup(g)
		row := fmt.Sprintf("%-10s |", spec.Name)
		for _, algo := range []core.Algo{core.AlgoBasic, core.AlgoPrecomp, core.AlgoEnum} {
			for _, tk := range []subst.TableKind{subst.Hash, subst.Nested} {
				var res *core.Result
				var dt time.Duration
				if algo == core.AlgoEnum {
					res, dt = run(g, g.Start(), fwdUninit, core.Options{Algo: algo, Table: tk})
				} else {
					res, dt = run(rg, rstart, bwdUninit, core.Options{Algo: algo, Table: tk})
				}
				row += fmt.Sprintf(" %9dk %7.3fs", res.Stats.Bytes/1024, dt.Seconds())
			}
			row += " |"
		}
		fmt.Println(row)
	}
	fmt.Println()
}

func figure3() {
	fmt.Println("Figure 3: worklist size and running time vs. graph size")
	fmt.Println("(basic algorithm, backward uninitialized-uses query)")
	fmt.Printf("%8s %10s %10s %12s\n", "edges", "worklist", "time(ms)", "wl/edges")
	for i, edges := range []int{500, 1000, 1500, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000} {
		section = fmt.Sprintf("figure3/%d", edges)
		spec := gen.ProgSpec{
			Name: fmt.Sprintf("sweep-%d", edges), LOC: 0, Seed: int64(3000 + i),
			Edges: edges, Vars: 40 + edges/25, UninitFrac: 0.12,
			UseSites: true, EntryLoop: true,
		}
		g := gen.Program(spec)
		rg, rstart := backwardSetup(g)
		res, dt := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic})
		fmt.Printf("%8d %10d %10.2f %12.2f\n",
			g.NumEdges(), res.Stats.WorklistInserts, float64(dt.Microseconds())/1000,
			float64(res.Stats.WorklistInserts)/float64(g.NumEdges()))
	}
	fmt.Println()
}

func runAblation(name string) {
	section = "ablation/" + name
	spec := gen.Table1Specs()[4] // "cut": mid-sized
	g := gen.Program(spec)
	rg, rstart := backwardSetup(g)
	switch name {
	case "direction":
		fmt.Println("Ablation: forward vs. backward formulation (Section 5.1)")
		fwd, tF := run(g, g.Start(), fwdUninit, core.Options{Algo: core.AlgoBasic})
		bwd, tB := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic})
		fmt.Printf("  forward  (!def(x))* use(x,_):          worklist %8d  time %8.3fs\n",
			fwd.Stats.WorklistInserts, tF.Seconds())
		fmt.Printf("  backward _* use(x,l)(!def(x))*entry(): worklist %8d  time %8.3fs\n",
			bwd.Stats.WorklistInserts, tB.Seconds())
		fmt.Println("  (the forward query enumerates x for every def under the negation;")
		fmt.Println("   the backward query binds x positively first — the paper's point)")
	case "memo":
		fmt.Println("Ablation: match memoization (M_s)")
		basic, tB := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic})
		memo, tM := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoMemo})
		fmt.Printf("  basic: match calls %9d  time %8.3fs\n", basic.Stats.MatchCalls, tB.Seconds())
		fmt.Printf("  memo:  match calls %9d  time %8.3fs  (+%d KiB for M_s)\n",
			memo.Stats.MatchCalls, tM.Seconds(), (memo.Stats.Bytes-basic.Stats.Bytes)/1024)
	case "domains":
		fmt.Println("Ablation: parameter-domain refinement (Section 5.3), forward enumeration")
		small := gen.Table1Specs()[0]
		sg := gen.Program(small)
		refined, tR := run(sg, sg.Start(), fwdUninit, core.Options{Algo: core.AlgoEnum, Domains: core.DomainsRefined})
		alls, tA := run(sg, sg.Start(), fwdUninit, core.Options{Algo: core.AlgoEnum, Domains: core.DomainsAllSymbols})
		fmt.Printf("  refined domains: %6d substitutions  time %8.3fs\n", refined.Stats.EnumSubsts, tR.Seconds())
		fmt.Printf("  all symbols:     %6d substitutions  time %8.3fs\n", alls.Stats.EnumSubsts, tA.Seconds())
	case "compact":
		fmt.Println("Ablation: query-relevant graph compaction (Section 5.3)")
		plain, tP := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic})
		comp, tC := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic, Compact: true})
		fmt.Printf("  wildcard query (_* ... — every edge stays relevant):\n")
		fmt.Printf("    full graph:      worklist %8d  time %8.3fs\n", plain.Stats.WorklistInserts, tP.Seconds())
		fmt.Printf("    compacted graph: worklist %8d  time %8.3fs\n", comp.Stats.WorklistInserts, tC.Seconds())
		// A query without wildcards, where only state/act edges of an LTS
		// can ever be matched: the deadlock query on an LTS whose graph
		// also carries decoy bookkeeping edges.
		l := gen.RandomLTS(gen.LTSSpec{Name: "c", Seed: 17, States: 2000, Trans: 8000, Actions: 8, InvisibleFrac: 0.2})
		lg := l.ForExistential()
		for v := int32(0); v < int32(l.NumStates); v++ {
			for k := 0; k < 4; k++ {
				lg.MustAddEdgeStr(lg.VertexName(v), fmt.Sprintf("trace(%s,%d)", lg.VertexName(v), k), lg.VertexName(v))
			}
		}
		// The deadlock query reformulated without the _ wildcard: it still
		// traverses the whole system, but cannot match the decoy edges, so
		// compaction can drop them.
		q2 := "(act(_)|state(_))* state(s) act(_)"
		full2, tF2 := run(lg, lg.Start(), q2, core.Options{Algo: core.AlgoBasic})
		comp2, tC2 := run(lg, lg.Start(), q2, core.Options{Algo: core.AlgoBasic, Compact: true})
		fmt.Printf("  wildcard-free query %q on an LTS with decoy trace() self-loops:\n", q2)
		fmt.Printf("    full graph:      worklist %8d  time %8.3fs\n", full2.Stats.WorklistInserts, tF2.Seconds())
		fmt.Printf("    compacted graph: worklist %8d  time %8.3fs\n", comp2.Stats.WorklistInserts, tC2.Seconds())
	case "scc":
		fmt.Println("Ablation: SCC-ordered processing with per-component release (Section 5.3)")
		plain, tP := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic})
		scc, tS := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoBasic, SCCOrder: true})
		fmt.Printf("  plain: peak live triples %8d  bytes %8dk  time %8.3fs\n",
			plain.Stats.PeakTriples, plain.Stats.Bytes/1024, tP.Seconds())
		fmt.Printf("  scc:   peak live triples %8d  bytes %8dk  time %8.3fs\n",
			scc.Stats.PeakTriples, scc.Stats.Bytes/1024, tS.Seconds())
	case "complete":
		fmt.Println("Ablation: incomplete automata vs. trap-state completion (vs. Liu & Yu 2002)")
		l := gen.RandomLTS(gen.LTSSpec{Name: "u", Seed: 23, States: 1500, Trans: 6000, Actions: 8, InvisibleFrac: 0.2})
		ug := l.ForUniversal()
		// Ground deterministic pattern: the universal transformation makes
		// every path alternate state and act labels.
		q := core.MustCompile(pattern.MustParse("(state(_) act(_))* state(_)?"), ug.U)
		for _, cm := range []core.CompletionMode{core.Incomplete, core.CompleteTrap, core.CompleteExplicit} {
			t0 := time.Now()
			res, err := core.Univ(ug, ug.Start(), q, core.Options{Completion: cm, Gauges: liveGauges, Deadline: queryTimeout})
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			dt := time.Since(t0)
			record(fmt.Sprintf("%s/univ/%s", section, cm), res, dt)
			fmt.Printf("  %-11s worklist %8d  match calls %9d  bytes %8dk  time %8.3fs  answers %d\n",
				cm.String()+":", res.Stats.WorklistInserts, res.Stats.MatchCalls,
				res.Stats.Bytes/1024, dt.Seconds(), res.Stats.ResultPairs)
		}
		fmt.Println("  (explicit completion is the prior-work construction; its per-label trap")
		fmt.Println("   transitions cost extra matches and space the incomplete algorithm avoids)")
	case "workers":
		fmt.Println("Ablation: sharded parallel worklist solver (Workers goroutines)")
		seq, tSeq := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoMemo, Workers: 1})
		fmt.Printf("  sequential:  worklist %8d  time %8.3fs\n", seq.Stats.WorklistInserts, tSeq.Seconds())
		for _, w := range []int{2, 4, 8} {
			par, tPar := run(rg, rstart, bwdUninit, core.Options{Algo: core.AlgoMemo, Workers: w})
			same := "same answers"
			if par.Stats.ResultPairs != seq.Stats.ResultPairs ||
				par.Stats.WorklistInserts != seq.Stats.WorklistInserts {
				same = "ANSWERS DIFFER"
			}
			fmt.Printf("  %d workers:   worklist %8d  time %8.3fs  speedup %5.2fx  (%s)\n",
				w, par.Stats.WorklistInserts, tPar.Seconds(),
				tSeq.Seconds()/tPar.Seconds(), same)
		}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown ablation %q\n", name)
		os.Exit(2)
	}
	fmt.Println()
}
