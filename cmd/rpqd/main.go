// Command rpqd is the long-lived parametric-RPQ query service: a
// JSON-over-HTTP daemon exposing a named graph catalog, query submission
// (existential / universal / violations) against catalog entries, and
// in-flight query listing and cancellation, with a shared compiled-query
// cache and admission control in front of the solver. An optional second
// listener serves the observability plane (/metrics, /debug/rpq/queries,
// /debug/rpq/ts, /debug/rpq/dash). On SIGINT/SIGTERM the daemon drains:
// new requests get 503, in-flight queries run up to -drain-timeout and are
// then canceled, and only afterwards does the observability plane close, so
// the last queries' metrics remain scrapeable to the end.
//
// See docs/service.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rpq"
	"rpq/internal/service"
)

// loadFlags collects repeated -load name=path or -load name=format:path.
type loadFlags []loadSpec

type loadSpec struct{ name, format, path string }

func (l *loadFlags) String() string { return fmt.Sprint(*l) }

func (l *loadFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=path or name=format:path, got %q", v)
	}
	spec := loadSpec{name: name, path: rest}
	if format, path, ok := strings.Cut(rest, ":"); ok {
		switch format {
		case "text", "aut", "aut-universal", "xml", "go":
			spec.format, spec.path = format, path
		}
	}
	*l = append(*l, spec)
	return nil
}

// sloFlags collects repeated -slo route:objective[:latency] specs.
type sloFlags []rpq.SLO

func (s *sloFlags) String() string { return fmt.Sprint(*s) }

func (s *sloFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want route:objective or route:objective:latency, got %q", v)
	}
	obj, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || obj <= 0 || obj >= 1 {
		return fmt.Errorf("objective must be a fraction in (0,1), got %q", parts[1])
	}
	slo := rpq.SLO{Route: parts[0], Objective: obj}
	if len(parts) == 3 {
		thr, err := time.ParseDuration(parts[2])
		if err != nil || thr <= 0 {
			return fmt.Errorf("latency threshold must be a positive duration, got %q", parts[2])
		}
		slo.LatencyThreshold = thr
	}
	*s = append(*s, slo)
	return nil
}

// openLogger builds the structured service logger from -log / -log-format.
// Returns nil (logging disabled) for an empty path; "-" means stdout.
func openLogger(path, format string) (*slog.Logger, io.Closer, error) {
	if path == "" {
		return nil, nil, nil
	}
	var w io.Writer = os.Stdout
	var c io.Closer
	if path != "-" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		w, c = f, f
	}
	var h slog.Handler
	switch format {
	case "", "json":
		h = slog.NewJSONHandler(w, nil)
	case "text":
		h = slog.NewTextHandler(w, nil)
	default:
		return nil, nil, fmt.Errorf("unknown log format %q (want json or text)", format)
	}
	return slog.New(h), c, nil
}

func main() {
	var loads loadFlags
	var slos sloFlags
	var (
		addr          = flag.String("addr", "127.0.0.1:8090", "API listen address")
		obsAddr       = flag.String("obs", "", "observability listen address (empty = no observability listener)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrent solves (0 = NumCPU)")
		maxQueue      = flag.Int("max-queue", 0, "max requests waiting for a solve slot (0 = 2x max-concurrent)")
		queueWait     = flag.Duration("queue-wait", 0, "max time a request waits for a slot before 429 (0 = 5s)")
		deadline      = flag.Duration("deadline", 0, "default per-query deadline (0 = 30s)")
		maxDeadline   = flag.Duration("max-deadline", 0, "cap on per-request deadline_ms (0 = 2m)")
		cacheSize     = flag.Int("cache-size", 0, "compiled-query cache capacity (0 = 128)")
		workers       = flag.Int("workers", 0, "default solver workers per query (0 = sequential)")
		noLint        = flag.Bool("no-lint", false, "disable the lint request-validation gate")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight queries before canceling them")
		slowLogPath   = flag.String("slowlog", "", "append slow-query NDJSON records to this file")
		slowThreshold = flag.Duration("slow", time.Second, "slow-query threshold for -slowlog")
		logPath       = flag.String("log", "", `structured log destination: file path or "-" for stdout (empty = disabled)`)
		logFormat     = flag.String("log-format", "json", "structured log format: json (NDJSON) or text")
		watchdogDir   = flag.String("watchdog", "", "write flight-recorder bundles for anomalous queries under this directory")
		watchdogSlow  = flag.Duration("watchdog-slow", 2*time.Second, "slow-query threshold for -watchdog bundles")
		watchdogMax   = flag.Int("watchdog-max", 32, "max flight-recorder bundles kept in -watchdog (0 = unbounded)")
		profOn        = flag.Bool("prof", true, "run the continuous profiler (effective with -obs): duty-cycled CPU windows + heap snapshots on /debug/rpq/prof")
		profWindow    = flag.Duration("prof-window", 0, "continuous-profiler CPU capture window (0 = 10s)")
		profInterval  = flag.Duration("prof-interval", 0, "continuous-profiler capture cadence (0 = 60s)")
		profRetain    = flag.Int("prof-retain", 0, "continuous-profiler windows retained in memory (0 = 32)")
	)
	flag.Var(&loads, "load", "preload a graph: name=path or name=format:path (text, aut, aut-universal, xml, go); repeatable")
	flag.Var(&slos, "slo", "track an SLO: route:objective[:latency], e.g. query:0.999:30s; repeatable (default query:0.999)")
	flag.Parse()
	if len(slos) == 0 {
		slos = sloFlags{{Route: "query", Objective: 0.999}}
	}

	cfg := service.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		QueueWait:       *queueWait,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CacheSize:       *cacheSize,
		Workers:         *workers,
		DisableLint:     *noLint,
		SLOs:            slos,
	}
	if *slowLogPath != "" {
		f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("open slowlog: %v", err)
		}
		defer f.Close()
		cfg.SlowLog = rpq.NewSlowLog(f, *slowThreshold)
	}
	if *watchdogDir != "" {
		cfg.Watchdog = &rpq.Watchdog{Dir: *watchdogDir, Slow: *watchdogSlow, MaxBundles: *watchdogMax}
	}
	logger, logCloser, err := openLogger(*logPath, *logFormat)
	if err != nil {
		fatal("open log: %v", err)
	}
	if logCloser != nil {
		defer logCloser.Close()
	}
	cfg.Logger = logger

	svc := service.NewServer(cfg)
	// Not ready until the listeners are up; /api/v1/readyz answers 503 until
	// then (and again once draining starts), while healthz stays pure
	// liveness.
	svc.SetReady(false)
	for _, l := range loads {
		f, err := os.Open(l.path)
		if err != nil {
			fatal("load %s: %v", l.name, err)
		}
		info, err := svc.LoadGraph(l.name, l.format, f)
		f.Close()
		if err != nil {
			fatal("load %s: %v", l.name, err)
		}
		fmt.Printf("rpqd loaded graph %q (%s, %d vertices, %d edges)\n",
			info.Name, info.Format, info.Vertices, info.Edges)
	}

	var obsSrv *rpq.ObservabilityServer
	if *obsAddr != "" {
		obsCfg := rpq.ObservabilityConfig{SLOs: slos}
		if *profOn {
			obsCfg.Profiling = &rpq.ProfilingConfig{
				Window:   *profWindow,
				Interval: *profInterval,
				Retain:   *profRetain,
			}
		}
		var err error
		obsSrv, err = rpq.ServeObservabilityWith(*obsAddr, obsCfg)
		if err != nil {
			fatal("observability: %v", err)
		}
		fmt.Printf("rpqd observability on http://%s\n", obsSrv.Server.Addr)
		// Link the profiler into the watchdog before the API listener comes
		// up: every bundle then carries the profile window covering its
		// anomaly (meta.profile_window + profile.pb.gz).
		if cfg.Watchdog != nil && obsSrv.Prof != nil {
			cfg.Watchdog.Profiler = obsSrv.Prof
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	fmt.Printf("rpqd listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	svc.SetReady(true)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("rpqd draining on %v (up to %v)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatal("serve: %v", err)
	}

	// Drain order: stop the query engine first (new requests 503, in-flight
	// queries finish or are canceled), then the HTTP listener, and the
	// observability plane last so the final counters stay scrapeable.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Printf("rpqd drain expired: canceled in-flight queries (%v)\n", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Printf("rpqd http shutdown: %v\n", err)
	}
	if err := obsSrv.Close(); err != nil {
		fmt.Printf("rpqd observability shutdown: %v\n", err)
	}
	fmt.Println("rpqd stopped")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpqd: "+format+"\n", args...)
	os.Exit(1)
}
