// Command ltsgen emits a synthetic labeled transition system in the
// Aldébaran (.aut) format: either one of the Table 2 presets by name, or a
// custom size.
//
// Usage:
//
//	ltsgen -preset vasy-0-1 > vasy-0-1.aut
//	ltsgen -states 500 -trans 2000 -deadlocks 1 > custom.aut
package main

import (
	"flag"
	"fmt"
	"os"

	"rpq/internal/gen"
)

func main() {
	var (
		preset    = flag.String("preset", "", "Table 2 preset name (vasy-0-1, cwi-1-2, ...)")
		list      = flag.Bool("list", false, "list presets and exit")
		states    = flag.Int("states", 200, "number of states (custom)")
		trans     = flag.Int("trans", 800, "number of transitions (custom)")
		actions   = flag.Int("actions", 8, "visible action alphabet size (custom)")
		deadlocks = flag.Int("deadlocks", 0, "number of reachable deadlock states (custom)")
		invisible = flag.Float64("invisible", 0.2, "fraction of invisible (i) transitions (custom)")
		seed      = flag.Int64("seed", 1, "random seed (custom)")
	)
	flag.Parse()

	if *list {
		for _, s := range gen.Table2Specs() {
			fmt.Printf("%-11s states %6d  transitions %6d\n", s.Name, s.States, s.Trans)
		}
		return
	}
	spec := gen.LTSSpec{
		Name: "custom", Seed: *seed, States: *states, Trans: *trans,
		Actions: *actions, Deadlocks: *deadlocks, InvisibleFrac: *invisible,
	}
	if *preset != "" {
		_, l, isProg, err := gen.FindSpec(*preset)
		if err != nil || isProg {
			fmt.Fprintf(os.Stderr, "ltsgen: unknown LTS preset %q\n", *preset)
			os.Exit(1)
		}
		spec = l
	}
	if err := gen.RandomLTS(spec).WriteAUT(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ltsgen: %v\n", err)
		os.Exit(1)
	}
}
