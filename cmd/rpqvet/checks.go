package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// finding is one rpqvet diagnostic.
type finding struct {
	pos   token.Position
	check string // "noprint", "ctxvariant", "atomicalign"
	msg   string
}

// pkgFiles is the parsed non-test files of one package directory.
type pkgFiles struct {
	fset  *token.FileSet
	dir   string
	files []*ast.File
	names []string // base name of files[i]
}

// coreDir reports whether the package is the solver core, where the noprint
// and ctxvariant invariants apply.
func (p *pkgFiles) coreDir() bool {
	d := filepath.ToSlash(p.dir)
	return strings.HasSuffix(d, "internal/core") || strings.Contains(d, "internal/core/")
}

// analyzePackage runs every check that applies to the package.
func analyzePackage(p *pkgFiles) []finding {
	var out []finding
	if p.coreDir() {
		for i, f := range p.files {
			// instr.go is the phase-timing helper file: reading the clock
			// is its whole job.
			if p.names[i] == "instr.go" {
				continue
			}
			out = append(out, checkNoPrint(p.fset, f)...)
		}
		out = append(out, checkCtxVariant(p.fset, p.files)...)
	}
	out = append(out, checkAtomicAlign(p.fset, p.files)...)
	return out
}

// allowedLines collects //rpqvet:allow <token> comments; a comment suppresses
// findings of that token on its own line and on the following line (so the
// comment can sit above the flagged statement).
func allowedLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	allowed := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "rpqvet:allow")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, tok := range strings.Fields(rest) {
				for _, l := range []int{line, line + 1} {
					if allowed[l] == nil {
						allowed[l] = map[string]bool{}
					}
					allowed[l][tok] = true
				}
			}
		}
	}
	return allowed
}

// checkNoPrint flags fmt.Print* and time.Now calls: solver hot paths must
// report through tracers/stats, and clock reads outside the instrumented
// phase helpers have a history of becoming per-pop overhead. Suppress
// deliberate sites with //rpqvet:allow print or //rpqvet:allow timenow.
func checkNoPrint(fset *token.FileSet, f *ast.File) []finding {
	allowed := allowedLines(fset, f)
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pos := fset.Position(call.Pos())
		report := func(tok, msg string) {
			if allowed[pos.Line][tok] {
				return
			}
			out = append(out, finding{pos: pos, check: "noprint", msg: msg})
		}
		switch {
		case pkg.Name == "fmt" && strings.HasPrefix(sel.Sel.Name, "Print"):
			report("print", fmt.Sprintf("fmt.%s in solver core: emit through the tracer or return it in stats", sel.Sel.Name))
		case pkg.Name == "time" && sel.Sel.Name == "Now":
			report("timenow", "time.Now in solver core outside instr.go: use the phase-timing helpers, or annotate //rpqvet:allow timenow if this is deliberate coarse timing")
		}
		return true
	})
	return out
}

// checkCtxVariant enforces the entry-point pairing: every exported top-level
// function taking the package's Options must have a <Name>Context companion
// whose first parameter is a context.Context, so cancellation support cannot
// be skipped when a solver variant is added.
func checkCtxVariant(fset *token.FileSet, files []*ast.File) []finding {
	// First pass: index the exported top-level functions by name.
	funcs := map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.IsExported() {
				funcs[fd.Name.Name] = fd
			}
		}
	}
	var out []finding
	for _, f := range files {
		allowed := allowedLines(fset, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			if strings.HasSuffix(name, "Context") || !takesOptions(fd) || firstParamIsContext(fd) {
				continue
			}
			pos := fset.Position(fd.Pos())
			if allowed[pos.Line]["ctxvariant"] {
				continue
			}
			ctx, ok := funcs[name+"Context"]
			switch {
			case !ok:
				out = append(out, finding{pos: pos, check: "ctxvariant",
					msg: fmt.Sprintf("exported solver entry point %s has no %sContext variant", name, name)})
			case !firstParamIsContext(ctx):
				out = append(out, finding{pos: fset.Position(ctx.Pos()), check: "ctxvariant",
					msg: fmt.Sprintf("%sContext must take a context.Context as its first parameter", name)})
			}
		}
	}
	return out
}

// takesOptions reports whether any parameter is of the in-package type
// Options (the signature marker of a solver entry point).
func takesOptions(fd *ast.FuncDecl) bool {
	for _, p := range fd.Type.Params.List {
		if id, ok := p.Type.(*ast.Ident); ok && id.Name == "Options" {
			return true
		}
	}
	return false
}

// firstParamIsContext reports whether the function's first parameter is
// context.Context.
func firstParamIsContext(fd *ast.FuncDecl) bool {
	ps := fd.Type.Params.List
	if len(ps) == 0 {
		return false
	}
	sel, ok := ps[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// atomic64Funcs are the sync/atomic functions whose first argument must be a
// 64-bit-aligned address.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "LoadInt64": true, "StoreInt64": true, "SwapInt64": true, "CompareAndSwapInt64": true,
	"AddUint64": true, "LoadUint64": true, "StoreUint64": true, "SwapUint64": true, "CompareAndSwapUint64": true,
}

// checkAtomicAlign finds struct fields of raw int64/uint64 type that are
// passed by address to sync/atomic 64-bit functions and whose offset under
// 32-bit struct layout is not 8-byte aligned — the classic GOARCH=386/arm
// panic. It is syntactic: field references are matched to struct
// declarations by field name within the package, which is conservative in
// the right direction for a repo-local invariant (the fix either way is the
// atomic.Int64 wrapper type, which is immune). Suppress a deliberate layout
// with //rpqvet:allow atomicalign on the field.
func checkAtomicAlign(fset *token.FileSet, files []*ast.File) []finding {
	// Pass 1: names of fields used as &x.f in atomic 64-bit calls.
	accessed := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "atomic" || !atomic64Funcs[sel.Sel.Name] {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if fsel, ok := un.X.(*ast.SelectorExpr); ok {
				accessed[fsel.Sel.Name] = true
			}
			return true
		})
	}
	if len(accessed) == 0 {
		return nil
	}

	// Pass 2: lay out every declared struct under 32-bit rules and flag
	// accessed raw 64-bit fields at misaligned offsets.
	var out []finding
	for _, f := range files {
		allowed := allowedLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			offset := 0
			for _, field := range st.Fields.List {
				sz, al := sizeAlign32(field.Type)
				for _, name := range field.Names {
					offset = align(offset, al)
					if is64(field.Type) && accessed[name.Name] && offset%8 != 0 {
						pos := fset.Position(name.Pos())
						if !allowed[pos.Line]["atomicalign"] {
							out = append(out, finding{pos: pos, check: "atomicalign",
								msg: fmt.Sprintf("atomically accessed 64-bit field %s.%s is at 32-bit offset %d; move it first or use atomic.%s", ts.Name.Name, name.Name, offset, wrapperFor(field.Type))})
						}
					}
					offset += sz
				}
				if len(field.Names) == 0 { // embedded
					offset = align(offset, al) + sz
				}
			}
			return true
		})
	}
	return out
}

func align(off, a int) int {
	if a <= 1 {
		return off
	}
	return (off + a - 1) / a * a
}

func is64(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "int64" || id.Name == "uint64")
}

func wrapperFor(t ast.Expr) string {
	if id, ok := t.(*ast.Ident); ok && id.Name == "uint64" {
		return "Uint64"
	}
	return "Int64"
}

// sizeAlign32 conservatively models a type's size and alignment under 32-bit
// layout, where words (pointers, int, uint, uintptr) are 4 bytes and 64-bit
// scalars have only 4-byte alignment — exactly the regime in which a 64-bit
// atomic can land misaligned. Unknown types are treated as one word, which
// matches pointers/maps/chans/funcs and keeps composite offsets plausible.
func sizeAlign32(t ast.Expr) (size, al int) {
	switch tt := t.(type) {
	case *ast.Ident:
		switch tt.Name {
		case "bool", "int8", "uint8", "byte":
			return 1, 1
		case "int16", "uint16":
			return 2, 2
		case "int32", "uint32", "rune", "float32", "int", "uint", "uintptr":
			return 4, 4
		case "int64", "uint64", "float64":
			return 8, 4 // the hazard: 8 bytes, 4-byte alignment on 32-bit
		case "complex64":
			return 8, 4
		case "complex128":
			return 16, 4
		case "string":
			return 8, 4 // pointer + len
		}
		return 4, 4 // in-package named type: assume word-ish
	case *ast.ArrayType:
		esz, eal := sizeAlign32(tt.Elt)
		if tt.Len == nil {
			return 12, 4 // slice header
		}
		if lit, ok := tt.Len.(*ast.BasicLit); ok {
			n := 0
			fmt.Sscanf(lit.Value, "%d", &n)
			return n * esz, eal
		}
		return esz, eal
	case *ast.StructType:
		off, maxAl := 0, 1
		for _, f := range tt.Fields.List {
			sz, a := sizeAlign32(f.Type)
			if a > maxAl {
				maxAl = a
			}
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				off = align(off, a) + sz
			}
		}
		return align(off, maxAl), maxAl
	case *ast.InterfaceType:
		return 8, 4 // two words
	}
	// pointer, map, chan, func, qualified name: one word
	return 4, 4
}
