package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds a pkgFiles from in-memory sources, placing them in dir so
// the path-gated checks (noprint, ctxvariant) can be exercised both ways.
func parseSrc(t *testing.T, dir string, srcs map[string]string) *pkgFiles {
	t.Helper()
	pf := &pkgFiles{fset: token.NewFileSet(), dir: dir}
	for name, src := range srcs {
		f, err := parser.ParseFile(pf.fset, dir+"/"+name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		pf.files = append(pf.files, f)
		pf.names = append(pf.names, name)
	}
	return pf
}

func findingsWith(fs []finding, check string) []finding {
	var out []finding
	for _, f := range fs {
		if f.check == check {
			out = append(out, f)
		}
	}
	return out
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name  string
		dir   string
		file  string
		src   string
		check string
		want  int    // findings of that check
		msg   string // substring required in the first finding
	}{
		{
			name: "fmt.Println in core fires",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "fmt"
func pop() { fmt.Println("popped") }`,
			check: "noprint", want: 1, msg: "fmt.Println",
		},
		{
			name: "time.Now in core fires",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "time"
func pop() { _ = time.Now() }`,
			check: "noprint", want: 1, msg: "time.Now",
		},
		{
			name: "allow comment on same line suppresses",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "time"
func pop() { _ = time.Now() } //rpqvet:allow timenow`,
			check: "noprint", want: 0,
		},
		{
			name: "allow comment on preceding line suppresses",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "time"
func pop() {
	//rpqvet:allow timenow
	_ = time.Now()
}`,
			check: "noprint", want: 0,
		},
		{
			name: "allow token must match the check",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "time"
func pop() { _ = time.Now() } //rpqvet:allow print`,
			check: "noprint", want: 1,
		},
		{
			name: "instr.go is exempt from noprint",
			dir:  "internal/core", file: "instr.go",
			src: `package core
import "time"
func now() time.Time { return time.Now() }`,
			check: "noprint", want: 0,
		},
		{
			name: "noprint does not apply outside core",
			dir:  "internal/graph", file: "graph.go",
			src: `package graph
import "fmt"
func dump() { fmt.Println("ok") }`,
			check: "noprint", want: 0,
		},
		{
			name: "entry point without Context variant fires",
			dir:  "internal/core", file: "solve.go",
			src: `package core
type Options struct{}
type Result struct{}
func Solve(o Options) (*Result, error) { return nil, nil }`,
			check: "ctxvariant", want: 1, msg: "no SolveContext",
		},
		{
			name: "entry point with Context variant is clean",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "context"
type Options struct{}
type Result struct{}
func Solve(o Options) (*Result, error) { return SolveContext(context.Background(), o) }
func SolveContext(ctx context.Context, o Options) (*Result, error) { return nil, nil }`,
			check: "ctxvariant", want: 0,
		},
		{
			name: "Context variant must lead with context.Context",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "context"
type Options struct{}
type Result struct{}
func Solve(o Options) (*Result, error) { return SolveContext(o, context.Background()) }
func SolveContext(o Options, ctx context.Context) (*Result, error) { return nil, nil }`,
			check: "ctxvariant", want: 1, msg: "first parameter",
		},
		{
			name: "unexported and non-Options functions are ignored",
			dir:  "internal/core", file: "solve.go",
			src: `package core
type Options struct{}
func solve(o Options) error { return nil }
func Compile(s string) error { return nil }`,
			check: "ctxvariant", want: 0,
		},
		{
			name: "entry point itself taking ctx needs no companion",
			dir:  "internal/core", file: "solve.go",
			src: `package core
import "context"
type Options struct{}
func Run(ctx context.Context, o Options) error { return nil }`,
			check: "ctxvariant", want: 0,
		},
		{
			name: "ctxvariant does not apply outside core",
			dir:  "internal/obs", file: "obs.go",
			src: `package obs
type Options struct{}
func Serve(o Options) error { return nil }`,
			check: "ctxvariant", want: 0,
		},
		{
			name: "misaligned atomic int64 fires",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
import "sync/atomic"
type counters struct {
	ready bool
	pops  int64
}
func bump(c *counters) { atomic.AddInt64(&c.pops, 1) }`,
			check: "atomicalign", want: 1, msg: "offset 4",
		},
		{
			name: "leading atomic int64 is clean",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
import "sync/atomic"
type counters struct {
	pops  int64
	ready bool
}
func bump(c *counters) { atomic.AddInt64(&c.pops, 1) }`,
			check: "atomicalign", want: 0,
		},
		{
			name: "uint64 after two int32s is clean, after three fires",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
import "sync/atomic"
type ok struct {
	a, b int32
	n    uint64
}
type bad struct {
	a, b, c int32
	n2      uint64
}
func bump(o *ok, x *bad) {
	atomic.AddUint64(&o.n, 1)
	atomic.LoadUint64(&x.n2)
}`,
			check: "atomicalign", want: 1, msg: "bad.n2",
		},
		{
			name: "non-atomic int64 field at odd offset is clean",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
type counters struct {
	ready bool
	pops  int64
}`,
			check: "atomicalign", want: 0,
		},
		{
			name: "wrapper type atomic.Int64 is immune",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
import "sync/atomic"
type counters struct {
	ready bool
	pops  atomic.Int64
}
func bump(c *counters) { c.pops.Add(1) }`,
			check: "atomicalign", want: 0,
		},
		{
			name: "atomicalign allow comment suppresses",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
import "sync/atomic"
type counters struct {
	ready bool
	pops  int64 //rpqvet:allow atomicalign
}
func bump(c *counters) { atomic.AddInt64(&c.pops, 1) }`,
			check: "atomicalign", want: 0,
		},
		{
			name: "string header before int64 is clean on 32-bit",
			dir:  "internal/obs", file: "stats.go",
			src: `package obs
import "sync/atomic"
type counters struct {
	name string
	pops int64
}
func bump(c *counters) { atomic.AddInt64(&c.pops, 1) }`,
			check: "atomicalign", want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pf := parseSrc(t, tc.dir, map[string]string{tc.file: tc.src})
			got := findingsWith(analyzePackage(pf), tc.check)
			if len(got) != tc.want {
				t.Fatalf("got %d %s findings, want %d: %v", len(got), tc.check, tc.want, got)
			}
			if tc.want > 0 && tc.msg != "" && !strings.Contains(got[0].msg, tc.msg) {
				t.Errorf("finding %q does not mention %q", got[0].msg, tc.msg)
			}
		})
	}
}

// TestCtxVariantAcrossFiles: the companion may live in a different file of
// the same package (Exist in exist.go, ExistContext in exist.go but e.g.
// Univ/UnivContext split is legal).
func TestCtxVariantAcrossFiles(t *testing.T) {
	pf := parseSrc(t, "internal/core", map[string]string{
		"a.go": `package core
type Options struct{}
func Solve(o Options) error { return nil }`,
		"b.go": `package core
import "context"
func SolveContext(ctx context.Context, o Options) error { return nil }`,
	})
	if got := findingsWith(analyzePackage(pf), "ctxvariant"); len(got) != 0 {
		t.Fatalf("cross-file companion not found: %v", got)
	}
}

// TestExpandPatterns pins the "dir/..." walking contract on the real repo
// layout: the recursive form must include nested packages and skip testdata.
func TestExpandPatterns(t *testing.T) {
	dirs, err := expandPatterns([]string{"../../internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		seen[d] = true
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata dir not skipped: %s", d)
		}
	}
	if !seen["../../internal/core"] || !seen["../../internal/analyze"] {
		t.Fatalf("recursive expansion missed packages: %v", dirs)
	}
}
