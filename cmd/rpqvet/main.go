// Command rpqvet is a repository-local static checker enforcing solver
// invariants that generic go vet cannot know about:
//
//	noprint      internal/core hot paths must not call fmt.Print* or
//	             time.Now outside the phase-timing helpers (instr.go);
//	             solver output goes through tracers and stats, and
//	             ad-hoc clock reads have shown up as per-pop overhead.
//	ctxvariant   every exported solver entry point in internal/core that
//	             takes Options must have a Context-taking companion
//	             (Exist -> ExistContext), so cancellation is never an
//	             afterthought on new solvers.
//	atomicalign  struct fields of raw int64/uint64 type that are passed
//	             to sync/atomic functions must be 64-bit aligned under
//	             32-bit struct layout (prefer the atomic.Int64 wrapper
//	             types, which are immune).
//
// A finding can be suppressed where it is legitimate with a trailing or
// preceding comment naming the check's token:
//
//	t0 := time.Now() //rpqvet:allow timenow
//
// Usage: rpqvet [packages]; package arguments are directories, with the
// go-style "dir/..." form walking recursively. Defaults to "./...".
// It is pure go/ast analysis (no type checking, no build), so it runs
// with `go run ./cmd/rpqvet ./...` on a bare checkout.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expandPatterns(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpqvet:", err)
		os.Exit(2)
	}

	var all []finding
	for _, dir := range dirs {
		fs, err := parseDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpqvet:", err)
			os.Exit(2)
		}
		if fs == nil {
			continue
		}
		all = append(all, analyzePackage(fs)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, f := range all {
		fmt.Printf("%s: rpqvet/%s: %s\n", f.pos, f.check, f.msg)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// expandPatterns resolves go-style package arguments to directories: a
// trailing "/..." walks recursively, anything else is taken literally.
// Hidden directories, testdata, and vendor are skipped.
func expandPatterns(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, a := range args {
		root, rec := strings.CutSuffix(a, "...")
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory into a fileSet, or
// returns nil when the directory holds no Go files.
func parseDir(dir string) (*pkgFiles, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pf := &pkgFiles{fset: token.NewFileSet(), dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(pf.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pf.files = append(pf.files, f)
		pf.names = append(pf.names, name)
	}
	if len(pf.files) == 0 {
		return nil, nil
	}
	return pf, nil
}
