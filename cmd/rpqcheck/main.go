// Command rpqcheck runs the parametric-dataflow check catalog over real Go
// packages. It lowers each package to a control-flow program graph with
// internal/gofront (pure go/ast, no type checking or build step), then
// evaluates the internal/queries.GoChecks catalog as existential parametric
// regular path queries: each finding is an answer ⟨vertex, substitution⟩
// projected back to an exact file:line:col span.
//
// Usage:
//
//	rpqcheck [flags] [packages]
//
// Package arguments are directories or .go files, with the go-style
// "dir/..." form walking recursively; the default is "./...".
//
// Flags:
//
//	-checks a,b       run only the named checks (default: all; see -list)
//	-list             print the catalog and exit
//	-json             emit the rpqcheck/1 JSON document instead of text
//	-out file         write the report to file instead of stdout
//	-baseline file    compare against a committed baseline: exit 0 unless
//	                  findings appear that the baseline does not accept
//	-write-baseline file
//	                  write the current findings as the new baseline
//	-carets           show source snippets under text findings
//	-show-suppressed  keep //rpqcheck:allow-suppressed findings (marked)
//	-include-tests    also analyze _test.go files
//	-workers n        parallel CFG construction / solver workers
//
// Findings can be acknowledged in source with a comment on the same or the
// preceding line:
//
//	return n //rpqcheck:allow uninit-use
//	//rpqcheck:allow all
//
// Exit status: 0 when clean (or all findings match the baseline), 1 when
// findings (or new-vs-baseline findings) remain, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rpq/internal/gocheck"
	"rpq/internal/queries"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("rpqcheck", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		checksFlag    = fl.String("checks", "", "comma-separated check names to run (default all)")
		list          = fl.Bool("list", false, "print the check catalog and exit")
		asJSON        = fl.Bool("json", false, "emit JSON (schema rpqcheck/1)")
		outPath       = fl.String("out", "", "write the report to this file instead of stdout")
		baseline      = fl.String("baseline", "", "compare findings against this baseline file")
		writeBaseline = fl.String("write-baseline", "", "write current findings as a baseline to this file")
		carets        = fl.Bool("carets", false, "show source snippets under text findings")
		showSupp      = fl.Bool("show-suppressed", false, "keep suppressed findings in the report, marked")
		includeTests  = fl.Bool("include-tests", false, "also analyze _test.go files")
		workers       = fl.Int("workers", 0, "parallel workers for CFG construction and solving (0 = GOMAXPROCS)")
	)
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range queries.GoChecks() {
			scope := "intraprocedural"
			if c.Interproc {
				scope = "interprocedural"
			}
			fmt.Fprintf(stdout, "%-20s %s\n%20s   pattern: %s  (%s)\n", c.Name, c.Doc, "", c.Pattern, scope)
		}
		return 0
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts := gocheck.Options{
		Workers:        *workers,
		IncludeTests:   *includeTests,
		ShowSuppressed: *showSupp,
	}
	if *checksFlag != "" {
		opts.Checks = strings.Split(*checksFlag, ",")
	}

	rep, srcOf, err := runChecks(patterns, opts)
	if err != nil {
		fmt.Fprintln(stderr, "rpqcheck:", err)
		return 2
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "rpqcheck:", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	if *asJSON {
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(stderr, "rpqcheck:", err)
			return 2
		}
	} else {
		rep.WriteText(out, srcOf, *carets)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "rpqcheck:", err)
			return 2
		}
		err = gocheck.NewBaseline(rep).Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "rpqcheck:", err)
			return 2
		}
		fmt.Fprintf(stderr, "rpqcheck: wrote baseline with %d finding(s) to %s\n", len(rep.Findings), *writeBaseline)
		return 0
	}

	if *baseline != "" {
		base, err := gocheck.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "rpqcheck:", err)
			return 2
		}
		news, fixed := base.Diff(rep)
		for _, k := range fixed {
			fmt.Fprintf(stderr, "rpqcheck: baseline entry no longer found (fixed?): %s\n", k)
		}
		if len(news) > 0 {
			fmt.Fprintf(stderr, "rpqcheck: %d finding(s) not in baseline %s:\n", len(news), *baseline)
			for _, f := range news {
				fmt.Fprintf(stderr, "  %s: %s [%s]\n", f.Pos(), f.Message, f.Check)
			}
			return 1
		}
		return 0
	}

	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// runChecks evaluates the catalog and returns the report plus a source
// lookup for caret rendering. It re-loads nothing: gocheck retains the
// sources inside the programs it builds, surfaced via the closure.
func runChecks(patterns []string, opts gocheck.Options) (*gocheck.Report, func(string) (string, bool), error) {
	rep, progs, err := gocheck.RunWithPrograms(patterns, opts)
	if err != nil {
		return nil, nil, err
	}
	srcOf := func(file string) (string, bool) {
		for _, p := range progs {
			if p == nil {
				continue
			}
			if s, ok := p.Source(file); ok {
				return s, true
			}
		}
		return "", false
	}
	return rep, srcOf, nil
}
