// Command graphgen emits a synthetic program-graph workload in the textual
// graph format: either one of the Table 1 presets by name, or a custom
// size.
//
// Usage:
//
//	graphgen -preset cksum > cksum.txt
//	graphgen -edges 2000 -vars 100 -seed 7 > custom.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"rpq/internal/gen"
)

func main() {
	var (
		preset = flag.String("preset", "", "Table 1 preset name (cksum, sum, expand, uniq, cut, C-parser, iburg, struct, ratfor)")
		list   = flag.Bool("list", false, "list presets and exit")
		edges  = flag.Int("edges", 1000, "target edge count (custom)")
		vars   = flag.Int("vars", 50, "variable pool size (custom)")
		seed   = flag.Int64("seed", 1, "random seed (custom)")
		uninit = flag.Float64("uninit", 0.12, "fraction of never-defined variables (custom)")
		sites  = flag.Bool("sites", true, "label uses with site numbers")
		entry  = flag.Bool("entry", true, "add the entry() self-loop")
	)
	flag.Parse()

	if *list {
		for _, s := range gen.Table1Specs() {
			fmt.Printf("%-10s LOC %5d  edges %5d  vars %4d\n", s.Name, s.LOC, s.Edges, s.Vars)
		}
		return
	}
	spec := gen.ProgSpec{
		Name: "custom", Seed: *seed, Edges: *edges, Vars: *vars,
		UninitFrac: *uninit, UseSites: *sites, EntryLoop: *entry,
	}
	if *preset != "" {
		p, _, isProg, err := gen.FindSpec(*preset)
		if err != nil || !isProg {
			fmt.Fprintf(os.Stderr, "graphgen: unknown program preset %q\n", *preset)
			os.Exit(1)
		}
		spec = p
	}
	g := gen.Program(spec)
	if err := g.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}
