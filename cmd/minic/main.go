// Command minic parses a MiniC source file and emits its edge-labeled
// program graph in the textual graph format, ready for cmd/rpq.
//
// Usage:
//
//	minic [-sites] [-exp] [-const] [-interproc] [-entry] file.mc > graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"rpq/internal/minic"
)

func main() {
	var (
		sites     = flag.Bool("sites", false, "label uses as use(x, l) with site numbers")
		exp       = flag.Bool("exp", false, "emit exp(a, op, b) labels for binary expressions")
		constDefs = flag.Bool("const", false, "emit def(x, k) for constant assignments")
		interproc = flag.Bool("interproc", false, "splice user-defined calls into a supergraph")
		entry     = flag.Bool("entry", false, "add the entry() self-loop at the program entry")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minic [flags] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minic: %v\n", err)
		os.Exit(1)
	}
	g, err := minic.Build(string(src), minic.Config{
		UseSites:  *sites,
		ExpLabels: *exp,
		ConstDefs: *constDefs,
		Interproc: *interproc,
		EntryLoop: *entry,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "minic: %v\n", err)
		os.Exit(1)
	}
	if err := g.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "minic: %v\n", err)
		os.Exit(1)
	}
}
