// Command minipy parses a MiniPy (Python-like) source file and emits its
// edge-labeled program graph in the textual graph format, ready for cmd/rpq.
// The labels match cmd/minic's, so the same queries analyze both languages.
//
// Usage:
//
//	minipy [-sites] [-entry] file.py > graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"rpq/internal/minipy"
)

func main() {
	var (
		sites = flag.Bool("sites", false, "label uses as use(x, l) with site numbers")
		entry = flag.Bool("entry", false, "add the entry() self-loop at the program entry")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minipy [flags] file.py")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "minipy: %v\n", err)
		os.Exit(1)
	}
	g, err := minipy.Build(string(src), minipy.Config{UseSites: *sites, EntryLoop: *entry})
	if err != nil {
		fmt.Fprintf(os.Stderr, "minipy: %v\n", err)
		os.Exit(1)
	}
	if err := g.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "minipy: %v\n", err)
		os.Exit(1)
	}
}
