// Command obssmoke is the observability endpoint smoke test used by CI: it
// starts the full observability plane (ServeObservabilityWith), runs a
// concurrent query workload against it, then scrapes and validates every
// endpoint — /metrics (must expose the query counters, the _hist bucket
// families, and rpq_build_info), /debug/rpq/queries, /debug/rpq/ts (the
// rpq-tsdb/1 document must be internally consistent), and /debug/rpq/dash.
// The scraped time-series document is written to -out so CI can archive it
// next to the benchmark baseline. Any failed check exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"rpq"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:0", "address to bind the observability server on")
		out    = flag.String("out", "", "write the scraped rpq-tsdb/1 document to this file")
		dur    = flag.Duration("dur", 2*time.Second, "how long to run the query workload")
		sample = flag.Duration("sample", 50*time.Millisecond, "sampler and time-series cadence")
	)
	flag.Parse()

	srv, err := rpq.ServeObservabilityWith(*addr, rpq.ObservabilityConfig{
		SampleInterval: *sample,
		TSInterval:     *sample,
		Retention:      time.Minute,
	})
	if err != nil {
		fail("start: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Server.Addr

	runWorkload(*dur)

	// One synchronous snapshot after the workload so the final counter
	// values are in the window regardless of ticker phase.
	srv.Sampler.SampleOnce()
	srv.TS.Record()

	metrics := get(base + "/metrics")
	for _, want := range []string{
		"rpq_queries_total",
		"rpq_query_seconds_hist_bucket{le=",
		"rpq_cpu_us_total",
		"rpq_alloc_bytes_total",
		"rpq_build_info{",
		"go_goroutines",
		"go_heap_live_bytes",
	} {
		if !strings.Contains(metrics, want) {
			fail("/metrics: missing %q", want)
		}
	}
	fmt.Println("ok /metrics")

	var queries struct {
		Queries []json.RawMessage `json:"queries"`
	}
	if err := json.Unmarshal([]byte(get(base+"/debug/rpq/queries")), &queries); err != nil {
		fail("/debug/rpq/queries: bad JSON: %v", err)
	}
	fmt.Println("ok /debug/rpq/queries")

	tsBody := get(base + "/debug/rpq/ts")
	validateTSDB(tsBody)
	fmt.Println("ok /debug/rpq/ts")

	dash := get(base + "/debug/rpq/dash")
	if !strings.Contains(dash, "rpq live dashboard") || !strings.Contains(dash, "/debug/rpq/ts") {
		fail("/debug/rpq/dash: not the dashboard page")
	}
	fmt.Println("ok /debug/rpq/dash")

	if *out != "" {
		if err := os.WriteFile(*out, []byte(tsBody), 0o644); err != nil {
			fail("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(tsBody))
	}
}

// runWorkload executes existential and universal queries concurrently
// against a synthetic chain-with-branches graph until the deadline, feeding
// the process-wide gauges the server exposes.
func runWorkload(d time.Duration) {
	g := rpq.NewGraph()
	const n = 400
	for i := 0; i < n; i++ {
		g.MustAddEdge(v(i), fmt.Sprintf("def(x%d)", i%7), v(i+1))
		if i%3 == 0 {
			g.MustAddEdge(v(i), fmt.Sprintf("use(x%d)", i%7), v((i+13)%n))
		}
	}
	g.MustAddEdge(v(n), "use(x0)", v(0))
	g.SetStart(v(0))

	exist := rpq.MustParsePattern("(!def(x))* use(x)")
	univ := rpq.MustParsePattern("_* def(x) (!def(x))*")

	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := &rpq.Options{Gauges: rpq.LiveGauges()}
			for time.Now().Before(deadline) {
				if w%2 == 0 {
					if _, err := g.Exist(exist, opts); err != nil {
						fail("workload exist: %v", err)
					}
				} else {
					if _, err := g.Universal(univ, opts); err != nil {
						fail("workload universal: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func v(i int) string { return fmt.Sprintf("v%d", i) }

// validateTSDB checks the structural invariants of an rpq-tsdb/1 document:
// schema tag, points == len(timestamps), every series column the same
// length, timestamps nondecreasing, and at least one rpq_ series present.
func validateTSDB(body string) {
	var doc struct {
		Schema          string              `json:"schema"`
		IntervalMS      int64               `json:"interval_ms"`
		RetentionPoints int                 `json:"retention_points"`
		Points          int                 `json:"points"`
		TimestampsMS    []int64             `json:"timestamps_ms"`
		Series          map[string][]*int64 `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		fail("tsdb: bad JSON: %v", err)
	}
	if doc.Schema != "rpq-tsdb/1" {
		fail("tsdb: schema %q, want rpq-tsdb/1", doc.Schema)
	}
	if doc.Points != len(doc.TimestampsMS) {
		fail("tsdb: points=%d but %d timestamps", doc.Points, len(doc.TimestampsMS))
	}
	if doc.Points == 0 {
		fail("tsdb: no points retained")
	}
	if doc.Points > doc.RetentionPoints {
		fail("tsdb: points=%d exceeds retention_points=%d", doc.Points, doc.RetentionPoints)
	}
	for i := 1; i < len(doc.TimestampsMS); i++ {
		if doc.TimestampsMS[i] < doc.TimestampsMS[i-1] {
			fail("tsdb: timestamps not nondecreasing at %d", i)
		}
	}
	sawRPQ := false
	for name, col := range doc.Series {
		if len(col) != doc.Points {
			fail("tsdb: series %s has %d points, want %d", name, len(col), doc.Points)
		}
		if strings.HasPrefix(name, "rpq_") {
			sawRPQ = true
		}
	}
	if !sawRPQ {
		fail("tsdb: no rpq_ series present")
	}
	var qt []*int64
	for name, col := range doc.Series {
		if name == "rpq_queries_total" {
			qt = col
		}
	}
	if qt == nil {
		fail("tsdb: rpq_queries_total series missing")
	}
	last := qt[len(qt)-1]
	if last == nil || *last == 0 {
		fail("tsdb: rpq_queries_total never advanced")
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return string(b)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obssmoke: "+format+"\n", args...)
	os.Exit(1)
}
