// Command rpq runs a parametric regular path query against a graph file.
//
// Usage:
//
//	rpq -graph g.txt -pattern '(!def(x))* use(x)' [flags]
//	rpq -graph g.txt -analysis uninit-uses [flags]
//	rpq -list
//
// Flags select the query kind (existential/universal), the algorithm
// variant of the paper (basic, memo, precomputation, enumeration, hybrid),
// the data-structure representation (hashing or nested arrays), direction,
// and the start vertex. Graphs in the Aldébaran .aut format are accepted
// with -aut.
//
// Observability flags (docs/observability.md): -http serves /metrics, the
// live dashboard (/debug/rpq/dash), the telemetry time-series
// (/debug/rpq/ts, cadence -sample, window -retain), /debug/rpq/queries,
// /debug/vars, and /debug/pprof during the run; -trace
// records a Chrome trace_event file for chrome://tracing; -events streams
// NDJSON trace events; -slow logs slow queries; -stats selects text, json,
// or csv run statistics; -explain prints a per-state/per-label execution
// profile as text, JSON, or an annotated Graphviz heat-map of the query
// automaton.
//
// In-flight control: -timeout bounds the query's wall time, Ctrl-C cancels
// it — both stop the run with partial statistics; -progress prints a live
// stderr ticker; -watchdog writes diagnostic bundles (flight-recorder
// events, goroutine/heap dumps) on deadline breach, cancellation, hung
// queries (-hung), or slow runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"rpq"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (textual format, or .aut with -aut)")
		aut       = flag.Bool("aut", false, "treat the graph file as an Aldébaran LTS")
		patt      = flag.String("pattern", "", "query pattern, e.g. '(!def(x))* use(x)'")
		pattFile  = flag.String("pattern-file", "", "read the query pattern from a file (blank and # comment lines ignored)")
		lintFmt   = flag.String("lint", "", "statically analyze the query instead of running it: text|json; exits 1 on error-severity findings (-graph optional, adds alphabet/cost checks)")
		violation = flag.String("violations", "", "universal discipline pattern; generates and runs the merged violation query (Section 5.4)")
		withExit  = flag.Bool("exit-violations", true, "with -violations, also flag resources left incomplete at exit()")
		analysis  = flag.String("analysis", "", "named analysis from the catalog instead of -pattern")
		universal = flag.Bool("universal", false, "run a universal query (default existential)")
		algo      = flag.String("algo", "auto", "auto|basic|memo|precomp|enum|hybrid")
		table     = flag.String("table", "hash", "hash|nested")
		backward  = flag.Bool("backward", false, "reverse all edges before the query")
		start     = flag.String("start", "", "start vertex (default: graph's start; backward: after exit())")
		compact   = flag.Bool("compact", false, "drop query-irrelevant edges first (existential)")
		statsFmt  = flag.String("stats", "", "print run statistics: text|json|csv")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/rpq/{queries,ts,dash}, /debug/vars, and /debug/pprof on this address during the run")
		sample    = flag.Duration("sample", time.Second, "with -http, runtime-metrics sampling and time-series snapshot cadence (0 disables both)")
		retain    = flag.Duration("retain", 10*time.Minute, "with -http, telemetry time-series retention window")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file (load in chrome://tracing)")
		eventsOut = flag.String("events", "", "stream structured trace events as NDJSON to this file (- for stderr)")
		slow      = flag.Duration("slow", 0, "log queries at or above this duration as NDJSON to stderr")
		timeout   = flag.Duration("timeout", 0, "bound the query's wall-clock time; exceeding it stops the run with partial stats")
		progress  = flag.Bool("progress", false, "print a live progress ticker for the running query on stderr")
		wdDir     = flag.String("watchdog", "", "write diagnostic bundles under this directory on deadline breach, cancellation, hung, or slow queries")
		hung      = flag.Duration("hung", 0, "with -watchdog, dump a bundle if the query is still running after this long")
		explain   = flag.String("explain", "", "print an execution profile instead of answers: text|json|dot")
		jsonOut   = flag.Bool("json", false, "emit answers as JSON")
		dotOut    = flag.Bool("dot", false, "emit the graph as Graphviz DOT with answers highlighted, instead of listing answers")
		witness   = flag.Bool("witness", false, "attach a witnessing path to each existential answer")
		workers   = flag.Int("workers", 1, "goroutines for the existential solver (<=1 sequential)")
		list      = flag.Bool("list", false, "list the analysis catalog and exit")
		estimate  = flag.Bool("estimate", false, "print the Figure 2 complexity report and query advice, then run")
		maxPrint  = flag.Int("n", 0, "print at most n answers (0 = all)")
	)
	flag.Parse()

	if *list {
		for _, a := range rpq.Analyses() {
			fmt.Printf("%-24s %-11s %-8s %s\n", a.Name, a.Kind, a.Dir, a.Pattern)
			fmt.Printf("%-24s %s\n", "", a.Description)
		}
		return
	}
	if *pattFile != "" {
		if *patt != "" {
			fail("-pattern and -pattern-file are mutually exclusive")
		}
		src, err := readPatternFile(*pattFile)
		if err != nil {
			fail("%v", err)
		}
		*patt = src
	}
	if *graphPath == "" && *lintFmt == "" {
		fail("missing -graph (or use -list)")
	}
	var g *rpq.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if *aut {
			g, err = rpq.FromAUT(f, *universal)
		} else {
			g, err = rpq.ReadGraph(f)
		}
		if err != nil {
			fail("%v", err)
		}
	}

	opts := &rpq.Options{Backward: *backward, Start: *start, Compact: *compact, Witnesses: *witness, Workers: *workers, Deadline: *timeout}

	// Ctrl-C cancels the running query; it stops at the next cancellation
	// check and reports its partial statistics.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Observability wiring: live HTTP endpoints, trace sinks, slow log,
	// progress ticker, watchdog.
	if *httpAddr != "" {
		cfg := rpq.ObservabilityConfig{SampleInterval: *sample, TSInterval: *sample, Retention: *retain}
		if *sample == 0 {
			cfg.SampleInterval, cfg.TSInterval = -1, -1
		}
		srv, err := rpq.ServeObservabilityWith(*httpAddr, cfg)
		if err != nil {
			fail("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rpq: observability on http://%s (dashboard: http://%s/debug/rpq/dash)\n",
			srv.Server.Addr, srv.Server.Addr)
		opts.Gauges = rpq.LiveGauges()
	}
	if *wdDir != "" {
		opts.Watchdog = &rpq.Watchdog{
			Dir:  *wdDir,
			Hung: *hung,
			Slow: *slow,
			OnBundle: func(path string) {
				fmt.Fprintf(os.Stderr, "rpq: diagnostic bundle written: %s\n", path)
			},
		}
	} else if *hung > 0 {
		fail("-hung requires -watchdog")
	}
	if *progress {
		done := make(chan struct{})
		defer close(done)
		go func() {
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					for _, q := range rpq.InflightQueries() {
						fmt.Fprintf(os.Stderr,
							"rpq: progress %s phase=%s elapsed=%.0fms pops=%d depth=%d reach=%d substs=%d enum=%d workers=%d\n",
							q.Kind, q.Phase, q.ElapsedMS, q.Pops, q.Depth, q.Reach, q.Substs, q.EnumSubsts, q.Workers)
					}
				}
			}
		}()
	}
	var tracers rpq.MultiTracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		ct := rpq.NewChromeTracer(f)
		defer ct.Close()
		tracers = append(tracers, ct)
	}
	if *eventsOut != "" {
		w := os.Stderr
		if *eventsOut != "-" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			w = f
		}
		tracers = append(tracers, rpq.NewNDJSONTracer(w))
	}
	if len(tracers) == 1 {
		opts.Tracer = tracers[0]
	} else if len(tracers) > 1 {
		opts.Tracer = tracers
	}
	if *slow > 0 {
		opts.SlowLog = rpq.NewSlowLog(os.Stderr, *slow)
	}
	switch *explain {
	case "", "text", "json", "dot":
		opts.Explain = *explain != ""
	default:
		fail("unknown -explain format %q (want text, json, or dot)", *explain)
	}

	switch *algo {
	case "auto":
		opts.Algorithm = rpq.Auto
	case "basic":
		opts.Algorithm = rpq.Basic
	case "memo":
		opts.Algorithm = rpq.Memo
	case "precomp":
		opts.Algorithm = rpq.Precompute
	case "enum":
		opts.Algorithm = rpq.Enumerate
	case "hybrid":
		opts.Algorithm = rpq.Hybrid
	default:
		fail("unknown -algo %q", *algo)
	}
	switch *table {
	case "hash":
		opts.Table = rpq.Hashing
	case "nested":
		opts.Table = rpq.NestedArrays
	default:
		fail("unknown -table %q", *table)
	}

	if *lintFmt != "" {
		runLint(g, opts, *lintFmt, *patt, *analysis, *violation, *universal)
		return
	}

	if *estimate {
		src := *patt
		if *analysis != "" {
			a, err := rpq.AnalysisByName(*analysis)
			if err != nil {
				fail("%v", err)
			}
			src = a.Pattern
		}
		p, err := rpq.ParsePattern(src)
		if err != nil {
			fail("%v", err)
		}
		est, err := g.EstimateQuery(p, opts.Domains)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprint(os.Stderr, est)
		advice, err := g.Advise(p)
		if err != nil {
			fail("%v", err)
		}
		for _, a := range advice {
			fmt.Fprintf(os.Stderr, "advice: %s\n", a)
		}
	}

	var res *rpq.Result
	switch {
	case *violation != "":
		var err error
		res, err = g.ViolationsContext(ctx, *violation, *withExit, opts)
		if err != nil {
			failQuery(err)
		}
	case *analysis != "":
		a, err := rpq.AnalysisByName(*analysis)
		if err != nil {
			fail("%v", err)
		}
		res, err = g.RunAnalysisContext(ctx, a, opts)
		if err != nil {
			failQuery(err)
		}
	case *patt != "":
		p, err := rpq.ParsePattern(*patt)
		if err != nil {
			fail("%v", err)
		}
		if *universal {
			res, err = g.UniversalContext(ctx, p, opts)
		} else {
			res, err = g.ExistContext(ctx, p, opts)
		}
		if err != nil {
			failQuery(err)
		}
	default:
		fail("one of -pattern, -analysis, or -violations is required")
	}

	if *explain != "" {
		if res.Explain == nil {
			fail("no execution profile collected")
		}
		if err := res.Explain.Consistent(&res.Stats); err != nil {
			fmt.Fprintf(os.Stderr, "rpq: explain consistency: %v\n", err)
		}
		switch *explain {
		case "text":
			fmt.Print(res.Explain.Format())
		case "json":
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res.Explain); err != nil {
				fail("%v", err)
			}
		case "dot":
			fmt.Print(res.Explain.DOT())
		}
		if *statsFmt != "" {
			printStats(*statsFmt, res)
		}
		return
	}

	switch {
	case *dotOut:
		var hl []string
		for _, a := range res.Answers {
			hl = append(hl, a.Vertex)
		}
		if err := g.WriteDOT(os.Stdout, "query", hl); err != nil {
			fail("%v", err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Answers); err != nil {
			fail("%v", err)
		}
	default:
		n := len(res.Answers)
		if *maxPrint > 0 && *maxPrint < n {
			n = *maxPrint
		}
		for _, a := range res.Answers[:n] {
			fmt.Println(a)
			for _, st := range a.Witness {
				fmt.Printf("    %s -%s-> %s\n", st.From, st.Label, st.To)
			}
		}
		if n < len(res.Answers) {
			fmt.Printf("... and %d more answers\n", len(res.Answers)-n)
		}
	}
	if *statsFmt != "" {
		printStats(*statsFmt, res)
	}
}

// readPatternFile loads a pattern source file: the pattern is the file's
// non-blank, non-comment content (one pattern per file, possibly wrapped
// over several lines, joined with spaces).
func readPatternFile(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var parts []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts = append(parts, line)
	}
	if len(parts) == 0 {
		return "", fmt.Errorf("%s: no pattern in file", path)
	}
	return strings.Join(parts, " "), nil
}

// runLint is the -lint mode: statically analyze the query and report the
// findings instead of solving. Exit status 1 when any finding has error
// severity (the query is provably broken), 0 otherwise.
func runLint(g *rpq.Graph, opts *rpq.Options, format, patt, analysis, violation string, universal bool) {
	src := patt
	switch {
	case violation != "":
		// Disciplines have universal per-resource semantics.
		src, universal = violation, true
	case analysis != "":
		a, err := rpq.AnalysisByName(analysis)
		if err != nil {
			fail("%v", err)
		}
		src = a.Pattern
		universal = a.Kind.String() == "universal"
	case src == "":
		fail("-lint needs one of -pattern, -pattern-file, -analysis, or -violations")
	}
	p, err := rpq.ParsePattern(src)
	if err != nil {
		fail("%v", err)
	}
	diags := rpq.LintQuery(g, p, universal, opts)
	switch format {
	case "text":
		if len(diags) == 0 {
			fmt.Fprintln(os.Stderr, "rpq: lint clean")
		}
		for _, d := range diags {
			fmt.Println(rpq.FormatDiagnostic(d, p))
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fail("%v", err)
		}
	default:
		fail("unknown -lint format %q (want text or json)", format)
	}
	for _, d := range diags {
		if d.Severity >= rpq.SeverityError {
			os.Exit(1)
		}
	}
}

// printStats renders run statistics in the requested format on stderr
// (json/csv go to stdout so they can be piped while answers go elsewhere
// via -json or -dot; text keeps the historical stderr destination).
func printStats(format string, res *rpq.Result) {
	s := res.Stats
	switch format {
	case "text", "true": // "true" preserves the old boolean -stats spelling
		fmt.Fprintf(os.Stderr, "answers=%d worklist=%d reach=%d substs=%d match=%d hits=%d misses=%d merge=%d bytes=%d determinism=%v\n",
			len(res.Answers), s.WorklistInserts, s.ReachSize, s.Substs, s.MatchCalls,
			s.MatchCacheHits, s.MatchCacheMisses, s.MergeCalls, s.Bytes, s.DeterminismOK)
		fmt.Fprintf(os.Stderr, "phases: compile=%s domains=%s solve=%s enumerate=%s",
			s.Phases.Compile.Wall, s.Phases.Domains.Wall, s.Phases.Solve.Wall, s.Phases.Enumerate.Wall)
		if s.Phases.Solve.AllocBytes > 0 {
			fmt.Fprintf(os.Stderr, " solve-alloc=%dB", s.Phases.Solve.AllocBytes)
		}
		fmt.Fprintln(os.Stderr)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Answers int       `json:"answers"`
			Stats   rpq.Stats `json:"stats"`
		}{len(res.Answers), s}); err != nil {
			fail("%v", err)
		}
	case "csv":
		cols := []string{"answers", "worklist_inserts", "reach_size", "substs", "match_calls",
			"match_cache_hits", "match_cache_misses", "merge_calls", "enum_substs", "result_pairs",
			"bytes", "peak_triples", "determinism_ok",
			"compile_ns", "domains_ns", "solve_ns", "enumerate_ns", "solve_alloc_bytes"}
		vals := []any{len(res.Answers), s.WorklistInserts, s.ReachSize, s.Substs, s.MatchCalls,
			s.MatchCacheHits, s.MatchCacheMisses, s.MergeCalls, s.EnumSubsts, s.ResultPairs,
			s.Bytes, s.PeakTriples, s.DeterminismOK,
			int64(s.Phases.Compile.Wall), int64(s.Phases.Domains.Wall),
			int64(s.Phases.Solve.Wall), int64(s.Phases.Enumerate.Wall), s.Phases.Solve.AllocBytes}
		fmt.Println(strings.Join(cols, ","))
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, ","))
	default:
		fail("unknown -stats format %q (want text, json, or csv)", format)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpq: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// failQuery reports a query error; an interrupted run (canceled or past its
// deadline) additionally prints the statistics accumulated up to the
// interrupt and exits with status 2.
func failQuery(err error) {
	var ie *rpq.InterruptError
	if errors.As(err, &ie) {
		fmt.Fprintf(os.Stderr, "rpq: %v\n", err)
		s := ie.Stats
		fmt.Fprintf(os.Stderr, "rpq: partial stats: worklist=%d reach=%d substs=%d enum=%d pairs=%d solve=%s\n",
			s.WorklistInserts, s.ReachSize, s.Substs, s.EnumSubsts, s.ResultPairs, s.Phases.Solve.Wall)
		os.Exit(2)
	}
	fail("%v", err)
}
