// Command rpq runs a parametric regular path query against a graph file.
//
// Usage:
//
//	rpq -graph g.txt -pattern '(!def(x))* use(x)' [flags]
//	rpq -graph g.txt -analysis uninit-uses [flags]
//	rpq -list
//
// Flags select the query kind (existential/universal), the algorithm
// variant of the paper (basic, memo, precomputation, enumeration, hybrid),
// the data-structure representation (hashing or nested arrays), direction,
// and the start vertex. Graphs in the Aldébaran .aut format are accepted
// with -aut.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rpq"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (textual format, or .aut with -aut)")
		aut       = flag.Bool("aut", false, "treat the graph file as an Aldébaran LTS")
		patt      = flag.String("pattern", "", "query pattern, e.g. '(!def(x))* use(x)'")
		violation = flag.String("violations", "", "universal discipline pattern; generates and runs the merged violation query (Section 5.4)")
		withExit  = flag.Bool("exit-violations", true, "with -violations, also flag resources left incomplete at exit()")
		analysis  = flag.String("analysis", "", "named analysis from the catalog instead of -pattern")
		universal = flag.Bool("universal", false, "run a universal query (default existential)")
		algo      = flag.String("algo", "auto", "auto|basic|memo|precomp|enum|hybrid")
		table     = flag.String("table", "hash", "hash|nested")
		backward  = flag.Bool("backward", false, "reverse all edges before the query")
		start     = flag.String("start", "", "start vertex (default: graph's start; backward: after exit())")
		compact   = flag.Bool("compact", false, "drop query-irrelevant edges first (existential)")
		stats     = flag.Bool("stats", false, "print run statistics")
		jsonOut   = flag.Bool("json", false, "emit answers as JSON")
		dotOut    = flag.Bool("dot", false, "emit the graph as Graphviz DOT with answers highlighted, instead of listing answers")
		witness   = flag.Bool("witness", false, "attach a witnessing path to each existential answer")
		list      = flag.Bool("list", false, "list the analysis catalog and exit")
		estimate  = flag.Bool("estimate", false, "print the Figure 2 complexity report and query advice, then run")
		maxPrint  = flag.Int("n", 0, "print at most n answers (0 = all)")
	)
	flag.Parse()

	if *list {
		for _, a := range rpq.Analyses() {
			fmt.Printf("%-24s %-11s %-8s %s\n", a.Name, a.Kind, a.Dir, a.Pattern)
			fmt.Printf("%-24s %s\n", "", a.Description)
		}
		return
	}
	if *graphPath == "" {
		fail("missing -graph (or use -list)")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	var g *rpq.Graph
	if *aut {
		g, err = rpq.FromAUT(f, *universal)
	} else {
		g, err = rpq.ReadGraph(f)
	}
	if err != nil {
		fail("%v", err)
	}

	opts := &rpq.Options{Backward: *backward, Start: *start, Compact: *compact, Witnesses: *witness}
	switch *algo {
	case "auto":
		opts.Algorithm = rpq.Auto
	case "basic":
		opts.Algorithm = rpq.Basic
	case "memo":
		opts.Algorithm = rpq.Memo
	case "precomp":
		opts.Algorithm = rpq.Precompute
	case "enum":
		opts.Algorithm = rpq.Enumerate
	case "hybrid":
		opts.Algorithm = rpq.Hybrid
	default:
		fail("unknown -algo %q", *algo)
	}
	switch *table {
	case "hash":
		opts.Table = rpq.Hashing
	case "nested":
		opts.Table = rpq.NestedArrays
	default:
		fail("unknown -table %q", *table)
	}

	if *estimate {
		src := *patt
		if *analysis != "" {
			a, err := rpq.AnalysisByName(*analysis)
			if err != nil {
				fail("%v", err)
			}
			src = a.Pattern
		}
		p, err := rpq.ParsePattern(src)
		if err != nil {
			fail("%v", err)
		}
		est, err := g.EstimateQuery(p, opts.Domains)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprint(os.Stderr, est)
		advice, err := g.Advise(p)
		if err != nil {
			fail("%v", err)
		}
		for _, a := range advice {
			fmt.Fprintf(os.Stderr, "advice: %s\n", a)
		}
	}

	var res *rpq.Result
	switch {
	case *violation != "":
		var err error
		res, err = g.Violations(*violation, *withExit, opts)
		if err != nil {
			fail("%v", err)
		}
	case *analysis != "":
		a, err := rpq.AnalysisByName(*analysis)
		if err != nil {
			fail("%v", err)
		}
		res, err = g.RunAnalysis(a, opts)
		if err != nil {
			fail("%v", err)
		}
	case *patt != "":
		p, err := rpq.ParsePattern(*patt)
		if err != nil {
			fail("%v", err)
		}
		if *universal {
			res, err = g.Universal(p, opts)
		} else {
			res, err = g.Exist(p, opts)
		}
		if err != nil {
			fail("%v", err)
		}
	default:
		fail("one of -pattern, -analysis, or -violations is required")
	}

	switch {
	case *dotOut:
		var hl []string
		for _, a := range res.Answers {
			hl = append(hl, a.Vertex)
		}
		if err := g.WriteDOT(os.Stdout, "query", hl); err != nil {
			fail("%v", err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Answers); err != nil {
			fail("%v", err)
		}
	default:
		n := len(res.Answers)
		if *maxPrint > 0 && *maxPrint < n {
			n = *maxPrint
		}
		for _, a := range res.Answers[:n] {
			fmt.Println(a)
			for _, st := range a.Witness {
				fmt.Printf("    %s -%s-> %s\n", st.From, st.Label, st.To)
			}
		}
		if n < len(res.Answers) {
			fmt.Printf("... and %d more answers\n", len(res.Answers)-n)
		}
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "answers=%d worklist=%d reach=%d substs=%d match=%d merge=%d bytes=%d\n",
			len(res.Answers), s.WorklistInserts, s.ReachSize, s.Substs, s.MatchCalls, s.MergeCalls, s.Bytes)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rpq: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}
