package rpq

import (
	"strings"
	"testing"

	"rpq/internal/automata"
	"rpq/internal/core"
	"rpq/internal/label"
	"rpq/internal/pattern"
)

func TestWitnessPaths(t *testing.T) {
	g, err := ReadGraphString(`
start v1
edge v1 def(a) v2
edge v2 use(a) v3
edge v3 def(a) v4
edge v4 use(b) v5
edge v5 def(b) v6
edge v6 use(c) v7
`)
	if err != nil {
		t.Fatal(err)
	}
	p := MustParsePattern("(!def(x))* use(x)")
	for _, algo := range []Algorithm{Basic, Memo, Precompute} {
		res, err := g.Exist(p, &Options{Algorithm: algo, Witnesses: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatal("no answers")
		}
		for _, a := range res.Answers {
			w := a.Witness
			if len(w) == 0 {
				t.Fatalf("%v: answer %s has no witness", algo, a)
			}
			// The witness starts at the start vertex and ends at the
			// answer's vertex, with consecutive steps connected.
			if w[0].From != "v1" {
				t.Errorf("%v: witness starts at %s", algo, w[0].From)
			}
			if w[len(w)-1].To != a.Vertex {
				t.Errorf("%v: witness ends at %s, answer at %s", algo, w[len(w)-1].To, a.Vertex)
			}
			for i := 1; i < len(w); i++ {
				if w[i].From != w[i-1].To {
					t.Errorf("%v: witness disconnected at step %d", algo, i)
				}
			}
			// The last step is the use the query reports.
			if !strings.HasPrefix(w[len(w)-1].Label, "use(") {
				t.Errorf("%v: witness for %s ends with %s", algo, a, w[len(w)-1].Label)
			}
		}
	}
	// Without the option no witnesses are attached.
	res, err := g.Exist(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if len(a.Witness) != 0 {
			t.Fatalf("witness attached without the option")
		}
	}
}

// TestWitnessPathsActuallyMatch re-validates every witness against the
// pattern automaton under the answer's substitution.
func TestWitnessPathsActuallyMatch(t *testing.T) {
	g, err := FromMiniC(`
func main() {
	int a, b;
	a = 1;
	if (a) {
		b = a + c;
	}
	open(f);
	seteuid(1);
	close(f);
}
`, MiniCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ig := g.Internal()
	for _, pat := range []string{"(!def(x))* use(x)", "_* open(f) (!close(f))* seteuid(!0)"} {
		q := core.MustCompile(pattern.MustParse(pat), ig.U)
		res, err := core.Exist(ig, ig.Start(), q, core.Options{Witnesses: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs) == 0 {
			t.Fatalf("%s: no answers", pat)
		}
		for _, p := range res.Pairs {
			// Extend the minimal substitution over refined domains: the
			// witness must match under at least one full extension.
			word := make([]*label.CTerm, len(p.Witness))
			for i, w := range p.Witness {
				word[i] = w.Label
			}
			doms := core.ComputeDomains(q, ig, core.DomainsAllSymbols)
			matched := false
			forEach := func(th []int32) bool {
				if acceptsWord(q.NFA, word, th) {
					matched = true
					return false
				}
				return true
			}
			forEachExtension(p.Subst, q.Pars(), doms, forEach)
			if !matched {
				t.Fatalf("%s: witness %s does not match under any extension of %s",
					pat, core.FormatWitness(ig, p.Witness), p.Subst.Format(ig.U, q.PS))
			}
		}
	}
}

func acceptsWord(n *automata.NFA, word []*label.CTerm, th []int32) bool {
	cur := map[int32]bool{n.Start: true}
	for _, el := range word {
		next := map[int32]bool{}
		for s := range cur {
			for _, tr := range n.Trans[s] {
				if label.MatchGround(tr.Label, el, th) {
					next[tr.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if n.Final[s] {
			return true
		}
	}
	return false
}

func forEachExtension(base []int32, pars int, doms [][]int32, fn func([]int32) bool) {
	buf := make([]int32, len(base))
	copy(buf, base)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == pars {
			return fn(buf)
		}
		if base[i] >= 0 {
			return rec(i + 1)
		}
		for _, s := range doms[i] {
			buf[i] = s
			if !rec(i + 1) {
				return false
			}
		}
		buf[i] = -1
		return true
	}
	rec(0)
}
