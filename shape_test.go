package rpq

// Shape-regression tests: the experiment harness (cmd/experiments) and the
// benchmarks reproduce the paper's Tables 1-3 and Figure 3; these tests pin
// the qualitative shapes so a refactor cannot silently lose them.

import (
	"testing"

	"rpq/internal/core"
	"rpq/internal/gen"
	"rpq/internal/pattern"
	"rpq/internal/queries"
)

func TestShapeTable1(t *testing.T) {
	spec := gen.Table1Specs()[0] // cksum
	g := gen.Program(spec)
	r := g.Reverse()
	var start int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				start = e.To
			}
		}
	}
	if start < 0 {
		t.Fatal("no exit edge")
	}
	bq := core.MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), r.U)
	basic, err := core.Exist(r, start, bq, core.Options{Algo: core.AlgoBasic})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := core.Exist(r, start, bq, core.Options{Algo: core.AlgoPrecomp})
	if err != nil {
		t.Fatal(err)
	}
	// Basic and precomputation share worklist sizes and results (Table 1).
	if basic.Stats.WorklistInserts != pre.Stats.WorklistInserts {
		t.Errorf("worklists differ: %d vs %d", basic.Stats.WorklistInserts, pre.Stats.WorklistInserts)
	}
	if basic.Stats.ResultPairs != pre.Stats.ResultPairs {
		t.Errorf("results differ: %d vs %d", basic.Stats.ResultPairs, pre.Stats.ResultPairs)
	}
	// Result size in the paper's ballpark for cksum (result 20).
	if basic.Stats.ResultPairs < 5 || basic.Stats.ResultPairs > 80 {
		t.Errorf("cksum result size %d out of the expected band", basic.Stats.ResultPairs)
	}
	// Precomputation must not lose to basic on match calls.
	if pre.Stats.MatchCalls > basic.Stats.MatchCalls {
		t.Errorf("precomputation computed more matches: %d vs %d", pre.Stats.MatchCalls, basic.Stats.MatchCalls)
	}
}

func TestShapeTable2(t *testing.T) {
	spec := gen.Table2Specs()[0] // vasy-0-1: paper worklist 1,802, result 1,224
	g := gen.RandomLTS(spec).ForExistential()
	a, err := queries.ByName("lts-deadlock")
	if err != nil {
		t.Fatal(err)
	}
	q := core.MustCompile(pattern.MustParse(a.Pattern), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{Algo: core.AlgoBasic})
	if err != nil {
		t.Fatal(err)
	}
	// Structural quantities: the paper's worklist is 1,802 and result 1,224
	// for this row; ours depend only on the matched sizes, so they must be
	// within a few percent.
	if res.Stats.WorklistInserts < 1700 || res.Stats.WorklistInserts > 1900 {
		t.Errorf("vasy-0-1 worklist %d, want ≈1802", res.Stats.WorklistInserts)
	}
	if res.Stats.ResultPairs < 1150 || res.Stats.ResultPairs > 1300 {
		t.Errorf("vasy-0-1 result %d, want ≈1224", res.Stats.ResultPairs)
	}
	// Enumeration is far larger on this workload (paper: 85,034).
	enum, err := core.Exist(g, g.Start(), q, core.Options{Algo: core.AlgoEnum})
	if err != nil {
		t.Fatal(err)
	}
	if enum.Stats.WorklistInserts < 10*res.Stats.WorklistInserts {
		t.Errorf("enumeration worklist %d not ≫ basic %d", enum.Stats.WorklistInserts, res.Stats.WorklistInserts)
	}
	// The enumerated substitution count equals the number of states.
	if enum.Stats.EnumSubsts != spec.States {
		t.Errorf("enum substs %d, want %d", enum.Stats.EnumSubsts, spec.States)
	}
}

func TestShapeTable3(t *testing.T) {
	spec := gen.Table1Specs()[4] // cut
	g := gen.Program(spec)
	r := g.Reverse()
	var start int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				start = e.To
			}
		}
	}
	bq := core.MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), r.U)
	hash, err := core.Exist(r, start, bq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := core.Exist(r, start, bq, core.Options{Table: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nested arrays use strictly more memory on this sparse workload.
	if nested.Stats.Bytes <= hash.Stats.Bytes {
		t.Errorf("nested %d bytes not above hashing %d", nested.Stats.Bytes, hash.Stats.Bytes)
	}
	// Enumeration's memory is far below both (Table 3's third pairing).
	fq := core.MustCompile(pattern.MustParse("(!def(x))* use(x,_)"), g.U)
	enum, err := core.Exist(g, g.Start(), fq, core.Options{Algo: core.AlgoEnum})
	if err != nil {
		t.Fatal(err)
	}
	if enum.Stats.Bytes*10 > hash.Stats.Bytes {
		t.Errorf("enumeration bytes %d not ≪ hashing %d", enum.Stats.Bytes, hash.Stats.Bytes)
	}
}

func TestShapeSCCOrderSavesMemory(t *testing.T) {
	spec := gen.Table1Specs()[2] // expand
	g := gen.Program(spec)
	r := g.Reverse()
	var start int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				start = e.To
			}
		}
	}
	bq := core.MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), r.U)
	plain, err := core.Exist(r, start, bq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scc, err := core.Exist(r, start, bq, core.Options{SCCOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if scc.Stats.PeakTriples*2 > plain.Stats.PeakTriples {
		t.Errorf("SCC ordering did not cut peak triples: %d vs %d",
			scc.Stats.PeakTriples, plain.Stats.PeakTriples)
	}
	if scc.Stats.ResultPairs != plain.Stats.ResultPairs {
		t.Errorf("SCC ordering changed the result: %d vs %d",
			scc.Stats.ResultPairs, plain.Stats.ResultPairs)
	}
}
