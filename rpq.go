// Package rpq implements parametric regular path queries — the system of
// Liu, Rothamel, Yu, Stoller, and Hu, "Parametric Regular Path Queries"
// (PLDI 2004).
//
// A query matches a regular-expression pattern whose alphabet elements are
// transition labels — constructor terms that may contain parameters (x),
// wildcards (_), and negations (!) — against the paths of an edge-labeled
// directed graph. Existential queries compute the pairs ⟨v, θ⟩ such that
// some path from the start vertex to v matches the pattern under the
// substitution θ; universal queries require every path to v to match.
//
// Quick start:
//
//	g := rpq.NewGraph()
//	g.MustAddEdge("v1", "def(a)", "v2")
//	g.MustAddEdge("v2", "use(b)", "v3")
//	g.SetStart("v1")
//	p := rpq.MustParsePattern("(!def(x))* use(x)")
//	res, err := g.Exist(p, nil)
//	// res.Answers = [{Vertex: "v3", Bindings: [{x b}]}]
//
// The solver variants of the paper (basic, match memoization, M_ts/M_ds
// precomputation, enumeration, hybrid), the two data-structure
// representations it compares (hashing vs. nested arrays), backward queries
// on reversed graphs, parameter-domain refinement, SCC-ordered processing,
// and graph compaction are all selected through Options.
package rpq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rpq/internal/core"
	"rpq/internal/gofront"
	"rpq/internal/graph"
	"rpq/internal/lts"
	"rpq/internal/minic"
	"rpq/internal/minipy"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/prof"
	"rpq/internal/queries"
	"rpq/internal/subst"
	"rpq/internal/xmldata"
)

// Graph is an edge-labeled directed graph with a distinguished start vertex.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{g: graph.New()} }

// ReadGraph parses the textual graph format:
//
//	# comment
//	start v1
//	edge v1 def(a) v2
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadGraphString parses a graph from a string.
func ReadGraphString(s string) (*Graph, error) { return ReadGraph(strings.NewReader(s)) }

// AddEdge adds an edge between named vertices with a ground label such as
// "def(a)", "use(x,17)", or "exit()". Vertices are created as needed.
func (g *Graph) AddEdge(from, label, to string) error {
	return g.g.AddEdgeStr(from, label, to)
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from, label, to string) {
	g.g.MustAddEdgeStr(from, label, to)
}

// SetStart sets the start vertex v0, creating it if needed.
func (g *Graph) SetStart(name string) { g.g.SetStart(g.g.Vertex(name)) }

// Start returns the start vertex name, or "" if unset.
func (g *Graph) Start() string {
	if g.g.Start() < 0 {
		return ""
	}
	return g.g.VertexName(g.g.Start())
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Write emits the graph in the textual format.
func (g *Graph) Write(w io.Writer) error { return g.g.Write(w) }

// WriteDOT emits the graph in Graphviz DOT format. Vertices named in
// highlight (e.g. query answers) are filled; the start vertex is drawn with
// a double circle.
func (g *Graph) WriteDOT(w io.Writer, name string, highlight []string) error {
	var hl map[int32]bool
	if len(highlight) > 0 {
		hl = map[int32]bool{}
		for _, n := range highlight {
			if v, ok := g.g.LookupVertex(n); ok {
				hl[v] = true
			}
		}
	}
	return g.g.WriteDOT(w, name, hl)
}

// String renders the graph in the textual format.
func (g *Graph) String() string { return g.g.String() }

// Reverse returns the graph with all edges reversed; backward queries run on
// the reversed graph (Section 2.2 of the paper).
func (g *Graph) Reverse() *Graph { return &Graph{g: g.g.Reverse()} }

// ExitVertex returns the vertex just after an exit() edge, the conventional
// start for backward queries on program graphs produced by the MiniC
// front-end and the workload generator.
func (g *Graph) ExitVertex() (string, bool) {
	for v := 0; v < g.g.NumVertices(); v++ {
		for _, e := range g.g.Out(int32(v)) {
			if e.Label.Format(g.g.U, nil) == "exit()" {
				return g.g.VertexName(e.To), true
			}
		}
	}
	return "", false
}

// Internal exposes the underlying graph for the benchmark harness and
// command-line tools inside this module.
func (g *Graph) Internal() *graph.Graph { return g.g }

// WrapGraph wraps an internal graph in the public type.
func WrapGraph(ig *graph.Graph) *Graph { return &Graph{g: ig} }

// Pattern is a parsed parametric regular-expression pattern.
type Pattern struct {
	expr pattern.Expr
	src  string
}

// ParsePattern parses the pattern syntax, e.g. "(!def(x))* use(x)":
// concatenation by juxtaposition, alternation with |, repetition with * + ?,
// grouping with parentheses, eps for the empty path; labels are constructor
// terms whose bare argument identifiers are parameters, quoted or numeric
// arguments are symbols, _ is a wildcard and ! negation (with !(a|b) for
// negated alternations).
func ParsePattern(src string) (*Pattern, error) {
	e, err := pattern.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Pattern{expr: e, src: src}, nil
}

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(src string) *Pattern {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the canonical rendering of the pattern.
func (p *Pattern) String() string { return pattern.String(p.expr) }

// Mirror returns the pattern's reversal: a path matches p iff the reversed
// path matches p.Mirror(). It is the mechanical half of the Section 5.1
// forward/backward query conversion — combine with Options.Backward to ask
// suffix questions ("from which vertices does a P-path reach the exit?").
func (p *Pattern) Mirror() *Pattern {
	m := pattern.Mirror(p.expr)
	return &Pattern{expr: m, src: pattern.String(m)}
}

// Params returns the pattern's parameter names, sorted.
func (p *Pattern) Params() []string { return pattern.Params(p.expr) }

// Expr exposes the pattern AST for in-module tools.
func (p *Pattern) Expr() pattern.Expr { return p.expr }

// Algorithm selects the solver variant (Sections 3, 4, and 6).
type Algorithm int

const (
	// Auto picks the paper's recommended variant: memoization for
	// existential queries; for universal queries the direct algorithm with
	// automatic fallback to hybrid when the determinism check fails.
	Auto Algorithm = iota
	// Basic is the plain worklist algorithm.
	Basic
	// Memo memoizes match results (the substitution map M_s).
	Memo
	// Precompute builds the target-and-substitution map M_ts (existential)
	// or the determinism-and-substitution map M_ds (universal).
	Precompute
	// Enumerate runs one parameter-free query per full substitution over
	// the parameter domains.
	Enumerate
	// Hybrid (universal only) enumerates only extensions of substitutions
	// found by a first existential pass.
	Hybrid
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Basic:
		return "basic"
	case Memo:
		return "memo"
	case Precompute:
		return "precomputation"
	case Enumerate:
		return "enumeration"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// TableKind selects the set/map representation (Table 3).
type TableKind int

const (
	// Hashing keys hash sets off (vertex, state) bases — the paper's best
	// overall representation.
	Hashing TableKind = iota
	// NestedArrays indexes dense arrays by substitution key — fast when
	// dense, space-hungry when sparse.
	NestedArrays
)

// String names the representation ("hash" or "nested").
func (t TableKind) String() string {
	switch t {
	case Hashing:
		return "hash"
	case NestedArrays:
		return "nested"
	}
	return fmt.Sprintf("TableKind(%d)", int(t))
}

// Completion selects how universal queries treat automaton states with no
// matching transition (the prior-work baseline comparison; existential
// queries ignore it).
type Completion int

const (
	// IncompleteAutomaton handles incomplete automata directly with the
	// paper's badstate rules — its improvement over Liu & Yu (2002).
	IncompleteAutomaton Completion = iota
	// TrapCompletion adds a compact trap state (one negated alternation
	// per state).
	TrapCompletion
	// ExplicitCompletion adds one trap transition per uncovered edge label
	// per state, the classical prior-work construction; parameter-free
	// patterns only.
	ExplicitCompletion
)

// DomainMode selects how parameter domains are computed (Section 5.3).
type DomainMode int

const (
	// RefinedDomains restricts each parameter to symbols occurring at its
	// (constructor, argument) positions in the graph.
	RefinedDomains DomainMode = iota
	// AllSymbols uses every symbol for every parameter.
	AllSymbols
)

// Options configures a query run. The zero value (or nil) requests Auto
// with hashing and refined domains.
type Options struct {
	Algorithm Algorithm
	Table     TableKind
	Domains   DomainMode
	// Backward reverses all edges before the query (Section 2.2) and, if
	// Start is empty, starts from the vertex after the exit() edge.
	Backward bool
	// Start overrides the graph's start vertex by name.
	Start string
	// Compact drops edges no transition label can match before an
	// existential query (Section 5.3).
	Compact bool
	// SCCOrder processes strongly connected components in topological
	// order, releasing per-component storage (Section 5.3); existential
	// only.
	SCCOrder bool
	// Completion selects the universal automaton completion baseline.
	Completion Completion
	// Witnesses attaches, to each existential answer, one start-to-vertex
	// path witnessing it (an error trace). Worklist algorithms only.
	Witnesses bool
	// Workers sets the number of goroutines the existential solver uses;
	// 0 or 1 selects the sequential algorithms. The parallel solver returns
	// the same sorted answers, the same WorklistInserts, ReachSize, Substs,
	// and ResultPairs as the sequential one; peak-memory and match-cache
	// counters are approximate, and witnesses — while always valid — may
	// pick different paths. Universal queries ignore Workers (their
	// existential sub-queries in the hybrid algorithm do use it).
	Workers int
	// Tracer receives structured lifecycle events from the solver: phase
	// begin/end, worklist high-water marks, substitution-table growth
	// snapshots, and end-of-run counters. Nil (the default) disables
	// tracing; the no-op path costs one branch per query. See
	// NewRingTracer, NewNDJSONTracer, and NewChromeTracer for sinks.
	Tracer Tracer
	// Gauges receives live samples of worklist depth, reach-set size,
	// interned substitutions, and table bytes every few hundred worklist
	// pops, so the /metrics endpoint can expose a query in flight. Use
	// LiveGauges for a process-wide set served by ServeObservability.
	Gauges *SolverGauges
	// SlowLog, when non-nil, records queries whose wall-clock time
	// reaches its threshold as NDJSON (one record per slow query).
	SlowLog *SlowLog
	// Explain collects a per-query execution profile — per-state visit
	// counts, per-transition match attempts/hits/extensions, per-edge-label
	// histograms, table-occupancy and worklist-depth curves, and (parallel
	// runs) per-worker timelines — returned in Result.Explain. Costs one
	// branch per counter site when off; expect a few percent overhead when
	// on.
	Explain bool
	// Deadline, when > 0, bounds the query's wall-clock time; a run that
	// exceeds it stops at the next cancellation check and returns an
	// InterruptError wrapping ErrDeadline. Combine with the Context entry
	// points (ExistContext etc.) for caller-driven cancellation.
	Deadline time.Duration
	// Progress, when non-nil, receives live snapshots of the run every few
	// hundred worklist pops (and once per enumerated substitution in the
	// enumeration phases). The callback runs on a solver goroutine — keep it
	// cheap and do not block.
	Progress func(Progress)
	// Watchdog, when non-nil with a Dir, turns anomalies into diagnostic
	// bundles: it attaches an always-on flight-recorder event ring to the
	// query, arms a hung-query timer (Watchdog.Hung), and dumps a bundle on
	// deadline breach, cancellation, or a slow run (Watchdog.Slow).
	Watchdog *Watchdog
	// Lint runs the static query analyzer before solving and rejects the
	// query with a *LintError if it has error-severity findings (a provably
	// empty pattern, a never-binding parameter, an unsatisfiable label) —
	// the query fails fast with zero solver work. Warnings and advice do
	// not reject; retrieve them with Lint / LintForGraph. Independent of
	// this gate, any query run under a Watchdog has its lint report
	// attached to diagnostic bundles as lint.json.
	Lint bool
	// Cache, when non-nil, memoizes compiled queries (pattern → automaton,
	// keyed by the canonical simplified AST and the graph's universe) so
	// repeated patterns skip compilation entirely. See NewQueryCache; the
	// query service shares one cache across all requests.
	Cache *QueryCache
	// OnBegin, when non-nil, is called with the query's in-flight registry
	// id just after the query is registered (the same id that appears in
	// InflightQueries and /debug/rpq/queries) and before solving starts.
	// The query service uses it to map registry ids to cancel functions;
	// the callback runs on the query's goroutine and must be cheap.
	OnBegin func(id int64)
}

// Stats reports the instrumentation of a run; see core.Stats for the
// correspondence with the paper's tables and the phase-timing breakdown of
// the observability layer (docs/observability.md). It marshals to JSON.
type Stats = core.Stats

// PhaseTimings is the per-phase cost breakdown carried in Stats.Phases.
type PhaseTimings = core.PhaseTimings

// PhaseStat is one phase's wall-clock (and, under tracing, allocation)
// cost.
type PhaseStat = core.PhaseStat

// Explain is the per-query execution profile collected under
// Options.Explain: EXPLAIN/ANALYZE for a parametric regular path query. It
// marshals to JSON; Format renders a text report and DOT an annotated
// heat-map of the query automaton.
type Explain = core.Explain

// StateProfile is one automaton state's profile within an Explain report.
type StateProfile = core.StateProfile

// TransProfile is one automaton transition's profile within an Explain
// report.
type TransProfile = core.TransProfile

// LabelProfile is one graph edge label's match histogram within an Explain
// report.
type LabelProfile = core.LabelProfile

// WorkerProfile is one parallel-solver worker's timeline summary within an
// Explain report.
type WorkerProfile = core.WorkerProfile

// ---- Observability ----
//
// The types below re-export the internal/obs layer so callers can trace
// runs, expose live metrics, and log slow queries; docs/observability.md
// documents the event schema and metric names.

// Tracer receives solver trace events; see Options.Tracer.
type Tracer = obs.Tracer

// TraceEvent is one structured trace event.
type TraceEvent = obs.Event

// RingTracer retains the last N events in memory.
type RingTracer = obs.RingSink

// NDJSONTracer streams events as NDJSON, one object per line.
type NDJSONTracer = obs.NDJSONSink

// ChromeTracer writes Chrome trace_event JSON for chrome://tracing.
type ChromeTracer = obs.ChromeSink

// MultiTracer fans events out to several tracers.
type MultiTracer = obs.Multi

// SlowLog records slow queries as NDJSON; see Options.SlowLog.
type SlowLog = obs.SlowLog

// SolverGauges is the live gauge set sampled by a running query.
type SolverGauges = obs.SolverGauges

// TraceContext is a W3C Trace Context identity (128-bit trace ID, 64-bit
// span ID, flags). Attach one to a query's context with WithTrace and every
// piece of telemetry the run produces — trace events, the in-flight
// snapshot, the slow-log record, flight-recorder bundles, pprof labels —
// carries its trace ID. The service plane does this per HTTP request.
type TraceContext = obs.TraceContext

// NewTraceContext generates a fresh sampled trace context.
func NewTraceContext() TraceContext { return obs.NewTraceContext() }

// ParseTraceparent parses a W3C traceparent header (version 00), rejecting
// malformed values and all-zero IDs.
func ParseTraceparent(s string) (TraceContext, error) { return obs.ParseTraceparent(s) }

// WithTrace returns ctx carrying tc; pass the result to the *Context query
// methods to stamp the run's telemetry with the request identity.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return obs.WithTrace(ctx, tc)
}

// TraceFromContext returns the trace context attached to ctx by WithTrace
// (or by the service middleware), if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) { return obs.TraceFrom(ctx) }

// Progress is one live snapshot of a running query, delivered to
// Options.Progress: the current phase, worklist pops and depth, reach-set
// and substitution-table sizes, enumeration progress, and worker count.
type Progress = core.Progress

// InterruptError is returned when a query is canceled or exceeds its
// deadline: Reason wraps ErrCanceled or ErrDeadline, Stats carries the
// counters accumulated up to the interrupt, and Explain the partial profile
// when Options.Explain was set. Test with errors.As / errors.Is.
type InterruptError = core.InterruptError

// ErrCanceled is wrapped by InterruptError when the caller's context was
// canceled; errors.Is(err, context.Canceled) also holds.
var ErrCanceled = core.ErrCanceled

// ErrDeadline is wrapped by InterruptError when Options.Deadline (or the
// context's deadline) expired; errors.Is(err, context.DeadlineExceeded) also
// holds.
var ErrDeadline = core.ErrDeadline

// Watchdog turns query anomalies into diagnostic bundles; see
// Options.Watchdog and docs/observability.md for the bundle format.
type Watchdog = obs.Watchdog

// Bundle is a loaded diagnostic bundle; see LoadBundle.
type Bundle = obs.Bundle

// QuerySnapshot is one point-in-time view of an in-flight query, as served
// by /debug/rpq/queries and returned by InflightQueries.
type QuerySnapshot = obs.QuerySnapshot

// LoadBundle reads a diagnostic bundle directory written by a Watchdog.
func LoadBundle(dir string) (*Bundle, error) { return obs.LoadBundle(dir) }

// InflightQueries returns snapshots of the queries executing right now in
// this process, ordered by start; the same data is served as JSON at
// /debug/rpq/queries by ServeObservability.
func InflightQueries() []QuerySnapshot { return obs.DefaultInflight().Snapshots() }

// NewRingTracer returns a tracer retaining the last n events.
func NewRingTracer(n int) *RingTracer { return obs.NewRingSink(n) }

// NewNDJSONTracer returns a tracer streaming NDJSON events to w.
func NewNDJSONTracer(w io.Writer) *NDJSONTracer { return obs.NewNDJSONSink(w) }

// NewChromeTracer returns a tracer writing Chrome trace_event JSON to w;
// call Close when the run finishes to terminate the JSON array.
func NewChromeTracer(w io.Writer) *ChromeTracer { return obs.NewChromeSink(w) }

// NewSlowLog returns a slow-query log writing NDJSON records to w for
// queries taking threshold or longer.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return obs.NewSlowLog(w, threshold)
}

// LiveGauges returns the process-wide solver gauge set, registered under
// the rpq_ namespace in the default metric registry that
// ServeObservability exposes at /metrics.
func LiveGauges() *SolverGauges { return obs.NewSolverGauges(nil) }

// ServeObservability starts the observability HTTP server on addr, serving
// /metrics (Prometheus text exposition of the default registry, including
// the latency histograms), /debug/rpq/queries (JSON snapshots of in-flight
// queries), /debug/rpq/dash (the live dashboard, without sparkline history
// — use ServeObservabilityWith for that), /debug/vars (expvar), and
// /debug/pprof/. The listener binds synchronously; requests are served in
// the background until the returned server is Closed.
func ServeObservability(addr string) (*http.Server, error) { return obs.Serve(addr, nil) }

// RuntimeSampler periodically reads runtime/metrics (heap, GC pauses,
// goroutines, scheduler latency) into go_* gauges; see
// ServeObservabilityWith, which starts one.
type RuntimeSampler = obs.RuntimeSampler

// TimeSeries is the bounded in-process telemetry time-series store behind
// /debug/rpq/ts and the dashboard sparklines.
type TimeSeries = obs.TimeSeries

// TimeSeriesOptions configures a TimeSeries store.
type TimeSeriesOptions = obs.TimeSeriesOptions

// ObservabilityConfig tunes the continuous-telemetry plane started by
// ServeObservabilityWith. The zero value enables everything at the
// defaults; a negative duration disables the corresponding component.
type ObservabilityConfig struct {
	// SampleInterval is the runtime-metrics sampling cadence (0 = 1s,
	// < 0 = no runtime sampler).
	SampleInterval time.Duration
	// TSInterval is the time-series snapshot cadence (0 = 1s, < 0 = no
	// time-series store, which also leaves the dashboard without history).
	TSInterval time.Duration
	// Retention is the time-series window to keep in memory (0 = 10m).
	// The store's footprint is bounded by Retention/TSInterval points no
	// matter how long the process runs.
	Retention time.Duration
	// SLOs, when non-empty, enables SLO burn-rate tracking over the
	// time-series window: /debug/rpq/slo serves the multi-window readout and
	// the dashboard gains a burn-rate panel. Requires the time-series store
	// (ignored when TSInterval < 0).
	SLOs []SLO
	// Profiling, when non-nil, starts the always-on continuous profiler:
	// duty-cycled CPU windows plus heap snapshots in a bounded ring, served
	// on /debug/rpq/prof (window list, label-sliced frames, diffs, icicle
	// tree) and pinned into watchdog bundles on anomalies.
	Profiling *ProfilingConfig
}

// ProfilingConfig tunes the continuous profiler; see
// ObservabilityConfig.Profiling. The zero value captures a 10s CPU window
// every 60s — a duty cycle whose steady-state overhead stays under 2% (the
// pinned BenchmarkExist/prof-on budget).
type ProfilingConfig struct {
	// Window is the CPU-capture duration per cycle (0 = 10s).
	Window time.Duration
	// Interval is the capture cadence — one window starts every Interval
	// (0 = 60s; clamped up to Window).
	Interval time.Duration
	// Retain bounds the unpinned windows kept in memory (0 = 32).
	Retain int
	// MaxPinned bounds the anomaly-pinned windows kept in memory (0 = 8).
	MaxPinned int
	// SLOBurnThreshold is the burn rate at which the active window is pinned
	// when SLO tracking is enabled (0 = 1.0, i.e. burning error budget faster
	// than the objective allows; < 0 disables the SLO pin hook).
	SLOBurnThreshold float64
}

// Profiler is the running continuous profiler; see
// ObservabilityServer.Prof and internal/prof.
type Profiler = prof.Profiler

// SLO is one service-level objective for SLO burn-rate tracking; see
// ObservabilityConfig.SLOs and internal/service.
type SLO = obs.SLO

// SLOTracker computes multi-window burn rates from the telemetry
// time-series; see ObservabilityServer.SLO.
type SLOTracker = obs.SLOTracker

// ObservabilityServer is a running observability plane: the HTTP server
// plus the background runtime sampler and time-series store feeding it.
// Close stops all three; the components are exported for tests and for
// callers that want to Record or SampleOnce on their own schedule.
type ObservabilityServer struct {
	Server  *http.Server
	Sampler *RuntimeSampler
	TS      *TimeSeries
	// SLO is the burn-rate tracker behind /debug/rpq/slo; nil unless
	// ObservabilityConfig.SLOs was set alongside an enabled time-series
	// store.
	SLO *SLOTracker
	// Prof is the continuous profiler behind /debug/rpq/prof; nil unless
	// ObservabilityConfig.Profiling was set. Wire it into a Watchdog
	// (Watchdog.Profiler = srv.Prof) to pin profile windows into bundles.
	Prof *Profiler
}

// Close stops the profiler, the time-series store, the runtime sampler, and
// the HTTP server, in that order. No background goroutine survives it.
func (s *ObservabilityServer) Close() error {
	if s == nil {
		return nil
	}
	if s.Prof != nil {
		s.Prof.Stop()
	}
	if s.TS != nil {
		s.TS.Stop()
	}
	if s.Sampler != nil {
		s.Sampler.Stop()
	}
	if s.Server != nil {
		return s.Server.Close()
	}
	return nil
}

// ServeObservabilityWith starts the full observability plane on addr: the
// endpoints of ServeObservability plus a runtime-metrics sampler and a
// bounded time-series store, so /debug/rpq/ts serves history (rpq-tsdb/1
// JSON) and /debug/rpq/dash draws live sparklines. Close the returned
// server to stop everything.
func ServeObservabilityWith(addr string, cfg ObservabilityConfig) (*ObservabilityServer, error) {
	out := &ObservabilityServer{}
	if cfg.SampleInterval >= 0 {
		out.Sampler = obs.NewRuntimeSampler(nil, cfg.SampleInterval)
	}
	if cfg.TSInterval >= 0 {
		out.TS = obs.NewTimeSeries(nil, obs.TimeSeriesOptions{
			Interval: cfg.TSInterval, Retention: cfg.Retention,
		})
		out.TS.WatchInflight(obs.DefaultInflight())
	}
	if out.TS != nil && len(cfg.SLOs) > 0 {
		out.SLO = obs.NewSLOTracker(out.TS, cfg.SLOs)
	}
	if pc := cfg.Profiling; pc != nil {
		out.Prof = prof.New(prof.Options{
			Window:    pc.Window,
			Interval:  pc.Interval,
			Retain:    pc.Retain,
			MaxPinned: pc.MaxPinned,
		})
	}
	so := obs.ServeOptions{
		TimeSeries: out.TS,
		SLO:        out.SLO,
		QueryHist:  obs.NewSolverGauges(nil).QueryHist,
	}
	if out.Prof != nil {
		so.Prof = out.Prof.Handler()
	}
	srv, err := obs.ServeWith(addr, so)
	if err != nil {
		// Failed startup (e.g. the port is already bound) must not leak the
		// telemetry components: stop whichever were already running so no
		// sampler or time-series goroutine outlives the error return.
		if out.TS != nil {
			out.TS.Stop()
		}
		if out.Sampler != nil {
			out.Sampler.Stop()
		}
		return nil, err
	}
	out.Server = srv
	if out.Sampler != nil {
		out.Sampler.Start()
	}
	if out.TS != nil {
		out.TS.Start()
	}
	if out.Prof != nil {
		out.Prof.Start()
		if out.SLO != nil && cfg.Profiling.SLOBurnThreshold >= 0 {
			threshold := cfg.Profiling.SLOBurnThreshold
			if threshold == 0 {
				threshold = 1.0
			}
			out.Prof.WatchSLO(out.SLO, threshold, 0)
		}
	}
	return out, nil
}

// FormatTrace renders trace events as an aligned human-readable table.
func FormatTrace(evs []TraceEvent) string { return obs.FormatEvents(evs) }

// flightRingSize is the capacity of the always-on per-query flight-recorder
// event ring attached when Options.Watchdog is set.
const flightRingSize = 256

// runState tracks one public query from beginRun to finish: the in-flight
// registry entry, the flight-recorder ring, and the hung-query timer.
type runState struct {
	opts     *Options
	kind     string
	query    string
	t0       time.Time
	iq       *obs.InflightQuery
	ring     *obs.RingSink
	stopHung func()
	// ended guards end(): the entry points defer it so the in-flight
	// registry entry and the hung-query timer are released on every exit
	// path — including a panic inside a solver variant — while the normal
	// finish path releases them exactly once.
	ended bool

	// cpu0/alloc0 anchor the run's resource attribution: process CPU time
	// and cumulative heap allocation at beginRun. finish stamps the deltas
	// into Stats, Explain, the gauges, and the slow log. Both counters are
	// process-wide, so under concurrent queries the deltas over-attribute
	// shared work; the pprof labels applied by do give exact attribution.
	cpu0   time.Duration
	alloc0 int64

	// trace is the W3C trace context carried by the caller's ctx, if any
	// (zero value = none). It joins the run's telemetry — events, snapshot,
	// slow-log record, pprof labels — to the originating request.
	trace obs.TraceContext
}

// do runs fn under pprof labels identifying the query — rpq_query_id (the
// in-flight registry id), rpq_kind, variant (algorithm), table, and workers
// — so CPU and goroutine profiles taken while queries run attribute their
// samples to specific queries. Labels propagate to every goroutine the
// solver spawns, covering parallel workers. Call it once per solver
// invocation; a re-run after an algorithm fallback gets fresh labels.
func (rs *runState) do(ctx context.Context, co *core.Options, fn func(ctx context.Context)) {
	labels := []string{
		"rpq_query_id", strconv.FormatInt(rs.iq.ID(), 10),
		"rpq_kind", rs.kind,
		"variant", co.Algo.String(),
		"table", co.Table.String(),
		"workers", strconv.Itoa(co.Workers),
	}
	if rs.trace.IsValid() {
		labels = append(labels, "rpq_trace_id", rs.trace.TraceIDString())
	}
	pprof.Do(ctx, pprof.Labels(labels...), fn)
}

// beginRun registers the query as in-flight, splices the flight-recorder
// ring into the core tracer when a watchdog is configured, arms the
// hung-query timer, and chains the progress callback so every run keeps its
// live snapshot current. It mutates co (Tracer, Progress) in place. lint is
// the query's lint report (or nil) for watchdog bundles; it must be attached
// here, before the hung timer arms, because the timer reads the handle
// asynchronously. When ctx carries a trace context (obs.WithTrace — the
// service plane attaches one per HTTP request), the run's telemetry is
// stamped with it: the in-flight snapshot, every trace event, the pprof
// label set, and the slow-log record. The lookup is one ctx.Value call per
// query, so library runs without a trace pay nothing measurable.
func beginRun(ctx context.Context, opts *Options, kind, query string, lint any, co *core.Options) *runState {
	rs := &runState{
		opts: opts, kind: kind, query: query, t0: time.Now(), stopHung: func() {},
		cpu0: obs.ProcessCPUTime(), alloc0: obs.HeapAllocBytes(),
	}
	if tc, ok := obs.TraceFrom(ctx); ok && tc.IsValid() {
		rs.trace = tc
	}
	rs.iq = obs.DefaultInflight().Begin(kind, query, co.Algo.String())
	rs.iq.SetTrace(rs.trace)
	rs.iq.Lint = lint
	var wd *Watchdog
	if opts != nil {
		wd = opts.Watchdog
	}
	if wd.Enabled() {
		rs.ring = obs.NewRingSink(flightRingSize)
		rs.iq.Ring = rs.ring
		if co.Tracer != nil {
			co.Tracer = obs.Multi{co.Tracer, rs.ring}
		} else {
			co.Tracer = rs.ring
		}
		rs.stopHung = wd.Arm(rs.iq)
	}
	// Stamp outermost so every sink below — user tracer and flight ring
	// alike — records the trace identity on each event.
	co.Tracer = obs.StampTrace(co.Tracer, rs.trace)
	var userProg func(Progress)
	if opts != nil {
		userProg = opts.Progress
	}
	iq := rs.iq
	co.Progress = func(p core.Progress) {
		iq.Update(p.Phase, p.Pops, p.WorklistDepth, p.Reach, p.Substs, p.EnumSubsts, p.Workers)
		if userProg != nil {
			userProg(p)
		}
	}
	if opts != nil {
		co.Deadline = opts.Deadline
	}
	if opts != nil && opts.OnBegin != nil {
		opts.OnBegin(rs.iq.ID())
	}
	return rs
}

// end releases the run's lifecycle resources: it stops the hung-query timer
// and unregisters the in-flight entry. It is idempotent, and the entry
// points defer it immediately after beginRun so a panic escaping a solver
// variant (or any future early return) can never leave a ghost entry in
// /debug/rpq/queries. finish calls it as its final step on the normal paths.
func (rs *runState) end() {
	if rs.ended {
		return
	}
	rs.ended = true
	rs.stopHung()
	rs.iq.Done()
}

// finish completes the run's observability: stop the hung timer, unregister
// the in-flight entry, feed the latency histograms and query gauges, dump a
// watchdog bundle on anomaly (deadline breach, cancellation, slow run), and
// record the slow-query log entry (with the bundle path when one was
// written). It handles both outcomes — res on success, err (possibly an
// *InterruptError carrying partial stats) on failure.
func (rs *runState) finish(res *Result, err error) {
	rs.stopHung()
	d := time.Since(rs.t0)
	opts := rs.opts

	var stats *Stats
	var explain *Explain
	answers := 0
	if res != nil {
		stats = &res.Stats
		explain = res.Explain
		answers = len(res.Answers)
	}
	var ie *InterruptError
	if errors.As(err, &ie) {
		stats = &ie.Stats
		explain = ie.Explain
	}

	// Stamp the run's resource attribution: CPU-time and heap-allocation
	// deltas since beginRun (clamped at zero — the counters are monotonic
	// but a zero CPU reading on non-unix platforms must not go negative).
	var cpu time.Duration
	var alloc int64
	if rs.cpu0 > 0 {
		if dd := obs.ProcessCPUTime() - rs.cpu0; dd > 0 {
			cpu = dd
		}
	}
	if da := obs.HeapAllocBytes() - rs.alloc0; da > 0 {
		alloc = da
	}
	if stats != nil {
		stats.CPUTime = cpu
		stats.AllocBytes = alloc
	}
	if explain != nil {
		explain.CPUTime = cpu
		explain.AllocBytes = alloc
	}

	var gauges *SolverGauges
	if opts != nil {
		gauges = opts.Gauges
	}
	if gauges != nil {
		gauges.Queries.Add(1)
		traceID := ""
		if rs.trace.IsValid() {
			traceID = rs.trace.TraceIDString()
		}
		gauges.QueryHist.ObserveTrace(d, traceID)
		gauges.CPUTotalUS.Add(cpu.Microseconds())
		gauges.AllocTotal.Add(alloc)
		if stats != nil {
			gauges.CompileHist.Observe(stats.Phases.Compile.Wall)
			gauges.DomainsHist.Observe(stats.Phases.Domains.Wall)
			gauges.SolveHist.Observe(stats.Phases.Solve.Wall)
			if stats.Phases.Enumerate.Wall > 0 {
				gauges.EnumHist.Observe(stats.Phases.Enumerate.Wall)
			}
		}
	}

	bundle := ""
	if opts != nil && opts.Watchdog.Enabled() {
		reason := ""
		switch {
		case errors.Is(err, ErrDeadline):
			reason = "deadline"
		case errors.Is(err, ErrCanceled):
			reason = "canceled"
		case err == nil && opts.Watchdog.Slow > 0 && d >= opts.Watchdog.Slow:
			reason = "slow"
		}
		if reason != "" {
			var ex any
			if explain != nil {
				ex = explain
			}
			if dir, derr := opts.Watchdog.Dump(rs.iq, reason, ex); derr == nil {
				bundle = dir
			}
		}
	}

	if opts != nil && stats != nil {
		detail := obs.SlowDetail{
			Workers: opts.Workers, Table: opts.Table.String(), Bundle: bundle,
			CPUTime: cpu, AllocBytes: alloc,
		}
		if rs.trace.IsValid() {
			detail.TraceID = rs.trace.TraceIDString()
			detail.SpanID = rs.trace.SpanIDString()
		}
		if explain != nil {
			detail.HotStates = explain.TopStates(3)
		}
		if opts.SlowLog.ObserveDetail(rs.kind, rs.query, d, answers, *stats, detail) {
			if gauges != nil {
				gauges.SlowQueries.Add(1)
			}
		}
	}
	rs.end()
}

// Binding is one parameter-to-symbol binding of an answer.
type Binding struct {
	Param  string
	Symbol string
}

// Step is one edge of a witnessing path.
type Step struct {
	From  string
	Label string
	To    string
}

// Answer is one query answer: a vertex and the substitution witnessing it.
// For existential queries the substitution is minimal (every extension also
// matches); for direct universal queries it is the merge over all paths.
// Witness is populated when Options.Witnesses is set on an existential
// query: one path from the start vertex matching the pattern.
type Answer struct {
	Vertex   string
	Bindings []Binding
	Witness  []Step
}

// String renders the answer as "v {x↦a, y↦b}".
func (a Answer) String() string {
	var b strings.Builder
	b.WriteString(a.Vertex)
	b.WriteString(" {")
	for i, bd := range a.Bindings {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.Param)
		b.WriteString("↦")
		b.WriteString(bd.Symbol)
	}
	b.WriteString("}")
	return b.String()
}

// Result is a query result.
type Result struct {
	Answers []Answer
	Stats   Stats
	// Explain carries the execution profile when Options.Explain was set;
	// nil otherwise.
	Explain *Explain
}

// Filter returns a result restricted to the answers keep accepts; Stats are
// carried over unchanged. It supports the Section 5.4 direction of
// "computations involving the values of parameters": bindings are plain
// strings, so callers can apply numeric or lexical predicates to them.
func (r *Result) Filter(keep func(Answer) bool) *Result {
	out := &Result{Stats: r.Stats}
	for _, a := range r.Answers {
		if keep(a) {
			out.Answers = append(out.Answers, a)
		}
	}
	return out
}

// Binding returns the symbol bound to param in the answer, or "" if unbound.
func (a Answer) Binding(param string) string {
	for _, b := range a.Bindings {
		if b.Param == param {
			return b.Symbol
		}
	}
	return ""
}

// resolve prepares the run: algorithm mapping, direction, start vertex.
func (g *Graph) resolve(opts *Options, universal bool) (*graph.Graph, int32, core.Options, error) {
	if opts == nil {
		opts = &Options{}
	}
	ig := g.g
	if opts.Backward {
		ig = ig.Reverse()
	}
	start := ig.Start()
	if opts.Start != "" {
		v, ok := ig.LookupVertex(opts.Start)
		if !ok {
			return nil, 0, core.Options{}, fmt.Errorf("rpq: unknown start vertex %q", opts.Start)
		}
		start = v
	} else if opts.Backward {
		if name, ok := g.ExitVertex(); ok {
			start, _ = ig.LookupVertex(name)
		}
	}
	if start < 0 {
		return nil, 0, core.Options{}, fmt.Errorf("rpq: no start vertex; call SetStart or pass Options.Start")
	}
	co := core.Options{
		Table:      subst.TableKind(opts.Table),
		Domains:    core.DomainMode(opts.Domains),
		Compact:    opts.Compact,
		SCCOrder:   opts.SCCOrder,
		Completion: core.CompletionMode(opts.Completion),
		Witnesses:  opts.Witnesses,
		Workers:    opts.Workers,
		Tracer:     opts.Tracer,
		Gauges:     opts.Gauges,
		Explain:    opts.Explain,
	}
	switch opts.Algorithm {
	case Auto:
		if universal {
			co.Algo = core.AlgoBasic // with hybrid fallback in Universal
		} else {
			co.Algo = core.AlgoMemo
		}
	case Basic:
		co.Algo = core.AlgoBasic
	case Memo:
		co.Algo = core.AlgoMemo
	case Precompute:
		co.Algo = core.AlgoPrecomp
	case Enumerate:
		co.Algo = core.AlgoEnum
	case Hybrid:
		co.Algo = core.AlgoHybrid
	default:
		return nil, 0, core.Options{}, fmt.Errorf("rpq: unknown algorithm %v", opts.Algorithm)
	}
	return ig, start, co, nil
}

func (g *Graph) convert(ig *graph.Graph, q *core.Query, res *core.Result) *Result {
	out := &Result{Stats: res.Stats, Explain: res.Explain}
	for _, p := range res.Pairs {
		a := Answer{Vertex: ig.VertexName(p.Vertex)}
		for i, v := range p.Subst {
			if v >= 0 {
				a.Bindings = append(a.Bindings, Binding{
					Param:  q.PS.Name(int32(i)),
					Symbol: ig.U.Syms.Name(v),
				})
			}
		}
		for _, w := range p.Witness {
			a.Witness = append(a.Witness, Step{
				From:  ig.VertexName(w.From),
				Label: w.Label.Format(ig.U, nil),
				To:    ig.VertexName(w.To),
			})
		}
		out.Answers = append(out.Answers, a)
	}
	return out
}

// Exist runs an existential query: all ⟨v, θ⟩ such that some path from the
// start vertex to v matches the pattern under θ.
func (g *Graph) Exist(p *Pattern, opts *Options) (*Result, error) {
	return g.ExistContext(context.Background(), p, opts)
}

// ExistContext is Exist bounded by ctx (and Options.Deadline): when either
// fires, the run stops at the next cancellation check and returns an
// *InterruptError wrapping ErrCanceled or ErrDeadline with the statistics
// accumulated so far.
func (g *Graph) ExistContext(ctx context.Context, p *Pattern, opts *Options) (*Result, error) {
	ig, start, co, err := g.resolve(opts, false)
	if err != nil {
		return nil, err
	}
	if co.Algo == core.AlgoHybrid {
		return nil, fmt.Errorf("rpq: the hybrid algorithm applies to universal queries only")
	}
	q, err := compileForRun(opts, ig, cacheKindQuery, p.expr)
	if err != nil {
		return nil, err
	}
	diags := lintForRun(opts, p.expr, p.src, false)
	if err := gateLint(opts, diags); err != nil {
		return nil, err
	}
	rs := beginRun(ctx, opts, "exist", p.src, lintPayload(diags), &co)
	defer rs.end()
	var res *core.Result
	rs.do(ctx, &co, func(ctx context.Context) {
		res, err = core.ExistContext(ctx, ig, start, q, co)
	})
	if err != nil {
		rs.finish(nil, err)
		return nil, err
	}
	out := g.convert(ig, q, res)
	rs.finish(out, nil)
	return out, nil
}

// Universal runs a universal query: all ⟨v, θ⟩ such that there is a path
// from the start vertex to v and every such path matches under θ. With
// Algorithm Auto, the direct algorithm of Section 4 is tried first and the
// hybrid algorithm is used when the runtime determinism check fails.
func (g *Graph) Universal(p *Pattern, opts *Options) (*Result, error) {
	return g.UniversalContext(context.Background(), p, opts)
}

// UniversalContext is Universal bounded by ctx (and Options.Deadline); see
// ExistContext for the cancellation semantics. The Auto fallback to the
// hybrid algorithm re-runs under the same context.
func (g *Graph) UniversalContext(ctx context.Context, p *Pattern, opts *Options) (*Result, error) {
	ig, start, co, err := g.resolve(opts, true)
	if err != nil {
		return nil, err
	}
	q, err := compileForRun(opts, ig, cacheKindQuery, p.expr)
	if err != nil {
		return nil, err
	}
	diags := lintForRun(opts, p.expr, p.src, true)
	if err := gateLint(opts, diags); err != nil {
		return nil, err
	}
	rs := beginRun(ctx, opts, "universal", p.src, lintPayload(diags), &co)
	defer rs.end()
	var res *core.Result
	rs.do(ctx, &co, func(ctx context.Context) {
		res, err = core.UnivContext(ctx, ig, start, q, co)
	})
	if err == core.ErrNondeterministic && (opts == nil || opts.Algorithm == Auto) {
		co.Algo = core.AlgoHybrid
		rs.do(ctx, &co, func(ctx context.Context) {
			res, err = core.UnivContext(ctx, ig, start, q, co)
		})
	}
	if err != nil {
		rs.finish(nil, err)
		return nil, err
	}
	out := g.convert(ig, q, res)
	rs.finish(out, nil)
	return out, nil
}

// ErrNondeterministic is returned by Universal with an explicit direct
// algorithm when the determinism condition of Section 4 fails.
var ErrNondeterministic = core.ErrNondeterministic

// Estimate is the complexity report of the paper's Figure 2 quantities and
// Section 3/4 worst-case formulas, evaluated for a query on a graph.
type Estimate = core.Estimate

// EstimateQuery computes the Figure 2 quantities and worst-case time bounds
// for running p on g (Section 5.3's refined per-parameter domains when
// mode is RefinedDomains).
func (g *Graph) EstimateQuery(p *Pattern, mode DomainMode) (Estimate, error) {
	q, err := core.Compile(p.expr, g.g.U)
	if err != nil {
		return Estimate{}, err
	}
	return core.EstimateQuery(q, g.g, core.DomainMode(mode)), nil
}

// Advise inspects the query and returns formulation warnings drawn from the
// paper's Section 5.1 experience: parameters reachable under a negation
// before any positive binding (consider the backward formulation), labels
// outside the efficient agree/disagree matching fragment, and
// negation/parameter combinations that trigger the 2^labelpars factor.
func (g *Graph) Advise(p *Pattern) ([]string, error) {
	q, err := core.Compile(p.expr, g.g.U)
	if err != nil {
		return nil, err
	}
	return core.Advise(q), nil
}

// ---- Front ends ----

// MiniCConfig controls the MiniC front-end's labeling; see the analysis
// catalog for which analyses need which features.
type MiniCConfig struct {
	// UseSites labels uses as use(x, l) with distinct site numbers.
	UseSites bool
	// ExpLabels emits exp(a, op, b) for binary expressions over variables.
	ExpLabels bool
	// ConstDefs emits def(x, k) for constant assignments.
	ConstDefs bool
	// Interproc splices user-defined calls into a supergraph and tracks
	// parameter/return equalities.
	Interproc bool
	// EntryLoop adds the entry() self-loop at the program entry.
	EntryLoop bool
	// AssignEqualities unifies the sides of simple variable copies
	// (x = y), the Section 5.2 equality module for resource aliasing.
	AssignEqualities bool
}

// FromMiniC builds a program graph from MiniC source. The start vertex is
// the entry of main.
func FromMiniC(src string, cfg MiniCConfig) (*Graph, error) {
	g, err := minic.Build(src, minic.Config{
		UseSites:         cfg.UseSites,
		ExpLabels:        cfg.ExpLabels,
		ConstDefs:        cfg.ConstDefs,
		Interproc:        cfg.Interproc,
		EntryLoop:        cfg.EntryLoop,
		AssignEqualities: cfg.AssignEqualities,
	})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// MiniPyConfig controls the MiniPy front-end's labeling.
type MiniPyConfig struct {
	// UseSites labels uses as use(x, l) with distinct site numbers.
	UseSites bool
	// EntryLoop adds the entry() self-loop at the program entry.
	EntryLoop bool
}

// FromMiniPy builds a program graph from MiniPy (Python-like) source. The
// labeling matches FromMiniC's, so the same query automata analyze both
// languages — the property the paper demonstrates with its C and Python
// front ends.
func FromMiniPy(src string, cfg MiniPyConfig) (*Graph, error) {
	g, err := minipy.Build(src, minipy.Config{
		UseSites:  cfg.UseSites,
		EntryLoop: cfg.EntryLoop,
	})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// GoConfig controls the real-Go front end (internal/gofront).
type GoConfig struct {
	// Interproc links call sites to callee entries/exits with call/ret
	// edges, and goroutine launches to entries with go edges, producing
	// one whole-program supergraph.
	Interproc bool
	// IncludeTests also analyzes _test.go files.
	IncludeTests bool
	// Workers bounds the parallel per-function CFG construction
	// (0 = GOMAXPROCS). The resulting graph is byte-identical for every
	// worker count.
	Workers int
}

// GoProgram pairs the queryable graph with the front end's source map, so
// query answers can be projected back to file:line:col locations.
type GoProgram struct {
	*Graph
	// Program retains per-vertex source locations, retained file contents,
	// the function index, and //rpqcheck:allow suppressions.
	Program *gofront.Program
}

// FromGoPackages lowers real Go packages to a program graph using pure
// go/parser syntax analysis (no go/types, no build step). Patterns are
// directories or .go files; the go-style "dir/..." form walks recursively.
// Labels follow the unified internal/cfgschema vocabulary — def(x), use(x),
// call(f), close(x), lock(m), ... — with symbols qualified as
// pkgpath.func.var, so the paper's parametric queries run unchanged on Go
// code. The start vertex is a synthetic root with an entry(f) edge to every
// function, making every function a path source.
func FromGoPackages(patterns []string, cfg GoConfig) (*GoProgram, error) {
	p, err := gofront.Load(patterns, gofront.Config{
		Interproc:    cfg.Interproc,
		IncludeTests: cfg.IncludeTests,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &GoProgram{Graph: &Graph{g: p.Graph}, Program: p}, nil
}

// FromGoSource is FromGoPackages over in-memory sources: either a plain Go
// file body, or a txtar-style archive ("-- name --" section markers) whose
// go.mod section, when present, supplies the module path for symbol
// qualification.
func FromGoSource(body string, cfg GoConfig) (*GoProgram, error) {
	p, err := gofront.LoadSource(gofront.SplitSource(body), gofront.Config{
		Interproc:    cfg.Interproc,
		IncludeTests: cfg.IncludeTests,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &GoProgram{Graph: &Graph{g: p.Graph}, Program: p}, nil
}

// FromAUT reads a labeled transition system in the Aldébaran (.aut) format
// and applies the transformation of Section 2.3: for existential queries,
// every state gains a state(v) self-loop; for universal queries, every
// state is split into v_in --state(v)--> v_out.
func FromAUT(r io.Reader, universal bool) (*Graph, error) {
	l, err := lts.ReadAUT(r)
	if err != nil {
		return nil, err
	}
	if universal {
		return &Graph{g: l.ForUniversal()}, nil
	}
	return &Graph{g: l.ForExistential()}, nil
}

// FromXML parses an XML document into an edge-labeled graph for querying
// semi-structured data: elements become vertices with child(tag) edges and
// elem(tag)/attr(name,value)/text(value) self-loops; the start vertex is a
// synthetic root. Section 5.4 of the paper positions such queries as a
// generalization of XPath — e.g. "_* child(t) child(t)" finds a tag nested
// directly in itself, which XPath 1.0 cannot express.
func FromXML(r io.Reader) (*Graph, error) {
	g, err := xmldata.FromXML(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ---- Analysis catalog ----

// Analysis is a catalog entry: a named, documented query from the paper.
type Analysis = queries.Analysis

// Analyses returns the full catalog of the paper's analyses (Sections 2.2,
// 2.3, 5.1).
func Analyses() []Analysis { return queries.Catalog() }

// AnalysisByName looks up a catalog entry such as "uninit-uses",
// "available-expressions", or "lts-deadlock".
func AnalysisByName(name string) (Analysis, error) { return queries.ByName(name) }

// RunAnalysis runs a catalog analysis on the graph, handling the query's
// direction and kind. Options' Backward and Algorithm fields are combined
// with the analysis' own requirements.
func (g *Graph) RunAnalysis(a Analysis, opts *Options) (*Result, error) {
	return g.RunAnalysisContext(context.Background(), a, opts)
}

// RunAnalysisContext is RunAnalysis bounded by ctx (and Options.Deadline);
// see ExistContext for the cancellation semantics.
func (g *Graph) RunAnalysisContext(ctx context.Context, a Analysis, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if a.Dir == queries.Backward {
		o.Backward = true
	}
	p := &Pattern{expr: a.Expr(), src: a.Pattern}
	if a.Kind == queries.Universal {
		return g.UniversalContext(ctx, p, &o)
	}
	return g.ExistContext(ctx, p, &o)
}

// Violations derives, from a universal per-resource discipline pattern such
// as "(open(f) (access(f))* close(f))*", a single merged existential query
// finding every way the discipline can be violated (out-of-order operations
// and, when withExit is set, resources left incomplete at exit), and runs it
// (Section 5.4).
func (g *Graph) Violations(discipline string, withExit bool, opts *Options) (*Result, error) {
	return g.ViolationsContext(context.Background(), discipline, withExit, opts)
}

// ViolationsContext is Violations bounded by ctx (and Options.Deadline); see
// ExistContext for the cancellation semantics.
func (g *Graph) ViolationsContext(ctx context.Context, discipline string, withExit bool, opts *Options) (*Result, error) {
	e, err := pattern.Parse(discipline)
	if err != nil {
		return nil, err
	}
	ig, start, co, err := g.resolve(opts, false)
	if err != nil {
		return nil, err
	}
	// The discipline pattern has universal per-resource semantics (the
	// violation transform supplies the bindings), so lint it as universal;
	// the gate runs before the transform so a rejected discipline gets its
	// full lint report rather than the transform's first complaint.
	diags := lintForRun(opts, e, discipline, true)
	if err := gateLint(opts, diags); err != nil {
		return nil, err
	}
	kind := cacheKindViolations
	if withExit {
		kind = cacheKindViolationsExit
	}
	q, err := compileForRun(opts, ig, kind, e)
	if err != nil {
		return nil, err
	}
	rs := beginRun(ctx, opts, "violations", discipline, lintPayload(diags), &co)
	defer rs.end()
	var res *core.Result
	rs.do(ctx, &co, func(ctx context.Context) {
		res, err = core.ExistContext(ctx, ig, start, q, co)
	})
	if err != nil {
		rs.finish(nil, err)
		return nil, err
	}
	out := g.convert(ig, q, res)
	rs.finish(out, nil)
	return out, nil
}
