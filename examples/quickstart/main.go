// Quickstart: the paper's running example (Figure 1). Builds the example
// program graph, runs the uninitialized-variable queries of Section 2.2 in
// both the all-uses and first-uses forms, and prints the answers.
package main

import (
	"fmt"
	"log"

	"rpq"
)

func main() {
	// The program of Figure 1:
	//
	//	a := 5; b := a + 1; a := 10; c := b * 2; b := 7; d := a * b
	//
	// as its program graph: vertices are program points, edges are the
	// def/use operations.
	g := rpq.NewGraph()
	for _, e := range [][3]string{
		{"v1", "def(a)", "v2"},  // a := 5
		{"v2", "use(a)", "v3"},  // ... a + 1
		{"v3", "def(b)", "v4"},  // b := a + 1
		{"v4", "def(a)", "v5"},  // a := 10
		{"v5", "use(b)", "v6"},  // ... b * 2
		{"v6", "def(c)", "v7"},  // c := b * 2
		{"v7", "def(b)", "v8"},  // b := 7
		{"v8", "use(a)", "v9"},  // ... a * b
		{"v9", "use(d)", "v10"}, // d used before any definition!
	} {
		g.MustAddEdge(e[0], e[1], e[2])
	}
	g.SetStart("v1")

	fmt.Println("Program graph:")
	fmt.Print(g)
	fmt.Println()

	// "Will some path reach a use of a variable never defined before it?"
	p := rpq.MustParsePattern("(!def(x))* use(x)")
	fmt.Printf("Existential query %s:\n", p)
	res, err := g.Exist(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Answers {
		fmt.Printf("  %s — variable %s is used uninitialized just before %s\n",
			a, a.Bindings[0].Symbol, a.Vertex)
	}
	fmt.Printf("  (worklist inserts: %d, substitutions interned: %d)\n\n",
		res.Stats.WorklistInserts, res.Stats.Substs)

	// Restrict to the first offending use on each path.
	p2 := rpq.MustParsePattern("(!(def(x)|use(x)))* use(x)")
	fmt.Printf("First-use query %s:\n", p2)
	res2, err := g.Exist(p2, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res2.Answers {
		fmt.Printf("  %s\n", a)
	}
}
