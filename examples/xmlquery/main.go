// Xmlquery: parametric regular path queries over semi-structured data — the
// XML application the paper's introduction motivates and Section 5.4 frames
// as a generalization of XPath: Kleene-star repetition on paths (not just
// descendant skipping) and parameters correlating tags, attributes, and
// text.
package main

import (
	"fmt"
	"log"
	"strings"

	"rpq"
)

const catalog = `
<library>
  <shelf floor="1">
    <book lang="en" year="2003">
      <title>Types and Programming Languages</title>
      <author>Pierce</author>
    </book>
    <book lang="de" year="1986">
      <title>Compilerbau</title>
      <author>Wirth</author>
    </book>
  </shelf>
  <shelf floor="2">
    <box>
      <box>
        <book lang="en" year="1977">
          <title>The C Programming Language Drafts</title>
          <author>Kernighan</author>
        </book>
      </box>
    </box>
    <journal lang="en">
      <title>TOPLAS</title>
    </journal>
  </shelf>
</library>
`

func show(g *rpq.Graph, what, pat string) {
	p, err := rpq.ParsePattern(pat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := g.Exist(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s\n   %s\n", what, pat)
	for _, a := range res.Answers {
		fmt.Printf("   %s\n", a)
	}
	if len(res.Answers) == 0 {
		fmt.Println("   (none)")
	}
	fmt.Println()
}

func main() {
	g, err := rpq.FromXML(strings.NewReader(catalog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// XPath-style navigation.
	show(g, "books directly on shelves (XPath /library/shelf/book)",
		"child('library') child('shelf') child('book')")
	show(g, "every title, at any depth (XPath //title)",
		"_* child('title')")

	// Parameters correlate information XPath needs extra machinery for.
	show(g, "books and their languages",
		"_* child('book') attr('lang', l)")
	show(g, "English titles with their text",
		"_* attr('lang','en') child('title') text(x)")

	// Beyond XPath 1.0: the Kleene star over a *repeating* step and a
	// parameter repeated across steps.
	show(g, "elements reached by one or more nested box steps",
		"_* (child('box'))+ child(t)")
	show(g, "a tag nested directly inside itself (same t twice)",
		"_* child(t) child(t)")
}
