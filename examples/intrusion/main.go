// Intrusion: scanning an audit log with parametric queries — the intrusion
// detection application the paper's related work cites (Sekar & Uppuluri):
// "parameters are needed in querying system logs for intrusion detection".
// The log is a linear graph; parameters correlate the interleaved events of
// each user, and witnesses reconstruct the offending event sequence.
package main

import (
	"fmt"
	"log"

	"rpq"
	"rpq/internal/core"
	"rpq/internal/pattern"
	"rpq/internal/tracelog"
)

const audit = `
# interleaved multi-user audit log
login(alice)
login(mallory)
open(passwd, alice)
read(passwd, alice)
close(passwd, alice)
open(shadow, mallory)
su(root, mallory)
exec(shell, mallory)
close(shadow, mallory)
logout(alice)
download(rootkit, mallory)
exec(rootkit, mallory)
logout(mallory)
`

type signature struct {
	name, pattern string
}

func main() {
	g, err := tracelog.ReadString(audit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit log: %d events\n\n", g.NumEdges())

	signatures := []signature{
		{"sensitive file open during privilege escalation",
			"_* open('shadow', u) (!close('shadow', u))* su('root', u)"},
		{"exec while a sensitive file is open",
			"_* open(f, u) (!close(f, u))* exec(_, u)"},
		{"download followed by execution of the same artifact",
			"_* download(x, u) _* exec(x, u)"},
		{"session never logged out",
			"_* login(u) (!logout(u))*"},
	}
	for _, sig := range signatures {
		q := core.MustCompile(pattern.MustParse(sig.pattern), g.U)
		res, err := core.Exist(g, g.Start(), q, core.Options{Witnesses: true, Algo: core.AlgoMemo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n   %s\n", sig.name, sig.pattern)
		// Keep the latest hit per substitution.
		latest := map[string]core.Pair{}
		for _, p := range res.Pairs {
			key := p.Subst.Format(g.U, q.PS)
			if prev, ok := latest[key]; !ok || p.Vertex > prev.Vertex {
				latest[key] = p
			}
		}
		if len(latest) == 0 {
			fmt.Println("   clean")
		}
		for key, p := range latest {
			idx, _ := tracelog.EventIndex(g.VertexName(p.Vertex))
			fmt.Printf("   HIT %s at event %d\n", key, idx)
			if len(p.Witness) > 0 && len(p.Witness) <= 12 {
				for _, st := range p.Witness {
					fmt.Printf("       %s\n", st.Label.Format(g.U, nil))
				}
			}
		}
		fmt.Println()
	}

	// The same log can also be exported and queried via the public API.
	pub := rpq.WrapGraph(g)
	res, err := pub.Exist(rpq.MustParsePattern("_* su('root', u) _*"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(public API cross-check: %d su-to-root events)\n", countDistinct(res))
}

func countDistinct(res *rpq.Result) int {
	seen := map[string]bool{}
	for _, a := range res.Answers {
		seen[a.Binding("u")] = true
	}
	return len(seen)
}
