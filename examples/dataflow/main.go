// Dataflow: classic data-flow analyses from Section 2.2 of the paper —
// uninitialized uses (forward and backward), live variables, available
// expressions, and constant folding — run against a MiniC program through
// the analysis catalog.
package main

import (
	"fmt"
	"log"

	"rpq"
)

const program = `
// A small program exercising the classic analyses.
int t;

func main() {
	int a, b, c, d;
	a = 5;
	b = a + 1;
	c = a + 1;        // a+1 is available here on every path
	if (b < c) {
		d = a + 1;    // still available
	} else {
		a = 2;        // kills a+1 on this path
		d = t;        // t (a global) is never initialized
	}
	b = a + 1;
	use_it(d);
}
`

func run(g *rpq.Graph, name string, opts *rpq.Options) {
	a, err := rpq.AnalysisByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s (%s, %s)\n   pattern: %s\n", a.Name, a.Kind, a.Dir, a.Pattern)
	res, err := g.RunAnalysis(a, opts)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if len(res.Answers) == 0 {
		fmt.Println("   (no answers)")
	}
	max := len(res.Answers)
	if max > 8 {
		max = 8
	}
	for _, ans := range res.Answers[:max] {
		fmt.Printf("   %s\n", ans)
	}
	if len(res.Answers) > max {
		fmt.Printf("   ... and %d more\n", len(res.Answers)-max)
	}
	fmt.Println()
}

func main() {
	// One graph per labeling scheme, as the paper's front-end options do.
	plain, err := rpq.FromMiniC(program, rpq.MiniCConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sites, err := rpq.FromMiniC(program, rpq.MiniCConfig{UseSites: true, EntryLoop: true})
	if err != nil {
		log.Fatal(err)
	}
	exp, err := rpq.FromMiniC(program, rpq.MiniCConfig{ExpLabels: true})
	if err != nil {
		log.Fatal(err)
	}
	consts, err := rpq.FromMiniC(program, rpq.MiniCConfig{ConstDefs: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program graph: %d vertices, %d edges\n\n", plain.NumVertices(), plain.NumEdges())

	run(plain, "uninit-uses", nil)
	run(plain, "uninit-first-uses", nil)
	// The backward formulation (Section 5.1) binds x before the negation
	// and is the fast variant the paper benchmarks in Table 1.
	run(sites, "uninit-uses-bwd", nil)
	run(plain, "live-variables", nil)
	run(exp, "available-expressions", nil)
	run(consts, "constant-folding", nil)
}
