// Modelcheck: the Section 2.3 examples — deadlock and livelock detection on
// a labeled transition system, via the paper's transformation of LTSs into
// edge-labeled graphs with state(v) labels.
package main

import (
	"fmt"
	"log"
	"strings"

	"rpq"
)

// A small protocol: a sender and receiver with an acknowledgement loop. The
// system has one deadlocked state (5, both sides waiting) and a livelock
// (states 2<->3 exchange internal actions forever).
const protocol = `des (0, 9, 6)
(0, "send", 1)
(1, "i", 2)
(2, "i", 3)
(3, "i", 2)
(2, "recv", 4)
(4, "ack", 0)
(4, "timeout", 5)
(1, "nack", 0)
(3, "giveup", 5)
`

func main() {
	g, err := rpq.FromAUT(strings.NewReader(protocol), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformed LTS graph: %d vertices, %d edges (one state(v) self-loop per state)\n\n",
		g.NumVertices(), g.NumEdges())

	// Deadlock (Section 2.3): find states followed by SOME action; every
	// reachable state NOT in the result deadlocks.
	deadlockQ, _ := rpq.AnalysisByName("lts-deadlock")
	fmt.Printf("deadlock query: %s\n", deadlockQ.Pattern)
	res, err := g.RunAnalysis(deadlockQ, nil)
	if err != nil {
		log.Fatal(err)
	}
	alive := map[string]bool{}
	for _, a := range res.Answers {
		for _, b := range a.Bindings {
			if b.Param == "s" {
				alive[b.Symbol] = true
			}
		}
	}
	fmt.Printf("states with outgoing actions: %d\n", len(alive))
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("s%d", i)
		if !alive[name] {
			fmt.Printf("  DEADLOCK at state %s\n", name)
		}
	}
	fmt.Println()

	// Livelock (Section 2.3): a reachable cycle of invisible actions.
	livelockQ, _ := rpq.AnalysisByName("lts-livelock")
	fmt.Printf("livelock query: %s\n", livelockQ.Pattern)
	res, err = g.RunAnalysis(livelockQ, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Answers) == 0 {
		fmt.Println("no livelock")
	} else {
		seen := map[string]bool{}
		for _, a := range res.Answers {
			for _, b := range a.Bindings {
				if b.Param == "s" && !seen[b.Symbol] {
					seen[b.Symbol] = true
					fmt.Printf("  LIVELOCK through state %s\n", b.Symbol)
				}
			}
		}
	}
}
