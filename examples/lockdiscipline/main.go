// Lockdiscipline: the concurrency examples of Section 2.2 — which variables
// are consistently protected by which locks (a universal query), and which
// lock pairs are nested (the deadlock-avoidance existential query, whose
// exit substitutions reveal whether a consistent acquisition order exists).
package main

import (
	"fmt"
	"log"

	"rpq"
)

const program = `
func main() {
	int shared, other;
	acq(m1);
	access(shared);
	acq(m2);           // m2 acquired while m1 held
	access(other);
	rel(m2);
	access(shared);
	rel(m1);
	acq(m1);
	access(shared);    // shared is always accessed under m1
	acq(m2);           // consistent order: always m1 before m2
	rel(m2);
	rel(m1);
}
`

func main() {
	g, err := rpq.FromMiniC(program, rpq.MiniCConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Universal: variable x is protected by lock l on all paths to v.
	lock, _ := rpq.AnalysisByName("locking-discipline")
	fmt.Printf("locking discipline (universal): %s\n", lock.Pattern)
	res, err := g.RunAnalysis(lock, nil)
	if err != nil {
		log.Fatal(err)
	}
	protected := map[string]bool{}
	for _, a := range res.Answers {
		if a.Vertex == "main.entry" {
			// The empty path to the entry matches vacuously under any
			// substitution; skip it.
			continue
		}
		var x, l string
		for _, b := range a.Bindings {
			if b.Param == "x" {
				x = b.Symbol
			}
			if b.Param == "l" {
				l = b.Symbol
			}
		}
		key := x + " by " + l
		if !protected[key] {
			protected[key] = true
			fmt.Printf("  %s protected %s (first witness at %s)\n", x, l, a.Vertex)
		}
	}
	fmt.Println()

	// Existential: which lock is acquired while which other is held.
	dl, _ := rpq.AnalysisByName("deadlock-avoidance")
	fmt.Printf("lock nesting (existential): %s\n", dl.Pattern)
	res, err = g.RunAnalysis(dl, nil)
	if err != nil {
		log.Fatal(err)
	}
	orders := map[string]bool{}
	for _, a := range res.Answers {
		var l1, l2 string
		for _, b := range a.Bindings {
			if b.Param == "l1" {
				l1 = b.Symbol
			}
			if b.Param == "l2" {
				l2 = b.Symbol
			}
		}
		orders[l1+" ≺ "+l2] = true
	}
	for o := range orders {
		fmt.Printf("  observed order: %s\n", o)
	}
	// A cycle in the observed orders would mean no consistent partial
	// order exists (deadlock risk).
	if orders["m1 ≺ m2"] && orders["m2 ≺ m1"] {
		fmt.Println("  WARNING: inconsistent lock order (deadlock risk)")
	} else {
		fmt.Println("  lock acquisition respects a partial order")
	}
}
