// Filesafety: resource-discipline checking — the file and setuid examples
// of Section 2.2 plus the Section 5.4 extension where a single universal
// discipline specification (open → access* → close) is turned into one
// merged existential violation query automatically.
package main

import (
	"fmt"
	"log"
	"strings"

	"rpq"
)

const program = `
// A privileged program juggling several files, with bugs.
func main() {
	int n;
	open(config);
	n = 1;
	access(config);
	if (n) {
		close(config);
	}
	access(config);     // bug: closed on the then-path
	open(logfile);
	access(logfile);
	seteuid(1000);      // bug: logfile still open when dropping privileges
	access(scratch);    // bug: scratch was never opened
	close(logfile);
}
`

func main() {
	g, err := rpq.FromMiniC(program, rpq.MiniCConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Hand-written queries, as in Section 2.2, with witness traces.
	for _, name := range []string{"file-access-violation", "file-unclosed", "setuid-security"} {
		a, _ := rpq.AnalysisByName(name)
		fmt.Printf("== %s: %s\n", a.Name, a.Pattern)
		res, err := g.RunAnalysis(a, &rpq.Options{Witnesses: true})
		if err != nil {
			log.Fatal(err)
		}
		seen := map[string]bool{}
		for _, ans := range res.Answers {
			for _, b := range ans.Bindings {
				if !seen[b.Symbol] {
					seen[b.Symbol] = true
					fmt.Printf("   %s (at %s)\n", b.Symbol, ans.Vertex)
					// The witness is the error trace: the operations along
					// one offending path.
					var ops []string
					for _, st := range ans.Witness {
						if st.Label != "nop()" {
							ops = append(ops, st.Label)
						}
					}
					if len(ops) > 0 {
						fmt.Printf("     trace: %s\n", strings.Join(ops, " → "))
					}
				}
			}
		}
		if len(res.Answers) == 0 {
			fmt.Println("   clean")
		}
		fmt.Println()
	}

	// Section 5.4: specify the discipline once, get all violation kinds.
	fmt.Println("== generated violation query from discipline (open(f) (access(f))* close(f))*")
	res, err := g.Violations("(open(f) (access(f))* close(f))*", true, nil)
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ans := range res.Answers {
		for _, b := range ans.Bindings {
			key := b.Symbol + "@" + ans.Vertex
			if !seen[key] {
				seen[key] = true
				fmt.Printf("   discipline violated for %s (at %s)\n", b.Symbol, ans.Vertex)
			}
		}
	}
}
