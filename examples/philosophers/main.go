// Philosophers: model checking a classic concurrent system with the paper's
// queries. The dining philosophers' state space is built as an interleaving
// product, transformed to an edge-labeled graph (Section 2.3), and checked
// for deadlock with the pattern `_* state(s) act(_)`. The symmetric table
// deadlocks; flipping one philosopher's fork order fixes it — both verified
// by the same query.
package main

import (
	"fmt"
	"log"

	"rpq"
	"rpq/internal/core"
	"rpq/internal/interleave"
	"rpq/internal/pattern"
)

func check(n int, rightFirstAt int, title string) {
	procs, forks := interleave.Philosophers(n, rightFirstAt)
	l, err := interleave.Product(procs, forks, 0)
	if err != nil {
		log.Fatal(err)
	}
	g := l.ForExistential()
	fmt.Printf("== %s\n", title)
	fmt.Printf("   %d philosophers: %d reachable states, %d transitions\n",
		n, l.NumStates, len(l.Trans))

	a, _ := rpq.AnalysisByName("lts-deadlock")
	q := core.MustCompile(pattern.MustParse(a.Pattern), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{Algo: core.AlgoMemo})
	if err != nil {
		log.Fatal(err)
	}
	sIdx, _ := q.PS.Lookup("s")
	alive := map[int32]bool{}
	for _, p := range res.Pairs {
		alive[p.Subst[sIdx]] = true
	}
	deadlocks := 0
	for i := 0; i < l.NumStates; i++ {
		sym, ok := g.U.Syms.Lookup(fmt.Sprintf("s%d", i))
		if ok && !alive[sym] {
			deadlocks++
			fmt.Printf("   DEADLOCK: state s%d (every philosopher holds one fork)\n", i)
		}
	}
	if deadlocks == 0 {
		fmt.Println("   no deadlock: every reachable state can move")
	}
	fmt.Printf("   (query worklist: %d, time negligible)\n\n", res.Stats.WorklistInserts)
}

func main() {
	check(4, -1, "symmetric table — all philosophers take their left fork first")
	check(4, 0, "asymmetric table — philosopher 0 takes the right fork first")
	check(6, -1, "six philosophers, symmetric")
}
