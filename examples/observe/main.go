// Observe: running an intrusion-detection query with the observability
// layer attached — a ring-buffer tracer capturing the solver's lifecycle
// events, live gauges, the per-phase timing breakdown recorded in
// core.Stats, and a deadline-bounded rerun showing cancellation with
// partial statistics. See docs/observability.md for the full surface
// (Chrome traces, NDJSON streams, Prometheus /metrics, pprof, watchdog
// bundles).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"rpq/internal/core"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/tracelog"
)

const audit = `
# interleaved multi-user audit log
login(alice)
login(mallory)
open(passwd, alice)
read(passwd, alice)
close(passwd, alice)
open(shadow, mallory)
su(root, mallory)
exec(shell, mallory)
close(shadow, mallory)
logout(alice)
download(rootkit, mallory)
exec(rootkit, mallory)
logout(mallory)
`

func main() {
	g, err := tracelog.ReadString(audit)
	if err != nil {
		log.Fatal(err)
	}

	// A ring buffer keeps the last N structured events in memory; gauges
	// expose live solver state (and back /metrics when obs.Serve is up).
	ring := obs.NewRingSink(256)
	gauges := obs.NewSolverGauges(obs.Default())

	const sig = "_* open(f, u) (!close(f, u))* exec(_, u)"
	q := core.MustCompile(pattern.MustParse(sig), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{
		Algo:   core.AlgoMemo,
		Tracer: ring,
		Gauges: gauges,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("signature: %s\n", sig)
	for _, p := range res.Pairs {
		idx, _ := tracelog.EventIndex(g.VertexName(p.Vertex))
		fmt.Printf("  HIT %s at event %d\n", p.Subst.Format(g.U, q.PS), idx)
	}

	// Phase-timing breakdown: where the wall time of the run went.
	s := res.Stats
	fmt.Printf("\nphase timings:\n")
	fmt.Printf("  compile    %12v\n", s.Phases.Compile.Wall)
	fmt.Printf("  domains    %12v\n", s.Phases.Domains.Wall)
	fmt.Printf("  solve      %12v  (alloc %d B)\n", s.Phases.Solve.Wall, s.Phases.Solve.AllocBytes)
	fmt.Printf("  enumerate  %12v\n", s.Phases.Enumerate.Wall)
	fmt.Printf("counters: worklist=%d reach=%d substs=%d match=%d (hits=%d misses=%d) bytes=%d\n",
		s.WorklistInserts, s.ReachSize, s.Substs, s.MatchCalls,
		s.MatchCacheHits, s.MatchCacheMisses, s.Bytes)

	// The captured trace, rendered as a human-readable table. The same
	// events can be streamed as NDJSON or recorded as a Chrome trace.
	fmt.Printf("\ntrace (%d events captured):\n", ring.Total())
	fmt.Print(obs.FormatEvents(ring.Snapshot()))

	// Cancellation: the same query under an already-canceled context stops
	// at the first check and returns an InterruptError carrying whatever
	// statistics had accumulated — the shape a caller sees on a deadline
	// breach (Options.Deadline) or a Ctrl-C.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = core.ExistContext(ctx, g, g.Start(), q, core.Options{Algo: core.AlgoMemo})
	var ie *core.InterruptError
	if errors.As(err, &ie) {
		fmt.Printf("\ncanceled run: %v\n", err)
		fmt.Printf("  partial stats: worklist=%d reach=%d substs=%d solve=%v\n",
			ie.Stats.WorklistInserts, ie.Stats.ReachSize, ie.Stats.Substs,
			ie.Stats.Phases.Solve.Wall)
		fmt.Printf("  errors.Is(err, context.Canceled) = %v\n", errors.Is(err, context.Canceled))
	} else if err != nil {
		log.Fatal(err)
	}

	// Deadline: Options.Deadline bounds the run without a caller context;
	// on this tiny graph it completes well inside the bound.
	res2, err := core.Exist(g, g.Start(), q, core.Options{Algo: core.AlgoMemo, Deadline: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeadline-bounded rerun: %d answers within 5s budget\n", len(res2.Pairs))
}
