// Polyglot: the paper's Section 6 demonstration that one query automaton
// serves several front ends — "We are able to use the same automaton to
// perform uninitialized use analysis for C and Python." The same catalog
// analyses run unchanged over a MiniC program, its MiniPy translation, and
// an LTS.
package main

import (
	"fmt"
	"log"

	"rpq"
)

const cProgram = `
func main() {
	int total, i, step;
	total = 0;
	for (i = 0; i < 10; i = i + step) {   // step never initialized
		total = total + i;
	}
	open(log);
	access(log);
	// log never closed
}
`

const pyProgram = `
def main():
    total = 0
    i = 0
    while i < 10:
        total = total + i
        i = i + step          # step never initialized
    open(log)
    access(log)
    # log never closed
`

func analyze(name string, g *rpq.Graph) {
	fmt.Printf("== %s\n", name)
	for _, query := range []string{"uninit-uses", "file-unclosed"} {
		a, err := rpq.AnalysisByName(query)
		if err != nil {
			log.Fatal(err)
		}
		res, err := g.RunAnalysis(a, nil)
		if err != nil {
			log.Fatal(err)
		}
		seen := map[string]bool{}
		for _, ans := range res.Answers {
			for _, b := range ans.Bindings {
				key := query + ": " + b.Symbol
				if !seen[key] {
					seen[key] = true
					fmt.Printf("   %-15s %s\n", query, b.Symbol)
				}
			}
		}
	}
	fmt.Println()
}

func main() {
	cg, err := rpq.FromMiniC(cProgram, rpq.MiniCConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pg, err := rpq.FromMiniPy(pyProgram, rpq.MiniPyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The same query patterns, three different front ends:")
	fmt.Println()
	analyze("MiniC program", cg)
	analyze("MiniPy program", pg)

	fmt.Println("== textual graph (works for any data source)")
	g, err := rpq.ReadGraphString(`
start a
edge a use(ghost) b
edge b def(ghost) c
edge c exit() d
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := g.Exist(rpq.MustParsePattern("(!def(x))* use(x)"), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Answers {
		fmt.Printf("   uninit-uses     %s\n", a.Bindings[0].Symbol)
	}
}
