// Interproc: the Section 5.2 extension — interprocedural analysis with
// parameter/return equality tracking. The same file-discipline query is run
// with and without equality tracking to show the false alarms it removes.
package main

import (
	"fmt"
	"log"

	"rpq"
)

const program = `
// The file handle flows through helper functions under different names.
func fetch(handle) {
	access(handle);
	return handle;
}

func shutdown(h) {
	close(h);
	return h;
}

func main() {
	int file, alias, x;
	open(file);
	alias = fetch(file);    // alias == file
	x = shutdown(alias);    // closes the same file
}
`

func report(g *rpq.Graph, title string) {
	fmt.Printf("== %s\n", title)
	// Unclosed files: backward query from the exit.
	a, _ := rpq.AnalysisByName("file-unclosed")
	res, err := g.RunAnalysis(a, nil)
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ans := range res.Answers {
		for _, b := range ans.Bindings {
			if !seen[b.Symbol] {
				seen[b.Symbol] = true
				fmt.Printf("   possibly unclosed: %s\n", b.Symbol)
			}
		}
	}
	if len(res.Answers) == 0 {
		fmt.Println("   all files closed")
	}
	// Accesses while not open.
	v, err := g.RunAnalysis(mustAnalysis("file-access-violation"), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, ans := range v.Answers {
		fmt.Printf("   access while not open: %s\n", ans)
	}
	if len(v.Answers) == 0 {
		fmt.Println("   all accesses are between open and close")
	}
	fmt.Println()
}

func mustAnalysis(name string) rpq.Analysis {
	a, err := rpq.AnalysisByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

func main() {
	// With interprocedural splicing and equality tracking, file ≈ handle ≈
	// alias ≈ h ≈ x: the discipline is seen to hold.
	with, err := rpq.FromMiniC(program, rpq.MiniCConfig{Interproc: true})
	if err != nil {
		log.Fatal(err)
	}
	report(with, "interprocedural, parameter/return equalities tracked")

	// Without it, calls are opaque: the open of file is never matched by a
	// close of the same symbol, a false alarm.
	without, err := rpq.FromMiniC(program, rpq.MiniCConfig{})
	if err != nil {
		log.Fatal(err)
	}
	report(without, "intraprocedural, calls opaque")
}
