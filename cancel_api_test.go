package rpq

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// TestExistContextCanceled checks the public cancellation surface: a
// pre-canceled context yields a typed *InterruptError with partial stats.
func TestExistContextCanceled(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.ExistContext(ctx, p, nil)
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v (%T), want *InterruptError", err, err)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap ErrCanceled/context.Canceled", err)
	}
}

// TestDeadlineOptionPublic checks Options.Deadline without a caller context,
// for both query forms.
func TestDeadlineOptionPublic(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	_, err := g.Exist(p, &Options{Deadline: time.Nanosecond})
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exist: %v does not wrap ErrDeadline", err)
	}
	_, err = g.Universal(p, &Options{Algorithm: Enumerate, Deadline: time.Nanosecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("universal: %v does not wrap ErrDeadline", err)
	}
	_, err = g.Violations("(open(f) close(f))*", false, &Options{Deadline: time.Nanosecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("violations: %v does not wrap ErrDeadline", err)
	}
}

// TestProgressAndInflightPublic runs a query with a Progress callback and
// checks the in-flight registry from inside it — the query must be listed
// mid-run and gone afterwards.
func TestProgressAndInflightPublic(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	var calls int
	var sawInflight bool
	_, err := g.Exist(p, &Options{
		Algorithm: Enumerate,
		Progress: func(pr Progress) {
			calls++
			for _, s := range InflightQueries() {
				if s.Kind == "exist" && s.Query == "(!def(x))* use(x)" {
					sawInflight = true
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Progress callback never fired")
	}
	if !sawInflight {
		t.Fatal("query missing from InflightQueries during its own run")
	}
	for _, s := range InflightQueries() {
		if s.Query == "(!def(x))* use(x)" {
			t.Fatal("query still in-flight after completion")
		}
	}
}

// TestWatchdogBundlePublic forces a deadline breach with a watchdog attached
// and requires a loadable bundle plus a slow-log record pointing at it.
func TestWatchdogBundlePublic(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	dir := t.TempDir()
	var slow strings.Builder
	opts := &Options{
		Deadline: time.Nanosecond,
		Watchdog: &Watchdog{Dir: dir},
		SlowLog:  NewSlowLog(&slow, 0),
		Explain:  true,
	}
	_, err := g.Exist(p, opts)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want deadline breach", err)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil || len(entries) != 1 {
		t.Fatalf("bundle dir entries = %v (%v), want exactly 1", entries, rerr)
	}
	b, lerr := LoadBundle(dir + "/" + entries[0].Name())
	if lerr != nil {
		t.Fatal(lerr)
	}
	if b.Meta.Reason != "deadline" || b.Meta.Query.Kind != "exist" {
		t.Fatalf("bundle meta = %+v", b.Meta)
	}
	if b.Explain == nil {
		t.Fatal("bundle missing partial explain profile")
	}
	if !strings.Contains(slow.String(), entries[0].Name()) {
		t.Fatalf("slow-log record does not reference the bundle: %s", slow.String())
	}
}

// TestWatchdogSlowBundle checks the slow-run trigger on a successful query.
func TestWatchdogSlowBundle(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	dir := t.TempDir()
	res, err := g.Exist(p, &Options{Watchdog: &Watchdog{Dir: dir, Slow: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("query returned no answers")
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil || len(entries) != 1 {
		t.Fatalf("bundle dir entries = %v (%v), want exactly 1", entries, rerr)
	}
	b, lerr := LoadBundle(dir + "/" + entries[0].Name())
	if lerr != nil {
		t.Fatal(lerr)
	}
	if b.Meta.Reason != "slow" {
		t.Fatalf("reason = %q, want slow", b.Meta.Reason)
	}
	// The flight-recorder ring was spliced in, so solver events are present.
	if len(b.Events) == 0 {
		t.Fatal("bundle captured no flight-recorder events")
	}
}

// TestLatencyHistogramsPublic checks that a run with gauges feeds the query
// and phase histograms.
func TestLatencyHistogramsPublic(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	gauges := LiveGauges()
	before := gauges.QueryHist.Count()
	if _, err := g.Exist(p, &Options{Gauges: gauges}); err != nil {
		t.Fatal(err)
	}
	if got := gauges.QueryHist.Count(); got != before+1 {
		t.Fatalf("QueryHist count = %d, want %d", got, before+1)
	}
	if gauges.SolveHist.Count() == 0 {
		t.Fatal("SolveHist never observed")
	}
}
