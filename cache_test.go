package rpq

import (
	"sync"
	"testing"
)

func TestQueryCacheHitsAndCanonicalKeys(t *testing.T) {
	g := figure1Graph(t)
	c := NewQueryCache(8)
	opts := &Options{Cache: c}

	p1 := MustParsePattern("(!def(x))* use(x)")
	if _, err := g.Exist(p1, opts); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after first run: %+v, want 0 hits / 1 miss / 1 entry", st)
	}
	// The same pattern again, and a syntactic variant that simplifies to the
	// same canonical AST: both must hit.
	if _, err := g.Exist(p1, opts); err != nil {
		t.Fatal(err)
	}
	p2 := MustParsePattern("((!def(x))*) (use(x))")
	if p2.String() != p1.String() {
		t.Fatalf("canonicalization drifted: %q vs %q", p2.String(), p1.String())
	}
	if _, err := g.Exist(p2, opts); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after variants: %+v, want 2 hits / 1 miss / 1 entry", st)
	}

	// Universal shares the compiled entry with existential (the DFA is
	// derived lazily inside the shared Query).
	if _, err := g.Universal(p1, opts); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("universal on cached pattern: %+v, want 3 hits / 1 miss", st)
	}

	// Violation queries compile through a different transform and must not
	// collide with the plain entry for the same source text.
	if _, err := g.Violations("(def(x) (use(x))*)*", false, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Violations("(def(x) (use(x))*)*", true, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Violations("(def(x) (use(x))*)*", true, opts); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Misses != 3 || st.Hits != 4 {
		t.Fatalf("violations variants: %+v, want 3 misses / 4 hits", st)
	}
}

func TestQueryCacheResultsMatchUncached(t *testing.T) {
	g := figure1Graph(t)
	p := MustParsePattern("(!def(x))* use(x)")
	plain, err := g.Exist(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewQueryCache(4)
	opts := &Options{Cache: c}
	for i := 0; i < 3; i++ {
		cached, err := g.Exist(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(cached.Answers) != len(plain.Answers) {
			t.Fatalf("run %d: %d answers cached vs %d uncached", i, len(cached.Answers), len(plain.Answers))
		}
		for j := range cached.Answers {
			if cached.Answers[j].String() != plain.Answers[j].String() {
				t.Fatalf("run %d answer %d: %s != %s", i, j, cached.Answers[j], plain.Answers[j])
			}
		}
	}
}

func TestQueryCacheLRUEviction(t *testing.T) {
	g := figure1Graph(t)
	c := NewQueryCache(2)
	opts := &Options{Cache: c}
	run := func(src string) {
		t.Helper()
		if _, err := g.Exist(MustParsePattern(src), opts); err != nil {
			t.Fatal(err)
		}
	}
	run("use(x)")        // miss {use}
	run("def(x)")        // miss {use, def}
	run("use(x)")        // hit, use becomes MRU
	run("def(x) use(x)") // miss, evicts def(x)
	run("def(x)")        // miss again (was evicted)
	st := c.Stats()
	if st.Misses != 4 || st.Hits != 1 || st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("LRU accounting: %+v, want 4 misses / 1 hit / 2 evictions / 2 entries", st)
	}
}

// TestQueryCacheConcurrentUniversal shares one cached entry across
// concurrent universal queries: the lazy DFA build inside core.Query must be
// race-free (run under -race in CI).
func TestQueryCacheConcurrentUniversal(t *testing.T) {
	g := figure1Graph(t)
	c := NewQueryCache(4)
	p := MustParsePattern("(!def(x))* use(x)")
	// Warm the entry with an existential run so the universal goroutines all
	// find a cached Query with no DFA yet.
	if _, err := g.Exist(p, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Universal(p, &Options{Cache: c}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("concurrent universal runs recompiled: %+v", st)
	}
}
