module rpq

go 1.22
