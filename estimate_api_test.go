package rpq

import (
	"strings"
	"testing"
)

func TestEstimateQueryPublic(t *testing.T) {
	g, err := ReadGraphString(`
start v1
edge v1 def(a) v2
edge v2 use(a) v3
edge v2 use(b) v3
`)
	if err != nil {
		t.Fatal(err)
	}
	p := MustParsePattern("(!def(x))* use(x)")
	est, err := g.EstimateQuery(p, RefinedDomains)
	if err != nil {
		t.Fatal(err)
	}
	if est.Verts != 3 || est.GraphEdges != 3 || est.Pars != 1 {
		t.Fatalf("estimate = %+v", est)
	}
	if est.SubstsBound != 2 { // domain of x: {a, b}
		t.Fatalf("substs bound = %v, want 2", est.SubstsBound)
	}
	all, err := g.EstimateQuery(p, AllSymbols)
	if err != nil {
		t.Fatal(err)
	}
	if all.SubstsBound < est.SubstsBound {
		t.Fatalf("all-symbols bound %v below refined %v", all.SubstsBound, est.SubstsBound)
	}
	if !strings.Contains(est.String(), "time bounds") {
		t.Fatalf("String() = %q", est.String())
	}
}

func TestAdvisePublic(t *testing.T) {
	g := NewGraph()
	g.MustAddEdge("a", "def(v)", "b")
	g.SetStart("a")
	advice, err := g.Advise(MustParsePattern("(!def(x))* use(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != 1 {
		t.Fatalf("advice = %v", advice)
	}
	advice, err = g.Advise(MustParsePattern("use(x) (!def(x))*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != 0 {
		t.Fatalf("well-formed query got advice: %v", advice)
	}
}
