package rpq

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6) as testing.B benchmarks:
//
//	BenchmarkTable1_*   uninitialized-use detection (Table 1)
//	BenchmarkTable2_*   LTS deadlock detection (Table 2)
//	BenchmarkTable3_*   hashing vs. nested arrays (Table 3)
//	BenchmarkFigure3_*  worklist/time scaling sweep (Figure 3)
//	BenchmarkAblation_* design-choice ablations (Sections 5.1, 5.3)
//
// cmd/experiments prints the same data in the paper's row format.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rpq/internal/core"
	"rpq/internal/gen"
	"rpq/internal/graph"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/prof"
	"rpq/internal/queries"
	"rpq/internal/subst"
)

const (
	bwdUninitPattern = "_* use(x,l) (!def(x))* entry()"
	fwdUninitPattern = "(!def(x))* use(x,_)"
)

// workload caches generated graphs (and their backward forms) per preset.
type workload struct {
	fwd      *graph.Graph
	bwd      *graph.Graph
	bwdStart int32
}

var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*workload{}
)

func progWorkload(b *testing.B, spec gen.ProgSpec) *workload {
	b.Helper()
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[spec.Name]; ok {
		return w
	}
	g := gen.Program(spec)
	r := g.Reverse()
	var start int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				start = e.To
			}
		}
	}
	if start < 0 {
		b.Fatal("no exit edge in generated program")
	}
	w := &workload{fwd: g, bwd: r, bwdStart: start}
	workloadCache[spec.Name] = w
	return w
}

func ltsWorkload(b *testing.B, spec gen.LTSSpec) *graph.Graph {
	b.Helper()
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[spec.Name]; ok {
		return w.fwd
	}
	g := gen.RandomLTS(spec).ForExistential()
	workloadCache[spec.Name] = &workload{fwd: g}
	return g
}

func benchQuery(b *testing.B, g *graph.Graph, start int32, pat string, opts core.Options) {
	b.Helper()
	q := core.MustCompile(pattern.MustParse(pat), g.U)
	var res *core.Result
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = core.Exist(g, start, q, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Stats.WorklistInserts), "worklist")
	b.ReportMetric(float64(res.Stats.ResultPairs), "results")
	b.ReportMetric(float64(res.Stats.Bytes)/1024, "KiB")
}

// ---- BenchmarkExist: observability overhead guard ----

// BenchmarkExist compares the solver with no tracer against the same run
// with the no-op tracer installed, on a mid-sized Table 1 program. The two
// sub-benchmarks must stay within noise (±5%) of each other: tracing that is
// off may cost at most one cached boolean test per hot-path event site. The
// explain sub-benchmark measures the full profiling cost (counters at every
// match site plus curve sampling) for comparison; it is expected to run a
// few percent slower.
func BenchmarkExist(b *testing.B) {
	spec := gen.Table1Specs()[4]
	for _, bench := range []struct {
		name string
		opts core.Options
	}{
		{"plain", core.Options{Algo: core.AlgoMemo}},
		{"nop-tracer", core.Options{Algo: core.AlgoMemo, Tracer: obs.Nop()}},
		{"explain", core.Options{Algo: core.AlgoMemo, Explain: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, bench.opts)
		})
	}

	// Continuous-profiler overhead: prof-on must stay within ~2% of
	// prof-off (the CI bench job compares the pair). The profiler runs at
	// the default 10s/60s duty cycle scaled down so a benchmark iteration
	// actually overlaps capture windows.
	b.Run("prof-off", func(b *testing.B) {
		w := progWorkload(b, spec)
		benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoMemo})
	})
	b.Run("prof-on", func(b *testing.B) {
		p := prof.New(prof.Options{
			Window:   50 * time.Millisecond,
			Interval: 300 * time.Millisecond,
			Registry: obs.NewRegistry(),
		})
		p.Start()
		defer p.Stop()
		w := progWorkload(b, spec)
		benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoMemo})
	})
}

// ---- Table 1: uninitialized-use detection ----

func BenchmarkTable1_Basic(b *testing.B) {
	for _, spec := range gen.Table1Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoBasic})
		})
	}
}

func BenchmarkTable1_Precomputation(b *testing.B) {
	for _, spec := range gen.Table1Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoPrecomp})
		})
	}
}

func BenchmarkTable1_Enumeration(b *testing.B) {
	for _, spec := range gen.Table1Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.fwd, w.fwd.Start(), fwdUninitPattern, core.Options{Algo: core.AlgoEnum})
		})
	}
}

// ---- Table 2: LTS deadlock detection ----

func deadlockPattern() string {
	a, err := queries.ByName("lts-deadlock")
	if err != nil {
		panic(err)
	}
	return a.Pattern
}

func BenchmarkTable2_Basic(b *testing.B) {
	for _, spec := range gen.Table2Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			g := ltsWorkload(b, spec)
			benchQuery(b, g, g.Start(), deadlockPattern(), core.Options{Algo: core.AlgoBasic})
		})
	}
}

func BenchmarkTable2_Precomputation(b *testing.B) {
	for _, spec := range gen.Table2Specs() {
		b.Run(spec.Name, func(b *testing.B) {
			g := ltsWorkload(b, spec)
			benchQuery(b, g, g.Start(), deadlockPattern(), core.Options{Algo: core.AlgoPrecomp})
		})
	}
}

func BenchmarkTable2_Enumeration(b *testing.B) {
	// Enumeration is quadratic (|G| × substs); as in the paper (180 s
	// limit), only the three smallest systems complete in reasonable time.
	for _, spec := range gen.Table2Specs()[:3] {
		b.Run(spec.Name, func(b *testing.B) {
			g := ltsWorkload(b, spec)
			benchQuery(b, g, g.Start(), deadlockPattern(), core.Options{Algo: core.AlgoEnum})
		})
	}
}

// ---- Table 3: hashing vs. nested arrays ----

func BenchmarkTable3(b *testing.B) {
	for _, spec := range []gen.ProgSpec{gen.Table1Specs()[0], gen.Table1Specs()[4], gen.Table1Specs()[8]} {
		for _, algo := range []core.Algo{core.AlgoBasic, core.AlgoPrecomp, core.AlgoEnum} {
			for _, tk := range []subst.TableKind{subst.Hash, subst.Nested} {
				name := fmt.Sprintf("%s/%v/%v", spec.Name, algo, tk)
				b.Run(name, func(b *testing.B) {
					w := progWorkload(b, spec)
					if algo == core.AlgoEnum {
						benchQuery(b, w.fwd, w.fwd.Start(), fwdUninitPattern, core.Options{Algo: algo, Table: tk})
					} else {
						benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: algo, Table: tk})
					}
				})
			}
		}
	}
}

// ---- Figure 3: scaling sweep ----

func BenchmarkFigure3_Sweep(b *testing.B) {
	for i, edges := range []int{500, 1000, 2000, 4000, 8000} {
		spec := gen.ProgSpec{
			Name: fmt.Sprintf("sweep-%d", edges), Seed: int64(3000 + i),
			Edges: edges, Vars: 40 + edges/25, UninitFrac: 0.12,
			UseSites: true, EntryLoop: true,
		}
		b.Run(fmt.Sprintf("edges-%d", edges), func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoBasic})
		})
	}
}

// ---- Ablations (Sections 5.1, 5.3) ----

func BenchmarkAblation_Direction(b *testing.B) {
	spec := gen.Table1Specs()[4]
	b.Run("forward", func(b *testing.B) {
		w := progWorkload(b, spec)
		benchQuery(b, w.fwd, w.fwd.Start(), fwdUninitPattern, core.Options{Algo: core.AlgoBasic})
	})
	b.Run("backward", func(b *testing.B) {
		w := progWorkload(b, spec)
		benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoBasic})
	})
}

func BenchmarkAblation_Memoization(b *testing.B) {
	spec := gen.Table1Specs()[4]
	for _, algo := range []core.Algo{core.AlgoBasic, core.AlgoMemo} {
		b.Run(algo.String(), func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: algo})
		})
	}
}

func BenchmarkAblation_Domains(b *testing.B) {
	spec := gen.Table1Specs()[0]
	for _, dm := range []core.DomainMode{core.DomainsRefined, core.DomainsAllSymbols} {
		name := "refined"
		if dm == core.DomainsAllSymbols {
			name = "all-symbols"
		}
		b.Run(name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.fwd, w.fwd.Start(), fwdUninitPattern, core.Options{Algo: core.AlgoEnum, Domains: dm})
		})
	}
}

func BenchmarkAblation_Compaction(b *testing.B) {
	spec := gen.Table1Specs()[4]
	for _, compact := range []bool{false, true} {
		name := "full"
		if compact {
			name = "compacted"
		}
		b.Run(name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoBasic, Compact: compact})
		})
	}
}

func BenchmarkAblation_SCCOrder(b *testing.B) {
	spec := gen.Table1Specs()[4]
	for _, scc := range []bool{false, true} {
		name := "plain"
		if scc {
			name = "scc-ordered"
		}
		b.Run(name, func(b *testing.B) {
			w := progWorkload(b, spec)
			benchQuery(b, w.bwd, w.bwdStart, bwdUninitPattern, core.Options{Algo: core.AlgoBasic, SCCOrder: scc})
		})
	}
}

func BenchmarkAblation_ViolationQueryVsHandwritten(b *testing.B) {
	// Section 5.4: the generated merged violation query against the
	// hand-written access-violation query, on a file-heavy program.
	src := prog50Files()
	b.Run("handwritten", func(b *testing.B) {
		g, err := FromMiniC(src, MiniCConfig{})
		if err != nil {
			b.Fatal(err)
		}
		a, _ := AnalysisByName("file-access-violation")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.RunAnalysis(a, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generated", func(b *testing.B) {
		g, err := FromMiniC(src, MiniCConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Violations("(open(f) (access(f))* close(f))*", true, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func prog50Files() string {
	src := "func main() {\n"
	for i := 0; i < 50; i++ {
		src += fmt.Sprintf("\topen(f%d);\n\taccess(f%d);\n\tclose(f%d);\n", i, i, i)
	}
	src += "\taccess(f0);\n}" // one violation
	return src
}
