package rpq_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rpq"
)

func lintTestGraph() *rpq.Graph {
	g := rpq.NewGraph()
	g.MustAddEdge("v1", "def(a)", "v2")
	g.MustAddEdge("v2", "use(a)", "v3")
	g.MustAddEdge("v2", "use(b)", "v4")
	g.SetStart("v1")
	return g
}

func TestLintPublicAPI(t *testing.T) {
	p := rpq.MustParsePattern("(!def(x))* use(x)")
	ds := rpq.Lint(p)
	var got []string
	for _, d := range ds {
		got = append(got, d.Code)
	}
	if len(ds) != 1 || ds[0].Code != "RPQ006" {
		t.Fatalf("Lint = %v, want exactly RPQ006", got)
	}
	if ds[0].Severity != rpq.SeverityWarning {
		t.Errorf("severity = %v, want warning", ds[0].Severity)
	}
	out := rpq.FormatDiagnostic(ds[0], p)
	if !strings.Contains(out, "^") || !strings.Contains(out, "hint:") {
		t.Errorf("FormatDiagnostic missing caret or hint:\n%s", out)
	}
}

func TestLintForGraphPublicAPI(t *testing.T) {
	g := lintTestGraph()
	p := rpq.MustParsePattern("_* uze(x)")
	ds := rpq.LintForGraph(g, p)
	codes := map[string]bool{}
	for _, d := range ds {
		codes[d.Code] = true
	}
	if !codes["RPQ010"] {
		t.Errorf("LintForGraph = %v, want RPQ010 (unknown constructor)", ds)
	}
}

// TestLintGateRejectsBeforeSolve pins the acceptance criterion: with
// Options.Lint set, an error-severity pattern is rejected with a *LintError
// before any solver work — the tracer sees zero events and the progress
// callback never fires (zero worklist pops).
func TestLintGateRejectsBeforeSolve(t *testing.T) {
	g := lintTestGraph()
	p := rpq.MustParsePattern("!_ use(x)") // unsatisfiable label => empty language
	ring := rpq.NewRingTracer(64)
	progressCalls := 0
	opts := &rpq.Options{
		Lint:     true,
		Tracer:   ring,
		Progress: func(rpq.Progress) { progressCalls++ },
	}
	res, err := g.Exist(p, opts)
	if res != nil {
		t.Fatalf("Exist returned a result for a lint-rejected query")
	}
	var le *rpq.LintError
	if !errors.As(err, &le) {
		t.Fatalf("Exist error = %v (%T), want *LintError", err, err)
	}
	codes := map[string]bool{}
	for _, d := range le.Diags {
		codes[d.Code] = true
	}
	if !codes["RPQ001"] || !codes["RPQ007"] {
		t.Errorf("LintError.Diags = %v, want RPQ001 and RPQ007", le.Diags)
	}
	if !strings.Contains(le.Error(), "RPQ001") {
		t.Errorf("LintError.Error() = %q, want it to name RPQ001", le.Error())
	}
	if n := len(ring.Snapshot()); n != 0 {
		t.Errorf("tracer saw %d events, want 0 (no solver work)", n)
	}
	if progressCalls != 0 {
		t.Errorf("progress fired %d times, want 0 (zero pops)", progressCalls)
	}
}

func TestLintGateAllowsWarnings(t *testing.T) {
	g := lintTestGraph()
	// RPQ006 is warning severity: the gate must let the query through.
	p := rpq.MustParsePattern("(!def(x))* use(x)")
	res, err := g.Exist(p, &rpq.Options{Lint: true})
	if err != nil {
		t.Fatalf("Exist with warnings-only lint: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Errorf("expected answers (use(b) is reachable without def(b))")
	}
}

func TestLintGateOffByDefault(t *testing.T) {
	g := lintTestGraph()
	p := rpq.MustParsePattern("!_ use(x)")
	if _, err := g.Exist(p, nil); err != nil {
		t.Fatalf("Exist without Lint should solve (empty result), got error %v", err)
	}
}

// TestLintGateUniversalSemantics: a parameter that only occurs under negation
// is an error existentially but only advisory under universal semantics
// (the universal algorithms bind by domain enumeration), so the gate must
// not reject it there.
func TestLintGateUniversalSemantics(t *testing.T) {
	g := lintTestGraph()
	p := rpq.MustParsePattern("(!access(x))*")
	_, err := g.Universal(p, &rpq.Options{Lint: true})
	var le *rpq.LintError
	if errors.As(err, &le) {
		t.Fatalf("universal query rejected by lint: %v", err)
	}
}

func TestLintGateViolations(t *testing.T) {
	g := rpq.NewGraph()
	g.MustAddEdge("v1", "open(f1)", "v2")
	g.MustAddEdge("v2", "close(f1)", "v3")
	g.SetStart("v1")
	// A discipline with universal per-resource semantics lints clean.
	if _, err := g.Violations("(open(f) (access(f))* close(f))*", true, &rpq.Options{Lint: true}); err != nil {
		t.Fatalf("well-formed discipline rejected: %v", err)
	}
	// An empty-language discipline is an error under any semantics.
	_, err := g.Violations("!_ open(f)", true, &rpq.Options{Lint: true})
	var le *rpq.LintError
	if !errors.As(err, &le) {
		t.Fatalf("empty discipline: err = %v, want *LintError", err)
	}
}

// TestWatchdogBundleIncludesLint: any query run under a watchdog carries its
// lint report into diagnostic bundles as lint.json, independent of the gate.
func TestWatchdogBundleIncludesLint(t *testing.T) {
	dir := t.TempDir()
	var bundles []string
	g := lintTestGraph()
	p := rpq.MustParsePattern("(!def(x))* use(x)")
	opts := &rpq.Options{
		Watchdog: &rpq.Watchdog{
			Dir:      dir,
			Slow:     time.Nanosecond, // every completed query dumps a bundle
			OnBundle: func(path string) { bundles = append(bundles, path) },
		},
	}
	if _, err := g.Exist(p, opts); err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	if _, err := os.Stat(filepath.Join(bundles[0], "lint.json")); err != nil {
		t.Fatalf("bundle missing lint.json: %v", err)
	}
	b, err := rpq.LoadBundle(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Lint == nil {
		t.Fatal("LoadBundle: Lint is nil")
	}
	var ds []rpq.Diagnostic
	if err := json.Unmarshal(b.Lint, &ds); err != nil {
		t.Fatalf("lint.json does not decode into []Diagnostic: %v", err)
	}
	if len(ds) != 1 || ds[0].Code != "RPQ006" || ds[0].Severity != rpq.SeverityWarning {
		t.Fatalf("bundle lint = %+v, want one RPQ006 warning", ds)
	}
}

// TestLintSkippedWhenUnused: with neither the gate nor a watchdog configured
// the entry points must not pay for analysis; this can't be observed
// directly, so pin the helper contract instead: a clean query with the gate
// on behaves identically to the gate off.
func TestLintSkippedWhenUnused(t *testing.T) {
	g := lintTestGraph()
	p := rpq.MustParsePattern("def(x) use(x)")
	r1, err := g.Exist(p, &rpq.Options{Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Exist(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Answers) != len(r2.Answers) {
		t.Fatalf("gate changed answers: %d vs %d", len(r1.Answers), len(r2.Answers))
	}
}
