package rpq

import (
	"strings"
	"testing"
)

func TestPatternMirrorPublic(t *testing.T) {
	p := MustParsePattern("open(f) access(f)* close(f)")
	m := p.Mirror()
	if m.String() != "close(f) access(f)* open(f)" {
		t.Fatalf("Mirror = %q", m.String())
	}
	// A suffix question: from which vertices does an open..close window run
	// to the exit? Ask with the mirrored pattern backward from the exit.
	g, err := FromMiniC(`
func main() {
	int a;
	a = 1;
	open(f);
	access(f);
	close(f);
}
`, MiniCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Exist(MustParsePattern("open(f) access(f)* close(f) _*"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Forward from entry: no match (the def/use prefix precedes the open).
	if len(res.Answers) != 0 {
		t.Fatalf("forward from entry matched: %v", res.Answers)
	}
	// Backward with the mirror: matches, starting at the vertex before
	// open(f).
	back, err := g.Exist(MustParsePattern("open(f) access(f)* close(f) _*").Mirror(), &Options{Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Answers) == 0 {
		t.Fatalf("mirrored backward query found nothing")
	}
}

func TestUniversalCompletionPublic(t *testing.T) {
	g := NewGraph()
	g.MustAddEdge("v0", "a()", "v1")
	g.MustAddEdge("v1", "b()", "v2")
	g.MustAddEdge("v2", "c()", "v3")
	g.SetStart("v0")
	p := MustParsePattern("(a() b())* c()?")
	base, err := g.Universal(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Completion{TrapCompletion, ExplicitCompletion} {
		res, err := g.Universal(p, &Options{Completion: c})
		if err != nil {
			t.Fatalf("completion %v: %v", c, err)
		}
		if len(res.Answers) != len(base.Answers) {
			t.Fatalf("completion %v changed results: %v vs %v", c, res.Answers, base.Answers)
		}
	}
	// Explicit completion rejects parametric patterns.
	if _, err := g.Universal(MustParsePattern("def(x)*"), &Options{Completion: ExplicitCompletion}); err == nil {
		t.Fatal("explicit completion accepted a parametric pattern")
	}
}

func TestFrontEndErrorsPublic(t *testing.T) {
	if _, err := FromMiniC("func main() {", MiniCConfig{}); err == nil {
		t.Error("broken MiniC accepted")
	}
	if _, err := FromMiniPy("def main(:\n", MiniPyConfig{}); err == nil {
		t.Error("broken MiniPy accepted")
	}
	if _, err := FromXML(strings.NewReader("<a>")); err == nil {
		t.Error("broken XML accepted")
	}
	if _, err := FromAUT(strings.NewReader("junk"), false); err == nil {
		t.Error("broken AUT accepted")
	}
	if _, err := ReadGraphString("edge oops"); err == nil {
		t.Error("broken graph accepted")
	}
	g := NewGraph()
	g.MustAddEdge("a", "f()", "b")
	g.SetStart("a")
	if _, err := g.Violations("((", false, nil); err == nil {
		t.Error("broken discipline accepted")
	}
}
