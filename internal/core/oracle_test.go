package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// The oracle answers queries by brute force: it enumerates every path of a
// DAG explicitly and every full substitution over the domains explicitly,
// and checks the matching relation per path. It shares no code with the
// solvers beyond the label matcher's ground case.

// allPaths returns every path from v0 in an acyclic graph as a slice of
// edges (the empty path included), paired with its end vertex.
type oraclePath struct {
	end  int32
	word []*label.CTerm
}

func allPaths(g *graph.Graph, v0 int32) []oraclePath {
	var out []oraclePath
	var word []*label.CTerm
	var rec func(v int32)
	rec = func(v int32) {
		w := make([]*label.CTerm, len(word))
		copy(w, word)
		out = append(out, oraclePath{end: v, word: w})
		for _, e := range g.Out(v) {
			word = append(word, e.Label)
			rec(e.To)
			word = word[:len(word)-1]
		}
	}
	rec(v0)
	return out
}

// wordMatches reports whether the word matches some sentence of the pattern
// automaton under the full substitution th, by direct NFA simulation.
func wordMatches(q *Query, word []*label.CTerm, th subst.Subst) bool {
	cur := map[int32]bool{q.NFA.Start: true}
	for _, el := range word {
		next := map[int32]bool{}
		for s := range cur {
			for _, tr := range q.NFA.Trans[s] {
				if label.MatchGround(tr.Label, el, th) {
					next[tr.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if q.NFA.Final[s] {
			return true
		}
	}
	return false
}

// oracleSets computes the existential and universal answer sets as
// (vertex, full-substitution) string sets.
func oracleSets(g *graph.Graph, v0 int32, q *Query, doms subst.Domains) (exist, univ map[string]bool) {
	paths := allPaths(g, v0)
	exist = map[string]bool{}
	univ = map[string]bool{}
	subst.ForEachFull(q.Pars(), doms, func(th subst.Subst) bool {
		matched := map[int32]bool{}
		broken := map[int32]bool{}
		seenVertex := map[int32]bool{}
		for _, p := range paths {
			seenVertex[p.end] = true
			if wordMatches(q, p.word, th) {
				matched[p.end] = true
			} else {
				broken[p.end] = true
			}
		}
		for v := range matched {
			exist[fmt.Sprintf("%d%s", v, th.String())] = true
		}
		for v := range seenVertex {
			if matched[v] && !broken[v] {
				univ[fmt.Sprintf("%d%s", v, th.String())] = true
			}
		}
		return true
	})
	return exist, univ
}

// randomDAG builds a small random DAG with labels from a def/use-flavoured
// alphabet. Edges only go from lower- to higher-numbered vertices, so path
// enumeration terminates.
func randomDAG(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	n := 3 + rng.Intn(5)
	for i := 0; i < n; i++ {
		g.Vertex(fmt.Sprintf("v%d", i))
	}
	g.SetStart(0)
	labels := []string{"def(a)", "def(b)", "use(a)", "use(b)", "f()", "exp(a,plus,b)"}
	m := n + rng.Intn(2*n)
	for i := 0; i < m; i++ {
		from := rng.Intn(n - 1)
		to := from + 1 + rng.Intn(n-from-1)
		lbl := label.MustParse(labels[rng.Intn(len(labels))], label.GroundMode)
		if err := g.AddEdge(int32(from), lbl, int32(to)); err != nil {
			panic(err)
		}
	}
	return g
}

var oraclePatterns = []string{
	"(!def(x))* use(x)",
	"(!(def(x)|use(x)))* use(x)",
	"_* use(x)",
	"def(x)* use(x)",
	"_* exp(x,op,y) (!(def(x)|def(y)))*",
	"def(x)*",
	"(def(x) | use(x))+",
	"_* def(x) _* use(y)",
	"use(x)? def(y)*",
	"_*",
	"f()* use(x)?",
}

func TestOracleExistential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng)
		pat := oraclePatterns[rng.Intn(len(oraclePatterns))]
		q := MustCompile(pattern.MustParse(pat), g.U)
		dm := DomainMode(rng.Intn(2))
		doms := ComputeDomains(q, g, dm)
		if doms.Count() > 200 {
			continue
		}
		oe, _ := oracleSets(g, g.Start(), q, doms)
		for _, algo := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum} {
			res, err := Exist(g, g.Start(), q, Options{Algo: algo, Domains: dm})
			if err != nil {
				t.Fatalf("trial %d %q %v: %v", trial, pat, algo, err)
			}
			got := expand(res, doms, q.Pars())
			if len(got) != len(oe) {
				t.Fatalf("trial %d %q %v: oracle %d answers, solver %d\ngraph:\n%s\noracle: %v\nsolver: %v",
					trial, pat, algo, len(oe), len(got), g.String(), oe, got)
			}
			for k := range oe {
				if !got[k] {
					t.Fatalf("trial %d %q %v: solver missing %s\ngraph:\n%s", trial, pat, algo, k, g.String())
				}
			}
		}
	}
}

func TestOracleUniversal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng)
		pat := oraclePatterns[rng.Intn(len(oraclePatterns))]
		q := MustCompile(pattern.MustParse(pat), g.U)
		dm := DomainMode(rng.Intn(2))
		doms := ComputeDomains(q, g, dm)
		if doms.Count() > 120 {
			continue
		}
		_, ou := oracleSets(g, g.Start(), q, doms)
		for _, algo := range []Algo{AlgoEnum, AlgoHybrid} {
			res, err := Univ(g, g.Start(), q, Options{Algo: algo, Domains: dm})
			if err != nil {
				t.Fatalf("trial %d %q %v: %v", trial, pat, algo, err)
			}
			got := map[string]bool{}
			for _, p := range res.Pairs {
				got[fmt.Sprintf("%d%s", p.Vertex, p.Subst.String())] = true
			}
			if len(got) != len(ou) {
				t.Fatalf("trial %d %q %v: oracle %d answers, solver %d\ngraph:\n%s\noracle: %v\nsolver: %v",
					trial, pat, algo, len(ou), len(got), g.String(), ou, got)
			}
			for k := range ou {
				if !got[k] {
					t.Fatalf("trial %d %q %v: solver missing %s", trial, pat, algo, k)
				}
			}
		}
		// The direct algorithm, when determinism holds, must agree after
		// expansion.
		res, err := Univ(g, g.Start(), q, Options{Domains: dm})
		if err != nil {
			continue // nondeterministic pattern; hybrid covered it above
		}
		got := expand(res, doms, q.Pars())
		if len(got) != len(ou) {
			t.Fatalf("trial %d %q direct: oracle %d answers, solver %d\ngraph:\n%s\noracle %v\ngot %v",
				trial, pat, len(ou), len(got), g.String(), ou, got)
		}
		for k := range ou {
			if !got[k] {
				t.Fatalf("trial %d %q direct: solver missing %s", trial, pat, k)
			}
		}
	}
}

func TestOracleCyclicCrossVariant(t *testing.T) {
	// On cyclic graphs the path oracle does not terminate, but all solver
	// variants must still agree with each other.
	rng := rand.New(rand.NewSource(44))
	labels := []string{"def(a)", "def(b)", "use(a)", "use(b)", "f()"}
	for trial := 0; trial < 40; trial++ {
		g := graph.New()
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.Vertex(fmt.Sprintf("v%d", i))
		}
		g.SetStart(0)
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			lbl := label.MustParse(labels[rng.Intn(len(labels))], label.GroundMode)
			_ = g.AddEdge(int32(rng.Intn(n)), lbl, int32(rng.Intn(n)))
		}
		pat := oraclePatterns[rng.Intn(len(oraclePatterns))]
		q := MustCompile(pattern.MustParse(pat), g.U)
		doms := ComputeDomains(q, g, DomainsRefined)
		if doms.Count() > 200 {
			continue
		}
		ref, err := Exist(g, g.Start(), q, Options{Algo: AlgoBasic})
		if err != nil {
			t.Fatal(err)
		}
		refSet := expand(ref, doms, q.Pars())
		for _, algo := range []Algo{AlgoMemo, AlgoPrecomp, AlgoEnum} {
			res, err := Exist(g, g.Start(), q, Options{Algo: algo})
			if err != nil {
				t.Fatal(err)
			}
			got := expand(res, doms, q.Pars())
			if len(got) != len(refSet) {
				t.Fatalf("trial %d %q %v: %d vs basic %d\ngraph:\n%s",
					trial, pat, algo, len(got), len(refSet), g.String())
			}
			for k := range refSet {
				if !got[k] {
					t.Fatalf("trial %d %q %v: missing %s", trial, pat, algo, k)
				}
			}
		}
		// Universal: enum and hybrid agree on cyclic graphs too.
		en, err := Univ(g, g.Start(), q, Options{Algo: AlgoEnum})
		if err != nil {
			t.Fatal(err)
		}
		hy, err := Univ(g, g.Start(), q, Options{Algo: AlgoHybrid})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(en.Pairs) != fmt.Sprint(hy.Pairs) {
			t.Fatalf("trial %d %q: universal enum/hybrid disagree\ngraph:\n%s\nenum %v\nhybrid %v",
				trial, pat, g.String(), en.Pairs, hy.Pairs)
		}
	}
}
