package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// groundDetPattern builds a random ground pattern whose labels never
// overlap (distinct constructors, no wildcards/negations/parameters), so the
// universal determinism condition always holds and the direct algorithms
// apply.
func groundDetPattern(rng *rand.Rand, depth int) pattern.Expr {
	labels := []string{"a()", "b()", "c()", "d()"}
	if depth <= 0 {
		return pattern.Lit(labels[rng.Intn(len(labels))])
	}
	switch rng.Intn(5) {
	case 0:
		return pattern.Seq(groundDetPattern(rng, depth-1), groundDetPattern(rng, depth-1))
	case 1:
		// Alternation arms must start with distinct labels for the opaque
		// determinization to stay deterministic; sidestep by wrapping arms
		// in distinct leading labels.
		return pattern.Or(
			pattern.Seq(pattern.Lit("a()"), groundDetPattern(rng, depth-1)),
			pattern.Seq(pattern.Lit("b()"), groundDetPattern(rng, depth-1)),
		)
	case 2:
		return pattern.Rep(groundDetPattern(rng, depth-1))
	case 3:
		return pattern.Maybe(groundDetPattern(rng, depth-1))
	default:
		return groundDetPattern(rng, depth-1)
	}
}

// TestUnivDirectOracle validates the direct universal algorithms (basic,
// memo, precomputation, with each completion mode) against the brute-force
// path oracle on random DAGs, using ground deterministic patterns.
func TestUnivDirectOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	labels := []string{"a()", "b()", "c()", "d()"}
	ran := 0
	for trial := 0; trial < 150 && ran < 60; trial++ {
		g := graph.New()
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.Vertex(fmt.Sprintf("v%d", i))
		}
		g.SetStart(0)
		m := n + rng.Intn(2*n)
		for i := 0; i < m; i++ {
			from := rng.Intn(n - 1)
			to := from + 1 + rng.Intn(n-from-1)
			lbl := label.MustParse(labels[rng.Intn(len(labels))], label.GroundMode)
			_ = g.AddEdge(int32(from), lbl, int32(to))
		}
		e := groundDetPattern(rng, 3)
		q := MustCompile(e, g.U)
		_, oracle := oracleSets(g, g.Start(), q, subst.Domains{})
		for _, opts := range []Options{
			{Algo: AlgoBasic},
			{Algo: AlgoMemo},
			{Algo: AlgoPrecomp},
			{Algo: AlgoBasic, Completion: CompleteTrap},
			{Algo: AlgoBasic, Completion: CompleteExplicit},
			{Algo: AlgoMemo, Completion: CompleteTrap},
		} {
			res, err := Univ(g, g.Start(), q, opts)
			if err == ErrNondeterministic {
				// Rare: the wrapped-alternation trick can still produce
				// overlapping prefixes via stars; skip the direct check.
				continue
			}
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pattern.String(e), err)
			}
			ran++
			got := map[string]bool{}
			for _, p := range res.Pairs {
				got[fmt.Sprintf("%d%s", p.Vertex, p.Subst.String())] = true
			}
			if len(got) != len(oracle) {
				t.Fatalf("trial %d %s %+v: oracle %d, solver %d\ngraph:\n%s\noracle %v got %v",
					trial, pattern.String(e), opts, len(oracle), len(got), g.String(), oracle, got)
			}
			for k := range oracle {
				if !got[k] {
					t.Fatalf("trial %d %s %+v: missing %s", trial, pattern.String(e), opts, k)
				}
			}
		}
	}
	if ran < 30 {
		t.Fatalf("too few deterministic trials ran (%d); generator too restrictive", ran)
	}
}
