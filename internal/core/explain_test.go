package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os/exec"
	"strings"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// explainFor runs one existential query with profiling on and checks the
// profile's internal consistency against the run's stats.
func explainFor(t *testing.T, wl parWorkload, q *Query, opts Options) *Explain {
	t.Helper()
	opts.Explain = true
	res, err := Exist(wl.g, wl.start, q, opts)
	if err != nil {
		t.Fatalf("%v: %v", opts.Algo, err)
	}
	if res.Explain == nil {
		t.Fatalf("%v: Explain nil with Options.Explain set", opts.Algo)
	}
	if err := res.Explain.Consistent(&res.Stats); err != nil {
		t.Fatalf("%v: %v", opts.Algo, err)
	}
	return res.Explain
}

// sameCounters requires two profiles over the same automaton to agree on
// every deterministic counter: totals, per-state visits, per-transition
// attempts/hits/extensions, and per-label histograms.
func sameCounters(t *testing.T, name string, a, b *Explain) {
	t.Helper()
	if a.Totals != b.Totals {
		t.Errorf("%s: totals %+v vs %+v", name, a.Totals, b.Totals)
	}
	if len(a.States) != len(b.States) {
		t.Fatalf("%s: %d vs %d state profiles", name, len(a.States), len(b.States))
	}
	for i := range a.States {
		if a.States[i] != b.States[i] {
			t.Errorf("%s: state %d: %+v vs %+v", name, a.States[i].State, a.States[i], b.States[i])
		}
	}
	if len(a.Transitions) != len(b.Transitions) {
		t.Fatalf("%s: %d vs %d transition profiles", name, len(a.Transitions), len(b.Transitions))
	}
	for i := range a.Transitions {
		if a.Transitions[i] != b.Transitions[i] {
			t.Errorf("%s: transition %d: %+v vs %+v", name, i, a.Transitions[i], b.Transitions[i])
		}
	}
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("%s: %d vs %d label profiles", name, len(a.Labels), len(b.Labels))
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Errorf("%s: label %q: %+v vs %+v", name, a.Labels[i].Label, a.Labels[i], b.Labels[i])
		}
	}
}

// TestExplainParityAcrossVariants checks the cross-variant invariants on the
// randomized corpus: basic, memo, and precomputation pop the same triples
// and extend the same edges (visits and extensions equal); basic and memo
// attempt the same matches with the same outcomes (attempts and hits equal —
// memoization changes who answers, not what is asked).
func TestExplainParityAcrossVariants(t *testing.T) {
	for _, wl := range parCorpus(t) {
		t.Run(wl.name, func(t *testing.T) {
			q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
			basic := explainFor(t, wl, q, Options{Algo: AlgoBasic})
			memo := explainFor(t, wl, q, Options{Algo: AlgoMemo})
			precomp := explainFor(t, wl, q, Options{Algo: AlgoPrecomp})
			explainFor(t, wl, q, Options{Algo: AlgoEnum}) // consistency only

			sameCounters(t, "basic-vs-memo", basic, memo)
			if basic.Totals.Visits != precomp.Totals.Visits {
				t.Errorf("visits: basic %d vs precomp %d", basic.Totals.Visits, precomp.Totals.Visits)
			}
			if basic.Totals.Extensions != precomp.Totals.Extensions {
				t.Errorf("extensions: basic %d vs precomp %d", basic.Totals.Extensions, precomp.Totals.Extensions)
			}
			for i := range basic.States {
				if basic.States[i].Visits != precomp.States[i].Visits {
					t.Errorf("state %d visits: basic %d vs precomp %d",
						basic.States[i].State, basic.States[i].Visits, precomp.States[i].Visits)
				}
			}
			for i := range basic.Transitions {
				if basic.Transitions[i].Extensions != precomp.Transitions[i].Extensions {
					t.Errorf("transition %d extensions: basic %d vs precomp %d",
						i, basic.Transitions[i].Extensions, precomp.Transitions[i].Extensions)
				}
			}
		})
	}
}

// TestExplainSeqParEqual requires the parallel solver's merged profile to
// match the sequential one exactly — the processed triple set, match
// attempts, and their outcomes are scheduling-independent — and the worker
// timelines to account for every pop.
func TestExplainSeqParEqual(t *testing.T) {
	for _, wl := range parCorpus(t) {
		t.Run(wl.name, func(t *testing.T) {
			q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
			for _, algo := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum} {
				for _, tk := range []subst.TableKind{subst.Hash, subst.Nested} {
					seq := explainFor(t, wl, q, Options{Algo: algo, Table: tk})
					par := explainFor(t, wl, q, Options{Algo: algo, Table: tk, Workers: 4})
					name := fmt.Sprintf("%v/%v", algo, tk)
					sameCounters(t, name, seq, par)
					if len(par.Workers) == 0 {
						t.Errorf("%s: parallel profile has no worker timelines", name)
					}
					var processed int64
					for _, w := range par.Workers {
						processed += w.Processed
					}
					if algo != AlgoEnum && processed != par.Totals.Visits {
						t.Errorf("%s: workers processed %d triples, profile visited %d",
							name, processed, par.Totals.Visits)
					}
				}
			}
		})
	}
}

// TestExplainUniversal checks profile consistency for the universal
// algorithms: the direct algorithm on a deterministic chain, and
// enumeration/hybrid (with their ground passes) on the available-expressions
// graph.
func TestExplainUniversal(t *testing.T) {
	chain := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v2
`)
	cq := MustCompile(pattern.MustParse("def(x)*"), chain.U)
	for _, algo := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp} {
		res, err := Univ(chain, chain.Start(), cq, Options{Algo: algo, Explain: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Explain == nil {
			t.Fatalf("%v: Explain nil", algo)
		}
		if res.Explain.Automaton != "dfa" {
			t.Errorf("%v: automaton %q, want dfa", algo, res.Explain.Automaton)
		}
		if err := res.Explain.Consistent(&res.Stats); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}

	avail := graph.MustReadString(`
start s
edge s exp(a,plus,b) p1
edge s exp(a,plus,b) p2
edge p1 def(c) m
edge p2 def(d) m
edge m def(a) k
`)
	aq := MustCompile(pattern.MustParse("_* exp(x,op,y) (!(def(x)|def(y)))*"), avail.U)
	for _, algo := range []Algo{AlgoEnum, AlgoHybrid} {
		res, err := Univ(avail, avail.Start(), aq, Options{Algo: algo, Explain: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		ex := res.Explain
		if ex == nil {
			t.Fatalf("%v: Explain nil", algo)
		}
		if err := ex.Consistent(&res.Stats); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
		if ex.GroundRuns == 0 {
			t.Errorf("%v: no ground-pass runs recorded", algo)
		}
		if ex.Totals.GroundPops == 0 {
			t.Errorf("%v: no ground-pass pops recorded", algo)
		}
		if algo == AlgoHybrid && ex.Totals.Attempts == 0 {
			t.Errorf("hybrid: inner existential profile not folded in (no attempts)")
		}
	}
}

// TestExplainOffLeavesResultBare guards the disabled path: no profile, no
// collector allocations visible to the caller.
func TestExplainOffLeavesResultBare(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	res, err := Exist(wl.g, wl.start, q, Options{Algo: AlgoMemo})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain != nil {
		t.Fatal("Explain non-nil without Options.Explain")
	}
}

// TestExplainReportShapes exercises the three renderings: the text report,
// the JSON encoding, and the annotated DOT (validated with graphviz when the
// dot binary is installed).
func TestExplainReportShapes(t *testing.T) {
	wl := parCorpus(t)[3] // hand graph: tiny, stable
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	ex := explainFor(t, wl, q, Options{Algo: AlgoMemo})

	text := ex.Format()
	for _, want := range []string{"query profile:", "states:", "transitions:", "edge labels:"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	b, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var round Explain
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if round.Totals != ex.Totals {
		t.Errorf("JSON round-trip changed totals: %+v vs %+v", round.Totals, ex.Totals)
	}

	dot := ex.DOT()
	for _, want := range []string{"digraph explain", "__start", "fillcolor", "penwidth"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if path, err := exec.LookPath("dot"); err == nil {
		cmd := exec.Command(path, "-Tsvg", "-o", "/dev/null")
		cmd.Stdin = strings.NewReader(dot)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Errorf("graphviz rejected the DOT: %v\n%s", err, stderr.String())
		}
	} else {
		t.Log("graphviz not installed; skipping render check")
	}
}

// TestExplainCurvesSequential checks that sequential profiles carry the
// table-occupancy and worklist-depth curves.
func TestExplainCurvesSequential(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	ex := explainFor(t, wl, q, Options{Algo: AlgoMemo})
	if len(ex.DepthSamples) == 0 {
		t.Error("no worklist depth samples on a sequential run")
	}
	if len(ex.TableCurve) == 0 {
		t.Error("no table-occupancy samples on a sequential run")
	}
}

// TestChromeTraceFlushedOnError is the error-path flush guarantee: a solver
// run that fails (here: the universal determinism check) must still leave
// the buffered Chrome trace events on the underlying writer, so the partial
// trace loads in chrome://tracing. Chrome's trace format accepts an
// unterminated JSON array; for strictness the test closes it by hand.
func TestChromeTraceFlushedOnError(t *testing.T) {
	g := graph.MustReadString("start s\nedge s exp(a,plus,b) v1\n")
	q := MustCompile(pattern.MustParse("_* exp(x,op,y) (!(def(x)|def(y)))*"), g.U)
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	_, err := Univ(g, g.Start(), q, Options{Tracer: sink})
	if err != ErrNondeterministic {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
	got := buf.String()
	if !strings.Contains(got, `"solve"`) {
		t.Fatalf("trace buffer not flushed on error path:\n%q", got)
	}
	// Terminate the array the way Close would and require valid JSON.
	var events []map[string]any
	if err := json.Unmarshal([]byte(strings.TrimRight(strings.TrimSpace(got), ",")+"\n]"), &events); err != nil {
		t.Fatalf("flushed trace is not parseable: %v\n%s", err, got)
	}
	if len(events) == 0 {
		t.Fatal("no events in flushed trace")
	}
}

// TestParallelReleasesWorkerGauges runs the parallel solver at four workers
// and then at two on the same gauge set: the second run must leave no
// rpq_worker_2_*/rpq_worker_3_* gauges registered.
func TestParallelReleasesWorkerGauges(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	reg := obs.NewRegistry()
	gauges := obs.NewSolverGauges(reg)
	for _, workers := range []int{4, 2} {
		if _, err := Exist(wl.g, wl.start, q, Options{Algo: AlgoMemo, Workers: workers, Gauges: gauges}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	snap := reg.Snapshot()
	for name := range snap {
		if strings.HasPrefix(name, "rpq_worker_2_") || strings.HasPrefix(name, "rpq_worker_3_") {
			t.Errorf("stale gauge %s after re-running with fewer workers", name)
		}
	}
	if _, ok := snap["rpq_worker_1_queue_depth"]; !ok {
		t.Errorf("active worker gauges missing from snapshot: %v", snap)
	}
}
