package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrCanceled is the sentinel wrapped by interrupted runs whose context was
// canceled; errors.Is(err, context.Canceled) also holds.
var ErrCanceled = fmt.Errorf("core: query canceled: %w", context.Canceled)

// ErrDeadline is the sentinel wrapped by interrupted runs whose context (or
// Options.Deadline) expired; errors.Is(err, context.DeadlineExceeded) also
// holds.
var ErrDeadline = fmt.Errorf("core: query deadline exceeded: %w", context.DeadlineExceeded)

// InterruptError is returned by ExistContext/UnivContext when a run is
// canceled or times out. It wraps ErrCanceled or ErrDeadline (so errors.Is
// works against both the sentinels and the context errors) and carries the
// statistics — and, when Options.Explain was set, the execution profile —
// accumulated up to the interrupt. The partial figures are exact counts of
// the work actually performed; they are not estimates of the full run.
type InterruptError struct {
	// Reason is ErrCanceled or ErrDeadline.
	Reason error
	// Stats holds the counters accumulated before the interrupt. Phase
	// wall times cover only the elapsed portion of each phase.
	Stats Stats
	// Explain is the partial execution profile (visits, attempts,
	// extensions so far) when Options.Explain was set; nil otherwise.
	Explain *Explain
}

func (e *InterruptError) Error() string { return e.Reason.Error() }

// Unwrap exposes the sentinel for errors.Is/As chains.
func (e *InterruptError) Unwrap() error { return e.Reason }

// canceler flag states.
const (
	cxlRunning  int32 = 0
	cxlCanceled int32 = 1
	cxlDeadline int32 = 2
)

// canceler translates a context's cancellation into an atomic flag the
// solver loops can poll without touching channels: a nil *canceler (no
// cancelable context) costs one pointer test per check, an armed one a
// single atomic load. A watcher goroutine sets the flag when the context
// fires; release stops the watcher when the run finishes first.
type canceler struct {
	flag atomic.Int32
	stop chan struct{}
	once sync.Once
}

// newCanceler arms a watcher for ctx. It returns (nil, no-op) when ctx can
// never be canceled, so uncancelable runs pay only nil checks. An
// already-expired context sets the flag synchronously, making
// cancel-before-start deterministic.
func newCanceler(ctx context.Context) (*canceler, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	c := &canceler{stop: make(chan struct{})}
	if err := ctx.Err(); err != nil {
		c.set(err)
		return c, func() {}
	}
	go func() {
		select {
		case <-ctx.Done():
			c.set(ctx.Err())
		case <-c.stop:
		}
	}()
	return c, c.release
}

func (c *canceler) set(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		c.flag.Store(cxlDeadline)
	} else {
		c.flag.Store(cxlCanceled)
	}
}

// release stops the watcher goroutine; safe to call multiple times and on a
// nil receiver.
func (c *canceler) release() {
	if c != nil && c.stop != nil {
		c.once.Do(func() { close(c.stop) })
	}
}

// state is the hot-path check: 0 while running, cxlCanceled/cxlDeadline once
// the context fired. Nil receivers report running.
func (c *canceler) state() int32 {
	if c == nil {
		return cxlRunning
	}
	return c.flag.Load()
}

// reason maps the flag to its sentinel error.
func (c *canceler) reason() error {
	if c.flag.Load() == cxlDeadline {
		return ErrDeadline
	}
	return ErrCanceled
}

// interrupt builds the typed error carrying the partial stats and profile.
func (c *canceler) interrupt(stats Stats, ex *Explain) *InterruptError {
	return &InterruptError{Reason: c.reason(), Stats: stats, Explain: ex}
}
