package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rpq/internal/gen"
	"rpq/internal/graph"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// parWorkload is one (graph, start, query) instance of the cross-check
// corpus.
type parWorkload struct {
	name  string
	g     *graph.Graph
	start int32
	pat   string
}

// parCorpus builds the randomized cross-check corpus: generated program
// graphs (forward and backward formulations), a random cyclic graph, and a
// tiny handcrafted graph where every vertex is an answer.
func parCorpus(t testing.TB) []parWorkload {
	var ws []parWorkload

	pg := gen.Program(gen.ProgSpec{
		Name: "par", Seed: 7, Edges: 320, Vars: 16, UninitFrac: 0.25,
		UseSites: true, EntryLoop: true,
	})
	ws = append(ws, parWorkload{"prog-fwd", pg, pg.Start(), "(!def(x))* use(x,_)"})

	// Backward formulation from after the exit() edge, as in the paper.
	rg := pg.Reverse()
	rstart := int32(-1)
	for v := 0; v < pg.NumVertices(); v++ {
		for _, e := range pg.Out(int32(v)) {
			if e.Label.Format(pg.U, nil) == "exit()" {
				rstart = e.To
			}
		}
	}
	if rstart < 0 {
		t.Fatal("generated program has no exit() edge")
	}
	ws = append(ws, parWorkload{"prog-bwd", rg, rstart, "_* use(x,l) (!def(x))* entry()"})

	// Random cyclic graph: many SCCs, dense label reuse.
	rng := rand.New(rand.NewSource(42))
	cg := graph.New()
	n := 120
	labels := []string{"def(a)", "def(b)", "def(c)", "use(a)", "use(b)", "use(c)", "nop()"}
	for i := 0; i < n; i++ {
		cg.Vertex(fmt.Sprintf("v%d", i))
	}
	cg.SetStart(0)
	for i := 0; i < 5*n; i++ {
		cg.MustAddEdgeStr(fmt.Sprintf("v%d", rng.Intn(n)), labels[rng.Intn(len(labels))], fmt.Sprintf("v%d", rng.Intn(n)))
	}
	ws = append(ws, parWorkload{"cyclic", cg, cg.Start(), "(!def(x))* use(x)"})

	hg := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 use(a) v2
edge v2 use(b) v0
edge v1 def(b) v1
`)
	ws = append(ws, parWorkload{"hand", hg, hg.Start(), "_* use(x)"})
	return ws
}

// checkWitness validates one witnessing path: it starts at v0, its steps
// chain, every step is a real graph edge, and it ends at the answer vertex.
func checkWitness(t *testing.T, g *graph.Graph, v0 int32, p Pair) {
	t.Helper()
	w := p.Witness
	if len(w) == 0 {
		if p.Vertex != v0 {
			t.Fatalf("empty witness for non-start vertex %d", p.Vertex)
		}
		return
	}
	if w[0].From != v0 {
		t.Fatalf("witness starts at %d, want %d", w[0].From, v0)
	}
	if w[len(w)-1].To != p.Vertex {
		t.Fatalf("witness ends at %d, want %d", w[len(w)-1].To, p.Vertex)
	}
	for i, st := range w {
		if i > 0 && st.From != w[i-1].To {
			t.Fatalf("witness step %d does not chain: %d -> %d", i, w[i-1].To, st.From)
		}
		found := false
		for _, ge := range g.Out(st.From) {
			if ge.To == st.To && ge.Label.Key() == st.Label.Key() {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("witness step %d is not a graph edge: %d -%s-> %d",
				i, st.From, st.Label, st.To)
		}
	}
}

// TestParallelCrossCheck runs every existential algorithm with both table
// kinds, SCC ordering on and off, and witnesses on and off, across the
// randomized corpus, and requires the parallel solver (2 and 4 workers) to
// return exactly the sequential solver's sorted pairs and deterministic
// stats.
func TestParallelCrossCheck(t *testing.T) {
	for _, wl := range parCorpus(t) {
		t.Run(wl.name, func(t *testing.T) {
			q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
			for _, algo := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum} {
				for _, tk := range []subst.TableKind{subst.Hash, subst.Nested} {
					for _, scc := range []bool{false, true} {
						for _, wit := range []bool{false, true} {
							if algo == AlgoEnum && (scc || wit) {
								continue // enumeration ignores both
							}
							opts := Options{Algo: algo, Table: tk, SCCOrder: scc, Witnesses: wit}
							name := fmt.Sprintf("%v/%v/scc=%v/wit=%v", algo, tk, scc, wit)
							ref, err := Exist(wl.g, wl.start, q, opts)
							if err != nil {
								t.Fatalf("%s sequential: %v", name, err)
							}
							refPairs := ref.Format(wl.g, q)
							for _, workers := range []int{2, 4} {
								popts := opts
								popts.Workers = workers
								res, err := Exist(wl.g, wl.start, q, popts)
								if err != nil {
									t.Fatalf("%s workers=%d: %v", name, workers, err)
								}
								if got := res.Format(wl.g, q); got != refPairs {
									t.Fatalf("%s workers=%d pairs differ\nsequential:\n%s\nparallel:\n%s",
										name, workers, refPairs, got)
								}
								if res.Stats.WorklistInserts != ref.Stats.WorklistInserts ||
									res.Stats.ReachSize != ref.Stats.ReachSize ||
									res.Stats.Substs != ref.Stats.Substs ||
									res.Stats.ResultPairs != ref.Stats.ResultPairs ||
									res.Stats.DeterminismOK != ref.Stats.DeterminismOK {
									t.Fatalf("%s workers=%d deterministic stats differ\nsequential: %+v\nparallel:   %+v",
										name, workers, ref.Stats, res.Stats)
								}
								if wit {
									for _, p := range res.Pairs {
										checkWitness(t, wl.g, wl.start, p)
									}
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestParallelManyWorkers exercises the degenerate shapes: more workers than
// vertices, and a single-vertex graph.
func TestParallelManyWorkers(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 use(a) v2
`)
	q := MustCompile(pattern.MustParse("_* use(x)"), g.U)
	ref, err := Exist(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 16, 64} {
		res, err := Exist(g, g.Start(), q, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Format(g, q) != ref.Format(g, q) {
			t.Fatalf("workers=%d pairs differ", workers)
		}
	}
	one := graph.New()
	one.Vertex("v0")
	one.SetStart(0)
	q1 := MustCompile(pattern.MustParse("use(x)?"), one.U)
	res, err := Exist(one, one.Start(), q1, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Vertex != 0 {
		t.Fatalf("single-vertex graph: %v", res.Pairs)
	}
}

// TestParallelWorkerGauges checks a parallel run with gauges attached
// exports the per-worker gauge set.
func TestParallelWorkerGauges(t *testing.T) {
	reg := obs.NewRegistry()
	gauges := obs.NewSolverGauges(reg)
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	if _, err := Exist(wl.g, wl.start, q, Options{Workers: 2, Gauges: gauges}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, m := range []string{"rpq_worker_0_queue_depth", "rpq_worker_1_steals_total", "rpq_worker_1_batches_total"} {
		if _, ok := snap[m]; !ok {
			t.Errorf("metric %s not registered after a parallel run", m)
		}
	}
}

// TestPackPairBoundary is the regression test for the int32 ⟨v,s⟩ packing
// overflow: products beyond 2³¹ must round-trip through the 64-bit packing
// without collision, and the dense-base constructors must reject dimensions
// the arrays cannot hold.
func TestPackPairBoundary(t *testing.T) {
	// Near-boundary synthetic case: |V|·|S| just above 2³¹. int32 packing
	// (v*states+s) would wrap negative here.
	verts, states := int32(214_748_365), 10 // verts*states = 2³¹ + …
	top := packPair(verts-1, int32(states-1), states)
	if top != int64(verts-1)*int64(states)+int64(states-1) {
		t.Fatalf("packPair = %d", top)
	}
	if int64(int32(top)) == top {
		t.Fatalf("test is not exercising the overflow region (top = %d)", top)
	}
	v, s := unpackPair(top, states)
	if v != verts-1 || s != int32(states-1) {
		t.Fatalf("unpackPair(packPair) = (%d, %d), want (%d, %d)", v, s, verts-1, states-1)
	}
	// Distinct pairs around the old wrap point stay distinct.
	seen := map[int64]bool{}
	for dv := int32(-2); dv <= 2; dv++ {
		for ds := int32(0); ds < int32(states); ds++ {
			p := packPair(verts-3+dv, ds, states)
			if seen[p] {
				t.Fatalf("collision at (%d, %d)", verts-3+dv, ds)
			}
			seen[p] = true
		}
	}

	if err := checkDenseBase(int(verts), states); err == nil {
		t.Fatal("checkDenseBase accepted |V|·|S| > 2³¹")
	} else if !errors.Is(err, subst.ErrCapacity) {
		t.Fatalf("checkDenseBase error %v is not subst.ErrCapacity", err)
	}
	if err := checkDenseBase(1000, 10); err != nil {
		t.Fatalf("checkDenseBase rejected a small base: %v", err)
	}

	if _, err := newTripleSet(subst.Hash, int(verts), states); !errors.Is(err, subst.ErrCapacity) {
		t.Fatalf("newTripleSet error = %v, want ErrCapacity", err)
	}
	if _, err := newTripleSet(subst.Nested, int(verts), states); !errors.Is(err, subst.ErrCapacity) {
		t.Fatalf("newTripleSet(Nested) error = %v, want ErrCapacity", err)
	}
}

// TestEnumEpochReset checks the epoch-counter reset agrees with the eager
// clear, including across a forced epoch wraparound.
func TestEnumEpochReset(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 use(a) v2
edge v2 use(b) v0
`)
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	run := func() string {
		res, err := Exist(g, g.Start(), q, Options{Algo: AlgoEnum})
		if err != nil {
			t.Fatal(err)
		}
		return res.Format(g, q)
	}
	epoch := run()
	enumEagerClear = true
	eager := run()
	enumEagerClear = false
	if epoch != eager {
		t.Fatalf("epoch reset answers differ from eager clear:\n%s\nvs\n%s", epoch, eager)
	}
	// Wraparound: reset at the max epoch must clear and restart at 1.
	es, err := newEnumState(g, q.NFA)
	if err != nil {
		t.Fatal(err)
	}
	es.epoch = ^uint32(0)
	es.seen[0] = es.epoch // visited in the current epoch
	es.reset()
	if es.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", es.epoch)
	}
	if es.seen[0] == es.epoch {
		t.Fatal("stale visit survived the wraparound clear")
	}
}
