package core

import (
	"fmt"
	"reflect"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// TestStatsParityAcrossAlgorithms checks that every algorithm variant, over
// both table representations and both query kinds, fills the phase timings
// consistently, keeps DeterminismOK semantics, reports a positive Bytes
// model, and — crucially — computes the same answers with a live tracer and
// gauges attached as with none (observability must never change results).
func TestStatsParityAcrossAlgorithms(t *testing.T) {
	existGraph := graph.MustReadString(figure1)
	univGraph := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v2
`)

	type variant struct {
		kind string // "exist" or "univ"
		algo Algo
	}
	var variants []variant
	for _, a := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum} {
		variants = append(variants, variant{"exist", a})
	}
	for _, a := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum, AlgoHybrid} {
		variants = append(variants, variant{"univ", a})
	}

	for _, v := range variants {
		for _, tk := range []subst.TableKind{subst.Hash, subst.Nested} {
			t.Run(fmt.Sprintf("%s-%v-%v", v.kind, v.algo, tk), func(t *testing.T) {
				runQuery := func(opts Options) *Result {
					t.Helper()
					var res *Result
					var err error
					if v.kind == "exist" {
						q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), existGraph.U)
						res, err = Exist(existGraph, existGraph.Start(), q, opts)
					} else {
						q := MustCompile(pattern.MustParse("def(x)*"), univGraph.U)
						res, err = Univ(univGraph, univGraph.Start(), q, opts)
					}
					if err != nil {
						t.Fatalf("%v: %v", v.algo, err)
					}
					return res
				}

				plain := runQuery(Options{Algo: v.algo, Table: tk})

				ring := obs.NewRingSink(1024)
				gauges := obs.NewSolverGauges(obs.NewRegistry())
				traced := runQuery(Options{Algo: v.algo, Table: tk, Tracer: ring, Gauges: gauges})

				// Observability must not perturb the answers.
				if !reflect.DeepEqual(pairKeys(plain), pairKeys(traced)) {
					t.Fatalf("tracer changed answers:\nplain:  %v\ntraced: %v",
						pairKeys(plain), pairKeys(traced))
				}
				if ring.Total() == 0 {
					t.Fatal("ring tracer recorded no events")
				}

				for _, res := range []*Result{plain, traced} {
					s := res.Stats
					if !s.DeterminismOK {
						t.Fatalf("DeterminismOK = false on a deterministic query")
					}
					if s.Bytes <= 0 {
						t.Fatalf("Stats.Bytes = %d, want > 0", s.Bytes)
					}
					if s.Phases.Solve.Wall <= 0 {
						t.Fatalf("Phases.Solve.Wall = %v, want > 0", s.Phases.Solve.Wall)
					}
					if s.Phases.Compile.Wall <= 0 {
						t.Fatalf("Phases.Compile.Wall = %v, want > 0", s.Phases.Compile.Wall)
					}
					if s.Phases.Domains.Wall < 0 {
						t.Fatalf("Phases.Domains.Wall = %v, want >= 0", s.Phases.Domains.Wall)
					}
					enumerating := v.algo == AlgoEnum || v.algo == AlgoHybrid
					if enumerating && s.Phases.Enumerate.Wall <= 0 {
						t.Fatalf("%v: Phases.Enumerate.Wall = %v, want > 0", v.algo, s.Phases.Enumerate.Wall)
					}
					if !enumerating && s.Phases.Enumerate.Wall != 0 {
						t.Fatalf("%v: Phases.Enumerate.Wall = %v, want 0 for worklist variants",
							v.algo, s.Phases.Enumerate.Wall)
					}
					if s.Phases.Solve.Wall < s.Phases.Enumerate.Wall {
						t.Fatalf("Enumerate wall %v exceeds Solve wall %v",
							s.Phases.Enumerate.Wall, s.Phases.Solve.Wall)
					}
				}

				// AllocBytes is sampled only when tracing (ReadMemStats is too
				// costly for the always-on path).
				if plain.Stats.Phases.Solve.AllocBytes != 0 {
					t.Fatalf("untraced run reported AllocBytes = %d, want 0",
						plain.Stats.Phases.Solve.AllocBytes)
				}
			})
		}
	}
}

// pairKeys renders the result pairs of a run as a sorted-stable string list
// (Pairs are already sorted by sortPairs).
func pairKeys(res *Result) []string {
	out := make([]string, 0, len(res.Pairs))
	for _, p := range res.Pairs {
		out = append(out, fmt.Sprintf("%d %s", p.Vertex, p.Subst.String()))
	}
	return out
}
