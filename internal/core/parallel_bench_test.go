package core

import (
	"fmt"
	"testing"

	"rpq/internal/gen"
	"rpq/internal/graph"
	"rpq/internal/pattern"
)

// benchProgram builds the shared benchmark workload: a generated program
// graph with the backward uninitialized-uses query (the paper's Table 1
// setting), which produces a large worklist with substitution churn.
func benchProgram(b *testing.B, edges int) (*graph.Graph, int32, *Query) {
	b.Helper()
	g := gen.Program(gen.ProgSpec{
		Name: "bench", Seed: 11, Edges: edges, Vars: 60, UninitFrac: 0.15,
		UseSites: true, EntryLoop: true,
	})
	rg := g.Reverse()
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				q := MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), rg.U)
				return rg, e.To, q
			}
		}
	}
	b.Fatal("no exit() edge")
	return nil, 0, nil
}

// BenchmarkExistWorkers measures the parallel solver against the sequential
// one on the same workload; workers=1 is the sequential baseline.
func BenchmarkExistWorkers(b *testing.B) {
	g, start, q := benchProgram(b, 12_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Exist(g, start, q, Options{Algo: AlgoMemo, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

// BenchmarkEnumReset measures the epoch-counter O(1) per-substitution reset
// of the enumeration algorithm against the old O(|V|·|S|) eager clear it
// replaced. The workload is the regime the fix targets: a graph much larger
// than the region any one ground run reaches (here, a program fragment
// embedded in a large graph), so the per-substitution clear of the full
// |V|·|S| array dominated the traversal.
func BenchmarkEnumReset(b *testing.B) {
	g := gen.Program(gen.ProgSpec{
		Name: "enumbench", Seed: 13, Edges: 600, Vars: 80, UninitFrac: 0.3,
		UseSites: true, EntryLoop: true,
	})
	// Vertices outside the reachable region: the ground runs never touch
	// them, but the eager clear pays for them on every substitution.
	for i := 0; i < 200_000; i++ {
		g.Vertex(fmt.Sprintf("iso%d", i))
	}
	q := MustCompile(pattern.MustParse("(!def(x))* use(x,_)"), g.U)
	for _, eager := range []bool{false, true} {
		name := "epoch"
		if eager {
			name = "eager-clear"
		}
		b.Run(name, func(b *testing.B) {
			enumEagerClear = eager
			defer func() { enumEagerClear = false }()
			for i := 0; i < b.N; i++ {
				if _, err := Exist(g, g.Start(), q, Options{Algo: AlgoEnum}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
