package core

import (
	"time"

	"rpq/internal/obs"
)

// instr is the per-run instrumentation handle: a tracer (with its enabled
// flag cached so hot paths pay one boolean test) plus the gauges sampled by
// the solver loops. The zero value is fully disabled.
type instr struct {
	t      obs.Tracer
	on     bool
	gauges *obs.SolverGauges
}

func newInstr(opts Options) instr {
	in := instr{t: opts.Tracer, gauges: opts.Gauges}
	in.on = in.t != nil && in.t.Enabled()
	return in
}

// sampleMask throttles gauge sampling: one snapshot every sampleMask+1
// worklist pops. A power of two minus one, so the test is a single AND.
const sampleMask = 255

// growthHook returns a table-growth tracer callback emitting snapshots at
// power-of-two sizes (bounded event volume on any run), or nil when tracing
// is off. The caller installs it — possibly chained with the explain
// collector's curve sampler — via SetOnGrow.
func (in instr) growthHook() func(n int, bytes int64) {
	if !in.on {
		return nil
	}
	next := 64
	in.t.Emit(obs.Ev(obs.KTableGrowth, "substs", 0))
	return func(n int, bytes int64) {
		if n >= next {
			next *= 2
			in.t.Emit(obs.Ev(obs.KTableGrowth, "substs", int64(n)))
			in.t.Emit(obs.Ev(obs.KTableGrowth, "subst_bytes", bytes))
		}
	}
}

// flush pushes buffered trace events to disk; used on solver error paths so
// a failing run still yields a complete (parseable) trace.
func (in instr) flush() {
	if in.on {
		obs.Flush(in.t)
	}
}

// workerSpan emits a completed span on parallel worker id's timeline lane.
func (in instr) workerSpan(id int, name string, d time.Duration) {
	if in.on {
		ev := obs.SpanEv(obs.KSpan, name, d)
		ev.Worker = id + 1
		in.t.Emit(ev)
	}
}

// workerCounter emits a counter on parallel worker id's timeline lane.
func (in instr) workerCounter(id int, name string, v int64) {
	if in.on {
		ev := obs.Ev(obs.KCounter, name, v)
		ev.Worker = id + 1
		in.t.Emit(ev)
	}
}

// phaseBegin emits the begin event and returns the phase start time.
func (in instr) phaseBegin(name string) time.Time {
	if in.on {
		in.t.Emit(obs.Ev(obs.KPhaseBegin, name, 0))
	}
	return time.Now()
}

// phaseEnd emits the end event and returns the phase wall time.
func (in instr) phaseEnd(name string, t0 time.Time) time.Duration {
	d := time.Since(t0)
	if in.on {
		in.t.Emit(obs.Event{Time: time.Now(), Kind: obs.KPhaseEnd, Name: name, Dur: d})
	}
	return d
}

// span emits a retrospective completed phase (e.g. compilation that ran
// before the solver was invoked).
func (in instr) span(name string, d time.Duration) {
	if in.on {
		in.t.Emit(obs.SpanEv(obs.KSpan, name, d))
	}
}

// counter emits a monotonic total.
func (in instr) counter(name string, v int64) {
	if in.on {
		in.t.Emit(obs.Ev(obs.KCounter, name, v))
	}
}

// allocSnapshot reads cumulative heap allocation when tracing is on;
// otherwise reports 0, keeping the always-on path free of any sampling
// cost. The read goes through runtime/metrics (/gc/heap/allocs:bytes),
// which does not stop the world — unlike the runtime.ReadMemStats call it
// replaces — so tracing no longer perturbs the run it measures.
func (in instr) allocSnapshot() uint64 {
	if !in.on {
		return 0
	}
	return uint64(obs.HeapAllocBytes())
}

// finish stamps the end-of-run counters as events, in one place so every
// algorithm variant reports the same set.
func (in instr) finish(s *Stats) {
	if !in.on {
		return
	}
	in.counter("worklist_inserts", int64(s.WorklistInserts))
	in.counter("reach_size", int64(s.ReachSize))
	in.counter("match_calls", int64(s.MatchCalls))
	in.counter("match_cache_hits", int64(s.MatchCacheHits))
	in.counter("match_cache_misses", int64(s.MatchCacheMisses))
	in.counter("merge_calls", int64(s.MergeCalls))
	in.counter("substs", int64(s.Substs))
	in.counter("enum_substs", int64(s.EnumSubsts))
	in.counter("result_pairs", int64(s.ResultPairs))
	in.counter("bytes", s.Bytes)
	in.counter("peak_triples", int64(s.PeakTriples))
}

// highWater tracks a worklist high-water mark, emitting an event each time
// the mark doubles. nextHW is threaded by the caller (start it at 1).
func (in instr) highWater(depth int, nextHW *int) {
	if in.on && depth >= *nextHW {
		*nextHW = depth * 2
		in.t.Emit(obs.Ev(obs.KHighWater, "worklist", int64(depth)))
	}
}

// pairsBytes models the storage of n result pairs over pars parameters —
// slice header plus interned substitution data per pair — so every variant
// accounts results identically.
func pairsBytes(n, pars int) int64 {
	return int64(n) * int64(24+4*pars)
}
