package core

import (
	"fmt"

	"rpq/internal/subst"
)

// triple is a worklist/reach-set element ⟨v, s, θ⟩ with the substitution
// interned to a key. In universal runs s may be the badstate (== numStates)
// and th may be badSubstKey.
type triple struct {
	v  int32
	s  int32
	th int32
}

// badSubstKey marks badsubst in universal reach triples.
const badSubstKey int32 = -1

// tripleSet is the set R ∪ W of triples already discovered; Add reports
// whether the triple was new. The two implementations mirror the paper's
// Table 3 data-structure comparison: hashing vs. nested arrays, both "based"
// on the (v, s) pair (the first keys locate a base; remaining keys index
// into it).
type tripleSet interface {
	Add(t triple) bool
	Len() int
	Bytes() int64
	// Release drops the storage of all triples at vertex v (used by
	// SCC-ordered processing to free finished components). It reduces
	// Bytes but not Len.
	Release(v int32)
}

// maxDenseBase bounds the dense (v, s) base-array element count. Beyond it
// the pair arithmetic the solvers rely on (and any practical allocation)
// breaks down, so the constructors report the capacity explicitly instead
// of overflowing.
const maxDenseBase = int64(1) << 31

// checkDenseBase validates a |V|·|S| dense base size against maxDenseBase.
func checkDenseBase(verts, states int) error {
	if n := int64(verts) * int64(states); n > maxDenseBase {
		return fmt.Errorf("core: |V|·|S| = %d×%d = %d exceeds the dense base capacity %d: %w",
			verts, states, n, maxDenseBase, subst.ErrCapacity)
	}
	return nil
}

// newTripleSet builds a set for v in [0, verts) and s in [0, states); pass
// states+1 for universal runs so the badstate fits. It returns an error
// wrapping subst.ErrCapacity when |V|·|S| exceeds the representable dense
// base size.
func newTripleSet(kind subst.TableKind, verts, states int) (tripleSet, error) {
	if err := checkDenseBase(verts, states); err != nil {
		return nil, err
	}
	switch kind {
	case subst.Hash:
		return &hashTripleSet{base: make([]map[int32]struct{}, verts*states), states: states}, nil
	case subst.Nested:
		return &nestedTripleSet{base: make([][]bool, verts*states), states: states}, nil
	}
	panic("core: unknown table kind")
}

// hashTripleSet keys a hash set of substitution keys off the dense (v, s)
// base — the "based hash representation" the paper found best overall.
type hashTripleSet struct {
	base   []map[int32]struct{}
	states int
	n      int
	bytes  int64
}

func (h *hashTripleSet) Add(t triple) bool {
	idx := int(t.v)*h.states + int(t.s)
	m := h.base[idx]
	if m == nil {
		m = make(map[int32]struct{})
		h.base[idx] = m
		h.bytes += 48
	}
	if _, ok := m[t.th]; ok {
		return false
	}
	m[t.th] = struct{}{}
	h.n++
	h.bytes += 16
	return true
}

func (h *hashTripleSet) Len() int     { return h.n }
func (h *hashTripleSet) Bytes() int64 { return int64(len(h.base))*8 + h.bytes }

func (h *hashTripleSet) Release(v int32) {
	for s := 0; s < h.states; s++ {
		idx := int(v)*h.states + s
		if m := h.base[idx]; m != nil {
			h.bytes -= 48 + 16*int64(len(m))
			h.base[idx] = nil
		}
	}
}

// nestedTripleSet uses nested arrays: base (v, s) → boolean array indexed by
// substitution key. Fast when dense, but sparse bases each hold an array as
// long as the substitution-key range — the space blow-up Table 3 measures.
type nestedTripleSet struct {
	base   [][]bool
	states int
	n      int
	bytes  int64
}

func (t *nestedTripleSet) Add(tr triple) bool {
	idx := int(tr.v)*t.states + int(tr.s)
	row := t.base[idx]
	k := int(tr.th) + 1 // shift so badSubstKey (-1) maps to slot 0
	if k >= len(row) {
		grown := make([]bool, max(k+1, 2*len(row)+8))
		copy(grown, row)
		t.bytes += int64(len(grown) - len(row))
		row = grown
		t.base[idx] = row
	}
	if row[k] {
		return false
	}
	row[k] = true
	t.n++
	return true
}

func (t *nestedTripleSet) Len() int     { return t.n }
func (t *nestedTripleSet) Bytes() int64 { return int64(len(t.base))*24 + t.bytes }

func (t *nestedTripleSet) Release(v int32) {
	for s := 0; s < t.states; s++ {
		idx := int(v)*t.states + s
		if row := t.base[idx]; row != nil {
			t.bytes -= int64(len(row))
			t.base[idx] = nil
		}
	}
}
