package core

import (
	"fmt"
	"testing"

	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/pattern"
)

// completionGraph has several distinct labels so that explicit completion
// pays a visible per-label cost.
func completionGraph() *graph.Graph {
	return graph.MustReadString(`
start v0
edge v0 a() v1
edge v1 b() v2
edge v2 a() v3
edge v3 b() v4
edge v0 a() v5
edge v5 c() v6
edge v6 d() v7
edge v2 e() v7
`)
}

func TestCompletionModesAgree(t *testing.T) {
	g := completionGraph()
	// Ground deterministic pattern: alternating a b.
	pats := []string{"(a() b())*", "a() (b() a())* b()?", "(a()|c())* d()?"}
	for _, pat := range pats {
		q := MustCompile(pattern.MustParse(pat), g.U)
		var ref string
		for i, cm := range []CompletionMode{Incomplete, CompleteTrap, CompleteExplicit} {
			res, err := Univ(g, g.Start(), q, Options{Completion: cm})
			if err != nil {
				t.Fatalf("%s / %v: %v", pat, cm, err)
			}
			s := fmt.Sprint(pairsAsStrings(g, q, res))
			if i == 0 {
				ref = s
			} else if s != ref {
				t.Fatalf("%s: completion %v result %s != incomplete %s", pat, cm, s, ref)
			}
		}
	}
}

func TestCompletionTrapParametricDeterministicChain(t *testing.T) {
	// The trap completion preserves results on a parametric pattern whose
	// graph never feeds two substitutions to one edge (a pure chain).
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 use(b) v2
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	inc, err := Univ(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// v2 excluded via badstate; v0, v1 answered.
	if len(inc.Pairs) != 2 {
		t.Fatalf("incomplete: %v", pairsAsStrings(g, q, inc))
	}
	trap, err := Univ(g, g.Start(), q, Options{Completion: CompleteTrap})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pairsAsStrings(g, q, trap)) != fmt.Sprint(pairsAsStrings(g, q, inc)) {
		t.Fatalf("trap completion changed the result: %v vs %v",
			pairsAsStrings(g, q, trap), pairsAsStrings(g, q, inc))
	}
}

func TestCompleteExplicitRejectsParametricPattern(t *testing.T) {
	g := completionGraph()
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	if _, err := Univ(g, g.Start(), q, Options{Completion: CompleteExplicit}); err == nil {
		t.Fatal("explicit completion accepted a parametric pattern")
	}
}

func TestCompletionCost(t *testing.T) {
	// The paper's point: the incomplete algorithm does strictly less work
	// than running on an explicitly completed automaton.
	g := completionGraph()
	q := MustCompile(pattern.MustParse("(a() b())*"), g.U)
	inc, err := Univ(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Univ(g, g.Start(), q, Options{Completion: CompleteExplicit})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats.MatchCalls <= inc.Stats.MatchCalls {
		t.Errorf("explicit completion should cost more match calls: %d vs %d",
			exp.Stats.MatchCalls, inc.Stats.MatchCalls)
	}
	// Transition count blow-up: states × edgelabels.
	dfa := q.DFA()
	comp := automata.CompleteExplicit(dfa, g.Labels())
	if comp.NumTrans() <= dfa.NumTrans()+g.NumLabels() {
		t.Errorf("explicit completion added too few transitions: %d vs %d over %d labels",
			comp.NumTrans(), dfa.NumTrans(), g.NumLabels())
	}
}

func TestCompleteAutomatonShape(t *testing.T) {
	u := label.NewUniverse()
	ps := &label.ParamSpace{}
	nfa := automata.MustFromPattern(pattern.MustParse("(a() b())*"), u, ps)
	dfa := automata.Determinize(nfa)

	c := automata.Complete(dfa)
	if c.NumStates != dfa.NumStates+1 {
		t.Fatalf("trap completion states = %d, want %d", c.NumStates, dfa.NumStates+1)
	}
	// Every original state gains exactly one trap transition.
	for s := 0; s < dfa.NumStates; s++ {
		if len(c.Trans[s]) != len(dfa.Trans[s])+1 {
			t.Errorf("state %d: %d transitions, want %d", s, len(c.Trans[s]), len(dfa.Trans[s])+1)
		}
	}
	// The trap self-loops on everything.
	trap := c.NumStates - 1
	if len(c.Trans[trap]) != 1 || c.Trans[trap][0].To != int32(trap) {
		t.Errorf("trap transitions: %v", c.Trans[trap])
	}
	if c.Final[trap] {
		t.Errorf("trap must not be final")
	}
}
