package core

import (
	"fmt"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// figure1 is the paper's Figure 1 program graph.
const figure1 = `
start v1
edge v1 def(a) v2
edge v2 use(a) v3
edge v3 def(a) v4
edge v4 use(b) v5
edge v5 def(b) v6
edge v6 use(a) v7
edge v6 use(c) v7
`

// run compiles and executes an existential query, failing the test on error.
func run(t *testing.T, g *graph.Graph, pat string, opts Options) *Result {
	t.Helper()
	q := MustCompile(pattern.MustParse(pat), g.U)
	res, err := Exist(g, g.Start(), q, opts)
	if err != nil {
		t.Fatalf("Exist(%q): %v", pat, err)
	}
	return res
}

// pairsAsStrings renders result pairs readably for comparison.
func pairsAsStrings(g *graph.Graph, q *Query, res *Result) []string {
	var out []string
	for _, p := range res.Pairs {
		out = append(out, fmt.Sprintf("%s %s", g.VertexName(p.Vertex), p.Subst.Format(g.U, q.PS)))
	}
	return out
}

func TestExistUninitFigure1(t *testing.T) {
	g := graph.MustReadString(figure1)
	for _, algo := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp} {
		for _, tk := range []subst.TableKind{subst.Hash, subst.Nested} {
			name := fmt.Sprintf("%v-%v", algo, tk)
			t.Run(name, func(t *testing.T) {
				q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
				res, err := Exist(g, g.Start(), q, Options{Algo: algo, Table: tk})
				if err != nil {
					t.Fatal(err)
				}
				got := map[string]bool{}
				for _, s := range pairsAsStrings(g, q, res) {
					got[s] = true
				}
				// Uses of uninitialized variables: b just before v5, c just
				// before v7. The use of a at v7 is preceded by def(a).
				want := []string{"v5 {x↦b}", "v7 {x↦c}"}
				if len(got) != len(want) {
					t.Fatalf("result = %v, want %v", got, want)
				}
				for _, w := range want {
					if !got[w] {
						t.Fatalf("missing %q in %v", w, got)
					}
				}
			})
		}
	}
}

func TestExistFirstUseFigure1(t *testing.T) {
	g := graph.MustReadString(figure1)
	res := run(t, g, "(!(def(x)|use(x)))* use(x)", Options{})
	q := MustCompile(pattern.MustParse("(!(def(x)|use(x)))* use(x)"), g.U)
	_ = q
	if len(res.Pairs) != 2 {
		t.Fatalf("first-use result has %d pairs, want 2", len(res.Pairs))
	}
}

func TestExistEmptyPathAnswer(t *testing.T) {
	g := graph.MustReadString("start v1\nedge v1 def(a) v2\n")
	res := run(t, g, "_*", Options{})
	// _* accepts the empty path, so v1 itself is an answer.
	found := false
	for _, p := range res.Pairs {
		if g.VertexName(p.Vertex) == "v1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("v1 missing from _* result: %v", res.Pairs)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("got %d pairs, want 2 (v1 and v2)", len(res.Pairs))
	}
}

func TestExistCycleTermination(t *testing.T) {
	g := graph.MustReadString(`
start a
edge a def(x1) b
edge b use(x2) a
edge b f() c
`)
	res := run(t, g, "_* f()", Options{})
	if len(res.Pairs) != 1 || g.VertexName(res.Pairs[0].Vertex) != "c" {
		t.Fatalf("cycle query result: %v", res.Pairs)
	}
}

func TestExistBackwardLiveVariables(t *testing.T) {
	// Live variables: backward query _* use(x) (!def(x))* on the reversed
	// graph (Section 2.2). On Figure 1, from the exit v7 backwards.
	g := graph.MustReadString(figure1)
	r := g.Reverse()
	v7, _ := r.LookupVertex("v7")
	q := MustCompile(pattern.MustParse("_* use(x) (!def(x))*"), r.U)
	res, err := Exist(r, v7, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a is live at v6 (used on v6->v7 edge, not redefined before in the
	// reversed path sense); check a few known facts.
	byVertex := map[string]map[string]bool{}
	for _, p := range res.Pairs {
		vn := r.VertexName(p.Vertex)
		if byVertex[vn] == nil {
			byVertex[vn] = map[string]bool{}
		}
		byVertex[vn][p.Subst.Format(r.U, q.PS)] = true
	}
	if !byVertex["v6"]["{x↦a}"] {
		t.Errorf("a should be live at v6: %v", byVertex["v6"])
	}
	if !byVertex["v1"]["{x↦b}"] {
		t.Errorf("b should be live at v1 (used at v4->v5 before def): %v", byVertex["v1"])
	}
	if byVertex["v5"]["{x↦b}"] {
		t.Errorf("b should not be live at v5 (defined at v5->v6): %v", byVertex["v5"])
	}
}

func TestExistVariantsAgreeExactly(t *testing.T) {
	// Basic, memo, and precomputation implement the same function; their
	// results must be identical, across both table kinds and compaction.
	graphs := []string{
		figure1,
		`start a
edge a open(f1) b
edge b access(f1) c
edge c close(f1) d
edge b open(f2) c
edge d seteuid(1) e
edge c seteuid(0) d`,
		`start s
edge s acq(l1) a
edge a acq(l2) b
edge b rel(l2) c
edge c rel(l1) s
edge b x() d`,
	}
	pats := []string{
		"(!def(x))* use(x)",
		"_* open(f) (!close(f))* seteuid(!0)",
		"_* acq(l1) (!rel(l1))* acq(l2) _*",
		"_*",
		"(!(def(x)|use(x)))* use(x)",
	}
	for gi, gs := range graphs {
		g := graph.MustReadString(gs)
		for _, pat := range pats {
			q := MustCompile(pattern.MustParse(pat), g.U)
			base, err := Exist(g, g.Start(), q, Options{Algo: AlgoBasic})
			if err != nil {
				t.Fatal(err)
			}
			ref := fmt.Sprint(pairsAsStrings(g, q, base))
			for _, opts := range []Options{
				{Algo: AlgoMemo},
				{Algo: AlgoPrecomp},
				{Algo: AlgoBasic, Table: subst.Nested},
				{Algo: AlgoMemo, Table: subst.Nested},
				{Algo: AlgoPrecomp, Table: subst.Nested},
				{Algo: AlgoBasic, Compact: true},
				{Algo: AlgoBasic, Domains: DomainsAllSymbols},
				{Algo: AlgoBasic, SCCOrder: true},
				{Algo: AlgoMemo, SCCOrder: true, Table: subst.Nested},
				{Algo: AlgoPrecomp, SCCOrder: true},
			} {
				res, err := Exist(g, g.Start(), q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := fmt.Sprint(pairsAsStrings(g, q, res)); got != ref {
					t.Errorf("graph %d %q opts %+v: %s != %s", gi, pat, opts, got, ref)
				}
			}
			// Same reach statistics for basic vs memo vs precomp.
			memo, _ := Exist(g, g.Start(), q, Options{Algo: AlgoMemo})
			if memo.Stats.WorklistInserts != base.Stats.WorklistInserts {
				t.Errorf("graph %d %q: memo worklist %d != basic %d",
					gi, pat, memo.Stats.WorklistInserts, base.Stats.WorklistInserts)
			}
			if memo.Stats.MatchCalls > base.Stats.MatchCalls {
				t.Errorf("graph %d %q: memoization did not reduce match calls (%d > %d)",
					gi, pat, memo.Stats.MatchCalls, base.Stats.MatchCalls)
			}
		}
	}
}

// expand builds the set of (vertex, full substitution) strings obtained by
// extending each result substitution over the given domains.
func expand(res *Result, doms subst.Domains, pars int) map[string]bool {
	out := map[string]bool{}
	for _, p := range res.Pairs {
		v := p.Vertex
		subst.ForEachExtension(p.Subst, subst.AllParams(pars), doms, func(th subst.Subst) bool {
			out[fmt.Sprintf("%d%s", v, th.String())] = true
			return true
		})
	}
	return out
}

func TestExistEnumAgreesModuloExtension(t *testing.T) {
	g := graph.MustReadString(figure1)
	pats := []string{
		"(!def(x))* use(x)",
		"(!(def(x)|use(x)))* use(x)",
		"_* use(x)",
		"def(x)* use(y)",
	}
	for _, pat := range pats {
		for _, dm := range []DomainMode{DomainsRefined, DomainsAllSymbols} {
			q := MustCompile(pattern.MustParse(pat), g.U)
			doms := ComputeDomains(q, g, dm)
			basic, err := Exist(g, g.Start(), q, Options{Algo: AlgoBasic, Domains: dm})
			if err != nil {
				t.Fatal(err)
			}
			enum, err := Exist(g, g.Start(), q, Options{Algo: AlgoEnum, Domains: dm})
			if err != nil {
				t.Fatal(err)
			}
			be := expand(basic, doms, q.Pars())
			ee := expand(enum, doms, q.Pars())
			if len(be) != len(ee) {
				t.Fatalf("%q (%v): expanded sizes differ: basic %d, enum %d", pat, dm, len(be), len(ee))
			}
			for k := range be {
				if !ee[k] {
					t.Fatalf("%q (%v): enum missing %s", pat, dm, k)
				}
			}
		}
	}
}

func TestExistStatsSanity(t *testing.T) {
	g := graph.MustReadString(figure1)
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	res, err := Exist(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.WorklistInserts <= 0 || s.ReachSize != s.WorklistInserts {
		t.Errorf("worklist/reach stats: %+v", s)
	}
	if s.Substs <= 0 || s.Bytes <= 0 || !s.DeterminismOK {
		t.Errorf("stats: %+v", s)
	}
	if s.ResultPairs != len(res.Pairs) {
		t.Errorf("ResultPairs %d != %d", s.ResultPairs, len(res.Pairs))
	}
}

func TestExistDomainsRefinedSmaller(t *testing.T) {
	g := graph.MustReadString(figure1)
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	ref := ComputeDomains(q, g, DomainsRefined)
	all := ComputeDomains(q, g, DomainsAllSymbols)
	if len(ref[0]) > len(all[0]) {
		t.Fatalf("refined domain larger than all-symbols: %d > %d", len(ref[0]), len(all[0]))
	}
	// x occurs positively in use(x): its domain is the used variables a,b,c.
	if len(ref[0]) != 3 {
		t.Fatalf("refined domain = %d symbols, want 3 (a, b, c)", len(ref[0]))
	}
}

func TestExistBadStart(t *testing.T) {
	g := graph.MustReadString(figure1)
	q := MustCompile(pattern.MustParse("_*"), g.U)
	if _, err := Exist(g, -1, q, Options{}); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := Exist(g, 99, q, Options{}); err == nil {
		t.Fatal("out-of-range start accepted")
	}
	if _, err := Exist(g, g.Start(), q, Options{Algo: AlgoHybrid}); err == nil {
		t.Fatal("hybrid accepted for existential query")
	}
}

func TestExistFreedMemory(t *testing.T) {
	// The freed-memory example of Section 2.2.
	g := graph.MustReadString(`
start e
edge e malloc(p1) a
edge a free(p1) b
edge b deref(p1) c
edge b malloc(p1) d
edge d deref(p1) f
`)
	res := run(t, g, "_* free(p) (!malloc(p))* (free(p)|deref(p))", Options{})
	if len(res.Pairs) != 1 {
		t.Fatalf("freed-memory query: %d pairs, want 1 (the deref at c)", len(res.Pairs))
	}
	if g.VertexName(res.Pairs[0].Vertex) != "c" {
		t.Fatalf("freed-memory hit at %s, want c", g.VertexName(res.Pairs[0].Vertex))
	}
}
