package core

import (
	"context"
	"errors"
	"fmt"

	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/subst"
)

// packPair packs a ⟨v, s⟩ product pair into an int64. The solvers
// previously used int32 packing (v*states+s), which silently overflows once
// |V|·|S| exceeds 2³¹ — exactly the inputs the dense base arrays are sized
// for, so the constructors guard that bound (checkDenseBase) and all pair
// arithmetic is 64-bit.
func packPair(v, s int32, states int) int64 {
	return int64(v)*int64(states) + int64(s)
}

// unpackPair inverts packPair.
func unpackPair(p int64, states int) (v, s int32) {
	return int32(p / int64(states)), int32(p % int64(states))
}

// Exist solves the existential query of Section 3: compute all pairs ⟨v, θ⟩
// such that some path from v0 to v matches some sentence accepted by the
// pattern under θ. Substitutions in the result are minimal; every extension
// of a result substitution also witnesses the pair.
//
// One deliberate refinement over the paper's pseudo-code: the worklist is
// seeded with ⟨v0, s0, {}⟩ rather than unrolling rule (i), which both
// simplifies the loop and includes the empty path (so ⟨v0, {}⟩ is an answer
// when the pattern accepts ε).
func Exist(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	return ExistContext(context.Background(), g, v0, q, opts)
}

// ExistContext is Exist bounded by a context (and Options.Deadline): when
// either fires, the worklist loops stop at the next check and the run
// returns an InterruptError wrapping ErrCanceled or ErrDeadline, carrying
// the statistics — and, under Options.Explain, the profile — accumulated so
// far. Parallel workers drain and join before the error returns; no
// goroutines outlive the call.
func ExistContext(ctx context.Context, g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	if int(v0) >= g.NumVertices() || v0 < 0 {
		return nil, fmt.Errorf("core: start vertex %d out of range", v0)
	}
	switch opts.Algo {
	case AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum:
	case AlgoHybrid:
		return nil, fmt.Errorf("core: the hybrid algorithm applies to universal queries only")
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opts.Algo)
	}
	if opts.cxl == nil {
		// univHybrid's inner existential pass arrives with the watcher
		// already armed; arm one here otherwise.
		if opts.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
			defer cancel()
		}
		cxl, release := newCanceler(ctx)
		defer release()
		opts.cxl = cxl
	}
	in := newInstr(opts)
	in.span("compile", q.CompileWall)
	a0 := in.allocSnapshot()
	t0 := in.phaseBegin("solve")
	var res *Result
	var err error
	switch {
	case opts.Algo == AlgoEnum && opts.Workers > 1:
		res, err = existEnumParallel(g, v0, q, opts)
	case opts.Algo == AlgoEnum:
		res, err = existEnum(g, v0, q, opts)
	case opts.Workers > 1:
		res, err = existParallel(g, v0, q, opts)
	default:
		res, err = existWorklist(g, v0, q, opts)
	}
	if err != nil {
		// Close the phase and flush buffered trace events so a failing run
		// still yields a complete, parseable trace. Interrupted runs get
		// their phase walls stamped into the partial stats.
		d := in.phaseEnd("solve", t0)
		var ie *InterruptError
		if errors.As(err, &ie) {
			ie.Stats.Phases.Solve.Wall = d
			ie.Stats.Phases.Compile.Wall = q.BuildWall()
		}
		in.flush()
		return nil, err
	}
	res.Stats.Phases.Solve.Wall = in.phaseEnd("solve", t0)
	if a1 := in.allocSnapshot(); a1 > a0 {
		res.Stats.Phases.Solve.AllocBytes = int64(a1 - a0)
	}
	res.Stats.Phases.Compile.Wall = q.BuildWall()
	in.finish(&res.Stats)
	return res, nil
}

// mtsEntry is one element of the target-and-substitution map M_ts: from the
// keyed ⟨v, s⟩ pair, a successful match leads to ⟨v1, s1⟩. AD-compatible
// labels carry their cached match; generic labels are stored unresolved and
// re-matched per substitution.
type mtsEntry struct {
	v1, s1 int32
	m      *label.Match // nil for generic labels
	tl     *label.CTerm
	el     *label.CTerm
	// ti/elID attribute the entry's solve-time work to the originating
	// transition and edge label in the explain profile; ti is meaningful
	// only when explaining.
	ti   int32
	elID int32
}

// buildMTS precomputes the target-and-substitution map M_ts (pseudo-code
// (3)): for every reachable ⟨v, s⟩ pair (packed v*states+s), the match
// results of its outgoing (edge, transition) combinations, ignoring
// substitution feasibility. Callers validate |V|·|S| against maxDenseBase
// first (existWorklist via newTripleSet, existParallel explicitly).
func buildMTS(e *engine, v0 int32) ([][]mtsEntry, int64) {
	g, nfa := e.g, e.auto
	states := nfa.NumStates
	mts := make([][]mtsEntry, g.NumVertices()*states)
	mtsBytes := int64(len(mts)) * 24
	seenPair := make([]bool, g.NumVertices()*states)
	pw := []int64{packPair(v0, nfa.Start, states)}
	seenPair[pw[0]] = true
	for len(pw) > 0 {
		pair := pw[len(pw)-1]
		pw = pw[:len(pw)-1]
		v, s := unpackPair(pair, states)
		for _, ge := range g.Out(v) {
			for i, tr := range nfa.Trans[s] {
				tlID := nfa.LabelID[tr.Label.Key()]
				var ti int32
				if e.ex != nil {
					ti = e.ex.ti(s, i)
					e.ex.setCur(ti, ge.LabelID)
				}
				m := e.possiblyMatches(tr.Label, tlID, ge.Label, ge.LabelID)
				if m == nil {
					continue
				}
				entry := mtsEntry{v1: ge.To, s1: tr.To, tl: tr.Label, el: ge.Label, ti: ti, elID: ge.LabelID}
				if tr.Label.ADCompatible() {
					entry.m = m
				}
				mts[pair] = append(mts[pair], entry)
				mtsBytes += 48
				np := packPair(ge.To, tr.To, states)
				if !seenPair[np] {
					seenPair[np] = true
					pw = append(pw, np)
				}
			}
		}
	}
	return mts, mtsBytes
}

// parentStep is the parent pointer of a discovered triple — the triple and
// edge that first produced it — recorded when Options.Witnesses is on.
type parentStep struct {
	prev triple
	lbl  *label.CTerm
	from int32
}

// attachWitnesses reconstructs one witnessing path per answer by following
// parent pointers from each origin triple back to the seed (which has no
// parent entry). Each step matched under a subset of the final
// substitution, and matching is closed under extension, so the whole path
// matches under the answer's substitution. lookup abstracts over the single
// parent map of the sequential solver and the per-worker maps of the
// parallel one.
func attachWitnesses(pairs []Pair, origins []triple, lookup func(triple) (parentStep, bool)) {
	for i := range pairs {
		var rev []WitnessStep
		cur := origins[i]
		for {
			ps, ok := lookup(cur)
			if !ok {
				break
			}
			rev = append(rev, WitnessStep{From: ps.from, Label: ps.lbl, To: cur.v})
			cur = ps.prev
		}
		w := make([]WitnessStep, len(rev))
		for j := range rev {
			w[j] = rev[len(rev)-1-j]
		}
		pairs[i].Witness = w
	}
}

func existWorklist(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	if opts.Compact {
		g = g.CompactFor(q.NFA.Labels)
	}
	var stats Stats
	stats.DeterminismOK = true
	nfa := q.NFA
	states := nfa.NumStates
	e, err := newEngine(g, q, nfa, opts, &stats)
	if err != nil {
		return nil, err
	}

	seen, err := newTripleSet(opts.Table, g.NumVertices(), states)
	if err != nil {
		return nil, err
	}

	// SCC-ordered mode (Section 5.3): one worklist bucket per strongly
	// connected component, processed in topological order, with the reach
	// set storage of finished components released. Since every edge goes
	// from a component to a same-or-later one in topological numbering,
	// a released component can never be re-entered.
	var comp []int32
	var comps [][]int32
	buckets := make([][]triple, 1)
	bucketOf := func(v int32) int { return 0 }
	if opts.SCCOrder {
		comp, comps = g.SCCTopoOrder()
		buckets = make([][]triple, len(comps))
		bucketOf = func(v int32) int { return int(comp[v]) }
	}
	// Witness reconstruction: the parent pointer of each discovered triple.
	var parents map[triple]parentStep
	if opts.Witnesses {
		parents = map[triple]parentStep{}
	}
	live := 0
	perVertex := make([]int32, g.NumVertices())
	push := func(v, s int32, th subst.Subst, prev triple, lbl *label.CTerm, from int32) {
		key := e.table.Key(th)
		t := triple{v: v, s: s, th: key}
		if seen.Add(t) {
			buckets[bucketOf(v)] = append(buckets[bucketOf(v)], t)
			stats.WorklistInserts++
			live++
			perVertex[v]++
			if live > stats.PeakTriples {
				stats.PeakTriples = live
			}
			if parents != nil && lbl != nil {
				parents[t] = parentStep{prev: prev, lbl: lbl, from: from}
			}
		}
	}
	push(v0, nfa.Start, subst.New(q.Pars()), triple{}, nil, 0)

	// Precompute M_ts (pseudo-code (3)): reachable ⟨v, s⟩ pairs with their
	// match results, ignoring substitution feasibility.
	var mts [][]mtsEntry
	var mtsBytes int64
	if opts.Algo == AlgoPrecomp {
		mts, mtsBytes = buildMTS(e, v0)
	}

	// Result set keyed (v, θ-key); origins remembers each pair's triple for
	// witness reconstruction.
	resSeen := map[int64]bool{}
	var pairs []Pair
	var origins []triple
	record := func(t triple) {
		k := int64(t.v)<<32 | int64(uint32(t.th))
		if !resSeen[k] {
			resSeen[k] = true
			pairs = append(pairs, Pair{Vertex: t.v, Subst: e.table.Get(t.th).Clone()})
			origins = append(origins, t)
		}
	}

	// processTriple is the body of the main worklist loop, pseudo-code
	// (2)/(4): record final-state answers and expand successors.
	processTriple := func(t triple) {
		if e.ex != nil {
			e.ex.visit(t.s)
		}
		if nfa.Final[t.s] {
			record(t)
		}
		th := e.table.Get(t.th)
		if opts.Algo == AlgoPrecomp {
			for i := range mts[int(t.v)*states+int(t.s)] {
				entry := &mts[int(t.v)*states+int(t.s)][i]
				if e.ex != nil {
					e.ex.setCur(entry.ti, entry.elID)
				}
				emit := func(th2 subst.Subst) bool {
					push(entry.v1, entry.s1, th2, t, entry.el, t.v)
					return true
				}
				if entry.m != nil {
					e.applyMatch(entry.m, th, emit)
				} else {
					e.forEachGeneric(entry.tl, entry.el, th, emit)
				}
			}
			return
		}
		for _, ge := range g.Out(t.v) {
			for i, tr := range nfa.Trans[t.s] {
				tlID := nfa.LabelID[tr.Label.Key()]
				to := tr.To
				if e.ex != nil {
					e.ex.setCur(e.ex.ti(t.s, i), ge.LabelID)
				}
				e.forEachMatch(tr.Label, tlID, ge.Label, ge.LabelID, th, func(th2 subst.Subst) bool {
					push(ge.To, to, th2, t, ge.Label, t.v)
					return true
				})
			}
		}
	}

	var maxBytes int64
	pops, nextHW := 0, 1
	for bi := range buckets {
		for len(buckets[bi]) > 0 {
			if e.opts.cxl.state() != cxlRunning {
				stats.ReachSize = seen.Len()
				stats.Substs = e.table.Len()
				stats.ResultPairs = len(pairs)
				var exRep *Explain
				if e.ex != nil {
					exRep = e.ex.report(q, g, opts.Algo, "nfa")
				}
				return nil, e.opts.cxl.interrupt(stats, exRep)
			}
			t := buckets[bi][len(buckets[bi])-1]
			buckets[bi] = buckets[bi][:len(buckets[bi])-1]
			processTriple(t)
			e.in.highWater(len(buckets[bi]), &nextHW)
			if e.ex != nil {
				e.ex.pop(len(buckets[bi]))
			}
			if pops++; pops&sampleMask == 0 {
				if e.in.gauges != nil {
					e.sample(len(buckets[bi]), seen.Len(), seen.Bytes())
				}
				e.progress("solve", int64(pops), int64(len(buckets[bi])), int64(seen.Len()))
			}
		}
		if opts.SCCOrder {
			// The component is finished: release its reach-set storage.
			if b := seen.Bytes(); b > maxBytes {
				maxBytes = b
			}
			for _, v := range comps[bi] {
				seen.Release(v)
				live -= int(perVertex[v])
				perVertex[v] = 0
			}
		}
	}
	if b := seen.Bytes(); b > maxBytes {
		maxBytes = b
	}

	if parents != nil {
		attachWitnesses(pairs, origins, func(t triple) (parentStep, bool) {
			ps, ok := parents[t]
			return ps, ok
		})
	}

	stats.ReachSize = seen.Len()
	stats.Substs = e.table.Len()
	stats.ResultPairs = len(pairs)
	stats.Bytes = maxBytes + e.table.Bytes() + e.memoBytes + mtsBytes +
		pairsBytes(len(pairs), q.Pars())
	if e.in.gauges != nil {
		e.sample(0, seen.Len(), seen.Bytes())
	}
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if e.ex != nil {
		res.Explain = e.ex.report(q, g, opts.Algo, "nfa")
	}
	return res, nil
}

// enumState is per-goroutine scratch for the enumeration algorithm's ground
// product-reachability pass: an epoch-tagged seen array plus a reused
// worklist and label-instantiation buffer. The epoch tag makes the
// per-substitution reset O(1) — a slot is visited iff it carries the
// current epoch — instead of clearing all |V|·|S| entries per enumerated
// substitution.
type enumState struct {
	seen  []uint32
	epoch uint32
	wl    []int64
	inst  []*label.CTerm
}

// enumEagerClear restores the old O(|V|·|S|) per-substitution clear; it
// exists only so BenchmarkEnumReset can measure the epoch counter's win.
var enumEagerClear = false

func newEnumState(g *graph.Graph, nfa *automata.NFA) (*enumState, error) {
	if err := checkDenseBase(g.NumVertices(), nfa.NumStates); err != nil {
		return nil, err
	}
	return &enumState{
		seen: make([]uint32, g.NumVertices()*nfa.NumStates),
		inst: make([]*label.CTerm, len(nfa.Labels)),
	}, nil
}

// bytes models the scratch footprint for the Table 3 memory accounting.
func (es *enumState) bytes() int64 { return int64(len(es.seen)) * 4 }

// reset prepares the seen array for the next substitution.
func (es *enumState) reset() {
	if enumEagerClear {
		for i := range es.seen {
			es.seen[i] = 0
		}
		es.epoch = 1
		return
	}
	if es.epoch++; es.epoch == 0 {
		// The 32-bit epoch wrapped: clear once and restart.
		for i := range es.seen {
			es.seen[i] = 0
		}
		es.epoch = 1
	}
}

// run instantiates the transition labels under th and performs the ground
// product reachability from ⟨v0, start⟩, marking final-state vertices in
// resHere. It updates stats.WorklistInserts/MatchCalls/PeakTriples (all
// deterministic: the pass depends only on th). ex, when non-nil, receives
// the per-state/per-transition/per-label profile of the pass. cxl, when
// armed, is polled every sampleMask+1 pops; run reports whether it finished
// (false = interrupted, resHere incomplete).
func (es *enumState) run(g *graph.Graph, v0 int32, nfa *automata.NFA, th subst.Subst, resHere map[int32]bool, stats *Stats, ex *explainCollector, cxl *canceler) bool {
	for i, tl := range nfa.Labels {
		if tl.HasParams() {
			es.inst[i], _ = tl.Instantiate(th)
		} else {
			es.inst[i] = tl
		}
	}
	es.reset()
	states := nfa.NumStates
	es.wl = es.wl[:0]
	p0 := packPair(v0, nfa.Start, states)
	es.wl = append(es.wl, p0)
	es.seen[p0] = es.epoch
	stats.WorklistInserts++
	live := 1
	pops := 0
	for len(es.wl) > 0 {
		if pops++; pops&sampleMask == 0 && cxl.state() != cxlRunning {
			return false
		}
		pair := es.wl[len(es.wl)-1]
		es.wl = es.wl[:len(es.wl)-1]
		v, s := unpackPair(pair, states)
		if ex != nil {
			ex.visit(s)
			ex.pop(len(es.wl))
		}
		if nfa.Final[s] {
			resHere[v] = true
		}
		for _, ge := range g.Out(v) {
			for i, tr := range nfa.Trans[s] {
				stats.MatchCalls++
				ok := label.MatchGround(es.inst[nfa.LabelID[tr.Label.Key()]], ge.Label, nil)
				if ex != nil {
					ex.setCur(ex.ti(s, i), ge.LabelID)
					ex.attempt(ok)
					if ok {
						ex.extend()
					}
				}
				if !ok {
					continue
				}
				np := packPair(ge.To, tr.To, states)
				if es.seen[np] != es.epoch {
					es.seen[np] = es.epoch
					es.wl = append(es.wl, np)
					stats.WorklistInserts++
					live++
				}
			}
		}
	}
	if live > stats.PeakTriples {
		stats.PeakTriples = live
	}
	return true
}

// existEnum is the enumeration algorithm: for every full substitution over
// the parameter domains, instantiate the pattern and run a parameter-free
// reachability product. Slower (work scales with |G| × substs) but with far
// smaller memory, per Section 4 ("Nondeterminism") and Table 3.
func existEnum(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	if opts.Compact {
		g = g.CompactFor(q.NFA.Labels)
	}
	var stats Stats
	stats.DeterminismOK = true
	nfa := q.NFA
	in := newInstr(opts)
	tDoms := in.phaseBegin("domains")
	doms := ComputeDomains(q, g, opts.Domains)
	stats.Phases.Domains.Wall = in.phaseEnd("domains", tDoms)
	stats.EnumSubsts = doms.Count()

	es, err := newEnumState(g, nfa)
	if err != nil {
		return nil, err
	}
	var ex *explainCollector
	if opts.Explain {
		ex = newExplainCollector(nfa, g.NumLabels())
	}
	var pairs []Pair
	var maxBytes int64

	enumerated := 0
	interrupted := false
	tEnum := in.phaseBegin("enumerate")
	subst.ForEachFull(q.Pars(), doms, func(th subst.Subst) bool {
		if opts.cxl.state() != cxlRunning {
			interrupted = true
			return false
		}
		if enumerated++; in.gauges != nil {
			in.gauges.EnumSubsts.Set(int64(enumerated))
			in.gauges.Sample(-1, int64(stats.WorklistInserts), -1, maxBytes)
		}
		if p := opts.Progress; p != nil {
			p(Progress{Phase: "enumerate", Pops: int64(stats.WorklistInserts),
				Reach: int64(stats.WorklistInserts), EnumSubsts: int64(enumerated), Workers: 1})
		}
		resHere := map[int32]bool{}
		if !es.run(g, v0, nfa, th, resHere, &stats, ex, opts.cxl) {
			interrupted = true
			return false
		}
		for v := range resHere {
			pairs = append(pairs, Pair{Vertex: v, Subst: th.Clone()})
		}
		if b := es.bytes() + int64(len(resHere))*16; b > maxBytes {
			maxBytes = b
		}
		return true
	})
	stats.Phases.Enumerate.Wall = in.phaseEnd("enumerate", tEnum)
	if interrupted {
		stats.ReachSize = stats.WorklistInserts
		stats.ResultPairs = len(pairs)
		stats.EnumSubsts = enumerated
		var exRep *Explain
		if ex != nil {
			ex.groundRuns = enumerated
			exRep = ex.report(q, g, opts.Algo, "nfa")
		}
		return nil, opts.cxl.interrupt(stats, exRep)
	}

	stats.ReachSize = stats.WorklistInserts
	stats.ResultPairs = len(pairs)
	stats.Bytes = maxBytes + pairsBytes(len(pairs), q.Pars())
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if ex != nil {
		ex.groundRuns = enumerated
		res.Explain = ex.report(q, g, opts.Algo, "nfa")
	}
	return res, nil
}
