package core

import (
	"errors"
	"fmt"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

func TestUnivDeterministicChain(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v2
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	for _, algo := range []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp} {
		res, err := Univ(g, g.Start(), q, Options{Algo: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got := map[string]bool{}
		for _, s := range pairsAsStrings(g, q, res) {
			got[s] = true
		}
		want := []string{"v0 {}", "v1 {x↦a}", "v2 {x↦a}"}
		if len(got) != len(want) {
			t.Fatalf("%v: result %v, want %v", algo, got, want)
		}
		for _, w := range want {
			if !got[w] {
				t.Fatalf("%v: missing %q in %v", algo, w, got)
			}
		}
		if !res.Stats.DeterminismOK {
			t.Fatalf("%v: determinism flag false on a deterministic query", algo)
		}
	}
}

func TestUnivMergeConflictExcludesVertex(t *testing.T) {
	// Two branches defining different variables merge at m: the matching
	// substitutions {x↦a} and {x↦b} conflict, so m has no universal answer.
	g := graph.MustReadString(`
start s
edge s def(a) m
edge s def(b) m
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	res, err := Univ(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if g.VertexName(p.Vertex) == "m" {
			t.Fatalf("m should be excluded (badsubst merge): %v", pairsAsStrings(g, q, res))
		}
	}
	// s itself (empty path) is an answer since the pattern accepts ε.
	if len(res.Pairs) != 1 || g.VertexName(res.Pairs[0].Vertex) != "s" {
		t.Fatalf("result: %v", pairsAsStrings(g, q, res))
	}
}

func TestUnivBadStateExcludes(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 use(a) v2
edge v2 def(a) v3
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	res, err := Univ(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range res.Pairs {
		names[g.VertexName(p.Vertex)] = true
	}
	if !names["v0"] || !names["v1"] {
		t.Fatalf("v0/v1 missing: %v", names)
	}
	if names["v2"] || names["v3"] {
		// v2 is reached through use(a), which no transition matches; v3
		// extends that path, so badstate must propagate.
		t.Fatalf("v2/v3 must be excluded via badstate: %v", names)
	}
}

func TestUnivNondeterminismDetected(t *testing.T) {
	// _* overlaps exp(x,op,y): the determinism condition fails as soon as
	// an exp edge is processed.
	g := graph.MustReadString(`
start s
edge s exp(a,plus,b) v1
`)
	q := MustCompile(pattern.MustParse("_* exp(x,op,y) (!(def(x)|def(y)))*"), g.U)
	_, err := Univ(g, g.Start(), q, Options{})
	if !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
	// use(x) vs use(y) under {x↦a, y↦a} (the paper's example of apparent
	// determinism) also trips the check.
	g2 := graph.MustReadString("start s\nedge s use(a) v1\n")
	q2 := MustCompile(pattern.MustParse("use(x) | use(y) use(y)"), g2.U)
	_, err = Univ(g2, g2.Start(), q2, Options{})
	if !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic for use(x)/use(y)", err)
	}
}

func TestUnivAvailableExpressionsHybrid(t *testing.T) {
	// Available expressions (Section 2.2): a+b is available at m only if
	// computed on every path and not killed.
	g := graph.MustReadString(`
start s
edge s exp(a,plus,b) p1
edge s exp(a,plus,b) p2
edge p1 def(c) m
edge p2 def(d) m
edge m def(a) k
`)
	q := MustCompile(pattern.MustParse("_* exp(x,op,y) (!(def(x)|def(y)))*"), g.U)
	for _, algo := range []Algo{AlgoHybrid, AlgoEnum} {
		res, err := Univ(g, g.Start(), q, Options{Algo: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		have := map[string]bool{}
		for _, s := range pairsAsStrings(g, q, res) {
			have[s] = true
		}
		if !have["m {x↦a, op↦plus, y↦b}"] {
			t.Fatalf("%v: a+b should be available at m: %v", algo, have)
		}
		for s := range have {
			if s[0] == 'k' {
				t.Fatalf("%v: a+b killed at k by def(a), but present: %v", algo, have)
			}
			if s[0] == 's' {
				t.Fatalf("%v: nothing available at the entry: %v", algo, have)
			}
		}
	}
}

func TestUnivConstantFoldingHybrid(t *testing.T) {
	// Constant folding (Section 2.2): on every path a is set to 5.
	g := graph.MustReadString(`
start s
edge s def(a,5) p1
edge s def(a,5) p2
edge p1 def(b,1) m
edge p2 def(b,2) m
edge m def(a,6) k
`)
	q := MustCompile(pattern.MustParse("_* def(x,c) (!(def(x)|def(x,_)))*"), g.U)
	res, err := Univ(g, g.Start(), q, Options{Algo: AlgoHybrid})
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, s := range pairsAsStrings(g, q, res) {
		have[s] = true
	}
	if !have["m {x↦a, c↦5}"] {
		t.Fatalf("a=5 should hold at m: %v", have)
	}
	if !have["k {x↦a, c↦6}"] {
		t.Fatalf("a=6 should hold at k: %v", have)
	}
	if have["k {x↦a, c↦5}"] {
		t.Fatalf("a=5 must be killed at k: %v", have)
	}
	// b is not constant at m (1 on one path, 2 on the other).
	if have["m {x↦b, c↦1}"] || have["m {x↦b, c↦2}"] {
		t.Fatalf("b must not be constant at m: %v", have)
	}
}

func TestUnivEnumHybridAgree(t *testing.T) {
	graphs := []string{
		`start s
edge s exp(a,plus,b) p1
edge s exp(a,plus,b) p2
edge p1 def(c) m
edge p2 def(d) m`,
		`start v0
edge v0 def(a) v1
edge v1 def(b) v2
edge v2 use(a) v1`,
	}
	pats := []string{
		"_* exp(x,op,y) (!(def(x)|def(y)))*",
		"_* def(x) _*",
		"def(x)* use(y)?",
	}
	for gi, gs := range graphs {
		g := graph.MustReadString(gs)
		for _, pat := range pats {
			q := MustCompile(pattern.MustParse(pat), g.U)
			en, err := Univ(g, g.Start(), q, Options{Algo: AlgoEnum})
			if err != nil {
				t.Fatal(err)
			}
			hy, err := Univ(g, g.Start(), q, Options{Algo: AlgoHybrid})
			if err != nil {
				t.Fatal(err)
			}
			es := fmt.Sprint(pairsAsStrings(g, q, en))
			hs := fmt.Sprint(pairsAsStrings(g, q, hy))
			if es != hs {
				t.Errorf("graph %d %q: enum %s != hybrid %s", gi, pat, es, hs)
			}
		}
	}
}

func TestUnivDirectAgreesWithHybridViaExpansion(t *testing.T) {
	// On determinism-respecting queries, expanding the direct algorithm's
	// minimal substitutions over the domains must equal the hybrid/enum
	// full-substitution answer set.
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v2
edge v0 def(a) v2
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	doms := ComputeDomains(q, g, DomainsRefined)
	direct, err := Univ(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Univ(g, g.Start(), q, Options{Algo: AlgoHybrid})
	if err != nil {
		t.Fatal(err)
	}
	de := expand(direct, doms, q.Pars())
	he := expand(hy, doms, q.Pars())
	if len(de) != len(he) {
		t.Fatalf("expanded sizes differ: direct %d hybrid %d\n%v\n%v", len(de), len(he), de, he)
	}
	for k := range de {
		if !he[k] {
			t.Fatalf("hybrid missing %s", k)
		}
	}
}

func TestUnivLockingDiscipline(t *testing.T) {
	// Locking discipline (Section 2.2): x protected by l on all paths.
	g := graph.MustReadString(`
start s
edge s acq(l1) a
edge a access(v) b
edge b rel(l1) c
edge c acq(l1) d
edge d access(v) e
edge e rel(l1) f
`)
	q := MustCompile(pattern.MustParse("((!access(x))* acq(l) (!rel(l))*)*"), g.U)
	res, err := Univ(g, g.Start(), q, Options{Algo: AlgoHybrid})
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, s := range pairsAsStrings(g, q, res) {
		have[s] = true
	}
	// At e (just after the second access, lock held) v is protected by l1.
	if !have["e {x↦v, l↦l1}"] {
		t.Fatalf("v should be protected by l1 at e: %v", have)
	}
	// Strictly, the pattern cannot consume a trailing rel(l): a star
	// iteration only completes after an acq, so c and f (right after the
	// releases) do not match — the paper's prose glosses over this.
	if have["c {x↦v, l↦l1}"] || have["f {x↦v, l↦l1}"] {
		t.Fatalf("post-release vertices should not match: %v", have)
	}
	if !have["d {x↦v, l↦l1}"] {
		t.Fatalf("d (after re-acquire) should match: %v", have)
	}
}

func TestUnivOptionsValidation(t *testing.T) {
	g := graph.MustReadString("start s\nedge s f() a\n")
	q := MustCompile(pattern.MustParse("f()"), g.U)
	if _, err := Univ(g, g.Start(), q, Options{Compact: true}); err == nil {
		t.Fatal("compaction accepted for a universal query")
	}
	if _, err := Univ(g, -3, q, Options{}); err == nil {
		t.Fatal("bad start vertex accepted")
	}
}

func TestUnivTableKindsAgree(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v2
edge v0 def(a) v2
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	a, err := Univ(g, g.Start(), q, Options{Table: subst.Hash})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Univ(g, g.Start(), q, Options{Table: subst.Nested})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pairsAsStrings(g, q, a)) != fmt.Sprint(pairsAsStrings(g, q, b)) {
		t.Fatalf("table kinds disagree")
	}
}
