package core

import (
	"fmt"
	"math"
	"strings"

	"rpq/internal/graph"
)

// Estimate reports the quantities of the paper's complexity analysis
// (Figure 2) for a query against a graph, together with the worst-case
// running-time formulas of Sections 3 and 4 evaluated on them. Section 5.3
// describes this as the framework's practical payoff: "our complexity
// analysis result corresponds to a formula that gives the worst-case
// asymptotic running time and space usage for evaluating the query", with
// per-parameter domain sizes refining the symbs^pars bound.
type Estimate struct {
	// Figure 2 quantities.
	Verts       int // vertices in G
	States      int // states in P (the NFA)
	DFAStates   int // states after opaque determinization (universal)
	Symbs       int // symbols parameters can be instantiated to
	Pars        int // parameters in P
	LabelSize   int // maximum label size
	EdgeLabels  int // distinct edge labels in G
	TransLabels int // distinct transition labels in P
	LabelPars   int // maximum parameters in one transition label
	GraphEdges  int // |G|
	PatternSize int // |P| (transitions)

	// SubstsBound is the symbs^pars bound on substitutions; with refined
	// domains it is the product of the per-parameter domain sizes
	// (Section 5.3). Saturates at math.MaxInt64.
	SubstsBound float64
	// DomainSizes lists the refined per-parameter domain sizes.
	DomainSizes []int

	// Worst-case time bounds (up to constant factors), evaluated:
	//   basic:  |G| × |P| × substs × (labelsize + pars)
	//   memo:   |G| × |P| × labelsize + |G| × |P| × substs × pars
	//   enum:   |G| × |P| × substs (per-substitution ground passes)
	BasicTimeBound float64
	MemoTimeBound  float64
	EnumTimeBound  float64
}

// EstimateQuery computes the report. The domains mode picks between the
// symbs^pars bound (AllSymbols) and the refined per-domain product.
func EstimateQuery(q *Query, g *graph.Graph, mode DomainMode) Estimate {
	nfa := q.NFA
	e := Estimate{
		Verts:       g.NumVertices(),
		States:      nfa.NumStates,
		Symbs:       g.U.NumSymbols(),
		Pars:        q.Pars(),
		LabelSize:   nfa.MaxLabelSize(),
		EdgeLabels:  g.NumLabels(),
		TransLabels: len(nfa.Labels),
		GraphEdges:  g.NumEdges(),
		PatternSize: nfa.NumTrans(),
	}
	for _, el := range g.Labels() {
		if s := el.Size(); s > e.LabelSize {
			e.LabelSize = s
		}
	}
	for _, tl := range nfa.Labels {
		if lp := len(tl.Params()); lp > e.LabelPars {
			e.LabelPars = lp
		}
	}
	e.DFAStates = q.DFA().NumStates
	doms := ComputeDomains(q, g, mode)
	e.SubstsBound = 1
	for _, d := range doms {
		e.DomainSizes = append(e.DomainSizes, len(d))
		e.SubstsBound *= float64(len(d))
	}
	if math.IsInf(e.SubstsBound, 0) {
		e.SubstsBound = math.MaxInt64
	}
	ge, pe := float64(e.GraphEdges), float64(e.PatternSize)
	e.BasicTimeBound = ge * pe * (e.SubstsBound + 1) * float64(e.LabelSize+e.Pars)
	e.MemoTimeBound = ge*pe*float64(e.LabelSize) + ge*pe*(e.SubstsBound+1)*float64(e.Pars)
	e.EnumTimeBound = ge * pe * (e.SubstsBound + 1)
	return e
}

// String renders the report.
func (e Estimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: %d vertices, %d edges, %d distinct labels, %d symbols\n",
		e.Verts, e.GraphEdges, e.EdgeLabels, e.Symbs)
	fmt.Fprintf(&b, "pattern: %d states, %d transitions, %d distinct labels, labelsize %d\n",
		e.States, e.PatternSize, e.TransLabels, e.LabelSize)
	fmt.Fprintf(&b, "parameters: %d (max %d per label), domain sizes %v, substs ≤ %.3g\n",
		e.Pars, e.LabelPars, e.DomainSizes, e.SubstsBound)
	fmt.Fprintf(&b, "time bounds: basic %.3g, memoized %.3g, enumeration %.3g\n",
		e.BasicTimeBound, e.MemoTimeBound, e.EnumTimeBound)
	return b.String()
}

// Advise inspects a query and reports formulation warnings drawn from the
// paper's Section 5.1 experience summary ("queries that bind parameters
// positively before negations are much faster than queries that don't",
// etc.). Each string is one finding; an empty slice means no advice.
func Advise(q *Query) []string {
	var out []string
	nfa := q.NFA

	// Parameters that can be reached under a negation before any positive
	// binding: approximate by checking, per state reachable from the start
	// through labels that do not bind p positively, whether a label with p
	// under negation occurs. A cheap conservative version: does any label
	// on a transition out of the start's forward closure carry p negated
	// while no label on any path before it binds p positively? We
	// approximate with a whole-pattern check: p occurs under a negation in
	// some label, and the first occurrence (in automaton BFS order from
	// the start) is negated.
	type occ struct {
		positive bool
		found    bool
	}
	first := make([]occ, q.Pars())
	// BFS over states, scanning transition labels in order.
	seen := make([]bool, nfa.NumStates)
	queue := []int32{nfa.Start}
	seen[nfa.Start] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		// Transitions out of one state are alternatives: if a parameter
		// occurs negated on any of them it can be reached unbound, even if
		// a sibling transition binds it positively.
		pos := map[int32]bool{}
		neg := map[int32]bool{}
		for _, tr := range nfa.Trans[s] {
			tl := tr.Label
			posHere := map[int32]bool{}
			tl.PositivePositions(func(p, ctor int32, arg int) { posHere[p] = true })
			tl.AllPositions(func(p, ctor int32, arg int) {
				if !posHere[p] {
					neg[p] = true
				}
			})
			for p := range posHere {
				pos[p] = true
			}
			if !seen[tr.To] {
				seen[tr.To] = true
				queue = append(queue, tr.To)
			}
		}
		for p := range neg {
			if !first[p].found {
				first[p] = occ{positive: false, found: true}
			}
		}
		for p := range pos {
			if !first[p].found {
				first[p] = occ{positive: true, found: true}
			}
		}
	}
	for p := 0; p < q.Pars(); p++ {
		if first[p].found && !first[p].positive {
			out = append(out, fmt.Sprintf(
				"parameter %s can be reached under a negation before any positive binding; "+
					"the solver will enumerate its domain there — consider the backward "+
					"formulation that binds it first (Section 5.1)", q.PS.Name(int32(p))))
		}
	}
	for _, tl := range nfa.Labels {
		if !tl.ADCompatible() {
			out = append(out, fmt.Sprintf(
				"label %s has multiple or nested parameter-carrying negations; it falls "+
					"outside the agree/disagree fragment and uses the generic "+
					"extension-enumerating matcher (Section 3)", tl.Format(q.U, q.PS)))
		}
		if tl.NumNegWithParams() > 0 && len(tl.Params()) > 2 {
			out = append(out, fmt.Sprintf(
				"label %s combines %d parameters with negation; the 2^labelpars factor of "+
					"Section 3 applies", tl.Format(q.U, q.PS), len(tl.Params())))
		}
	}
	return out
}
