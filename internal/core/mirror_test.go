package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

func TestMirrorBasics(t *testing.T) {
	cases := [][2]string{
		{"def(x) use(x)", "use(x) def(x)"},
		{"a() (b() c())* d()", "d() ((c() b()))* a()"},
		{"eps", "eps"},
		{"def(x)*", "(def(x))*"},
		{"a() | b() c()", "a() | c() b()"},
	}
	for _, c := range cases {
		m := pattern.Mirror(pattern.MustParse(c[0]))
		want := pattern.MustParse(c[1])
		if !pattern.Equal(m, want) {
			t.Errorf("Mirror(%s) = %s, want %s", c[0], pattern.String(m), pattern.String(want))
		}
		// Involution.
		if !pattern.Equal(pattern.Mirror(m), pattern.MustParse(c[0])) {
			t.Errorf("Mirror is not an involution on %s", c[0])
		}
	}
}

// TestMirrorCorrespondence checks the forward/backward correspondence of
// Section 5.1's conversion: (v, θ) ∈ Exist(G, v0, P) iff
// (v0, θ) ∈ Exist(reverse(G), v, Mirror(P)).
func TestMirrorCorrespondence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	labels := []string{"def(a)", "def(b)", "use(a)", "use(b)", "f()"}
	pats := []string{
		"(!def(x))* use(x)",
		"_* def(x) _* use(y)",
		"def(x)* use(x)",
		"(def(x)|use(x))+",
	}
	for trial := 0; trial < 30; trial++ {
		g := graph.New()
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.Vertex(fmt.Sprintf("v%d", i))
		}
		g.SetStart(0)
		for i := 0; i < 2*n; i++ {
			lbl := label.MustParse(labels[rng.Intn(len(labels))], label.GroundMode)
			_ = g.AddEdge(int32(rng.Intn(n)), lbl, int32(rng.Intn(n)))
		}
		r := g.Reverse()

		ps := pats[rng.Intn(len(pats))]
		e := pattern.MustParse(ps)
		q := MustCompile(e, g.U)
		fwd, err := Exist(g, g.Start(), q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		doms := ComputeDomains(q, g, DomainsRefined)
		fwdSet := expand(fwd, doms, q.Pars())

		qm := MustCompile(pattern.Mirror(e), r.U)
		// Parameters intern in order of appearance, which mirroring
		// permutes; remap the mirrored query's indices onto the forward
		// query's.
		remap := make([]int32, qm.Pars())
		for i := range remap {
			idx, ok := q.PS.Lookup(qm.PS.Name(int32(i)))
			if !ok {
				t.Fatalf("parameter %s lost by mirroring", qm.PS.Name(int32(i)))
			}
			remap[i] = idx
		}
		// Collect, over every possible end vertex v, the pairs (v, θ) whose
		// mirrored backward query from v reaches v0.
		bwdSet := map[string]bool{}
		for v := 0; v < g.NumVertices(); v++ {
			res, err := Exist(r, int32(v), qm, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range res.Pairs {
				if p.Vertex != g.Start() {
					continue
				}
				mapped := subst.New(q.Pars())
				for i, val := range p.Subst {
					mapped[remap[i]] = val
				}
				subst.ForEachExtension(mapped, subst.AllParams(q.Pars()), doms, func(th subst.Subst) bool {
					bwdSet[fmt.Sprintf("%d%s", v, th.String())] = true
					return true
				})
			}
		}
		if len(fwdSet) != len(bwdSet) {
			t.Fatalf("trial %d %q: forward %d answers, mirrored backward %d\ngraph:\n%s",
				trial, ps, len(fwdSet), len(bwdSet), g.String())
		}
		for k := range fwdSet {
			if !bwdSet[k] {
				t.Fatalf("trial %d %q: mirrored backward missing %s", trial, ps, k)
			}
		}
	}
}
