package core

import (
	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/subst"
)

// groundUniv answers the universal query for one full substitution th: the
// instantiated pattern is exactly determinized over the graph's edge-label
// alphabet, so determinism holds by construction and a single product
// reachability pass suffices. Returns the vertices v (reachable from v0)
// such that every path from v0 to v is accepted.
//
// When ex is non-nil, each ground-DFA pop is attributed back to the NFA
// states of its subset (d.Sets), so the enumeration/hybrid profiles live in
// the same state space as the other variants; per-transition counters stay
// zero (the match work happened inside DeterminizeGround), and the label
// histogram records one attempt per scanned edge with a hit when the step
// stays out of the badstate.
func groundUniv(g *graph.Graph, v0 int32, q *Query, th subst.Subst, stats *Stats, ex *explainCollector, cxl *canceler) []int32 {
	d := automata.DeterminizeGround(q.NFA, g.Labels(), th)
	states := int32(d.NumStates)
	bad := states
	stride := int(states) + 1
	if ex != nil {
		ex.groundRuns++
	}

	// allFinal: 0 unseen, 1 every visited automaton state final, 2 broken.
	allFinal := make([]int8, g.NumVertices())
	seen := make([]bool, g.NumVertices()*stride)
	wl := []int64{packPair(v0, d.Start, stride)}
	seen[wl[0]] = true
	stats.WorklistInserts++
	pops := 0
	for len(wl) > 0 {
		// Interrupted passes return nil; the enumeration callers observe the
		// flag themselves and stop with a partial result.
		if pops++; pops&sampleMask == 0 && cxl.state() != cxlRunning {
			return nil
		}
		pair := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		v, qs := unpackPair(pair, stride)
		if ex != nil {
			ex.groundPop()
			ex.pop(len(wl))
			if qs == bad {
				ex.visit(int32(q.NFA.NumStates))
			} else {
				for _, ns := range d.Sets[qs] {
					ex.visit(ns)
				}
			}
		}
		fin := qs != bad && d.Final[qs]
		switch {
		case allFinal[v] == 0:
			if fin {
				allFinal[v] = 1
			} else {
				allFinal[v] = 2
			}
		case allFinal[v] == 1 && !fin:
			allFinal[v] = 2
		}
		for _, ge := range g.Out(v) {
			next := bad
			if qs != bad {
				if t := d.Step(qs, ge.LabelID); t >= 0 {
					next = t
				}
				if ex != nil {
					ex.setCur(-1, ge.LabelID)
					ex.attempt(next != bad)
				}
			}
			np := packPair(ge.To, next, stride)
			if !seen[np] {
				seen[np] = true
				wl = append(wl, np)
				stats.WorklistInserts++
			}
		}
	}
	if b := int64(len(seen)) + int64(d.NumStates*d.NumLetters)*4; b > stats.Bytes {
		stats.Bytes = b
	}
	var out []int32
	for v := 0; v < g.NumVertices(); v++ {
		if allFinal[v] == 1 {
			out = append(out, int32(v))
		}
	}
	return out
}

// univEnum is the enumeration algorithm of Section 4: a parameter-free
// universal query per full substitution over the parameter domains. Time
// O(|G| × maxTrans × substs); space as small as a single ground run.
func univEnum(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	var stats Stats
	stats.DeterminismOK = true
	in := newInstr(opts)
	tDoms := in.phaseBegin("domains")
	doms := ComputeDomains(q, g, opts.Domains)
	stats.Phases.Domains.Wall = in.phaseEnd("domains", tDoms)
	stats.EnumSubsts = doms.Count()
	var ex *explainCollector
	if opts.Explain {
		ex = newExplainCollector(q.NFA, g.NumLabels())
	}
	var pairs []Pair
	enumerated := 0
	tEnum := in.phaseBegin("enumerate")
	subst.ForEachFull(q.Pars(), doms, func(th subst.Subst) bool {
		if opts.cxl.state() != cxlRunning {
			return false
		}
		if enumerated++; in.gauges != nil {
			in.gauges.EnumSubsts.Set(int64(enumerated))
			in.gauges.Sample(-1, int64(stats.WorklistInserts), -1, stats.Bytes)
		}
		if p := opts.Progress; p != nil {
			p(Progress{Phase: "enumerate", Reach: int64(stats.WorklistInserts),
				EnumSubsts: int64(enumerated), Workers: 1})
		}
		for _, v := range groundUniv(g, v0, q, th, &stats, ex, opts.cxl) {
			pairs = append(pairs, Pair{Vertex: v, Subst: th.Clone()})
		}
		return true
	})
	stats.Phases.Enumerate.Wall = in.phaseEnd("enumerate", tEnum)
	if opts.cxl.state() != cxlRunning {
		stats.ReachSize = stats.WorklistInserts
		stats.ResultPairs = len(pairs)
		stats.EnumSubsts = enumerated
		var exRep *Explain
		if ex != nil {
			exRep = ex.report(q, g, opts.Algo, "nfa")
		}
		return nil, opts.cxl.interrupt(stats, exRep)
	}
	stats.ResultPairs = len(pairs)
	stats.ReachSize = stats.WorklistInserts
	stats.Bytes += pairsBytes(len(pairs), q.Pars())
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if ex != nil {
		res.Explain = ex.report(q, g, opts.Algo, "nfa")
	}
	return res, nil
}

// univHybrid refines enumeration (Section 4): an existential query first
// computes the substitutions involved in matching on some path; only full
// extensions of those are enumerated for the ground universal passes. The
// idea is also used by de Moor et al.
func univHybrid(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	exOpts := opts
	exOpts.Algo = AlgoMemo
	ex, err := Exist(g, v0, q, exOpts)
	if err != nil {
		return nil, err
	}
	var stats Stats
	stats.DeterminismOK = true
	stats.WorklistInserts = ex.Stats.WorklistInserts
	stats.MatchCalls = ex.Stats.MatchCalls
	stats.MatchCacheHits = ex.Stats.MatchCacheHits
	stats.MatchCacheMisses = ex.Stats.MatchCacheMisses
	stats.MergeCalls = ex.Stats.MergeCalls
	stats.Bytes = ex.Stats.Bytes

	in := newInstr(opts)
	tDoms := in.phaseBegin("domains")
	doms := ComputeDomains(q, g, opts.Domains)
	stats.Phases.Domains.Wall = in.phaseEnd("domains", tDoms)
	// Deduplicate candidate full substitutions across all existential
	// result substitutions.
	cand, err := subst.NewTable(subst.Hash, q.Pars(), g.U.NumSymbols())
	if err != nil {
		return nil, err
	}
	var order []int32
	seenPartial := map[string]bool{}
	for _, p := range ex.Pairs {
		if opts.cxl.state() != cxlRunning {
			break
		}
		pk := p.Subst.String()
		if seenPartial[pk] {
			continue
		}
		seenPartial[pk] = true
		subst.ForEachExtension(p.Subst, subst.AllParams(q.Pars()), doms, func(th subst.Subst) bool {
			if _, ok := cand.Lookup(th); !ok {
				order = append(order, cand.Key(th))
			}
			return true
		})
	}
	stats.EnumSubsts = len(order)
	// gc profiles the ground passes; the inner existential profile (same NFA
	// state space) is absorbed into its report below.
	var gc *explainCollector
	if opts.Explain {
		gc = newExplainCollector(q.NFA, g.NumLabels())
	}
	var pairs []Pair
	ground := 0
	tEnum := in.phaseBegin("enumerate")
	for i, key := range order {
		if opts.cxl.state() != cxlRunning {
			break
		}
		ground = i + 1
		if in.gauges != nil {
			in.gauges.EnumSubsts.Set(int64(i + 1))
			in.gauges.Sample(-1, int64(stats.WorklistInserts), int64(cand.Len()), stats.Bytes)
		}
		if p := opts.Progress; p != nil {
			p(Progress{Phase: "enumerate", Reach: int64(stats.WorklistInserts),
				Substs: int64(cand.Len()), EnumSubsts: int64(i + 1), Workers: 1})
		}
		th := cand.Get(key)
		for _, v := range groundUniv(g, v0, q, th, &stats, gc, opts.cxl) {
			pairs = append(pairs, Pair{Vertex: v, Subst: th.Clone()})
		}
	}
	stats.Phases.Enumerate.Wall = in.phaseEnd("enumerate", tEnum)
	if opts.cxl.state() != cxlRunning {
		stats.ReachSize = stats.WorklistInserts
		stats.ResultPairs = len(pairs)
		stats.EnumSubsts = ground
		var exRep *Explain
		if gc != nil {
			exRep = gc.report(q, g, opts.Algo, "nfa")
			exRep.absorb(ex.Explain)
		}
		return nil, opts.cxl.interrupt(stats, exRep)
	}
	stats.ResultPairs = len(pairs)
	stats.ReachSize = stats.WorklistInserts
	stats.Bytes += cand.Bytes() + pairsBytes(len(pairs), q.Pars())
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if gc != nil {
		rep := gc.report(q, g, opts.Algo, "nfa")
		rep.absorb(ex.Explain)
		res.Explain = rep
	}
	return res, nil
}
