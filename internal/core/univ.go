package core

import (
	"context"
	"errors"
	"fmt"

	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/subst"
)

// Univ solves the universal query of Section 4: compute all pairs ⟨v, θ⟩
// such that there is a path from v0 to v and every path from v0 to v matches
// some sentence accepted by the pattern under θ.
//
// The basic/memo/precomputation algorithms require the determinism condition
// and return ErrNondeterministic when the runtime check fails; AlgoEnum and
// AlgoHybrid always apply. The direct algorithms return one (minimal merged)
// substitution per vertex; the enumeration-based ones return full
// substitutions over the parameter domains.
func Univ(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	return UnivContext(context.Background(), g, v0, q, opts)
}

// UnivContext is Univ bounded by a context (and Options.Deadline): when
// either fires, the run stops at the next check and returns an
// InterruptError wrapping ErrCanceled or ErrDeadline with the statistics
// (and, under Options.Explain, the profile) accumulated so far. The hybrid
// algorithm threads the same watcher through its inner existential pass.
func UnivContext(ctx context.Context, g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	if int(v0) >= g.NumVertices() || v0 < 0 {
		return nil, fmt.Errorf("core: start vertex %d out of range", v0)
	}
	if opts.Compact {
		return nil, fmt.Errorf("core: compaction is unsound for universal queries")
	}
	if opts.cxl == nil {
		if opts.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
			defer cancel()
		}
		cxl, release := newCanceler(ctx)
		defer release()
		opts.cxl = cxl
	}
	in := newInstr(opts)
	in.span("compile", q.CompileWall)
	a0 := in.allocSnapshot()
	t0 := in.phaseBegin("solve")
	var res *Result
	var err error
	switch opts.Algo {
	case AlgoBasic, AlgoMemo, AlgoPrecomp:
		res, err = univWorklist(g, v0, q, opts)
	case AlgoEnum:
		res, err = univEnum(g, v0, q, opts)
	case AlgoHybrid:
		res, err = univHybrid(g, v0, q, opts)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opts.Algo)
	}
	if err != nil {
		// Close the phase and flush buffered trace events so a failing run
		// (e.g. a determinism-check abort) still yields a parseable trace.
		// Interrupted runs get their phase walls stamped into the partial
		// stats.
		d := in.phaseEnd("solve", t0)
		var ie *InterruptError
		if errors.As(err, &ie) {
			ie.Stats.Phases.Solve.Wall = d
			ie.Stats.Phases.Compile.Wall = q.BuildWall()
		}
		in.flush()
		return nil, err
	}
	res.Stats.Phases.Solve.Wall = in.phaseEnd("solve", t0)
	if a1 := in.allocSnapshot(); a1 > a0 {
		res.Stats.Phases.Solve.AllocBytes = int64(a1 - a0)
	}
	res.Stats.Phases.Compile.Wall = q.BuildWall()
	in.finish(&res.Stats)
	return res, nil
}

// dsEntry is one element of the determinism-and-substitution map M_ds,
// keyed by (edge label id, state): a match from that state's transitions.
type dsEntry struct {
	s1 int32
	m  *label.Match // nil for generic labels
	tl *label.CTerm
	// ti attributes the entry's solve-time work to the originating DFA
	// transition in the explain profile; meaningful only when explaining.
	ti int32
}

// univWorklist is pseudo-code (6) with the memoization/precomputation
// variants folded in. The automaton is the opaque-label determinization of
// the pattern; the badstate is represented as state index dfa.NumStates and
// badsubst as substitution key badSubstKey.
func univWorklist(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	var stats Stats
	stats.DeterminismOK = true
	dfa := q.DFA()
	switch opts.Completion {
	case CompleteTrap:
		dfa = automata.Complete(dfa)
	case CompleteExplicit:
		for _, tl := range dfa.Labels {
			if tl.HasParams() {
				return nil, fmt.Errorf("core: explicit completion requires a parameter-free pattern")
			}
		}
		dfa = automata.CompleteExplicit(dfa, g.Labels())
	}
	states := dfa.NumStates
	badstate := int32(states)
	e, err := newEngine(g, q, dfa, opts, &stats)
	if err != nil {
		return nil, err
	}

	seen, err := newTripleSet(opts.Table, g.NumVertices(), states+1)
	if err != nil {
		return nil, err
	}
	var work []triple
	push := func(v, s int32, key int32) {
		t := triple{v: v, s: s, th: key}
		if seen.Add(t) {
			work = append(work, t)
			stats.WorklistInserts++
			if live := seen.Len(); live > stats.PeakTriples {
				stats.PeakTriples = live
			}
		}
	}
	push(v0, dfa.Start, e.internEmpty())

	// M_ds, computed lazily per (edge label, state) pair: the matching
	// transitions of s against that label. Storing it off the label rather
	// than the edge is equivalent (match depends only on the label) and
	// smaller.
	var mds [][][]dsEntry // [labelID][state] -> entries
	var mdsBytes int64
	if opts.Algo == AlgoPrecomp {
		mds = make([][][]dsEntry, g.NumLabels())
		mdsBytes = int64(g.NumLabels()) * 24
	}
	lookupDS := func(el *label.CTerm, elID int32, s int32) []dsEntry {
		row := mds[elID]
		if row == nil {
			row = make([][]dsEntry, states)
			mds[elID] = row
			mdsBytes += int64(states) * 24
		}
		if row[s] == nil {
			entries := []dsEntry{}
			for i, tr := range dfa.Trans[s] {
				tlID := dfa.LabelID[tr.Label.Key()]
				var ti int32
				if e.ex != nil {
					ti = e.ex.ti(s, i)
					e.ex.setCur(ti, elID)
				}
				m := e.possiblyMatches(tr.Label, tlID, el, elID)
				if m == nil {
					continue
				}
				de := dsEntry{s1: tr.To, tl: tr.Label, ti: ti}
				if tr.Label.ADCompatible() {
					de.m = m
				}
				entries = append(entries, de)
				mdsBytes += 32
			}
			row[s] = entries
		}
		return row[s]
	}

	// T: 0 undefined, 1 all-final so far, 2 some non-final.
	T := make([]int8, g.NumVertices())
	U := make([]subst.Subst, g.NumVertices())
	badU := make([]bool, g.NumVertices())

	var detErr error
	pops, nextHW := 0, 1
	for len(work) > 0 && detErr == nil {
		if e.opts.cxl.state() != cxlRunning {
			stats.ReachSize = seen.Len()
			stats.Substs = e.table.Len()
			var exRep *Explain
			if e.ex != nil {
				exRep = e.ex.report(q, g, opts.Algo, "dfa")
			}
			return nil, e.opts.cxl.interrupt(stats, exRep)
		}
		t := work[len(work)-1]
		work = work[:len(work)-1]
		e.in.highWater(len(work), &nextHW)
		if e.ex != nil {
			e.ex.visit(t.s)
			e.ex.pop(len(work))
		}
		if pops++; pops&sampleMask == 0 {
			if e.in.gauges != nil {
				e.sample(len(work), seen.Len(), seen.Bytes())
			}
			e.progress("solve", int64(pops), int64(len(work)), int64(seen.Len()))
		}

		// Successor generation with the determinism check.
		if t.s == badstate {
			// Rule (iv) with no transitions: badstate propagates.
			for _, ge := range g.Out(t.v) {
				push(ge.To, badstate, badSubstKey)
			}
		} else {
			th := e.table.Get(t.th)
			for _, ge := range g.Out(t.v) {
				matched := false
				var curTarget, mpState, mpKey int32
				emit := func(th2 subst.Subst) bool {
					key := e.table.Key(th2)
					if !matched {
						matched = true
						mpState, mpKey = curTarget, key
						push(ge.To, mpState, key)
						return true
					}
					if curTarget != mpState || key != mpKey {
						detErr = ErrNondeterministic
						return false
					}
					return true
				}
				ok := true
				if opts.Algo == AlgoPrecomp {
					for _, de := range lookupDS(ge.Label, ge.LabelID, t.s) {
						curTarget = de.s1
						if e.ex != nil {
							e.ex.setCur(de.ti, ge.LabelID)
						}
						if de.m != nil {
							ok = e.applyMatch(de.m, th, emit)
						} else {
							ok = e.forEachGeneric(de.tl, ge.Label, th, emit)
						}
						if !ok {
							break
						}
					}
				} else {
					for i, tr := range dfa.Trans[t.s] {
						tlID := dfa.LabelID[tr.Label.Key()]
						curTarget = tr.To
						if e.ex != nil {
							e.ex.setCur(e.ex.ti(t.s, i), ge.LabelID)
						}
						ok = e.forEachMatch(tr.Label, tlID, ge.Label, ge.LabelID, th, emit)
						if !ok {
							break
						}
					}
				}
				if !ok {
					break
				}
				if !matched {
					// Rules (iii)/(iv): no transition matches this edge.
					push(ge.To, badstate, badSubstKey)
				}
			}
		}
		if detErr != nil {
			break
		}

		// Result bookkeeping: the T and U updates of pseudo-code (6).
		v := t.v
		sFinal := t.s != badstate && dfa.Final[t.s]
		if T[v] == 0 || T[v] == 1 {
			if sFinal {
				T[v] = 1
			} else {
				T[v] = 2
			}
		}
		if T[v] == 1 {
			th := e.table.Get(t.th)
			if badU[v] {
				// stays bad
			} else if U[v] == nil {
				U[v] = th.Clone()
			} else {
				e.stats.MergeCalls++
				merged, ok := subst.Merge(U[v], th)
				if !ok {
					badU[v] = true
					U[v] = nil
				} else {
					U[v] = merged
				}
			}
		} else {
			badU[v] = true
			U[v] = nil
		}
	}
	if detErr != nil {
		stats.DeterminismOK = false
		return nil, detErr
	}

	var pairs []Pair
	for v := 0; v < g.NumVertices(); v++ {
		if T[v] == 1 && !badU[v] && U[v] != nil {
			pairs = append(pairs, Pair{Vertex: int32(v), Subst: U[v]})
		}
	}
	stats.ReachSize = seen.Len()
	stats.Substs = e.table.Len()
	stats.ResultPairs = len(pairs)
	stats.Bytes = seen.Bytes() + e.table.Bytes() + e.memoBytes + mdsBytes +
		int64(g.NumVertices())*(1+24+1) + pairsBytes(len(pairs), q.Pars())
	if e.in.gauges != nil {
		e.sample(0, seen.Len(), seen.Bytes())
	}
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if e.ex != nil {
		res.Explain = e.ex.report(q, g, opts.Algo, "dfa")
	}
	return res, nil
}
