package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

func TestTripleSetBasics(t *testing.T) {
	for _, kind := range []subst.TableKind{subst.Hash, subst.Nested} {
		t.Run(kind.String(), func(t *testing.T) {
			ts, err := newTripleSet(kind, 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			a := triple{v: 1, s: 2, th: 0}
			if !ts.Add(a) {
				t.Fatal("first Add returned false")
			}
			if ts.Add(a) {
				t.Fatal("duplicate Add returned true")
			}
			if !ts.Add(triple{v: 1, s: 2, th: 1}) || !ts.Add(triple{v: 1, s: 1, th: 0}) {
				t.Fatal("distinct triples rejected")
			}
			// badsubst key is representable.
			if !ts.Add(triple{v: 0, s: 0, th: badSubstKey}) {
				t.Fatal("badsubst triple rejected")
			}
			if ts.Add(triple{v: 0, s: 0, th: badSubstKey}) {
				t.Fatal("duplicate badsubst accepted")
			}
			if ts.Len() != 4 {
				t.Fatalf("Len = %d, want 4", ts.Len())
			}
			if ts.Bytes() <= 0 {
				t.Fatalf("Bytes = %d", ts.Bytes())
			}
			before := ts.Bytes()
			ts.Release(1)
			if ts.Bytes() >= before {
				t.Fatalf("Release did not reduce Bytes: %d >= %d", ts.Bytes(), before)
			}
			// Len is unchanged by Release (it counts inserts, not storage).
			if ts.Len() != 4 {
				t.Fatalf("Len after Release = %d", ts.Len())
			}
		})
	}
}

func TestTripleSetEquivalence(t *testing.T) {
	f := func(ops []struct{ V, S, Th uint8 }) bool {
		h, _ := newTripleSet(subst.Hash, 8, 5)
		n, _ := newTripleSet(subst.Nested, 8, 5)
		for _, op := range ops {
			tr := triple{v: int32(op.V % 8), s: int32(op.S % 5), th: int32(op.Th%7) - 1}
			if h.Add(tr) != n.Add(tr) {
				return false
			}
		}
		return h.Len() == n.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMemoCaching(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v0
edge v1 use(a) v2
`)
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	var stats Stats
	e, err := newEngine(g, q, q.NFA, Options{Algo: AlgoMemo}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	tl := q.NFA.Labels[0]
	tlID := q.NFA.LabelID[tl.Key()]
	el := g.Out(g.Start())[0].Label
	elID := g.Out(g.Start())[0].LabelID
	m1 := e.match(tl, tlID, el, elID)
	calls := stats.MatchCalls
	m2 := e.match(tl, tlID, el, elID)
	if stats.MatchCalls != calls {
		t.Fatalf("second match recomputed (calls %d -> %d)", calls, stats.MatchCalls)
	}
	if m1 != m2 {
		t.Fatalf("memo returned different pointers")
	}
	// Non-matching pairs are cached too (negative caching).
	var defTl *label.CTerm
	for _, l := range q.NFA.Labels {
		if len(l.Params()) > 0 && l.Kind == label.KApp {
			defTl = l // use(x)
		}
	}
	if defTl == nil {
		t.Fatal("use(x) label not found")
	}
	useID := q.NFA.LabelID[defTl.Key()]
	if got := e.match(defTl, useID, el, elID); got != nil {
		t.Fatalf("use(x) matched def(a): %+v", got)
	}
	calls = stats.MatchCalls
	if e.match(defTl, useID, el, elID) != nil || stats.MatchCalls != calls {
		t.Fatalf("negative result not cached")
	}
}

func TestForEachMatchGenericLabel(t *testing.T) {
	// A label with two parameter-carrying negations is outside the
	// agree/disagree fragment and exercises the generic extension path.
	g := graph.MustReadString(`
start v0
edge v0 f(a,b) v1
`)
	q := MustCompile(pattern.MustParse("f(!x,!y)"), g.U)
	tl := q.NFA.Labels[0]
	if tl.ADCompatible() {
		t.Fatalf("f(!x,!y) should not be AD-compatible")
	}
	res, err := Exist(g, g.Start(), q, Options{Domains: DomainsAllSymbols})
	if err != nil {
		t.Fatal(err)
	}
	// f(!x,!y) matches f(a,b) under θ iff θ(x)≠a and θ(y)≠b; with symbols
	// {a, b} the only answer is {x↦b, y↦a}.
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	got := res.Pairs[0].Subst.Format(g.U, q.PS)
	if got != "{x↦b, y↦a}" {
		t.Fatalf("substitution = %s", got)
	}
}

func TestDisagreeExtensionEnumeration(t *testing.T) {
	// (!def(x))* against a def edge must enumerate x over the domain minus
	// the defined variable (the forward-query cost of Section 5.1).
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v0 use(a) v2
edge v0 use(b) v2
edge v0 use(c) v2
`)
	q := MustCompile(pattern.MustParse("(!def(x))* def('a')"), g.U)
	res, err := Exist(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The def('a') edge is matched from the start state with θ={}; the
	// star-taken path (def(a) then …) cannot recur since v1 has no out
	// edges. So the only answers are at v1: one from the empty-star
	// prefix, and — none via the star, because taking (!def(x)) on def(a)
	// binds x≠a but then no further def('a') edge exists.
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	if res.Pairs[0].Subst.NumBound() != 0 {
		t.Fatalf("expected the minimal empty substitution, got %s",
			res.Pairs[0].Subst.Format(g.U, q.PS))
	}
	// Now a graph where the star must consume a def edge.
	g2 := graph.MustReadString(`
start v0
edge v0 def(b) v1
edge v1 def(a) v2
`)
	q2 := MustCompile(pattern.MustParse("(!def(x))* def('a')"), g2.U)
	res2, err := Exist(g2, g2.Start(), q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Matching paths: def(b) def(a) with x bound ≠ b — every domain symbol
	// except b (domain of x = defined variables = {a, b}) → x↦a.
	found := map[string]bool{}
	for _, p := range res2.Pairs {
		found[p.Subst.Format(g2.U, q2.PS)] = true
	}
	if !found["{x↦a}"] || found["{x↦b}"] {
		t.Fatalf("disagree enumeration wrong: %v", found)
	}
}

func TestUnivStatsSanity(t *testing.T) {
	g := graph.MustReadString(`
start v0
edge v0 def(a) v1
edge v1 def(a) v2
`)
	q := MustCompile(pattern.MustParse("def(x)*"), g.U)
	res, err := Univ(g, g.Start(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.WorklistInserts <= 0 || s.ReachSize != s.WorklistInserts || !s.DeterminismOK {
		t.Errorf("stats: %+v", s)
	}
	if s.Bytes <= 0 || s.ResultPairs != len(res.Pairs) {
		t.Errorf("stats: %+v", s)
	}
}

func TestComputeDomainsFallbacks(t *testing.T) {
	g := graph.MustReadString("start v0\nedge v0 def(a) v1\n")
	// Parameter occurring only under a negation falls back to negated
	// positions; a parameter at no position falls back to all symbols.
	q := MustCompile(pattern.MustParse("(!def(x))*"), g.U)
	doms := ComputeDomains(q, g, DomainsRefined)
	if len(doms) != 1 || len(doms[0]) != 1 {
		t.Fatalf("negation-position domain = %v", doms)
	}
	// Zero parameters.
	q2 := MustCompile(pattern.MustParse("def('a')*"), g.U)
	if doms := ComputeDomains(q2, g, DomainsRefined); len(doms) != 0 {
		t.Fatalf("ground pattern domains = %v", doms)
	}
}

func TestAlgoAndModeStrings(t *testing.T) {
	for want, got := range map[string]fmt.Stringer{
		"basic":          AlgoBasic,
		"memo":           AlgoMemo,
		"precomputation": AlgoPrecomp,
		"enumeration":    AlgoEnum,
		"hybrid":         AlgoHybrid,
		"incomplete":     Incomplete,
		"trap":           CompleteTrap,
		"explicit":       CompleteExplicit,
	} {
		if got.String() != want {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), want)
		}
	}
}

func TestLargeRandomStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// A larger random cyclic graph: all worklist variants agree and finish.
	rng := rand.New(rand.NewSource(99))
	g := graph.New()
	n := 300
	labels := []string{"def(a)", "def(b)", "def(c)", "use(a)", "use(b)", "use(c)", "nop()"}
	for i := 0; i < n; i++ {
		g.Vertex(fmt.Sprintf("v%d", i))
	}
	g.SetStart(0)
	for i := 0; i < 4*n; i++ {
		lbl := label.MustParse(labels[rng.Intn(len(labels))], label.GroundMode)
		_ = g.AddEdge(int32(rng.Intn(n)), lbl, int32(rng.Intn(n)))
	}
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	ref, err := Exist(g, g.Start(), q, Options{Algo: AlgoBasic})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Algo: AlgoMemo},
		{Algo: AlgoPrecomp, Table: subst.Nested},
		{Algo: AlgoBasic, SCCOrder: true},
	} {
		res, err := Exist(g, g.Start(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Pairs) != fmt.Sprint(ref.Pairs) {
			t.Fatalf("opts %+v disagree on stress graph", opts)
		}
	}
}
