package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"rpq/internal/pattern"
)

// existAlgos are the existential solver variants; univAlgos the universal
// ones (hybrid exists only universally).
var (
	existAlgos = []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum}
	univAlgos  = []Algo{AlgoBasic, AlgoMemo, AlgoPrecomp, AlgoEnum, AlgoHybrid}
)

// TestCancelPreCanceled runs every variant under an already-canceled
// context: each must return an *InterruptError wrapping ErrCanceled (and,
// transitively, context.Canceled) instead of a result.
func TestCancelPreCanceled(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, algo := range existAlgos {
		for _, workers := range []int{1, 2} {
			res, err := ExistContext(ctx, wl.g, wl.start, q, Options{Algo: algo, Workers: workers})
			checkInterrupt(t, res, err, ErrCanceled, context.Canceled)
		}
	}
	for _, algo := range univAlgos {
		res, err := UnivContext(ctx, wl.g, wl.start, q, Options{Algo: algo})
		if algo == AlgoBasic || algo == AlgoMemo || algo == AlgoPrecomp {
			// The direct universal algorithms may abort on the determinism
			// check before the first cancellation check fires; both outcomes
			// are acceptable, but a success is not.
			if err == nil {
				t.Fatalf("univ %v: ran to completion under a canceled context", algo)
			}
			if !errors.Is(err, ErrNondeterministic) {
				checkInterrupt(t, res, err, ErrCanceled, context.Canceled)
			}
			continue
		}
		checkInterrupt(t, res, err, ErrCanceled, context.Canceled)
	}
}

// TestDeadlineBreach runs with a 1ns Options.Deadline — expired before the
// solver starts — and requires a typed ErrDeadline with partial statistics.
func TestDeadlineBreach(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	res, err := Exist(wl.g, wl.start, q, Options{Algo: AlgoMemo, Deadline: time.Nanosecond})
	checkInterrupt(t, res, err, ErrDeadline, context.DeadlineExceeded)

	var ie *InterruptError
	errors.As(err, &ie)
	if ie.Stats.WorklistInserts == 0 {
		t.Fatal("interrupted run reported no worklist inserts; expected at least the initial push")
	}

	res, err = Univ(wl.g, wl.start, q, Options{Algo: AlgoEnum, Deadline: time.Nanosecond})
	checkInterrupt(t, res, err, ErrDeadline, context.DeadlineExceeded)
}

// TestDeadlinePartialExplain requires an interrupted explain-enabled run to
// carry the partial profile in the InterruptError.
func TestDeadlinePartialExplain(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	_, err := Exist(wl.g, wl.start, q, Options{Algo: AlgoMemo, Deadline: time.Nanosecond, Explain: true})
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want *InterruptError", err)
	}
	if ie.Explain == nil {
		t.Fatal("explain-enabled interrupted run carried no partial profile")
	}
}

// TestCancelCompletesUnderLongDeadline checks the overhead path: a generous
// deadline must not change the result.
func TestCancelCompletesUnderLongDeadline(t *testing.T) {
	wl := parCorpus(t)[0]
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	plain, err := Exist(wl.g, wl.start, q, Options{Algo: AlgoMemo})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Exist(wl.g, wl.start, q, Options{Algo: AlgoMemo, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Pairs) != len(bounded.Pairs) {
		t.Fatalf("deadline-bounded run returned %d pairs, unbounded %d", len(bounded.Pairs), len(plain.Pairs))
	}
}

// TestProgressCallback checks Options.Progress delivery: the enumeration
// solver reports once per enumerated substitution with the enumerate phase.
func TestProgressCallback(t *testing.T) {
	wl := parCorpus(t)[2] // cyclic: small parameter domain, several substs
	q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
	var calls int
	var phases []string
	res, err := Exist(wl.g, wl.start, q, Options{
		Algo: AlgoEnum,
		Progress: func(p Progress) {
			calls++
			phases = append(phases, p.Phase)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Progress callback never fired for the enumeration solver")
	}
	if calls < res.Stats.EnumSubsts {
		t.Fatalf("got %d progress calls, want at least one per enumerated substitution (%d)",
			calls, res.Stats.EnumSubsts)
	}
	for _, ph := range phases {
		if ph != "enumerate" {
			t.Fatalf("unexpected progress phase %q", ph)
		}
	}
}

// TestCancelStormNoLeaks hammers every variant — sequential and parallel at
// 2 and 4 workers, SCC ordering on and off — with randomly-timed
// cancellations across the corpus, then requires the goroutine count to
// settle back to the baseline: no worker, canceler-watcher, or coordinator
// goroutine may leak. Run with -race in CI.
func TestCancelStormNoLeaks(t *testing.T) {
	wls := parCorpus(t)
	rng := rand.New(rand.NewSource(99))
	baseline := settledGoroutines()

	storm := func(run func(ctx context.Context) (*Result, error)) {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(300)) * time.Microsecond
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		res, err := run(ctx)
		cancel()
		if err != nil {
			var ie *InterruptError
			if !errors.As(err, &ie) && !errors.Is(err, ErrNondeterministic) {
				t.Fatalf("storm run failed with untyped error: %v", err)
			}
		} else if res == nil {
			t.Fatal("storm run returned nil result without error")
		}
	}

	for _, wl := range wls {
		q := MustCompile(pattern.MustParse(wl.pat), wl.g.U)
		for _, algo := range existAlgos {
			for _, workers := range []int{1, 2, 4} {
				for _, scc := range []bool{false, true} {
					opts := Options{Algo: algo, Workers: workers, SCCOrder: scc}
					storm(func(ctx context.Context) (*Result, error) {
						return ExistContext(ctx, wl.g, wl.start, q, opts)
					})
				}
			}
		}
		for _, algo := range univAlgos {
			for _, workers := range []int{1, 4} {
				opts := Options{Algo: algo, Workers: workers}
				storm(func(ctx context.Context) (*Result, error) {
					return UnivContext(ctx, wl.g, wl.start, q, opts)
				})
			}
		}
	}

	if after := settledGoroutines(); after > baseline+2 {
		t.Fatalf("goroutine leak after cancellation storm: %d before, %d after", baseline, after)
	}
}

// checkInterrupt asserts the (res, err) pair is a typed interruption
// matching the sentinel and its underlying context error.
func checkInterrupt(t *testing.T, res *Result, err error, sentinel, ctxErr error) {
	t.Helper()
	if res != nil {
		t.Fatal("interrupted run returned a non-nil result")
	}
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v (%T), want *InterruptError", err, err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(%v, %v) = false", err, sentinel)
	}
	if !errors.Is(err, ctxErr) {
		t.Fatalf("errors.Is(%v, %v) = false", err, ctxErr)
	}
}

// settledGoroutines samples runtime.NumGoroutine until it stops shrinking,
// giving canceled workers time to drain and exit.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}
