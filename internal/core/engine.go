package core

import (
	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/subst"
)

// engine bundles the state shared by the worklist solvers: the graph, the
// automaton, substitution interning, parameter domains, statistics, and the
// (optional) memoized match layer.
type engine struct {
	g     *graph.Graph
	q     *Query
	auto  *automata.NFA
	opts  Options
	doms  subst.Domains
	table subst.Table
	stats *Stats
	in    instr

	// ex collects the per-state/per-transition/per-label execution profile
	// when Options.Explain is set; nil otherwise, so every counting site
	// pays one nil check when disabled.
	ex *explainCollector

	// memo is the substitution map M_s of Section 3: match results cached
	// by (edge label id, transition label id). Entry nil = not yet
	// computed; entries are shared *label.Match values.
	memo      [][]*label.Match
	memoBytes int64

	// buf1 is the merge scratch buffer reused across the hot loop.
	buf1 subst.Subst
}

func newEngine(g *graph.Graph, q *Query, auto *automata.NFA, opts Options, stats *Stats) (*engine, error) {
	return newEngineTable(g, q, auto, opts, stats, nil)
}

// newEngineTable is newEngine with an optional pre-built substitution table
// (the parallel solver passes a concurrency-safe sharded table; nil builds
// the sequential representation selected by opts.Table).
func newEngineTable(g *graph.Graph, q *Query, auto *automata.NFA, opts Options, stats *Stats, table subst.Table) (*engine, error) {
	in := newInstr(opts)
	tDoms := in.phaseBegin("domains")
	doms := ComputeDomains(q, g, opts.Domains)
	stats.Phases.Domains.Wall = in.phaseEnd("domains", tDoms)
	if table == nil {
		var err error
		table, err = subst.NewTable(opts.Table, q.Pars(), g.U.NumSymbols())
		if err != nil {
			return nil, err
		}
	}
	e := &engine{
		g:     g,
		q:     q,
		auto:  auto,
		opts:  opts,
		doms:  doms,
		table: table,
		stats: stats,
		in:    in,
		buf1:  subst.New(q.Pars()),
	}
	if opts.Explain {
		e.ex = newExplainCollector(auto, g.NumLabels())
	}
	if opts.Workers <= 1 {
		// The growth-hook closures mutate unguarded state; they are
		// installed only for sequential runs.
		traceHook := e.in.growthHook()
		var exHook func(int, int64)
		if e.ex != nil {
			exHook = e.ex.tableGrowth()
		}
		switch {
		case traceHook != nil && exHook != nil:
			e.table.SetOnGrow(func(n int, b int64) { traceHook(n, b); exHook(n, b) })
		case traceHook != nil:
			e.table.SetOnGrow(traceHook)
		case exHook != nil:
			e.table.SetOnGrow(exHook)
		}
	}
	if opts.Algo == AlgoMemo || opts.Algo == AlgoPrecomp {
		e.memo = make([][]*label.Match, g.NumLabels())
		e.memoBytes = int64(g.NumLabels()) * 24
	}
	return e, nil
}

// fork returns a worker-private engine for the parallel solver: it shares
// the read-only inputs (graph, query, automaton, domains) and the
// concurrency-safe substitution table, but has its own stats, match memo,
// and merge scratch buffer, and no instrumentation (workers publish their
// own gauges).
func (e *engine) fork() *engine {
	w := &engine{
		g:     e.g,
		q:     e.q,
		auto:  e.auto,
		opts:  e.opts,
		doms:  e.doms,
		table: e.table,
		stats: &Stats{},
		buf1:  subst.New(e.q.Pars()),
	}
	if e.memo != nil {
		w.memo = make([][]*label.Match, e.g.NumLabels())
		w.memoBytes = int64(e.g.NumLabels()) * 24
	}
	if e.ex != nil {
		w.ex = e.ex.fork()
	}
	return w
}

// sample publishes a live gauge snapshot from the worklist loops.
func (e *engine) sample(worklistDepth, reach int, reachBytes int64) {
	e.in.gauges.Sample(int64(worklistDepth), int64(reach), int64(e.table.Len()),
		reachBytes+e.table.Bytes()+e.memoBytes)
}

// progress delivers one live snapshot to Options.Progress (nil-safe). Called
// at the gauge cadence from the sequential worklist loops.
func (e *engine) progress(phase string, pops, depth, reach int64) {
	if p := e.opts.Progress; p != nil {
		p(Progress{Phase: phase, Pops: pops, WorklistDepth: depth, Reach: reach,
			Substs: int64(e.table.Len()), Workers: 1})
	}
}

// match computes (or recalls) the agree/disagree match of edge label el
// (with dense id elID) against transition label tl (with dense id tlID in
// the automaton's label space). Returns nil when the labels cannot match
// under any substitution.
func (e *engine) match(tl *label.CTerm, tlID int32, el *label.CTerm, elID int32) *label.Match {
	if e.memo != nil {
		row := e.memo[elID]
		if row == nil {
			row = make([]*label.Match, len(e.auto.Labels))
			e.memo[elID] = row
			e.memoBytes += int64(len(row)) * 8
		}
		if m := row[tlID]; m != nil {
			e.stats.MatchCacheHits++
			if e.ex != nil {
				e.ex.attempt(m.OK)
			}
			if !m.OK {
				return nil
			}
			return m
		}
		e.stats.MatchCalls++
		e.stats.MatchCacheMisses++
		m := label.MatchAD(tl, el)
		row[tlID] = &m
		e.memoBytes += 48
		if e.ex != nil {
			e.ex.attempt(m.OK)
		}
		if !m.OK {
			return nil
		}
		return &m
	}
	e.stats.MatchCalls++
	m := label.MatchAD(tl, el)
	if e.ex != nil {
		e.ex.attempt(m.OK)
	}
	if !m.OK {
		return nil
	}
	return &m
}

// forEachMatch enumerates the substitutions θ2 under which edge label el
// matches transition label tl extending θ (the inner body of pseudo-code
// (2) with the Section 3 negation handling folded in). emit's argument is a
// reused buffer; it must be interned or cloned to be retained. emit returns
// false to abort (used by the universal determinism check); forEachMatch
// reports whether it ran to completion.
func (e *engine) forEachMatch(tl *label.CTerm, tlID int32, el *label.CTerm, elID int32, th subst.Subst, emit func(subst.Subst) bool) bool {
	if !tl.ADCompatible() {
		// Generic fallback (Section 3): enumerate extensions of θ covering
		// the label's parameters and test the full match relation.
		return subst.ForEachExtension(th, tl.Params(), e.doms, func(th2 subst.Subst) bool {
			e.stats.MatchCalls++
			ok := label.MatchGround(tl, el, th2)
			if e.ex != nil {
				e.ex.attempt(ok)
			}
			if ok {
				if e.ex != nil {
					e.ex.extend()
				}
				return emit(th2)
			}
			return true
		})
	}
	m := e.match(tl, tlID, el, elID)
	if m == nil {
		return true
	}
	return e.applyMatch(m, th, emit)
}

// applyMatch folds a cached agree/disagree match result into θ, emitting
// each resulting substitution: merge with agree, then — if a negation is
// present — enumerate extensions covering the disagree parameters and keep
// those contradicting every disagree set (merge(θ2, disagree) = badsubst in
// the paper's formulation).
func (e *engine) applyMatch(m *label.Match, th subst.Subst, emit func(subst.Subst) bool) bool {
	e.stats.MergeCalls++
	if !subst.MergeBindings(e.buf1, th, m.Agree) {
		return true
	}
	if len(m.Disagrees) == 0 {
		if e.ex != nil {
			e.ex.extend()
		}
		return emit(e.buf1)
	}
	return subst.ForEachExtension(e.buf1, m.DisagreeParams(), e.doms, func(th2 subst.Subst) bool {
		for _, d := range m.Disagrees {
			e.stats.MergeCalls++
			if !subst.Contradicts(th2, d) {
				return true
			}
		}
		if e.ex != nil {
			e.ex.extend()
		}
		return emit(th2)
	})
}

// forEachGeneric is the generic (non-AD) matching path, exposed for the
// precomputation solvers, which store generic entries unresolved.
func (e *engine) forEachGeneric(tl, el *label.CTerm, th subst.Subst, emit func(subst.Subst) bool) bool {
	return subst.ForEachExtension(th, tl.Params(), e.doms, func(th2 subst.Subst) bool {
		e.stats.MatchCalls++
		ok := label.MatchGround(tl, el, th2)
		if e.ex != nil {
			e.ex.attempt(ok)
		}
		if ok {
			if e.ex != nil {
				e.ex.extend()
			}
			return emit(th2)
		}
		return true
	})
}

// possiblyMatches reports whether any substitution can make el match tl;
// used by the M_ts/M_ds precomputation, which records matches independent of
// the substitutions flowing through them.
func (e *engine) possiblyMatches(tl *label.CTerm, tlID int32, el *label.CTerm, elID int32) *label.Match {
	if !tl.ADCompatible() {
		// Conservative for the generic fragment: try to find one witness.
		found := false
		empty := subst.New(e.q.Pars())
		subst.ForEachExtension(empty, tl.Params(), e.doms, func(th subst.Subst) bool {
			e.stats.MatchCalls++
			ok := label.MatchGround(tl, el, th)
			if e.ex != nil {
				e.ex.attempt(ok)
			}
			if ok {
				found = true
				return false
			}
			return true
		})
		if !found {
			return nil
		}
		// Marker match: callers re-run forEachMatch for generic labels.
		return &label.Match{OK: true}
	}
	return e.match(tl, tlID, el, elID)
}

// internEmpty interns the empty substitution and returns its key.
func (e *engine) internEmpty() int32 {
	return e.table.Key(subst.New(e.q.Pars()))
}
