package core

// Parallel existential solver.
//
// The worklist is sharded by vertex ownership: worker i owns the vertices v
// with owner(v) == i (v mod W plainly, comp(v) mod W under SCCOrder so a
// whole component stays on one worker). Only the owner of v admits triples
// ⟨v, s, θ⟩ — the owner holds the vertex's slice of the reach set in a
// private tripleSet shard (indexed by a dense per-worker vertex remap, so
// the shards together cost what the sequential set costs) — which makes
// dedup lock-free. Discoveries for foreign vertices are batched into
// per-destination buffers and delivered through a mutex-guarded inbox;
// batches are unbounded so a cycle of mutually pushing workers cannot
// deadlock. Substitutions are interned in a shared concurrency-safe table
// (subst.NewSharded). Idle workers steal queued triples from other workers
// — processing a triple needs no ownership, only admission does.
//
// Termination (plain mode) is credit-counting: pending holds one credit per
// admitted-unprocessed triple and per sent-unadmitted message; a credit is
// created before the work it covers becomes visible, so pending reaching
// zero means no work exists anywhere, and the worker that decrements to
// zero closes done.
//
// Under SCCOrder the components are grouped into topological levels
// (level(c) = 1 + max over predecessors; any cross-component edge strictly
// increases the level, so during a level no same-level cross-worker
// messages can arise). A coordinator runs one barrier per level: each
// worker admits the messages deferred for this level, drains its local
// queue to empty, flushes its out-batches, releases the reach-set storage
// of its own components at this level, and acknowledges. Messages always
// target strictly later levels, so released components can never be
// re-entered — preserving the sequential solver's storage-release
// semantics and its exact WorklistInserts/ReachSize counts.
//
// Determinism contract: the admitted-triple set is the fixpoint reach set,
// which is order-independent, so sorted Pairs, WorklistInserts, ReachSize,
// Substs, ResultPairs, and DeterminismOK are identical to the sequential
// run. PeakTriples, Bytes, and the match-call/cache counters depend on
// scheduling (per-worker memo caches recompute entries another worker
// already has) and are approximate. Witness paths are valid but may differ
// from the sequential run's: parents are recorded first-writer-wins.

import (
	"sync"
	"sync/atomic"
	"time"

	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/obs"
	"rpq/internal/subst"
)

// pushBatchSize is how many cross-worker discoveries accumulate per
// destination before an eager flush (idle workers flush everything).
const pushBatchSize = 64

// pushMsg is one cross-worker discovery: the triple (θ already interned in
// the shared table by the sender) plus its parent step for witnesses.
type pushMsg struct {
	t    triple
	prev triple
	lbl  *label.CTerm
	from int32
}

// psolver is the shared state of one parallel existential run.
type psolver struct {
	g      *graph.Graph
	q      *Query
	nfa    *automata.NFA
	opts   Options
	states int

	workers []*pworker
	owner   []int32 // vertex -> owning worker
	localv  []int32 // vertex -> dense index within its owner's shard

	mts [][]mtsEntry // AlgoPrecomp's M_ts, read-only after build

	// Plain-mode termination: see the package comment.
	pending  atomic.Int64
	done     chan struct{}
	doneOnce sync.Once

	// cxl mirrors opts.cxl; workers poll it at the top of their loops and
	// bail out, leaving the coordinator's wg.Wait to join them. Plain-mode
	// workers parked in their idle select wake within their bounded backoff
	// (<= 1ms) and observe the flag on the next iteration.
	cxl *canceler

	// SCC mode.
	scc          bool
	comp         []int32
	comps        [][]int32
	level        []int32 // component -> topological level
	numLevels    int
	compsAtLevel [][]int32

	gauges *obs.SolverGauges
	in     instr
}

// pworker is one solver goroutine with its owned shard of the reach set.
type pworker struct {
	id   int
	s    *psolver
	e    *engine   // forked: private stats, memo, and scratch
	seen tripleSet // reach-set shard over this worker's local vertex indices

	qmu   sync.Mutex
	queue []triple // owned + stolen triples awaiting processing

	inmu  sync.Mutex
	inbox [][]pushMsg
	wake  chan struct{} // cap 1; nudged after an inbox append

	out     [][]pushMsg // per-destination outgoing batches
	byLevel [][]pushMsg // SCC mode: inbox messages deferred per level

	parents map[triple]parentStep
	resSeen map[int64]bool
	pairs   []Pair
	origins []triple

	inserts   int
	live      int
	peak      int
	maxBytes  int64
	steals    int64
	batches   int64
	batchMsgs int64
	processed int64

	// timing turns on busy-time measurement for the worker timeline (span
	// events and the explain profile's per-worker busy totals); set when
	// either a tracer or Explain is active so the disabled path never reads
	// the clock.
	timing bool
	busy   time.Duration

	// pubProcessed/pubDepth/pubReach are this worker's live counters
	// published for Options.Progress at the gauge cadence; the plain
	// (unsynchronized) fields above are owner-private, so cross-worker
	// progress snapshots sum these atomics instead.
	pubProcessed atomic.Int64
	pubDepth     atomic.Int64
	pubReach     atomic.Int64

	perLocal []int32 // live triples per local vertex (SCC release accounting)

	gauges *obs.WorkerGauges
	pops   int
}

// existParallel runs the basic/memo/precomputation algorithms with
// opts.Workers goroutines. Results (sorted Pairs) are identical to
// existWorklist; see the package comment for the stats contract.
func existParallel(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	if opts.Compact {
		g = g.CompactFor(q.NFA.Labels)
	}
	var stats Stats
	stats.DeterminismOK = true
	nfa := q.NFA
	states := nfa.NumStates
	if err := checkDenseBase(g.NumVertices(), states); err != nil {
		return nil, err
	}
	W := opts.Workers
	if verts := g.NumVertices(); W > verts {
		W = verts // extra workers would own no vertices
	}
	table, err := subst.NewSharded(opts.Table, q.Pars(), g.U.NumSymbols())
	if err != nil {
		return nil, err
	}
	master, err := newEngineTable(g, q, nfa, opts, &stats, table)
	if err != nil {
		return nil, err
	}

	s := &psolver{
		g: g, q: q, nfa: nfa, opts: opts, states: states,
		done: make(chan struct{}), gauges: opts.Gauges, scc: opts.SCCOrder,
		in: newInstr(opts), cxl: opts.cxl,
	}

	// Ownership and the global→local vertex remap.
	verts := g.NumVertices()
	s.owner = make([]int32, verts)
	s.localv = make([]int32, verts)
	if s.scc {
		s.comp, s.comps = g.SCCTopoOrder()
		s.level = make([]int32, len(s.comps))
		for ci := range s.comps {
			for _, v := range s.comps[ci] {
				for _, ge := range g.Out(v) {
					if cj := s.comp[ge.To]; cj != int32(ci) && s.level[cj] < s.level[ci]+1 {
						s.level[cj] = s.level[ci] + 1
					}
				}
			}
		}
		for _, l := range s.level {
			if int(l)+1 > s.numLevels {
				s.numLevels = int(l) + 1
			}
		}
		s.compsAtLevel = make([][]int32, s.numLevels)
		for ci := range s.comps {
			l := s.level[ci]
			s.compsAtLevel[l] = append(s.compsAtLevel[l], int32(ci))
		}
		for v := range s.owner {
			s.owner[v] = s.comp[v] % int32(W)
		}
	} else {
		for v := range s.owner {
			s.owner[v] = int32(v % W)
		}
	}
	counts := make([]int32, W)
	for v := 0; v < verts; v++ {
		o := s.owner[v]
		s.localv[v] = counts[o]
		counts[o]++
	}

	s.workers = make([]*pworker, W)
	for i := 0; i < W; i++ {
		shard, err := newTripleSet(opts.Table, int(counts[i]), states)
		if err != nil {
			return nil, err
		}
		w := &pworker{
			id: i, s: s, e: master.fork(), seen: shard,
			wake:    make(chan struct{}, 1),
			out:     make([][]pushMsg, W),
			resSeen: map[int64]bool{},
			gauges:  opts.Gauges.Worker(i),
			timing:  opts.Explain || s.in.on,
		}
		if opts.Witnesses {
			w.parents = map[triple]parentStep{}
		}
		if s.scc {
			w.byLevel = make([][]pushMsg, s.numLevels)
			w.perLocal = make([]int32, counts[i])
		}
		s.workers[i] = w
	}

	var mtsBytes int64
	if opts.Algo == AlgoPrecomp {
		s.mts, mtsBytes = buildMTS(master, v0)
	}

	// Seed ⟨v0, start, {}⟩ before any worker runs (no synchronization
	// needed yet).
	seed := pushMsg{t: triple{v: v0, s: nfa.Start, th: table.Key(subst.New(q.Pars()))}}
	ow := s.workers[s.owner[v0]]
	if s.scc {
		l := s.level[s.comp[v0]]
		ow.byLevel[l] = append(ow.byLevel[l], seed)
	} else {
		ow.admit(seed, false)
	}

	var wg sync.WaitGroup
	wg.Add(W)
	if s.scc {
		levelChs := make([]chan int, W)
		ack := make(chan struct{}, W)
		for i, w := range s.workers {
			levelChs[i] = make(chan int)
			go w.runSCC(&wg, levelChs[i], ack)
		}
		for l := 0; l < s.numLevels; l++ {
			// Canceled workers still complete the current level's barrier
			// protocol (flush, release, ack) and then idle, so the
			// coordinator can simply stop issuing levels.
			if s.cxl.state() != cxlRunning {
				break
			}
			for _, ch := range levelChs {
				ch <- l
			}
			for range s.workers {
				<-ack
			}
		}
		for _, ch := range levelChs {
			close(ch)
		}
	} else {
		for _, w := range s.workers {
			go w.runPlain(&wg)
		}
	}
	wg.Wait()

	// Aggregate per-worker results and stats.
	var pairs []Pair
	var origins []triple
	var seenBytes, memoBytes int64
	var profiles []WorkerProfile
	for _, w := range s.workers {
		pairs = append(pairs, w.pairs...)
		origins = append(origins, w.origins...)
		stats.WorklistInserts += w.inserts
		stats.ReachSize += w.seen.Len()
		stats.PeakTriples += w.peak
		if b := w.seen.Bytes(); b > w.maxBytes {
			w.maxBytes = b
		}
		seenBytes += w.maxBytes
		memoBytes += w.e.memoBytes
		stats.MatchCalls += w.e.stats.MatchCalls
		stats.MatchCacheHits += w.e.stats.MatchCacheHits
		stats.MatchCacheMisses += w.e.stats.MatchCacheMisses
		stats.MergeCalls += w.e.stats.MergeCalls
		if master.ex != nil {
			master.ex.merge(w.e.ex)
			profiles = append(profiles, WorkerProfile{
				ID: w.id, Processed: w.processed, Steals: w.steals,
				Batches: w.batches, BatchMsgs: w.batchMsgs, Busy: w.busy,
			})
		}
	}
	stats.Substs = table.Len()
	stats.ResultPairs = len(pairs)
	stats.Bytes = seenBytes + table.Bytes() + master.memoBytes + memoBytes +
		mtsBytes + pairsBytes(len(pairs), q.Pars())
	// Drop per-worker gauges beyond this run's width so repeated runs with
	// fewer workers don't leave stale rpq_worker_<i>_* metrics exposed.
	opts.Gauges.ReleaseWorkers(W)
	if s.cxl.state() != cxlRunning {
		// All workers have joined; return the partial aggregate without
		// witness reconstruction (the parent maps may be incomplete).
		var exRep *Explain
		if master.ex != nil {
			exRep = master.ex.report(q, g, opts.Algo, "nfa")
			exRep.Workers = profiles
		}
		return nil, s.cxl.interrupt(stats, exRep)
	}
	if opts.Witnesses {
		attachWitnesses(pairs, origins, func(t triple) (parentStep, bool) {
			ps, ok := s.workers[s.owner[t.v]].parents[t]
			return ps, ok
		})
	}
	if s.gauges != nil {
		s.gauges.Sample(0, int64(stats.ReachSize), int64(stats.Substs), seenBytes+table.Bytes())
	}
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if master.ex != nil {
		rep := master.ex.report(q, g, opts.Algo, "nfa")
		rep.Workers = profiles
		res.Explain = rep
	}
	return res, nil
}

// admit records a triple on its owner (always the receiver): dedup against
// the local shard, result/parent/peak bookkeeping, then enqueue. counted
// says the triple arrived as a cross-worker message already carrying a
// pending credit; on successful admission that credit transfers to the
// queued triple, on dedup it is released. Local pushes create their credit
// here, before the triple becomes visible to thieves.
func (w *pworker) admit(m pushMsg, counted bool) {
	s := w.s
	lv := s.localv[m.t.v]
	if !w.seen.Add(triple{v: lv, s: m.t.s, th: m.t.th}) {
		if counted && !s.scc {
			w.dec()
		}
		return
	}
	if !s.scc && !counted {
		s.pending.Add(1)
	}
	w.inserts++
	w.live++
	if w.live > w.peak {
		w.peak = w.live
	}
	if w.perLocal != nil {
		w.perLocal[lv]++
	}
	if w.parents != nil && m.lbl != nil {
		w.parents[m.t] = parentStep{prev: m.prev, lbl: m.lbl, from: m.from}
	}
	// Answers are recorded at admission: all triples for a vertex admit
	// here, so the (v, θ) dedup needs no cross-worker coordination.
	if s.nfa.Final[m.t.s] {
		k := int64(m.t.v)<<32 | int64(uint32(m.t.th))
		if !w.resSeen[k] {
			w.resSeen[k] = true
			w.pairs = append(w.pairs, Pair{Vertex: m.t.v, Subst: w.e.table.Get(m.t.th).Clone()})
			w.origins = append(w.origins, m.t)
		}
	}
	w.qmu.Lock()
	w.queue = append(w.queue, m.t)
	w.qmu.Unlock()
}

// dec releases one pending credit, closing done on zero.
func (w *pworker) dec() {
	if w.s.pending.Add(-1) == 0 {
		w.s.doneOnce.Do(func() { close(w.s.done) })
	}
}

// push interns θ and routes the discovery to the owner of v: a direct admit
// when the owner is this worker, a batched message otherwise. The message's
// pending credit is created at batch-append time, before the batch can be
// flushed.
func (w *pworker) push(v, st int32, th subst.Subst, prev triple, lbl *label.CTerm, from int32) {
	s := w.s
	m := pushMsg{t: triple{v: v, s: st, th: w.e.table.Key(th)}, prev: prev, lbl: lbl, from: from}
	dst := int(s.owner[v])
	if dst == w.id {
		w.admit(m, false)
		return
	}
	if !s.scc {
		s.pending.Add(1)
	}
	w.out[dst] = append(w.out[dst], m)
	if len(w.out[dst]) >= pushBatchSize {
		w.flushTo(dst)
	}
}

// flushTo delivers the batch buffered for worker dst to its inbox.
func (w *pworker) flushTo(dst int) {
	b := w.out[dst]
	if len(b) == 0 {
		return
	}
	w.out[dst] = nil
	d := w.s.workers[dst]
	d.inmu.Lock()
	d.inbox = append(d.inbox, b)
	d.inmu.Unlock()
	if !w.s.scc {
		select {
		case d.wake <- struct{}{}:
		default:
		}
	}
	w.batches++
	w.batchMsgs += int64(len(b))
}

func (w *pworker) flushAll() {
	for dst := range w.out {
		w.flushTo(dst)
	}
}

// process expands one triple — the body of pseudo-code (2)/(4), pushing
// through the sharded router instead of a single worklist.
func (w *pworker) process(t triple) {
	s := w.s
	w.processed++
	if w.e.ex != nil {
		w.e.ex.visit(t.s)
	}
	th := w.e.table.Get(t.th)
	if s.mts != nil {
		base := int(t.v)*s.states + int(t.s)
		for i := range s.mts[base] {
			entry := &s.mts[base][i]
			if w.e.ex != nil {
				w.e.ex.setCur(entry.ti, entry.elID)
			}
			emit := func(th2 subst.Subst) bool {
				w.push(entry.v1, entry.s1, th2, t, entry.el, t.v)
				return true
			}
			if entry.m != nil {
				w.e.applyMatch(entry.m, th, emit)
			} else {
				w.e.forEachGeneric(entry.tl, entry.el, th, emit)
			}
		}
	} else {
		nfa := s.nfa
		for _, ge := range s.g.Out(t.v) {
			for i, tr := range nfa.Trans[t.s] {
				tlID := nfa.LabelID[tr.Label.Key()]
				to, dst, lbl := tr.To, ge.To, ge.Label
				if w.e.ex != nil {
					w.e.ex.setCur(w.e.ex.ti(t.s, i), ge.LabelID)
				}
				w.e.forEachMatch(tr.Label, tlID, ge.Label, ge.LabelID, th, func(th2 subst.Subst) bool {
					w.push(dst, to, th2, t, lbl, t.v)
					return true
				})
			}
		}
	}
	if !s.scc {
		w.dec()
	}
}

// pop takes the newest queued triple.
func (w *pworker) pop() (triple, bool) {
	w.qmu.Lock()
	n := len(w.queue)
	if n == 0 {
		w.qmu.Unlock()
		return triple{}, false
	}
	t := w.queue[n-1]
	w.queue = w.queue[:n-1]
	w.qmu.Unlock()
	return t, true
}

// steal takes the older half of the first non-empty victim queue
// (processing needs no ownership — only admission does), keeping one triple
// to run and queueing the rest locally.
func (w *pworker) steal() (triple, bool) {
	ws := w.s.workers
	for i := 1; i < len(ws); i++ {
		v := ws[(w.id+i)%len(ws)]
		v.qmu.Lock()
		k := len(v.queue)
		if k == 0 {
			v.qmu.Unlock()
			continue
		}
		take := (k + 1) / 2
		got := make([]triple, take)
		copy(got, v.queue[:take])
		v.queue = append(v.queue[:0], v.queue[take:]...)
		v.qmu.Unlock()
		w.steals += int64(take)
		w.s.in.workerCounter(w.id, "steals", w.steals)
		if len(got) > 1 {
			w.qmu.Lock()
			w.queue = append(w.queue, got[1:]...)
			w.qmu.Unlock()
		}
		return got[0], true
	}
	return triple{}, false
}

// drainInbox admits every delivered message (plain mode).
func (w *pworker) drainInbox() {
	w.inmu.Lock()
	batches := w.inbox
	w.inbox = nil
	w.inmu.Unlock()
	for _, b := range batches {
		for _, m := range b {
			w.admit(m, true)
		}
	}
}

// drainDeferred files delivered messages by their destination component's
// level (SCC mode; messages always target levels after the sender's).
func (w *pworker) drainDeferred() {
	w.inmu.Lock()
	batches := w.inbox
	w.inbox = nil
	w.inmu.Unlock()
	s := w.s
	for _, b := range batches {
		for _, m := range b {
			l := s.level[s.comp[m.t.v]]
			w.byLevel[l] = append(w.byLevel[l], m)
		}
	}
}

// sampleGauges publishes this worker's live view — worker gauges and the
// atomics backing Options.Progress snapshots — every sampleMask+1 pops.
func (w *pworker) sampleGauges() {
	if w.pops++; w.pops&sampleMask != 0 {
		return
	}
	prog := w.s.opts.Progress
	if w.gauges == nil && prog == nil {
		return
	}
	w.qmu.Lock()
	depth := len(w.queue)
	w.qmu.Unlock()
	w.pubProcessed.Store(w.processed)
	w.pubDepth.Store(int64(depth))
	w.pubReach.Store(int64(w.seen.Len()))
	if w.gauges != nil {
		w.gauges.QueueDepth.Set(int64(depth))
		w.gauges.Steals.Set(w.steals)
		w.gauges.Batches.Set(w.batches)
		w.gauges.BatchedMsgs.Set(w.batchMsgs)
		if w.id == 0 {
			w.s.gauges.Sample(-1, -1, int64(w.e.table.Len()), w.e.table.Bytes())
		}
	}
	if prog != nil {
		var pops, dep, reach int64
		for _, o := range w.s.workers {
			pops += o.pubProcessed.Load()
			dep += o.pubDepth.Load()
			reach += o.pubReach.Load()
		}
		prog(Progress{Phase: "solve", Pops: pops, WorklistDepth: dep, Reach: reach,
			Substs: int64(w.e.table.Len()), Workers: len(w.s.workers)})
	}
}

// runPlain is the plain-mode worker loop: drain the inbox, run owned work,
// steal, and otherwise flush and sleep until a message, a timed retry (the
// backoff covers queues grown by purely local pushes, which send no wake),
// or completion.
func (w *pworker) runPlain(wg *sync.WaitGroup) {
	defer wg.Done()
	const minBackoff = 50 * time.Microsecond
	backoff := minBackoff
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	// Busy bursts: the stretch from the first processed triple to the next
	// idle transition becomes one span on this worker's timeline lane.
	var burst time.Time
	inBurst := false
	for {
		// A cancel means no result will be produced; just leave. Idle peers
		// blocked in the select below observe the flag within their bounded
		// backoff, so every worker joins promptly without the done channel.
		if w.s.cxl.state() != cxlRunning {
			return
		}
		w.drainInbox()
		t, ok := w.pop()
		if !ok {
			t, ok = w.steal()
		}
		if ok {
			if w.timing && !inBurst {
				burst = time.Now() //rpqvet:allow timenow (gated by w.timing, once per burst)
				inBurst = true
			}
			w.process(t)
			w.sampleGauges()
			backoff = minBackoff
			continue
		}
		if inBurst {
			d := time.Since(burst)
			w.busy += d
			w.s.in.workerSpan(w.id, "busy", d)
			inBurst = false
		}
		w.flushAll()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(backoff)
		select {
		case <-w.wake:
		case <-timer.C:
			if backoff < time.Millisecond {
				backoff *= 2
			}
		case <-w.s.done:
			return
		}
	}
}

// runSCC is the barrier-mode worker loop: per level, admit the deferred
// messages, drain the local queue to empty (no stealing — components are
// worker-owned), flush, release this level's components, and acknowledge.
func (w *pworker) runSCC(wg *sync.WaitGroup, levelCh <-chan int, ack chan<- struct{}) {
	defer wg.Done()
	for l := range levelCh {
		var t0 time.Time
		if w.timing {
			t0 = time.Now() //rpqvet:allow timenow (gated by w.timing, once per level)
		}
		w.drainDeferred()
		for _, m := range w.byLevel[l] {
			w.admit(m, false)
		}
		w.byLevel[l] = nil
		for {
			// Keep the barrier protocol intact on cancel: stop draining but
			// still flush, release, and ack, then wait for the coordinator
			// to close the level channel.
			if w.s.cxl.state() != cxlRunning {
				break
			}
			t, ok := w.pop()
			if !ok {
				break
			}
			w.process(t)
			w.sampleGauges()
		}
		w.flushAll()
		w.releaseLevel(l)
		if w.timing {
			d := time.Since(t0)
			w.busy += d
			w.s.in.workerSpan(w.id, "level", d)
		}
		ack <- struct{}{}
	}
}

// releaseLevel frees the reach-set storage of this worker's components at
// level l, mirroring the sequential SCC release. All messages into a
// component arrive from strictly earlier levels, so nothing can re-enter.
func (w *pworker) releaseLevel(l int) {
	s := w.s
	if b := w.seen.Bytes(); b > w.maxBytes {
		w.maxBytes = b
	}
	for _, ci := range s.compsAtLevel[l] {
		if int(ci%int32(len(s.workers))) != w.id {
			continue
		}
		for _, v := range s.comps[ci] {
			lv := s.localv[v]
			w.seen.Release(lv)
			w.live -= int(w.perLocal[lv])
			w.perLocal[lv] = 0
		}
	}
}

// existEnumParallel parallelizes the enumeration algorithm over full
// substitutions: a producer enumerates the domain product while workers run
// the independent ground reachability passes, each with its own epoch-reset
// scratch. Sorted Pairs and the deterministic stats match existEnum;
// Bytes sums the per-worker scratch (W arrays are really allocated).
func existEnumParallel(g *graph.Graph, v0 int32, q *Query, opts Options) (*Result, error) {
	if opts.Compact {
		g = g.CompactFor(q.NFA.Labels)
	}
	var stats Stats
	stats.DeterminismOK = true
	nfa := q.NFA
	in := newInstr(opts)
	tDoms := in.phaseBegin("domains")
	doms := ComputeDomains(q, g, opts.Domains)
	stats.Phases.Domains.Wall = in.phaseEnd("domains", tDoms)
	stats.EnumSubsts = doms.Count()

	W := opts.Workers
	states := make([]*enumState, W)
	for i := range states {
		es, err := newEnumState(g, nfa)
		if err != nil {
			return nil, err
		}
		states[i] = es
	}

	const enumBatchSize = 16
	work := make(chan []subst.Subst, 2*W)
	type wres struct {
		pairs    []Pair
		stats    Stats
		maxBytes int64
		busy     time.Duration
	}
	results := make([]wres, W)
	var exBase *explainCollector
	exW := make([]*explainCollector, W)
	if opts.Explain {
		exBase = newExplainCollector(nfa, g.NumLabels())
		for i := range exW {
			exW[i] = exBase.fork()
		}
	}

	tEnum := in.phaseBegin("enumerate")
	var wg sync.WaitGroup
	wg.Add(W)
	for i := 0; i < W; i++ {
		go func(i int, es *enumState) {
			defer wg.Done()
			r := &results[i]
			resHere := map[int32]bool{}
			for batch := range work {
				var t0 time.Time
				if exBase != nil {
					t0 = time.Now() //rpqvet:allow timenow (gated by explain mode, once per batch)
				}
				for _, th := range batch {
					// Draining the remaining batches without running them
					// lets the producer's sends complete, so close(work)
					// and the join below cannot deadlock on cancel.
					if opts.cxl.state() != cxlRunning {
						break
					}
					clear(resHere)
					if !es.run(g, v0, nfa, th, resHere, &r.stats, exW[i], opts.cxl) {
						break
					}
					for v := range resHere {
						r.pairs = append(r.pairs, Pair{Vertex: v, Subst: th})
					}
					if b := es.bytes() + int64(len(resHere))*16; b > r.maxBytes {
						r.maxBytes = b
					}
				}
				if exBase != nil {
					r.busy += time.Since(t0)
				}
			}
		}(i, states[i])
	}
	var batch []subst.Subst
	enumerated := 0
	subst.ForEachFull(q.Pars(), doms, func(th subst.Subst) bool {
		if opts.cxl.state() != cxlRunning {
			return false
		}
		if enumerated++; in.gauges != nil {
			in.gauges.EnumSubsts.Set(int64(enumerated))
		}
		if p := opts.Progress; p != nil {
			p(Progress{Phase: "enumerate", EnumSubsts: int64(enumerated), Workers: W})
		}
		batch = append(batch, th.Clone())
		if len(batch) >= enumBatchSize {
			work <- batch
			batch = nil
		}
		return true
	})
	if len(batch) > 0 {
		work <- batch
	}
	close(work)
	wg.Wait()
	stats.Phases.Enumerate.Wall = in.phaseEnd("enumerate", tEnum)

	var pairs []Pair
	var maxBytes int64
	var profiles []WorkerProfile
	for i := range results {
		r := &results[i]
		pairs = append(pairs, r.pairs...)
		stats.WorklistInserts += r.stats.WorklistInserts
		stats.MatchCalls += r.stats.MatchCalls
		if r.stats.PeakTriples > stats.PeakTriples {
			stats.PeakTriples = r.stats.PeakTriples
		}
		maxBytes += r.maxBytes
		if exBase != nil {
			exBase.merge(exW[i])
			profiles = append(profiles, WorkerProfile{
				ID: i, Processed: int64(r.stats.WorklistInserts), Busy: r.busy,
			})
		}
	}
	stats.ReachSize = stats.WorklistInserts
	stats.ResultPairs = len(pairs)
	stats.Bytes = maxBytes + pairsBytes(len(pairs), q.Pars())
	if opts.cxl.state() != cxlRunning {
		stats.EnumSubsts = enumerated
		var exRep *Explain
		if exBase != nil {
			exBase.groundRuns = enumerated
			exRep = exBase.report(q, g, opts.Algo, "nfa")
			exRep.Workers = profiles
		}
		return nil, opts.cxl.interrupt(stats, exRep)
	}
	sortPairs(pairs)
	res := &Result{Pairs: pairs, Stats: stats}
	if exBase != nil {
		exBase.groundRuns = enumerated
		rep := exBase.report(q, g, opts.Algo, "nfa")
		rep.Workers = profiles
		res.Explain = rep
	}
	return res, nil
}
