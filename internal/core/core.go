// Package core implements the query solvers of Liu et al., "Parametric
// Regular Path Queries" (PLDI 2004): the existential algorithms of Section 3
// (basic, match-memoization, target-and-substitution-map precomputation,
// enumeration) and the universal algorithms of Section 4 (basic with runtime
// determinism checking, determinism-and-substitution-map precomputation,
// enumeration, hybrid).
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rpq/internal/automata"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/obs"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// Algo selects the algorithm variant (Sections 3, 4, 6).
type Algo int

const (
	// AlgoBasic is the plain worklist algorithm, pseudo-code (2)/(6).
	AlgoBasic Algo = iota
	// AlgoMemo adds memoization of match results (the substitution map M_s).
	AlgoMemo
	// AlgoPrecomp precomputes the target-and-substitution map M_ts
	// (existential, pseudo-code (3)/(4)) or the determinism-and-substitution
	// map M_ds (universal).
	AlgoPrecomp
	// AlgoEnum enumerates all full substitutions over the parameter domains
	// and runs a parameter-free query per substitution.
	AlgoEnum
	// AlgoHybrid (universal only) first runs an existential query, then
	// enumerates only extensions of the substitutions it found.
	AlgoHybrid
)

func (a Algo) String() string {
	switch a {
	case AlgoBasic:
		return "basic"
	case AlgoMemo:
		return "memo"
	case AlgoPrecomp:
		return "precomputation"
	case AlgoEnum:
		return "enumeration"
	case AlgoHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// DomainMode selects how parameter domains are computed for extension
// enumeration and the enumeration algorithms.
type DomainMode int

const (
	// DomainsRefined restricts each parameter to the symbols occurring in
	// the graph at the (constructor, argument-position) pairs where the
	// parameter appears in the pattern (Section 5.3's refinement of symbs).
	DomainsRefined DomainMode = iota
	// DomainsAllSymbols uses every symbol of the universe for every
	// parameter, the symbs bound of the complexity analysis.
	DomainsAllSymbols
)

// CompletionMode selects how the universal algorithms treat states with no
// matching transition.
type CompletionMode int

const (
	// Incomplete handles incomplete automata directly with the badstate
	// rules (iii)/(iv) — the paper's improvement over prior work.
	Incomplete CompletionMode = iota
	// CompleteTrap adds a trap state reached by a negated alternation of
	// each state's outgoing labels — a compact completion.
	CompleteTrap
	// CompleteExplicit adds one explicit trap transition per (state,
	// uncovered edge label) pair, the classical construction required by
	// Liu & Yu (2002); parameter-free patterns only. Its space grows with
	// states × edgelabels, which is what the paper's incomplete-automaton
	// algorithm saves.
	CompleteExplicit
)

func (c CompletionMode) String() string {
	switch c {
	case Incomplete:
		return "incomplete"
	case CompleteTrap:
		return "trap"
	case CompleteExplicit:
		return "explicit"
	}
	return fmt.Sprintf("CompletionMode(%d)", int(c))
}

// Options configures a solver run.
type Options struct {
	Algo    Algo
	Table   subst.TableKind
	Domains DomainMode
	// Completion selects the universal algorithms' automaton completion
	// (the prior-work baseline comparison); existential queries ignore it.
	Completion CompletionMode
	// SCCOrder processes vertices one strongly connected component at a
	// time in topological order, releasing per-component reach-set storage
	// when a component is finished (Section 5.3). Existential only.
	SCCOrder bool
	// Compact drops edges no transition label can match before solving
	// (Section 5.3). Existential only; universal queries quantify over all
	// paths, so compaction would change their meaning.
	Compact bool
	// Workers sets the number of goroutines the existential solver uses;
	// values <= 1 select the sequential algorithms. The parallel solver
	// returns the same sorted Pairs (and the same WorklistInserts,
	// ReachSize, Substs, ResultPairs, and DeterminismOK) as the sequential
	// one; PeakTriples, Bytes, and the match-call/cache counters become
	// approximate, and witness paths may differ while remaining valid. See
	// exist_parallel.go. Universal queries ignore it except through
	// AlgoHybrid's inner existential pass.
	Workers int
	// Witnesses records, for each existential answer, one path from the
	// start vertex witnessing it (the error trace). Costs parent pointers
	// for the whole reach set. Worklist algorithms only; ignored by
	// enumeration and by universal queries (whose answers quantify over
	// all paths).
	Witnesses bool
	// Tracer receives structured lifecycle events (phase begin/end,
	// worklist high-water marks, table-growth snapshots, end-of-run
	// counters). Nil disables tracing at the cost of one nil check; see
	// internal/obs for sinks (ring buffer, NDJSON, Chrome trace_event).
	Tracer obs.Tracer
	// Gauges, when non-nil, receives periodic live samples (worklist
	// depth, reach-set size, interned substitutions, table bytes) every
	// few hundred worklist pops, for the /metrics endpoint to expose
	// while a query runs.
	Gauges *obs.SolverGauges
	// Explain collects a per-query execution profile (per-state visit
	// counts, per-transition match attempt/hit/extension counters,
	// per-edge-label match histograms, table growth and worklist depth
	// curves, per-worker summaries) into Result.Explain. Disabled it costs
	// one nil check per counted event; see explain.go.
	Explain bool
	// Deadline, when positive, bounds the run's wall-clock time from the
	// solver entry point; a breach interrupts the run with an
	// InterruptError wrapping ErrDeadline. It composes with the context
	// passed to ExistContext/UnivContext (whichever fires first wins).
	Deadline time.Duration
	// Progress, when non-nil, receives throttled live snapshots of the
	// running query (one every few hundred worklist pops, mirroring the
	// gauge cadence). Parallel workers invoke it concurrently, so the
	// callback must be safe for concurrent use; it should also be cheap —
	// it runs on the solver's hot path.
	Progress func(Progress)

	// cxl is the cancellation watcher installed by ExistContext/UnivContext;
	// nil for uncancelable runs, so the loop checks cost one pointer test.
	cxl *canceler
}

// Progress is one live snapshot of a running query, delivered to
// Options.Progress. Figures from parallel runs are sums of per-worker
// published counters and may trail the true totals by up to one sample
// interval per worker.
type Progress struct {
	// Phase is the phase the snapshot was taken in ("solve", "enumerate").
	Phase string `json:"phase"`
	// Pops counts worklist pops (triples processed) so far.
	Pops int64 `json:"pops"`
	// WorklistDepth is the current depth of the worklist (summed across
	// workers for parallel runs).
	WorklistDepth int64 `json:"worklist_depth"`
	// Reach is the current reach-set size.
	Reach int64 `json:"reach_size"`
	// Substs is the number of distinct substitutions interned so far.
	Substs int64 `json:"substs"`
	// EnumSubsts is the number of full substitutions enumerated so far
	// (enumeration/hybrid algorithms; zero elsewhere).
	EnumSubsts int64 `json:"enum_substs"`
	// Workers is the number of solver goroutines.
	Workers int `json:"workers"`
}

// Stats instruments a run with the quantities reported in the paper's
// Tables 1-3 and Figure 3, plus the phase timings and cache counters of the
// observability layer. The struct marshals to JSON for machine-comparable
// runs (cmd/rpq -stats json, cmd/experiments -benchjson).
type Stats struct {
	// WorklistInserts counts elements inserted into the worklist — the
	// "worklist" columns of Tables 1 and 2.
	WorklistInserts int `json:"worklist_inserts"`
	// ReachSize is the size of the reach set R when the run finishes.
	ReachSize int `json:"reach_size"`
	// MatchCalls counts invocations of the match operation (cache misses
	// only, under memoization/precomputation).
	MatchCalls int `json:"match_calls"`
	// MatchCacheHits counts match lookups answered from the memoized
	// substitution map M_s (memoization/precomputation only).
	MatchCacheHits int `json:"match_cache_hits"`
	// MatchCacheMisses counts match lookups that had to compute (and
	// cache) a fresh result; equals the memoized portion of MatchCalls.
	MatchCacheMisses int `json:"match_cache_misses"`
	// MergeCalls counts merge operations.
	MergeCalls int `json:"merge_calls"`
	// Substs is the number of distinct substitutions interned, the
	// "substs" quantity of Figure 2 (excluding badsubst).
	Substs int `json:"substs"`
	// EnumSubsts is the number of full substitutions enumerated by the
	// enumeration and hybrid algorithms — the "substs" column of Tables
	// 1-2.
	EnumSubsts int `json:"enum_substs"`
	// ResultPairs is the size of the query result.
	ResultPairs int `json:"result_pairs"`
	// Bytes approximates the memory used by the run's data structures, for
	// the Table 3 comparison. Every algorithm variant and both table
	// representations account the same classes of storage: the reach set
	// (its peak when SCCOrder releases components, or the per-substitution
	// peak under enumeration), the substitution-interning table, the match
	// memo M_s, the precomputed M_ts/M_ds maps, per-vertex result
	// bookkeeping, auxiliary enumeration tables, and the result pairs.
	// Go runtime overheads (GC headers, map buckets beyond the modeled 48
	// bytes/entry) are not included.
	Bytes int64 `json:"bytes"`
	// DeterminismOK reports whether the universal determinism condition
	// held (always true for existential runs).
	DeterminismOK bool `json:"determinism_ok"`
	// PeakTriples is the maximum number of live reach-set triples; with
	// SCCOrder it can be far below ReachSize.
	PeakTriples int `json:"peak_triples"`
	// CPUTime is the process CPU time (user + system) attributed to the
	// query by the public layer: the getrusage delta across the run.
	// Under concurrent queries the delta includes other queries' work, so
	// it is an upper bound; exact attribution comes from the pprof labels
	// applied around every run. Zero when the run bypassed the public
	// layer (direct core calls) or on platforms without getrusage(2).
	CPUTime time.Duration `json:"cpu_ns,omitempty"`
	// AllocBytes is the heap allocation attributed to the query by the
	// public layer, with the same process-delta caveat as CPUTime.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Phases is the phase-level timing breakdown of the run.
	Phases PhaseTimings `json:"phases"`
}

// PhaseTimings is the wall-clock (and, when tracing, allocation) breakdown
// of one query run into its coarse phases.
type PhaseTimings struct {
	// Compile covers pattern normalization and automaton construction —
	// the ε-free NFA, plus the opaque-label determinization for universal
	// worklist runs. It is recorded once per compiled Query and copied
	// into every run's stats.
	Compile PhaseStat `json:"compile"`
	// Domains covers parameter-domain computation (Section 5.3).
	Domains PhaseStat `json:"domains"`
	// Solve is the whole solver pass, from after compilation to the
	// sorted result (it includes Domains and Enumerate).
	Solve PhaseStat `json:"solve"`
	// Enumerate is the portion of Solve spent running per-substitution
	// ground queries; zero for the worklist algorithms.
	Enumerate PhaseStat `json:"enumerate"`
}

// PhaseStat is the cost of one phase. AllocBytes is the heap allocation
// delta across the phase; it is sampled (via runtime/metrics, which does
// not stop the world) only when a Tracer is installed, and only for the
// Solve phase, preserving the zero-cost always-on path.
type PhaseStat struct {
	Wall       time.Duration `json:"wall_ns"`
	AllocBytes int64         `json:"alloc_bytes,omitempty"`
}

// WitnessStep is one edge of a witnessing path.
type WitnessStep struct {
	From  int32
	Label *label.CTerm
	To    int32
}

// Pair is one query answer: a vertex together with a substitution. With
// Options.Witnesses, Witness holds one start-to-vertex path matching the
// pattern under (an extension of) the substitution.
type Pair struct {
	Vertex  int32
	Subst   subst.Subst
	Witness []WitnessStep
}

// Result is a query result: answer pairs plus run statistics. Pairs are
// sorted by vertex, then substitution, for deterministic output. Explain is
// non-nil only when Options.Explain was set.
type Result struct {
	Pairs   []Pair
	Stats   Stats
	Explain *Explain
}

// Format renders the result with names resolved against the query.
func (r *Result) Format(g *graph.Graph, q *Query) string {
	s := ""
	for _, p := range r.Pairs {
		s += fmt.Sprintf("%s %s\n", g.VertexName(p.Vertex), p.Subst.Format(g.U, q.PS))
	}
	return s
}

// FormatWitness renders a witnessing path as "v1 -def(a)-> v2 -…-> vn".
func FormatWitness(g *graph.Graph, w []WitnessStep) string {
	if len(w) == 0 {
		return ""
	}
	s := g.VertexName(w[0].From)
	for _, st := range w {
		s += fmt.Sprintf(" -%s-> %s", st.Label.Format(g.U, nil), g.VertexName(st.To))
	}
	return s
}

// Query is a pattern compiled for querying: the ε-free NFA (existential
// algorithms), its opaque-label determinization (universal algorithms), the
// parameter space, and derived metadata. A compiled Query is safe for
// concurrent use by multiple solver runs — the query-service layer caches
// and shares them — as long as no caller mutates the exported fields after
// Compile.
type Query struct {
	Expr pattern.Expr
	U    *label.Universe
	PS   *label.ParamSpace
	NFA  *automata.NFA
	// CompileWall is the wall-clock time Compile spent normalizing the
	// pattern and building the NFA.
	CompileWall time.Duration
	// dfa is the subset-construction determinization of NFA, built on first
	// use by the universal solvers; dfaMu serializes the lazy build so a
	// cached Query shared by concurrent universal runs determinizes once.
	dfaMu sync.Mutex
	dfa   *automata.NFA
}

// Compile compiles a pattern against a universe (normally the graph's). The
// pattern is simplified first (language-preserving normalization), keeping
// the automaton small.
func Compile(e pattern.Expr, u *label.Universe) (*Query, error) {
	t0 := time.Now() //rpqvet:allow timenow (one-shot compile wall clock, not per-pop)
	e = pattern.Simplify(e)
	ps := &label.ParamSpace{}
	nfa, err := automata.FromPattern(e, u, ps)
	if err != nil {
		return nil, err
	}
	return &Query{Expr: e, U: u, PS: ps, NFA: nfa, CompileWall: time.Since(t0)}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(e pattern.Expr, u *label.Universe) *Query {
	q, err := Compile(e, u)
	if err != nil {
		panic(err)
	}
	return q
}

// Pars returns the number of parameters in the pattern.
func (q *Query) Pars() int { return q.PS.Len() }

// DFA returns the opaque-label determinization, building it on first use.
// Safe for concurrent use: the first caller builds, later callers reuse.
func (q *Query) DFA() *automata.NFA {
	q.dfaMu.Lock()
	defer q.dfaMu.Unlock()
	if q.dfa == nil {
		q.dfa = automata.Determinize(q.NFA)
	}
	return q.dfa
}

// BuildWall is the total automaton-construction wall time attributable to
// this query so far: compilation plus the determinization if it was built.
func (q *Query) BuildWall() time.Duration {
	d := q.CompileWall
	q.dfaMu.Lock()
	if q.dfa != nil {
		d += q.dfa.BuildWall
	}
	q.dfaMu.Unlock()
	return d
}

// ErrNondeterministic is returned by the universal basic/memo/precomp
// algorithms when the determinism condition of Section 4 fails at runtime;
// callers should fall back to AlgoHybrid or AlgoEnum.
var ErrNondeterministic = fmt.Errorf("core: universal determinism check failed; use the hybrid or enumeration algorithm")

// ComputeDomains derives the candidate symbol sets for each parameter
// against a graph, per the options' DomainMode.
func ComputeDomains(q *Query, g *graph.Graph, mode DomainMode) subst.Domains {
	pars := q.Pars()
	if mode == DomainsAllSymbols || pars == 0 {
		return subst.Uniform(pars, g.U.AllSymbols())
	}
	// Collect the (constructor, argument index) positions at which each
	// parameter occurs, preferring positive occurrences.
	type pos struct {
		ctor int32
		arg  int
	}
	positive := make([]map[pos]bool, pars)
	anywhere := make([]map[pos]bool, pars)
	for i := range positive {
		positive[i] = map[pos]bool{}
		anywhere[i] = map[pos]bool{}
	}
	for _, tl := range q.NFA.Labels {
		tl.PositivePositions(func(p, ctor int32, arg int) {
			positive[p][pos{ctor, arg}] = true
		})
		tl.AllPositions(func(p, ctor int32, arg int) {
			anywhere[p][pos{ctor, arg}] = true
		})
	}
	// Collect the symbols occurring at each position across the graph's
	// distinct labels.
	atPos := map[pos]map[int32]bool{}
	var scan func(c *label.CTerm)
	scan = func(c *label.CTerm) {
		if c.Kind != label.KApp {
			return
		}
		for i, a := range c.Args {
			switch a.Kind {
			case label.KSym:
				key := pos{c.Ctor, i}
				if atPos[key] == nil {
					atPos[key] = map[int32]bool{}
				}
				atPos[key][a.Sym] = true
			case label.KApp:
				scan(a)
			}
		}
	}
	for _, el := range g.Labels() {
		scan(el)
	}
	doms := make(subst.Domains, pars)
	for p := 0; p < pars; p++ {
		use := positive[p]
		if len(use) == 0 {
			use = anywhere[p]
		}
		if len(use) == 0 {
			doms[p] = g.U.AllSymbols()
			continue
		}
		set := map[int32]bool{}
		for k := range use {
			for s := range atPos[k] {
				set[s] = true
			}
		}
		dom := make([]int32, 0, len(set))
		for s := range set {
			dom = append(dom, s)
		}
		sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })
		doms[p] = dom
	}
	return doms
}

// sortPairs orders result pairs canonically.
func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.Vertex != b.Vertex {
			return a.Vertex < b.Vertex
		}
		for k := range a.Subst {
			if a.Subst[k] != b.Subst[k] {
				return a.Subst[k] < b.Subst[k]
			}
		}
		return false
	})
}
