package core

import (
	"strings"
	"testing"

	"rpq/internal/graph"
	"rpq/internal/pattern"
)

func TestEstimateQuantities(t *testing.T) {
	g := graph.MustReadString(figure1)
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	e := EstimateQuery(q, g, DomainsRefined)
	if e.Verts != 7 || e.GraphEdges != 7 || e.EdgeLabels != 5 {
		t.Errorf("graph quantities: %+v", e)
	}
	if e.Pars != 1 || e.LabelPars != 1 || e.TransLabels != 2 {
		t.Errorf("pattern quantities: %+v", e)
	}
	// Refined domain of x: the used variables a, b, c.
	if len(e.DomainSizes) != 1 || e.DomainSizes[0] != 3 || e.SubstsBound != 3 {
		t.Errorf("domains: %+v", e)
	}
	all := EstimateQuery(q, g, DomainsAllSymbols)
	if all.SubstsBound < e.SubstsBound {
		t.Errorf("all-symbols bound below refined: %v < %v", all.SubstsBound, e.SubstsBound)
	}
	if e.BasicTimeBound <= 0 || e.MemoTimeBound <= 0 || e.EnumTimeBound <= 0 {
		t.Errorf("bounds: %+v", e)
	}
	// Memoization's bound is never above basic's on these inputs.
	if e.MemoTimeBound > e.BasicTimeBound {
		t.Errorf("memo bound %v above basic %v", e.MemoTimeBound, e.BasicTimeBound)
	}
	if s := e.String(); !strings.Contains(s, "time bounds") {
		t.Errorf("String() = %q", s)
	}
}

func TestAdviseNegationFirst(t *testing.T) {
	g := graph.MustReadString(figure1)
	// Forward uninit query: x is negated before any positive binding.
	q := MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	advice := Advise(q)
	if len(advice) != 1 || !strings.Contains(advice[0], "backward") {
		t.Fatalf("advice = %v", advice)
	}
	// Backward formulation binds x first: no advice.
	qb := MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), g.U)
	if advice := Advise(qb); len(advice) != 0 {
		t.Fatalf("backward query advice = %v", advice)
	}
}

func TestAdviseGenericMatcher(t *testing.T) {
	g := graph.MustReadString(figure1)
	q := MustCompile(pattern.MustParse("f(!x,!y)"), g.U)
	advice := Advise(q)
	found := false
	for _, a := range advice {
		if strings.Contains(a, "agree/disagree") {
			found = true
		}
	}
	if !found {
		t.Fatalf("generic-matcher advice missing: %v", advice)
	}
	// A clean query has no findings.
	if advice := Advise(MustCompile(pattern.MustParse("_* state(s) act(_)"), g.U)); len(advice) != 0 {
		t.Fatalf("deadlock query advice = %v", advice)
	}
}
