package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpq/internal/automata"
	"rpq/internal/graph"
)

// Explain is the per-query execution profile produced when Options.Explain
// is set: the compiled automaton annotated with per-state visit counts and
// per-transition match attempt/hit/extension counters, a per-edge-label
// match histogram, substitution-table growth samples, worklist depth
// samples, and — for parallel runs — per-worker summaries. It marshals to
// JSON; Format renders a text report and DOT a Graphviz rendering of the
// annotated automaton.
type Explain struct {
	// Algo is the algorithm variant that produced the profile.
	Algo string `json:"algo"`
	// Automaton says which automaton the state/transition profiles cover:
	// "nfa" for the existential solvers (and the enumeration/hybrid
	// universal passes, whose ground-DFA visits are attributed back to the
	// constituent NFA states), "dfa" for the direct universal solvers.
	Automaton string `json:"automaton"`
	// States holds one entry per automaton state, plus — for universal
	// worklist runs — the badstate pseudo-state (Bad true).
	States []StateProfile `json:"states"`
	// Transitions holds one entry per automaton transition, in state order.
	Transitions []TransProfile `json:"transitions"`
	// Labels is the per-graph-edge-label match histogram.
	Labels []LabelProfile `json:"labels"`
	// Totals aggregates the profile for consistency checks against Stats.
	Totals ExplainTotals `json:"totals"`
	// TableCurve samples the substitution table's occupancy as it grows
	// (power-of-two sizes, sequential runs) with a final end-of-run point.
	TableCurve []TablePoint `json:"table_curve,omitempty"`
	// DepthSamples is the worklist depth over time (by pop count), adaptively
	// downsampled to a bounded number of points.
	DepthSamples []DepthSample `json:"depth_samples,omitempty"`
	// Workers summarizes each parallel-solver worker; empty for sequential
	// runs.
	Workers []WorkerProfile `json:"workers,omitempty"`
	// GroundRuns counts the per-substitution ground automaton passes of the
	// enumeration/hybrid algorithms.
	GroundRuns int `json:"ground_runs,omitempty"`
	// CPUTime and AllocBytes are the run's attributed process CPU time and
	// heap allocation, stamped by the public layer with the same
	// process-delta caveat as Stats.CPUTime; zero for direct core calls.
	CPUTime time.Duration `json:"cpu_ns,omitempty"`
	// AllocBytes is the heap allocation attributed to the run.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// StateProfile is one automaton state's profile.
type StateProfile struct {
	State int `json:"state"`
	// Visits counts worklist pops of triples at this state. For the
	// enumeration/hybrid universal algorithms a ground-DFA pop is attributed
	// to every NFA state of its subset, so the sum over states can exceed
	// WorklistInserts there.
	Visits int64 `json:"visits"`
	Start  bool  `json:"start,omitempty"`
	Final  bool  `json:"final,omitempty"`
	// Bad marks the universal badstate pseudo-state.
	Bad bool `json:"bad,omitempty"`
}

// TransProfile is one automaton transition's profile.
type TransProfile struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
	// Attempts counts match attempts of this transition against graph edge
	// labels (cache hits included, so memoization does not change it).
	Attempts int64 `json:"attempts"`
	// Hits counts attempts that matched under some substitution.
	Hits int64 `json:"hits"`
	// Extensions counts the substitutions emitted through this transition
	// (before reach-set dedup).
	Extensions int64 `json:"extensions"`
}

// LabelProfile is the match histogram entry of one graph edge label.
type LabelProfile struct {
	Label    string `json:"label"`
	Attempts int64  `json:"attempts"`
	Hits     int64  `json:"hits"`
}

// ExplainTotals aggregates the profile. For every variant,
// Attempts == Stats.MatchCalls + Stats.MatchCacheHits; for the worklist and
// existential-enumeration algorithms, Visits == Stats.WorklistInserts (each
// inserted triple is popped exactly once), while the universal
// enumeration/hybrid ground passes report their pops in GroundPops and
// attribute Visits per subset state.
type ExplainTotals struct {
	Visits     int64 `json:"visits"`
	Attempts   int64 `json:"attempts"`
	Hits       int64 `json:"hits"`
	Extensions int64 `json:"extensions"`
	GroundPops int64 `json:"ground_pops,omitempty"`
}

// TablePoint is one substitution-table occupancy sample.
type TablePoint struct {
	Substs int   `json:"substs"`
	Bytes  int64 `json:"bytes"`
}

// DepthSample is one worklist depth observation at a given pop count.
type DepthSample struct {
	Pop   int64 `json:"pop"`
	Depth int   `json:"depth"`
}

// WorkerProfile summarizes one parallel-solver worker.
type WorkerProfile struct {
	ID        int           `json:"id"`
	Processed int64         `json:"processed"`
	Steals    int64         `json:"steals"`
	Batches   int64         `json:"batches"`
	BatchMsgs int64         `json:"batched_msgs"`
	Busy      time.Duration `json:"busy_ns"`
}

// absorb adds the counters of another profile over the same automaton into
// e (state, transition, and label orders must match; o may lack the
// badstate entry). The hybrid algorithm uses it to fold its inner
// existential profile into the ground-pass profile.
func (e *Explain) absorb(o *Explain) {
	if o == nil {
		return
	}
	for i := range o.States {
		if i < len(e.States) && e.States[i].State == o.States[i].State {
			e.States[i].Visits += o.States[i].Visits
		}
	}
	for i := range o.Transitions {
		if i < len(e.Transitions) {
			e.Transitions[i].Attempts += o.Transitions[i].Attempts
			e.Transitions[i].Hits += o.Transitions[i].Hits
			e.Transitions[i].Extensions += o.Transitions[i].Extensions
		}
	}
	for i := range o.Labels {
		if i < len(e.Labels) {
			e.Labels[i].Attempts += o.Labels[i].Attempts
			e.Labels[i].Hits += o.Labels[i].Hits
		}
	}
	e.Totals.Visits += o.Totals.Visits
	e.Totals.Attempts += o.Totals.Attempts
	e.Totals.Hits += o.Totals.Hits
	e.Totals.Extensions += o.Totals.Extensions
	e.Totals.GroundPops += o.Totals.GroundPops
	e.GroundRuns += o.GroundRuns
	if len(e.TableCurve) == 0 {
		e.TableCurve = o.TableCurve
	}
	if len(e.DepthSamples) == 0 {
		e.DepthSamples = o.DepthSamples
	}
	e.Workers = append(e.Workers, o.Workers...)
}

// Consistent cross-checks the profile's totals against the run's Stats and
// returns a descriptive error on the first violated invariant:
//
//   - Attempts == MatchCalls + MatchCacheHits for every variant (every
//     counted match lookup is one attempt, memoized or not);
//   - Visits == WorklistInserts when no ground passes ran (each inserted
//     element is popped exactly once, sequential or parallel);
//   - with ground passes (universal enumeration/hybrid), GroundPops <=
//     WorklistInserts and Visits >= GroundPops (each pop is attributed to
//     every NFA state of its subset).
func (e *Explain) Consistent(s *Stats) error {
	if want := int64(s.MatchCalls) + int64(s.MatchCacheHits); e.Totals.Attempts != want {
		return fmt.Errorf("explain: attempts %d != match_calls+match_cache_hits %d",
			e.Totals.Attempts, want)
	}
	if e.Totals.Hits > e.Totals.Attempts {
		return fmt.Errorf("explain: hits %d > attempts %d", e.Totals.Hits, e.Totals.Attempts)
	}
	if e.Totals.GroundPops == 0 {
		if e.Totals.Visits != int64(s.WorklistInserts) {
			return fmt.Errorf("explain: visits %d != worklist_inserts %d",
				e.Totals.Visits, s.WorklistInserts)
		}
		return nil
	}
	if e.Totals.GroundPops > int64(s.WorklistInserts) {
		return fmt.Errorf("explain: ground_pops %d > worklist_inserts %d",
			e.Totals.GroundPops, s.WorklistInserts)
	}
	if e.Totals.Visits < e.Totals.GroundPops {
		return fmt.Errorf("explain: visits %d < ground_pops %d",
			e.Totals.Visits, e.Totals.GroundPops)
	}
	return nil
}

// TopStates returns the n most-visited states, most visited first (ties by
// state index).
func (e *Explain) TopStates(n int) []StateProfile {
	out := make([]StateProfile, len(e.States))
	copy(out, e.States)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Visits > out[j].Visits })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// maxDepthSamples bounds the depth-over-time series; when exceeded, the
// series is halved and the sampling stride doubled.
const maxDepthSamples = 512

// explainCollector accumulates the profile during a run. All counters are
// dense arrays indexed by state, flattened transition index (transBase[s]+i
// for the i-th transition of state s), or graph edge-label id, so the
// enabled cost per event is an array increment. A nil collector disables
// everything: every call site guards with a single nil check.
type explainCollector struct {
	auto      *automata.NFA
	transBase []int32

	visits     []int64 // per state; one extra slot for the universal badstate
	attempts   []int64 // per flattened transition
	hits       []int64
	extensions []int64

	labelAttempts []int64 // per graph edge-label id
	labelHits     []int64

	// curTrans/curLabel attribute the next attempt/hit/extension; curTrans
	// is -1 during precomputation probes that have no solve-time transition
	// (the label histogram still accrues).
	curTrans int32
	curLabel int32

	pops        int64
	depth       []DepthSample
	depthStride int64

	curve      []TablePoint
	groundPops int64
	groundRuns int
}

func newExplainCollector(auto *automata.NFA, numLabels int) *explainCollector {
	base := make([]int32, auto.NumStates+1)
	total := int32(0)
	for s := 0; s < auto.NumStates; s++ {
		base[s] = total
		total += int32(len(auto.Trans[s]))
	}
	base[auto.NumStates] = total
	return &explainCollector{
		auto:          auto,
		transBase:     base,
		visits:        make([]int64, auto.NumStates+1),
		attempts:      make([]int64, total),
		hits:          make([]int64, total),
		extensions:    make([]int64, total),
		labelAttempts: make([]int64, numLabels),
		labelHits:     make([]int64, numLabels),
		curTrans:      -1,
		depthStride:   1,
	}
}

// fork returns a worker-private collector over the same dimensions; merge
// folds it back.
func (c *explainCollector) fork() *explainCollector {
	return &explainCollector{
		auto:          c.auto,
		transBase:     c.transBase,
		visits:        make([]int64, len(c.visits)),
		attempts:      make([]int64, len(c.attempts)),
		hits:          make([]int64, len(c.hits)),
		extensions:    make([]int64, len(c.extensions)),
		labelAttempts: make([]int64, len(c.labelAttempts)),
		labelHits:     make([]int64, len(c.labelHits)),
		curTrans:      -1,
		depthStride:   1,
	}
}

// merge adds a forked collector's counters into c.
func (c *explainCollector) merge(w *explainCollector) {
	for i, v := range w.visits {
		c.visits[i] += v
	}
	for i, v := range w.attempts {
		c.attempts[i] += v
	}
	for i, v := range w.hits {
		c.hits[i] += v
	}
	for i, v := range w.extensions {
		c.extensions[i] += v
	}
	for i, v := range w.labelAttempts {
		c.labelAttempts[i] += v
	}
	for i, v := range w.labelHits {
		c.labelHits[i] += v
	}
	c.groundPops += w.groundPops
	c.groundRuns += w.groundRuns
}

// visit records one worklist pop at state s (s == NumStates is the
// universal badstate).
func (c *explainCollector) visit(s int32) { c.visits[s]++ }

// setCur attributes subsequent attempt/hit/extension events to the
// flattened transition index ti (or -1 for precompute probes) matching
// against graph edge label elID.
func (c *explainCollector) setCur(ti, elID int32) {
	c.curTrans = ti
	c.curLabel = elID
}

// ti flattens (state, i-th transition of state).
func (c *explainCollector) ti(s int32, i int) int32 { return c.transBase[s] + int32(i) }

// attempt records one match attempt of the current transition; ok says it
// matched under some substitution.
func (c *explainCollector) attempt(ok bool) {
	c.labelAttempts[c.curLabel]++
	if ok {
		c.labelHits[c.curLabel]++
	}
	if c.curTrans >= 0 {
		c.attempts[c.curTrans]++
		if ok {
			c.hits[c.curTrans]++
		}
	}
}

// extend records one substitution emitted through the current transition.
func (c *explainCollector) extend() {
	if c.curTrans >= 0 {
		c.extensions[c.curTrans]++
	}
}

// pop records a worklist depth observation, adaptively downsampled.
func (c *explainCollector) pop(depth int) {
	c.pops++
	if c.pops%c.depthStride != 0 {
		return
	}
	c.depth = append(c.depth, DepthSample{Pop: c.pops, Depth: depth})
	if len(c.depth) >= maxDepthSamples {
		kept := c.depth[:0]
		for i := 1; i < len(c.depth); i += 2 {
			kept = append(kept, c.depth[i])
		}
		c.depth = kept
		c.depthStride *= 2
	}
}

// tableGrowth returns a growth callback recording occupancy samples at
// power-of-two sizes — at most log2(substs) points on any run, and at least
// one even on a query interning a handful of substitutions.
func (c *explainCollector) tableGrowth() func(n int, bytes int64) {
	next := 1
	return func(n int, bytes int64) {
		if n >= next {
			next *= 2
			c.curve = append(c.curve, TablePoint{Substs: n, Bytes: bytes})
		}
	}
}

// groundPop records one ground-DFA worklist pop of the universal
// enumeration/hybrid algorithms; the subset states are visited separately.
func (c *explainCollector) groundPop() { c.groundPops++ }

// report assembles the profile. q supplies name formatting; g the edge
// labels; automaton tags which automaton the profile covers.
func (c *explainCollector) report(q *Query, g *graph.Graph, algo Algo, automaton string) *Explain {
	e := &Explain{
		Algo:         algo.String(),
		Automaton:    automaton,
		TableCurve:   c.curve,
		DepthSamples: c.depth,
		GroundRuns:   c.groundRuns,
	}
	a := c.auto
	hasBad := c.visits[a.NumStates] > 0
	for s := 0; s < a.NumStates; s++ {
		e.States = append(e.States, StateProfile{
			State:  s,
			Visits: c.visits[s],
			Start:  int32(s) == a.Start,
			Final:  a.Final[s],
		})
		e.Totals.Visits += c.visits[s]
		for i, tr := range a.Trans[s] {
			ti := c.ti(int32(s), i)
			e.Transitions = append(e.Transitions, TransProfile{
				From:       s,
				To:         int(tr.To),
				Label:      tr.Label.Format(q.U, q.PS),
				Attempts:   c.attempts[ti],
				Hits:       c.hits[ti],
				Extensions: c.extensions[ti],
			})
			e.Totals.Attempts += c.attempts[ti]
			e.Totals.Hits += c.hits[ti]
			e.Totals.Extensions += c.extensions[ti]
		}
	}
	if hasBad {
		e.States = append(e.States, StateProfile{
			State:  a.NumStates,
			Visits: c.visits[a.NumStates],
			Bad:    true,
		})
		e.Totals.Visits += c.visits[a.NumStates]
	}
	for id, lbl := range g.Labels() {
		e.Labels = append(e.Labels, LabelProfile{
			Label:    lbl.Format(g.U, nil),
			Attempts: c.labelAttempts[id],
			Hits:     c.labelHits[id],
		})
	}
	e.Totals.GroundPops = c.groundPops
	return e
}

// Format renders the profile as a human-readable text report.
func (e *Explain) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query profile: algo=%s automaton=%s\n", e.Algo, e.Automaton)
	fmt.Fprintf(&b, "totals: visits=%d attempts=%d hits=%d extensions=%d",
		e.Totals.Visits, e.Totals.Attempts, e.Totals.Hits, e.Totals.Extensions)
	if e.Totals.GroundPops > 0 {
		fmt.Fprintf(&b, " ground_pops=%d ground_runs=%d", e.Totals.GroundPops, e.GroundRuns)
	}
	b.WriteString("\n\nstates:\n")
	for _, s := range e.States {
		marks := ""
		if s.Start {
			marks += " start"
		}
		if s.Final {
			marks += " final"
		}
		if s.Bad {
			marks += " bad"
		}
		fmt.Fprintf(&b, "  s%-4d visits=%-10d%s\n", s.State, s.Visits, marks)
	}
	b.WriteString("\ntransitions:\n")
	for _, t := range e.Transitions {
		fmt.Fprintf(&b, "  s%d -%s-> s%d  attempts=%d hits=%d extensions=%d\n",
			t.From, t.Label, t.To, t.Attempts, t.Hits, t.Extensions)
	}
	b.WriteString("\nedge labels:\n")
	lbls := make([]LabelProfile, len(e.Labels))
	copy(lbls, e.Labels)
	sort.SliceStable(lbls, func(i, j int) bool { return lbls[i].Attempts > lbls[j].Attempts })
	for _, l := range lbls {
		if l.Attempts == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-24s attempts=%-10d hits=%d\n", l.Label, l.Attempts, l.Hits)
	}
	if len(e.TableCurve) > 0 {
		b.WriteString("\nsubstitution table growth:\n")
		for _, p := range e.TableCurve {
			fmt.Fprintf(&b, "  substs=%-8d bytes=%d\n", p.Substs, p.Bytes)
		}
	}
	if len(e.DepthSamples) > 0 {
		last := e.DepthSamples[len(e.DepthSamples)-1]
		maxd := 0
		for _, d := range e.DepthSamples {
			if d.Depth > maxd {
				maxd = d.Depth
			}
		}
		fmt.Fprintf(&b, "\nworklist depth: %d samples over %d pops, peak sampled depth %d\n",
			len(e.DepthSamples), last.Pop, maxd)
	}
	if len(e.Workers) > 0 {
		b.WriteString("\nworkers:\n")
		for _, w := range e.Workers {
			fmt.Fprintf(&b, "  w%-3d processed=%-9d steals=%-8d batches=%-6d batched_msgs=%-8d busy=%s\n",
				w.ID, w.Processed, w.Steals, w.Batches, w.BatchMsgs, w.Busy.Round(time.Microsecond))
		}
	}
	return b.String()
}

// DOT renders the annotated automaton in Graphviz DOT: states are filled on
// a white→red heat scale by visit count, transitions are labeled
// "label attempts/hits/extensions" with pen width scaled by extensions.
func (e *Explain) DOT() string {
	var maxVisits, maxExt int64 = 1, 1
	for _, s := range e.States {
		if s.Visits > maxVisits {
			maxVisits = s.Visits
		}
	}
	for _, t := range e.Transitions {
		if t.Extensions > maxExt {
			maxExt = t.Extensions
		}
	}
	var b strings.Builder
	b.WriteString("digraph explain {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [style=filled, fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")
	for _, s := range e.States {
		shape := "circle"
		if s.Final {
			shape = "doublecircle"
		}
		if s.Bad {
			shape = "octagon"
		}
		// Heat: saturation proportional to the visit share (HSV red).
		sat := float64(s.Visits) / float64(maxVisits)
		name := fmt.Sprintf("s%d", s.State)
		if s.Bad {
			name = "bad"
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\\n%d\", shape=%s, fillcolor=\"0.0 %.2f 1.0\"];\n",
			name, name, s.Visits, shape, sat)
		if s.Start {
			fmt.Fprintf(&b, "  __start [shape=point, label=\"\"];\n  __start -> %s;\n", name)
		}
	}
	for _, t := range e.Transitions {
		w := 1.0 + 3.0*float64(t.Extensions)/float64(maxExt)
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q, penwidth=%.2f];\n",
			t.From, t.To, fmt.Sprintf("%s\n%d/%d/%d", t.Label, t.Attempts, t.Hits, t.Extensions), w)
	}
	b.WriteString("}\n")
	return b.String()
}
