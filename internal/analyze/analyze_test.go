package analyze

import (
	"fmt"
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/graph"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

// lintSrc parses and lints a pattern source.
func lintSrc(t *testing.T, src string, cfg Config) []Diagnostic {
	t.Helper()
	e, err := pattern.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Lint(e, src, cfg)
}

// codes extracts the diagnostic codes in order.
func codes(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

// find returns the first diagnostic with the given code, failing otherwise.
func find(t *testing.T, ds []Diagnostic, code string) Diagnostic {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in %v", code, ds)
	return Diagnostic{}
}

func hasCode(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestCleanPatterns(t *testing.T) {
	for _, src := range []string{
		"_* use(x,l) (!def(x))* entry()", // backward uninit-uses: binds x first
		"_* def(x) _* use(x)",
		"_* state(s) act('i')+ state(s)",
		"use(x)",
		"eps", // literal eps is intentional, not flagged
	} {
		if ds := lintSrc(t, src, Config{}); len(ds) != 0 {
			t.Errorf("%q: want clean, got %v", src, ds)
		}
	}
}

func TestEmptyLanguage(t *testing.T) {
	ds := lintSrc(t, "!_ use(x)", Config{})
	d := find(t, ds, CodeEmpty)
	if d.Severity != Error {
		t.Errorf("RPQ001 severity = %v, want error", d.Severity)
	}
	// The unsatisfiable label itself is also reported.
	if u := find(t, ds, CodeUnsatLabel); u.Severity != Error {
		t.Errorf("RPQ007 severity = %v, want error", u.Severity)
	}
	// With an empty language, dead-label and binding findings are
	// suppressed as noise.
	if hasCode(ds, CodeDeadLabel) || hasCode(ds, CodeNeverBinds) {
		t.Errorf("empty language should suppress RPQ003/RPQ004, got %v", codes(ds))
	}
}

func TestOnlyEpsilon(t *testing.T) {
	ds := lintSrc(t, "(!_)*", Config{})
	d := find(t, ds, CodeOnlyEps)
	if d.Severity != Warning {
		t.Errorf("RPQ002 severity = %v, want warning", d.Severity)
	}
	if !hasCode(ds, CodeUnsatLabel) {
		t.Errorf("want RPQ007 alongside RPQ002, got %v", codes(ds))
	}
}

func TestDeadLabel(t *testing.T) {
	src := "a() (!_ b())?"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeDeadLabel)
	if got := src[d.Span.Start:d.Span.End]; got != "b()" {
		t.Errorf("RPQ003 span text = %q, want b()", got)
	}
	if hasCode(ds, CodeEmpty) {
		t.Errorf("language is non-empty (a() matches); got %v", codes(ds))
	}
}

func TestNeverBinds(t *testing.T) {
	src := "_* (!def(x))*"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeNeverBinds)
	if d.Severity != Error {
		t.Errorf("RPQ004 severity = %v, want error", d.Severity)
	}
	if got := src[d.Span.Start:d.Span.End]; got != "!def(x)" {
		t.Errorf("RPQ004 span text = %q, want !def(x)", got)
	}
	// RPQ006 is withheld when the parameter never binds at all.
	if hasCode(ds, CodeNegBeforeBind) {
		t.Errorf("RPQ006 should defer to RPQ004, got %v", codes(ds))
	}

	// Under universal semantics the same pattern is only informational:
	// universal algorithms can bind parameters by domain enumeration.
	uds := lintSrc(t, src, Config{Universal: true})
	ud := find(t, uds, CodeNeverBinds)
	if ud.Severity != Info {
		t.Errorf("universal RPQ004 severity = %v, want info", ud.Severity)
	}
}

func TestNeverBindsPositiveButDead(t *testing.T) {
	// use(x) exists but is cut off by an unsatisfiable label, so x still
	// cannot bind on an accepting path.
	src := "a() | !_ use(x)"
	ds := lintSrc(t, src, Config{})
	find(t, ds, CodeNeverBinds)
}

func TestMayNotBind(t *testing.T) {
	src := "_* use(x)?"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeMayNotBind)
	if d.Severity != Warning {
		t.Errorf("RPQ005 severity = %v, want warning", d.Severity)
	}
	if got := src[d.Span.Start:d.Span.End]; got != "use(x)" {
		t.Errorf("RPQ005 span text = %q, want use(x)", got)
	}
	// A pattern that always binds must not warn.
	if ds := lintSrc(t, "_* use(x)", Config{}); hasCode(ds, CodeMayNotBind) {
		t.Errorf("unconditional binding flagged: %v", ds)
	}
}

func TestNegBeforeBind(t *testing.T) {
	src := "(!def(x))* use(x)"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeNegBeforeBind)
	if d.Severity != Warning {
		t.Errorf("RPQ006 severity = %v, want warning", d.Severity)
	}
	if got := src[d.Span.Start:d.Span.End]; got != "!def(x)" {
		t.Errorf("RPQ006 span text = %q, want !def(x)", got)
	}
	// The backward formulation binds x before the negation: clean.
	if ds := lintSrc(t, "_* use(x,l) (!def(x))* entry()", Config{}); hasCode(ds, CodeNegBeforeBind) {
		t.Errorf("backward formulation flagged: %v", ds)
	}
}

func TestUnsatLabelNegatedAlternation(t *testing.T) {
	src := "a() | !(_|def(x))"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeUnsatLabel)
	if got := src[d.Span.Start:d.Span.End]; got != "!(_|def(x))" {
		t.Errorf("RPQ007 span text = %q", got)
	}
}

func TestDuplicateBranch(t *testing.T) {
	src := "a() | b() | a()"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeDupBranch)
	if d.Span.Start != 12 { // the second a()
		t.Errorf("RPQ008 span = %v, want start 12", d.Span)
	}
}

func TestEpsBranchSubsumed(t *testing.T) {
	src := "eps | a()*"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeDupBranch)
	if got := src[d.Span.Start:d.Span.End]; got != "eps" {
		t.Errorf("RPQ008 span text = %q, want eps", got)
	}
	// eps | a() is fine: the branches are disjoint.
	if ds := lintSrc(t, "eps | a()", Config{}); hasCode(ds, CodeDupBranch) {
		t.Errorf("eps|a() flagged: %v", ds)
	}
}

func TestRedundantRepetition(t *testing.T) {
	for _, src := range []string{"(a()*)*", "(a()?)+", "(a()*)?"} {
		ds := lintSrc(t, src, Config{})
		if !hasCode(ds, CodeRedundantRep) {
			t.Errorf("%q: want RPQ009, got %v", src, ds)
		}
	}
	if ds := lintSrc(t, "(a() b())*", Config{}); hasCode(ds, CodeRedundantRep) {
		t.Errorf("(a() b())* flagged: %v", ds)
	}
}

// testGraph builds the small def/use graph shared by the graph-check tests.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.MustAddEdgeStr("v1", "def(a)", "v2")
	g.MustAddEdgeStr("v2", "use(a)", "v3")
	g.MustAddEdgeStr("v2", "use(b)", "v3")
	g.SetStart(g.Vertex("v1"))
	return g
}

func lintGraph(t *testing.T, g *graph.Graph, src string, cfg Config) []Diagnostic {
	t.Helper()
	e, err := pattern.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return LintForGraph(g, e, src, cfg)
}

func TestUnknownConstructor(t *testing.T) {
	g := testGraph(t)
	src := "_* uze(x)"
	ds := lintGraph(t, g, src, Config{})
	d := find(t, ds, CodeUnknownCtor)
	if got := src[d.Span.Start:d.Span.End]; got != "uze(x)" {
		t.Errorf("RPQ010 span text = %q", got)
	}
	// The typo makes the whole query unmatchable on this graph.
	if e := find(t, ds, CodeGraphEmpty); e.Severity != Error {
		t.Errorf("RPQ012 severity = %v, want error", e.Severity)
	}
}

func TestArityMismatch(t *testing.T) {
	g := testGraph(t)
	ds := lintGraph(t, g, "_* use(x,l)", Config{})
	d := find(t, ds, CodeArityMismatch)
	if !strings.Contains(d.Message, "arity 1") || !strings.Contains(d.Message, "not 2") {
		t.Errorf("RPQ011 message = %q", d.Message)
	}
	find(t, ds, CodeGraphEmpty)
}

func TestGraphEmptyOnlyWhenUnavoidable(t *testing.T) {
	g := testGraph(t)
	// The unknown constructor sits in an optional branch; the query can
	// still match.
	ds := lintGraph(t, g, "_* uze(x)?", Config{})
	if hasCode(ds, CodeGraphEmpty) {
		t.Errorf("optional unmatchable label should not be RPQ012: %v", ds)
	}
	if !hasCode(ds, CodeUnknownCtor) {
		t.Errorf("want RPQ010 for the typo, got %v", codes(ds))
	}
}

func TestNegVacuous(t *testing.T) {
	g := testGraph(t)
	// junk(x) matches nothing in the graph, so the negation excludes
	// nothing.
	ds := lintGraph(t, g, "(!junk(x))* use(x)", Config{})
	d := find(t, ds, CodeNegVacuous)
	if d.Severity != Info {
		t.Errorf("RPQ013 (excludes nothing) severity = %v, want info", d.Severity)
	}

	// !(def(_)|use(_)) excludes every label of this graph.
	ds = lintGraph(t, g, "_* !(def(_)|use(_)) use(x)", Config{})
	d = find(t, ds, CodeNegVacuous)
	if d.Severity != Warning {
		t.Errorf("RPQ013 (excludes everything) severity = %v, want warning", d.Severity)
	}
	find(t, ds, CodeGraphEmpty)
}

func TestGraphChecksCleanQuery(t *testing.T) {
	g := testGraph(t)
	ds := lintGraph(t, g, "_* def(x) _* use(x)", Config{})
	if len(ds) != 0 {
		t.Errorf("clean graph query flagged: %v", ds)
	}
}

// bigGraph returns a graph with n distinct e(aI,bI,cI) labels, for the
// cost-model advice tests.
func bigGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.MustAddEdgeStr("v1", fmt.Sprintf("e(a%d,b%d,c%d)", i, i, i), "v1")
	}
	g.SetStart(g.Vertex("v1"))
	return g
}

func TestVariantAdviceEnum(t *testing.T) {
	g := bigGraph(20) // domains 20^3 = 8000 > 4096
	e := pattern.MustParse("_* e(x,y,z)")
	ds := LintForGraph(g, e, "_* e(x,y,z)", Config{HaveVariant: true, Algo: core.AlgoEnum})
	d := find(t, ds, CodeVariantAdvice)
	if d.Severity != Warning {
		t.Errorf("RPQ014 severity = %v, want warning", d.Severity)
	}
	// The same query with memoization draws no advice.
	ds = LintForGraph(g, e, "_* e(x,y,z)", Config{HaveVariant: true, Algo: core.AlgoMemo})
	if hasCode(ds, CodeVariantAdvice) {
		t.Errorf("memoized variant flagged: %v", ds)
	}
}

func TestTableAdviceNested(t *testing.T) {
	g := bigGraph(50) // domains 50^3 = 125000 > 100000
	e := pattern.MustParse("_* e(x,y,z)")
	cfg := Config{HaveVariant: true, Algo: core.AlgoMemo, Table: subst.Nested}
	ds := LintForGraph(g, e, "_* e(x,y,z)", cfg)
	d := find(t, ds, CodeTableAdvice)
	if d.Severity != Info {
		t.Errorf("RPQ015 severity = %v, want info", d.Severity)
	}
	cfg.Table = subst.Hash
	ds = LintForGraph(g, e, "_* e(x,y,z)", cfg)
	if hasCode(ds, CodeTableAdvice) {
		t.Errorf("hash table flagged: %v", ds)
	}
}

func TestDiagnosticOrderingAndPos(t *testing.T) {
	src := "(!def(x))* use(x) | (!def(x))* use(x)"
	ds := lintSrc(t, src, Config{})
	for i := 1; i < len(ds); i++ {
		if ds[i].Span.Start < ds[i-1].Span.Start {
			t.Errorf("diagnostics not sorted by span: %v", ds)
		}
	}
	for _, d := range ds {
		if d.Pos == "" {
			t.Errorf("diagnostic lacks Pos: %+v", d)
		}
	}
}

func TestFormatRendersCaretAndHint(t *testing.T) {
	src := "(!def(x))* use(x)"
	ds := lintSrc(t, src, Config{})
	d := find(t, ds, CodeNegBeforeBind)
	out := Format(d, src)
	if !strings.Contains(out, "^") {
		t.Errorf("Format lacks caret:\n%s", out)
	}
	if !strings.Contains(out, "hint:") {
		t.Errorf("Format lacks hint:\n%s", out)
	}
	if !strings.Contains(out, "RPQ006 warning at 1:2-1:8") {
		t.Errorf("Format header wrong:\n%s", out)
	}
}

func TestSeverityJSON(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Error} {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := got.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, got)
		}
	}
}

func TestHelpers(t *testing.T) {
	ds := []Diagnostic{
		{Code: CodeOnlyEps, Severity: Warning},
		{Code: CodeEmpty, Severity: Error},
	}
	if !HasErrors(ds) {
		t.Error("HasErrors = false")
	}
	if errs := Errors(ds); len(errs) != 1 || errs[0].Code != CodeEmpty {
		t.Errorf("Errors = %v", errs)
	}
	if MaxSeverity(ds) != Error {
		t.Errorf("MaxSeverity = %v", MaxSeverity(ds))
	}
	if MaxSeverity(nil) != Info {
		t.Errorf("MaxSeverity(nil) = %v", MaxSeverity(nil))
	}
}
