package analyze

import (
	"fmt"

	"rpq/internal/core"
	"rpq/internal/graph"
	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/span"
	"rpq/internal/subst"
)

// alphabet summarizes the graph's distinct edge labels for satisfiability
// checks: the constructors with the arity sets they occur at, and the labels
// themselves for matching. It works directly on the graph's compiled labels
// (matching resolves names through the universe's interning tables) so
// building it allocates nothing per label — lint cost on large graphs is
// dominated by the solver-shared domain estimation, not by this pass.
type alphabet struct {
	u       *label.Universe
	arities map[int32]map[int]bool // constructor id -> arities seen
	labels  []*label.CTerm
}

func buildAlphabet(g *graph.Graph) *alphabet {
	a := &alphabet{u: g.U, arities: map[int32]map[int]bool{}, labels: g.Labels()}
	var walk func(c *label.CTerm)
	walk = func(c *label.CTerm) {
		if c.Kind != label.KApp {
			return
		}
		s := a.arities[c.Ctor]
		if s == nil {
			s = map[int]bool{}
			a.arities[c.Ctor] = s
		}
		s[len(c.Args)] = true
		for _, arg := range c.Args {
			walk(arg)
		}
	}
	for _, c := range a.labels {
		walk(c)
	}
	return a
}

// ctorArities resolves a pattern-side constructor name against the arity
// index. The distinct-constructor set is small, so a linear scan with name
// lookups beats building a string-keyed mirror of the table per lint.
func (a *alphabet) ctorArities(name string) (map[int]bool, bool) {
	for id, s := range a.arities {
		if a.u.Ctors.Name(id) == name {
			return s, true
		}
	}
	return nil, false
}

// couldMatch reports whether the pattern term t can match the ground edge
// label el under some parameter binding. Parameters and wildcards match
// anything; a negation is decidable only for parameter-free bodies and is
// conservatively matchable otherwise.
func couldMatch(t *label.Term, el *label.CTerm, u *label.Universe) bool {
	switch t.Kind {
	case label.KWildcard, label.KParam:
		return true
	case label.KSym:
		return el.Kind == label.KSym && t.Name == u.Syms.Name(el.Sym)
	case label.KApp:
		if el.Kind != label.KApp || len(t.Args) != len(el.Args) || t.Name != u.Ctors.Name(el.Ctor) {
			return false
		}
		for i := range t.Args {
			if !couldMatch(t.Args[i], el.Args[i], u) {
				return false
			}
		}
		return true
	case label.KOr:
		for _, a := range t.Args {
			if couldMatch(a, el, u) {
				return true
			}
		}
		return false
	case label.KNeg:
		// !B fails against el only when B matches el under every binding;
		// that is decidable only for parameter-free bodies.
		body := t.Args[0]
		if len(body.Params()) == 0 {
			return !couldMatch(body, el, u)
		}
		return true
	}
	return true
}

// graphSat reports whether the transition label can match at least one of
// the graph's distinct edge labels.
func (a *alphabet) graphSat(t *label.Term) bool {
	for _, el := range a.labels {
		if couldMatch(t, el, a.u) {
			return true
		}
	}
	return false
}

// checkGraph runs the graph-dependent checks: constructor/arity
// satisfiability (RPQ010, RPQ011), vacuous negations (RPQ013), graph-level
// emptiness (RPQ012), and variant advice from the cost model (RPQ014,
// RPQ015).
func (l *linter) checkGraph(g *graph.Graph, e pattern.Expr) {
	a := buildAlphabet(g)
	n := buildNFA(e)

	// Per-label alphabet findings, deduplicated by (code, message) so a
	// label under a star reports once.
	seen := map[string]bool{}
	once := func(code string, sev Severity, sp span.Span, msg, hint string) {
		key := code + "\x00" + msg + "\x00" + fmt.Sprint(sp)
		if !seen[key] {
			seen[key] = true
			l.report(code, sev, sp, msg, hint)
		}
	}
	for _, lt := range n.labeledTrans() {
		l.checkLabelAlphabet(a, lt.tr.term, lt.tr.sp, once)
	}

	// Graph-level emptiness: the pattern has accepting paths, but none
	// survive against this graph's alphabet.
	patSat := func(tr atrans) bool { return !unsatLabel(tr.term) }
	gSat := func(tr atrans) bool { return patSat(tr) && a.graphSat(tr.term) }
	if n.reach([]int{n.start}, patSat)[n.final] && !n.reach([]int{n.start}, gSat)[n.final] {
		l.report(CodeGraphEmpty, Error, span.Span{},
			"pattern cannot match any path of this graph: every accepting path needs a label no edge label satisfies",
			"check the RPQ010/RPQ011/RPQ013 findings above for the labels that cannot match")
	}

	l.adviseVariant(g, e)
}

// checkLabelAlphabet reports the alphabet findings for one transition label.
func (l *linter) checkLabelAlphabet(a *alphabet, t *label.Term, sp span.Span,
	once func(code string, sev Severity, sp span.Span, msg, hint string)) {
	// Positive constructor occurrences: unknown names and unseen arities.
	var walkPos func(t *label.Term)
	walkPos = func(t *label.Term) {
		switch t.Kind {
		case label.KApp:
			if arities, ok := a.ctorArities(t.Name); !ok {
				once(CodeUnknownCtor, Warning, sp,
					fmt.Sprintf("constructor %s never occurs in the graph; the label cannot match", t.Name),
					"check the constructor name against the graph's edge labels")
			} else if !arities[len(t.Args)] {
				once(CodeArityMismatch, Warning, sp,
					fmt.Sprintf("constructor %s occurs in the graph only with arity %s, not %d",
						t.Name, formatArities(arities), len(t.Args)),
					"adjust the argument count to match the graph's labels")
			}
			for _, arg := range t.Args {
				walkPos(arg)
			}
		case label.KOr:
			for _, alt := range t.Args {
				walkPos(alt)
			}
		case label.KNeg:
			// Negated occurrences are judged as a whole below, not
			// constructor-by-constructor.
		}
	}
	walkPos(t)

	// Vacuous negations, judged against the alphabet.
	var walkNeg func(t *label.Term)
	walkNeg = func(t *label.Term) {
		switch t.Kind {
		case label.KNeg:
			body := t.Args[0]
			if coversAll(body) {
				return // RPQ007 already covers !_
			}
			excludes := false
			for _, el := range a.labels {
				if couldMatch(body, el, a.u) {
					excludes = true
					break
				}
			}
			if !excludes {
				once(CodeNegVacuous, Info, sp,
					fmt.Sprintf("negation !%s excludes no edge label of this graph; the label behaves like _", body),
					"if the negated operation can occur, check its constructor name and arity")
				return
			}
			if len(body.Params()) == 0 {
				all := len(a.labels) > 0
				for _, el := range a.labels {
					if !couldMatch(body, el, a.u) {
						all = false
						break
					}
				}
				if all {
					once(CodeNegVacuous, Warning, sp,
						fmt.Sprintf("negation !%s excludes every edge label of this graph; the label can never match", body),
						"the graph has no edges outside the negated set")
				}
			}
		case label.KApp, label.KOr:
			for _, arg := range t.Args {
				walkNeg(arg)
			}
		}
	}
	walkNeg(t)

	// Alphabet coverage under negation (RPQ016). RPQ010/RPQ011 judge only
	// positive occurrences, and RPQ013 judges a negation as a whole — so a
	// never-emitted constructor inside a negation whose other alternatives
	// do exclude something slips through both: the query still "works" but
	// excludes less than written. That is the shape frontend/schema drift
	// takes (e.g. a pattern written against acq/rel run on a graph whose
	// front end emits the canonical lock/unlock).
	var walkCover func(t *label.Term, negated bool)
	walkCover = func(t *label.Term, negated bool) {
		switch t.Kind {
		case label.KApp:
			if negated {
				if arities, ok := a.ctorArities(t.Name); !ok {
					once(CodeAlphabetCoverage, Warning, sp,
						fmt.Sprintf("negated constructor %s never occurs in the graph; the negation excludes less than written", t.Name),
						"if the operation can occur, the front end may emit a different constructor; internal/cfgschema lists the canonical names (e.g. lock/unlock, not acq/rel)")
				} else if !arities[len(t.Args)] {
					once(CodeAlphabetCoverage, Warning, sp,
						fmt.Sprintf("negated constructor %s occurs in the graph only with arity %s, not %d; the negation excludes less than written",
							t.Name, formatArities(arities), len(t.Args)),
						"adjust the argument count to match the graph's labels")
				}
			}
			for _, arg := range t.Args {
				walkCover(arg, negated)
			}
		case label.KOr:
			for _, alt := range t.Args {
				walkCover(alt, negated)
			}
		case label.KNeg:
			walkCover(t.Args[0], true)
		}
	}
	walkCover(t, false)
}

func formatArities(s map[int]bool) string {
	var out []int
	for k := range s {
		out = append(out, k)
	}
	// Small sets; simple insertion sort keeps this dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) == 1 {
		return fmt.Sprint(out[0])
	}
	return fmt.Sprint(out)
}

// adviseVariant evaluates the Figure 2 cost model for the query on this
// graph and flags predictably dominated algorithm or table choices
// (Tables 1 and 3 of the paper). It reuses core.EstimateQuery — the same
// plumbing behind the public EstimateQuery API.
func (l *linter) adviseVariant(g *graph.Graph, e pattern.Expr) {
	q, err := core.Compile(e, g.U)
	if err != nil {
		// Compilation problems surface at query time with their own errors.
		return
	}
	est := core.EstimateQuery(q, g, core.DomainsRefined)
	if est.Pars == 0 {
		return // a single empty substitution; every variant is equivalent
	}
	if l.cfg.HaveVariant {
		switch l.cfg.Algo {
		case core.AlgoEnum:
			// Enumeration pays one ground pass per substitution in the full
			// domain product, realized or not; the worklist variants pay only
			// for substitutions that actually arise.
			if est.SubstsBound > 4096 {
				l.report(CodeVariantAdvice, Warning, span.Span{},
					fmt.Sprintf("enumeration always runs one ground pass per substitution in the domain product (%.3g passes here), even when few substitutions are realized",
						est.SubstsBound),
					"prefer the memoized algorithm for this domain size (paper Table 1)")
			}
		case core.AlgoBasic:
			if est.MemoTimeBound*4 <= est.BasicTimeBound {
				l.report(CodeVariantAdvice, Info, span.Span{},
					fmt.Sprintf("the basic algorithm's bound (%.3g) is %.1fx the memoized bound (%.3g) here",
						est.BasicTimeBound, est.BasicTimeBound/est.MemoTimeBound, est.MemoTimeBound),
					"memoization avoids re-matching labels per substitution (paper Section 3)")
			}
		}
		if l.cfg.Table == subst.Nested && est.SubstsBound > 100_000 {
			l.report(CodeTableAdvice, Info, span.Span{},
				fmt.Sprintf("nested-array tables allocate by the domain product (bound %.3g); likely sparse here",
					est.SubstsBound),
				"hashing is the paper's recommendation for sparse substitution sets (Table 3)")
		}
	}
	if est.SubstsBound >= 1e12 {
		l.report(CodeVariantAdvice, Warning, span.Span{},
			fmt.Sprintf("the substitution bound is %.3g; any per-substitution work is intractable at that scale",
				est.SubstsBound),
			"restrict parameter domains (refined domains, a more selective pattern) before running")
	}
}
