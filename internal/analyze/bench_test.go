package analyze

import (
	"testing"

	"rpq/internal/gen"
	"rpq/internal/pattern"
)

// The lint pass must stay far below solve cost — the Options.Lint gate and
// the watchdog both run it inline ahead of real queries. These benchmarks
// pin its cost on the same pinned workload cmd/bench uses (2000-edge
// C-dataflow graph), where the solve phase is in the tens of milliseconds:
// pattern-only lint is microseconds, graph lint sub-millisecond (dominated
// by the solver-shared refined-domain estimation).

var benchSpec = gen.ProgSpec{
	Name: "bench-prog", Seed: 42, Edges: 2000, Vars: 120,
	UninitFrac: 0.12, UseSites: true, EntryLoop: true,
}

const benchPat = "_* use(x,l) (!def(x))* entry()"

func BenchmarkLint(b *testing.B) {
	e := pattern.MustParse(benchPat)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lint(e, benchPat, Config{})
	}
}

func BenchmarkLintForGraph(b *testing.B) {
	g := gen.Program(benchSpec)
	e := pattern.MustParse(benchPat)
	cfg := Config{HaveVariant: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LintForGraph(g, e, benchPat, cfg)
	}
}
