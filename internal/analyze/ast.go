package analyze

import (
	"fmt"

	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/span"
)

// checkAST walks the pattern tree and reports the purely structural
// findings: unsatisfiable labels (RPQ007), duplicate or subsumed alternation
// branches (RPQ008), and repetition of nullable sub-patterns (RPQ009).
func (l *linter) checkAST(e pattern.Expr) {
	switch n := e.(type) {
	case pattern.Epsilon:
	case *pattern.Lbl:
		if unsatLabel(n.Term) {
			l.report(CodeUnsatLabel, Error, n.Span,
				fmt.Sprintf("label %s can match no edge label: the negation covers everything", n.Term),
				"remove the wildcard from the negation, or drop the label")
		}
	case *pattern.Concat:
		for _, it := range n.Items {
			l.checkAST(it)
		}
	case *pattern.Alt:
		l.checkAlt(n)
		for _, it := range n.Items {
			l.checkAST(it)
		}
	case *pattern.Star:
		l.checkRep(n.Sub, pattern.SpanOf(n), "*")
		l.checkAST(n.Sub)
	case *pattern.Plus:
		l.checkRep(n.Sub, pattern.SpanOf(n), "+")
		l.checkAST(n.Sub)
	case *pattern.Opt:
		l.checkRep(n.Sub, pattern.SpanOf(n), "?")
		l.checkAST(n.Sub)
	}
}

// checkAlt reports duplicate branches and 'eps' branches subsumed by a
// nullable sibling.
func (l *linter) checkAlt(a *pattern.Alt) {
	var sawNullable bool // a nullable non-eps branch seen anywhere
	for _, it := range a.Items {
		if _, isEps := it.(pattern.Epsilon); !isEps && nullable(it) {
			sawNullable = true
		}
	}
	for i, it := range a.Items {
		for j := 0; j < i; j++ {
			if pattern.Equal(a.Items[j], it) {
				l.report(CodeDupBranch, Warning, pattern.SpanOf(it),
					fmt.Sprintf("duplicate alternation branch %q", pattern.String(it)),
					"remove the repeated branch")
				break
			}
		}
		if _, isEps := it.(pattern.Epsilon); isEps && sawNullable {
			l.report(CodeDupBranch, Warning, pattern.SpanOf(it),
				"'eps' branch is subsumed: another branch already matches the empty path",
				"remove the 'eps' branch")
		}
	}
}

// checkRep reports repetition operators wrapping sub-patterns that already
// match the empty path, e.g. (a()*)* or (a()?)+.
func (l *linter) checkRep(sub pattern.Expr, sp span.Span, op string) {
	if nullable(sub) {
		l.report(CodeRedundantRep, Warning, sp,
			fmt.Sprintf("'%s' applied to %q, which already matches the empty path", op, pattern.String(sub)),
			"simplify the repetition; (e*)* is e*, (e?)+ is e*")
	}
}

// nullable reports whether the pattern matches the empty path.
func nullable(e pattern.Expr) bool {
	switch n := e.(type) {
	case pattern.Epsilon:
		return true
	case *pattern.Lbl:
		return false
	case *pattern.Concat:
		for _, it := range n.Items {
			if !nullable(it) {
				return false
			}
		}
		return true
	case *pattern.Alt:
		for _, it := range n.Items {
			if nullable(it) {
				return true
			}
		}
		return false
	case *pattern.Star, *pattern.Opt:
		return true
	case *pattern.Plus:
		return nullable(n.Sub)
	}
	return false
}

// unsatLabel reports whether the transition label can match no edge label of
// any graph: a negation whose body matches everything (!_ or !(…|_|…)).
func unsatLabel(t *label.Term) bool {
	return t.Kind == label.KNeg && coversAll(t.Args[0])
}

// coversAll reports whether the term matches every edge label: a wildcard,
// or an alternation containing one.
func coversAll(t *label.Term) bool {
	switch t.Kind {
	case label.KWildcard:
		return true
	case label.KOr:
		for _, a := range t.Args {
			if coversAll(a) {
				return true
			}
		}
	}
	return false
}
