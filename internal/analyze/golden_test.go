package analyze

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/graph"
	"rpq/internal/pattern"
	"rpq/internal/subst"
)

var update = flag.Bool("update", false, "rewrite golden expectations in testdata/*.lint")

// The golden diagnostics suite: every fixture in testdata/*.lint holds a
// pattern (with optional graph and variant configuration) and the exact
// expected rendering of its lint report — code, severity, byte span, and
// line:col position per finding. There is at least one fixture per
// diagnostic code, so every code's exact anchor span is pinned.
//
// Fixture format, line-oriented:
//
//	pattern: <pattern source>
//	graph: edge v1 def(a) v2; edge v2 use(a) v3   (optional; ';'-separated)
//	graphgen: 20          (optional; n self-loop edges e(aI,bI,cI))
//	universal: true       (optional)
//	algo: enum            (optional; implies variant advice)
//	table: nested         (optional; implies variant advice)
//	-- want --
//	<one line per diagnostic, as rendered by renderDiag>
func TestGoldenDiagnostics(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.lint"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures in testdata/")
	}
	// Every diagnostic code must be pinned by at least one fixture.
	covered := map[string]bool{}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			got := runFixture(t, f)
			for _, line := range strings.Split(got, "\n") {
				if i := strings.IndexByte(line, ' '); i > 0 {
					covered[line[:i]] = true
				}
			}
		})
	}
	allCodes := []string{
		CodeEmpty, CodeOnlyEps, CodeDeadLabel, CodeNeverBinds, CodeMayNotBind,
		CodeNegBeforeBind, CodeUnsatLabel, CodeDupBranch, CodeRedundantRep,
		CodeUnknownCtor, CodeArityMismatch, CodeGraphEmpty, CodeNegVacuous,
		CodeVariantAdvice, CodeTableAdvice, CodeAlphabetCoverage,
	}
	for _, c := range allCodes {
		if !covered[c] {
			t.Errorf("no golden fixture covers %s", c)
		}
	}
}

// renderDiag pins the golden line format: stable code, severity, exact byte
// span, and rendered position.
func renderDiag(d Diagnostic) string {
	return fmt.Sprintf("%s %s span=%d:%d at %s: %s", d.Code, d.Severity, d.Span.Start, d.Span.End, d.Pos, d.Message)
}

func runFixture(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	header, want, hasWant := strings.Cut(string(raw), "-- want --\n")

	var src string
	var g *graph.Graph
	cfg := Config{}
	for _, line := range strings.Split(header, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("%s: bad fixture line %q", path, line)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "pattern":
			src = val
		case "graph":
			g = graph.New()
			for _, stmt := range strings.Split(val, ";") {
				fields := strings.Fields(stmt)
				if len(fields) != 4 || fields[0] != "edge" {
					t.Fatalf("%s: bad graph stmt %q", path, stmt)
				}
				g.MustAddEdgeStr(fields[1], fields[2], fields[3])
			}
			g.SetStart(0)
		case "graphgen":
			n, err := strconv.Atoi(val)
			if err != nil {
				t.Fatalf("%s: bad graphgen %q", path, val)
			}
			g = graph.New()
			for i := 0; i < n; i++ {
				g.MustAddEdgeStr("v1", fmt.Sprintf("e(a%d,b%d,c%d)", i, i, i), "v1")
			}
			g.SetStart(g.Vertex("v1"))
		case "universal":
			cfg.Universal = val == "true"
		case "algo":
			cfg.HaveVariant = true
			switch val {
			case "basic":
				cfg.Algo = core.AlgoBasic
			case "memo":
				cfg.Algo = core.AlgoMemo
			case "enum":
				cfg.Algo = core.AlgoEnum
			default:
				t.Fatalf("%s: bad algo %q", path, val)
			}
		case "table":
			cfg.HaveVariant = true
			switch val {
			case "hash":
				cfg.Table = subst.Hash
			case "nested":
				cfg.Table = subst.Nested
			default:
				t.Fatalf("%s: bad table %q", path, val)
			}
		default:
			t.Fatalf("%s: unknown fixture key %q", path, key)
		}
	}
	if src == "" {
		t.Fatalf("%s: fixture has no pattern", path)
	}
	e, err := pattern.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse %q: %v", path, src, err)
	}
	var ds []Diagnostic
	if g != nil {
		ds = LintForGraph(g, e, src, cfg)
	} else {
		ds = Lint(e, src, cfg)
	}
	var lines []string
	for _, d := range ds {
		lines = append(lines, renderDiag(d))
	}
	got := strings.Join(lines, "\n")

	if *update {
		out := strings.TrimRight(header, "\n") + "\n-- want --\n" + got + "\n"
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !hasWant {
		t.Fatalf("%s: missing '-- want --' section (run with -update to generate)", path)
	}
	if got != strings.TrimRight(want, "\n") {
		t.Errorf("%s: lint report mismatch\n--- got ---\n%s\n--- want ---\n%s", path, got, strings.TrimRight(want, "\n"))
	}
	return got
}

// TestGoldenSpansSliceSource re-checks, for every fixture, that each span
// actually slices the fixture's own pattern source (the golden text could in
// principle encode a stale span; this guards the invariant directly).
func TestGoldenSpansSliceSource(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.lint"))
	sort.Strings(files)
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		header, _, _ := strings.Cut(string(raw), "-- want --\n")
		for _, line := range strings.Split(header, "\n") {
			if src, ok := strings.CutPrefix(strings.TrimSpace(line), "pattern:"); ok {
				src = strings.TrimSpace(src)
				e, err := pattern.Parse(src)
				if err != nil {
					t.Fatalf("%s: %v", f, err)
				}
				for _, d := range Lint(e, src, Config{}) {
					if d.Span.Start < 0 || d.Span.End > len(src) {
						t.Errorf("%s: %s span %v outside source %q", f, d.Code, d.Span, src)
					}
				}
			}
		}
	}
}
