// Package analyze is the static query analyzer: a lint pass over parsed
// patterns and their automata that runs before any solving and reports
// structured diagnostics. It catches the query-formulation mistakes the
// paper's Section 5.1 experience report describes — parameters that a
// negation reaches before any positive binding, patterns whose language is
// empty or only the empty path, labels no edge can ever match — plus
// graph-alphabet mismatches (misspelled constructors, wrong arities) and
// predictable algorithm/data-structure mismatches from the Figure 2 cost
// model.
//
// Every diagnostic carries a stable code (RPQ001…), a severity, the source
// span of the offending pattern fragment, a message, and usually a fix hint.
// docs/analysis.md documents each code with a minimal triggering example.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"rpq/internal/core"
	"rpq/internal/graph"
	"rpq/internal/pattern"
	"rpq/internal/span"
	"rpq/internal/subst"
)

// Severity grades a diagnostic. Error means the query is statically known to
// be broken (it cannot return what the author plainly intended); Warning
// flags likely mistakes and known performance traps; Info is advice.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity ("info", "warning", "error").
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("analyze: unknown severity %q", name)
	}
	return nil
}

// Diagnostic codes. The numbers are stable: tools and suppressions may key
// off them, so codes are never renumbered or reused.
const (
	// CodeEmpty: the pattern's language is empty — no path can ever match.
	CodeEmpty = "RPQ001"
	// CodeOnlyEps: the pattern matches only the empty path.
	CodeOnlyEps = "RPQ002"
	// CodeDeadLabel: a label lies on no accepting path of the automaton.
	CodeDeadLabel = "RPQ003"
	// CodeNeverBinds: a parameter has no positive occurrence on any
	// accepting path, so an existential query is provably empty.
	CodeNeverBinds = "RPQ004"
	// CodeMayNotBind: a parameter binds on some but not all matching paths.
	CodeMayNotBind = "RPQ005"
	// CodeNegBeforeBind: a negation mentioning a parameter is reachable
	// before any positive binding of it (Section 5.1's slow formulation).
	CodeNegBeforeBind = "RPQ006"
	// CodeUnsatLabel: the label can match no edge label of any graph (!_
	// or a negated alternation containing _).
	CodeUnsatLabel = "RPQ007"
	// CodeDupBranch: an alternation branch duplicates or is subsumed by an
	// earlier one.
	CodeDupBranch = "RPQ008"
	// CodeRedundantRep: a repetition or option wraps a sub-pattern that
	// already matches the empty path.
	CodeRedundantRep = "RPQ009"
	// CodeUnknownCtor: a constructor never occurs in the target graph.
	CodeUnknownCtor = "RPQ010"
	// CodeArityMismatch: a constructor occurs in the graph, but never with
	// this arity.
	CodeArityMismatch = "RPQ011"
	// CodeGraphEmpty: against this graph, no accepting path can be realized
	// — the query is provably empty on this input.
	CodeGraphEmpty = "RPQ012"
	// CodeNegVacuous: a negation excludes nothing (its body matches no edge
	// label of the graph) or everything (its body matches every edge label).
	CodeNegVacuous = "RPQ013"
	// CodeVariantAdvice: the selected algorithm variant is predictably
	// dominated on this query/graph per the Figure 2 cost model.
	CodeVariantAdvice = "RPQ014"
	// CodeTableAdvice: the selected table representation is predictably
	// poor for this query/graph (Table 3).
	CodeTableAdvice = "RPQ015"
	// CodeAlphabetCoverage: a constructor referenced inside a negation never
	// occurs in the graph's alphabet, so the negation silently excludes less
	// than written — the usual symptom of frontend/schema drift.
	CodeAlphabetCoverage = "RPQ016"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	// Code is the stable diagnostic code ("RPQ004").
	Code string `json:"code"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Span is the byte span of the offending fragment in the pattern
	// source; the zero span means the diagnostic applies to the whole
	// pattern (or the source is unavailable).
	Span span.Span `json:"span"`
	// Pos renders Span as "line:col[-line:col]" against the pattern source,
	// when the source was available to the linter.
	Pos string `json:"pos,omitempty"`
	// Message states the finding.
	Message string `json:"message"`
	// Hint, when present, suggests a fix.
	Hint string `json:"hint,omitempty"`
}

// String renders "CODE severity at pos: message".
func (d Diagnostic) String() string {
	pos := d.Pos
	if pos == "" {
		pos = "?"
	}
	return fmt.Sprintf("%s %s at %s: %s", d.Code, d.Severity, pos, d.Message)
}

// Format renders the diagnostic with a caret snippet into the pattern source
// and the fix hint, for terminal display.
func Format(d Diagnostic, src string) string {
	var b strings.Builder
	b.WriteString(d.String())
	if src != "" && d.Span.Valid() {
		if snip := span.Caret(src, d.Span); snip != "" {
			b.WriteString("\n  ")
			b.WriteString(strings.ReplaceAll(snip, "\n", "\n  "))
		}
	}
	if d.Hint != "" {
		b.WriteString("\n  hint: ")
		b.WriteString(d.Hint)
	}
	return b.String()
}

// Config adjusts the lint pass to the query that will run.
type Config struct {
	// Universal selects universal-query semantics: parameters there may be
	// bound by domain enumeration rather than positive matching, so the
	// binding-dataflow findings (RPQ004, RPQ005) downgrade to Info.
	Universal bool
	// HaveVariant enables variant advice (RPQ014/RPQ015) against the
	// algorithm and table representation the caller intends to use.
	HaveVariant bool
	// Algo is the intended solver variant, when HaveVariant is set.
	Algo core.Algo
	// Table is the intended table representation, when HaveVariant is set.
	Table subst.TableKind
}

// Lint runs the graph-independent checks on a parsed pattern: emptiness and
// vacuity of the automaton, parameter-binding dataflow, label
// satisfiability, and structural redundancy. src is the pattern's source
// text, used to render positions; it may be empty for programmatically built
// patterns. Diagnostics are sorted by span, then code.
func Lint(e pattern.Expr, src string, cfg Config) []Diagnostic {
	l := &linter{src: src, cfg: cfg, whole: pattern.SpanOf(e)}
	l.checkAST(e)
	l.checkAutomaton(e)
	return l.finish()
}

// LintForGraph runs Lint plus the graph-dependent checks: alphabet
// satisfiability (unknown constructors, arity mismatches, vacuous
// negations), graph-level emptiness, and variant advice from the Figure 2
// cost model. It compiles the pattern against the graph's universe, exactly
// as running the query would.
func LintForGraph(g *graph.Graph, e pattern.Expr, src string, cfg Config) []Diagnostic {
	l := &linter{src: src, cfg: cfg, whole: pattern.SpanOf(e)}
	l.checkAST(e)
	l.checkAutomaton(e)
	l.checkGraph(g, e)
	return l.finish()
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns the Error-severity subset.
func Errors(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// MaxSeverity returns the highest severity present, or Info for an empty
// report.
func MaxSeverity(ds []Diagnostic) Severity {
	max := Info
	for _, d := range ds {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// linter accumulates diagnostics for one pattern.
type linter struct {
	src   string
	cfg   Config
	whole span.Span
	diags []Diagnostic
}

// report appends a diagnostic; a zero span falls back to the whole pattern.
func (l *linter) report(code string, sev Severity, sp span.Span, msg, hint string) {
	if !sp.Valid() {
		sp = l.whole
	}
	d := Diagnostic{Code: code, Severity: sev, Span: sp, Message: msg, Hint: hint}
	if l.src != "" && sp.Valid() {
		d.Pos = span.Format(l.src, sp)
	}
	l.diags = append(l.diags, d)
}

// finish sorts and returns the accumulated diagnostics.
func (l *linter) finish() []Diagnostic {
	sort.SliceStable(l.diags, func(i, j int) bool {
		a, b := l.diags[i], l.diags[j]
		if a.Span.Start != b.Span.Start {
			return a.Span.Start < b.Span.Start
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	return l.diags
}
