package analyze

import (
	"fmt"
	"sort"

	"rpq/internal/label"
	"rpq/internal/pattern"
	"rpq/internal/span"
)

// The analyzer builds its own ε-NFA over the raw (uncompiled) pattern so
// every labeled transition keeps the source span of the pattern.Lbl it came
// from. The solver's automaton (internal/automata) simplifies the pattern
// first and compiles labels into CTerms; threading spans through it would
// bloat its hot-path transition struct for no runtime benefit, so the lint
// pass pays for its own small Thompson construction instead. The build
// shapes mirror automata.FromPattern: alternation by parallel branches,
// repetition by ε-loops through the body.

// atrans is one transition of the analysis automaton; term is nil for ε.
type atrans struct {
	term *label.Term
	sp   span.Span
	to   int
}

// anfa is the analysis ε-NFA: one start state, one final state, each
// pattern.Lbl contributing exactly one labeled transition.
type anfa struct {
	start, final int
	out          [][]atrans
}

// buildNFA runs the Thompson construction over the pattern AST.
func buildNFA(e pattern.Expr) *anfa {
	n := &anfa{}
	n.start, n.final = n.build(e)
	return n
}

func (n *anfa) newState() int {
	n.out = append(n.out, nil)
	return len(n.out) - 1
}

func (n *anfa) eps(from, to int) {
	n.out[from] = append(n.out[from], atrans{to: to})
}

func (n *anfa) build(e pattern.Expr) (start, final int) {
	switch x := e.(type) {
	case pattern.Epsilon:
		s, f := n.newState(), n.newState()
		n.eps(s, f)
		return s, f
	case *pattern.Lbl:
		s, f := n.newState(), n.newState()
		n.out[s] = append(n.out[s], atrans{term: x.Term, sp: x.Span, to: f})
		return s, f
	case *pattern.Concat:
		if len(x.Items) == 0 {
			s, f := n.newState(), n.newState()
			n.eps(s, f)
			return s, f
		}
		start, final = n.build(x.Items[0])
		for _, it := range x.Items[1:] {
			s2, f2 := n.build(it)
			n.eps(final, s2)
			final = f2
		}
		return start, final
	case *pattern.Alt:
		s, f := n.newState(), n.newState()
		for _, it := range x.Items {
			bs, bf := n.build(it)
			n.eps(s, bs)
			n.eps(bf, f)
		}
		return s, f
	case *pattern.Star:
		s, f := n.newState(), n.newState()
		bs, bf := n.build(x.Sub)
		n.eps(s, bs)
		n.eps(bf, f)
		n.eps(s, f)
		n.eps(bf, bs)
		return s, f
	case *pattern.Plus:
		s, f := n.newState(), n.newState()
		bs, bf := n.build(x.Sub)
		n.eps(s, bs)
		n.eps(bf, f)
		n.eps(bf, bs)
		return s, f
	case *pattern.Opt:
		s, f := n.newState(), n.newState()
		bs, bf := n.build(x.Sub)
		n.eps(s, bs)
		n.eps(bf, f)
		n.eps(s, f)
		return s, f
	}
	panic(fmt.Sprintf("analyze: unknown pattern node %T", e))
}

// reach returns the states reachable from the given set following ε
// transitions and labeled transitions accepted by usable.
func (n *anfa) reach(from []int, usable func(atrans) bool) []bool {
	seen := make([]bool, len(n.out))
	stack := append([]int(nil), from...)
	for _, s := range from {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tr := range n.out[s] {
			if tr.term != nil && !usable(tr) {
				continue
			}
			if !seen[tr.to] {
				seen[tr.to] = true
				stack = append(stack, tr.to)
			}
		}
	}
	return seen
}

// coreach returns the states from which the final state is reachable,
// following ε transitions and labeled transitions accepted by usable.
func (n *anfa) coreach(usable func(atrans) bool) []bool {
	// Reverse adjacency, keeping the transition payload for usable().
	rev := make([][]atrans, len(n.out))
	for s, trs := range n.out {
		for _, tr := range trs {
			rev[tr.to] = append(rev[tr.to], atrans{term: tr.term, sp: tr.sp, to: s})
		}
	}
	seen := make([]bool, len(n.out))
	seen[n.final] = true
	stack := []int{n.final}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tr := range rev[s] {
			if tr.term != nil && !usable(tr) {
				continue
			}
			if !seen[tr.to] {
				seen[tr.to] = true
				stack = append(stack, tr.to)
			}
		}
	}
	return seen
}

// labeled is one labeled transition with its source state, in span order.
type labeled struct {
	from int
	tr   atrans
}

// labeledTrans collects the labeled transitions sorted by span start, so
// per-parameter findings report the leftmost occurrence deterministically.
func (n *anfa) labeledTrans() []labeled {
	var out []labeled
	for s, trs := range n.out {
		for _, tr := range trs {
			if tr.term != nil {
				out = append(out, labeled{from: s, tr: tr})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].tr.sp.Start < out[j].tr.sp.Start })
	return out
}

// paramOcc walks the term calling f for each parameter occurrence with
// whether it sits under a negation.
func paramOcc(t *label.Term, underNeg bool, f func(name string, neg bool)) {
	switch t.Kind {
	case label.KParam:
		f(t.Name, underNeg)
	case label.KNeg:
		paramOcc(t.Args[0], true, f)
	default:
		for _, a := range t.Args {
			paramOcc(a, underNeg, f)
		}
	}
}

// bindsPositively reports whether the term contains a positive (outside any
// negation) occurrence of parameter p — the occurrences that bind p during
// matching.
func bindsPositively(t *label.Term, p string) bool {
	found := false
	paramOcc(t, false, func(name string, neg bool) {
		if name == p && !neg {
			found = true
		}
	})
	return found
}

// mentionsNegated reports whether the term contains an occurrence of p under
// a negation.
func mentionsNegated(t *label.Term, p string) bool {
	found := false
	paramOcc(t, false, func(name string, neg bool) {
		if name == p && neg {
			found = true
		}
	})
	return found
}

// checkAutomaton runs the automaton-level checks: emptiness (RPQ001),
// ε-vacuity (RPQ002), dead labels (RPQ003), and the parameter-binding
// dataflow (RPQ004, RPQ005, RPQ006).
func (l *linter) checkAutomaton(e pattern.Expr) {
	n := buildNFA(e)
	sat := func(tr atrans) bool { return !unsatLabel(tr.term) }
	fwd := n.reach([]int{n.start}, sat)
	bwd := n.coreach(sat)
	trans := n.labeledTrans()

	useful := func(lt labeled) bool {
		return sat(lt.tr) && fwd[lt.from] && bwd[lt.tr.to]
	}
	anyUseful := false
	for _, lt := range trans {
		if useful(lt) {
			anyUseful = true
			break
		}
	}

	if !fwd[n.final] {
		hint := "every path through the pattern crosses an unmatchable label; restructure the pattern"
		for _, lt := range trans {
			if !sat(lt.tr) {
				hint = fmt.Sprintf("the unsatisfiable label %s blocks every accepting path", lt.tr.term)
				break
			}
		}
		l.report(CodeEmpty, Error, span.Span{},
			"pattern matches no path: the automaton has no accepting path", hint)
		// Everything else would be noise: with an empty language every label
		// is dead and no parameter can bind.
		return
	}

	// Accepts only ε: the final state is reachable, but no satisfiable
	// labeled transition lies on an accepting path.
	if !anyUseful {
		if _, isEps := e.(pattern.Epsilon); !isEps {
			l.report(CodeOnlyEps, Warning, span.Span{},
				"pattern matches only the empty path; every answer is the start vertex itself",
				"if that is not intended, check for negations that exclude everything")
		}
		return
	}

	// Dead labels: satisfiable but on no accepting path. Deduplicate by
	// span — one Lbl node yields one transition, but defensively.
	deadSeen := map[span.Span]bool{}
	for _, lt := range trans {
		if sat(lt.tr) && !useful(lt) && !deadSeen[lt.tr.sp] {
			deadSeen[lt.tr.sp] = true
			l.report(CodeDeadLabel, Warning, lt.tr.sp,
				fmt.Sprintf("label %s lies on no accepting path; it can never contribute to an answer", lt.tr.term),
				"an adjacent unsatisfiable label or unreachable branch cuts this label off")
		}
	}

	l.checkBindings(e, n, trans, useful)
}

// checkBindings runs the per-parameter binding dataflow over the useful
// (satisfiable, on an accepting path) transitions.
func (l *linter) checkBindings(e pattern.Expr, n *anfa, trans []labeled, useful func(labeled) bool) {
	sevBind := Error
	sevMay := Warning
	if l.cfg.Universal {
		// Universal queries can bind parameters by domain enumeration, so
		// binding-dataflow findings are informational there.
		sevBind = Info
		sevMay = Info
	}
	for _, p := range pattern.Params(e) {
		// First occurrence of p (by span), for positioning RPQ004.
		var firstOcc span.Span
		binds := false
		for _, lt := range trans {
			occurs := bindsPositively(lt.tr.term, p) || mentionsNegated(lt.tr.term, p)
			if occurs && !firstOcc.Valid() {
				firstOcc = lt.tr.sp
			}
			if useful(lt) && bindsPositively(lt.tr.term, p) {
				binds = true
			}
		}
		if !binds {
			msg := fmt.Sprintf("parameter %s never binds: it has no positive occurrence on any accepting path", p)
			if l.cfg.Universal {
				msg = fmt.Sprintf("parameter %s has no positive occurrence on any accepting path; the universal query will enumerate its whole domain", p)
			} else {
				msg += "; the existential query is provably empty"
			}
			l.report(CodeNeverBinds, sevBind, firstOcc, msg,
				fmt.Sprintf("add a label that matches %s positively (outside any negation)", p))
			continue
		}

		// May-not-bind: an accepting path avoiding every binding of p.
		avoidBind := func(tr atrans) bool {
			return !unsatLabel(tr.term) && !bindsPositively(tr.term, p)
		}
		fwdAvoid := n.reach([]int{n.start}, avoidBind)
		if fwdAvoid[n.final] {
			var bindSp span.Span
			for _, lt := range trans {
				if useful(lt) && bindsPositively(lt.tr.term, p) {
					bindSp = lt.tr.sp
					break
				}
			}
			l.report(CodeMayNotBind, sevMay, bindSp,
				fmt.Sprintf("parameter %s binds on some but not all matching paths; answers may leave it unbound", p),
				fmt.Sprintf("if %s must always bind, move its positive occurrence out of the alternation or repetition", p))
		}

		// Negation before binding: a state reachable without binding p that
		// has a useful outgoing transition mentioning p under negation.
		for _, lt := range trans {
			if useful(lt) && mentionsNegated(lt.tr.term, p) && fwdAvoid[lt.from] {
				l.report(CodeNegBeforeBind, Warning, lt.tr.sp,
					fmt.Sprintf("negation over parameter %s is reachable before any positive binding of it; the solver enumerates the domain of %s there", p, p),
					"bind the parameter positively first — often by the backward formulation of the query (paper Section 5.1)")
				break
			}
		}
	}
}
