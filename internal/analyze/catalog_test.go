package analyze

import (
	"reflect"
	"testing"

	"rpq/internal/queries"
)

// TestCatalogLintsClean sweeps the full analysis catalog through the linter
// with each entry's own query kind. No entry may produce an error-severity
// finding; the advisory findings each entry is expected to produce are
// annotated below and asserted exactly, so a linter change that adds or
// drops findings on the shipped queries is visible in review.
//
// The annotations retell the paper's Section 5.1 experience report: the
// forward formulations (uninit-uses and friends) bind their parameter only
// after a negation and draw RPQ006 — "queries that bind parameters
// positively before negations are much faster" — while the backward
// formulations (-bwd) lint clean. locking-discipline binds x only under
// negation and l only on some paths; both are informational under universal
// semantics, where domain enumeration supplies bindings.
func TestCatalogLintsClean(t *testing.T) {
	expected := map[string][]string{
		"uninit-uses":           {CodeNegBeforeBind},
		"uninit-first-uses":     {CodeNegBeforeBind},
		"uninit-uses-sites":     {CodeNegBeforeBind},
		"file-access-violation": {CodeNegBeforeBind},
		"file-unclosed":         {CodeNegBeforeBind},
		"locking-discipline":    {CodeNeverBinds, CodeMayNotBind},
	}
	for _, a := range queries.Catalog() {
		ds := Lint(a.Expr(), a.Pattern, Config{Universal: a.Kind == queries.Universal})
		if errs := Errors(ds); len(errs) > 0 {
			t.Errorf("%s: error-severity findings: %v", a.Name, errs)
		}
		got := codes(ds)
		want := expected[a.Name]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: lint codes = %v, want %v (diags: %v)", a.Name, got, want, ds)
		}
	}
}

// TestCatalogSpansResolve checks that every catalog finding carries a valid
// span into its own pattern source.
func TestCatalogSpansResolve(t *testing.T) {
	for _, a := range queries.Catalog() {
		for _, d := range Lint(a.Expr(), a.Pattern, Config{Universal: a.Kind == queries.Universal}) {
			if !d.Span.Valid() || d.Span.End > len(a.Pattern) {
				t.Errorf("%s: %s span %v out of range for %q", a.Name, d.Code, d.Span, a.Pattern)
			}
			if d.Pos == "" {
				t.Errorf("%s: %s lacks Pos", a.Name, d.Code)
			}
		}
	}
}
