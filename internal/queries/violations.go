package queries

import (
	"fmt"

	"rpq/internal/automata"
	"rpq/internal/core"
	"rpq/internal/label"
	"rpq/internal/pattern"
)

// ViolationQuery implements the Section 5.4 usability extension: the user
// specifies a universal per-resource discipline — e.g. operations on a file
// f must follow (open(f) (access(f))* close(f))*, with unrelated operations
// allowed anywhere — and a single merged existential query is generated that
// finds every kind of violation at once.
//
// Construction: the discipline pattern is compiled and determinized over its
// own (opaque) label alphabet. Each automaton state receives a self-loop
// labeled with the negated alternation of all discipline labels, skipping
// operations the discipline does not mention. A fresh error state (the only
// final state) absorbs every discipline operation that has no transition
// from its state — those are exactly the out-of-order operations. If
// withExit is set, an exit() edge from any non-final discipline state also
// goes to the error state, catching resources left in an incomplete state at
// procedure exit (e.g. files never closed).
//
// The result pairs ⟨v, θ⟩ of the generated query identify the program point
// just after a violating operation (or the exit) and the resource bound by
// θ.
func ViolationQuery(discipline pattern.Expr, u *label.Universe, withExit bool) (*core.Query, error) {
	ps := &label.ParamSpace{}
	nfa, err := automata.FromPattern(discipline, u, ps)
	if err != nil {
		return nil, err
	}
	dfa := automata.Determinize(nfa)
	if len(dfa.Labels) == 0 {
		return nil, fmt.Errorf("queries: discipline pattern has no labels")
	}
	for _, tl := range dfa.Labels {
		if tl.Kind != label.KApp {
			return nil, fmt.Errorf("queries: discipline labels must be plain constructor applications, got %s", tl.Format(u, ps))
		}
	}

	errState := int32(dfa.NumStates)
	out := &automata.NFA{
		Start:     dfa.Start,
		NumStates: dfa.NumStates + 1,
		Final:     make([]bool, dfa.NumStates+1),
		Trans:     make([][]automata.Transition, dfa.NumStates+1),
		LabelID:   map[string]int32{},
	}
	out.Final[errState] = true

	addLabel := func(tl *label.CTerm) {
		if _, ok := out.LabelID[tl.Key()]; !ok {
			out.LabelID[tl.Key()] = int32(len(out.Labels))
			out.Labels = append(out.Labels, tl)
		}
	}
	skip := label.NegOr(dfa.Labels...)
	exitLbl, err := label.Compile(label.App("exit"), u, ps)
	if err != nil {
		return nil, err
	}

	for s := 0; s < dfa.NumStates; s++ {
		present := map[string]bool{}
		for _, tr := range dfa.Trans[s] {
			out.Trans[s] = append(out.Trans[s], tr)
			addLabel(tr.Label)
			present[tr.Label.Key()] = true
		}
		// Unrelated operations are allowed anywhere.
		out.Trans[s] = append(out.Trans[s], automata.Transition{Label: skip, To: int32(s)})
		addLabel(skip)
		// A discipline operation with no transition here is a violation.
		for _, tl := range dfa.Labels {
			if !present[tl.Key()] {
				out.Trans[s] = append(out.Trans[s], automata.Transition{Label: tl, To: errState})
				addLabel(tl)
			}
		}
		// Ending in the middle of the discipline is a violation.
		if withExit && !dfa.Final[s] {
			out.Trans[s] = append(out.Trans[s], automata.Transition{Label: exitLbl, To: errState})
			addLabel(exitLbl)
		}
	}
	return &core.Query{Expr: discipline, U: u, PS: ps, NFA: out}, nil
}
