package queries

import (
	"fmt"
	"testing"

	"rpq/internal/cfgschema"
	"rpq/internal/label"
	"rpq/internal/pattern"
)

// TestPatternsConformToSchema walks every pattern in the analysis catalog
// and the Go check catalog and verifies each constructor it mentions exists
// in the unified CFG label schema at that arity. This is the guard against
// frontend/query drift: a query spelling acq where the frontends emit lock
// would silently match nothing.
func TestPatternsConformToSchema(t *testing.T) {
	type src struct{ name, pat string }
	var all []src
	for _, a := range Catalog() {
		all = append(all, src{"catalog/" + a.Name, a.Pattern})
	}
	for _, c := range GoChecks() {
		all = append(all, src{"gochecks/" + c.Name, c.Pattern})
	}
	if len(all) < 5 {
		t.Fatalf("suspiciously small pattern set: %d", len(all))
	}
	for _, s := range all {
		t.Run(s.name, func(t *testing.T) {
			e, err := pattern.Parse(s.pat)
			if err != nil {
				t.Fatalf("parse %q: %v", s.pat, err)
			}
			for _, term := range pattern.Labels(e) {
				for _, app := range apps(term) {
					ctor := cfgschema.Canonical(app.Name)
					if ctor != app.Name {
						t.Errorf("pattern %q spells alias %s; write the canonical %s", s.pat, app.Name, ctor)
					}
					if _, ok := cfgschema.Lookup(app.Name); !ok {
						t.Errorf("pattern %q uses constructor %s, absent from cfgschema", s.pat, app.Name)
						continue
					}
					if !cfgschema.HasArity(app.Name, len(app.Args)) {
						t.Errorf("pattern %q uses %s/%d; cfgschema allows %v", s.pat, app.Name, len(app.Args), arities(app.Name))
					}
				}
			}
		})
	}
}

// apps collects every constructor application inside a transition label,
// looking through negation and alternation.
func apps(t *label.Term) []*label.Term {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case label.KApp:
		return []*label.Term{t}
	case label.KNeg, label.KOr:
		var out []*label.Term
		for _, a := range t.Args {
			out = append(out, apps(a)...)
		}
		return out
	}
	return nil
}

func arities(name string) string {
	c, ok := cfgschema.Lookup(name)
	if !ok {
		return "?"
	}
	return fmt.Sprint(c.Arities)
}
