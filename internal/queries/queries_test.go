package queries

import (
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/graph"
	"rpq/internal/minic"
	"rpq/internal/pattern"
)

func TestCatalogParses(t *testing.T) {
	for _, a := range Catalog() {
		e, err := pattern.Parse(a.Pattern)
		if err != nil {
			t.Errorf("%s: pattern %q does not parse: %v", a.Name, a.Pattern, err)
			continue
		}
		if a.Description == "" {
			t.Errorf("%s: missing description", a.Name)
		}
		// Every pattern must compile against a fresh universe.
		g := graph.New()
		if _, err := core.Compile(e, g.U); err != nil {
			t.Errorf("%s: pattern does not compile: %v", a.Name, err)
		}
	}
	if len(Catalog()) < 15 {
		t.Errorf("catalog has %d entries, expected the full paper set", len(Catalog()))
	}
}

func TestByNameAndNames(t *testing.T) {
	a, err := ByName("uninit-uses")
	if err != nil || a.Name != "uninit-uses" || a.Kind != Existential {
		t.Fatalf("ByName: %+v, %v", a, err)
	}
	if _, err := ByName("zzz"); err == nil {
		t.Fatal("unknown name accepted")
	}
	names := Names()
	if len(names) != len(Catalog()) || names[0] != "uninit-uses" {
		t.Fatalf("Names = %v", names)
	}
	if Universal.String() != "universal" || Forward.String() != "forward" ||
		Backward.String() != "backward" || Existential.String() != "existential" {
		t.Errorf("String() methods broken")
	}
}

func TestViolationQueryFileDiscipline(t *testing.T) {
	src := `
func main() {
	int decoy;
	decoy = 1;
	open(f);
	access(f);
	close(f);
	access(f);      // violation: access after close
	open(g);
	access(g);      // g never closed: violation at exit
	access(h);      // violation: h never opened
	close(k);       // violation: k closed while not open
}
`
	g := minic.MustBuild(src, minic.Config{})
	q, err := ViolationQuery(pattern.MustParse("(open(f) (access(f))* close(f))*"), g.U, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Exist(g, g.Start(), q, core.Options{Algo: core.AlgoMemo})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range res.Pairs {
		found[p.Subst.Format(g.U, q.PS)] = true
	}
	for _, want := range []string{"{f↦f}", "{f↦g}", "{f↦h}", "{f↦k}"} {
		if !found[want] {
			t.Errorf("violation %s not found: %v", want, found)
		}
	}
}

func TestViolationQueryCleanProgram(t *testing.T) {
	src := `
func main() {
	open(f);
	access(f);
	access(f);
	close(f);
	open(f);
	close(f);
}
`
	g := minic.MustBuild(src, minic.Config{})
	q, err := ViolationQuery(pattern.MustParse("(open(f) (access(f))* close(f))*"), g.U, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Exist(g, g.Start(), q, core.Options{Algo: core.AlgoMemo})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		var got []string
		for _, p := range res.Pairs {
			got = append(got, g.VertexName(p.Vertex)+" "+p.Subst.Format(g.U, q.PS))
		}
		t.Fatalf("clean program reported violations: %s", strings.Join(got, ", "))
	}
}

func TestViolationQueryBranches(t *testing.T) {
	src := `
func main() {
	int c;
	c = 1;
	open(f);
	if (c) {
		close(f);
	} else {
		access(f);
	}
	access(f);   // violation only on the then-branch (closed there)
}
`
	g := minic.MustBuild(src, minic.Config{})
	q, err := ViolationQuery(pattern.MustParse("(open(f) (access(f))* close(f))*"), g.U, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatalf("branch violation not found")
	}
}

func TestViolationQueryRejectsBadDiscipline(t *testing.T) {
	g := graph.New()
	if _, err := ViolationQuery(pattern.MustParse("eps"), g.U, false); err == nil {
		t.Fatal("label-free discipline accepted")
	}
	if _, err := ViolationQuery(pattern.MustParse("(!open(f))*"), g.U, false); err == nil {
		t.Fatal("negated discipline label accepted")
	}
}

func TestCatalogAnalysesRunOnSamplePrograms(t *testing.T) {
	src := `
func main() {
	int a, b;
	a = 1;
	b = a + a;
	save(flags);
	change();
	open(f);
	access(f);
	seteuid(1);
	close(f);
	restore(flags);
	acq(m);
	b = b + 1;
	rel(m);
	free(p);
	deref(p);
}
`
	g := minic.MustBuild(src, minic.Config{})
	for _, a := range Catalog() {
		if a.Kind != Existential || a.NeedsUseSites || a.NeedsExpLabels || a.NeedsConstDefs || a.NeedsEntryLoop {
			continue
		}
		gg := g
		start := g.Start()
		if a.Dir == Backward {
			gg = g.Reverse()
			// From the vertex after exit() in the forward graph.
			for v := 0; v < g.NumVertices(); v++ {
				for _, e := range g.Out(int32(v)) {
					if e.Label.Format(g.U, nil) == "exit()" {
						start = e.To
					}
				}
			}
		}
		q := core.MustCompile(a.Expr(), gg.U)
		if _, err := core.Exist(gg, start, q, core.Options{}); err != nil {
			t.Errorf("%s failed: %v", a.Name, err)
		}
	}
	// The setuid query must fire: f is open when seteuid(1) runs.
	a, _ := ByName("setuid-security")
	q := core.MustCompile(a.Expr(), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Errorf("setuid-security found %d violations, want 1", len(res.Pairs))
	}
	// The freed-memory query must fire for deref(p) after free(p).
	a, _ = ByName("freed-memory")
	q = core.MustCompile(a.Expr(), g.U)
	res, err = core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Errorf("freed-memory found %d violations, want 1", len(res.Pairs))
	}
	// The interrupts query must NOT fire: the level is restored.
	a, _ = ByName("interrupts")
	q = core.MustCompile(a.Expr(), g.U)
	res, err = core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("interrupts fired on a correct program: %v", res.Pairs)
	}
}

func TestCatalogAdvice(t *testing.T) {
	// The forward uninit queries are exactly the catalog entries that bind
	// a parameter under negation first; the backward reformulations fix it
	// (the Section 5.1 tradeoff the paper measures in Table 1).
	wantAdvice := map[string]bool{
		"uninit-uses":           true,
		"uninit-first-uses":     true,
		"uninit-uses-sites":     true,
		"file-access-violation": true, // f first occurs under !open(f) on the eps branch
		"file-unclosed":         true, // f first occurs under !close(f); cheap in practice (few files)
		"locking-discipline":    true, // x first occurs under !access(x)
	}
	for _, a := range Catalog() {
		g := graph.New()
		q, err := core.Compile(a.Expr(), g.U)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		advice := core.Advise(q)
		hasNegFirst := false
		for _, s := range advice {
			if strings.Contains(s, "backward formulation") {
				hasNegFirst = true
			}
		}
		if hasNegFirst != wantAdvice[a.Name] {
			t.Errorf("%s: negation-first advice = %v, want %v (advice: %v)",
				a.Name, hasNegFirst, wantAdvice[a.Name], advice)
		}
	}
}
