package queries

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
	"rpq/internal/tracelog"
)

// TestViolationQueryAgainstSimulation checks the Section 5.4 construction
// semantically: on random linear traces of file operations, the generated
// merged violation query must flag exactly the same (event, file) pairs as
// a direct per-file state-machine simulation of the discipline
// (open (access)* close)*, reporting the first violation per file (the
// error state is absorbing).
func TestViolationQueryAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	ops := []string{"open", "access", "close", "noise"}
	files := []string{"fa", "fb"}
	for trial := 0; trial < 200; trial++ {
		// Random trace.
		n := 1 + rng.Intn(12)
		var lines []string
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			if op == "noise" {
				lines = append(lines, "noise()")
			} else {
				lines = append(lines, fmt.Sprintf("%s(%s)", op, files[rng.Intn(len(files))]))
			}
		}
		lines = append(lines, "exit()")
		trace := strings.Join(lines, "\n")

		// Direct simulation: state per file, first violation only.
		type hit struct {
			event int
			file  string
		}
		var want []hit
		state := map[string]string{} // "" closed, "open"
		dead := map[string]bool{}
		for i, line := range lines {
			event := i + 1
			var op, f string
			if line == "noise()" {
				continue
			}
			if line == "exit()" {
				for _, file := range files {
					if !dead[file] && state[file] == "open" {
						want = append(want, hit{event, file})
					}
				}
				continue
			}
			fmt.Sscanf(line, "%s", &op)
			op = line[:strings.Index(line, "(")]
			f = line[strings.Index(line, "(")+1 : strings.Index(line, ")")]
			if dead[f] {
				continue
			}
			switch op {
			case "open":
				if state[f] == "open" {
					want = append(want, hit{event, f})
					dead[f] = true
				} else {
					state[f] = "open"
				}
			case "access":
				if state[f] != "open" {
					want = append(want, hit{event, f})
					dead[f] = true
				}
			case "close":
				if state[f] != "open" {
					want = append(want, hit{event, f})
					dead[f] = true
				} else {
					state[f] = ""
				}
			}
		}

		// The generated query on the trace graph.
		g, err := tracelog.ReadString(trace)
		if err != nil {
			t.Fatal(err)
		}
		q, err := ViolationQuery(pattern.MustParse("(open(f) (access(f))* close(f))*"), g.U, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Exist(g, g.Start(), q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := map[hit]bool{}
		fIdx, _ := q.PS.Lookup("f")
		for _, p := range res.Pairs {
			idx, ok := tracelog.EventIndex(g.VertexName(p.Vertex))
			if !ok {
				t.Fatalf("bad vertex name %s", g.VertexName(p.Vertex))
			}
			got[hit{idx, g.U.Syms.Name(p.Subst[fIdx])}] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d trace:\n%s\nsimulation %v, query %v", trial, trace, want, got)
		}
		for _, h := range want {
			if !got[h] {
				t.Fatalf("trial %d trace:\n%s\nquery missing %v (has %v)", trial, trace, h, got)
			}
		}
	}
}
