// Package queries is the analysis catalog: every program-analysis and
// model-checking query of Liu et al. (PLDI 2004), Sections 2.2, 2.3, and
// 5.1, as a named, documented pattern, plus the Section 5.4 construction
// that derives a merged existential violation query from a universal
// per-resource discipline specification.
package queries

import (
	"fmt"

	"rpq/internal/pattern"
)

// Kind distinguishes existential from universal queries.
type Kind int

const (
	// Existential queries ask about some path (Section 2.1).
	Existential Kind = iota
	// Universal queries ask about all paths.
	Universal
)

func (k Kind) String() string {
	if k == Universal {
		return "universal"
	}
	return "existential"
}

// Direction distinguishes forward queries (from the entry) from backward
// queries (all edges reversed, from the exit; Section 2.2).
type Direction int

const (
	Forward Direction = iota
	Backward
)

func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Analysis is one catalog entry.
type Analysis struct {
	// Name is the catalog key, e.g. "uninit-uses".
	Name string
	// Description says what the query computes and how to read the result.
	Description string
	// Pattern is the query in the textual pattern syntax.
	Pattern string
	Kind    Kind
	Dir     Direction
	// NeedsUseSites / NeedsExpLabels / NeedsConstDefs / NeedsEntryLoop name
	// the front-end labeling features the query expects.
	NeedsUseSites  bool
	NeedsExpLabels bool
	NeedsConstDefs bool
	NeedsEntryLoop bool
}

// Expr parses the analysis pattern.
func (a Analysis) Expr() pattern.Expr { return pattern.MustParse(a.Pattern) }

// Catalog returns every analysis of the paper, in presentation order.
func Catalog() []Analysis {
	return []Analysis{
		{
			Name:        "uninit-uses",
			Description: "Uses of uninitialized variables (Section 2.2): pairs ⟨v, {x↦a}⟩ where v follows a use of a not preceded by any definition of a on some path from the entry.",
			Pattern:     "(!def(x))* use(x)",
			Kind:        Existential,
		},
		{
			Name:        "uninit-first-uses",
			Description: "First use of each uninitialized variable along each path (Section 2.2).",
			Pattern:     "(!(def(x)|use(x)))* use(x)",
			Kind:        Existential,
		},
		{
			Name:          "uninit-uses-sites",
			Description:   "Uses of uninitialized variables when uses carry site numbers use(x,l).",
			Pattern:       "(!def(x))* use(x,_)",
			Kind:          Existential,
			NeedsUseSites: true,
		},
		{
			Name:           "uninit-uses-bwd",
			Description:    "Backward formulation of uninit uses (Section 5.1): binds x positively before the negation, much faster than the forward query; run on the reversed graph from the exit.",
			Pattern:        "_* use(x,l) (!def(x))* entry()",
			Kind:           Existential,
			Dir:            Backward,
			NeedsUseSites:  true,
			NeedsEntryLoop: true,
		},
		{
			Name:           "uninit-first-uses-bwd",
			Description:    "Backward first-uses (Section 5.1).",
			Pattern:        "_* use(x,l) (!(def(x)|use(x,_)))* entry()",
			Kind:           Existential,
			Dir:            Backward,
			NeedsUseSites:  true,
			NeedsEntryLoop: true,
		},
		{
			Name:           "uninit-vars-bwd",
			Description:    "Names of uninitialized variables, backward (Section 5.1).",
			Pattern:        "_* use(x) (!def(x))* entry()",
			Kind:           Existential,
			Dir:            Backward,
			NeedsEntryLoop: true,
		},
		{
			Name:        "live-variables",
			Description: "Live variables (Section 2.2): backward query; ⟨v, {x↦a}⟩ means a is used before being redefined on some path from v.",
			Pattern:     "_* use(x) (!def(x))*",
			Kind:        Existential,
			Dir:         Backward,
		},
		{
			Name:           "available-expressions",
			Description:    "Available expressions (Section 2.2): universal query; ⟨v, {x↦a,op↦o,y↦b}⟩ means a o b is computed and not killed on every path to v.",
			Pattern:        "_* exp(x,op,y) (!(def(x)|def(y)))*",
			Kind:           Universal,
			NeedsExpLabels: true,
		},
		{
			Name:           "constant-folding",
			Description:    "Constant folding (Section 2.2): universal query; ⟨v, {x↦a,c↦k}⟩ means a holds constant k at v on every path.",
			Pattern:        "_* def(x,c) (!(def(x)|def(x,_)))*",
			Kind:           Universal,
			NeedsConstDefs: true,
		},
		{
			Name:        "file-access-violation",
			Description: "File discipline (Section 2.2): an access while the file is not open (never opened, or closed since).",
			Pattern:     "(eps | _* close(f)) (!open(f))* access(f)",
			Kind:        Existential,
		},
		{
			Name:        "file-unclosed",
			Description: "File discipline (Section 2.2): backward query from the exit; an open file never subsequently closed.",
			Pattern:     "(!close(f))* open(f)",
			Kind:        Existential,
			Dir:         Backward,
		},
		{
			Name:        "freed-memory",
			Description: "Freed memory (Section 2.2): a pointer freed and then freed or dereferenced without an intervening allocation.",
			Pattern:     "_* free(p) (!malloc(p))* (free(p)|deref(p))",
			Kind:        Existential,
		},
		{
			Name:        "interrupts",
			Description: "Interrupt discipline (Section 2.2): a procedure saved and changed the interrupt level but did not restore it before exit.",
			Pattern:     "_* save(x) change() (!restore(x))* exit()",
			Kind:        Existential,
		},
		{
			Name:        "setuid-security",
			Description: "UNIX setuid discipline (Section 2.2): a file still open when the effective uid is changed to a non-superuser.",
			Pattern:     "_* open(f) (!close(f))* seteuid(!0)",
			Kind:        Existential,
		},
		{
			Name:        "locking-discipline",
			Description: "Locking discipline (Section 2.2): universal query; ⟨v, {x↦a,l↦m}⟩ means variable a is accessed only under lock m on all paths to v. The paper writes acq/rel; the shared schema's canonical constructors are lock/unlock (internal/cfgschema).",
			Pattern:     "((!access(x))* lock(l) (!unlock(l))*)*",
			Kind:        Universal,
		},
		{
			Name:        "deadlock-avoidance",
			Description: "Lock-order discovery (Section 2.2): ⟨v, {l1↦m1,l2↦m2}⟩ means m2 is acquired while m1 is held on some path; inspect the exit's substitutions for a consistent partial order.",
			Pattern:     "_* lock(l1) (!unlock(l1))* lock(l2) _*",
			Kind:        Existential,
		},
		{
			Name:        "lts-deadlock",
			Description: "LTS deadlock (Section 2.3): run on the existential transformation; states bound to s have an outgoing action, so reachable states missing from the result deadlock.",
			Pattern:     "_* state(s) act(_)",
			Kind:        Existential,
		},
		{
			Name:        "lts-livelock",
			Description: "LTS livelock (Section 2.3): a reachable cycle of invisible actions; the result is non-empty iff a livelock exists.",
			Pattern:     "_* state(s) act('i')+ state(s)",
			Kind:        Existential,
		},
	}
}

// ByName finds a catalog entry.
func ByName(name string) (Analysis, error) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, nil
		}
	}
	return Analysis{}, fmt.Errorf("queries: unknown analysis %q", name)
}

// Names lists the catalog keys in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, a := range cat {
		out[i] = a.Name
	}
	return out
}
