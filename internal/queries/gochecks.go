package queries

// The Go check catalog: the dataflow checks cmd/rpqcheck runs over program
// graphs built by internal/gofront. Each check is one parametric regular
// path query against the shared cfgschema label vocabulary; parameters bind
// to qualified variable symbols (pkgpath.func.var), so one existential
// answer names both the program point and the offending resource.
//
// Because gofront's identity is syntactic (no go/types, no aliasing),
// answers are *possible* findings in the certain/possible-answer sense of
// Barceló et al., "Parameterized Regular Expressions and their Languages":
// every finding names a real CFG path, with the resource identity along it
// approximated by spelling.

// GoCheck is one rpqcheck diagnostic backed by a parametric query.
type GoCheck struct {
	// Name is the check key, used by -checks and //rpqcheck:allow.
	Name string
	// Doc is the one-line description shown by rpqcheck -list.
	Doc string
	// Pattern is the existential query; it matches paths from the graph
	// root to the finding vertex.
	Pattern string
	// Interproc selects the interprocedural graph (call/ret edges linking
	// call sites to callees). Purely local checks stay on the
	// intraprocedural graph so a finding never depends on a path that
	// leaves and re-enters a function.
	Interproc bool
	// Param is the binding reported as the finding's subject.
	Param string
	// Message is the finding template; {x}-style placeholders are replaced
	// with the short names of same-named parameter bindings.
	Message string
}

// GoChecks returns the rpqcheck catalog, in presentation order.
func GoChecks() []GoCheck {
	return []GoCheck{
		{
			Name: "uninit-use",
			Doc:  "variable declared without initializer and read before any assignment on some path",
			// decl(x) only exists for `var x T` without initializer; params,
			// named results, := and var-with-value sites all emit def.
			Pattern:   "_* decl(x) (!def(x))* use(x)",
			Interproc: false,
			Param:     "x",
			Message:   "{x} may be read before assignment (declared without initializer)",
		},
		{
			Name: "use-after-close",
			Doc:  "channel or resource used after close on some path",
			// A later close, send, or method call on the same (un-redefined)
			// resource panics or races; def(x) in between means the variable
			// was rebound to a fresh resource. Intraprocedural: local symbols
			// are function-qualified, so cross-function identities never
			// match anyway, and the regular (non-CFL) approximation of valid
			// interprocedural paths would mix unmatched call/ret pairs into
			// false positives.
			Pattern:   "_* close(x) (!def(x))* (close(x) | send(x) | mcall(x, _))",
			Interproc: false,
			Param:     "x",
			Message:   "{x} used after close",
		},
		{
			Name: "double-lock",
			Doc:  "mutex locked twice with no intervening unlock on some path",
			// sync.Mutex is not reentrant: the second Lock deadlocks. rlock
			// is a distinct constructor, so shared read-locking never fires
			// this.
			Pattern:   "_* lock(m) (!unlock(m))* lock(m)",
			Interproc: true,
			Param:     "m",
			Message:   "{m} locked twice without an intervening unlock (sync.Mutex is not reentrant)",
		},
		{
			Name: "unlock-without-lock",
			Doc:  "mutex unlocked on a path that never locked it",
			// Unlocking an unlocked sync.Mutex is a run-time fatal error.
			// Intraprocedural: on the interprocedural graph, a path may enter
			// a function mid-body through the ret edge of a shared callee
			// (regular approximation of CFL-reachability), skipping the
			// function's own lock and flagging every lock/defer-unlock pair.
			Pattern:   "(!lock(m))* unlock(m)",
			Interproc: false,
			Param:     "m",
			Message:   "{m} unlocked without a preceding lock on this path (fatal at run time)",
		},
		{
			Name: "defer-in-loop",
			Doc:  "defer registered repeatedly inside a loop; deferred calls accumulate until function exit",
			// The same defer site s reached twice on one intraprocedural
			// path means a loop wraps the registration; with one iteration
			// per resource, the resources pile up until return.
			Pattern:   "_* defer(f, s) _* defer(f, s)",
			Interproc: false,
			Param:     "s",
			Message:   "defer of {f} inside a loop: deferred calls only run at function exit",
		},
	}
}

// GoCheckByName finds a check in the rpqcheck catalog.
func GoCheckByName(name string) (GoCheck, bool) {
	for _, c := range GoChecks() {
		if c.Name == name {
			return c, true
		}
	}
	return GoCheck{}, false
}
