package minic

import (
	"fmt"
	"strconv"

	"rpq/internal/cfgschema"
	"rpq/internal/graph"
	"rpq/internal/label"
)

// Config controls how the program graph is labeled.
type Config struct {
	// UseSites labels uses as use(x, l) with a distinct site number l,
	// enabling the backward first/all-uses queries of Section 5.1.
	UseSites bool
	// ExpLabels emits exp(a, op, b) for binary expressions over two
	// variables, enabling the available-expressions query.
	ExpLabels bool
	// ConstDefs emits def(x, k) instead of def(x) for constant
	// assignments, enabling the constant-folding query.
	ConstDefs bool
	// Interproc splices user-defined function calls into one supergraph
	// with call/ret edges and tracks parameter/return equalities by
	// unifying variable symbols (Section 5.2).
	Interproc bool
	// EntryLoop adds a self-loop labeled entry() at the program entry, as
	// Section 5.1 does for backward queries.
	EntryLoop bool
	// AssignEqualities additionally unifies the two sides of simple
	// variable copies (x = y), the flow-insensitive equality module
	// Section 5.2 sketches for its open-through-f, close-through-g
	// example. Sound for resource-identity analyses; too coarse for
	// def/use data flow, so it is a separate switch from Interproc.
	AssignEqualities bool
}

// effectCalls are library calls emitted directly as labels (Section 2.2's
// files, memory, interrupts, security, and locking examples). Emitted names
// pass through cfgschema.Effect, so the paper's acq/rel spellings lower to
// the canonical lock/unlock constructors shared with the other front ends.
var effectCalls = map[string]bool{
	"open": true, "close": true, "access": true,
	"malloc": true, "free": true, "deref": true,
	"acq": true, "rel": true, "lock": true, "unlock": true,
	"save": true, "restore": true, "change": true,
	"seteuid": true, "exit": true,
}

// BuildGraph lowers a parsed program to its edge-labeled program graph.
// The graph's start vertex is the entry of main.
func BuildGraph(prog *Program, cfg Config) (*graph.Graph, error) {
	var mainFn *Func
	byName := map[string]*Func{}
	for _, f := range prog.Funcs {
		if byName[f.Name] != nil {
			return nil, fmt.Errorf("minic: duplicate function %q", f.Name)
		}
		byName[f.Name] = f
		if f.Name == "main" {
			mainFn = f
		}
	}
	if mainFn == nil {
		return nil, fmt.Errorf("minic: no main function")
	}
	b := &builder{
		cfg:     cfg,
		funcs:   byName,
		qualify: len(prog.Funcs) > 1,
		g:       graph.New(),
		uf:      map[string]string{},
		vars:    map[string]bool{},
		built:   map[string]*funcGraph{},
	}
	b.globalSet = map[string]bool{}
	for _, gl := range prog.Globals {
		b.vars[gl] = true
		b.globalSet[gl] = true
	}

	fg, err := b.buildFunc(mainFn)
	if err != nil {
		return nil, err
	}
	b.g.SetStart(fg.entry)
	if cfg.EntryLoop {
		b.edges = append(b.edges, rawEdge{fg.entry, label.App("entry"), fg.entry})
	}
	// Materialize edges with equality-tracked renaming applied.
	for _, e := range b.edges {
		t := b.rename(e.lbl)
		if err := b.g.AddEdge(e.from, t, e.to); err != nil {
			return nil, err
		}
	}
	return b.g, nil
}

// Build parses and lowers in one step.
func Build(src string, cfg Config) (*graph.Graph, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BuildGraph(prog, cfg)
}

// MustBuild is Build that panics on error.
func MustBuild(src string, cfg Config) *graph.Graph {
	g, err := Build(src, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

type rawEdge struct {
	from int32
	lbl  *label.Term
	to   int32
}

type funcGraph struct {
	entry, exit int32 // exit is the vertex after the exit() edge
}

type builder struct {
	cfg       Config
	funcs     map[string]*Func
	qualify   bool
	g         *graph.Graph
	edges     []rawEdge
	uf        map[string]string // union-find parent for variable equalities
	vars      map[string]bool   // all variable symbols (post-qualification)
	globalSet map[string]bool
	built     map[string]*funcGraph
	building  map[string]bool
	retVar    map[string]string // function name -> returned variable symbol
	nextV     int
	nextUse   int
}

// loopCtx tracks break/continue targets.
type loopCtx struct {
	brk, cont int32
	ok        bool
}

func (b *builder) fresh(fn string) int32 {
	b.nextV++
	return b.g.Vertex(fmt.Sprintf("%s.n%d", fn, b.nextV))
}

func (b *builder) edge(from int32, l *label.Term, to int32) {
	b.edges = append(b.edges, rawEdge{from, l, to})
}

// step appends an operation edge from cur to a fresh vertex and returns it.
func (b *builder) step(fn string, cur int32, l *label.Term) int32 {
	nxt := b.fresh(fn)
	b.edge(cur, l, nxt)
	return nxt
}

func nop() *label.Term { return label.App("nop") }

// qual qualifies a local variable name with its function when the program
// has several functions, keeping global names unqualified.
func (b *builder) qual(fn *fnCtx, name string) string {
	if !b.qualify || b.globalSet[name] || !fn.locals[name] {
		return name
	}
	return fn.f.Name + "." + name
}

// find is the union-find lookup with path compression.
func (b *builder) find(x string) string {
	p, ok := b.uf[x]
	if !ok || p == x {
		return x
	}
	r := b.find(p)
	b.uf[x] = r
	return r
}

// unify records an equality between two variable symbols (parameter passing
// or return-value assignment, Section 5.2).
func (b *builder) unify(x, y string) {
	rx, ry := b.find(x), b.find(y)
	if rx != ry {
		b.uf[rx] = ry
	}
}

// rename applies the equality classes to variable symbols inside a label.
func (b *builder) rename(t *label.Term) *label.Term {
	switch t.Kind {
	case label.KSym:
		if b.vars[t.Name] {
			if r := b.find(t.Name); r != t.Name {
				return label.Sym(r)
			}
		}
		return t
	case label.KApp:
		args := make([]*label.Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = b.rename(a)
			changed = changed || args[i] != a
		}
		if !changed {
			return t
		}
		return label.App(t.Name, args...)
	default:
		return t
	}
}

type fnCtx struct {
	f      *Func
	locals map[string]bool
	exit   int32 // target of return statements (before the exit() edge)
}

func (b *builder) buildFunc(f *Func) (*funcGraph, error) {
	if fg, ok := b.built[f.Name]; ok {
		return fg, nil
	}
	if b.building == nil {
		b.building = map[string]bool{}
	}
	if b.building[f.Name] {
		return nil, fmt.Errorf("minic: recursive call cycle through %q requires Interproc supergraph construction order; declare the callee first", f.Name)
	}
	b.building[f.Name] = true
	defer delete(b.building, f.Name)

	fn := &fnCtx{f: f, locals: map[string]bool{}}
	for _, p := range f.Params {
		fn.locals[p] = true
	}
	collectLocals(f.Body, fn.locals)
	for l := range fn.locals {
		b.vars[b.qualName(f, l)] = true
	}

	entry := b.g.Vertex(f.Name + ".entry")
	retJoin := b.g.Vertex(f.Name + ".ret")
	fn.exit = retJoin
	cur := entry
	var err error
	cur, err = b.buildStmts(fn, cur, f.Body, loopCtx{})
	if err != nil {
		return nil, err
	}
	b.edge(cur, nop(), retJoin)
	after := b.step(f.Name, retJoin, label.App("exit"))
	fg := &funcGraph{entry: entry, exit: after}
	b.built[f.Name] = fg
	return fg, nil
}

func (b *builder) qualName(f *Func, name string) string {
	if !b.qualify || b.globalSet[name] {
		return name
	}
	return f.Name + "." + name
}

func collectLocals(stmts []Stmt, set map[string]bool) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *DeclStmt:
			for _, n := range x.Names {
				set[n] = true
			}
		case *IfStmt:
			collectLocals(x.Then, set)
			collectLocals(x.Else, set)
		case *WhileStmt:
			collectLocals(x.Body, set)
		case *ForStmt:
			if x.Init != nil {
				collectLocals([]Stmt{x.Init}, set)
			}
			collectLocals(x.Body, set)
		case *BlockStmt:
			collectLocals(x.Body, set)
		}
	}
}

func (b *builder) buildStmts(fn *fnCtx, cur int32, stmts []Stmt, lc loopCtx) (int32, error) {
	var err error
	for _, s := range stmts {
		cur, err = b.buildStmt(fn, cur, s, lc)
		if err != nil {
			return 0, err
		}
	}
	return cur, nil
}

func (b *builder) buildStmt(fn *fnCtx, cur int32, s Stmt, lc loopCtx) (int32, error) {
	name := fn.f.Name
	switch x := s.(type) {
	case *DeclStmt:
		return cur, nil
	case *AssignStmt:
		cur, val, err := b.emitExpr(fn, cur, x.Expr)
		if err != nil {
			return 0, err
		}
		v := b.qual(fn, x.Name)
		if x.Deref {
			cur = b.step(name, cur, label.App("use", label.Sym(v)))
			return b.step(name, cur, label.App("deref", label.Sym(v))), nil
		}
		if b.cfg.ConstDefs {
			if n, ok := x.Expr.(*NumExpr); ok {
				return b.step(name, cur, label.App("def", label.Sym(v), label.Sym(n.Value))), nil
			}
		}
		// Return-value equality: x = g(...) unifies x with g's returned
		// variable when interprocedural tracking is on.
		if b.cfg.Interproc && val != "" {
			b.unify(v, val)
		}
		// Copy equality (Section 5.2): x = y aliases the two names.
		if b.cfg.AssignEqualities {
			if src, ok := x.Expr.(*VarExpr); ok {
				b.unify(v, b.qual(fn, src.Name))
			}
		}
		return b.step(name, cur, label.App("def", label.Sym(v))), nil
	case *ExprStmt:
		cur, _, err := b.emitExpr(fn, cur, x.Expr)
		return cur, err
	case *IfStmt:
		c, _, err := b.emitExpr(fn, cur, x.Cond)
		if err != nil {
			return 0, err
		}
		tEnd, err := b.buildStmts(fn, c, x.Then, lc)
		if err != nil {
			return 0, err
		}
		eEnd, err := b.buildStmts(fn, c, x.Else, lc)
		if err != nil {
			return 0, err
		}
		j := b.fresh(name)
		b.edge(tEnd, nop(), j)
		b.edge(eEnd, nop(), j)
		return j, nil
	case *WhileStmt:
		h := b.step(name, cur, nop()) // loop header join point
		c, _, err := b.emitExpr(fn, h, x.Cond)
		if err != nil {
			return 0, err
		}
		exitV := b.fresh(name)
		body := loopCtx{brk: exitV, cont: h, ok: true}
		bEnd, err := b.buildStmts(fn, c, x.Body, body)
		if err != nil {
			return 0, err
		}
		b.edge(bEnd, nop(), h)
		b.edge(c, nop(), exitV)
		return exitV, nil
	case *ForStmt:
		if x.Init != nil {
			var err error
			cur, err = b.buildStmt(fn, cur, x.Init, lc)
			if err != nil {
				return 0, err
			}
		}
		h := b.step(name, cur, nop())
		c := h
		if x.Cond != nil {
			var err error
			c, _, err = b.emitExpr(fn, h, x.Cond)
			if err != nil {
				return 0, err
			}
		}
		exitV := b.fresh(name)
		postV := b.fresh(name) // continue target: run post, then loop
		body := loopCtx{brk: exitV, cont: postV, ok: true}
		bEnd, err := b.buildStmts(fn, c, x.Body, body)
		if err != nil {
			return 0, err
		}
		b.edge(bEnd, nop(), postV)
		pEnd := postV
		if x.Post != nil {
			pEnd, err = b.buildStmt(fn, postV, x.Post, lc)
			if err != nil {
				return 0, err
			}
		}
		b.edge(pEnd, nop(), h)
		b.edge(c, nop(), exitV)
		return exitV, nil
	case *ReturnStmt:
		if x.Expr != nil {
			var err error
			cur, _, err = b.emitExpr(fn, cur, x.Expr)
			if err != nil {
				return 0, err
			}
			if v, ok := x.Expr.(*VarExpr); ok {
				if b.retVar == nil {
					b.retVar = map[string]string{}
				}
				if b.retVar[fn.f.Name] == "" {
					b.retVar[fn.f.Name] = b.qual(fn, v.Name)
				}
			}
		}
		b.edge(cur, nop(), fn.exit)
		return b.fresh(name), nil // unreachable continuation
	case *BreakStmt:
		if !lc.ok {
			return 0, fmt.Errorf("minic: line %d: break outside a loop", x.Line)
		}
		b.edge(cur, nop(), lc.brk)
		return b.fresh(name), nil
	case *ContinueStmt:
		if !lc.ok {
			return 0, fmt.Errorf("minic: line %d: continue outside a loop", x.Line)
		}
		b.edge(cur, nop(), lc.cont)
		return b.fresh(name), nil
	case *BlockStmt:
		return b.buildStmts(fn, cur, x.Body, lc)
	}
	return 0, fmt.Errorf("minic: unknown statement %T", s)
}

// emitExpr emits the read/effect edges of an expression in evaluation order
// and returns the final vertex plus, when the expression is a call to a
// user-defined function, the callee's returned variable (for return-value
// equality tracking).
func (b *builder) emitExpr(fn *fnCtx, cur int32, e Expr) (int32, string, error) {
	name := fn.f.Name
	switch x := e.(type) {
	case *NumExpr:
		return cur, "", nil
	case *VarExpr:
		return b.emitUse(fn, cur, x.Name), "", nil
	case *UnExpr:
		if x.Op == "*" {
			if v, ok := x.Operand.(*VarExpr); ok {
				qv := b.qual(fn, v.Name)
				cur = b.step(name, cur, label.App("use", label.Sym(qv)))
				return b.step(name, cur, label.App("deref", label.Sym(qv))), "", nil
			}
		}
		if x.Op == "&" {
			// Taking an address reads nothing.
			return cur, "", nil
		}
		cur, _, err := b.emitExpr(fn, cur, x.Operand)
		return cur, "", err
	case *BinExpr:
		lv, lok := x.Left.(*VarExpr)
		rv, rok := x.Right.(*VarExpr)
		cur, _, err := b.emitExpr(fn, cur, x.Left)
		if err != nil {
			return 0, "", err
		}
		cur, _, err = b.emitExpr(fn, cur, x.Right)
		if err != nil {
			return 0, "", err
		}
		if b.cfg.ExpLabels && lok && rok {
			cur = b.step(name, cur, label.App("exp",
				label.Sym(b.qual(fn, lv.Name)), label.Sym(opName(x.Op)), label.Sym(b.qual(fn, rv.Name))))
		}
		return cur, "", nil
	case *CallExpr:
		return b.emitCall(fn, cur, x)
	}
	return 0, "", fmt.Errorf("minic: unknown expression %T", e)
}

func (b *builder) emitUse(fn *fnCtx, cur int32, name string) int32 {
	v := b.qual(fn, name)
	if b.cfg.UseSites {
		b.nextUse++
		return b.step(fn.f.Name, cur, label.App("use", label.Sym(v), label.Sym(strconv.Itoa(b.nextUse))))
	}
	return b.step(fn.f.Name, cur, label.App("use", label.Sym(v)))
}

func (b *builder) emitCall(fn *fnCtx, cur int32, x *CallExpr) (int32, string, error) {
	name := fn.f.Name
	// Recognized effect calls become labels with their simple-variable
	// arguments as symbols.
	if effectCalls[x.Name] {
		var args []*label.Term
		for _, a := range x.Args {
			switch v := a.(type) {
			case *VarExpr:
				args = append(args, label.Sym(b.qual(fn, v.Name)))
			case *NumExpr:
				args = append(args, label.Sym(v.Value))
			default:
				var err error
				cur, _, err = b.emitExpr(fn, cur, a)
				if err != nil {
					return 0, "", err
				}
				args = append(args, label.Sym("_complex"))
			}
		}
		return b.step(name, cur, cfgschema.Effect(x.Name, args...)), "", nil
	}
	callee, known := b.funcs[x.Name]
	if !known || !b.cfg.Interproc {
		// Unknown or non-spliced call: read the arguments, emit call(g).
		for _, a := range x.Args {
			var err error
			cur, _, err = b.emitExpr(fn, cur, a)
			if err != nil {
				return 0, "", err
			}
		}
		return b.step(name, cur, label.App("call", label.Sym(x.Name))), "", nil
	}
	// Interprocedural splice: read arguments, define parameters (with
	// equality tracking), enter the shared callee subgraph, return.
	if len(x.Args) != len(callee.Params) {
		return 0, "", fmt.Errorf("minic: line %d: call to %s with %d args, want %d",
			x.Line, x.Name, len(x.Args), len(callee.Params))
	}
	for i, a := range x.Args {
		var err error
		cur, _, err = b.emitExpr(fn, cur, a)
		if err != nil {
			return 0, "", err
		}
		param := b.qualName(callee, callee.Params[i])
		if v, ok := a.(*VarExpr); ok {
			b.unify(b.qual(fn, v.Name), param)
		}
		cur = b.step(name, cur, label.App("def", label.Sym(param)))
	}
	fg, err := b.buildFunc(callee)
	if err != nil {
		return 0, "", err
	}
	b.edge(cur, label.App("call", label.Sym(x.Name)), fg.entry)
	resume := b.fresh(name)
	b.edge(fg.exit, label.App("ret", label.Sym(x.Name)), resume)
	return resume, b.retVar[callee.Name], nil
}

// opName maps operator tokens to symbol names for exp labels.
func opName(op string) string {
	switch op {
	case "+":
		return "plus"
	case "-":
		return "minus"
	case "*":
		return "times"
	case "/":
		return "div"
	case "%":
		return "mod"
	case "<":
		return "lt"
	case "<=":
		return "le"
	case ">":
		return "gt"
	case ">=":
		return "ge"
	case "==":
		return "eq"
	case "!=":
		return "ne"
	case "&&":
		return "and"
	case "||":
		return "or"
	}
	return "op"
}
