package minic

import "fmt"

// Parse parses a MiniC source file.
//
// Grammar sketch:
//
//	program  := (globalDecl | funcDef)*
//	globalDecl := 'int' ident (',' ident)* ';'
//	funcDef  := 'func' ident '(' params? ')' block
//	block    := '{' stmt* '}'
//	stmt     := 'int' idents ';' | ident '=' expr ';' | '*' ident '=' expr ';'
//	          | 'if' '(' expr ')' block ('else' (block|ifstmt))?
//	          | 'while' '(' expr ')' block
//	          | 'for' '(' simple? ';' expr? ';' simple? ')' block
//	          | 'return' expr? ';' | 'break' ';' | 'continue' ';'
//	          | expr ';' | block
//	expr     := precedence-climbing over || && == != < <= > >= + - * / %
//	unary    := ('-' | '!' | '*' | '&') unary | primary
//	primary  := number | ident | ident '(' args? ')' | '(' expr ')'
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &mparser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF, "") {
		switch {
		case p.at(tKeyword, "int"):
			names, err := p.parseDeclNames()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, names...)
		case p.at(tKeyword, "func"):
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		default:
			return nil, p.errf("expected 'int' declaration or 'func' definition, got %s", p.cur())
		}
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type mparser struct {
	toks []token
	pos  int
}

func (p *mparser) cur() token  { return p.toks[p.pos] }
func (p *mparser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *mparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *mparser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *mparser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprint(kind)
	}
	return token{}, p.errf("expected %q, got %s", want, p.cur())
}

func (p *mparser) errf(format string, args ...any) error {
	return fmt.Errorf("minic: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *mparser) parseDeclNames() ([]string, error) {
	if _, err := p.expect(tKeyword, "int"); err != nil {
		return nil, err
	}
	var names []string
	for {
		id, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		names = append(names, id.text)
		if !p.accept(tPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	return names, nil
}

func (p *mparser) parseFunc() (*Func, error) {
	kw, _ := p.expect(tKeyword, "func")
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	if !p.at(tPunct, ")") {
		for {
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, id.text)
			if !p.accept(tPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Func{Name: name.text, Params: params, Body: body, Line: kw.line}, nil
}

func (p *mparser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(tPunct, "}") {
		if p.at(tEOF, "") {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.pos++ // consume '}'
	return body, nil
}

func (p *mparser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tKeyword, "int"):
		names, err := p.parseDeclNames()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Names: names, Line: t.line}, nil
	case p.at(tKeyword, "if"):
		return p.parseIf()
	case p.at(tKeyword, "while"):
		p.pos++
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case p.at(tKeyword, "for"):
		return p.parseFor()
	case p.at(tKeyword, "return"):
		p.pos++
		var e Expr
		if !p.at(tPunct, ";") {
			var err error
			e, err = p.parseExpr(0)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Expr: e, Line: t.line}, nil
	case p.at(tKeyword, "break"):
		p.pos++
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case p.at(tKeyword, "continue"):
		p.pos++
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case p.at(tPunct, "{"):
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Body: body, Line: t.line}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses an assignment or expression statement, without the
// trailing semicolon (shared by for-headers).
func (p *mparser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	if p.at(tPunct, "*") {
		// *ident = expr
		p.pos++
		id, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: id.text, Deref: true, Expr: e, Line: t.line}, nil
	}
	if p.at(tIdent, "") && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "=" {
		id := p.next()
		p.pos++ // '='
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: id.text, Expr: e, Line: t.line}, nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Expr: e, Line: t.line}, nil
}

func (p *mparser) parseIf() (Stmt, error) {
	t := p.next() // 'if'
	cond, err := p.parseParenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(tKeyword, "else") {
		if p.at(tKeyword, "if") {
			s, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			els = []Stmt{s}
		} else {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.line}, nil
}

func (p *mparser) parseFor() (Stmt, error) {
	t := p.next() // 'for'
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var init, post Stmt
	var cond Expr
	var err error
	if !p.at(tPunct, ";") {
		init, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tPunct, ";") {
		cond, err = p.parseExpr(0)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tPunct, ")") {
		post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Line: t.line}, nil
}

func (p *mparser) parseParenExpr() (Expr, error) {
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	return e, nil
}

// binPrec gives binding powers for precedence climbing.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *mparser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tPunct || !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *mparser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "-" || t.text == "!" || t.text == "*" || t.text == "&") {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, Operand: e}, nil
	}
	return p.parsePrimary()
}

func (p *mparser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.pos++
		return &NumExpr{Value: t.text}, nil
	case t.kind == tIdent:
		p.pos++
		if p.at(tPunct, "(") {
			p.pos++
			var args []Expr
			if !p.at(tPunct, ")") {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		}
		return &VarExpr{Name: t.text}, nil
	case t.kind == tPunct && t.text == "(":
		p.pos++
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected an expression, got %s", t)
	}
}
