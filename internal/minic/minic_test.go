package minic

import (
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
)

const sample = `
// uninitialized-use sample
int g;

func main() {
	int a, b, c;
	a = 5;
	b = a + c;          // c is used uninitialized
	if (a < b) {
		open(f);
		access(f);
		close(f);
	} else {
		a = b;
	}
	while (a < 10) {
		a = a + 1;
	}
	return;
}
`

func TestLexerBasics(t *testing.T) {
	toks, err := lex("a = 5; // comment\n b <= c /* block\ncomment */ != d")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"a", "=", "5", ";", "b", "<=", "c", "!=", "d"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("a = 5 $"); err == nil {
		t.Errorf("bad character accepted")
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Errorf("unterminated comment accepted")
	}
}

func TestParseProgram(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 1 || prog.Globals[0] != "g" {
		t.Fatalf("globals = %v", prog.Globals)
	}
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", prog.Funcs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func main() { a = ; }",
		"func main() { if a < b { } }", // missing parens
		"func main() { while (a) }",    // missing block
		"int ;",
		"func () {}",
		"banana",
		"func main() { break; }", // break outside loop caught at build
		"func main() { a = 5 }",  // missing semicolon
		"func main() { int a, ; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			// break-outside-loop parses fine; check at build instead
			if !strings.Contains(src, "break") {
				t.Errorf("Parse(%q) succeeded, want error", src)
			} else if _, err := Build(src, Config{}); err == nil {
				t.Errorf("Build(%q) succeeded, want error", src)
			}
		}
	}
}

func TestBuildGraphShape(t *testing.T) {
	g, err := Build(sample, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Start() < 0 {
		t.Fatal("no start vertex")
	}
	// Everything except dead continuations (the fresh vertex after a
	// return/break/continue) must be reachable; the sample has one return.
	reach := g.Reachable(g.Start())
	unreachable := 0
	for v := 0; v < g.NumVertices(); v++ {
		if !reach[v] && len(g.Out(int32(v))) > 0 {
			unreachable++
		}
	}
	if unreachable > 1 {
		t.Errorf("%d vertices with outgoing edges unreachable, want <= 1 (dead code after return)", unreachable)
	}
	// The function exit must be reachable.
	if exitV, ok := g.LookupVertex("main.ret"); !ok || !reach[exitV] {
		t.Errorf("main.ret missing or unreachable")
	}
	// The loop must create a cycle.
	_, comps := g.SCC()
	hasCycle := false
	for _, c := range comps {
		if len(c) > 1 {
			hasCycle = true
		}
	}
	if !hasCycle {
		t.Errorf("while loop produced no cycle")
	}
}

func TestUninitializedUseAnalysis(t *testing.T) {
	g := MustBuild(sample, Config{})
	q := core.MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uninit := map[string]bool{}
	for _, p := range res.Pairs {
		uninit[p.Subst.Format(g.U, q.PS)] = true
	}
	if !uninit["{x↦c}"] {
		t.Errorf("c should be reported uninitialized: %v", uninit)
	}
	if uninit["{x↦a}"] {
		t.Errorf("a is initialized before use: %v", uninit)
	}
	// b: used in 'if (a < b)' after being defined; not uninitialized.
	if uninit["{x↦b}"] {
		t.Errorf("b is defined before its uses: %v", uninit)
	}
}

func TestFileDisciplineAnalysis(t *testing.T) {
	src := `
func main() {
	open(f);
	access(f);
	close(f);
	access(f);      // access after close: violation
	access(h);      // never opened: violation
}
`
	g := MustBuild(src, Config{})
	q := core.MustCompile(pattern.MustParse("(eps | _* close(f)) (!open(f))* access(f)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]bool{}
	for _, p := range res.Pairs {
		files[p.Subst.Format(g.U, q.PS)] = true
	}
	if !files["{f↦f}"] {
		t.Errorf("access-after-close of f not found: %v", files)
	}
	if !files["{f↦h}"] {
		t.Errorf("access of never-opened h not found: %v", files)
	}
	if len(res.Pairs) != 2 {
		t.Errorf("expected exactly 2 violations, got %d: %v", len(res.Pairs), files)
	}
}

func TestUseSitesAndEntryLoop(t *testing.T) {
	src := `
func main() {
	int a, b;
	a = b;
	b = a;
}
`
	g := MustBuild(src, Config{UseSites: true, EntryLoop: true})
	// Backward query of Section 5.1 on the reversed graph.
	r := g.Reverse()
	exitV := int32(-1)
	// Find the vertex after the exit() edge: in the reversed graph it is
	// the one with an exit() out-edge... use the forward graph's structure:
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			if e.Label.Format(g.U, nil) == "exit()" {
				exitV = e.To
			}
		}
	}
	if exitV < 0 {
		t.Fatal("no exit() edge emitted")
	}
	q := core.MustCompile(pattern.MustParse("_* use(x,l) (!def(x))* entry()"), r.U)
	res, err := core.Exist(r, exitV, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// b is used uninitialized at its (single) use site.
	foundB := false
	for _, p := range res.Pairs {
		s := p.Subst.Format(r.U, q.PS)
		if strings.Contains(s, "x↦b") {
			foundB = true
		}
		if strings.Contains(s, "x↦a") {
			t.Errorf("a reported uninitialized: %v", s)
		}
	}
	if !foundB {
		t.Errorf("b not reported uninitialized by the backward query")
	}
}

func TestExpAndConstLabels(t *testing.T) {
	src := `
func main() {
	int a, b, c;
	a = 1;
	b = 2;
	c = a + b;
}
`
	g := MustBuild(src, Config{ExpLabels: true, ConstDefs: true})
	labels := map[string]bool{}
	for _, l := range g.Labels() {
		labels[l.Format(g.U, nil)] = true
	}
	if !labels["exp('a','plus','b')"] {
		t.Errorf("exp label missing: %v", labels)
	}
	if !labels["def('a',1)"] || !labels["def('b',2)"] {
		t.Errorf("const def labels missing: %v", labels)
	}
	if !labels["def('c')"] {
		t.Errorf("plain def label missing for non-constant assignment: %v", labels)
	}
}

func TestInterprocEqualities(t *testing.T) {
	src := `
func helper(q) {
	access(q);
	return q;
}

func main() {
	int f, r;
	open(f);
	r = helper(f);
	close(r);
}
`
	g := MustBuild(src, Config{Interproc: true})
	// With parameter/return equality tracking, f ≈ q ≈ r, so the file
	// discipline holds: no (!close(f))* open(f) violation backwards, and
	// the access is between open and close of the same symbol.
	q := core.MustCompile(pattern.MustParse("(eps | _* close(f)) (!open(f))* access(f)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("equality tracking should remove false alarms, got %v", res.Pairs)
	}
	// Without it, the access of q looks like an un-opened file.
	g2 := MustBuild(src, Config{Interproc: false})
	q2 := core.MustCompile(pattern.MustParse("(eps | _* close(f)) (!open(f))* access(f)"), g2.U)
	res2, err := core.Exist(g2, g2.Start(), q2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Pairs) != 0 {
		// Without interprocedural splicing the helper body is not even
		// reachable, so no violation is reported either; the difference
		// shows up in reachability.
		t.Logf("non-interproc result: %v", res2.Pairs)
	}
}

func TestForLoopAndBreakContinue(t *testing.T) {
	src := `
func main() {
	int i, s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i == 5) {
			continue;
		}
		if (i == 7) {
			break;
		}
		s = s + i;
	}
	use_it(s);
}
`
	g, err := Build(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// s is defined before every use.
	q := core.MustCompile(pattern.MustParse("(!def(x))* use(x)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		s := p.Subst.Format(g.U, q.PS)
		if strings.Contains(s, "x↦s") {
			t.Errorf("s reported uninitialized: %v", s)
		}
	}
}

func TestNoMainRejected(t *testing.T) {
	if _, err := Build("func other() {}", Config{}); err == nil {
		t.Fatal("program without main accepted")
	}
	if _, err := Build("func main() {}\nfunc main() {}", Config{}); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestDerefLabels(t *testing.T) {
	src := `
func main() {
	int p, x;
	p = malloc(8);
	x = *p;
	free(p);
	*p = 3;
}
`
	g := MustBuild(src, Config{})
	labels := map[string]bool{}
	for _, l := range g.Labels() {
		labels[l.Format(g.U, nil)] = true
	}
	if !labels["deref('p')"] {
		t.Fatalf("deref label missing: %v", labels)
	}
	// Use-after-free query finds the *p = 3 store.
	q := core.MustCompile(pattern.MustParse("_* free(p) (!malloc(p))* (free(p)|deref(p))"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatalf("use-after-free not detected")
	}
}

func TestAssignEqualities(t *testing.T) {
	// The Section 5.2 example: open a file through f, close it through g.
	src := `
func main() {
	int f, g;
	open(f);
	g = f;
	close(g);
}
`
	// Without equality tracking the backward unclosed-file query reports a
	// false alarm for f.
	plain := MustBuild(src, Config{})
	q := core.MustCompile(pattern.MustParse("(!close(f))* open(f)"), plain.U)
	r := plain.Reverse()
	var start int32 = -1
	for v := 0; v < plain.NumVertices(); v++ {
		for _, e := range plain.Out(int32(v)) {
			if e.Label.Format(plain.U, nil) == "exit()" {
				start = e.To
			}
		}
	}
	res, err := core.Exist(r, start, q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("expected the f false alarm without equalities, got %v", res.Pairs)
	}
	// With tracking, f ≈ g and the alarm disappears.
	eq := MustBuild(src, Config{AssignEqualities: true})
	q2 := core.MustCompile(pattern.MustParse("(!close(f))* open(f)"), eq.U)
	r2 := eq.Reverse()
	start = -1
	for v := 0; v < eq.NumVertices(); v++ {
		for _, e := range eq.Out(int32(v)) {
			if e.Label.Format(eq.U, nil) == "exit()" {
				start = e.To
			}
		}
	}
	res2, err := core.Exist(r2, start, q2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Pairs) != 0 {
		t.Fatalf("equality tracking should remove the alarm, got %v", res2.Pairs)
	}
}
