package minic

// Program is a parsed MiniC source file: global variable declarations and
// function definitions. Execution starts at the function named "main".
type Program struct {
	Globals []string
	Funcs   []*Func
}

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// DeclStmt declares local variables (without initialization).
type DeclStmt struct {
	Names []string
	Line  int
}

// AssignStmt is name = expr, or *name = expr when Deref is set.
type AssignStmt struct {
	Name  string
	Deref bool
	Expr  Expr
	Line  int
}

// ExprStmt evaluates an expression for effect (typically a call).
type ExprStmt struct {
	Expr Expr
	Line int
}

// IfStmt is if (cond) { then } else { else }.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is while (cond) { body }.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is for (init; cond; post) { body }; each part may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
	Line int
}

// ReturnStmt is return or return expr.
type ReturnStmt struct {
	Expr Expr // nil for bare return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

// BlockStmt is a nested { ... } block.
type BlockStmt struct {
	Body []Stmt
	Line int
}

func (*DeclStmt) isStmt()     {}
func (*AssignStmt) isStmt()   {}
func (*ExprStmt) isStmt()     {}
func (*IfStmt) isStmt()       {}
func (*WhileStmt) isStmt()    {}
func (*ForStmt) isStmt()      {}
func (*ReturnStmt) isStmt()   {}
func (*BreakStmt) isStmt()    {}
func (*ContinueStmt) isStmt() {}
func (*BlockStmt) isStmt()    {}

// Expr is an expression node.
type Expr interface{ isExpr() }

// VarExpr is a variable reference.
type VarExpr struct{ Name string }

// NumExpr is an integer literal.
type NumExpr struct{ Value string }

// BinExpr is left op right.
type BinExpr struct {
	Op          string
	Left, Right Expr
}

// UnExpr is op operand; op is one of -, !, *, &.
type UnExpr struct {
	Op      string
	Operand Expr
}

// CallExpr is name(args...).
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*VarExpr) isExpr()  {}
func (*NumExpr) isExpr()  {}
func (*BinExpr) isExpr()  {}
func (*UnExpr) isExpr()   {}
func (*CallExpr) isExpr() {}
