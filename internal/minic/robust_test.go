package minic

import (
	"math/rand"
	"strings"
	"testing"
)

func fuzzish(rng *rand.Rand) string {
	frag := []string{
		"func", "main", "int", "if", "else", "while", "for", "return",
		"break", "continue", "(", ")", "{", "}", ";", ",", "=", "+", "*",
		"a", "b", "5", " ", "\n", "open(f)", "//c\n", "/*", "*/", "&&", "!",
		"func main() {", "}", "int a;", "a = 1;",
	}
	var b strings.Builder
	for i := rng.Intn(16); i > 0; i-- {
		b.WriteString(frag[rng.Intn(len(frag))])
		b.WriteByte(' ')
	}
	return b.String()
}

func TestParseAndBuildNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10000; i++ {
		src := fuzzish(rng)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse/Build(%q) panicked: %v", src, r)
				}
			}()
			prog, err := Parse(src)
			if err != nil {
				return
			}
			// Whatever parses must also lower without panicking, under
			// every labeling configuration.
			for _, cfg := range []Config{
				{},
				{UseSites: true, EntryLoop: true},
				{ExpLabels: true, ConstDefs: true},
				{Interproc: true},
			} {
				_, _ = BuildGraph(prog, cfg)
			}
		}()
	}
}

func TestBuildGraphIsDeterministic(t *testing.T) {
	src := `
int g;
func helper(x) { access(x); return x; }
func main() {
	int a, b;
	a = 1;
	for (b = 0; b < a; b = b + 1) {
		if (b == 2) { continue; }
		g = helper(a);
	}
}
`
	a := MustBuild(src, Config{Interproc: true, UseSites: true})
	b := MustBuild(src, Config{Interproc: true, UseSites: true})
	if a.String() != b.String() {
		t.Fatal("BuildGraph is not deterministic")
	}
}
