// Package minic implements a small C-like language front-end — lexer,
// parser, and control-flow-graph builder — producing the edge-labeled
// program graphs of Liu et al. (PLDI 2004), Section 2: vertices are program
// points and labeled edges are operations (def/use/exp/def-const and
// recognized resource calls). It stands in for the paper's CodeSurfer-based
// C front-end.
package minic

import (
	"fmt"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct   // single/multi-char operators and punctuation
	tKeyword // int, func, if, else, while, for, return, break, continue
)

var keywords = map[string]bool{
	"int": true, "func": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes src, reporting the first error with its line number.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("minic: line %d: unterminated block comment", line)
			}
			i += 2
		case isDigit(c):
			start := i
			for i < n && isDigit(src[i]) {
				i++
			}
			toks = append(toks, token{tNumber, src[start:i], line})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			text := src[start:i]
			kind := tIdent
			if keywords[text] {
				kind = tKeyword
			}
			toks = append(toks, token{kind, text, line})
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{tPunct, two, line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|',
				'(', ')', '{', '}', ';', ',':
				toks = append(toks, token{tPunct, string(c), line})
				i++
			default:
				return nil, fmt.Errorf("minic: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isIdentPart(r rune) bool { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
