// Package lts implements labeled transition systems and the two graph
// transformations of Liu et al. (PLDI 2004), Section 2.3, that make states
// visible to path queries: a state(v) self-loop per vertex for existential
// queries, and a split of each vertex into v_in --state(v)--> v_out for
// universal queries. It reads and writes the Aldébaran ".aut" format used
// by the VLTS benchmark suite the paper evaluates on.
package lts

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rpq/internal/graph"
	"rpq/internal/label"
)

// Transition is one labeled transition of an LTS.
type Transition struct {
	From   int32
	Action string
	To     int32
}

// LTS is a labeled transition system: a finite graph with a distinguished
// initial state whose edges carry actions. The invisible internal action is
// conventionally named "i".
type LTS struct {
	Initial   int32
	NumStates int
	Trans     []Transition
}

// Invisible is the conventional name of the internal action.
const Invisible = "i"

// ReadAUT parses the Aldébaran format:
//
//	des (initial, transitions, states)
//	(from, "action", to)
//	...
func ReadAUT(r io.Reader) (*LTS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("lts: empty input")
	}
	header := strings.TrimSpace(sc.Text())
	var initial, ntrans, nstates int
	if _, err := fmt.Sscanf(header, "des (%d, %d, %d)", &initial, &ntrans, &nstates); err != nil {
		return nil, fmt.Errorf("lts: bad header %q: %v", header, err)
	}
	l := &LTS{Initial: int32(initial), NumStates: nstates}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		tr, err := parseAUTTransition(text)
		if err != nil {
			return nil, fmt.Errorf("lts: line %d: %v", line, err)
		}
		if int(tr.From) >= nstates || int(tr.To) >= nstates || tr.From < 0 || tr.To < 0 {
			return nil, fmt.Errorf("lts: line %d: state out of range in %q", line, text)
		}
		l.Trans = append(l.Trans, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(l.Trans) != ntrans {
		return nil, fmt.Errorf("lts: header declares %d transitions, found %d", ntrans, len(l.Trans))
	}
	return l, nil
}

func parseAUTTransition(s string) (Transition, error) {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return Transition{}, fmt.Errorf("bad transition %q", s)
	}
	body := s[1 : len(s)-1]
	// from, "action possibly, with, commas", to
	c1 := strings.Index(body, ",")
	c2 := strings.LastIndex(body, ",")
	if c1 < 0 || c2 <= c1 {
		return Transition{}, fmt.Errorf("bad transition %q", s)
	}
	from, err := strconv.Atoi(strings.TrimSpace(body[:c1]))
	if err != nil {
		return Transition{}, fmt.Errorf("bad source in %q", s)
	}
	to, err := strconv.Atoi(strings.TrimSpace(body[c2+1:]))
	if err != nil {
		return Transition{}, fmt.Errorf("bad target in %q", s)
	}
	action := strings.TrimSpace(body[c1+1 : c2])
	action = strings.Trim(action, `"`)
	if action == "" {
		return Transition{}, fmt.Errorf("empty action in %q", s)
	}
	return Transition{From: int32(from), Action: action, To: int32(to)}, nil
}

// ReadAUTString parses an AUT description from a string.
func ReadAUTString(s string) (*LTS, error) { return ReadAUT(strings.NewReader(s)) }

// WriteAUT emits the LTS in the Aldébaran format.
func (l *LTS) WriteAUT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "des (%d, %d, %d)\n", l.Initial, len(l.Trans), l.NumStates)
	for _, t := range l.Trans {
		fmt.Fprintf(bw, "(%d, %q, %d)\n", t.From, t.Action, t.To)
	}
	return bw.Flush()
}

// String renders the LTS in the AUT format.
func (l *LTS) String() string {
	var b strings.Builder
	_ = l.WriteAUT(&b)
	return b.String()
}

// stateName returns the symbol/vertex name of state i.
func stateName(i int32) string { return "s" + strconv.Itoa(int(i)) }

// sanitizeAction conservatively normalizes an action name into a symbol.
func sanitizeAction(a string) string {
	var b strings.Builder
	for _, r := range a {
		switch {
		case r == '_' || r == '.' || r == '-',
			'a' <= r && r <= 'z', 'A' <= r && r <= 'Z', '0' <= r && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_act"
	}
	return b.String()
}

// ForExistential produces the graph for existential queries: each
// transition becomes an act(a) edge, and every state v gains a self-loop
// labeled state(v).
func (l *LTS) ForExistential() *graph.Graph {
	g := graph.New()
	for i := 0; i < l.NumStates; i++ {
		v := g.Vertex(stateName(int32(i)))
		g.MustAddEdgeStr(stateName(int32(i)), fmt.Sprintf("state(%s)", stateName(int32(i))), stateName(int32(i)))
		_ = v
	}
	for _, t := range l.Trans {
		g.MustAddEdgeStr(stateName(t.From), fmt.Sprintf("act(%s)", sanitizeAction(t.Action)), stateName(t.To))
	}
	g.SetStart(l.Initial)
	return g
}

// ForUniversal produces the graph for universal queries: each state v is
// split into v_in and v_out connected by a state(v) edge; transitions run
// from sources' out-vertices to targets' in-vertices.
func (l *LTS) ForUniversal() *graph.Graph {
	g := graph.New()
	inV := make([]int32, l.NumStates)
	outV := make([]int32, l.NumStates)
	for i := 0; i < l.NumStates; i++ {
		inV[i] = g.Vertex(stateName(int32(i)) + "_in")
		outV[i] = g.Vertex(stateName(int32(i)) + "_out")
	}
	for i := 0; i < l.NumStates; i++ {
		t := label.App("state", label.Sym(stateName(int32(i))))
		if err := g.AddEdge(inV[i], t, outV[i]); err != nil {
			panic(err)
		}
	}
	for _, t := range l.Trans {
		a := label.App("act", label.Sym(sanitizeAction(t.Action)))
		if err := g.AddEdge(outV[t.From], a, inV[t.To]); err != nil {
			panic(err)
		}
	}
	g.SetStart(inV[l.Initial])
	return g
}

// DeadlockStates returns the states with no outgoing transitions that are
// reachable from the initial state — ground truth for the deadlock query.
func (l *LTS) DeadlockStates() []int32 {
	out := make([]int, l.NumStates)
	adj := make([][]int32, l.NumStates)
	for _, t := range l.Trans {
		out[t.From]++
		adj[t.From] = append(adj[t.From], t.To)
	}
	seen := make([]bool, l.NumStates)
	stack := []int32{l.Initial}
	seen[l.Initial] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	var dead []int32
	for i := 0; i < l.NumStates; i++ {
		if seen[i] && out[i] == 0 {
			dead = append(dead, int32(i))
		}
	}
	return dead
}

// HasLivelock reports whether a reachable cycle of invisible actions exists
// — ground truth for the livelock query. It searches the subgraph of
// invisible transitions restricted to reachable states.
func (l *LTS) HasLivelock() bool {
	adj := make([][]int32, l.NumStates)
	inv := make([][]int32, l.NumStates)
	for _, t := range l.Trans {
		adj[t.From] = append(adj[t.From], t.To)
		if t.Action == Invisible {
			inv[t.From] = append(inv[t.From], t.To)
		}
	}
	seen := make([]bool, l.NumStates)
	stack := []int32{l.Initial}
	seen[l.Initial] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	// Cycle detection over invisible edges among reachable states.
	color := make([]int8, l.NumStates) // 0 white, 1 gray, 2 black
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		color[v] = 1
		for _, w := range inv[v] {
			if !seen[w] {
				continue
			}
			if color[w] == 1 {
				return true
			}
			if color[w] == 0 && dfs(w) {
				return true
			}
		}
		color[v] = 2
		return false
	}
	for v := 0; v < l.NumStates; v++ {
		if seen[v] && color[v] == 0 {
			if dfs(int32(v)) {
				return true
			}
		}
	}
	return false
}
