package lts

import (
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
)

const sampleAUT = `des (0, 6, 5)
(0, "open", 1)
(1, "i", 2)
(2, "i", 1)
(1, "close", 3)
(3, "crash", 4)
(0, "open", 3)
`

func TestReadWriteAUT(t *testing.T) {
	l, err := ReadAUTString(sampleAUT)
	if err != nil {
		t.Fatal(err)
	}
	if l.Initial != 0 || l.NumStates != 5 || len(l.Trans) != 6 {
		t.Fatalf("parsed %d/%d/%d", l.Initial, l.NumStates, len(l.Trans))
	}
	back, err := ReadAUTString(l.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.String() != l.String() {
		t.Fatalf("round trip differs")
	}
}

func TestReadAUTErrors(t *testing.T) {
	bad := []string{
		"",
		"des (0, 1, 2)", // missing transition
		"not a header\n",
		"des (0, 1, 2)\n(0, \"a\", 5)\n", // state out of range
		"des (0, 1, 2)\n(x, \"a\", 1)\n",
		"des (0, 1, 2)\nbroken\n",
	}
	for _, in := range bad {
		if _, err := ReadAUTString(in); err == nil {
			t.Errorf("ReadAUTString(%q) succeeded, want error", in)
		}
	}
}

func TestActionWithCommasAndQuotes(t *testing.T) {
	l, err := ReadAUTString("des (0, 1, 2)\n(0, \"send(a, b)\", 1)\n")
	if err != nil {
		t.Fatal(err)
	}
	if l.Trans[0].Action != "send(a, b)" {
		t.Fatalf("action = %q", l.Trans[0].Action)
	}
}

func TestForExistentialShape(t *testing.T) {
	l, _ := ReadAUTString(sampleAUT)
	g := l.ForExistential()
	if g.NumVertices() != 5 {
		t.Fatalf("vertices = %d, want 5", g.NumVertices())
	}
	// 5 state self-loops + 6 act edges.
	if g.NumEdges() != 11 {
		t.Fatalf("edges = %d, want 11", g.NumEdges())
	}
}

func TestForUniversalShape(t *testing.T) {
	l, _ := ReadAUTString(sampleAUT)
	g := l.ForUniversal()
	if g.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10", g.NumVertices())
	}
	if g.NumEdges() != 5+6 {
		t.Fatalf("edges = %d, want 11", g.NumEdges())
	}
	if !strings.HasSuffix(g.VertexName(g.Start()), "_in") {
		t.Fatalf("start should be an in-vertex, got %s", g.VertexName(g.Start()))
	}
}

func TestDeadlockDetectionQuery(t *testing.T) {
	// State 4 is reachable and has no outgoing transitions.
	l, _ := ReadAUTString(sampleAUT)
	dead := l.DeadlockStates()
	if len(dead) != 1 || dead[0] != 4 {
		t.Fatalf("DeadlockStates = %v, want [4]", dead)
	}
	// The paper's query: _* state(s) act(_) finds states WITH outgoing
	// edges; reachable states not in the result are deadlocks.
	g := l.ForExistential()
	q := core.MustCompile(pattern.MustParse("_* state(s) act(_)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := q.PS.Lookup("s")
	alive := map[string]bool{}
	for _, p := range res.Pairs {
		if p.Subst[s0] >= 0 {
			alive[g.U.Syms.Name(p.Subst[s0])] = true
		}
	}
	for i := 0; i < 4; i++ {
		name := "s" + string(rune('0'+i))
		if !alive[name] {
			t.Errorf("state %s has outgoing edges but is not in the result: %v", name, alive)
		}
	}
	if alive["s4"] {
		t.Errorf("deadlocked state s4 appears to have outgoing edges")
	}
}

func TestLivelockDetectionQuery(t *testing.T) {
	l, _ := ReadAUTString(sampleAUT)
	if !l.HasLivelock() {
		t.Fatalf("states 1<->2 form an invisible cycle")
	}
	g := l.ForExistential()
	q := core.MustCompile(pattern.MustParse("_* state(s) act('i')+ state(s)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatalf("livelock query found nothing")
	}
	s0, _ := q.PS.Lookup("s")
	found := map[string]bool{}
	for _, p := range res.Pairs {
		found[g.U.Syms.Name(p.Subst[s0])] = true
	}
	if !found["s1"] || !found["s2"] {
		t.Errorf("livelock states = %v, want s1 and s2", found)
	}
	// An LTS without an invisible cycle yields an empty livelock result.
	l2, _ := ReadAUTString("des (0, 2, 3)\n(0, \"i\", 1)\n(1, \"a\", 2)\n")
	if l2.HasLivelock() {
		t.Fatalf("no invisible cycle expected")
	}
	g2 := l2.ForExistential()
	q2 := core.MustCompile(pattern.MustParse("_* state(s) act('i')+ state(s)"), g2.U)
	res2, err := core.Exist(g2, g2.Start(), q2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Pairs) != 0 {
		t.Errorf("livelock falsely detected: %v", res2.Pairs)
	}
}

func TestSanitizeAction(t *testing.T) {
	if got := sanitizeAction("send(a, b)"); got != "send_a__b_" {
		t.Errorf("sanitizeAction = %q", got)
	}
	if got := sanitizeAction(""); got != "_act" {
		t.Errorf("sanitizeAction(\"\") = %q", got)
	}
}

func TestUnreachableDeadlockIgnored(t *testing.T) {
	// State 2 has no outgoing edges but is unreachable.
	l, err := ReadAUTString("des (0, 1, 3)\n(0, \"a\", 1)\n")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.DeadlockStates()
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadlockStates = %v, want [1]", dead)
	}
}
