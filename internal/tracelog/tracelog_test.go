package tracelog

import (
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
)

const sampleLog = `
# an audit log
login(alice)
open(passwd, alice)
read(passwd, alice)
close(passwd, alice)
login(bob)
open(passwd, bob)
exec(shell, bob)
close(passwd, bob)
logout(alice)
`

func TestReadLinearGraph(t *testing.T) {
	g, err := ReadString(sampleLog)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9 {
		t.Fatalf("events = %d, want 9", g.NumEdges())
	}
	if g.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10", g.NumVertices())
	}
	// Linear: every vertex has at most one outgoing edge.
	for v := 0; v < g.NumVertices(); v++ {
		if len(g.Out(int32(v))) > 1 {
			t.Fatalf("vertex %d has %d out edges", v, len(g.Out(int32(v))))
		}
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"open(", "not a label (", "_"} {
		if _, err := ReadString(in); err == nil {
			t.Errorf("ReadString(%q) succeeded, want error", in)
		}
	}
}

func TestIntrusionSignature(t *testing.T) {
	g, err := ReadString(sampleLog)
	if err != nil {
		t.Fatal(err)
	}
	// Signature: a user opens the password file and executes a program
	// while it is still open. Only bob triggers it.
	q := core.MustCompile(pattern.MustParse("_* open('passwd', u) (!close('passwd', u))* exec(_, u)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{Witnesses: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("hits = %v", res.Pairs)
	}
	u, _ := q.PS.Lookup("u")
	if g.U.Syms.Name(res.Pairs[0].Subst[u]) != "bob" {
		t.Fatalf("culprit = %s, want bob", res.Pairs[0].Subst.Format(g.U, q.PS))
	}
	// The answer's vertex maps back to the event number.
	idx, ok := EventIndex(g.VertexName(res.Pairs[0].Vertex))
	if !ok || idx != 7 {
		t.Fatalf("event index = %d, %v (want 7, the exec)", idx, ok)
	}
	// The witness ends at the exec event.
	w := res.Pairs[0].Witness
	if len(w) != 7 || !strings.HasPrefix(w[len(w)-1].Label.Format(g.U, nil), "exec(") {
		t.Fatalf("witness = %v", w)
	}
}

func TestSessionCorrelation(t *testing.T) {
	// Parameters correlate events of one session even when interleaved:
	// alice's open/close pair wraps bob's whole session, but each user's
	// own events line up.
	g, err := ReadString(sampleLog)
	if err != nil {
		t.Fatal(err)
	}
	q := core.MustCompile(pattern.MustParse("_* login(u) (!logout(u))* logout(u)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	users := map[string]bool{}
	u, _ := q.PS.Lookup("u")
	for _, p := range res.Pairs {
		users[g.U.Syms.Name(p.Subst[u])] = true
	}
	if !users["alice"] || users["bob"] {
		t.Fatalf("completed sessions = %v, want alice only", users)
	}
}

func TestEventIndex(t *testing.T) {
	if i, ok := EventIndex("t42"); !ok || i != 42 {
		t.Errorf("EventIndex(t42) = %d, %v", i, ok)
	}
	if _, ok := EventIndex("x1"); ok {
		t.Errorf("EventIndex(x1) accepted")
	}
	if _, ok := EventIndex("tzz"); ok {
		t.Errorf("EventIndex(tzz) accepted")
	}
}
