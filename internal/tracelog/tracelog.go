// Package tracelog turns event logs into (linear) edge-labeled graphs so
// that parametric regular path queries can scan them — the intrusion
// detection application the paper's related work points at ("parameters are
// needed in querying system logs for intrusion detection", citing Sekar &
// Uppuluri). A log is a degenerate graph — one path — which makes every
// query existential and the worklist linear; parameters still do the heavy
// lifting of correlating the events of one session, file, or process.
//
// Log format, one event per line:
//
//	# comment
//	op(arg, ...)
//
// using the ground label syntax (bare identifiers are symbols). Example:
//
//	login(alice)
//	open(passwd, alice)
//	setuid(0, alice)
//	exec(shell, alice)
//
// Queries then express signatures such as "a user opened a sensitive file
// and later executed a program without an intervening privilege drop":
//
//	_* open('passwd', u) (!drop(u))* exec(_, u)
package tracelog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rpq/internal/graph"
	"rpq/internal/label"
)

// Read parses an event log into its linear graph. Vertex t<i> is the state
// after the first i events; the start vertex is t0.
func Read(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	cur := g.Vertex("t0")
	g.SetStart(cur)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNo := 0
	events := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := label.Parse(line, label.GroundMode)
		if err != nil {
			return nil, fmt.Errorf("tracelog: line %d: %v", lineNo, err)
		}
		events++
		next := g.Vertex("t" + strconv.Itoa(events))
		if err := g.AddEdge(cur, t, next); err != nil {
			return nil, fmt.Errorf("tracelog: line %d: %v", lineNo, err)
		}
		cur = next
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadString parses a log from a string.
func ReadString(s string) (*graph.Graph, error) { return Read(strings.NewReader(s)) }

// EventIndex recovers the position (1-based event number) encoded in a
// vertex name, so query answers can be mapped back to log lines.
func EventIndex(vertexName string) (int, bool) {
	if !strings.HasPrefix(vertexName, "t") {
		return 0, false
	}
	n, err := strconv.Atoi(vertexName[1:])
	if err != nil {
		return 0, false
	}
	return n, true
}
