package subst

// Domains assigns each parameter a candidate symbol set. Index i is the
// domain of parameter i. The paper bounds the number of substitutions by
// symbs^pars; Section 5.3 refines symbs to per-parameter domain sizes, which
// this type realizes.
type Domains [][]int32

// Uniform builds domains giving every one of pars parameters the same
// candidate set.
func Uniform(pars int, symbols []int32) Domains {
	d := make(Domains, pars)
	for i := range d {
		d[i] = symbols
	}
	return d
}

// Count returns the number of full substitutions over the domains, i.e. the
// product of the domain sizes ("substs" upper bound for enumeration).
func (d Domains) Count() int {
	n := 1
	for _, dom := range d {
		n *= len(dom)
		if n < 0 { // overflow guard for pathological inputs
			return int(^uint(0) >> 1)
		}
	}
	return n
}

// ForEachExtension enumerates extensions(θ, params): every substitution that
// extends base by binding exactly the currently unbound parameters among
// params, each to a symbol from its domain. The callback receives a buffer
// that is reused across iterations; callers must Clone it to retain it.
// Returning false from fn stops the enumeration early. ForEachExtension
// reports whether the enumeration ran to completion.
//
// If all params are already bound in base, fn is called exactly once with
// base itself.
func ForEachExtension(base Subst, params []int32, doms Domains, fn func(Subst) bool) bool {
	var free []int32
	for _, p := range params {
		if base[p] == NoSym {
			free = append(free, p)
		}
	}
	if len(free) == 0 {
		return fn(base)
	}
	buf := base.Clone()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(free) {
			return fn(buf)
		}
		p := free[i]
		for _, sym := range doms[p] {
			buf[p] = sym
			if !rec(i + 1) {
				return false
			}
		}
		buf[p] = NoSym
		return true
	}
	return rec(0)
}

// ForEachFull enumerates every full substitution over the domains (the
// enumeration algorithm's outer loop). The buffer is reused; Clone to
// retain. Returns false if stopped early by fn.
func ForEachFull(pars int, doms Domains, fn func(Subst) bool) bool {
	return ForEachExtension(New(pars), allParams(pars), doms, fn)
}

func allParams(pars int) []int32 {
	out := make([]int32, pars)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// AllParams returns [0, 1, ..., pars-1].
func AllParams(pars int) []int32 { return allParams(pars) }
