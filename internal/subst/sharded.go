package subst

import (
	"sync"
	"sync/atomic"
)

// shardedTable is a Table safe for concurrent use by the parallel solver:
// many goroutines may Key/Lookup/Get/Len/Bytes at once. Writes take one of
// tableShards mutexes chosen by hashing the substitution's bytes, so
// interning scales across workers; Get is lock-free.
//
// Interned substitutions live in fixed-size chunks reachable from an
// atomically published copy-on-write chunk directory. A key returned by Key
// on one goroutine may be passed to Get on another provided the handoff
// itself synchronizes (mutex, channel, ...), which every solver path does;
// the chunk slot for a key is written before the key escapes its shard's
// critical section, so such reads are race-free.
//
// Keys are dense but their order depends on goroutine scheduling, so two
// runs may assign different keys to the same substitution. The solver only
// compares substitution *values* (sorted Pairs), never raw keys, so results
// stay deterministic.
type shardedTable struct {
	kind   TableKind // representation requested by the caller; reported by Kind
	pars   int
	shards [tableShards]tableShard
	n      atomic.Int64
	bytes  atomic.Int64

	// dir is the copy-on-write directory of chunks; dirMu serializes growth.
	dir   atomic.Pointer[[]*substChunk]
	dirMu sync.Mutex

	onGrow func(n int, bytes int64)
}

type tableShard struct {
	mu    sync.Mutex
	byKey map[string]int32
}

const (
	tableShards = 64

	chunkBits = 10
	chunkSize = 1 << chunkBits
)

type substChunk [chunkSize]Subst

// NewSharded returns an empty concurrency-safe table for substitutions over
// pars parameters. The kind argument records which sequential representation
// the caller asked for (reported by Kind for stats labeling); the sharded
// implementation itself always hashes. Dimension validation matches
// NewTable.
func NewSharded(kind TableKind, pars, symbols int) (Table, error) {
	if err := checkTableDims(pars, symbols); err != nil {
		return nil, err
	}
	t := &shardedTable{kind: kind, pars: pars}
	for i := range t.shards {
		t.shards[i].byKey = make(map[string]int32)
	}
	dir := make([]*substChunk, 0)
	t.dir.Store(&dir)
	return t, nil
}

// shardOf hashes the key bytes (FNV-1a) to pick a shard.
func shardOf(k string) int {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return int(h % tableShards)
}

func (t *shardedTable) Key(s Subst) int32 {
	k := hashKey(s)
	sh := &t.shards[shardOf(k)]
	sh.mu.Lock()
	if id, ok := sh.byKey[k]; ok {
		sh.mu.Unlock()
		return id
	}
	id := int32(t.n.Add(1) - 1)
	t.place(id, s.Clone())
	t.bytes.Add(int64(len(k)) + 48 + int64(len(s)*4) + 24)
	sh.byKey[k] = id
	sh.mu.Unlock()
	if t.onGrow != nil {
		t.onGrow(int(t.n.Load()), t.bytes.Load())
	}
	return id
}

// place stores s at index id, growing the chunk directory if needed. The
// slot (id is unique to this call) is written before id is published, so
// later synchronized readers observe a fully written substitution.
func (t *shardedTable) place(id int32, s Subst) {
	ci := int(id) >> chunkBits
	dir := *t.dir.Load()
	if ci >= len(dir) {
		t.dirMu.Lock()
		dir = *t.dir.Load()
		for ci >= len(dir) {
			grown := make([]*substChunk, len(dir)+1)
			copy(grown, dir)
			grown[len(dir)] = new(substChunk)
			t.bytes.Add(chunkSize * 24)
			t.dir.Store(&grown)
			dir = grown
		}
		t.dirMu.Unlock()
	}
	dir[ci][int(id)&(chunkSize-1)] = s
}

func (t *shardedTable) Lookup(s Subst) (int32, bool) {
	k := hashKey(s)
	sh := &t.shards[shardOf(k)]
	sh.mu.Lock()
	id, ok := sh.byKey[k]
	sh.mu.Unlock()
	return id, ok
}

func (t *shardedTable) Get(k int32) Subst {
	dir := *t.dir.Load()
	return dir[int(k)>>chunkBits][int(k)&(chunkSize-1)]
}

func (t *shardedTable) Len() int        { return int(t.n.Load()) }
func (t *shardedTable) Bytes() int64    { return t.bytes.Load() }
func (t *shardedTable) Kind() TableKind { return t.kind }

// SetOnGrow installs the growth callback. Unlike the rest of the table it
// is not synchronized: install it before handing the table to concurrent
// workers, and only install callbacks that are themselves safe to call from
// multiple goroutines. The parallel solver installs none.
func (t *shardedTable) SetOnGrow(fn func(n int, bytes int64)) { t.onGrow = fn }
