package subst

import (
	"math/rand"
	"testing"
)

func benchSubsts(pars, symbols, n int) []Subst {
	rng := rand.New(rand.NewSource(1))
	out := make([]Subst, n)
	for i := range out {
		out[i] = genSubst(rng, pars, symbols)
	}
	return out
}

func BenchmarkMergeInto(b *testing.B) {
	ss := benchSubsts(3, 8, 64)
	dst := New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeInto(dst, ss[i%64], ss[(i+1)%64])
	}
}

func BenchmarkTableKey(b *testing.B) {
	for _, kind := range []TableKind{Hash, Nested} {
		b.Run(kind.String(), func(b *testing.B) {
			ss := benchSubsts(3, 16, 1024)
			tb := mustNewTable(b, kind, 3, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Key(ss[i%1024])
			}
		})
	}
}

func BenchmarkTableLookupHit(b *testing.B) {
	for _, kind := range []TableKind{Hash, Nested} {
		b.Run(kind.String(), func(b *testing.B) {
			ss := benchSubsts(3, 16, 1024)
			tb := mustNewTable(b, kind, 3, 16)
			for _, s := range ss {
				tb.Key(s)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := tb.Lookup(ss[i%1024]); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkForEachExtension(b *testing.B) {
	doms := Uniform(3, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	base := Subst{NoSym, 3, NoSym}
	params := AllParams(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		ForEachExtension(base, params, doms, func(s Subst) bool {
			count++
			return true
		})
		if count != 64 {
			b.Fatalf("count = %d", count)
		}
	}
}
