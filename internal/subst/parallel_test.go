package subst

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
)

// TestTableCapacityError checks NewTable and NewSharded reject dimensions
// whose nested-array keys would overflow int32, with ErrCapacity.
func TestTableCapacityError(t *testing.T) {
	for _, kind := range []TableKind{Hash, Nested} {
		if _, err := NewTable(kind, 2, math.MaxInt32); !errors.Is(err, ErrCapacity) {
			t.Errorf("NewTable(%v) error = %v, want ErrCapacity", kind, err)
		}
		if _, err := NewSharded(kind, 2, math.MaxInt32); !errors.Is(err, ErrCapacity) {
			t.Errorf("NewSharded(%v) error = %v, want ErrCapacity", kind, err)
		}
		if _, err := NewTable(kind, -1, 4); err == nil {
			t.Errorf("NewTable(%v) accepted negative pars", kind)
		}
		if _, err := NewTable(kind, 2, 1<<20); err != nil {
			t.Errorf("NewTable(%v) rejected valid dims: %v", kind, err)
		}
	}
}

// TestNestedAscendingKeysLinear is the regression test for the exact-growth
// O(n²) bug in nestedTable.slot: interning n keys with ascending symbol
// values used to reallocate the node array on every insert, copying ~n²/2
// int32s in total. With geometric growth the total bytes allocated stay
// linear in n.
func TestNestedAscendingKeysLinear(t *testing.T) {
	const n = 50_000
	tb := mustNewTable(t, Nested, 1, n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := int32(0); i < n; i++ {
		tb.Key(Subst{i})
	}
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	// Exact growth allocates ~4·n²/2 = 5 GB here; geometric growth stays
	// within a small multiple of the final footprint (~134 B/key observed,
	// dominated by the interned substs themselves). 256·n is two orders of
	// magnitude under the quadratic cost and a loose 2× over the linear one.
	if limit := uint64(256 * n); total > limit {
		t.Fatalf("interning %d ascending keys allocated %d bytes (> %d): growth looks quadratic", n, total, limit)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	// Bytes stays consistent with geometric growth: linear in n.
	if b := tb.Bytes(); b <= 0 || b > 64*n {
		t.Fatalf("Bytes = %d", b)
	}
}

// TestShardedTableConcurrent hammers one sharded table from many goroutines
// interning overlapping substitutions, then checks interning is consistent:
// one key per distinct substitution, Get inverts Key, and Len matches the
// distinct count. Run under -race this also proves the synchronization.
func TestShardedTableConcurrent(t *testing.T) {
	for _, kind := range []TableKind{Hash, Nested} {
		t.Run(kind.String(), func(t *testing.T) {
			const (
				workers  = 8
				perW     = 2_000
				distinct = 512
			)
			tb, err := NewSharded(kind, 3, 64)
			if err != nil {
				t.Fatal(err)
			}
			keys := make([][]int32, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ks := make([]int32, perW)
					for i := 0; i < perW; i++ {
						// Overlapping across workers: id in [0, distinct).
						id := int32((i*7 + w*13) % distinct)
						s := Subst{id % 64, (id / 8) % 64, NoSym}
						ks[i] = tb.Key(s)
					}
					keys[w] = ks
				}(w)
			}
			wg.Wait()
			if tb.Len() != distinct {
				t.Fatalf("Len = %d, want %d", tb.Len(), distinct)
			}
			// Every worker must have received the same key for the same
			// substitution, and Get must invert Key.
			byID := map[int32]int32{}
			for w := 0; w < workers; w++ {
				for i, k := range keys[w] {
					id := int32((i*7 + w*13) % distinct)
					if prev, ok := byID[id]; ok && prev != k {
						t.Fatalf("substitution %d interned as both %d and %d", id, prev, k)
					}
					byID[id] = k
					s := Subst{id % 64, (id / 8) % 64, NoSym}
					if got := tb.Get(k); got.String() != s.String() {
						t.Fatalf("Get(%d) = %v, want %v", k, got, s)
					}
					if lk, ok := tb.Lookup(s); !ok || lk != k {
						t.Fatalf("Lookup(%v) = %d,%v, want %d", s, lk, ok, k)
					}
				}
			}
			if tb.Bytes() <= 0 {
				t.Fatalf("Bytes = %d", tb.Bytes())
			}
			if tb.Kind() != kind {
				t.Fatalf("Kind = %v", tb.Kind())
			}
		})
	}
}

// TestShardedMatchesSequential interns the same substitution stream into a
// plain table and a sharded one and compares the resulting sets.
func TestShardedMatchesSequential(t *testing.T) {
	seqT := mustNewTable(t, Hash, 2, 16)
	shT, err := NewSharded(Hash, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	var ss []Subst
	for a := int32(-1); a < 16; a++ {
		for b := int32(-1); b < 16; b += 3 {
			ss = append(ss, Subst{a, b})
		}
	}
	for _, s := range ss {
		seqT.Key(s)
		shT.Key(s)
	}
	if seqT.Len() != shT.Len() {
		t.Fatalf("Len: sequential %d, sharded %d", seqT.Len(), shT.Len())
	}
	for _, s := range ss {
		k, ok := shT.Lookup(s)
		if !ok {
			t.Fatalf("sharded lost %v", s)
		}
		if got := shT.Get(k); got.String() != s.String() {
			t.Fatalf("Get(Key(%v)) = %v", s, got)
		}
	}
}
