package subst

import (
	"errors"
	"fmt"
	"math"
)

// ErrCapacity reports that a table or set cannot be built (or grown) without
// overflowing its int32 key space. Callers detect it with errors.Is.
var ErrCapacity = errors.New("int32 key capacity exceeded")

// TableKind selects the representation used to intern substitutions (and, in
// the solver, the reach set and auxiliary maps). The paper's Table 3
// compares the two: hashing uses less space with similar time; nested arrays
// are fast when dense but waste space on sparse sets.
type TableKind int

const (
	// Hash uses hash tables keyed on the substitution's bytes.
	Hash TableKind = iota
	// Nested uses nested arrays (a trie over symbol keys, one level per
	// parameter), the "based" representation of Schonberg et al. as used in
	// the paper.
	Nested
)

func (k TableKind) String() string {
	switch k {
	case Hash:
		return "hashing"
	case Nested:
		return "nested"
	}
	return fmt.Sprintf("TableKind(%d)", int(k))
}

// Table interns substitutions, assigning dense keys in first-seen order.
// The number of interned substitutions is the "substs" quantity of Figure 2
// (minus the implicit badsubst, which is never stored).
type Table interface {
	// Key interns s (copying it) and returns its key.
	Key(s Subst) int32
	// Lookup returns the key of s without interning.
	Lookup(s Subst) (int32, bool)
	// Get returns the substitution with key k; the result must not be
	// modified.
	Get(k int32) Subst
	// Len reports the number of interned substitutions.
	Len() int
	// Bytes approximates the memory footprint of the table in bytes, for
	// the Table 3 memory comparison.
	Bytes() int64
	// Kind reports the representation.
	Kind() TableKind
	// SetOnGrow installs a callback invoked after each newly interned
	// substitution with the new length and byte figures. The observability
	// layer uses it for table-growth snapshots; a nil callback (the
	// default) costs one nil check per intern.
	SetOnGrow(func(n int, bytes int64))
}

// NewTable returns an empty table of the given kind for substitutions over
// pars parameters, where symbol keys are expected to be < symbols (the
// nested representation sizes its arrays from this; it grows if exceeded).
// It returns an error wrapping ErrCapacity when the dimensions exceed the
// int32 key space instead of overflowing silently.
func NewTable(kind TableKind, pars, symbols int) (Table, error) {
	if err := checkTableDims(pars, symbols); err != nil {
		return nil, err
	}
	switch kind {
	case Hash:
		return newHashTable(pars), nil
	case Nested:
		return newNestedTable(pars, symbols), nil
	}
	panic(fmt.Sprintf("subst: unknown table kind %d", kind))
}

// checkTableDims validates table dimensions against the int32 key space
// (symbol keys are stored shifted by one in nested nodes, so symbols+1 must
// itself be representable).
func checkTableDims(pars, symbols int) error {
	if pars < 0 || symbols < 0 {
		return fmt.Errorf("subst: negative table dimensions (pars=%d, symbols=%d)", pars, symbols)
	}
	if int64(symbols)+1 >= math.MaxInt32 {
		return fmt.Errorf("subst: %d symbols: %w", symbols, ErrCapacity)
	}
	return nil
}

// ---- hash representation ----

type hashTable struct {
	pars   int
	byKey  map[string]int32
	substs []Subst
	bytes  int64
	onGrow func(n int, bytes int64)
}

func newHashTable(pars int) *hashTable {
	return &hashTable{pars: pars, byKey: make(map[string]int32)}
}

func hashKey(s Subst) string {
	b := make([]byte, len(s)*4)
	for i, v := range s {
		u := uint32(v)
		b[i*4] = byte(u)
		b[i*4+1] = byte(u >> 8)
		b[i*4+2] = byte(u >> 16)
		b[i*4+3] = byte(u >> 24)
	}
	return string(b)
}

func (t *hashTable) Key(s Subst) int32 {
	k := hashKey(s)
	if id, ok := t.byKey[k]; ok {
		return id
	}
	id := int32(len(t.substs))
	t.byKey[k] = id
	t.substs = append(t.substs, s.Clone())
	// Key string + map entry overhead + stored substitution + slice header.
	t.bytes += int64(len(k)) + 48 + int64(len(s)*4) + 24
	if t.onGrow != nil {
		t.onGrow(len(t.substs), t.bytes)
	}
	return id
}

func (t *hashTable) Lookup(s Subst) (int32, bool) {
	id, ok := t.byKey[hashKey(s)]
	return id, ok
}

func (t *hashTable) Get(k int32) Subst { return t.substs[k] }
func (t *hashTable) Len() int          { return len(t.substs) }
func (t *hashTable) Bytes() int64      { return t.bytes }
func (t *hashTable) Kind() TableKind   { return Hash }

func (t *hashTable) SetOnGrow(fn func(n int, bytes int64)) { t.onGrow = fn }

// ---- nested-array (trie) representation ----

// nestedTable stores substitutions in a trie with one level per parameter.
// Each node is an int32 array indexed by symbol key + 1 (index 0 encodes an
// unbound parameter). Interior levels store child node ids + 1; the last
// level stores substitution keys + 1. Zero means absent.
type nestedTable struct {
	pars   int
	width  int
	nodes  [][]int32
	substs []Subst
	bytes  int64
	onGrow func(n int, bytes int64)
	// empty caches the key of the zero-parameter substitution when pars==0.
	emptyKey int32
}

func newNestedTable(pars, symbols int) *nestedTable {
	t := &nestedTable{pars: pars, width: symbols + 1, emptyKey: -1}
	if pars > 0 {
		t.nodes = append(t.nodes, t.newNode())
	}
	return t
}

func (t *nestedTable) newNode() []int32 {
	t.bytes += int64(t.width)*4 + 24
	return make([]int32, t.width)
}

func (t *nestedTable) slot(node []int32, v int32) ([]int32, int) {
	idx := int(v) + 1
	if idx >= len(node) {
		// A symbol key beyond the initial width; grow the node
		// geometrically so ascending keys amortize to O(n) total copying
		// (growing to exactly idx+1 would make n inserts cost O(n²)).
		n := 2*len(node) + 8
		if idx+1 > n {
			n = idx + 1
		}
		grown := make([]int32, n)
		copy(grown, node)
		t.bytes += int64(n-len(node)) * 4
		return grown, idx
	}
	return node, idx
}

func (t *nestedTable) Key(s Subst) int32 {
	if t.pars == 0 {
		if t.emptyKey < 0 {
			t.emptyKey = 0
			t.substs = append(t.substs, Subst{})
			if t.onGrow != nil {
				t.onGrow(len(t.substs), t.bytes)
			}
		}
		return t.emptyKey
	}
	cur := int32(0)
	for level := 0; level < t.pars-1; level++ {
		node, idx := t.slot(t.nodes[cur], s[level])
		t.nodes[cur] = node
		if node[idx] == 0 {
			id := int32(len(t.nodes))
			t.nodes = append(t.nodes, t.newNode())
			node[idx] = id + 1
		}
		cur = t.nodes[cur][idx] - 1
	}
	node, idx := t.slot(t.nodes[cur], s[t.pars-1])
	t.nodes[cur] = node
	if node[idx] == 0 {
		key := int32(len(t.substs))
		t.substs = append(t.substs, s.Clone())
		t.bytes += int64(len(s)*4) + 24
		node[idx] = key + 1
		if t.onGrow != nil {
			t.onGrow(len(t.substs), t.bytes)
		}
	}
	return t.nodes[cur][idx] - 1
}

func (t *nestedTable) Lookup(s Subst) (int32, bool) {
	if t.pars == 0 {
		if t.emptyKey < 0 {
			return 0, false
		}
		return t.emptyKey, true
	}
	cur := int32(0)
	for level := 0; level < t.pars; level++ {
		node := t.nodes[cur]
		idx := int(s[level]) + 1
		if idx >= len(node) || node[idx] == 0 {
			return 0, false
		}
		if level == t.pars-1 {
			return node[idx] - 1, true
		}
		cur = node[idx] - 1
	}
	panic("unreachable")
}

func (t *nestedTable) Get(k int32) Subst { return t.substs[k] }
func (t *nestedTable) Len() int          { return len(t.substs) }
func (t *nestedTable) Bytes() int64      { return t.bytes }
func (t *nestedTable) Kind() TableKind   { return Nested }

func (t *nestedTable) SetOnGrow(fn func(n int, bytes int64)) { t.onGrow = fn }
