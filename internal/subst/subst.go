// Package subst implements substitutions — maps from pattern parameters to
// graph symbols — and the merge and extensions operations of Liu et al.,
// "Parametric Regular Path Queries" (PLDI 2004), Sections 2.4 and 3, together
// with the substitution interning tables (hash-based and nested-array-based)
// compared in the paper's Table 3.
package subst

import (
	"fmt"
	"strings"

	"rpq/internal/label"
)

// NoSym marks an unbound parameter.
const NoSym = label.NoSym

// Subst is a substitution represented densely: index i holds the symbol key
// bound to parameter i, or NoSym. All substitutions for a query have the
// same length, the number of parameters in the pattern ("pars" in Figure 2).
type Subst []int32

// New returns the empty substitution over pars parameters.
func New(pars int) Subst {
	s := make(Subst, pars)
	for i := range s {
		s[i] = NoSym
	}
	return s
}

// Clone returns a copy of s.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	copy(out, s)
	return out
}

// Bound reports whether parameter p is bound.
func (s Subst) Bound(p int32) bool { return s[p] != NoSym }

// NumBound returns the number of bound parameters.
func (s Subst) NumBound() int {
	n := 0
	for _, v := range s {
		if v != NoSym {
			n++
		}
	}
	return n
}

// Covers reports whether every parameter in params is bound in s.
func (s Subst) Covers(params []int32) bool {
	for _, p := range params {
		if s[p] == NoSym {
			return false
		}
	}
	return true
}

// Extends reports whether s agrees with t wherever t is bound (s ⊇ t).
func (s Subst) Extends(t Subst) bool {
	for i, v := range t {
		if v != NoSym && s[i] != v {
			return false
		}
	}
	return true
}

// Equal reports whether s and t are identical.
func (s Subst) Equal(t Subst) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Merge computes merge({s, t}): the union if s and t agree on the
// intersection of their domains, or ok=false (badsubst) otherwise. The
// result is freshly allocated.
func Merge(s, t Subst) (Subst, bool) {
	out := make(Subst, len(s))
	for i := range s {
		a, b := s[i], t[i]
		switch {
		case a == NoSym:
			out[i] = b
		case b == NoSym || a == b:
			out[i] = a
		default:
			return nil, false
		}
	}
	return out, true
}

// MergeInto is Merge writing the result into dst (which must have the same
// length); it avoids allocation in inner loops. dst may alias s.
func MergeInto(dst, s, t Subst) bool {
	for i := range s {
		a, b := s[i], t[i]
		switch {
		case a == NoSym:
			dst[i] = b
		case b == NoSym || a == b:
			dst[i] = a
		default:
			return false
		}
	}
	return true
}

// MergeBindings computes merge(s, bs) for a bindings fragment, writing into
// dst (same length as s; may alias s). Reports false on conflict.
func MergeBindings(dst, s Subst, bs label.Bindings) bool {
	if len(dst) == 0 {
		return len(bs) == 0
	}
	if &dst[0] != &s[0] {
		copy(dst, s)
	}
	for _, b := range bs {
		if cur := dst[b.Param]; cur != NoSym && cur != b.Sym {
			return false
		}
		dst[b.Param] = b.Sym
	}
	return true
}

// Contradicts reports whether merge(s, bs) = badsubst, i.e. s disagrees with
// at least one binding in bs on a parameter bound in both. This is the
// disagree test of Section 3: a label with a single negation matches under s
// iff s is consistent with agree and Contradicts(s, disagree).
func Contradicts(s Subst, bs label.Bindings) bool {
	for _, b := range bs {
		if v := s[b.Param]; v != NoSym && v != b.Sym {
			return true
		}
	}
	return false
}

// MergeAll merges a list of substitutions left to right, reporting badsubst
// as ok=false. An empty list yields the empty substitution over pars
// parameters.
func MergeAll(pars int, list []Subst) (Subst, bool) {
	out := New(pars)
	for _, s := range list {
		if !MergeInto(out, out, s) {
			return nil, false
		}
	}
	return out, true
}

// Format renders s using parameter names from ps and symbol names from u.
func (s Subst) Format(u *label.Universe, ps *label.ParamSpace) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range s {
		if v == NoSym {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s↦%s", ps.Name(int32(i)), u.Syms.Name(v))
	}
	b.WriteByte('}')
	return b.String()
}

// String renders s with raw indices (for debugging).
func (s Subst) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range s {
		if v == NoSym {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "p%d↦s%d", i, v)
	}
	b.WriteByte('}')
	return b.String()
}
