package subst

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rpq/internal/label"
)

// genSubst produces a random substitution over pars parameters with symbol
// keys in [0, symbols).
func genSubst(rng *rand.Rand, pars, symbols int) Subst {
	s := New(pars)
	for i := range s {
		if rng.Intn(2) == 0 {
			s[i] = int32(rng.Intn(symbols))
		}
	}
	return s
}

func TestNewAndBasics(t *testing.T) {
	s := New(3)
	if s.NumBound() != 0 {
		t.Fatalf("fresh substitution has bound parameters: %v", s)
	}
	s[1] = 7
	if !s.Bound(1) || s.Bound(0) {
		t.Errorf("Bound misreports: %v", s)
	}
	if s.NumBound() != 1 {
		t.Errorf("NumBound = %d, want 1", s.NumBound())
	}
	c := s.Clone()
	c[1] = 9
	if s[1] != 7 {
		t.Errorf("Clone aliases original")
	}
	if !s.Covers([]int32{1}) || s.Covers([]int32{0, 1}) {
		t.Errorf("Covers misreports")
	}
}

func TestMergeBasics(t *testing.T) {
	a := Subst{0, NoSym, 5}
	b := Subst{NoSym, 3, 5}
	m, ok := Merge(a, b)
	if !ok || !m.Equal(Subst{0, 3, 5}) {
		t.Fatalf("Merge = %v, %v", m, ok)
	}
	conflict := Subst{1, NoSym, 5}
	if _, ok := Merge(a, conflict); ok {
		t.Fatalf("conflicting merge succeeded")
	}
	// MergeInto matches Merge.
	dst := New(3)
	if !MergeInto(dst, a, b) || !dst.Equal(m) {
		t.Errorf("MergeInto = %v", dst)
	}
	if MergeInto(dst, a, conflict) {
		t.Errorf("MergeInto on conflict succeeded")
	}
}

func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		pars := 1 + rng.Intn(4)
		a := genSubst(rng, pars, 3)
		b := genSubst(rng, pars, 3)

		// Commutativity (including of failure).
		ab, okAB := Merge(a, b)
		ba, okBA := Merge(b, a)
		if okAB != okBA {
			t.Fatalf("merge commutativity of success: %v %v", a, b)
		}
		if okAB && !ab.Equal(ba) {
			t.Fatalf("merge not commutative: %v %v", a, b)
		}
		// Idempotence.
		if aa, ok := Merge(a, a); !ok || !aa.Equal(a) {
			t.Fatalf("merge not idempotent on %v", a)
		}
		// Identity.
		if ae, ok := Merge(a, New(pars)); !ok || !ae.Equal(a) {
			t.Fatalf("empty not identity for %v", a)
		}
		// Result extends both inputs.
		if okAB && (!ab.Extends(a) || !ab.Extends(b)) {
			t.Fatalf("merge result %v does not extend both %v %v", ab, a, b)
		}
		// Associativity where all merges succeed.
		c := genSubst(rng, pars, 3)
		l1, ok1 := Merge(ab, c)
		bc, ok2 := Merge(b, c)
		if okAB && ok2 {
			l2, ok3 := Merge(a, bc)
			if ok1 && ok3 && !l1.Equal(l2) {
				t.Fatalf("merge not associative: %v %v %v", a, b, c)
			}
			if ok1 != ok3 {
				t.Fatalf("merge associativity of success: %v %v %v", a, b, c)
			}
		}
	}
}

func TestMergeBindingsAndContradicts(t *testing.T) {
	s := Subst{0, NoSym, 2}
	bs := label.Bindings{{Param: 1, Sym: 9}}
	dst := s.Clone()
	if !MergeBindings(dst, s, bs) || dst[1] != 9 {
		t.Fatalf("MergeBindings = %v", dst)
	}
	conflict := label.Bindings{{Param: 0, Sym: 5}}
	dst = s.Clone()
	if MergeBindings(dst, s, conflict) {
		t.Fatalf("conflicting MergeBindings succeeded")
	}
	if Contradicts(s, bs) {
		t.Errorf("Contradicts true for binding on unbound parameter")
	}
	if !Contradicts(s, conflict) {
		t.Errorf("Contradicts false for conflicting binding")
	}
	if Contradicts(s, label.Bindings{{Param: 0, Sym: 0}}) {
		t.Errorf("Contradicts true for agreeing binding")
	}
}

func TestMergeAll(t *testing.T) {
	got, ok := MergeAll(3, []Subst{{0, NoSym, NoSym}, {NoSym, 1, NoSym}, {0, NoSym, 2}})
	if !ok || !got.Equal(Subst{0, 1, 2}) {
		t.Fatalf("MergeAll = %v, %v", got, ok)
	}
	if _, ok := MergeAll(1, []Subst{{0}, {1}}); ok {
		t.Fatalf("MergeAll over conflicting substitutions succeeded")
	}
	if got, ok := MergeAll(2, nil); !ok || got.NumBound() != 0 {
		t.Fatalf("MergeAll of empty list = %v, %v", got, ok)
	}
}

func TestForEachExtension(t *testing.T) {
	doms := Domains{{0, 1}, {0, 1, 2}, {5}}
	base := Subst{NoSym, 1, NoSym}
	var seen []Subst
	ForEachExtension(base, []int32{0, 1, 2}, doms, func(s Subst) bool {
		seen = append(seen, s.Clone())
		return true
	})
	// Parameter 1 is already bound: only parameters 0 and 2 are enumerated.
	if len(seen) != 2*1 {
		t.Fatalf("got %d extensions, want 2: %v", len(seen), seen)
	}
	for _, s := range seen {
		if s[1] != 1 || s[2] != 5 {
			t.Errorf("extension %v does not preserve/bind correctly", s)
		}
		if !s.Extends(base) {
			t.Errorf("extension %v does not extend base %v", s, base)
		}
	}
	// Fully bound base: called once with base.
	full := Subst{0, 1, 5}
	count := 0
	ForEachExtension(full, []int32{0, 1, 2}, doms, func(s Subst) bool {
		count++
		if !s.Equal(full) {
			t.Errorf("full base enumeration yielded %v", s)
		}
		return true
	})
	if count != 1 {
		t.Errorf("full base called fn %d times, want 1", count)
	}
	// Early stop.
	count = 0
	done := ForEachExtension(base, []int32{0, 2}, doms, func(s Subst) bool {
		count++
		return false
	})
	if done || count != 1 {
		t.Errorf("early stop: done=%v count=%d", done, count)
	}
}

func TestForEachFullAndCount(t *testing.T) {
	doms := Domains{{0, 1, 2}, {3, 4}}
	if doms.Count() != 6 {
		t.Fatalf("Count = %d, want 6", doms.Count())
	}
	seen := map[string]bool{}
	ForEachFull(2, doms, func(s Subst) bool {
		seen[s.String()] = true
		return true
	})
	if len(seen) != 6 {
		t.Fatalf("ForEachFull enumerated %d distinct, want 6", len(seen))
	}
	// Zero parameters: exactly the empty substitution.
	n := 0
	ForEachFull(0, Domains{}, func(s Subst) bool { n++; return true })
	if n != 1 {
		t.Errorf("ForEachFull(0) called fn %d times, want 1", n)
	}
}

func TestUniformDomains(t *testing.T) {
	d := Uniform(3, []int32{7, 8})
	if len(d) != 3 || len(d[1]) != 2 {
		t.Fatalf("Uniform = %v", d)
	}
}

// mustNewTable builds a table, failing the test on a capacity error.
func mustNewTable(tb testing.TB, kind TableKind, pars, symbols int) Table {
	t, err := NewTable(kind, pars, symbols)
	if err != nil {
		tb.Fatalf("NewTable(%v, %d, %d): %v", kind, pars, symbols, err)
	}
	return t
}

func TestTables(t *testing.T) {
	for _, kind := range []TableKind{Hash, Nested} {
		t.Run(kind.String(), func(t *testing.T) {
			tb := mustNewTable(t, kind, 2, 4)
			a := Subst{0, NoSym}
			b := Subst{0, 3}
			ka := tb.Key(a)
			kb := tb.Key(b)
			if ka == kb {
				t.Fatalf("distinct substitutions share a key")
			}
			if got := tb.Key(a.Clone()); got != ka {
				t.Fatalf("re-interning a gave %d, want %d", got, ka)
			}
			if !tb.Get(ka).Equal(a) || !tb.Get(kb).Equal(b) {
				t.Fatalf("Get returned wrong substitutions")
			}
			if tb.Len() != 2 {
				t.Fatalf("Len = %d, want 2", tb.Len())
			}
			if k, ok := tb.Lookup(a); !ok || k != ka {
				t.Fatalf("Lookup(a) = %d, %v", k, ok)
			}
			if _, ok := tb.Lookup(Subst{3, 3}); ok {
				t.Fatalf("Lookup of absent substitution succeeded")
			}
			if tb.Bytes() <= 0 {
				t.Fatalf("Bytes() = %d, want positive", tb.Bytes())
			}
		})
	}
}

func TestTablesZeroParams(t *testing.T) {
	for _, kind := range []TableKind{Hash, Nested} {
		tb := mustNewTable(t, kind, 0, 4)
		k1 := tb.Key(Subst{})
		k2 := tb.Key(Subst{})
		if k1 != k2 || tb.Len() != 1 {
			t.Errorf("%v: empty substitution interning broken", kind)
		}
	}
}

func TestTableGrowthBeyondInitialWidth(t *testing.T) {
	// Symbol keys beyond the declared bound must still work (nested grows).
	tb := mustNewTable(t, Nested, 2, 2)
	s := Subst{10, 11}
	k := tb.Key(s)
	if got, ok := tb.Lookup(s); !ok || got != k {
		t.Fatalf("nested growth: Lookup = %d, %v", got, ok)
	}
	if !tb.Get(k).Equal(s) {
		t.Fatalf("nested growth: Get mismatch")
	}
}

// TestTableEquivalence checks with testing/quick that the hash and nested
// tables implement the same abstract interning map.
func TestTableEquivalence(t *testing.T) {
	f := func(raw [][4]uint8) bool {
		h, _ := NewTable(Hash, 3, 8)
		n, _ := NewTable(Nested, 3, 8)
		keysH := map[string]int32{}
		keysN := map[string]int32{}
		for _, r := range raw {
			s := Subst{int32(r[0] % 9), int32(r[1] % 9), int32(r[2] % 9)}
			for i := range s {
				if s[i] == 8 {
					s[i] = NoSym
				}
			}
			kh := h.Key(s)
			kn := n.Key(s)
			if prev, ok := keysH[s.String()]; ok && prev != kh {
				return false
			}
			if prev, ok := keysN[s.String()]; ok && prev != kn {
				return false
			}
			keysH[s.String()] = kh
			keysN[s.String()] = kn
			if !h.Get(kh).Equal(s) || !n.Get(kn).Equal(s) {
				return false
			}
		}
		return h.Len() == n.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionsCoverAll checks with testing/quick that extension
// enumeration yields exactly the full substitutions extending the base.
func TestExtensionsCoverAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pars := 1 + rng.Intn(3)
		symbols := 1 + rng.Intn(3)
		var all []int32
		for i := 0; i < symbols; i++ {
			all = append(all, int32(i))
		}
		doms := Uniform(pars, all)
		base := genSubst(rng, pars, symbols)
		got := map[string]bool{}
		ForEachExtension(base, AllParams(pars), doms, func(s Subst) bool {
			got[s.String()] = true
			return true
		})
		want := map[string]bool{}
		ForEachFull(pars, doms, func(s Subst) bool {
			if s.Extends(base) {
				want[s.String()] = true
			}
			return true
		})
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
