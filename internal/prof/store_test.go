package prof

import (
	"sync"
	"testing"
	"time"
)

func mkWindow(cpu int) *Window {
	return &Window{
		Start: time.Unix(1700000000, 0),
		End:   time.Unix(1700000010, 0),
		CPU:   make([]byte, cpu),
	}
}

func TestStoreRetentionEviction(t *testing.T) {
	s := NewStore(4, 2)
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, s.Add(mkWindow(100)))
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (retain bound)", got)
	}
	// Only the newest 4 survive; ids are monotonic and never reused.
	list := s.List()
	for i, w := range list {
		want := ids[6+i]
		if w.ID != want {
			t.Fatalf("List[%d].ID = %d, want %d", i, w.ID, want)
		}
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("evicted window still retrievable")
	}
	if latest, ok := s.Latest(); !ok || latest.ID != ids[9] {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
}

func TestStoreWraparoundIDsMonotonic(t *testing.T) {
	s := NewStore(2, 1)
	var last int64
	for i := 0; i < 50; i++ {
		id := s.Add(mkWindow(10))
		if id <= last {
			t.Fatalf("id %d not monotonic after %d", id, last)
		}
		last = id
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after wraparound, want 2", s.Len())
	}
}

func TestStorePinnedSurviveEviction(t *testing.T) {
	s := NewStore(2, 2)
	pinned := s.Add(mkWindow(10))
	if !s.Pin(pinned, "slow") {
		t.Fatal("Pin failed")
	}
	for i := 0; i < 8; i++ {
		s.Add(mkWindow(10))
	}
	w, ok := s.Get(pinned)
	if !ok {
		t.Fatal("pinned window evicted by unpinned churn")
	}
	if !w.Pinned || w.PinReason != "slow" {
		t.Fatalf("pinned window = %+v", w)
	}
	// 2 unpinned + 1 pinned retained.
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestStorePinnedBudgetBounded(t *testing.T) {
	s := NewStore(2, 2)
	var pinnedIDs []int64
	for i := 0; i < 6; i++ {
		id := s.Add(mkWindow(10))
		s.Pin(id, "hung")
		pinnedIDs = append(pinnedIDs, id)
	}
	// Only the newest maxPinned pinned windows survive.
	if _, ok := s.Get(pinnedIDs[0]); ok {
		t.Fatal("oldest pinned window not evicted past maxPinned")
	}
	for _, id := range pinnedIDs[4:] {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("recent pinned window %d evicted", id)
		}
	}
}

func TestStorePinFirstReasonSticks(t *testing.T) {
	s := NewStore(4, 2)
	id := s.Add(mkWindow(10))
	s.Pin(id, "slow")
	s.Pin(id, "hung")
	if w, _ := s.Get(id); w.PinReason != "slow" {
		t.Fatalf("PinReason = %q, want the first reason", w.PinReason)
	}
	if s.Pin(999, "x") {
		t.Fatal("Pin of unknown id reported success")
	}
}

// TestStoreConcurrentCaptureVsRead drives Add/Pin against Get/Latest/List
// concurrently; run under -race this proves the capture loop and the HTTP
// handlers never race on window state.
func TestStoreConcurrentCaptureVsRead(t *testing.T) {
	s := NewStore(8, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // capture loop
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := s.Add(mkWindow(64))
			if i%3 == 0 {
				s.Pin(id, "slow")
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // HTTP readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, w := range s.List() {
					_ = len(w.CPU)
					_, _ = s.Get(w.ID)
				}
				if w, ok := s.Latest(); ok {
					_ = w.Pinned
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Len() > 12 {
		t.Fatalf("Len = %d exceeds retain+maxPinned", s.Len())
	}
}
