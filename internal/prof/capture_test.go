package prof

import (
	"testing"
	"time"

	"rpq/internal/obs"
)

// Capture tests must not run in parallel with each other (or any other CPU
// profile): the runtime allows one CPU profile process-wide.

func newTestProfiler(window, interval time.Duration) *Profiler {
	return New(Options{
		Window: window, Interval: interval,
		Retain: 4, MaxPinned: 2,
		Registry: obs.NewRegistry(),
	})
}

func TestCaptureWindowEndToEnd(t *testing.T) {
	p := newTestProfiler(150*time.Millisecond, 200*time.Millisecond)
	p.Start()
	defer p.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for p.store.Len() == 0 && time.Now().Before(deadline) {
		busyWork(10 * time.Millisecond)
	}
	p.Stop()

	w, ok := p.store.Latest()
	if !ok {
		t.Fatal("no window captured within 5s")
	}
	if w.Err == "" {
		if len(w.CPU) == 0 {
			t.Fatal("window has neither CPU bytes nor an error")
		}
		if _, err := ParseProfile(w.CPU); err != nil {
			t.Fatalf("captured CPU profile does not decode: %v", err)
		}
	}
	if len(w.Heap) == 0 {
		t.Fatal("window lacks a heap snapshot")
	}
	if hp, err := ParseProfile(w.Heap); err != nil {
		t.Fatalf("captured heap profile does not decode: %v", err)
	} else if hp.ValueIndex("alloc_space") < 0 {
		t.Fatalf("heap profile lacks alloc_space: %+v", hp.SampleType)
	}
	if w.End.Before(w.Start) {
		t.Fatalf("window times inverted: %+v", w)
	}
}

func TestPinActiveCutsInflightWindow(t *testing.T) {
	// A long window with a short interval keeps a capture almost always in
	// flight; PinActive must cut it, wait for the bytes, and pin it.
	p := newTestProfiler(10*time.Second, 10*time.Second)
	p.Start()
	defer p.Stop()

	// Wait until the capture is actually in flight.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		inflight := p.cur != nil
		p.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	t0 := time.Now()
	cpu, id, ok := p.PinActive("watchdog-test")
	if !ok {
		t.Fatal("PinActive failed with a capture in flight")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("PinActive took %v — did not cut the window", d)
	}
	w, found := p.store.Get(id)
	if !found || !w.Pinned || w.PinReason != "watchdog-test" {
		t.Fatalf("pinned window = %+v, %v", w, found)
	}
	if !w.Cut {
		t.Fatal("window not marked Cut after an early pin")
	}
	if len(cpu) != len(w.CPU) {
		t.Fatalf("PinActive returned %d bytes, store has %d", len(cpu), len(w.CPU))
	}
	if len(cpu) > 0 {
		if _, err := ParseProfile(cpu); err != nil {
			t.Fatalf("pinned profile does not decode: %v", err)
		}
	}
}

func TestPinActivePinsLatestWhenIdle(t *testing.T) {
	p := newTestProfiler(50*time.Millisecond, time.Hour)
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := p.store.Latest(); ok {
			p.mu.Lock()
			idle := p.cur == nil
			p.mu.Unlock()
			if idle {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer p.Stop()

	_, id, ok := p.PinActive("slo-burn")
	if !ok {
		t.Fatal("PinActive failed with a completed window retained")
	}
	if w, _ := p.store.Get(id); !w.Pinned || w.PinReason != "slo-burn" {
		t.Fatalf("window = %+v", w)
	}
}

func TestPinActiveEmptyStore(t *testing.T) {
	p := newTestProfiler(time.Second, time.Second)
	if _, _, ok := p.PinActive("x"); ok {
		t.Fatal("PinActive reported success with nothing captured")
	}
}

func TestProfilerStopIdempotent(t *testing.T) {
	p := newTestProfiler(20*time.Millisecond, 30*time.Millisecond)
	p.Start()
	p.Start() // idempotent
	time.Sleep(50 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	n := p.store.Len()
	time.Sleep(80 * time.Millisecond)
	if p.store.Len() != n {
		t.Fatal("capture loop survived Stop")
	}
}

// busyWork burns CPU so capture windows have something to sample.
func busyWork(d time.Duration) {
	end := time.Now().Add(d)
	x := 1
	for time.Now().Before(end) {
		x = x*31 + 7
	}
	_ = x
}
