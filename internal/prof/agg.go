package prof

import "sort"

// SliceKeys are the pprof label keys the query layer stamps (PR 6) and the
// aggregation endpoints slice by. Label slicing applies to CPU profiles only:
// the runtime does not attach pprof labels to heap samples, so heap
// aggregation is frame-level.
var SliceKeys = []string{"rpq_kind", "variant", "table", "workers", "rpq_trace_id"}

// Frame is one aggregated function frame: Flat is the value attributed to
// samples where the function is the leaf, Cum the value of every sample whose
// stack contains it.
type Frame struct {
	Func string `json:"func"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// Slice is the frame aggregation for one label value (or the whole profile
// when Value is "").
type Slice struct {
	Value  string  `json:"value,omitempty"`
	Total  int64   `json:"total"`
	Frames []Frame `json:"frames"`
}

// TopFrames aggregates the profile's samples into flat/cum frames for the
// value dimension vi, keeping the top n by flat value (cum breaks ties).
// Samples not matching the filter (when non-nil) are skipped.
func TopFrames(p *Profile, vi, n int, filter func(Sample) bool) Slice {
	type agg struct{ flat, cum int64 }
	frames := map[string]*agg{}
	var total int64
	for _, s := range p.Samples {
		if vi < 0 || vi >= len(s.Values) {
			continue
		}
		if filter != nil && !filter(s) {
			continue
		}
		v := s.Values[vi]
		total += v
		if len(s.Stack) == 0 {
			continue
		}
		// Cum counts each function once per sample even if it recurses.
		seen := map[string]bool{}
		for i, fn := range s.Stack {
			a := frames[fn]
			if a == nil {
				a = &agg{}
				frames[fn] = a
			}
			if i == 0 {
				a.flat += v
			}
			if !seen[fn] {
				a.cum += v
				seen[fn] = true
			}
		}
	}
	out := Slice{Total: total, Frames: make([]Frame, 0, len(frames))}
	for fn, a := range frames {
		out.Frames = append(out.Frames, Frame{Func: fn, Flat: a.flat, Cum: a.cum})
	}
	sort.Slice(out.Frames, func(i, j int) bool {
		a, b := out.Frames[i], out.Frames[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		if a.Cum != b.Cum {
			return a.Cum > b.Cum
		}
		return a.Func < b.Func
	})
	if n > 0 && len(out.Frames) > n {
		out.Frames = out.Frames[:n]
	}
	return out
}

// SliceByLabel aggregates top-N frames per distinct value of the pprof label
// key, ordered by each slice's total (descending). Samples without the label
// are grouped under value "(none)".
func SliceByLabel(p *Profile, key string, vi, n int) []Slice {
	values := map[string]bool{}
	for _, s := range p.Samples {
		if v, ok := s.Labels[key]; ok && v != "" {
			values[v] = true
		} else {
			values["(none)"] = true
		}
	}
	out := make([]Slice, 0, len(values))
	for v := range values {
		want := v
		sl := TopFrames(p, vi, n, func(s Sample) bool {
			got, ok := s.Labels[key]
			if !ok || got == "" {
				got = "(none)"
			}
			return got == want
		})
		sl.Value = v
		if sl.Total == 0 && len(sl.Frames) == 0 {
			continue
		}
		out = append(out, sl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// LabelValues returns the distinct values of the label key across samples,
// sorted, for the window listing.
func LabelValues(p *Profile, key string) []string {
	set := map[string]bool{}
	for _, s := range p.Samples {
		if v, ok := s.Labels[key]; ok && v != "" {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// TreeNode is one node of the root-up call tree the dash icicle renders:
// Value is the node's total (self + children), Self the value of samples
// ending exactly here.
type TreeNode struct {
	Name     string      `json:"name"`
	Value    int64       `json:"value"`
	Self     int64       `json:"self,omitempty"`
	Children []*TreeNode `json:"children,omitempty"`
}

// StackTree folds the profile's samples into a call tree rooted at "root",
// for the value dimension vi, pruning children below minFrac of the root
// total into a "(other)" node so the icicle JSON stays small. The filter
// (when non-nil) restricts the samples included.
func StackTree(p *Profile, vi int, filter func(Sample) bool, minFrac float64) *TreeNode {
	root := &TreeNode{Name: "root"}
	for _, s := range p.Samples {
		if vi < 0 || vi >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		if filter != nil && !filter(s) {
			continue
		}
		v := s.Values[vi]
		root.Value += v
		node := root
		// Stack is leaf-first; the tree wants root-down.
		for i := len(s.Stack) - 1; i >= 0; i-- {
			fn := s.Stack[i]
			var child *TreeNode
			for _, c := range node.Children {
				if c.Name == fn {
					child = c
					break
				}
			}
			if child == nil {
				child = &TreeNode{Name: fn}
				node.Children = append(node.Children, child)
			}
			child.Value += v
			node = child
		}
		node.Self += v
	}
	min := int64(float64(root.Value) * minFrac)
	pruneTree(root, min)
	return root
}

// pruneTree folds children below min into a single "(other)" sibling and
// sorts the rest by value.
func pruneTree(n *TreeNode, min int64) {
	kept := n.Children[:0]
	var other int64
	for _, c := range n.Children {
		if c.Value < min {
			other += c.Value
			continue
		}
		pruneTree(c, min)
		kept = append(kept, c)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Value > kept[j].Value })
	if other > 0 {
		kept = append(kept, &TreeNode{Name: "(other)", Value: other})
	}
	n.Children = kept
}
