package prof

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"rpq/internal/obs"
)

// Default duty cycle: a 10s CPU window every 60s keeps the steady-state
// overhead under the 2% budget (the CPU profiler's cost while sampling is a
// few percent, amortized by the 1:6 duty cycle; BenchmarkExist/prof-on pins
// it).
const (
	DefaultWindow   = 10 * time.Second
	DefaultInterval = 60 * time.Second
	DefaultRetain   = 32
	DefaultPinned   = 8
)

// Options configures a Profiler. The zero value captures 10s windows every
// 60s, retaining 32 windows plus up to 8 pinned ones.
type Options struct {
	// Window is the CPU-capture duration per cycle (0 = 10s).
	Window time.Duration
	// Interval is the cycle period — one window starts every Interval
	// (0 = 60s; values below Window are clamped to Window).
	Interval time.Duration
	// Retain bounds the unpinned windows kept in memory (0 = 32).
	Retain int
	// MaxPinned bounds the pinned windows kept in memory (0 = 8).
	MaxPinned int
	// Registry receives the profiler's own gauges (rpq_prof_*); nil means the
	// default registry.
	Registry *obs.Registry
}

// Profiler is the always-on continuous profiler: Start launches the capture
// loop, Store exposes the retained windows, Handler serves them as
// rpq-prof/1 JSON, and PinActive pins the window covering "now" (cutting the
// in-flight capture short) for watchdog bundles and SLO breaches.
type Profiler struct {
	window   time.Duration
	interval time.Duration
	store    *Store

	gWindows *obs.Gauge // rpq_prof_windows_total
	gErrors  *obs.Gauge // rpq_prof_errors_total
	gPinned  *obs.Gauge // rpq_prof_pinned_total
	gBytes   *obs.Gauge // rpq_prof_retained_bytes

	mu       sync.Mutex
	cur      *capture // non-nil while a CPU window is being captured
	baseline []byte   // committed baseline profile for diffs, when set
	started  bool
	stop     chan struct{}
	done     chan struct{}

	sloStop chan struct{}
	sloDone chan struct{}
}

// capture tracks one in-flight CPU window so PinActive can cut it short and
// wait for its bytes.
type capture struct {
	start   time.Time
	cutOnce sync.Once
	cut     chan struct{} // closed to end the window early
	done    chan struct{} // closed once the window is in the store
	id      int64         // valid after done
}

// New returns a stopped profiler; call Start to begin capturing.
func New(o Options) *Profiler {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.Interval < o.Window {
		o.Interval = o.Window
	}
	if o.Retain <= 0 {
		o.Retain = DefaultRetain
	}
	if o.MaxPinned <= 0 {
		o.MaxPinned = DefaultPinned
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.Default()
	}
	return &Profiler{
		window:   o.Window,
		interval: o.Interval,
		store:    NewStore(o.Retain, o.MaxPinned),
		gWindows: reg.Gauge("rpq_prof_windows_total", "profile windows captured since process start"),
		gErrors:  reg.Gauge("rpq_prof_errors_total", "profile capture failures (e.g. a competing CPU profile)"),
		gPinned:  reg.Gauge("rpq_prof_pinned_total", "profile windows pinned by anomalies since process start"),
		gBytes:   reg.Gauge("rpq_prof_retained_bytes", "bytes of profile data retained in the ring store"),
	}
}

// Store exposes the retained windows.
func (p *Profiler) Store() *Store { return p.store }

// Window returns the configured CPU-capture duration.
func (p *Profiler) Window() time.Duration { return p.window }

// Interval returns the configured cycle period.
func (p *Profiler) Interval() time.Duration { return p.interval }

// SetBaseline installs a committed baseline profile (gzipped pprof proto);
// the diff endpoint accepts b=baseline to diff a live window against it.
func (p *Profiler) SetBaseline(profile []byte) {
	p.mu.Lock()
	p.baseline = profile
	p.mu.Unlock()
}

// Baseline returns the committed baseline profile, nil when unset.
func (p *Profiler) Baseline() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.baseline
}

// Start launches the capture loop (idempotent): one window immediately, then
// one per interval.
func (p *Profiler) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stop, done := p.stop, p.done
	p.mu.Unlock()

	go func() {
		defer close(done)
		for {
			p.captureWindow(stop)
			idle := p.interval - p.window
			if idle < 0 {
				idle = 0
			}
			select {
			case <-stop:
				return
			case <-time.After(idle):
			}
		}
	}()
}

// Stop terminates the capture loop (ending an in-flight window) and the SLO
// watcher, and waits for both to exit. The retained windows stay readable.
func (p *Profiler) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.started = false
	stop, done := p.stop, p.done
	sloStop, sloDone := p.sloStop, p.sloDone
	p.sloStop, p.sloDone = nil, nil
	p.mu.Unlock()
	close(stop)
	<-done
	if sloStop != nil {
		close(sloStop)
		<-sloDone
	}
}

// captureWindow records one CPU window (ended early by stop or a pin) plus
// the closing heap snapshot, and stores it.
func (p *Profiler) captureWindow(stop chan struct{}) {
	c := &capture{start: time.Now(), cut: make(chan struct{}), done: make(chan struct{})}
	// Publish before capturing so PinActive can cut this window; c.id is
	// only read after c.done closes, which happens after the store insert.
	p.mu.Lock()
	p.cur = c
	p.mu.Unlock()
	var cpuBuf bytes.Buffer
	err := pprof.StartCPUProfile(&cpuBuf)
	if err == nil {
		select {
		case <-stop:
		case <-c.cut:
		case <-time.After(p.window):
		}
		pprof.StopCPUProfile()
	}

	w := &Window{Start: c.start, End: time.Now()}
	select {
	case <-c.cut:
		w.Cut = true
	default:
	}
	if err != nil {
		// Another CPU profile is running (e.g. a /debug/pprof/profile
		// download). Record the miss so the duty cycle stays visible.
		w.Err = fmt.Sprintf("cpu capture: %v", err)
		p.gErrors.Add(1)
	} else {
		w.CPU = cpuBuf.Bytes()
		if prof, perr := ParseProfile(w.CPU); perr == nil {
			w.CPUSamples = len(prof.Samples)
		}
	}
	var heapBuf bytes.Buffer
	if hp := pprof.Lookup("heap"); hp != nil {
		if herr := hp.WriteTo(&heapBuf, 0); herr == nil {
			w.Heap = heapBuf.Bytes()
		}
	}

	c.id = p.store.Add(w)
	p.gWindows.Add(1)
	p.accountBytes()
	p.mu.Lock()
	p.cur = nil
	p.mu.Unlock()
	close(c.done)
}

// accountBytes refreshes the retained-bytes gauge.
func (p *Profiler) accountBytes() {
	var total int64
	for _, w := range p.store.List() {
		total += int64(len(w.CPU) + len(w.Heap))
	}
	p.gBytes.Set(total)
}

// PinActive pins the profile window covering "now": a capture in flight is
// cut short so its samples — including the anomaly that triggered the pin —
// are flushed and retained; with no capture in flight the most recent window
// is pinned instead. It returns the pinned window's CPU profile (gzipped
// pprof) and id; ok is false when nothing has been captured yet. It
// implements obs.ProfilePinner, so a Watchdog links the window into its
// diagnostic bundles.
func (p *Profiler) PinActive(reason string) (cpu []byte, id int64, ok bool) {
	p.mu.Lock()
	c := p.cur
	p.mu.Unlock()
	if c != nil {
		c.cutOnce.Do(func() { close(c.cut) })
		select {
		case <-c.done:
		case <-time.After(5 * time.Second):
			return nil, 0, false
		}
		id = c.id
	} else if w, found := p.store.Latest(); found {
		id = w.ID
	} else {
		return nil, 0, false
	}
	if !p.store.Pin(id, reason) {
		return nil, 0, false
	}
	p.gPinned.Add(1)
	w, found := p.store.Get(id)
	if !found {
		return nil, 0, false
	}
	return w.CPU, id, true
}

// WatchSLO starts a background check of the tracker's burn rates every
// `every` (0 = 30s): when any objective's burn rate on any window reaches
// threshold, the active profile window is pinned ("slo-burn"), with a
// per-breach cooldown of one hour so a sustained burn does not consume the
// pinned-window budget. Stop terminates the watcher.
func (p *Profiler) WatchSLO(tr *obs.SLOTracker, threshold float64, every time.Duration) {
	if tr == nil || threshold <= 0 {
		return
	}
	if every <= 0 {
		every = 30 * time.Second
	}
	p.mu.Lock()
	if p.sloStop != nil {
		p.mu.Unlock()
		return
	}
	p.sloStop = make(chan struct{})
	p.sloDone = make(chan struct{})
	stop, done := p.sloStop, p.sloDone
	p.mu.Unlock()

	go func() {
		defer close(done)
		var lastPin time.Time
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if time.Since(lastPin) < time.Hour {
				continue
			}
			rep := tr.Report()
			for _, s := range rep.SLOs {
				for _, w := range s.Windows {
					if w.BurnRate >= threshold {
						p.PinActive("slo-burn")
						lastPin = time.Now()
					}
				}
			}
		}
	}()
}
