package prof

import "testing"

func profileOf(samples ...testSample) *Profile {
	p, err := ParseProfile(encodeTestProfile(testProfileSpec{
		sampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		samples:     samples,
	}))
	if err != nil {
		panic(err)
	}
	return p
}

func findDelta(t *testing.T, d DiffResult, fn string) FrameDelta {
	t.Helper()
	for _, f := range d.Frames {
		if f.Func == fn {
			return f
		}
	}
	t.Fatalf("frame %q missing from diff %+v", fn, d.Frames)
	return FrameDelta{}
}

func TestDiffSignConvention(t *testing.T) {
	a := profileOf(
		testSample{stack: []string{"solve", "main"}, values: []int64{70}},
		testSample{stack: []string{"match", "solve", "main"}, values: []int64{30}},
	)
	b := profileOf(
		testSample{stack: []string{"solve", "main"}, values: []int64{40}},
		testSample{stack: []string{"match", "solve", "main"}, values: []int64{40}},
	)
	d := Diff(a, b, "", 0)
	if d.TotalA != 100 || d.TotalB != 80 || d.Delta != 20 {
		t.Fatalf("totals = %d/%d/%d", d.TotalA, d.TotalB, d.Delta)
	}
	// A spends more in solve: positive delta (regression when A is newer).
	solve := findDelta(t, d, "solve")
	if solve.DeltaFlat != 30 {
		t.Fatalf("solve DeltaFlat = %d, want +30", solve.DeltaFlat)
	}
	// solve cum: A = 70+30, B = 40+40 → 0... both sample stacks include it.
	if solve.DeltaCum != 20 {
		t.Fatalf("solve DeltaCum = %d, want +20", solve.DeltaCum)
	}
	// A spends less in match: negative delta (improvement).
	match := findDelta(t, d, "match")
	if match.DeltaFlat != -10 || match.OnlyIn != "" {
		t.Fatalf("match = %+v, want DeltaFlat -10 in both", match)
	}
	// Frames are ordered by |DeltaFlat|.
	if d.Frames[0].Func != "solve" {
		t.Fatalf("top frame = %q, want solve", d.Frames[0].Func)
	}
	if d.Unit != "nanoseconds" {
		t.Fatalf("unit = %q", d.Unit)
	}
}

func TestDiffDisappearedFrames(t *testing.T) {
	a := profileOf(
		testSample{stack: []string{"newHot", "main"}, values: []int64{50}},
	)
	b := profileOf(
		testSample{stack: []string{"oldHot", "main"}, values: []int64{50}},
	)
	d := Diff(a, b, "", 0)
	// oldHot disappeared in A: its delta is the full −FlatB, marked only_in=b.
	old := findDelta(t, d, "oldHot")
	if old.DeltaFlat != -50 || old.FlatA != 0 || old.OnlyIn != "b" {
		t.Fatalf("disappeared frame = %+v", old)
	}
	neu := findDelta(t, d, "newHot")
	if neu.DeltaFlat != 50 || neu.FlatB != 0 || neu.OnlyIn != "a" {
		t.Fatalf("appeared frame = %+v", neu)
	}
	// main is in both.
	if m := findDelta(t, d, "main"); m.OnlyIn != "" || m.DeltaCum != 0 {
		t.Fatalf("shared frame = %+v", m)
	}
}

func TestDiffIdenticalProfilesZero(t *testing.T) {
	a := profileOf(testSample{stack: []string{"solve", "main"}, values: []int64{10}})
	b := profileOf(testSample{stack: []string{"solve", "main"}, values: []int64{10}})
	d := Diff(a, b, "", 0)
	if d.Delta != 0 {
		t.Fatalf("Delta = %d", d.Delta)
	}
	for _, f := range d.Frames {
		if f.DeltaFlat != 0 || f.DeltaCum != 0 {
			t.Fatalf("nonzero delta on identical profiles: %+v", f)
		}
	}
}

func TestDiffTopN(t *testing.T) {
	a := profileOf(
		testSample{stack: []string{"f1"}, values: []int64{100}},
		testSample{stack: []string{"f2"}, values: []int64{50}},
		testSample{stack: []string{"f3"}, values: []int64{10}},
	)
	b := profileOf(testSample{stack: []string{"f1"}, values: []int64{1}})
	d := Diff(a, b, "", 2)
	if len(d.Frames) != 2 {
		t.Fatalf("topN kept %d frames", len(d.Frames))
	}
	if d.Frames[0].Func != "f1" || d.Frames[1].Func != "f2" {
		t.Fatalf("order = %q, %q", d.Frames[0].Func, d.Frames[1].Func)
	}
}

func TestDiffRecursionCumOncePerSample(t *testing.T) {
	// A recursive stack must count each function once per sample in cum.
	a := profileOf(testSample{stack: []string{"rec", "rec", "rec", "main"}, values: []int64{30}})
	b := profileOf(testSample{stack: []string{"rec", "main"}, values: []int64{30}})
	d := Diff(a, b, "", 0)
	rec := findDelta(t, d, "rec")
	if rec.CumA != 30 || rec.CumB != 30 || rec.DeltaCum != 0 {
		t.Fatalf("recursive cum = %+v", rec)
	}
}
