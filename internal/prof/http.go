package prof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Schema identifies the /debug/rpq/prof document format.
const Schema = "rpq-prof/1"

// windowInfo is one window row in the rpq-prof/1 listing, annotated with the
// label values seen in its CPU samples so clients know what to slice by.
type windowInfo struct {
	Window
	DurationMS int64               `json:"duration_ms"`
	CPUBytes   int                 `json:"cpu_bytes"`
	HeapBytes  int                 `json:"heap_bytes"`
	Labels     map[string][]string `json:"labels,omitempty"`
}

// profDoc is the rpq-prof/1 index document.
type profDoc struct {
	Schema     string       `json:"schema"`
	Now        time.Time    `json:"now"`
	WindowMS   int64        `json:"window_ms"`
	IntervalMS int64        `json:"interval_ms"`
	Baseline   bool         `json:"baseline"`
	Windows    []windowInfo `json:"windows"`
}

// windowDoc is the per-window aggregation document
// (?window=<id>&profile=cpu|heap&by=<label>&n=<N>).
type windowDoc struct {
	Schema     string      `json:"schema"`
	Window     windowInfo  `json:"window"`
	Profile    string      `json:"profile"`
	SampleType []ValueType `json:"sample_type"`
	Value      string      `json:"value_type"`
	Unit       string      `json:"unit"`
	By         string      `json:"by,omitempty"`
	Top        Slice       `json:"top"`
	Slices     []Slice     `json:"slices,omitempty"`
}

// traceDoc is the cross-window trace view (?trace=<id>): the frames of every
// retained window's samples labeled with that trace ID.
type traceDoc struct {
	Schema  string  `json:"schema"`
	TraceID string  `json:"trace_id"`
	Windows []int64 `json:"windows"`
	Top     Slice   `json:"top"`
}

// diffDoc is the /debug/rpq/prof/diff document.
type diffDoc struct {
	Schema  string     `json:"schema"`
	A       int64      `json:"a"`
	B       int64      `json:"b,omitempty"`
	BIsBase bool       `json:"b_is_baseline,omitempty"`
	Profile string     `json:"profile"`
	Diff    DiffResult `json:"diff"`
}

// Handler serves the profiler's HTTP surface. Mount it at /debug/rpq/prof
// (it routes on the path suffix):
//
//	GET .../prof                  window list (rpq-prof/1)
//	GET .../prof?window=N         per-window top frames (&profile=cpu|heap,
//	                              &by=<label>, &n=<topN>, &value=<sample type>)
//	GET .../prof?trace=ID         frames labeled rpq_trace_id=ID, all windows
//	GET .../prof/diff?a=N&b=M     frame deltas a−b (b=baseline uses the
//	                              committed baseline profile)
//	GET .../prof/tree?window=N    icicle tree JSON for the dash panel
//	GET .../prof/download?window=N  raw gzipped pprof proto (&profile=cpu|heap)
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimSuffix(r.URL.Path, "/")
		switch {
		case strings.HasSuffix(path, "/diff"):
			p.serveDiff(w, r)
		case strings.HasSuffix(path, "/tree"):
			p.serveTree(w, r)
		case strings.HasSuffix(path, "/download"):
			p.serveDownload(w, r)
		default:
			p.serveIndex(w, r)
		}
	})
}

func (p *Profiler) windowInfo(w Window, withLabels bool) windowInfo {
	wi := windowInfo{
		Window:     w,
		DurationMS: w.End.Sub(w.Start).Milliseconds(),
		CPUBytes:   len(w.CPU),
		HeapBytes:  len(w.Heap),
	}
	if withLabels && len(w.CPU) > 0 {
		if prof, err := ParseProfile(w.CPU); err == nil {
			labels := map[string][]string{}
			for _, key := range SliceKeys {
				if vs := LabelValues(prof, key); len(vs) > 0 {
					labels[key] = vs
				}
			}
			if len(labels) > 0 {
				wi.Labels = labels
			}
		}
	}
	return wi
}

func (p *Profiler) serveIndex(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("window") != "" {
		p.serveWindow(w, r)
		return
	}
	if tid := q.Get("trace"); tid != "" {
		p.serveTrace(w, tid)
		return
	}
	doc := profDoc{
		Schema:     Schema,
		Now:        time.Now().UTC(),
		WindowMS:   p.window.Milliseconds(),
		IntervalMS: p.interval.Milliseconds(),
		Baseline:   p.Baseline() != nil,
	}
	for _, win := range p.store.List() {
		doc.Windows = append(doc.Windows, p.windowInfo(win, true))
	}
	writeJSON(w, doc)
}

// loadWindow fetches and decodes one window's profile; kind is "cpu" or
// "heap" ("" = cpu).
func (p *Profiler) loadWindow(idStr, kind string) (Window, *Profile, string, error) {
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		return Window{}, nil, "", fmt.Errorf("bad window id %q", idStr)
	}
	win, ok := p.store.Get(id)
	if !ok {
		return Window{}, nil, "", fmt.Errorf("window %d not retained", id)
	}
	if kind == "" {
		kind = "cpu"
	}
	var raw []byte
	switch kind {
	case "cpu":
		raw = win.CPU
	case "heap":
		raw = win.Heap
	default:
		return Window{}, nil, "", fmt.Errorf("bad profile kind %q (want cpu or heap)", kind)
	}
	if len(raw) == 0 {
		return Window{}, nil, "", fmt.Errorf("window %d has no %s profile: %s", id, kind, win.Err)
	}
	prof, err := ParseProfile(raw)
	if err != nil {
		return Window{}, nil, "", fmt.Errorf("decode window %d: %v", id, err)
	}
	return win, prof, kind, nil
}

func topN(q string) int {
	n, err := strconv.Atoi(q)
	if err != nil || n <= 0 {
		return 20
	}
	if n > 200 {
		n = 200
	}
	return n
}

func (p *Profiler) serveWindow(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	win, prof, kind, err := p.loadWindow(q.Get("window"), q.Get("profile"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	vi := prof.DefaultValueIndex()
	if vt := q.Get("value"); vt != "" {
		if vi = prof.ValueIndex(vt); vi < 0 {
			http.Error(w, fmt.Sprintf("no sample type %q", vt), http.StatusBadRequest)
			return
		}
	}
	n := topN(q.Get("n"))
	doc := windowDoc{
		Schema:     Schema,
		Window:     p.windowInfo(win, false),
		Profile:    kind,
		SampleType: prof.SampleType,
		Top:        TopFrames(prof, vi, n, nil),
	}
	if vi >= 0 && vi < len(prof.SampleType) {
		doc.Value = prof.SampleType[vi].Type
		doc.Unit = prof.SampleType[vi].Unit
	}
	if by := q.Get("by"); by != "" {
		doc.By = by
		doc.Slices = SliceByLabel(prof, by, vi, n)
	}
	writeJSON(w, doc)
}

// serveTrace aggregates, across every retained window, the CPU samples
// labeled rpq_trace_id=tid — the jump target from a slow-log line.
func (p *Profiler) serveTrace(w http.ResponseWriter, tid string) {
	doc := traceDoc{Schema: Schema, TraceID: tid}
	merged := Slice{}
	frames := map[string]*Frame{}
	for _, win := range p.store.List() {
		if len(win.CPU) == 0 {
			continue
		}
		prof, err := ParseProfile(win.CPU)
		if err != nil {
			continue
		}
		vi := prof.DefaultValueIndex()
		sl := TopFrames(prof, vi, 0, func(s Sample) bool {
			return s.Labels["rpq_trace_id"] == tid
		})
		if sl.Total == 0 && len(sl.Frames) == 0 {
			continue
		}
		doc.Windows = append(doc.Windows, win.ID)
		merged.Total += sl.Total
		for _, f := range sl.Frames {
			a := frames[f.Func]
			if a == nil {
				frames[f.Func] = &Frame{Func: f.Func, Flat: f.Flat, Cum: f.Cum}
			} else {
				a.Flat += f.Flat
				a.Cum += f.Cum
			}
		}
	}
	for _, f := range frames {
		merged.Frames = append(merged.Frames, *f)
	}
	sortFrames(merged.Frames)
	if len(merged.Frames) > 50 {
		merged.Frames = merged.Frames[:50]
	}
	doc.Top = merged
	writeJSON(w, doc)
}

func sortFrames(fs []Frame) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && frameLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func frameLess(a, b Frame) bool {
	if a.Flat != b.Flat {
		return a.Flat > b.Flat
	}
	if a.Cum != b.Cum {
		return a.Cum > b.Cum
	}
	return a.Func < b.Func
}

func (p *Profiler) serveDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind := q.Get("profile")
	_, pa, kind, err := p.loadWindow(q.Get("a"), kind)
	if err != nil {
		http.Error(w, "a: "+err.Error(), http.StatusBadRequest)
		return
	}
	doc := diffDoc{Schema: Schema, Profile: kind}
	var pb *Profile
	if bs := q.Get("b"); bs == "baseline" {
		base := p.Baseline()
		if base == nil {
			http.Error(w, "no baseline profile committed", http.StatusBadRequest)
			return
		}
		pb, err = ParseProfile(base)
		if err != nil {
			http.Error(w, "baseline: "+err.Error(), http.StatusBadRequest)
			return
		}
		doc.BIsBase = true
	} else {
		var bwin Window
		bwin, pb, _, err = p.loadWindow(bs, kind)
		if err != nil {
			http.Error(w, "b: "+err.Error(), http.StatusBadRequest)
			return
		}
		doc.B = bwin.ID
	}
	aid, _ := strconv.ParseInt(q.Get("a"), 10, 64)
	doc.A = aid
	doc.Diff = Diff(pa, pb, q.Get("value"), topN(q.Get("n")))
	writeJSON(w, doc)
}

func (p *Profiler) serveTree(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	idStr := q.Get("window")
	if idStr == "" {
		// Default to the latest window with a CPU profile so the dash panel
		// needs no id bookkeeping.
		for _, win := range p.store.List() {
			if len(win.CPU) > 0 {
				idStr = strconv.FormatInt(win.ID, 10)
			}
		}
		if idStr == "" {
			http.Error(w, "no windows captured yet", http.StatusNotFound)
			return
		}
	}
	win, prof, kind, err := p.loadWindow(idStr, q.Get("profile"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	vi := prof.DefaultValueIndex()
	var filter func(Sample) bool
	if kind == "cpu" {
		if key, val := q.Get("by"), q.Get("eq"); key != "" && val != "" {
			filter = func(s Sample) bool { return s.Labels[key] == val }
		}
	}
	tree := StackTree(prof, vi, filter, 0.005)
	unit := ""
	if vi >= 0 && vi < len(prof.SampleType) {
		unit = prof.SampleType[vi].Unit
	}
	writeJSON(w, struct {
		Schema string    `json:"schema"`
		Window int64     `json:"window"`
		Kind   string    `json:"profile"`
		Unit   string    `json:"unit"`
		Root   *TreeNode `json:"root"`
	}{Schema, win.ID, kind, unit, tree})
}

func (p *Profiler) serveDownload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	win, _, kind, err := p.loadWindow(q.Get("window"), q.Get("profile"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw := win.CPU
	if kind == "heap" {
		raw = win.Heap
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="rpq-%s-window-%d.pb.gz"`, kind, win.ID))
	w.Write(raw)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
