package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"
)

var kinds = []string{"exist", "universal", "violations"}

// fixturePath is the committed golden for one query kind. Regenerate with
//
//	PROF_UPDATE_GOLDEN=1 go test ./internal/prof -run TestParseProfileGolden
//
// after an intentional encoder change; the decoder assertions below pin the
// wire format either way.
func fixturePath(kind string) string {
	return filepath.Join("testdata", "cpu_"+kind+".pb.gz")
}

func TestParseProfileGolden(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			path := fixturePath(kind)
			want := encodeTestProfile(fixtureSpec(kind))
			if os.Getenv("PROF_UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with PROF_UPDATE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("golden %s drifted from the encoder output (%d vs %d bytes)", path, len(data), len(want))
			}

			p, err := ParseProfile(data)
			if err != nil {
				t.Fatalf("ParseProfile: %v", err)
			}
			if len(p.SampleType) != 2 || p.SampleType[1].Type != "cpu" || p.SampleType[1].Unit != "nanoseconds" {
				t.Fatalf("sample types = %+v", p.SampleType)
			}
			if p.DefaultValueIndex() != 1 {
				t.Fatalf("DefaultValueIndex = %d, want 1 (cpu)", p.DefaultValueIndex())
			}
			if len(p.Samples) != 4 {
				t.Fatalf("got %d samples, want 4", len(p.Samples))
			}
			if p.Period != 10_000_000 || p.PeriodType.Type != "cpu" {
				t.Fatalf("period = %d %+v", p.Period, p.PeriodType)
			}

			entry := map[string]string{
				"exist": "rpq.Exist", "universal": "rpq.Universal", "violations": "rpq.Violations",
			}[kind]
			s0 := p.Samples[0]
			wantStack := []string{"rpq/internal/core.match", "rpq/internal/core.(*engine).solve", entry, "main.main"}
			if len(s0.Stack) != len(wantStack) {
				t.Fatalf("sample 0 stack = %v", s0.Stack)
			}
			for i := range wantStack {
				if s0.Stack[i] != wantStack[i] {
					t.Fatalf("sample 0 stack[%d] = %q, want %q", i, s0.Stack[i], wantStack[i])
				}
			}
			if s0.Values[0] != 6 || s0.Values[1] != 60_000_000 {
				t.Fatalf("sample 0 values = %v", s0.Values)
			}
			if s0.Labels["rpq_kind"] != kind || s0.Labels["variant"] != "memo" ||
				s0.Labels["workers"] != "1" || s0.Labels["rpq_trace_id"] != "aaaa0000aaaa0000aaaa0000aaaa0000" {
				t.Fatalf("sample 0 labels = %v", s0.Labels)
			}
			// The GC sample carries no labels.
			if got := p.Samples[3]; len(got.Labels) != 0 || got.Stack[0] != "runtime.gcBgMarkWorker" {
				t.Fatalf("sample 3 = %+v", got)
			}
		})
	}
}

func TestParseProfileUncompressed(t *testing.T) {
	// The decoder must accept raw (non-gzip) protos too: strip the gzip
	// framing from a fixture and re-parse.
	gz := encodeTestProfile(fixtureSpec("exist"))
	p1, err := ParseProfile(gz)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProfile(mustGunzip(t, gz))
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Samples) != len(p2.Samples) || p1.Period != p2.Period {
		t.Fatalf("gzip vs raw decode disagree: %d/%d samples", len(p1.Samples), len(p2.Samples))
	}
}

func TestParseProfileTruncated(t *testing.T) {
	raw := mustGunzip(t, encodeTestProfile(fixtureSpec("exist")))
	for _, n := range []int{1, 7, len(raw) / 2, len(raw) - 1} {
		if _, err := ParseProfile(raw[:n]); err == nil {
			t.Fatalf("ParseProfile accepted a %d-byte truncation", n)
		}
	}
}

func TestParseProfileNumLabels(t *testing.T) {
	spec := testProfileSpec{
		sampleTypes: []ValueType{{Type: "alloc_space", Unit: "bytes"}},
		samples: []testSample{
			{stack: []string{"rpq/internal/core.grow"}, values: []int64{4096},
				nums: map[string]int64{"bytes": 2048}},
		},
	}
	p, err := ParseProfile(encodeTestProfile(spec))
	if err != nil {
		t.Fatal(err)
	}
	if p.Samples[0].NumLabels["bytes"] != 2048 {
		t.Fatalf("num labels = %v", p.Samples[0].NumLabels)
	}
	if p.DefaultValueIndex() != 0 {
		t.Fatalf("heap default value index = %d", p.DefaultValueIndex())
	}
}

// TestParseRealCPUProfile decodes an actual runtime/pprof capture — the
// format the capture loop stores — including pprof labels, proving the
// stdlib-only decoder handles real profiles, not just fixtures.
func TestParseRealCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profile unavailable: %v", err)
	}
	done := time.Now().Add(300 * time.Millisecond)
	// Burn CPU under a label so at least one labeled sample lands.
	pprof.Do(context.Background(), pprof.Labels("rpq_kind", "exist"), func(context.Context) {
		x := 0
		for time.Now().Before(done) {
			x++
		}
		_ = x
	})
	pprof.StopCPUProfile()

	p, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProfile(real capture): %v", err)
	}
	if p.ValueIndex("cpu") < 0 {
		t.Fatalf("real profile lacks a cpu dimension: %+v", p.SampleType)
	}
	if len(p.Samples) == 0 {
		t.Skip("no samples captured (heavily loaded CI machine)")
	}
	labeled := false
	for _, s := range p.Samples {
		if s.Labels["rpq_kind"] == "exist" {
			labeled = true
			break
		}
	}
	if !labeled {
		t.Skip("no labeled samples captured (scheduler starvation)")
	}
}

func mustGunzip(t *testing.T, gz []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
