package prof

import "sort"

// FrameDelta is one frame's a−b difference. Positive deltas mean profile A
// spends more than profile B (A is usually the newer/suspect window, B the
// baseline), negative means A improved. DeltaFlat/DeltaCum are always
// FlatA−FlatB / CumA−CumB; a frame present in only one profile contributes
// zeros for the other side, so a frame that disappeared in A shows up with
// DeltaFlat = −FlatB.
type FrameDelta struct {
	Func      string `json:"func"`
	FlatA     int64  `json:"flat_a"`
	FlatB     int64  `json:"flat_b"`
	CumA      int64  `json:"cum_a"`
	CumB      int64  `json:"cum_b"`
	DeltaFlat int64  `json:"delta_flat"`
	DeltaCum  int64  `json:"delta_cum"`
	// OnlyIn marks frames present in just one profile ("a", "b", or "").
	OnlyIn string `json:"only_in,omitempty"`
}

// DiffResult is the frame-level diff of two profiles for one value dimension.
type DiffResult struct {
	Unit   string       `json:"unit"`
	TotalA int64        `json:"total_a"`
	TotalB int64        `json:"total_b"`
	Delta  int64        `json:"delta"`
	Frames []FrameDelta `json:"frames"`
}

// Diff computes a−b frame deltas between two profiles over the sample-value
// dimension named typ (the first profile's default when typ is ""), keeping
// the top n frames by |DeltaFlat| (|DeltaCum| breaks ties). The two profiles
// need not share a dimension order; each resolves typ independently.
func Diff(a, b *Profile, typ string, n int) DiffResult {
	via, vib := a.DefaultValueIndex(), b.DefaultValueIndex()
	if typ != "" {
		via, vib = a.ValueIndex(typ), b.ValueIndex(typ)
	}
	fa := TopFrames(a, via, 0, nil)
	fb := TopFrames(b, vib, 0, nil)

	res := DiffResult{TotalA: fa.Total, TotalB: fb.Total, Delta: fa.Total - fb.Total}
	if via >= 0 && via < len(a.SampleType) {
		res.Unit = a.SampleType[via].Unit
	}

	byFunc := map[string]*FrameDelta{}
	for _, f := range fa.Frames {
		byFunc[f.Func] = &FrameDelta{Func: f.Func, FlatA: f.Flat, CumA: f.Cum, OnlyIn: "a"}
	}
	for _, f := range fb.Frames {
		d := byFunc[f.Func]
		if d == nil {
			d = &FrameDelta{Func: f.Func, OnlyIn: "b"}
			byFunc[f.Func] = d
		} else {
			d.OnlyIn = ""
		}
		d.FlatB = f.Flat
		d.CumB = f.Cum
	}
	res.Frames = make([]FrameDelta, 0, len(byFunc))
	for _, d := range byFunc {
		d.DeltaFlat = d.FlatA - d.FlatB
		d.DeltaCum = d.CumA - d.CumB
		res.Frames = append(res.Frames, *d)
	}
	sort.Slice(res.Frames, func(i, j int) bool {
		x, y := res.Frames[i], res.Frames[j]
		if ax, ay := abs64(x.DeltaFlat), abs64(y.DeltaFlat); ax != ay {
			return ax > ay
		}
		if ax, ay := abs64(x.DeltaCum), abs64(y.DeltaCum); ax != ay {
			return ax > ay
		}
		return x.Func < y.Func
	})
	if n > 0 && len(res.Frames) > n {
		res.Frames = res.Frames[:n]
	}
	return res
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
