package prof

import "testing"

func fixtureProfile(t *testing.T, kind string) *Profile {
	t.Helper()
	p, err := ParseProfile(encodeTestProfile(fixtureSpec(kind)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTopFramesFlatCum(t *testing.T) {
	p := fixtureProfile(t, "exist")
	sl := TopFrames(p, p.ValueIndex("cpu"), 0, nil)
	if sl.Total != 120_000_000 {
		t.Fatalf("total = %d", sl.Total)
	}
	byFn := map[string]Frame{}
	for _, f := range sl.Frames {
		byFn[f.Func] = f
	}
	// match is the leaf of the 60ms sample only.
	if f := byFn["rpq/internal/core.match"]; f.Flat != 60_000_000 || f.Cum != 60_000_000 {
		t.Fatalf("match = %+v", f)
	}
	// solve is a leaf once (30ms) but on-stack for 110ms of samples.
	if f := byFn["rpq/internal/core.(*engine).solve"]; f.Flat != 30_000_000 || f.Cum != 110_000_000 {
		t.Fatalf("solve = %+v", f)
	}
	// The entry point never leads; cum only.
	if f := byFn["rpq.Exist"]; f.Flat != 0 || f.Cum != 110_000_000 {
		t.Fatalf("entry = %+v", f)
	}
	// Ordered by flat.
	if sl.Frames[0].Func != "rpq/internal/core.match" {
		t.Fatalf("top frame = %q", sl.Frames[0].Func)
	}
}

func TestSliceByLabelKind(t *testing.T) {
	p := fixtureProfile(t, "violations")
	slices := SliceByLabel(p, "rpq_kind", p.ValueIndex("cpu"), 10)
	if len(slices) != 2 {
		t.Fatalf("slices = %+v", slices)
	}
	// Labeled query work dominates the unlabeled GC sample.
	if slices[0].Value != "violations" || slices[0].Total != 110_000_000 {
		t.Fatalf("slice 0 = %+v", slices[0])
	}
	if slices[1].Value != "(none)" || slices[1].Total != 10_000_000 {
		t.Fatalf("slice 1 = %+v", slices[1])
	}
	// The solver frame appears under its kind's slice — the svcsmoke check.
	found := false
	for _, f := range slices[0].Frames {
		if f.Func == "rpq/internal/core.(*engine).solve" {
			found = true
		}
	}
	if !found {
		t.Fatal("solver frame missing from rpq_kind=violations slice")
	}
}

func TestSliceByTraceID(t *testing.T) {
	p := fixtureProfile(t, "exist")
	sl := TopFrames(p, p.ValueIndex("cpu"), 0, func(s Sample) bool {
		return s.Labels["rpq_trace_id"] == "bbbb1111bbbb1111bbbb1111bbbb1111"
	})
	if sl.Total != 20_000_000 {
		t.Fatalf("trace-filtered total = %d", sl.Total)
	}
	if sl.Frames[0].Func != "rpq/internal/core.memoLookup" {
		t.Fatalf("trace-filtered top = %q", sl.Frames[0].Func)
	}
}

func TestLabelValues(t *testing.T) {
	p := fixtureProfile(t, "universal")
	if vs := LabelValues(p, "rpq_kind"); len(vs) != 1 || vs[0] != "universal" {
		t.Fatalf("rpq_kind values = %v", vs)
	}
	vs := LabelValues(p, "rpq_trace_id")
	if len(vs) != 2 || vs[0] != "aaaa0000aaaa0000aaaa0000aaaa0000" {
		t.Fatalf("trace values = %v", vs)
	}
}

func TestStackTree(t *testing.T) {
	p := fixtureProfile(t, "exist")
	root := StackTree(p, p.ValueIndex("cpu"), nil, 0)
	if root.Value != 120_000_000 {
		t.Fatalf("root value = %d", root.Value)
	}
	// main.main → rpq.Exist → solve → {match leaf, self}.
	var mainNode *TreeNode
	for _, c := range root.Children {
		if c.Name == "main.main" {
			mainNode = c
		}
	}
	if mainNode == nil || mainNode.Value != 110_000_000 {
		t.Fatalf("main node = %+v", mainNode)
	}
	solve := mainNode.Children[0].Children[0]
	if solve.Name != "rpq/internal/core.(*engine).solve" || solve.Value != 110_000_000 || solve.Self != 30_000_000 {
		t.Fatalf("solve node = %+v", solve)
	}
	// Children sorted by value: match (60) before memoLookup (20).
	if solve.Children[0].Name != "rpq/internal/core.match" {
		t.Fatalf("solve children = %+v", solve.Children)
	}
	// Pruning folds small children into (other).
	pruned := StackTree(p, p.ValueIndex("cpu"), nil, 0.5)
	for _, c := range pruned.Children {
		if c.Name == "runtime.gcBgMarkWorker" {
			t.Fatal("sub-threshold child survived pruning")
		}
	}
}
