package prof

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// handlerFixture returns a profiler (not started) whose store holds two
// decodable windows: exist-shaped then violations-shaped.
func handlerFixture(t *testing.T) (*Profiler, int64, int64) {
	t.Helper()
	p := newTestProfiler(time.Second, time.Minute)
	idA := p.store.Add(&Window{
		Start: time.Unix(1700000000, 0), End: time.Unix(1700000010, 0),
		CPU: encodeTestProfile(fixtureSpec("exist")),
	})
	idB := p.store.Add(&Window{
		Start: time.Unix(1700000060, 0), End: time.Unix(1700000070, 0),
		CPU: encodeTestProfile(fixtureSpec("violations")),
	})
	return p, idA, idB
}

func getJSON(t *testing.T, p *Profiler, url string, out any) int {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestHandlerIndexSchema(t *testing.T) {
	p, idA, _ := handlerFixture(t)
	var doc struct {
		Schema   string `json:"schema"`
		WindowMS int64  `json:"window_ms"`
		Windows  []struct {
			ID     int64               `json:"id"`
			Labels map[string][]string `json:"labels"`
		} `json:"windows"`
	}
	if code := getJSON(t, p, "/debug/rpq/prof", &doc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if doc.Schema != Schema {
		t.Fatalf("schema = %q, want %q", doc.Schema, Schema)
	}
	if doc.WindowMS != 1000 {
		t.Fatalf("window_ms = %d", doc.WindowMS)
	}
	if len(doc.Windows) != 2 || doc.Windows[0].ID != idA {
		t.Fatalf("windows = %+v", doc.Windows)
	}
	if got := doc.Windows[0].Labels["rpq_kind"]; len(got) != 1 || got[0] != "exist" {
		t.Fatalf("window labels = %v", doc.Windows[0].Labels)
	}
}

func TestHandlerWindowSlicedByKind(t *testing.T) {
	p, idA, _ := handlerFixture(t)
	var doc windowDoc
	url := "/debug/rpq/prof?window=1&by=rpq_kind&n=5"
	if code := getJSON(t, p, url, &doc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if doc.Window.ID != idA || doc.Profile != "cpu" || doc.Value != "cpu" {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Top.Frames) == 0 || len(doc.Top.Frames) > 5 {
		t.Fatalf("top frames = %+v", doc.Top.Frames)
	}
	if len(doc.Slices) != 2 || doc.Slices[0].Value != "exist" {
		t.Fatalf("slices = %+v", doc.Slices)
	}
}

func TestHandlerDiffNonzero(t *testing.T) {
	p, idA, idB := handlerFixture(t)
	var doc diffDoc
	url := "/debug/rpq/prof/diff?a=2&b=1"
	if code := getJSON(t, p, url, &doc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if doc.Schema != Schema || doc.A != idB || doc.B != idA {
		t.Fatalf("doc = %+v", doc)
	}
	// exist vs violations differ in entry frames, so deltas are nonzero.
	nonzero := false
	for _, f := range doc.Diff.Frames {
		if f.DeltaFlat != 0 || f.DeltaCum != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("diff of different kinds returned all-zero deltas")
	}
}

func TestHandlerDiffBaseline(t *testing.T) {
	p, _, _ := handlerFixture(t)
	var doc diffDoc
	if code := getJSON(t, p, "/debug/rpq/prof/diff?a=1&b=baseline", &doc); code != 400 {
		t.Fatalf("diff without baseline: status %d, want 400", code)
	}
	p.SetBaseline(encodeTestProfile(fixtureSpec("exist")))
	if code := getJSON(t, p, "/debug/rpq/prof/diff?a=1&b=baseline", &doc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !doc.BIsBase || doc.Diff.Delta != 0 {
		t.Fatalf("baseline self-diff = %+v", doc)
	}
}

func TestHandlerTraceView(t *testing.T) {
	p, _, _ := handlerFixture(t)
	var doc traceDoc
	url := "/debug/rpq/prof?trace=bbbb1111bbbb1111bbbb1111bbbb1111"
	if code := getJSON(t, p, url, &doc); code != 200 {
		t.Fatalf("status %d", code)
	}
	// The trace appears in both windows (same fixture trace IDs).
	if len(doc.Windows) != 2 || doc.Top.Total != 40_000_000 {
		t.Fatalf("trace doc = %+v", doc)
	}
	if doc.Top.Frames[0].Func != "rpq/internal/core.memoLookup" {
		t.Fatalf("trace top frame = %+v", doc.Top.Frames)
	}
}

func TestHandlerTree(t *testing.T) {
	p, _, idB := handlerFixture(t)
	var doc struct {
		Window int64     `json:"window"`
		Root   *TreeNode `json:"root"`
	}
	// No ?window defaults to the latest window with CPU bytes.
	if code := getJSON(t, p, "/debug/rpq/prof/tree", &doc); code != 200 {
		t.Fatalf("status %d", code)
	}
	if doc.Window != idB || doc.Root == nil || doc.Root.Value != 120_000_000 {
		t.Fatalf("tree = %+v", doc)
	}
}

func TestHandlerDownloadRoundtrips(t *testing.T) {
	p, idA, _ := handlerFixture(t)
	req := httptest.NewRequest("GET", "/debug/rpq/prof/download?window=1", nil)
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	prof, err := ParseProfile(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("downloaded bytes do not decode: %v", err)
	}
	if len(prof.Samples) != 4 {
		t.Fatalf("downloaded profile has %d samples", len(prof.Samples))
	}
	_ = idA
}

func TestHandlerErrors(t *testing.T) {
	p, _, _ := handlerFixture(t)
	for _, url := range []string{
		"/debug/rpq/prof?window=99",
		"/debug/rpq/prof?window=abc",
		"/debug/rpq/prof?window=1&profile=wat",
		"/debug/rpq/prof/diff?a=1&b=99",
		"/debug/rpq/prof/download?window=99",
	} {
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		p.Handler().ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Fatalf("GET %s: status %d, want 400", url, rec.Code)
		}
	}
}
