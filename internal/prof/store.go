package prof

import (
	"sync"
	"time"
)

// Window is one captured profiling window: a short CPU profile plus the
// heap/alloc snapshot taken as it closed. Profiles are stored in pprof's
// gzip-compressed protobuf format, exactly as a /debug/pprof download would
// deliver them.
type Window struct {
	// ID is the monotonically increasing window id (never reused, so ids stay
	// valid across ring wraparound).
	ID int64 `json:"id"`
	// Start/End bound the CPU capture.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// CPU is the window's CPU profile (gzipped pprof proto); nil when the
	// capture failed (Err says why).
	CPU []byte `json:"-"`
	// Heap is the heap/alloc snapshot taken at window close (gzipped pprof
	// proto).
	Heap []byte `json:"-"`
	// CPUSamples counts the decoded CPU samples, for the window listing.
	CPUSamples int `json:"cpu_samples"`
	// Pinned windows survive retention eviction; PinReason says what pinned
	// them ("slow", "hung", "slo-burn", ...).
	Pinned    bool   `json:"pinned,omitempty"`
	PinReason string `json:"pin_reason,omitempty"`
	// Cut reports the window was ended early by a pin (watchdog or SLO
	// breach) rather than running its full duration.
	Cut bool `json:"cut,omitempty"`
	// Err records a capture failure (e.g. another CPU profile was running).
	Err string `json:"error,omitempty"`
}

// Store is the bounded ring of captured windows. Retention evicts the oldest
// unpinned windows beyond retain; pinned windows are kept in a separate,
// also-bounded budget so an anomaly burst cannot grow memory without bound.
type Store struct {
	mu        sync.Mutex
	retain    int
	maxPinned int
	nextID    int64
	windows   []*Window // oldest first
}

// NewStore returns a store retaining up to retain unpinned and maxPinned
// pinned windows (minimums of 2 and 1 are enforced).
func NewStore(retain, maxPinned int) *Store {
	if retain < 2 {
		retain = 2
	}
	if maxPinned < 1 {
		maxPinned = 1
	}
	return &Store{retain: retain, maxPinned: maxPinned}
}

// Add stores one window, assigns its ID, and evicts past the retention
// bounds. It returns the assigned id.
func (s *Store) Add(w *Window) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	w.ID = s.nextID
	s.windows = append(s.windows, w)
	s.evictLocked()
	return w.ID
}

// evictLocked drops the oldest unpinned windows beyond retain and the oldest
// pinned windows beyond maxPinned.
func (s *Store) evictLocked() {
	unpinned, pinned := 0, 0
	for _, w := range s.windows {
		if w.Pinned {
			pinned++
		} else {
			unpinned++
		}
	}
	if unpinned <= s.retain && pinned <= s.maxPinned {
		return
	}
	kept := s.windows[:0]
	for _, w := range s.windows {
		switch {
		case w.Pinned && pinned > s.maxPinned:
			pinned--
		case !w.Pinned && unpinned > s.retain:
			unpinned--
		default:
			kept = append(kept, w)
		}
	}
	// Clear the tail so evicted windows' profile bytes are collectable.
	for i := len(kept); i < len(s.windows); i++ {
		s.windows[i] = nil
	}
	s.windows = kept
}

// Get returns a copy of the window with the given id. The profile byte
// slices are shared with the store but immutable once captured, so reads
// race-cleanly overlap Pin and Add.
func (s *Store) Get(id int64) (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.windows {
		if w.ID == id {
			return *w, true
		}
	}
	return Window{}, false
}

// Latest returns a copy of the newest completed window; ok is false when the
// store is empty.
func (s *Store) Latest() (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.windows) == 0 {
		return Window{}, false
	}
	return *s.windows[len(s.windows)-1], true
}

// List returns copies of the retained windows, oldest first.
func (s *Store) List() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Window, len(s.windows))
	for i, w := range s.windows {
		out[i] = *w
	}
	return out
}

// Len reports the number of retained windows.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.windows)
}

// Pin marks the window so retention eviction skips it; the first reason
// sticks. Reports whether the id was found.
func (s *Store) Pin(id int64, reason string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.windows {
		if w.ID == id {
			if !w.Pinned {
				w.Pinned = true
				w.PinReason = reason
			}
			return true
		}
	}
	return false
}
