package prof

import (
	"bytes"
	"compress/gzip"
	"sort"
)

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Test-side pprof proto encoder: enough of profile.proto to build golden
// fixtures without depending on github.com/google/pprof. The decoder under
// test must never share code with this, so the two are independent
// implementations of the wire format.

type encBuf struct{ b []byte }

func (e *encBuf) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *encBuf) tag(field, wire int) { e.varint(uint64(field<<3 | wire)) }

func (e *encBuf) intField(field int, v int64) {
	e.tag(field, 0)
	e.varint(uint64(v))
}

func (e *encBuf) bytesField(field int, b []byte) {
	e.tag(field, 2)
	e.varint(uint64(len(b)))
	e.b = append(e.b, b...)
}

// packedInts encodes a repeated int64 field in packed form.
func (e *encBuf) packedInts(field int, vs []int64) {
	var inner encBuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	e.bytesField(field, inner.b)
}

// testProfileSpec describes one synthetic profile for the encoder.
type testProfileSpec struct {
	sampleTypes []ValueType
	period      int64
	samples     []testSample
}

type testSample struct {
	stack  []string // leaf first, like the decoder's output
	values []int64
	labels map[string]string
	nums   map[string]int64
}

// encodeTestProfile builds the gzipped pprof proto for spec. String-table,
// function, and location ids are assigned in first-use order, so identical
// specs encode to identical bytes (golden-stable).
func encodeTestProfile(spec testProfileSpec) []byte {
	strs := []string{""} // index 0 must be the empty string
	strIdx := map[string]int64{"": 0}
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	fnIdx := map[string]uint64{}
	var fnNames []string
	fn := func(name string) uint64 {
		if id, ok := fnIdx[name]; ok {
			return id
		}
		id := uint64(len(fnNames) + 1)
		fnNames = append(fnNames, name)
		fnIdx[name] = id
		return id
	}
	// One location per function (no inlining in fixtures).
	loc := func(name string) int64 { return int64(fn(name)) }

	var p encBuf
	for _, st := range spec.sampleTypes {
		var vt encBuf
		vt.intField(1, str(st.Type))
		vt.intField(2, str(st.Unit))
		p.bytesField(1, vt.b)
	}
	for _, s := range spec.samples {
		var sm encBuf
		locs := make([]int64, len(s.stack))
		for i, f := range s.stack {
			locs[i] = loc(f)
		}
		sm.packedInts(1, locs)
		sm.packedInts(2, s.values)
		// Maps iterate in random order; sort keys so identical specs encode
		// to identical bytes (the goldens are committed).
		for _, k := range sortedKeys(s.labels) {
			var lb encBuf
			lb.intField(1, str(k))
			lb.intField(2, str(s.labels[k]))
			sm.bytesField(3, lb.b)
		}
		for _, k := range sortedKeys(s.nums) {
			var lb encBuf
			lb.intField(1, str(k))
			lb.intField(3, s.nums[k])
			sm.bytesField(3, lb.b)
		}
		p.bytesField(2, sm.b)
	}
	for i := range fnNames {
		id := uint64(i + 1)
		var ln encBuf
		ln.intField(1, int64(id)) // Line.function_id
		var lc encBuf
		lc.intField(1, int64(id)) // Location.id (same as the function's)
		lc.bytesField(4, ln.b)
		p.bytesField(4, lc.b)
	}
	for i, name := range fnNames {
		var f encBuf
		f.intField(1, int64(i+1))
		f.intField(2, str(name))
		p.bytesField(5, f.b)
	}
	for _, s := range strs {
		p.bytesField(6, []byte(s))
	}
	p.intField(9, 1700000000_000000000) // time_nanos (fixed for determinism)
	p.intField(10, int64(10_000_000_000))
	var pt encBuf
	pt.intField(1, str("cpu"))
	pt.intField(2, str("nanoseconds"))
	p.bytesField(11, pt.b)
	if spec.period != 0 {
		p.intField(12, spec.period)
	}

	var gz bytes.Buffer
	// Fixed header fields so identical input bytes gzip identically.
	zw, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
	zw.Write(p.b)
	zw.Close()
	return gz.Bytes()
}

// fixtureSpec builds the golden profile for one query kind: solver frames
// under the kind's entry point, labeled the way the rpq layer stamps real
// queries.
func fixtureSpec(kind string) testProfileSpec {
	entry := map[string]string{
		"exist":      "rpq.Exist",
		"universal":  "rpq.Universal",
		"violations": "rpq.Violations",
	}[kind]
	labels := func(trace string) map[string]string {
		return map[string]string{
			"rpq_kind":     kind,
			"variant":      "memo",
			"table":        "t4",
			"workers":      "1",
			"rpq_trace_id": trace,
		}
	}
	return testProfileSpec{
		sampleTypes: []ValueType{
			{Type: "samples", Unit: "count"},
			{Type: "cpu", Unit: "nanoseconds"},
		},
		period: 10_000_000,
		samples: []testSample{
			// Stacks are leaf first: solve dominates, match is the hot leaf.
			{stack: []string{"rpq/internal/core.match", "rpq/internal/core.(*engine).solve", entry, "main.main"},
				values: []int64{6, 60_000_000}, labels: labels("aaaa0000aaaa0000aaaa0000aaaa0000")},
			{stack: []string{"rpq/internal/core.(*engine).solve", entry, "main.main"},
				values: []int64{3, 30_000_000}, labels: labels("aaaa0000aaaa0000aaaa0000aaaa0000")},
			{stack: []string{"rpq/internal/core.memoLookup", "rpq/internal/core.(*engine).solve", entry, "main.main"},
				values: []int64{2, 20_000_000}, labels: labels("bbbb1111bbbb1111bbbb1111bbbb1111")},
			// Unlabeled runtime work outside any query.
			{stack: []string{"runtime.gcBgMarkWorker"},
				values: []int64{1, 10_000_000}},
		},
	}
}
