// Package prof is the always-on continuous profiler behind /debug/rpq/prof:
// a duty-cycled capture loop recording short CPU-profile windows and
// heap/alloc snapshots into a bounded ring store, a stdlib-only decoder for
// the pprof protobuf format (gzip + wire-format walk, no dependency on
// github.com/google/pprof or runtime/pprof internals), label-sliced flat/cum
// aggregation over the rpq_* pprof labels the query layer stamps, and
// frame-level diffing between windows — the tool the data-plane rewrites are
// gated with. docs/observability.md ("Continuous profiling") documents the
// rpq-prof/1 schema and the diff workflow.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ValueType is one sample-value dimension of a profile ("cpu"/"nanoseconds",
// "alloc_space"/"bytes", ...).
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one decoded profile sample: its call stack (leaf first, inline
// frames expanded), one value per ValueType, and the pprof labels attached to
// it (string labels only; numeric labels are kept separately).
type Sample struct {
	// Stack holds function names, leaf first.
	Stack []string
	// Values aligns with Profile.SampleType.
	Values []int64
	// Labels holds the sample's string pprof labels (rpq_kind, variant, ...).
	Labels map[string]string
	// NumLabels holds numeric labels (e.g. "bytes" on heap samples).
	NumLabels map[string]int64
}

// Profile is a decoded pprof profile — the subset of the proto the
// aggregation and diff layers need.
type Profile struct {
	SampleType    []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
	// DefaultSampleType names the sample type tools should show by default
	// ("" when the profile does not set one).
	DefaultSampleType string
}

// ValueIndex returns the index of the sample-value dimension named typ, or -1.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleType {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// DefaultValueIndex picks the dimension aggregation should use when the
// caller does not name one: "cpu" for CPU profiles, "alloc_space" for heap
// profiles (the heap-bytes attribution the data-plane work needs), otherwise
// the last dimension — the convention pprof itself uses.
func (p *Profile) DefaultValueIndex() int {
	if i := p.ValueIndex("cpu"); i >= 0 {
		return i
	}
	if i := p.ValueIndex("alloc_space"); i >= 0 {
		return i
	}
	return len(p.SampleType) - 1
}

// ---- protobuf wire walk ----
//
// profile.proto field numbers (github.com/google/pprof/proto/profile.proto):
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 10 duration_nanos,
//	          11 period_type, 12 period, 14 default_sample_type
//	ValueType: 1 type, 2 unit (string-table indexes)
//	Sample:   1 location_id (repeated), 2 value (repeated), 3 label
//	Label:    1 key, 2 str, 3 num (key/str are string-table indexes)
//	Location: 1 id, 4 line (repeated; line[0] is the leaf-most inline frame)
//	Line:     1 function_id
//	Function: 1 id, 2 name (string-table index)

const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// walkMessage iterates the fields of one encoded message. For varint fields
// fn receives the value in v; for length-delimited fields the payload in b.
// Fixed32/fixed64 fields are skipped (profile.proto does not use them) but
// must still be consumed to stay in sync.
func walkMessage(data []byte, fn func(num, typ int, v uint64, b []byte) error) error {
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("prof: truncated field key")
		}
		data = data[n:]
		num, typ := int(key>>3), int(key&7)
		switch typ {
		case wireVarint:
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("prof: truncated varint in field %d", num)
			}
			data = data[n:]
			if err := fn(num, typ, v, nil); err != nil {
				return err
			}
		case wireBytes:
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("prof: truncated bytes in field %d", num)
			}
			payload := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := fn(num, typ, 0, payload); err != nil {
				return err
			}
		case wireFixed64:
			if len(data) < 8 {
				return fmt.Errorf("prof: truncated fixed64 in field %d", num)
			}
			data = data[8:]
		case wireFixed32:
			if len(data) < 4 {
				return fmt.Errorf("prof: truncated fixed32 in field %d", num)
			}
			data = data[4:]
		default:
			return fmt.Errorf("prof: unsupported wire type %d in field %d", typ, num)
		}
	}
	return nil
}

// uvarint decodes one varint; it mirrors encoding/binary.Uvarint but reports
// overlong encodings as errors via n <= 0.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// ints appends the int64 values of a repeated integer field, handling both
// packed (length-delimited) and unpacked (single varint) encodings.
func ints(dst []int64, typ int, v uint64, b []byte) ([]int64, error) {
	if typ == wireVarint {
		return append(dst, int64(v)), nil
	}
	for len(b) > 0 {
		x, n := uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("prof: truncated packed int")
		}
		dst = append(dst, int64(x))
		b = b[n:]
	}
	return dst, nil
}

// rawSample keeps a sample's encoded references until the tables are known.
type rawSample struct {
	locs   []int64
	values []int64
	labels []rawLabel
}

type rawLabel struct{ key, str, num int64 }

// ParseProfile decodes a pprof profile — gzip-compressed or raw protobuf —
// into the Profile subset: sample types, samples with symbolized stacks and
// labels, and the timing metadata.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}

	var (
		strtab      []string
		sampleTypes []rawLabel // reuse: key=type idx, str=unit idx
		raws        []rawSample
		funcs       = map[uint64]int64{} // function id -> name strtab idx
		locFns      = map[uint64][]uint64{}
		p           = &Profile{}
		periodType  rawLabel
		defaultType int64
	)

	err := walkMessage(data, func(num, typ int, v uint64, b []byte) error {
		switch num {
		case 1: // sample_type
			vt, err := parseValueTypeRaw(b)
			if err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			s := rawSample{}
			err := walkMessage(b, func(num, typ int, v uint64, b []byte) error {
				var err error
				switch num {
				case 1:
					s.locs, err = ints(s.locs, typ, v, b)
				case 2:
					s.values, err = ints(s.values, typ, v, b)
				case 3:
					var l rawLabel
					err = walkMessage(b, func(num, typ int, v uint64, b []byte) error {
						switch num {
						case 1:
							l.key = int64(v)
						case 2:
							l.str = int64(v)
						case 3:
							l.num = int64(v)
						}
						return nil
					})
					s.labels = append(s.labels, l)
				}
				return err
			})
			if err != nil {
				return err
			}
			raws = append(raws, s)
		case 4: // location
			var id uint64
			var fns []uint64
			err := walkMessage(b, func(num, typ int, v uint64, b []byte) error {
				switch num {
				case 1:
					id = v
				case 4: // line
					return walkMessage(b, func(num, typ int, v uint64, b []byte) error {
						if num == 1 {
							fns = append(fns, v)
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			locFns[id] = fns
		case 5: // function
			var id uint64
			var name int64
			err := walkMessage(b, func(num, typ int, v uint64, b []byte) error {
				switch num {
				case 1:
					id = v
				case 2:
					name = int64(v)
				}
				return nil
			})
			if err != nil {
				return err
			}
			funcs[id] = name
		case 6: // string_table
			strtab = append(strtab, string(b))
		case 9:
			p.TimeNanos = int64(v)
		case 10:
			p.DurationNanos = int64(v)
		case 11:
			vt, err := parseValueTypeRaw(b)
			if err != nil {
				return err
			}
			periodType = vt
		case 12:
			p.Period = int64(v)
		case 14:
			defaultType = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i int64) string {
		if i < 0 || i >= int64(len(strtab)) {
			return ""
		}
		return strtab[i]
	}
	for _, vt := range sampleTypes {
		p.SampleType = append(p.SampleType, ValueType{Type: str(vt.key), Unit: str(vt.str)})
	}
	p.PeriodType = ValueType{Type: str(periodType.key), Unit: str(periodType.str)}
	p.DefaultSampleType = str(defaultType)

	p.Samples = make([]Sample, 0, len(raws))
	for _, rs := range raws {
		s := Sample{Values: rs.values}
		for _, lid := range rs.locs {
			for _, fid := range locFns[uint64(lid)] {
				if name := str(funcs[fid]); name != "" {
					s.Stack = append(s.Stack, name)
				}
			}
		}
		for _, l := range rs.labels {
			k := str(l.key)
			if k == "" {
				continue
			}
			if l.str != 0 {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[k] = str(l.str)
			} else {
				if s.NumLabels == nil {
					s.NumLabels = map[string]int64{}
				}
				s.NumLabels[k] = l.num
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// parseValueTypeRaw decodes a ValueType message into its string-table refs.
func parseValueTypeRaw(b []byte) (rawLabel, error) {
	var vt rawLabel
	err := walkMessage(b, func(num, typ int, v uint64, b []byte) error {
		switch num {
		case 1:
			vt.key = int64(v)
		case 2:
			vt.str = int64(v)
		}
		return nil
	})
	return vt, err
}
