// Package graph implements the edge-labeled directed graphs that parametric
// regular path queries run on (Liu et al., PLDI 2004, Section 2.4): a set of
// labeled edges ⟨v1, el, v2⟩ with a distinguished start vertex, plus the
// supporting operations the paper uses — reversal for backward queries,
// strongly connected components for SCC-ordered processing (Section 5.3),
// and query-relevant compaction (Section 5.3).
//
// # Concurrency
//
// A Graph is read-mostly: construction (Vertex, AddEdge*, InternLabel,
// SetStart, the readers in io.go and the front ends) must happen before any
// query runs and is not safe for concurrent use. Once built, every accessor
// — Out, Labels, Label, NumVertices, NumEdges, Start, VertexName, SCC — is a
// pure read of immutable state and is safe to call from any number of
// goroutines simultaneously; the parallel existential solver
// (internal/core, Options.Workers > 1) relies on this to share one Graph
// across its workers without locks. Mutating a graph while a query runs on
// it is a data race.
package graph

import (
	"fmt"

	"rpq/internal/label"
)

// Edge is one outgoing edge: the edge label (ground term), its dense label
// id within the graph, and the target vertex.
type Edge struct {
	Label   *label.CTerm
	LabelID int32
	To      int32
}

// Graph is an edge-labeled directed graph with interned vertex names and
// edge labels. The zero value is not usable; construct with New.
type Graph struct {
	// U is the universe of constructor and symbol names shared with the
	// patterns compiled against this graph.
	U *label.Universe

	verts    label.Interner
	adj      [][]Edge
	labels   []*label.CTerm
	labelIDs map[string]int32
	numEdges int
	start    int32
}

// New returns an empty graph over a fresh universe.
func New() *Graph { return NewIn(label.NewUniverse()) }

// NewIn returns an empty graph over an existing universe.
func NewIn(u *label.Universe) *Graph {
	return &Graph{U: u, labelIDs: map[string]int32{}, start: -1}
}

// Vertex interns a vertex name and returns its id.
func (g *Graph) Vertex(name string) int32 {
	v := g.verts.Intern(name)
	for int(v) >= len(g.adj) {
		g.adj = append(g.adj, nil)
	}
	return v
}

// LookupVertex returns the id of name if present.
func (g *Graph) LookupVertex(name string) (int32, bool) { return g.verts.Lookup(name) }

// VertexName returns the name of vertex v.
func (g *Graph) VertexName(v int32) string { return g.verts.Name(v) }

// NumVertices reports the number of vertices ("verts" in Figure 2).
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges reports the number of edges, |G| in the complexity formulas.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumLabels reports the number of distinct edge labels ("edgelabels").
func (g *Graph) NumLabels() int { return len(g.labels) }

// Labels returns the distinct edge labels in label-id order. The slice is
// owned by the graph.
func (g *Graph) Labels() []*label.CTerm { return g.labels }

// Label returns the edge label with the given id.
func (g *Graph) Label(id int32) *label.CTerm { return g.labels[id] }

// SetStart sets the distinguished start vertex v0.
func (g *Graph) SetStart(v int32) { g.start = v }

// Start returns the start vertex, or -1 if unset.
func (g *Graph) Start() int32 { return g.start }

// InternLabel interns a compiled ground label, returning its dense id.
func (g *Graph) InternLabel(c *label.CTerm) int32 {
	if id, ok := g.labelIDs[c.Key()]; ok {
		return id
	}
	id := int32(len(g.labels))
	g.labelIDs[c.Key()] = id
	g.labels = append(g.labels, c)
	return id
}

// AddEdgeC adds an edge with an already compiled ground label.
func (g *Graph) AddEdgeC(from int32, c *label.CTerm, to int32) {
	if !c.IsGround() {
		panic(fmt.Sprintf("graph: edge label %s is not ground", c))
	}
	id := g.InternLabel(c)
	g.adj[from] = append(g.adj[from], Edge{Label: c, LabelID: id, To: to})
	g.numEdges++
}

// AddEdge compiles the ground term lbl against the graph's universe and adds
// the edge.
func (g *Graph) AddEdge(from int32, lbl *label.Term, to int32) error {
	c, err := label.CompileGround(lbl, g.U)
	if err != nil {
		return err
	}
	g.AddEdgeC(from, c, to)
	return nil
}

// AddEdgeStr parses lbl as a ground label and adds an edge between named
// vertices, interning them as needed.
func (g *Graph) AddEdgeStr(from, lbl, to string) error {
	t, err := label.Parse(lbl, label.GroundMode)
	if err != nil {
		return err
	}
	return g.AddEdge(g.Vertex(from), t, g.Vertex(to))
}

// MustAddEdgeStr is AddEdgeStr that panics on error.
func (g *Graph) MustAddEdgeStr(from, lbl, to string) {
	if err := g.AddEdgeStr(from, lbl, to); err != nil {
		panic(err)
	}
}

// Out returns the outgoing edges of v. The slice is owned by the graph;
// callers must not mutate it. After construction it is immutable, so
// concurrent readers need no synchronization (see the package comment).
func (g *Graph) Out(v int32) []Edge { return g.adj[v] }

// AddVertexLabel attaches a label to a vertex as a self-loop edge — the
// encoding Section 5.4 of the paper points at for queries that consult
// vertices directly ("queries can use also vertices and vertex labels"),
// and the one its own LTS transformation uses (state(v) self-loops,
// Section 2.3). Self-loop labels can be read by a query any number of
// times without advancing along the path; for universal queries prefer the
// splitting transformation (see package lts), since a self-loop also
// creates paths that skip the label.
func (g *Graph) AddVertexLabel(v int32, lbl *label.Term) error {
	c, err := label.CompileGround(lbl, g.U)
	if err != nil {
		return err
	}
	g.AddEdgeC(v, c, v)
	return nil
}

// AddVertexLabelStr parses lbl as a ground label and attaches it to the
// named vertex.
func (g *Graph) AddVertexLabelStr(vertex, lbl string) error {
	t, err := label.Parse(lbl, label.GroundMode)
	if err != nil {
		return err
	}
	return g.AddVertexLabel(g.Vertex(vertex), t)
}

// Reverse returns the graph with every edge reversed, sharing the universe,
// vertex numbering, and label interning. The paper evaluates backward
// queries by reversing all edges before the query (Section 2.2).
func (g *Graph) Reverse() *Graph {
	r := NewIn(g.U)
	// Copy vertex interning so ids coincide.
	for v := 0; v < g.NumVertices(); v++ {
		r.Vertex(g.VertexName(int32(v)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.adj[v] {
			r.AddEdgeC(e.To, e.Label, int32(v))
		}
	}
	r.start = g.start
	return r
}

// Reachable returns the set of vertices reachable from v0 (including v0).
func (g *Graph) Reachable(v0 int32) []bool {
	seen := make([]bool, g.NumVertices())
	seen[v0] = true
	stack := []int32{v0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// MaxOutDegree returns the largest out-degree, a determinant of
// precomputation's benefit (Section 6).
func (g *Graph) MaxOutDegree() int {
	m := 0
	for _, es := range g.adj {
		if len(es) > m {
			m = len(es)
		}
	}
	return m
}
