package graph

import (
	"math/rand"
	"strings"
	"testing"

	"rpq/internal/label"
)

// figure1 is the program graph of the paper's Figure 1.
const figure1 = `
# Figure 1 program graph
start v1
edge v1 def(a) v2
edge v2 use(a) v3
edge v3 def(a) v4
edge v4 use(b) v5
edge v5 def(b) v6
edge v6 use(a) v7
edge v6 use(c) v7
`

func TestReadWriteRoundTrip(t *testing.T) {
	g, err := ReadString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 7 || g.NumEdges() != 7 {
		t.Fatalf("verts=%d edges=%d, want 7/7", g.NumVertices(), g.NumEdges())
	}
	if g.Start() < 0 || g.VertexName(g.Start()) != "v1" {
		t.Fatalf("start = %d", g.Start())
	}
	if g.NumLabels() != 5 {
		t.Fatalf("distinct labels = %d, want 5", g.NumLabels())
	}
	// Round trip.
	back, err := ReadString(g.String())
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() ||
		back.NumLabels() != g.NumLabels() {
		t.Fatalf("round trip changed the graph")
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"start",
		"edge v1 def(a)",
		"edge v1 def( v2",
		"banana v1 v2",
		"edge v1 ) v2",
	}
	for _, in := range bad {
		if _, err := ReadString(in); err == nil {
			t.Errorf("ReadString(%q) succeeded, want error", in)
		}
	}
}

func TestVertexInterning(t *testing.T) {
	g := New()
	a := g.Vertex("a")
	b := g.Vertex("b")
	if a == b {
		t.Fatalf("distinct vertices share id")
	}
	if g.Vertex("a") != a {
		t.Fatalf("re-interning changed id")
	}
	if got, ok := g.LookupVertex("b"); !ok || got != b {
		t.Fatalf("LookupVertex failed")
	}
	if _, ok := g.LookupVertex("zzz"); ok {
		t.Fatalf("LookupVertex of absent vertex succeeded")
	}
}

func TestLabelInterning(t *testing.T) {
	g := MustReadString(figure1)
	seen := map[int32]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(int32(v)) {
			seen[e.LabelID] = true
			if g.Label(e.LabelID).Key() != e.Label.Key() {
				t.Fatalf("label id mapping broken")
			}
		}
	}
	if len(seen) != g.NumLabels() {
		t.Fatalf("label ids not dense: %d vs %d", len(seen), g.NumLabels())
	}
}

func TestReverse(t *testing.T) {
	g := MustReadString(figure1)
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatalf("reverse changed sizes")
	}
	// Edge (v1,def(a),v2) becomes (v2,def(a),v1).
	v1, _ := r.LookupVertex("v1")
	v2, _ := r.LookupVertex("v2")
	found := false
	for _, e := range r.Out(v2) {
		if e.To == v1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reversed edge missing")
	}
	// Reverse is an involution (same edge multiset).
	rr := r.Reverse()
	if rr.String() != g.String() {
		t.Fatalf("double reverse differs:\n%s\nvs\n%s", rr.String(), g.String())
	}
}

func TestReachable(t *testing.T) {
	g := MustReadString(figure1)
	seen := g.Reachable(g.Start())
	for v := 0; v < g.NumVertices(); v++ {
		if !seen[v] {
			t.Errorf("vertex %s unreachable in a chain graph", g.VertexName(int32(v)))
		}
	}
	g2 := MustReadString("start a\nedge a f() b\nedge c f() d\n")
	seen = g2.Reachable(g2.Start())
	c, _ := g2.LookupVertex("c")
	if seen[c] {
		t.Errorf("disconnected vertex reported reachable")
	}
}

func TestSCCOnKnownGraph(t *testing.T) {
	// a -> b -> c -> a forms one SCC; d alone; c -> d.
	g := MustReadString(`
start a
edge a f() b
edge b f() c
edge c f() a
edge c f() d
`)
	comp, comps := g.SCC()
	a, _ := g.LookupVertex("a")
	b, _ := g.LookupVertex("b")
	c, _ := g.LookupVertex("c")
	d, _ := g.LookupVertex("d")
	if comp[a] != comp[b] || comp[b] != comp[c] {
		t.Fatalf("cycle not in one component: %v", comp)
	}
	if comp[d] == comp[a] {
		t.Fatalf("d merged into the cycle")
	}
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	// Tarjan emits reverse topological order: d's component first.
	if comp[d] != 0 {
		t.Fatalf("sink component should be emitted first, comp[d]=%d", comp[d])
	}
	// Topological order flips that.
	comp2, comps2 := g.SCCTopoOrder()
	if comp2[a] != 0 || comp2[d] != 1 || len(comps2[0]) != 3 {
		t.Fatalf("SCCTopoOrder wrong: %v", comp2)
	}
}

func TestSCCRandomValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := 2 + rng.Intn(30)
		for i := 0; i < n; i++ {
			g.Vertex(vname(i))
		}
		lbl := label.MustParse("e()", label.GroundMode)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			_ = g.AddEdge(int32(rng.Intn(n)), lbl, int32(rng.Intn(n)))
		}
		comp, comps := g.SCC()
		// Every vertex is in exactly one component.
		count := 0
		for _, c := range comps {
			count += len(c)
			for _, v := range c {
				if comp[v] != comp[c[0]] {
					t.Fatalf("component membership inconsistent")
				}
			}
		}
		if count != n {
			t.Fatalf("components cover %d of %d vertices", count, n)
		}
		// Edge condition: comp[from] >= comp[to] in Tarjan (reverse topo)
		// numbering.
		for v := 0; v < n; v++ {
			for _, e := range g.Out(int32(v)) {
				if comp[v] < comp[e.To] {
					t.Fatalf("edge %d->%d violates reverse topological numbering (%d < %d)",
						v, e.To, comp[v], comp[e.To])
				}
			}
		}
		// Mutual reachability within components.
		for _, c := range comps {
			if len(c) < 2 {
				continue
			}
			seen := g.Reachable(c[0])
			for _, v := range c[1:] {
				if !seen[v] {
					t.Fatalf("component member %d not reachable from %d", v, c[0])
				}
			}
		}
	}
}

func vname(i int) string {
	return "n" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + string(rune('0'+i/26%10))
}

func TestCompactFor(t *testing.T) {
	g := MustReadString(`
start v1
edge v1 def(a) v2
edge v2 irrelevant() v3
edge v3 use(a) v4
`)
	u := g.U
	ps := &label.ParamSpace{}
	tls := []*label.CTerm{
		label.MustCompile(label.MustParse("def(x)", label.PatternMode), u, ps),
		label.MustCompile(label.MustParse("use(x)", label.PatternMode), u, ps),
	}
	c := g.CompactFor(tls)
	if c.NumEdges() != 2 {
		t.Fatalf("compacted to %d edges, want 2", c.NumEdges())
	}
	if c.NumVertices() != g.NumVertices() {
		t.Fatalf("compaction renumbered vertices")
	}
	// A wildcard keeps everything.
	tls = append(tls, label.MustCompile(label.Wildcard(), u, ps))
	if got := g.CompactFor(tls).NumEdges(); got != 3 {
		t.Fatalf("wildcard compaction dropped edges: %d", got)
	}
	// A negation !def(x) can match irrelevant() too.
	neg := []*label.CTerm{label.MustCompile(label.MustParse("!def(x)", label.PatternMode), u, ps)}
	if got := g.CompactFor(neg).NumEdges(); got != 1 {
		// !def(x) matches use(a) and irrelevant() but not def(a)... it does
		// match def(a) under x↦other, via disagree. So all 3 are relevant.
		t.Logf("note: negation keeps %d edges", got)
	}
}

func TestMaxOutDegree(t *testing.T) {
	g := MustReadString(figure1)
	if g.MaxOutDegree() != 2 {
		t.Fatalf("MaxOutDegree = %d, want 2", g.MaxOutDegree())
	}
}

func TestEdgeLabelWithSpacesInFile(t *testing.T) {
	g, err := ReadString("edge v1 def( a , 5 ) v2\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}
