package graph

import "rpq/internal/label"

// CompactFor returns a copy of the graph containing only the edges whose
// labels some transition label of the query could possibly match — the
// sparsity compaction of Section 5.3. Vertex ids are preserved.
//
// Soundness: an edge no transition label can match (under any substitution)
// can never be traversed by a matching path, so removing it does not change
// the result of an EXISTENTIAL query. It does change universal queries
// (which quantify over all paths), so the solver only applies compaction to
// existential ones.
//
// The relevance test is conservative: AD-compatible labels use the
// agree/disagree matcher's satisfiability; labels outside that fragment make
// every edge relevant.
func (g *Graph) CompactFor(translabels []*label.CTerm) *Graph {
	relevant := func(el *label.CTerm) bool {
		for _, tl := range translabels {
			if !tl.ADCompatible() {
				return true
			}
			if label.MatchAD(tl, el).OK {
				return true
			}
		}
		return false
	}
	keep := make([]bool, g.NumLabels())
	for id, el := range g.labels {
		keep[id] = relevant(el)
	}
	out := NewIn(g.U)
	for v := 0; v < g.NumVertices(); v++ {
		out.Vertex(g.VertexName(int32(v)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.adj[v] {
			if keep[e.LabelID] {
				out.AddEdgeC(int32(v), e.Label, e.To)
			}
		}
	}
	out.start = g.start
	return out
}
