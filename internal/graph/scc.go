package graph

// SCC computes the strongly connected components with Tarjan's algorithm
// (iterative, to cope with deep graphs). It returns comp, mapping each
// vertex to its component id, and comps, the components listed in reverse
// topological order of the condensation — i.e. if there is an edge from a
// vertex of comps[i] to a vertex of comps[j] with i ≠ j, then j < i.
//
// Section 5.3 of the paper suggests visiting vertices in a topological order
// of the SCCs and de-allocating per-SCC data when a component is finished;
// the solver's SCC-ordered mode uses this decomposition.
func (g *Graph) SCC() (comp []int32, comps [][]int32) {
	n := g.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var next int32

	type frame struct {
		v  int32
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		call := []frame{{v: int32(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			edges := g.adj[v]
			advanced := false
			for f.ei < len(edges) {
				w := edges[f.ei].To
				f.ei++
				if index[w] < 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				var members []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(len(comps))
					members = append(members, w)
					if w == v {
						break
					}
				}
				comps = append(comps, members)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, comps
}

// SCCTopoOrder returns the components in topological order (sources first):
// the reverse of the order Tarjan emits.
func (g *Graph) SCCTopoOrder() (comp []int32, comps [][]int32) {
	comp, rev := g.SCC()
	comps = make([][]int32, len(rev))
	for i, c := range rev {
		comps[len(rev)-1-i] = c
	}
	// Renumber comp to match the reversed order.
	for v := range comp {
		comp[v] = int32(len(rev)-1) - comp[v]
	}
	return comp, comps
}
