package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"rpq/internal/label"
)

func benchGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	labels := make([]*label.Term, 12)
	for i := range labels {
		labels[i] = label.MustParse(fmt.Sprintf("op%d(a%d)", i%4, i), label.GroundMode)
	}
	for i := 0; i < n; i++ {
		g.Vertex(fmt.Sprintf("v%d", i))
	}
	g.SetStart(0)
	for i := 0; i < m; i++ {
		if err := g.AddEdge(int32(rng.Intn(n)), labels[rng.Intn(len(labels))], int32(rng.Intn(n))); err != nil {
			panic(err)
		}
	}
	return g
}

func BenchmarkSCC(b *testing.B) {
	g := benchGraph(5000, 20000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SCC()
	}
}

func BenchmarkReverse(b *testing.B) {
	g := benchGraph(5000, 20000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reverse()
	}
}

func BenchmarkReachable(b *testing.B) {
	g := benchGraph(5000, 20000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reachable(g.Start())
	}
}

func BenchmarkReadWrite(b *testing.B) {
	g := benchGraph(1000, 4000, 4)
	text := g.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadString(text); err != nil {
			b.Fatal(err)
		}
	}
}
