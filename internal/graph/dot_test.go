package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := MustReadString(`
start v1
edge v1 def(a) v2
edge v2 use(a) v1
`)
	var b strings.Builder
	v2, _ := g.LookupVertex("v2")
	if err := g.WriteDOT(&b, "my graph!", map[int32]bool{v2: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph my_graph_ {",
		`n0 [label="v1", shape=doublecircle]`,
		"style=filled",
		`n0 -> n1 [label="def('a')"]`,
		`n1 -> n0 [label="use('a')"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Empty name defaults.
	var b2 strings.Builder
	if err := g.WriteDOT(&b2, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b2.String(), "digraph G {") {
		t.Errorf("default name: %q", b2.String()[:20])
	}
}

func TestDotID(t *testing.T) {
	if dotID("a-b c") != "a_b_c" || dotID("") != "G" || dotID("ok_1") != "ok_1" {
		t.Errorf("dotID broken: %q %q %q", dotID("a-b c"), dotID(""), dotID("ok_1"))
	}
}
