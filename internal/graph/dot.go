package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits the graph in Graphviz DOT format for visualization. The
// start vertex is drawn with a double circle; highlight (optional, may be
// nil) marks vertices to fill — typically query answers.
func (g *Graph) WriteDOT(w io.Writer, name string, highlight map[int32]bool) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "digraph %s {\n", dotID(name))
	fmt.Fprintf(bw, "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n  edge [fontsize=9];\n")
	for v := 0; v < g.NumVertices(); v++ {
		attrs := []string{fmt.Sprintf("label=%q", g.VertexName(int32(v)))}
		if int32(v) == g.start {
			attrs = append(attrs, "shape=doublecircle")
		}
		if highlight != nil && highlight[int32(v)] {
			attrs = append(attrs, "style=filled", "fillcolor=lightgoldenrod")
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.adj[v] {
			fmt.Fprintf(bw, "  n%d -> n%d [label=%q];\n", v, e.To, e.Label.Format(g.U, nil))
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// dotID makes a string safe as a DOT identifier.
func dotID(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9'):
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "G"
	}
	return b.String()
}
