package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rpq/internal/label"
)

// The textual graph format, one directive per line:
//
//	# comment
//	start <vertex>
//	edge <src> <label> <dst>
//
// Vertex names are identifiers; labels are ground terms such as def(a),
// use(x,17), exit(). Example (the program graph of Figure 1):
//
//	start v1
//	edge v1 def(a) v2
//	edge v2 use(a) v3
//	edge v3 def(a) v4
//	edge v4 use(b) v5

// Read parses the textual graph format.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "start":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: start takes one vertex", lineNo)
			}
			g.SetStart(g.Vertex(fields[1]))
		case "edge":
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: line %d: edge takes src, label, dst", lineNo)
			}
			// The label may contain spaces: the destination is the last
			// field, the label everything between.
			src := fields[1]
			dst := fields[len(fields)-1]
			lbl := strings.Join(fields[2:len(fields)-1], " ")
			if !label.ParseArgsHint(lbl) {
				return nil, fmt.Errorf("graph: line %d: bad label %q", lineNo, lbl)
			}
			if err := g.AddEdgeStr(src, lbl, dst); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadString parses a graph from a string.
func ReadString(s string) (*Graph, error) { return Read(strings.NewReader(s)) }

// MustReadString is ReadString that panics on error.
func MustReadString(s string) *Graph {
	g, err := ReadString(s)
	if err != nil {
		panic(err)
	}
	return g
}

// Write emits the graph in the textual format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if g.start >= 0 {
		fmt.Fprintf(bw, "start %s\n", g.VertexName(g.start))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.adj[v] {
			fmt.Fprintf(bw, "edge %s %s %s\n",
				g.VertexName(int32(v)), e.Label.Format(g.U, nil), g.VertexName(e.To))
		}
	}
	return bw.Flush()
}

// String renders the graph in the textual format.
func (g *Graph) String() string {
	var b strings.Builder
	_ = g.Write(&b)
	return b.String()
}
