package automata

import (
	"testing"

	"rpq/internal/label"
	"rpq/internal/pattern"
)

func BenchmarkFromPattern(b *testing.B) {
	e := pattern.MustParse("(eps | _* close(f)) (!open(f))* access(f)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := label.NewUniverse()
		ps := &label.ParamSpace{}
		if _, err := FromPattern(e, u, ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeterminize(b *testing.B) {
	u := label.NewUniverse()
	ps := &label.ParamSpace{}
	n := MustFromPattern(pattern.MustParse("_* def(x,c) (!(def(x)|def(x,_)))*"), u, ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Determinize(n)
	}
}

func BenchmarkDeterminizeGround(b *testing.B) {
	e := newEnv()
	n := e.nfa("(!def('v7'))* use('v7',_)")
	// An alphabet the size of a mid-sized program's distinct labels.
	var alphabet []*label.CTerm
	for i := 0; i < 200; i++ {
		alphabet = append(alphabet, e.el(labelName(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeterminizeGround(n, alphabet, nil)
	}
}

func labelName(i int) string {
	switch i % 3 {
	case 0:
		return "def(v" + itoa(i/3) + ")"
	case 1:
		return "use(v" + itoa(i/3) + "," + itoa(i) + ")"
	default:
		return "nop" + itoa(i) + "()"
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func BenchmarkMinimize(b *testing.B) {
	e := newEnv()
	n := e.nfa("(open('f') (access('f'))* close('f'))*")
	var alphabet []*label.CTerm
	for _, s := range []string{"open(f)", "access(f)", "close(f)", "nop()", "def(a)", "use(a)"} {
		alphabet = append(alphabet, e.el(s))
	}
	d := DeterminizeGround(n, alphabet, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Minimize()
	}
}

func BenchmarkComplete(b *testing.B) {
	e := newEnv()
	d := Determinize(e.nfa("(!def(x))* use(x,_)"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Complete(d)
	}
}
