package automata

import (
	"math/rand"
	"testing"

	"rpq/internal/label"
	"rpq/internal/pattern"
)

type env struct {
	u  *label.Universe
	ps *label.ParamSpace
}

func newEnv() *env { return &env{u: label.NewUniverse(), ps: &label.ParamSpace{}} }

func (e *env) nfa(pat string) *NFA {
	return MustFromPattern(pattern.MustParse(pat), e.u, e.ps)
}

func (e *env) el(s string) *label.CTerm {
	c, err := label.CompileGround(label.MustParse(s, label.GroundMode), e.u)
	if err != nil {
		panic(err)
	}
	return c
}

// acceptsNFA simulates the NFA on a word of ground labels under subst.
func acceptsNFA(n *NFA, word []*label.CTerm, subst []int32) bool {
	cur := map[int32]bool{n.Start: true}
	for _, el := range word {
		next := map[int32]bool{}
		for s := range cur {
			for _, tr := range n.Trans[s] {
				if label.MatchGround(tr.Label, el, subst) {
					next[tr.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if n.Final[s] {
			return true
		}
	}
	return false
}

func TestNFABasicShapes(t *testing.T) {
	e := newEnv()
	n := e.nfa("(!def(x))* use(x)")
	if n.AcceptsEmpty() {
		t.Errorf("(!def(x))* use(x) should not accept the empty path")
	}
	if got := len(n.FinalStates()); got < 1 {
		t.Errorf("no final states")
	}
	if e.nfa("_*").AcceptsEmpty() != true {
		t.Errorf("_* should accept the empty path")
	}
	if e.nfa("eps").AcceptsEmpty() != true {
		t.Errorf("eps should accept the empty path")
	}
	if e.nfa("def(x)?").AcceptsEmpty() != true {
		t.Errorf("def(x)? should accept the empty path")
	}
	if e.nfa("def(x)+").AcceptsEmpty() {
		t.Errorf("def(x)+ should not accept the empty path")
	}
	// No ε transitions remain and every state's transitions carry labels.
	for s := 0; s < n.NumStates; s++ {
		for _, tr := range n.Trans[s] {
			if tr.Label == nil {
				t.Fatalf("ε transition survived elimination")
			}
		}
	}
}

func TestNFAWordAcceptance(t *testing.T) {
	e := newEnv()
	n := e.nfa("(!def(x))* use(x)")
	x, _ := e.ps.Lookup("x")
	sub := make([]int32, e.ps.Len())
	def := e.el("def(a)")
	useA := e.el("use(a)")
	useB := e.el("use(b)")
	sub[x] = e.u.Syms.Intern("b")
	// Path def(a) use(a) def(a) use(b) matches under {x↦b} (Figure 1).
	if !acceptsNFA(n, []*label.CTerm{def, useA, def, useB}, sub) {
		t.Errorf("paper's Figure 1 path should match under {x↦b}")
	}
	sub[x] = e.u.Syms.Intern("a")
	if acceptsNFA(n, []*label.CTerm{def, useA}, sub) {
		t.Errorf("def(a) use(a) should not match under {x↦a}")
	}
	if !acceptsNFA(n, []*label.CTerm{useA}, sub) {
		t.Errorf("use(a) should match under {x↦a}")
	}
}

func TestNFAPositiveLabelAlternationSplit(t *testing.T) {
	e := newEnv()
	// Compile a pattern with a positive KOr label via the API.
	or := label.Or(label.App("a"), label.App("b"))
	n := MustFromPattern(pattern.L(or), e.u, e.ps)
	for s := 0; s < n.NumStates; s++ {
		for _, tr := range n.Trans[s] {
			if tr.Label.Kind == label.KOr {
				t.Fatalf("positive KOr label reached the automaton")
			}
		}
	}
	if !acceptsNFA(n, []*label.CTerm{e.el("a()")}, nil) ||
		!acceptsNFA(n, []*label.CTerm{e.el("b()")}, nil) {
		t.Errorf("split alternation lost a branch")
	}
	if acceptsNFA(n, []*label.CTerm{e.el("c()")}, nil) {
		t.Errorf("split alternation accepts too much")
	}
}

func TestDeterminize(t *testing.T) {
	e := newEnv()
	n := e.nfa("_* state(s) act(_)")
	d := Determinize(n)
	if !IsLabelDeterministic(d) {
		t.Fatalf("Determinize output not label-deterministic:\n%s", d)
	}
	// Language preserved on random ground words.
	letters := []*label.CTerm{e.el("state(v1)"), e.el("state(v2)"), e.el("act(p)"), e.el("other()")}
	s, _ := e.ps.Lookup("s")
	rng := rand.New(rand.NewSource(11))
	sub := make([]int32, e.ps.Len())
	for trial := 0; trial < 2000; trial++ {
		var word []*label.CTerm
		for i := rng.Intn(6); i > 0; i-- {
			word = append(word, letters[rng.Intn(len(letters))])
		}
		sub[s] = int32(rng.Intn(e.u.NumSymbols()))
		if acceptsNFA(n, word, sub) != acceptsNFA(d, word, sub) {
			t.Fatalf("NFA and DFA disagree on %v under %v", word, sub)
		}
	}
}

func TestDeterminizeIncomplete(t *testing.T) {
	e := newEnv()
	// The DFA must stay incomplete: a() b() has no transition on c().
	d := Determinize(e.nfa("a() b()"))
	total := 0
	for s := 0; s < d.NumStates; s++ {
		total += len(d.Trans[s])
	}
	if total != 2 {
		t.Errorf("incomplete DFA has %d transitions, want 2 (no trap state)", total)
	}
}

func randWordIdx(rng *rand.Rand, n, maxLen int) []int {
	w := make([]int, rng.Intn(maxLen))
	for i := range w {
		w[i] = rng.Intn(n)
	}
	return w
}

func TestGroundDFAEquivalence(t *testing.T) {
	e := newEnv()
	// Ground patterns (after instantiation) over a small alphabet.
	pats := []string{
		"_* state('v1') act(_)",
		"(!def('a'))* use('a')",
		"(open('f') (access('f'))* close('f'))*",
		"_* a() (b()|c())* d()",
		"(eps | _* close('f')) (!open('f'))* access('f')",
	}
	alphabet := []*label.CTerm{
		e.el("state(v1)"), e.el("act(p)"), e.el("def(a)"), e.el("use(a)"),
		e.el("open(f)"), e.el("access(f)"), e.el("close(f)"),
		e.el("a()"), e.el("b()"), e.el("c()"), e.el("d()"),
	}
	rng := rand.New(rand.NewSource(5))
	for _, ps := range pats {
		n := e.nfa(ps)
		d := DeterminizeGround(n, alphabet, nil)
		m := d.Minimize()
		if m.NumStates > d.NumStates {
			t.Errorf("%s: minimized has more states (%d > %d)", ps, m.NumStates, d.NumStates)
		}
		for trial := 0; trial < 1500; trial++ {
			idx := randWordIdx(rng, len(alphabet), 7)
			word := make([]*label.CTerm, len(idx))
			for i, a := range idx {
				word[i] = alphabet[a]
			}
			want := acceptsNFA(n, word, nil)
			run := func(g *GroundDFA) bool {
				cur := g.Start
				for _, a := range idx {
					cur = g.Step(cur, int32(a))
					if cur < 0 {
						return false
					}
				}
				return g.Final[cur]
			}
			if got := run(d); got != want {
				t.Fatalf("%s: GroundDFA disagrees with NFA on %v (got %v want %v)", ps, idx, got, want)
			}
			if got := run(m); got != want {
				t.Fatalf("%s: minimized GroundDFA disagrees on %v (got %v want %v)", ps, idx, got, want)
			}
		}
	}
}

func TestGroundDFAWithSubstitution(t *testing.T) {
	e := newEnv()
	n := e.nfa("(!def(x))* use(x)")
	alphabet := []*label.CTerm{e.el("def(a)"), e.el("def(b)"), e.el("use(a)"), e.el("use(b)")}
	x, _ := e.ps.Lookup("x")
	sub := make([]int32, e.ps.Len())
	sub[x], _ = e.u.Syms.Lookup("a")
	d := DeterminizeGround(n, alphabet, sub)
	run := func(idx ...int) bool {
		cur := d.Start
		for _, a := range idx {
			cur = d.Step(cur, int32(a))
			if cur < 0 {
				return false
			}
		}
		return d.Final[cur]
	}
	if !run(1, 2) { // def(b) use(a) matches with x↦a
		t.Errorf("def(b) use(a) should be accepted under {x↦a}")
	}
	if run(0, 2) { // def(a) use(a) does not match
		t.Errorf("def(a) use(a) accepted under {x↦a}")
	}
	if run(1, 3) { // def(b) use(b) needs x↦b
		t.Errorf("def(b) use(b) accepted under {x↦a}")
	}
}

func TestMinimizeCollapsesNothingAutomaton(t *testing.T) {
	e := newEnv()
	n := e.nfa("a()")
	alphabet := []*label.CTerm{e.el("b()")} // a() is not in the alphabet
	d := DeterminizeGround(n, alphabet, nil)
	m := d.Minimize()
	if m.NumStates != 1 || m.Final[0] {
		t.Errorf("automaton accepting nothing should minimize to one non-final state, got %d states", m.NumStates)
	}
}

func TestNFAStats(t *testing.T) {
	e := newEnv()
	n := e.nfa("(!def(x))* use(x)")
	if n.NumTrans() == 0 || n.MaxLabelSize() < 2 || len(n.Labels) != 2 {
		t.Errorf("stats: trans=%d labelsize=%d labels=%d", n.NumTrans(), n.MaxLabelSize(), len(n.Labels))
	}
}
