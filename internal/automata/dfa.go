package automata

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Determinize applies the subset construction treating transition labels as
// opaque alphabet letters (identified by their canonical keys) and returns
// the result as an NFA value that is deterministic per label: no state has
// two outgoing transitions with the same label.
//
// This is the conversion used before the universal query algorithms of
// Section 4. Because parametric labels can overlap (a wildcard and def(x);
// or use(x) and use(y) under {x↦a, y↦a}), the result may still be
// effectively nondeterministic at query time; the solver's runtime
// determinism check catches that. The automaton is left incomplete — no trap
// state is added; the solver's badstate rules (iii)/(iv) handle paths with
// no matching transition (the paper's improvement over requiring complete
// automata).
func Determinize(n *NFA) *NFA {
	t0 := time.Now()
	type setKey = string
	encode := func(set []int32) setKey {
		var b strings.Builder
		for i, s := range set {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		return b.String()
	}

	startSet := []int32{n.Start}
	ids := map[setKey]int32{encode(startSet): 0}
	sets := [][]int32{startSet}
	out := &NFA{Start: 0, LabelID: map[string]int32{}}
	out.Final = append(out.Final, n.Final[n.Start])
	out.Trans = append(out.Trans, nil)

	for work := []int32{0}; len(work) > 0; {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		set := sets[cur]
		// Group targets by label key.
		byLabel := map[string][]int32{}
		labelOf := map[string]*Transition{}
		var order []string
		for _, s := range set {
			for i := range n.Trans[s] {
				tr := &n.Trans[s][i]
				k := tr.Label.Key()
				if _, ok := byLabel[k]; !ok {
					order = append(order, k)
					labelOf[k] = tr
				}
				byLabel[k] = append(byLabel[k], tr.To)
			}
		}
		sort.Strings(order)
		for _, k := range order {
			targets := dedupSorted(byLabel[k])
			tk := encode(targets)
			id, ok := ids[tk]
			if !ok {
				id = int32(len(sets))
				ids[tk] = id
				sets = append(sets, targets)
				fin := false
				for _, s := range targets {
					fin = fin || n.Final[s]
				}
				out.Final = append(out.Final, fin)
				out.Trans = append(out.Trans, nil)
				work = append(work, id)
			}
			l := labelOf[k].Label
			out.Trans[cur] = append(out.Trans[cur], Transition{Label: l, To: id})
			if _, ok := out.LabelID[l.Key()]; !ok {
				out.LabelID[l.Key()] = int32(len(out.Labels))
				out.Labels = append(out.Labels, l)
			}
		}
	}
	out.NumStates = len(sets)
	out.BuildWall = time.Since(t0)
	return out
}

func dedupSorted(xs []int32) []int32 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// IsLabelDeterministic reports whether no state has two outgoing transitions
// with structurally equal labels — the property Determinize establishes.
func IsLabelDeterministic(n *NFA) bool {
	for _, ts := range n.Trans {
		seen := map[string]bool{}
		for _, tr := range ts {
			k := tr.Label.Key()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
	}
	return true
}
