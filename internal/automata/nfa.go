// Package automata converts parametric regular-expression patterns into
// finite automata: an ε-free NFA for existential queries (Section 3 of Liu
// et al., PLDI 2004), a DFA by subset construction over opaque transition
// labels for universal queries (Section 4), and an exactly determinized
// automaton over a concrete edge-label alphabet for the enumeration and
// hybrid algorithms.
package automata

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rpq/internal/label"
	"rpq/internal/pattern"
)

// Transition is one labeled transition ⟨s, tl, s'⟩ of an automaton; only the
// target is stored, the source being the index into the transition table.
type Transition struct {
	Label *label.CTerm
	To    int32
}

// NFA is an ε-free nondeterministic finite automaton whose alphabet is
// transition labels. State 0..NumStates-1; transitions are adjacency lists.
type NFA struct {
	Start     int32
	NumStates int
	Final     []bool
	Trans     [][]Transition
	// Labels lists the distinct transition labels by key order of first
	// appearance; LabelID maps a label key to its index ("translabels" in
	// Figure 2 is len(Labels)).
	Labels  []*label.CTerm
	LabelID map[string]int32
	// BuildWall is the wall-clock time spent constructing this automaton
	// (FromPattern or Determinize); the observability layer surfaces it in
	// the compile phase of core.Stats.Phases.
	BuildWall time.Duration
}

// NumTrans returns the total number of transitions, |P| in the paper's
// complexity formulas.
func (n *NFA) NumTrans() int {
	total := 0
	for _, ts := range n.Trans {
		total += len(ts)
	}
	return total
}

// MaxLabelSize returns the largest label size, "labelsize" in Figure 2.
func (n *NFA) MaxLabelSize() int {
	m := 0
	for _, l := range n.Labels {
		if l.Size() > m {
			m = l.Size()
		}
	}
	return m
}

// AcceptsEmpty reports whether the automaton accepts the empty path.
func (n *NFA) AcceptsEmpty() bool { return n.Final[n.Start] }

// epsNFA is the intermediate Thompson automaton with ε-transitions.
type epsNFA struct {
	trans [][]Transition // nil Label means ε
	n     int
}

func (e *epsNFA) state() int32 {
	e.trans = append(e.trans, nil)
	e.n++
	return int32(e.n - 1)
}

func (e *epsNFA) edge(from, to int32, l *label.CTerm) {
	e.trans[from] = append(e.trans[from], Transition{Label: l, To: to})
}

// FromPattern compiles a pattern into an ε-free NFA over the universe u,
// interning parameters into ps. Positive top-level label alternations
// (label.KOr outside a negation) are split into parallel transitions, so the
// matcher only ever sees KOr under a negation.
func FromPattern(e pattern.Expr, u *label.Universe, ps *label.ParamSpace) (*NFA, error) {
	t0 := time.Now()
	en := &epsNFA{}
	start := en.state()
	final := en.state()
	if err := build(en, e, start, final, u, ps); err != nil {
		return nil, err
	}
	nfa := eliminateEps(en, start, final)
	nfa.BuildWall = time.Since(t0)
	return nfa, nil
}

// MustFromPattern is FromPattern that panics on error.
func MustFromPattern(e pattern.Expr, u *label.Universe, ps *label.ParamSpace) *NFA {
	n, err := FromPattern(e, u, ps)
	if err != nil {
		panic(err)
	}
	return n
}

func build(en *epsNFA, e pattern.Expr, from, to int32, u *label.Universe, ps *label.ParamSpace) error {
	switch x := e.(type) {
	case pattern.Epsilon:
		en.edge(from, to, nil)
	case *pattern.Lbl:
		c, err := label.Compile(x.Term, u, ps)
		if err != nil {
			return err
		}
		if c.Kind == label.KOr {
			// Positive label alternation: one transition per alternative.
			for _, alt := range c.Args {
				en.edge(from, to, alt)
			}
		} else {
			en.edge(from, to, c)
		}
	case *pattern.Concat:
		cur := from
		for i, it := range x.Items {
			next := to
			if i < len(x.Items)-1 {
				next = en.state()
			}
			if err := build(en, it, cur, next, u, ps); err != nil {
				return err
			}
			cur = next
		}
		if len(x.Items) == 0 {
			en.edge(from, to, nil)
		}
	case *pattern.Alt:
		for _, it := range x.Items {
			if err := build(en, it, from, to, u, ps); err != nil {
				return err
			}
		}
	case *pattern.Star:
		mid := en.state()
		en.edge(from, mid, nil)
		en.edge(mid, to, nil)
		if err := build(en, x.Sub, mid, mid, u, ps); err != nil {
			return err
		}
	case *pattern.Plus:
		mid := en.state()
		if err := build(en, x.Sub, from, mid, u, ps); err != nil {
			return err
		}
		en.edge(mid, to, nil)
		// Loop back through the body again.
		if err := build(en, x.Sub, mid, mid, u, ps); err != nil {
			return err
		}
	case *pattern.Opt:
		en.edge(from, to, nil)
		if err := build(en, x.Sub, from, to, u, ps); err != nil {
			return err
		}
	default:
		return fmt.Errorf("automata: unknown pattern node %T", e)
	}
	return nil
}

// eliminateEps converts the ε-NFA into an ε-free NFA over the reachable
// states: for each state s and each labeled transition (t, l, t') with t in
// the ε-closure of s, add (s, l, t'); s is final iff its closure contains
// the final state. Unreachable states are dropped and states renumbered.
func eliminateEps(en *epsNFA, start, final int32) *NFA {
	n := en.n
	// ε-closures by DFS.
	closure := make([][]int32, n)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := []int32{int32(s)}
		seen[s] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, tr := range en.trans[cur] {
				if tr.Label == nil && !seen[tr.To] {
					seen[tr.To] = true
					stack = append(stack, tr.To)
				}
			}
		}
		for t := 0; t < n; t++ {
			if seen[t] {
				closure[s] = append(closure[s], int32(t))
			}
		}
	}
	// Build ε-free transitions and finality.
	trans := make([][]Transition, n)
	fin := make([]bool, n)
	for s := 0; s < n; s++ {
		dedup := map[string]bool{}
		for _, c := range closure[s] {
			if c == final {
				fin[s] = true
			}
			for _, tr := range en.trans[c] {
				if tr.Label == nil {
					continue
				}
				k := tr.Label.Key() + "→" + fmt.Sprint(tr.To)
				if dedup[k] {
					continue
				}
				dedup[k] = true
				trans[s] = append(trans[s], tr)
			}
		}
	}
	// Reachability from start over labeled transitions.
	reach := make([]bool, n)
	reach[start] = true
	stack := []int32{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tr := range trans[cur] {
			if !reach[tr.To] {
				reach[tr.To] = true
				stack = append(stack, tr.To)
			}
		}
	}
	// Renumber.
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	var order []int32
	for s := 0; s < n; s++ {
		if reach[s] {
			remap[s] = int32(len(order))
			order = append(order, int32(s))
		}
	}
	out := &NFA{
		Start:     remap[start],
		NumStates: len(order),
		Final:     make([]bool, len(order)),
		Trans:     make([][]Transition, len(order)),
		LabelID:   map[string]int32{},
	}
	for newID, old := range order {
		out.Final[newID] = fin[old]
		for _, tr := range trans[old] {
			if remap[tr.To] < 0 {
				continue
			}
			out.Trans[newID] = append(out.Trans[newID], Transition{Label: tr.Label, To: remap[tr.To]})
			if _, ok := out.LabelID[tr.Label.Key()]; !ok {
				out.LabelID[tr.Label.Key()] = int32(len(out.Labels))
				out.Labels = append(out.Labels, tr.Label)
			}
		}
	}
	return out
}

// String renders the NFA for debugging.
func (n *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFA start=%d states=%d\n", n.Start, n.NumStates)
	for s := 0; s < n.NumStates; s++ {
		mark := " "
		if n.Final[s] {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s%3d:", mark, s)
		for _, tr := range n.Trans[s] {
			fmt.Fprintf(&b, " --%s-->%d", tr.Label.Key(), tr.To)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FinalStates returns the sorted list of final state ids.
func (n *NFA) FinalStates() []int32 {
	var out []int32
	for s, f := range n.Final {
		if f {
			out = append(out, int32(s))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
