package automata

import (
	"math/rand"
	"testing"

	"rpq/internal/label"
	"rpq/internal/pattern"
)

// matchAST is an independent reference semantics for patterns: a direct
// backtracking interpreter over the AST, sharing no code with the Thompson
// construction it checks. matchAST(e, word, θ) reports whether word matches
// e under the full substitution θ.
func matchAST(e pattern.Expr, word []*label.CTerm, th []int32, compile func(*label.Term) *label.CTerm) bool {
	// matches(e, i) = set of indices j such that word[i:j] matches e.
	var matches func(e pattern.Expr, i int) map[int]bool
	matches = func(e pattern.Expr, i int) map[int]bool {
		out := map[int]bool{}
		switch x := e.(type) {
		case pattern.Epsilon:
			out[i] = true
		case *pattern.Lbl:
			if i < len(word) && label.MatchGround(compile(x.Term), word[i], th) {
				out[i+1] = true
			}
		case *pattern.Concat:
			cur := map[int]bool{i: true}
			for _, it := range x.Items {
				next := map[int]bool{}
				for j := range cur {
					for k := range matches(it, j) {
						next[k] = true
					}
				}
				cur = next
			}
			out = cur
		case *pattern.Alt:
			for _, it := range x.Items {
				for j := range matches(it, i) {
					out[j] = true
				}
			}
		case *pattern.Star:
			// Fixed point of ε | sub · self.
			out[i] = true
			frontier := map[int]bool{i: true}
			for len(frontier) > 0 {
				next := map[int]bool{}
				for j := range frontier {
					for k := range matches(x.Sub, j) {
						if !out[k] {
							out[k] = true
							next[k] = true
						}
					}
				}
				frontier = next
			}
		case *pattern.Plus:
			for j := range matches(x.Sub, i) {
				for k := range matches(&pattern.Star{Sub: x.Sub}, j) {
					out[k] = true
				}
			}
		case *pattern.Opt:
			out[i] = true
			for j := range matches(x.Sub, i) {
				out[j] = true
			}
		}
		return out
	}
	return matches(e, 0)[len(word)]
}

// genSemExpr builds random patterns over a small label pool.
func genSemExpr(rng *rand.Rand, depth int) pattern.Expr {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return pattern.Eps()
		case 1:
			return pattern.Any()
		case 2:
			return pattern.Lit("a(x)")
		case 3:
			return pattern.Lit("b('k')")
		case 4:
			return pattern.Lit("!a(x)")
		default:
			return pattern.Lit("c(x,y)")
		}
	}
	switch rng.Intn(6) {
	case 0:
		return pattern.Seq(genSemExpr(rng, depth-1), genSemExpr(rng, depth-1))
	case 1:
		return pattern.Or(genSemExpr(rng, depth-1), genSemExpr(rng, depth-1))
	case 2:
		return pattern.Rep(genSemExpr(rng, depth-1))
	case 3:
		return pattern.Rep1(genSemExpr(rng, depth-1))
	case 4:
		return pattern.Maybe(genSemExpr(rng, depth-1))
	default:
		return genSemExpr(rng, depth-1)
	}
}

// TestNFAAgreesWithASTSemantics cross-checks the Thompson construction and
// ε-elimination against the direct AST interpreter on random patterns,
// words, and substitutions.
func TestNFAAgreesWithASTSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 400; trial++ {
		u := label.NewUniverse()
		ps := &label.ParamSpace{}
		e := genSemExpr(rng, 3)
		n, err := FromPattern(e, u, ps)
		if err != nil {
			t.Fatalf("FromPattern(%s): %v", pattern.String(e), err)
		}
		// Edge-label pool compiled against the same universe.
		var letters []*label.CTerm
		for _, s := range []string{"a(k)", "a(m)", "b(k)", "c(k,m)", "d()"} {
			c, err := label.CompileGround(label.MustParse(s, label.GroundMode), u)
			if err != nil {
				t.Fatal(err)
			}
			letters = append(letters, c)
		}
		syms := u.AllSymbols()
		compileCache := map[*label.Term]*label.CTerm{}
		compile := func(tm *label.Term) *label.CTerm {
			if c, ok := compileCache[tm]; ok {
				return c
			}
			c := label.MustCompile(tm, u, ps)
			compileCache[tm] = c
			return c
		}
		for w := 0; w < 40; w++ {
			word := make([]*label.CTerm, rng.Intn(5))
			for i := range word {
				word[i] = letters[rng.Intn(len(letters))]
			}
			th := make([]int32, ps.Len())
			for i := range th {
				th[i] = syms[rng.Intn(len(syms))]
			}
			want := matchAST(e, word, th, compile)
			got := acceptsNFA(n, word, th)
			if got != want {
				t.Fatalf("pattern %s, word %v, θ %v: NFA %v, AST %v\n%s",
					pattern.String(e), word, th, got, want, n)
			}
		}
	}
}
