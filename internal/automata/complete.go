package automata

import "rpq/internal/label"

// Complete returns an equivalent automaton made complete by adding an
// explicit trap state: every state gains a transition to the trap labeled
// with the negated alternation of its outgoing labels (matching exactly the
// edges none of them match), and the trap has a wildcard self-loop.
//
// This reconstructs the prior-work baseline the paper improves on: Liu & Yu
// (MPC 2002) require a complete automaton for universal queries, "which
// usually means adding explicit transitions to a trap state; this can
// significantly increase actual space usage. The algorithm in this paper
// handles incomplete automata directly, saving space." With a complete
// automaton the badstate rules (iii)/(iv) never fire — the trap absorbs
// non-matching paths — at the cost of extra transitions and matches.
//
// For parametric labels the trap label ¬(l1|…|lk) matches an edge under a
// substitution θ exactly when no outgoing label matches under θ, so
// determinism is preserved.
func Complete(n *NFA) *NFA {
	trap := int32(n.NumStates)
	out := &NFA{
		Start:     n.Start,
		NumStates: n.NumStates + 1,
		Final:     make([]bool, n.NumStates+1),
		Trans:     make([][]Transition, n.NumStates+1),
		LabelID:   map[string]int32{},
	}
	copy(out.Final, n.Final)
	addLabel := func(tl *label.CTerm) {
		if _, ok := out.LabelID[tl.Key()]; !ok {
			out.LabelID[tl.Key()] = int32(len(out.Labels))
			out.Labels = append(out.Labels, tl)
		}
	}
	for s := 0; s < n.NumStates; s++ {
		var alts []*label.CTerm
		for _, tr := range n.Trans[s] {
			out.Trans[s] = append(out.Trans[s], tr)
			addLabel(tr.Label)
			alts = append(alts, tr.Label)
		}
		var trapLabel *label.CTerm
		if len(alts) == 0 {
			// No outgoing labels: everything goes to the trap.
			trapLabel = label.MustCompile(label.Wildcard(), nil, nil)
		} else {
			trapLabel = label.NegOr(alts...)
		}
		out.Trans[s] = append(out.Trans[s], Transition{Label: trapLabel, To: trap})
		addLabel(trapLabel)
	}
	wild := label.MustCompile(label.Wildcard(), nil, nil)
	out.Trans[trap] = []Transition{{Label: wild, To: trap}}
	addLabel(wild)
	return out
}

// CompleteExplicit is the classical completion the paper contrasts with:
// for every state and every alphabet letter (a distinct ground edge label of
// the graph under analysis) that no outgoing transition matches, an explicit
// transition to the trap is added. For parameter-free patterns this is the
// construction Liu & Yu (2002) require; its transition count grows with
// states × edgelabels, which is the "significantly increase[d] actual space
// usage" the incomplete-automaton algorithm avoids.
//
// Precondition: the automaton's labels are ground (parameter-free), so
// matchability per letter is decidable at construction time.
func CompleteExplicit(n *NFA, alphabet []*label.CTerm) *NFA {
	trap := int32(n.NumStates)
	out := &NFA{
		Start:     n.Start,
		NumStates: n.NumStates + 1,
		Final:     make([]bool, n.NumStates+1),
		Trans:     make([][]Transition, n.NumStates+1),
		LabelID:   map[string]int32{},
	}
	copy(out.Final, n.Final)
	addLabel := func(tl *label.CTerm) {
		if _, ok := out.LabelID[tl.Key()]; !ok {
			out.LabelID[tl.Key()] = int32(len(out.Labels))
			out.Labels = append(out.Labels, tl)
		}
	}
	for s := 0; s <= n.NumStates; s++ {
		if s < n.NumStates {
			for _, tr := range n.Trans[s] {
				out.Trans[s] = append(out.Trans[s], tr)
				addLabel(tr.Label)
			}
		}
		for _, el := range alphabet {
			covered := false
			if s < n.NumStates {
				for _, tr := range n.Trans[s] {
					if label.MatchGround(tr.Label, el, nil) {
						covered = true
						break
					}
				}
			}
			if !covered {
				out.Trans[s] = append(out.Trans[s], Transition{Label: el, To: trap})
				addLabel(el)
			}
		}
	}
	return out
}
