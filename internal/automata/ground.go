package automata

import (
	"sort"

	"rpq/internal/label"
)

// GroundDFA is a deterministic automaton over a concrete, finite alphabet:
// the distinct edge labels of one graph. It is exact — wildcards and
// negations have been expanded over the alphabet — so it is used by the
// enumeration and hybrid universal algorithms of Section 4, where the
// pattern has been instantiated by a full substitution and runtime
// determinism checks are unnecessary.
type GroundDFA struct {
	Start     int32
	NumStates int
	Final     []bool
	// Trans[state][letter] is the successor state, or -1 if the automaton
	// has no transition (incomplete; corresponds to badstate).
	Trans      [][]int32
	NumLetters int
	// Sets[state] is the sorted set of NFA states the subset construction
	// merged into this DFA state. DeterminizeGround populates it so the
	// explain profiler can attribute ground-DFA visits back to pattern NFA
	// states; Minimize does not maintain it (the output's Sets is nil).
	Sets [][]int32
}

// Step returns the successor of state on letter, or -1.
func (d *GroundDFA) Step(state int32, letter int32) int32 {
	return d.Trans[state][letter]
}

// NumTrans counts the present (non -1) transitions; "maxTrans" of the
// enumeration algorithm's complexity is the maximum of this over all
// instantiated patterns.
func (d *GroundDFA) NumTrans() int {
	total := 0
	for _, row := range d.Trans {
		for _, t := range row {
			if t >= 0 {
				total++
			}
		}
	}
	return total
}

// DeterminizeGround determinizes the pattern NFA n exactly over the given
// alphabet of ground edge labels, under the full substitution subst (which
// must bind every parameter occurring in n's labels; use an empty slice for
// a parameter-free pattern). Letter i of the result is alphabet[i].
func DeterminizeGround(n *NFA, alphabet []*label.CTerm, subst []int32) *GroundDFA {
	// Precompute which letters each distinct NFA label matches under subst.
	matches := make([][]bool, len(n.Labels))
	for li, tl := range n.Labels {
		row := make([]bool, len(alphabet))
		for ai, el := range alphabet {
			row[ai] = label.MatchGround(tl, el, subst)
		}
		matches[li] = row
	}

	encode := func(set []int32) string {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}

	startSet := []int32{n.Start}
	ids := map[string]int32{encode(startSet): 0}
	sets := [][]int32{startSet}
	d := &GroundDFA{Start: 0, NumLetters: len(alphabet)}
	d.Final = append(d.Final, n.Final[n.Start])
	d.Trans = append(d.Trans, newRow(len(alphabet)))

	for work := []int32{0}; len(work) > 0; {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		set := sets[cur]
		for a := 0; a < len(alphabet); a++ {
			var targets []int32
			for _, s := range set {
				for _, tr := range n.Trans[s] {
					if matches[n.LabelID[tr.Label.Key()]][a] {
						targets = append(targets, tr.To)
					}
				}
			}
			if len(targets) == 0 {
				continue
			}
			targets = dedupSorted(targets)
			k := encode(targets)
			id, ok := ids[k]
			if !ok {
				id = int32(len(sets))
				ids[k] = id
				sets = append(sets, targets)
				fin := false
				for _, s := range targets {
					fin = fin || n.Final[s]
				}
				d.Final = append(d.Final, fin)
				d.Trans = append(d.Trans, newRow(len(alphabet)))
				work = append(work, id)
			}
			d.Trans[cur][a] = id
		}
	}
	d.NumStates = len(sets)
	d.Sets = sets
	return d
}

func newRow(n int) []int32 {
	row := make([]int32, n)
	for i := range row {
		row[i] = -1
	}
	return row
}

// Minimize returns an equivalent GroundDFA with the minimal number of
// states, by Moore partition refinement over the (complete-with-sink)
// automaton. The sink class is dropped again on output, keeping the result
// incomplete. Minimization is an optional optimization (Section 5.3 invites
// exploiting structure); the solvers work on unminimized automata too.
func (d *GroundDFA) Minimize() *GroundDFA {
	n := d.NumStates
	if n == 0 {
		return d
	}
	// Class 0/1 initially: non-final vs final; sink is class of its own,
	// represented by state index n.
	class := make([]int32, n+1)
	for s := 0; s < n; s++ {
		if d.Final[s] {
			class[s] = 1
		}
	}
	class[n] = 0 // sink is non-final
	step := func(s int32, a int) int32 {
		if s == int32(n) {
			return int32(n)
		}
		t := d.Trans[s][a]
		if t < 0 {
			return int32(n)
		}
		return t
	}
	for {
		// Signature of each state: (class, class of successor per letter).
		sig := make([]string, n+1)
		for s := 0; s <= n; s++ {
			b := make([]byte, 0, (d.NumLetters+1)*4)
			b = appendInt32(b, class[s])
			for a := 0; a < d.NumLetters; a++ {
				b = appendInt32(b, class[step(int32(s), a)])
			}
			sig[s] = string(b)
		}
		ids := map[string]int32{}
		next := make([]int32, n+1)
		var keys []string
		for s := 0; s <= n; s++ {
			if _, ok := ids[sig[s]]; !ok {
				keys = append(keys, sig[s])
				ids[sig[s]] = 0
			}
		}
		sort.Strings(keys)
		for i, k := range keys {
			ids[k] = int32(i)
		}
		changed := false
		for s := 0; s <= n; s++ {
			next[s] = ids[sig[s]]
			if next[s] != class[s] {
				changed = true
			}
		}
		class = next
		if !changed {
			break
		}
	}
	sinkClass := class[n]
	if class[d.Start] == sinkClass {
		// The whole automaton is equivalent to the sink: it accepts nothing.
		return &GroundDFA{
			Start:      0,
			NumStates:  1,
			NumLetters: d.NumLetters,
			Final:      []bool{false},
			Trans:      [][]int32{newRow(d.NumLetters)},
		}
	}
	// Renumber classes except the sink; start's class first for a canonical
	// start id of 0 is not required, keep natural order.
	remap := map[int32]int32{}
	var order []int32
	for s := 0; s < n; s++ {
		c := class[s]
		if c == sinkClass {
			continue
		}
		if _, ok := remap[c]; !ok {
			remap[c] = int32(len(order))
			order = append(order, c)
		}
	}
	out := &GroundDFA{
		NumStates:  len(order),
		NumLetters: d.NumLetters,
		Final:      make([]bool, len(order)),
		Trans:      make([][]int32, len(order)),
	}
	for s := 0; s < n; s++ {
		c := class[s]
		if c == sinkClass {
			continue
		}
		id := remap[c]
		if out.Trans[id] != nil {
			continue // class already emitted
		}
		out.Trans[id] = newRow(d.NumLetters)
		out.Final[id] = d.Final[s]
		for a := 0; a < d.NumLetters; a++ {
			t := d.Trans[s][a]
			if t < 0 || class[t] == sinkClass {
				continue
			}
			out.Trans[id][a] = remap[class[t]]
		}
	}
	out.Start = remap[class[d.Start]]
	return out
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
