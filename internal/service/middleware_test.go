package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rpq"
	"rpq/internal/obs"
)

const (
	tpFixed   = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tpTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
)

// TestMiddlewareTraceIngestion pins the traceparent handling matrix: a valid
// inbound header keeps its trace ID (with a fresh server span); malformed,
// all-zero, and absent headers each get a freshly generated trace.
func TestMiddlewareTraceIngestion(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name, header string
		ingested     bool
	}{
		{"valid", tpFixed, true},
		{"absent", "", false},
		{"malformed", "zz-not-a-traceparent", false},
		{"truncated", tpFixed[:40], false},
		{"all-zero trace", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"all-zero span", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"uppercase", strings.ToUpper(tpFixed[3:35]) + tpFixed[35:], false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", "/api/v1/healthz", nil)
			if c.header != "" {
				req.Header.Set("traceparent", c.header)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
			}
			traceID := rec.Header().Get("X-RPQ-Trace-Id")
			tp := rec.Header().Get("traceparent")
			reqID := rec.Header().Get("X-RPQ-Request-Id")
			if len(traceID) != 32 || len(reqID) != 16 {
				t.Fatalf("identity headers: trace=%q request=%q", traceID, reqID)
			}
			back, err := obs.ParseTraceparent(tp)
			if err != nil {
				t.Fatalf("response traceparent %q: %v", tp, err)
			}
			if back.TraceIDString() != traceID {
				t.Fatalf("traceparent %q disagrees with X-RPQ-Trace-Id %q", tp, traceID)
			}
			if c.ingested {
				if traceID != tpTraceID {
					t.Fatalf("ingested trace = %q, want %q", traceID, tpTraceID)
				}
				if back.SpanIDString() == "00f067aa0ba902b7" {
					t.Fatal("server reused the client's span ID")
				}
			} else if traceID == tpTraceID {
				t.Fatalf("%s header was ingested as-is", c.name)
			}
		})
	}
}

// TestErrorBodyCarriesIdentity: JSON error bodies echo the request and trace
// IDs the middleware assigned, matching the response headers.
func TestErrorBodyCarriesIdentity(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	for _, c := range []struct {
		body     string
		code     int
		errValue string
	}{
		{`{"graph":"nope","pattern":"use(x)"}`, http.StatusNotFound, "unknown_graph"},
		{`{"graph":"g","pattern":"!_ use(x)"}`, http.StatusBadRequest, "lint_rejected"},
	} {
		req := httptest.NewRequest("POST", "/api/v1/query", strings.NewReader(c.body))
		req.Header.Set("traceparent", tpFixed)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.code {
			t.Fatalf("%s: %d %s", c.errValue, rec.Code, rec.Body)
		}
		body := decodeBody(t, rec)
		if body["error"] != c.errValue {
			t.Fatalf("error = %v", body["error"])
		}
		if body["trace_id"] != tpTraceID {
			t.Fatalf("error body trace_id = %v, want %v", body["trace_id"], tpTraceID)
		}
		if body["request_id"] != rec.Header().Get("X-RPQ-Request-Id") {
			t.Fatalf("error body request_id = %v, header %q",
				body["request_id"], rec.Header().Get("X-RPQ-Request-Id"))
		}
	}
}

// TestMiddlewareIDUniqueness: request and trace IDs stay unique under
// concurrent requests (run with -race for the interleaving check).
func TestMiddlewareIDUniqueness(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	const goroutines, per = 8, 50
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := doReq(h, "GET", "/api/v1/healthz", "")
				if rec.Code != http.StatusOK {
					t.Errorf("healthz: %d", rec.Code)
					return
				}
				ids[g] = append(ids[g],
					rec.Header().Get("X-RPQ-Request-Id"),
					rec.Header().Get("X-RPQ-Trace-Id"))
			}
		}(g)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate id %q", id)
			}
			seen[id] = true
		}
	}
}

// TestRouteMetricLabels: every route records under its stable name with the
// right status class and query kind.
func TestRouteMetricLabels(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Registry: reg})
	h := s.Handler()

	doReq(h, "GET", "/api/v1/healthz", "")
	doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"use(x)"}`)
	doReq(h, "POST", "/api/v1/query", `{"graph":"g","kind":"universal","pattern":"(!use(x))* def(x) _*"}`)
	doReq(h, "POST", "/api/v1/query", `{"graph":"nope","pattern":"use(x)"}`)
	doReq(h, "GET", "/api/v1/graphs", "")

	snap := reg.Snapshot()
	for key, want := range map[string]int64{
		`rpq_http_requests_total{route="healthz",status="2xx",kind="-"}`:       1,
		`rpq_http_requests_total{route="query",status="2xx",kind="exist"}`:     1,
		`rpq_http_requests_total{route="query",status="2xx",kind="universal"}`: 1,
		`rpq_http_requests_total{route="query",status="4xx",kind="exist"}`:     1,
		`rpq_http_requests_total{route="graphs_list",status="2xx",kind="-"}`:   1,
		`rpq_http_request_seconds{route="query"}_count`:                        3,
	} {
		if got := snap[key]; got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
}

// TestReadyzSplit: readyz follows SetReady and the drain state while healthz
// stays a pure liveness probe.
func TestReadyzSplit(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	if rec := doReq(h, "GET", "/api/v1/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz while ready: %d %s", rec.Code, rec.Body)
	}
	s.SetReady(false)
	rec := doReq(h, "GET", "/api/v1/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while not ready: %d %s", rec.Code, rec.Body)
	}
	body := decodeBody(t, rec)
	if body["error"] != "not_ready" || body["request_id"] == "" || body["trace_id"] == "" {
		t.Fatalf("readyz 503 body: %s", rec.Body)
	}
	if rec := doReq(h, "GET", "/api/v1/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while not ready: %d %s", rec.Code, rec.Body)
	}
	s.SetReady(true)
	if rec := doReq(h, "GET", "/api/v1/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz after SetReady(true): %d %s", rec.Code, rec.Body)
	}
}

// TestTraceEndToEnd holds a traced query in flight with the gate tracer and
// follows its trace ID through every surface: the response headers, the
// in-flight snapshot, the slow-query log, and the access log.
func TestTraceEndToEnd(t *testing.T) {
	var slowBuf, logBuf bytes.Buffer
	s := newTestServer(t, Config{
		SlowLog: rpq.NewSlowLog(&slowBuf, time.Nanosecond),
		Logger:  slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	h := s.Handler()
	gate := newGateTracer()
	s.hookOptions = func(o *rpq.Options) { o.Tracer = gate }

	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest("POST", "/api/v1/query",
			strings.NewReader(`{"graph":"g","pattern":"(!def(x))* use(x)"}`))
		req.Header.Set("traceparent", tpFixed)
		h.ServeHTTP(rec, req)
	}()
	<-gate.entered

	// Surface 1: the in-flight snapshot carries the trace while the solver
	// holds the gate.
	lrec := doReq(h, "GET", "/api/v1/queries", "")
	var listing struct {
		Queries []struct {
			TraceID string `json:"trace_id"`
			SpanID  string `json:"span_id"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	if len(listing.Queries) != 1 || listing.Queries[0].TraceID != tpTraceID {
		t.Fatalf("in-flight snapshot: %s", lrec.Body)
	}
	if len(listing.Queries[0].SpanID) != 16 {
		t.Fatalf("in-flight span: %s", lrec.Body)
	}

	close(gate.release)
	<-done

	// Surface 2: the response headers.
	if rec.Code != http.StatusOK {
		t.Fatalf("traced query: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-RPQ-Trace-Id"); got != tpTraceID {
		t.Fatalf("X-RPQ-Trace-Id = %q", got)
	}

	// Surface 3: the slow-log record (threshold 1ns, so the gated query
	// qualifies).
	var slowRec struct {
		TraceID string `json:"trace_id"`
		SpanID  string `json:"span_id"`
	}
	if err := json.Unmarshal(slowBuf.Bytes(), &slowRec); err != nil {
		t.Fatalf("decode slow log %q: %v", slowBuf.String(), err)
	}
	if slowRec.TraceID != tpTraceID || len(slowRec.SpanID) != 16 {
		t.Fatalf("slow-log record: %s", slowBuf.String())
	}

	// Surface 4: the access log line for the query route.
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var l struct {
			Stream    string `json:"stream"`
			Route     string `json:"route"`
			TraceID   string `json:"trace_id"`
			RequestID string `json:"request_id"`
			Kind      string `json:"kind"`
			Graph     string `json:"graph"`
			Admission string `json:"admission"`
			Status    int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		if l.Stream == "access" && l.Route == "query" && l.TraceID == tpTraceID {
			found = true
			if l.Status != 200 || l.Kind != "exist" || l.Graph != "g" ||
				l.Admission != "ok" || l.RequestID != rec.Header().Get("X-RPQ-Request-Id") {
				t.Fatalf("traced access line: %s", line)
			}
		}
	}
	if !found {
		t.Fatalf("no access line for trace %s:\n%s", tpTraceID, logBuf.String())
	}
}
