package service

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"rpq/internal/obs"
)

// reqInfo is the per-request telemetry record the middleware threads through
// the handler chain via the request context: the request's identity (request
// ID + W3C trace context) plus the annotations handlers fill in while
// serving. The middleware creates it, the handler mutates it, and the
// middleware reads it back after the handler returns — all on the request
// goroutine, so no locking is needed.
type reqInfo struct {
	route     string
	requestID string
	trace     obs.TraceContext

	// Annotations the query/catalog handlers fill in for the access log.
	kind       string // query kind ("exist"/"universal"/"violations")
	graph      string // graph name the request touched
	queryID    int64  // in-flight registry id of the solve, once begun
	admission  string // admission outcome: "ok", "rejected", "canceled"
	cpuNS      int64  // CPU time attributed to the solve (from Stats)
	allocBytes int64  // heap bytes attributed to the solve (from Stats)
}

// reqInfoKey keys the reqInfo in a request context.
type reqInfoKey struct{}

// requestInfo returns the request's telemetry record, nil when the request
// did not pass through the middleware (e.g. a bare handler under test).
func requestInfo(r *http.Request) *reqInfo {
	ri, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// statusWriter captures the response status code for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps one route's handler with the request-telemetry
// middleware. Per request it:
//
//   - ingests the client's W3C traceparent header (keeping its trace ID and
//     minting a fresh server span) or generates a new trace when the header
//     is absent, malformed, or carries the all-zero invalid IDs;
//   - assigns a request ID and sets the X-RPQ-Request-Id, X-RPQ-Trace-Id,
//     and traceparent response headers before the handler can write;
//   - threads the trace through the request context (obs.WithTrace), so the
//     rpq entry points stamp it into events, snapshots, slow-log records,
//     bundles, and pprof labels;
//   - records the per-route RED metrics after the handler returns;
//   - emits one structured access-log line.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		ri := &reqInfo{route: route, requestID: obs.NewRequestID()}
		if tc, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
			ri.trace = tc.Child()
		} else {
			ri.trace = obs.NewTraceContext()
		}
		hdr := w.Header()
		hdr.Set("X-RPQ-Request-Id", ri.requestID)
		hdr.Set("X-RPQ-Trace-Id", ri.trace.TraceIDString())
		hdr.Set("traceparent", ri.trace.Traceparent())
		ctx := obs.WithTrace(r.Context(), ri.trace)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			// Handler never wrote; net/http sends 200 on return.
			status = http.StatusOK
		}
		dur := time.Since(t0)
		s.httpMetrics.ObserveTrace(route, status, ri.kind, dur, ri.trace.TraceIDString())
		s.logAccess(r, ri, status, dur)
	}
}

// logAccess emits one access-log line (stream="access"). No-op without a
// configured logger.
func (s *Server) logAccess(r *http.Request, ri *reqInfo, status int, dur time.Duration) {
	if s.cfg.Logger == nil {
		return
	}
	level := slog.LevelInfo
	if status >= 500 {
		level = slog.LevelError
	}
	attrs := []slog.Attr{
		slog.String("stream", "access"),
		slog.String("route", ri.route),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("dur_ms", float64(dur.Microseconds())/1e3),
		slog.String("request_id", ri.requestID),
		slog.String("trace_id", ri.trace.TraceIDString()),
		slog.String("span_id", ri.trace.SpanIDString()),
		slog.String("remote", r.RemoteAddr),
	}
	if ri.kind != "" {
		attrs = append(attrs, slog.String("kind", ri.kind))
	}
	if ri.graph != "" {
		attrs = append(attrs, slog.String("graph", ri.graph))
	}
	if ri.queryID != 0 {
		attrs = append(attrs, slog.Int64("query_id", ri.queryID))
	}
	if ri.admission != "" {
		attrs = append(attrs, slog.String("admission", ri.admission))
	}
	if ri.cpuNS != 0 {
		attrs = append(attrs, slog.Int64("cpu_ns", ri.cpuNS))
	}
	if ri.allocBytes != 0 {
		attrs = append(attrs, slog.Int64("alloc_bytes", ri.allocBytes))
	}
	s.cfg.Logger.LogAttrs(context.Background(), level, "access", attrs...)
}

// logAudit emits one audit-log line for a catalog mutation
// (stream="audit"). No-op without a configured logger.
func (s *Server) logAudit(r *http.Request, action, graph, result string) {
	if s.cfg.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("stream", "audit"),
		slog.String("action", action),
		slog.String("graph", graph),
		slog.String("result", result),
		slog.String("remote", r.RemoteAddr),
	}
	if ri := requestInfo(r); ri != nil {
		attrs = append(attrs,
			slog.String("request_id", ri.requestID),
			slog.String("trace_id", ri.trace.TraceIDString()))
	}
	s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "audit", attrs...)
}
