package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rpq"
	"rpq/internal/obs"
)

const testGraphPath = "../../testdata/queries/graph.txt"

// newTestServer builds a Server on a fresh metrics registry with the
// repository's CFG fixture preloaded under the name "g".
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := NewServer(cfg)
	f, err := os.Open(testGraphPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := s.LoadGraph("g", "text", f); err != nil {
		t.Fatal(err)
	}
	return s
}

func doReq(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("decode response %q: %v", rec.Body.String(), err)
	}
	return m
}

func TestCatalogCRUD(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	raw, err := os.ReadFile(testGraphPath)
	if err != nil {
		t.Fatal(err)
	}

	rec := doReq(h, "PUT", "/api/v1/graphs/cfg-1", string(raw))
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT graph: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(h, "GET", "/api/v1/graphs", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"cfg-1"`) {
		t.Fatalf("GET graphs: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(h, "GET", "/api/v1/graphs/cfg-1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET graph: %d %s", rec.Code, rec.Body)
	}
	g := decodeBody(t, rec)["graph"].(map[string]any)
	if g["vertices"].(float64) <= 0 || g["edges"].(float64) <= 0 {
		t.Fatalf("graph info missing shape: %v", g)
	}
	rec = doReq(h, "DELETE", "/api/v1/graphs/cfg-1", "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE graph: %d %s", rec.Code, rec.Body)
	}
	for _, probe := range []struct{ method, path, body string }{
		{"GET", "/api/v1/graphs/cfg-1", ""},
		{"DELETE", "/api/v1/graphs/cfg-1", ""},
	} {
		rec = doReq(h, probe.method, probe.path, probe.body)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s deleted graph: %d %s", probe.method, rec.Code, rec.Body)
		}
	}

	// Invalid names and bodies are client errors, not catalog entries.
	if rec = doReq(h, "PUT", "/api/v1/graphs/bad%2Fname", string(raw)); rec.Code != http.StatusBadRequest {
		t.Fatalf("PUT invalid name: %d %s", rec.Code, rec.Body)
	}
	if rec = doReq(h, "PUT", "/api/v1/graphs/ok?format=nope", string(raw)); rec.Code != http.StatusBadRequest {
		t.Fatalf("PUT unknown format: %d %s", rec.Code, rec.Body)
	}
	if rec = doReq(h, "PUT", "/api/v1/graphs/ok", "not a graph"); rec.Code != http.StatusBadRequest {
		t.Fatalf("PUT junk body: %d %s", rec.Code, rec.Body)
	}
}

// TestGoGraphLoader loads real Go source through the "go" format and runs a
// parametric query against the resulting program graph end to end.
func TestGoGraphLoader(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	src := `-- go.mod --
module demo

-- main.go --
package main

func main() {
	ch := make(chan int)
	close(ch)
	ch <- 1
}
`
	rec := doReq(h, "PUT", "/api/v1/graphs/prog?format=go", src)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT go graph: %d %s", rec.Code, rec.Body)
	}
	rec = doReq(h, "POST", "/api/v1/query",
		`{"graph":"prog","pattern":"_* close(x) (!def(x))* send(x)"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query go graph: %d %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "demo.main.ch") {
		t.Fatalf("send-after-close answer should bind x to demo.main.ch: %s", body)
	}
	if rec = doReq(h, "PUT", "/api/v1/graphs/bad?format=go", "package broken\nfunc ("); rec.Code != http.StatusBadRequest {
		t.Fatalf("PUT unparsable go source: %d %s", rec.Code, rec.Body)
	}
}

func TestQueryKindsAndCacheStats(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		return doReq(h, "POST", "/api/v1/query", body)
	}

	// Existential: the Figure-1-style possibly-uninitialized-use query.
	rec := post(`{"graph":"g","kind":"exist","pattern":"(!def(x))* use(x)","options":{"witnesses":true}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("exist: %d %s", rec.Code, rec.Body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) == 0 || qr.QueryID == 0 {
		t.Fatalf("exist answers=%d id=%d, want answers and a registry id", len(qr.Answers), qr.QueryID)
	}
	for _, a := range qr.Answers {
		if a.Vertex == "" || len(a.Bindings) == 0 {
			t.Fatalf("malformed answer: %+v", a)
		}
		if len(a.Witness) == 0 {
			t.Fatalf("witnesses requested but missing: %+v", a)
		}
	}

	// Universal and violations kinds run through the same endpoint.
	if rec = post(`{"graph":"g","kind":"universal","pattern":"(!use(x))* def(x) _*"}`); rec.Code != http.StatusOK {
		t.Fatalf("universal: %d %s", rec.Code, rec.Body)
	}
	if rec = post(`{"graph":"g","kind":"violations","pattern":"(open(f) (access(f))* close(f))*","with_exit":true}`); rec.Code != http.StatusOK {
		t.Fatalf("violations: %d %s", rec.Code, rec.Body)
	}

	// A repeated pattern must hit the compiled-query cache.
	for i := 0; i < 3; i++ {
		if rec = post(`{"graph":"g","pattern":"(!def(x))* use(x)"}`); rec.Code != http.StatusOK {
			t.Fatalf("repeat %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec = doReq(h, "GET", "/api/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	cache := decodeBody(t, rec)["cache"].(map[string]any)
	if hits := cache["hits"].(float64); hits < 3 {
		t.Fatalf("cache hits = %v, want >= 3 (stats: %s)", hits, rec.Body)
	}

	// Client errors.
	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"unknown graph": {`{"graph":"nope","pattern":"use(x)"}`, http.StatusNotFound},
		"unknown kind":  {`{"graph":"g","kind":"maybe","pattern":"use(x)"}`, http.StatusBadRequest},
		"missing pat":   {`{"graph":"g"}`, http.StatusBadRequest},
		"bad pattern":   {`{"graph":"g","pattern":"use(x"}`, http.StatusBadRequest},
		"bad algorithm": {`{"graph":"g","pattern":"use(x)","options":{"algorithm":"quantum"}}`, http.StatusBadRequest},
		"bad table":     {`{"graph":"g","pattern":"use(x)","options":{"table":"btree"}}`, http.StatusBadRequest},
		"not even json": {`]`, http.StatusBadRequest},
	} {
		if rec = post(tc.body); rec.Code != tc.code {
			t.Fatalf("%s: %d %s, want %d", name, rec.Code, rec.Body, tc.code)
		}
	}

	rec = doReq(h, "GET", "/api/v1/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
}

// TestLintGateRejects pins request validation: an error-severity pattern is
// rejected with 400 and the RPQ0xx diagnostics as structured JSON, before
// any solver work; "no_lint" opts the request out.
func TestLintGateRejects(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"!_ use(x)"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("lint-rejected query: %d %s", rec.Code, rec.Body)
	}
	body := decodeBody(t, rec)
	if body["error"] != "lint_rejected" {
		t.Fatalf("error code = %v, want lint_rejected", body["error"])
	}
	diags, ok := body["diagnostics"].([]any)
	if !ok || len(diags) == 0 {
		t.Fatalf("diagnostics missing: %s", rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "RPQ001") {
		t.Fatalf("diagnostics lack RPQ001: %s", rec.Body)
	}

	// Opting out per request runs the (empty-language) query for real.
	rec = doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"!_ use(x)","options":{"no_lint":true}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("no_lint query: %d %s", rec.Code, rec.Body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != 0 {
		t.Fatalf("empty-language pattern returned %d answers", len(qr.Answers))
	}
}

// TestBurstAbove429 pins the acceptance criterion: a burst above the
// admission limit is race-clean — the excess gets fast 429s with
// Retry-After, every admitted query completes, and no goroutines leak.
func TestBurstAbove429(t *testing.T) {
	const (
		maxConcurrent = 2
		maxQueue      = 2
		burst         = 8
	)
	s := newTestServer(t, Config{
		MaxConcurrent: maxConcurrent,
		MaxQueue:      maxQueue,
		QueueWait:     80 * time.Millisecond,
	})
	h := s.Handler()

	admitted := make(chan struct{}, burst)
	release := make(chan struct{})
	s.hookAdmitted = func(ctx context.Context) {
		admitted <- struct{}{}
		<-release
	}

	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	codes := make(chan int, burst)
	retryAfter := make(chan string, burst)
	// Two requests take the solve slots and hold them via the hook...
	for i := 0; i < maxConcurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"(!def(x))* use(x)"}`)
			codes <- rec.Code
			retryAfter <- rec.Header().Get("Retry-After")
		}()
	}
	for i := 0; i < maxConcurrent; i++ {
		<-admitted
	}
	// ...then the rest of the burst arrives while the service is saturated:
	// up to maxQueue wait out the queue (429 on timeout), the overflow is
	// rejected immediately.
	for i := maxConcurrent; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"(!def(x))* use(x)"}`)
			codes <- rec.Code
			retryAfter <- rec.Header().Get("Retry-After")
		}()
	}
	go func() {
		// Free the held slots once the burst has fully resolved its 429s;
		// the queue-wait (80ms) bounds how long that takes.
		time.Sleep(200 * time.Millisecond)
		close(release)
	}()
	wg.Wait()
	close(codes)
	close(retryAfter)

	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	if counts[http.StatusOK] != maxConcurrent || counts[http.StatusTooManyRequests] != burst-maxConcurrent {
		t.Fatalf("burst outcome = %v, want %d OK and %d 429", counts, maxConcurrent, burst-maxConcurrent)
	}
	sawRetryAfter := false
	for ra := range retryAfter {
		if ra != "" {
			sawRetryAfter = true
		}
	}
	if !sawRetryAfter {
		t.Fatal("no 429 carried a Retry-After header")
	}

	st := s.adm.stats()
	if st["active"] != 0 || st["queued"] != 0 {
		t.Fatalf("admission not drained: %v", st)
	}
	if st["admitted"] != maxConcurrent || st["rejected"]+st["queue_timeouts"] != burst-maxConcurrent {
		t.Fatalf("admission accounting: %v", st)
	}

	// Goroutine hygiene: everything the burst spawned must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before burst, %d after", before, runtime.NumGoroutine())
}

// gateTracer blocks the solver at its first trace event until released,
// holding a query deterministically in flight. Enabled() reports true so
// the solver emits events.
type gateTracer struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateTracer() *gateTracer {
	return &gateTracer{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateTracer) Enabled() bool { return true }
func (g *gateTracer) Emit(rpq.TraceEvent) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

// TestClientDisconnectCancelsQuery pins satellite 4: a dropped HTTP request
// mid-solve cancels the query with a typed interrupt, frees its admission
// slot, and leaves the latency histogram consistent.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	h := s.Handler()
	gate := newGateTracer()
	s.hookOptions = func(o *rpq.Options) { o.Tracer = gate }

	ctx, cancelReq := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/api/v1/query",
		strings.NewReader(`{"graph":"g","pattern":"(!def(x))* use(x)"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, req)
	}()

	<-gate.entered // the solver is mid-flight, holding the only slot
	if st := s.adm.stats(); st["active"] != 1 {
		t.Fatalf("admission active = %d, want 1", st["active"])
	}
	cancelReq() // client goes away
	// Give the canceler's watcher goroutine a beat to latch the flag the
	// solver polls; the solve is tiny, so releasing too early would let it
	// finish before the cancellation lands.
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	<-done

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("dropped request: %d %s, want %d", rec.Code, rec.Body, StatusClientClosedRequest)
	}
	body := decodeBody(t, rec)
	if body["error"] != "canceled" {
		t.Fatalf("error code = %v, want canceled", body["error"])
	}
	if _, ok := body["stats"]; !ok {
		t.Fatalf("canceled response lacks partial stats: %s", rec.Body)
	}

	// The slot is free again, the cancel map is empty, and the latency
	// histogram counted exactly one (canceled) query.
	if st := s.adm.stats(); st["active"] != 0 || st["queued"] != 0 {
		t.Fatalf("slot not freed after disconnect: %v", st)
	}
	s.activeMu.Lock()
	nActive := len(s.active)
	s.activeMu.Unlock()
	if nActive != 0 {
		t.Fatalf("active cancel map has %d stale entries", nActive)
	}
	if n := s.gauges.QueryHist.Count(); n != 1 {
		t.Fatalf("latency histogram count = %d, want 1", n)
	}
	if n := s.gauges.Queries.Value(); n != 1 {
		t.Fatalf("queries gauge = %d, want 1", n)
	}
	if s.gCanceled.Value() != 1 {
		t.Fatalf("canceled gauge = %d, want 1", s.gCanceled.Value())
	}

	// The freed slot admits the next query immediately.
	s.hookOptions = nil
	if rec := doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"use(x)"}`); rec.Code != http.StatusOK {
		t.Fatalf("query after disconnect: %d %s", rec.Code, rec.Body)
	}
}

// TestCancelEndpoint drives the operator path: list the in-flight query,
// cancel it by id, and observe its request return 499.
func TestCancelEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	gate := newGateTracer()
	s.hookOptions = func(o *rpq.Options) { o.Tracer = gate }

	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v1/query",
			strings.NewReader(`{"graph":"g","pattern":"(!def(x))* use(x)"}`)))
	}()
	<-gate.entered

	// The in-flight listing shows the query; take its id.
	lrec := doReq(h, "GET", "/api/v1/queries", "")
	if lrec.Code != http.StatusOK {
		t.Fatalf("list queries: %d %s", lrec.Code, lrec.Body)
	}
	var listing struct {
		Queries []struct {
			ID int64 `json:"id"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Queries) != 1 {
		t.Fatalf("in-flight listing has %d queries, want 1: %s", len(listing.Queries), lrec.Body)
	}
	id := listing.Queries[0].ID

	crec := doReq(h, "POST", fmt.Sprintf("/api/v1/queries/%d/cancel", id), "")
	if crec.Code != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", crec.Code, crec.Body)
	}
	time.Sleep(50 * time.Millisecond) // let the cancellation latch before the solver resumes
	close(gate.release)
	<-done
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled query request: %d %s, want %d", rec.Code, rec.Body, StatusClientClosedRequest)
	}

	// Unknown and malformed ids are client errors.
	if crec = doReq(h, "POST", fmt.Sprintf("/api/v1/queries/%d/cancel", id), ""); crec.Code != http.StatusNotFound {
		t.Fatalf("cancel finished query: %d %s", crec.Code, crec.Body)
	}
	if crec = doReq(h, "POST", "/api/v1/queries/banana/cancel", ""); crec.Code != http.StatusBadRequest {
		t.Fatalf("cancel junk id: %d %s", crec.Code, crec.Body)
	}
}

// TestShutdownDrains pins graceful shutdown: new work is rejected with 503
// while in-flight queries finish, and Shutdown returns only after they do.
func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	gate := newGateTracer()
	s.hookOptions = func(o *rpq.Options) { o.Tracer = gate }

	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v1/query",
			strings.NewReader(`{"graph":"g","pattern":"(!def(x))* use(x)"}`)))
	}()
	<-gate.entered

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()
	waitUntil(t, s.Draining)

	// Draining: new queries and graph loads bounce with 503.
	if r := doReq(h, "POST", "/api/v1/query", `{"graph":"g","pattern":"use(x)"}`); r.Code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d %s", r.Code, r.Body)
	}
	if r := doReq(h, "PUT", "/api/v1/graphs/late", "s0\n"); r.Code != http.StatusServiceUnavailable {
		t.Fatalf("load while draining: %d %s", r.Code, r.Body)
	}

	close(gate.release)
	<-done
	if rec.Code != http.StatusOK {
		t.Fatalf("in-flight query during drain: %d %s, want 200", rec.Code, rec.Body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want nil (drained without cancels)", err)
	}
}

// TestShutdownCancelsOnDeadline pins the forced path: when the drain budget
// expires, Shutdown cancels the stragglers and still waits them out.
func TestShutdownCancelsOnDeadline(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	gate := newGateTracer()
	s.hookOptions = func(o *rpq.Options) { o.Tracer = gate }

	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v1/query",
			strings.NewReader(`{"graph":"g","pattern":"(!def(x))* use(x)"}`)))
	}()
	<-gate.entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(ctx) }()

	// Let the drain budget expire (CancelAll fires), then unblock the
	// solver; it must observe the cancellation at its next check.
	time.Sleep(60 * time.Millisecond)
	close(gate.release)
	<-done
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("straggler query: %d %s, want %d", rec.Code, rec.Body, StatusClientClosedRequest)
	}
	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

// TestDeadlineMapsTo504 pins the deadline path end to end: a request-level
// deadline_ms that the solve cannot meet returns 504 with partial stats.
func TestDeadlineMapsTo504(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	gate := newGateTracer()
	s.hookOptions = func(o *rpq.Options) { o.Tracer = gate }

	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v1/query",
			strings.NewReader(`{"graph":"g","pattern":"(!def(x))* use(x)","options":{"deadline_ms":20}}`)))
	}()
	<-gate.entered
	time.Sleep(40 * time.Millisecond) // let the 20ms deadline expire
	close(gate.release)
	<-done
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: %d %s, want 504", rec.Code, rec.Body)
	}
	body := decodeBody(t, rec)
	if body["error"] != "deadline_exceeded" {
		t.Fatalf("error code = %v, want deadline_exceeded", body["error"])
	}
	if _, ok := body["stats"]; !ok {
		t.Fatalf("deadline response lacks partial stats: %s", rec.Body)
	}
}
