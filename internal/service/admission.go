package service

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"rpq/internal/obs"
)

// Admission-control outcomes surfaced to the HTTP layer.
var (
	// errOverloaded means the wait queue was full on arrival — reject now.
	errOverloaded = errors.New("service: solve queue full")
	// errQueueWait means the request queued but no slot freed in time.
	errQueueWait = errors.New("service: timed out waiting for a solve slot")
)

// admission is a bounded semaphore on concurrent solves with a bounded,
// time-limited wait queue in front of it. Fast path: a free slot admits
// immediately. Slow path: up to maxQueue requests wait up to wait for a
// slot; anything beyond that is rejected immediately so overload turns into
// fast 429s instead of a goroutine pile-up.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	wait     time.Duration

	queued   atomic.Int64
	active   atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	timedOut atomic.Int64

	gActive   *obs.Gauge
	gQueued   *obs.Gauge
	gAdmitted *obs.Gauge
	gRejected *obs.Gauge
	gTimeout  *obs.Gauge
}

func newAdmission(maxConcurrent, maxQueue int, wait time.Duration, r *obs.Registry) *admission {
	return &admission{
		slots:     make(chan struct{}, maxConcurrent),
		maxQueue:  int64(maxQueue),
		wait:      wait,
		gActive:   r.Gauge("rpq_svc_active_solves", "queries holding a solve slot right now"),
		gQueued:   r.Gauge("rpq_svc_queued", "requests waiting for a solve slot right now"),
		gAdmitted: r.Gauge("rpq_svc_admitted_total", "requests granted a solve slot since process start"),
		gRejected: r.Gauge("rpq_svc_rejected_total", "requests rejected with 429 (queue full) since process start"),
		gTimeout:  r.Gauge("rpq_svc_queue_timeout_total", "requests rejected with 429 after waiting the full queue-wait"),
	}
}

// acquire obtains a solve slot, queueing within the configured bounds. On
// success it returns a release function that must be called exactly once.
// Errors: errOverloaded (queue full on arrival), errQueueWait (queue wait
// expired), or ctx.Err() when the caller gave up first.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	grant := func() func() {
		a.active.Add(1)
		a.admitted.Add(1)
		a.gActive.Add(1)
		a.gAdmitted.Add(1)
		var released atomic.Bool
		return func() {
			if released.Swap(true) {
				return
			}
			a.active.Add(-1)
			a.gActive.Add(-1)
			<-a.slots
		}
	}
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		a.gRejected.Add(1)
		return nil, errOverloaded
	}
	a.gQueued.Add(1)
	defer func() {
		a.queued.Add(-1)
		a.gQueued.Add(-1)
	}()
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return grant(), nil
	case <-t.C:
		a.timedOut.Add(1)
		a.gTimeout.Add(1)
		return nil, errQueueWait
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// stats returns the admission counters for /api/v1/stats.
func (a *admission) stats() map[string]int64 {
	return map[string]int64{
		"active":         a.active.Load(),
		"queued":         a.queued.Load(),
		"admitted":       a.admitted.Load(),
		"rejected":       a.rejected.Load(),
		"queue_timeouts": a.timedOut.Load(),
	}
}
