package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"rpq"
)

// graphEntry is one catalog slot: an immutable loaded graph plus metadata.
// Queries hold the *rpq.Graph pointer directly, so deleting an entry never
// invalidates a run already in flight.
type graphEntry struct {
	name     string
	g        *rpq.Graph
	format   string
	loadedAt time.Time
	queries  atomic.Int64
}

// GraphInfo is the JSON shape of a catalog entry.
type GraphInfo struct {
	Name     string `json:"name"`
	Format   string `json:"format"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Start    string `json:"start"`
	LoadedAt string `json:"loaded_at"`
	Queries  int64  `json:"queries"`
}

func (e *graphEntry) info() GraphInfo {
	return GraphInfo{
		Name:     e.name,
		Format:   e.format,
		Vertices: e.g.NumVertices(),
		Edges:    e.g.NumEdges(),
		Start:    e.g.Start(),
		LoadedAt: e.loadedAt.UTC().Format(time.RFC3339),
		Queries:  e.queries.Load(),
	}
}

// validGraphName bounds catalog keys to something URL- and log-friendly.
func validGraphName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// loadGraph parses a graph document in the named format using the engine's
// loaders: "text" (the repository's textual graph format, the default),
// "aut" / "aut-universal" (Aldébaran LTS with the Section 2.3 existential /
// universal transforms), "xml" (semi-structured data), and "go" (real Go
// source — one file body or a txtar-style "-- name --" multi-file archive —
// lowered to an interprocedural program graph by the gofront front end).
func loadGraph(format string, r io.Reader) (*rpq.Graph, string, error) {
	switch format {
	case "", "text":
		g, err := rpq.ReadGraph(r)
		return g, "text", err
	case "aut":
		g, err := rpq.FromAUT(r, false)
		return g, "aut", err
	case "aut-universal":
		g, err := rpq.FromAUT(r, true)
		return g, "aut-universal", err
	case "xml":
		g, err := rpq.FromXML(r)
		return g, "xml", err
	case "go":
		body, err := io.ReadAll(r)
		if err != nil {
			return nil, "", err
		}
		gp, err := rpq.FromGoSource(string(body), rpq.GoConfig{Interproc: true})
		if err != nil {
			return nil, "", err
		}
		return gp.Graph, "go", nil
	default:
		return nil, "", fmt.Errorf("unknown graph format %q (want text, aut, aut-universal, xml, or go)", format)
	}
}

// LoadGraph inserts (or replaces) a catalog entry programmatically — the
// path cmd/rpqd uses for -load preloading. The graph must have a start
// vertex unless queries always pass options.start.
func (s *Server) LoadGraph(name, format string, r io.Reader) (GraphInfo, error) {
	if !validGraphName(name) {
		return GraphInfo{}, fmt.Errorf("invalid graph name %q (want [A-Za-z0-9._-]{1,128})", name)
	}
	g, fmtName, err := loadGraph(format, r)
	if err != nil {
		return GraphInfo{}, err
	}
	e := &graphEntry{name: name, g: g, format: fmtName, loadedAt: time.Now()}
	s.mu.Lock()
	s.graphs[name] = e
	s.gGraphs.Set(int64(len(s.graphs)))
	s.mu.Unlock()
	return e.info(), nil
}

// graph looks up a catalog entry.
func (s *Server) graph(name string) (*graphEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.graphs[name]
	return e, ok
}

// ---- HTTP handlers ----

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	entries := make([]*graphEntry, 0, len(s.graphs))
	for _, e := range s.graphs {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]GraphInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, r, http.StatusServiceUnavailable, "draining", "service is shutting down")
		return
	}
	defer s.wg.Done()
	s.gRequests.Add(1)
	name := r.PathValue("name")
	if ri := requestInfo(r); ri != nil {
		ri.graph = name
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxGraphBytes)
	info, err := s.LoadGraph(name, r.URL.Query().Get("format"), body)
	if err != nil {
		s.logAudit(r, "load", name, "rejected")
		writeError(w, r, http.StatusBadRequest, "bad_graph", "load graph %q: %v", name, err)
		return
	}
	s.logAudit(r, "load", name, "ok")
	writeJSON(w, http.StatusCreated, map[string]any{"graph": info})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.graph(r.PathValue("name"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown_graph", "graph %q is not in the catalog", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"graph": e.info()})
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if ri := requestInfo(r); ri != nil {
		ri.graph = name
	}
	s.mu.Lock()
	_, ok := s.graphs[name]
	delete(s.graphs, name)
	s.gGraphs.Set(int64(len(s.graphs)))
	s.mu.Unlock()
	if !ok {
		s.logAudit(r, "delete", name, "not_found")
		writeError(w, r, http.StatusNotFound, "unknown_graph", "graph %q is not in the catalog", name)
		return
	}
	s.logAudit(r, "delete", name, "ok")
	w.WriteHeader(http.StatusNoContent)
}
