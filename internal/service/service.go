// Package service implements the long-lived parametric-RPQ query service
// behind cmd/rpqd: a JSON-over-HTTP API with a named graph catalog, query
// submission against catalog entries, in-flight listing and cancellation
// backed by the process-wide in-flight registry, a shared compiled-query
// cache, and admission control (a bounded semaphore on concurrent solves
// with a bounded wait queue and per-request deadlines) so the engine
// survives heavy traffic from many clients. docs/service.md documents the
// API surface and the knobs.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rpq"
	"rpq/internal/obs"
)

// Config tunes a Server. The zero value serves with sensible defaults:
// NumCPU concurrent solves, a 2×NumCPU wait queue, 30s default / 2m max
// deadlines, a 128-entry compiled-query cache, and lint validation on.
type Config struct {
	// MaxConcurrent bounds the solver runs in flight at once; <= 0 means
	// runtime.NumCPU().
	MaxConcurrent int
	// MaxQueue bounds the requests allowed to wait for a solve slot; a
	// request arriving with the queue full is rejected immediately with
	// HTTP 429. <= 0 means 2×MaxConcurrent; use a negative queue via
	// QueueWait <= 0 semantics is not supported — set MaxQueue small
	// instead.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being rejected with 429; <= 0 means 5s.
	QueueWait time.Duration
	// DefaultDeadline is applied to requests that do not set deadline_ms;
	// <= 0 means 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadline_ms; <= 0 means 2m.
	MaxDeadline time.Duration
	// RetryAfter is the Retry-After hint attached to 429 responses;
	// <= 0 means 1s.
	RetryAfter time.Duration
	// CacheSize is the compiled-query cache capacity; <= 0 means
	// rpq.DefaultQueryCacheSize. The cache is shared by all graphs and
	// request kinds.
	CacheSize int
	// DisableLint turns off the request-validation lint gate (error-severity
	// findings reject a query with HTTP 400 before any solver work).
	// Individual requests can also opt out with "no_lint": true.
	DisableLint bool
	// Workers is the default solver worker count applied to requests that
	// do not set options.workers; 0 keeps the sequential solvers.
	Workers int
	// MaxGraphBytes bounds a graph-load request body; <= 0 means 64 MiB.
	MaxGraphBytes int64
	// MaxQueryBytes bounds a query request body; <= 0 means 1 MiB.
	MaxQueryBytes int64
	// SlowLog, when non-nil, records slow queries for every request.
	SlowLog *rpq.SlowLog
	// Watchdog, when non-nil, attaches the flight recorder / anomaly-bundle
	// watchdog to every request.
	Watchdog *rpq.Watchdog
	// Registry receives the service gauges (rpq_svc_*) and the solver
	// gauges; nil means the default registry, which is what the
	// observability server exposes.
	Registry *obs.Registry
	// Inflight is the in-flight query registry backing /api/v1/queries and
	// cancellation; nil means the process-wide default registry (the one
	// the rpq entry points register into).
	Inflight *obs.Inflight
	// Logger, when non-nil, receives the structured access log (one line
	// per request, stream="access") and the catalog-mutation audit stream
	// (stream="audit"). nil disables both.
	Logger *slog.Logger
	// SLOs configures which routes get SLO event counters
	// (rpq_http_slo_total/rpq_http_slo_good) and what counts as a good
	// request on them; the observability plane's burn-rate tracker consumes
	// those counters from the tsdb.
	SLOs []obs.SLO
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxGraphBytes <= 0 {
		c.MaxGraphBytes = 64 << 20
	}
	if c.MaxQueryBytes <= 0 {
		c.MaxQueryBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Inflight == nil {
		c.Inflight = obs.DefaultInflight()
	}
	return c
}

// Server is the query service: graph catalog + query execution + admission
// control. Create with NewServer, mount Handler on an http.Server, and call
// Shutdown before process exit so in-flight queries drain (or are canceled)
// before the observability plane goes down.
type Server struct {
	cfg         Config
	cache       *rpq.QueryCache
	adm         *admission
	gauges      *rpq.SolverGauges
	httpMetrics *obs.HTTPMetrics

	// ready distinguishes readiness from liveness: /api/v1/readyz reports
	// 503 until SetReady(true) (and again while draining), while
	// /api/v1/healthz stays 200 for as long as the process serves. NewServer
	// starts ready, so embedded/test use needs no extra call; cmd/rpqd
	// clears it during boot and sets it once the listeners are up.
	ready atomic.Bool

	mu      sync.RWMutex
	graphs  map[string]*graphEntry
	gGraphs *obs.Gauge

	// activeMu guards active, the obs-registry-id → cancel map behind
	// POST /api/v1/queries/{id}/cancel and CancelAll.
	activeMu sync.Mutex
	active   map[int64]context.CancelFunc

	// drainMu serializes request entry against Shutdown: once draining is
	// set no new request can join wg, so wg.Wait is race-free.
	drainMu  sync.Mutex
	draining bool
	wg       sync.WaitGroup

	gRequests *obs.Gauge
	gCanceled *obs.Gauge
	gDraining *obs.Gauge

	// hookAdmitted, when non-nil, runs on the request goroutine after a
	// solve slot is acquired and before the solver starts — tests use it to
	// hold slots deterministically.
	hookAdmitted func(ctx context.Context)
	// hookOptions, when non-nil, runs on the built rpq.Options just before
	// the solve — tests use it to inject blocking tracers.
	hookOptions func(*rpq.Options)
}

// NewServer returns a service with cfg's knobs resolved.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	r := cfg.Registry
	s := &Server{
		cfg:       cfg,
		cache:     rpq.NewQueryCache(cfg.CacheSize),
		adm:       newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait, r),
		gauges:    obs.NewSolverGauges(r),
		graphs:    map[string]*graphEntry{},
		active:    map[int64]context.CancelFunc{},
		gGraphs:   r.Gauge("rpq_svc_graphs", "graphs in the service catalog"),
		gRequests: r.Gauge("rpq_svc_requests_total", "API requests accepted since process start"),
		gCanceled: r.Gauge("rpq_svc_canceled_total", "queries canceled through the API since process start"),
		gDraining: r.Gauge("rpq_svc_draining", "1 while the service is draining for shutdown"),
	}
	s.httpMetrics = obs.NewHTTPMetrics(r, cfg.SLOs)
	s.ready.Store(true)
	return s
}

// SetReady flips the readiness signal behind /api/v1/readyz. Liveness
// (/api/v1/healthz) is unaffected.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the service is accepting work: marked ready and not
// draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.Draining() }

// Cache exposes the shared compiled-query cache (for stats and tests).
func (s *Server) Cache() *rpq.QueryCache { return s.cache }

// Handler returns the service's HTTP routes, each wrapped in the
// request-telemetry middleware under a stable route name (the RED metric
// and access-log "route" label).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /api/v1/readyz", s.instrument("readyz", s.handleReady))
	mux.HandleFunc("GET /api/v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /api/v1/graphs", s.instrument("graphs_list", s.handleListGraphs))
	mux.HandleFunc("PUT /api/v1/graphs/{name}", s.instrument("graph_load", s.handleLoadGraph))
	mux.HandleFunc("POST /api/v1/graphs/{name}", s.instrument("graph_load", s.handleLoadGraph))
	mux.HandleFunc("GET /api/v1/graphs/{name}", s.instrument("graph_get", s.handleGetGraph))
	mux.HandleFunc("DELETE /api/v1/graphs/{name}", s.instrument("graph_delete", s.handleDeleteGraph))
	mux.HandleFunc("POST /api/v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("GET /api/v1/queries", s.instrument("queries_list", s.handleListQueries))
	mux.HandleFunc("POST /api/v1/queries/{id}/cancel", s.instrument("query_cancel", s.handleCancelQuery))
	return mux
}

// enter registers one request with the drain tracker; it reports false once
// the service is draining, in which case the caller must reject the request.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	return true
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// CancelAll cancels every query currently executing through the service.
// It returns the number of cancellations issued.
func (s *Server) CancelAll() int {
	s.activeMu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.active))
	for _, c := range s.active {
		cancels = append(cancels, c)
	}
	s.activeMu.Unlock()
	for _, c := range cancels {
		c()
	}
	return len(cancels)
}

// Shutdown drains the service: new queries are rejected with 503
// immediately, and in-flight ones are given until ctx expires to finish on
// their own, after which they are canceled (stopping at their next
// cancellation check) and awaited. It returns nil when everything drained
// without cancellation, and ctx.Err() when queries had to be canceled.
// Always call it before closing the observability server, so the last
// queries' metrics and in-flight exits are observable.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		s.gDraining.Set(1)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.CancelAll()
		<-done
		return ctx.Err()
	}
}

// ---- JSON plumbing ----

// apiError is the uniform error body: a stable machine-readable code plus a
// human-readable message, with optional structured detail (e.g. lint
// diagnostics). RequestID and TraceID echo the response headers so a client
// error report alone is greppable in the access log and trace sinks.
type apiError struct {
	Error       string `json:"error"`
	Message     string `json:"message,omitempty"`
	Diagnostics any    `json:"diagnostics,omitempty"`
	RequestID   string `json:"request_id,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// stampIdentity fills an apiError's request/trace identity from the request
// (no-op when the request bypassed the middleware).
func stampIdentity(r *http.Request, e *apiError) {
	if ri := requestInfo(r); ri != nil {
		e.RequestID = ri.requestID
		e.TraceID = ri.trace.TraceIDString()
	}
}

func writeError(w http.ResponseWriter, r *http.Request, code int, errCode, format string, args ...any) {
	e := apiError{Error: errCode, Message: fmt.Sprintf(format, args...)}
	stampIdentity(r, &e)
	writeJSON(w, code, e)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.graphs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"graphs":   n,
		"inflight": s.cfg.Inflight.Len(),
		"draining": s.Draining(),
	})
}

// handleReady is the readiness probe: 200 only when the process has been
// marked ready and is not draining. Liveness (handleHealth) stays 200
// throughout a drain so orchestrators do not kill a server that is still
// finishing in-flight queries; readiness flips first so load balancers stop
// routing new work to it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		e := apiError{Error: "not_ready", Message: "service is draining or not yet serving"}
		stampIdentity(r, &e)
		writeJSON(w, http.StatusServiceUnavailable, e)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"inflight": s.cfg.Inflight.Len(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	graphs := len(s.graphs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"graphs":    graphs,
		"inflight":  s.cfg.Inflight.Len(),
		"draining":  s.Draining(),
		"cache":     s.cache.Stats(),
		"admission": s.adm.stats(),
		"limits": map[string]any{
			"max_concurrent":      s.cfg.MaxConcurrent,
			"max_queue":           s.cfg.MaxQueue,
			"queue_wait_ms":       s.cfg.QueueWait.Milliseconds(),
			"default_deadline_ms": s.cfg.DefaultDeadline.Milliseconds(),
			"max_deadline_ms":     s.cfg.MaxDeadline.Milliseconds(),
		},
	})
}
