package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rpq"
)

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// the service reports when a query ends canceled: either the submitting
// client disconnected mid-solve or an operator hit the cancel endpoint.
const StatusClientClosedRequest = 499

// QueryRequest is the body of POST /api/v1/query.
type QueryRequest struct {
	// Graph names the catalog entry to query.
	Graph string `json:"graph"`
	// Kind is "exist" (default), "universal", or "violations".
	Kind string `json:"kind"`
	// Pattern is the query pattern; for kind "violations" it is the
	// per-resource discipline pattern the violation query is derived from.
	Pattern string `json:"pattern"`
	// WithExit extends a violations query with incomplete-at-exit checks.
	WithExit bool `json:"with_exit,omitempty"`
	// Options tunes the solver for this request.
	Options QueryOptions `json:"options"`
}

// QueryOptions is the per-request solver configuration, a JSON projection
// of rpq.Options.
type QueryOptions struct {
	Algorithm  string `json:"algorithm,omitempty"` // auto|basic|memo|precomp|enum|hybrid
	Table      string `json:"table,omitempty"`     // hash|nested
	Domains    string `json:"domains,omitempty"`   // refined|all
	Workers    int    `json:"workers,omitempty"`
	Witnesses  bool   `json:"witnesses,omitempty"`
	Backward   bool   `json:"backward,omitempty"`
	Start      string `json:"start,omitempty"`
	Compact    bool   `json:"compact,omitempty"`
	SCCOrder   bool   `json:"scc_order,omitempty"`
	Explain    bool   `json:"explain,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	// NoLint skips the lint validation gate for this request.
	NoLint bool `json:"no_lint,omitempty"`
}

// QueryResponse is the body of a successful query.
type QueryResponse struct {
	QueryID   int64        `json:"query_id"`
	Graph     string       `json:"graph"`
	Kind      string       `json:"kind"`
	Pattern   string       `json:"pattern"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Answers   []AnswerJSON `json:"answers"`
	Stats     rpq.Stats    `json:"stats"`
	Explain   *rpq.Explain `json:"explain,omitempty"`
}

// AnswerJSON is one answer: the vertex, its parameter bindings in binding
// order, and (under options.witnesses) one witnessing path.
type AnswerJSON struct {
	Vertex   string        `json:"vertex"`
	Bindings []BindingJSON `json:"bindings,omitempty"`
	Witness  []StepJSON    `json:"witness,omitempty"`
}

// BindingJSON is one parameter-to-symbol binding.
type BindingJSON struct {
	Param  string `json:"param"`
	Symbol string `json:"symbol"`
}

// StepJSON is one edge of a witness path.
type StepJSON struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// buildOptions maps a request onto rpq.Options, applying the service's
// defaults and caps.
func (s *Server) buildOptions(q QueryOptions) (*rpq.Options, error) {
	opts := &rpq.Options{
		Witnesses: q.Witnesses,
		Backward:  q.Backward,
		Start:     q.Start,
		Compact:   q.Compact,
		SCCOrder:  q.SCCOrder,
		Explain:   q.Explain,
		Workers:   q.Workers,
		Cache:     s.cache,
		Gauges:    s.gauges,
		SlowLog:   s.cfg.SlowLog,
		Watchdog:  s.cfg.Watchdog,
		Lint:      !s.cfg.DisableLint && !q.NoLint,
	}
	if opts.Workers == 0 {
		opts.Workers = s.cfg.Workers
	}
	switch q.Algorithm {
	case "", "auto":
		opts.Algorithm = rpq.Auto
	case "basic":
		opts.Algorithm = rpq.Basic
	case "memo":
		opts.Algorithm = rpq.Memo
	case "precomp":
		opts.Algorithm = rpq.Precompute
	case "enum":
		opts.Algorithm = rpq.Enumerate
	case "hybrid":
		opts.Algorithm = rpq.Hybrid
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want auto, basic, memo, precomp, enum, or hybrid)", q.Algorithm)
	}
	switch q.Table {
	case "", "hash":
		opts.Table = rpq.Hashing
	case "nested":
		opts.Table = rpq.NestedArrays
	default:
		return nil, fmt.Errorf("unknown table %q (want hash or nested)", q.Table)
	}
	switch q.Domains {
	case "", "refined":
		opts.Domains = rpq.RefinedDomains
	case "all":
		opts.Domains = rpq.AllSymbols
	default:
		return nil, fmt.Errorf("unknown domains %q (want refined or all)", q.Domains)
	}
	deadline := s.cfg.DefaultDeadline
	if q.DeadlineMS > 0 {
		deadline = time.Duration(q.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	opts.Deadline = deadline
	if s.hookOptions != nil {
		s.hookOptions(opts)
	}
	return opts, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ri := requestInfo(r)
	if !s.enter() {
		writeError(w, r, http.StatusServiceUnavailable, "draining", "service is shutting down")
		return
	}
	defer s.wg.Done()
	s.gRequests.Add(1)

	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxQueryBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad_request", "decode request: %v", err)
		return
	}
	switch req.Kind {
	case "", "exist", "universal", "violations":
	default:
		writeError(w, r, http.StatusBadRequest, "bad_request", "unknown kind %q (want exist, universal, or violations)", req.Kind)
		return
	}
	if req.Kind == "" {
		req.Kind = "exist"
	}
	if ri != nil {
		ri.kind = req.Kind
		ri.graph = req.Graph
	}
	if req.Pattern == "" {
		writeError(w, r, http.StatusBadRequest, "bad_request", "missing pattern")
		return
	}
	entry, ok := s.graph(req.Graph)
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown_graph", "graph %q is not in the catalog", req.Graph)
		return
	}
	opts, err := s.buildOptions(req.Options)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	// Admission: take a solve slot (bounded queue, 429 on overflow) before
	// any solver work. The request context covers the wait, so a client
	// that gives up while queued frees its queue slot immediately.
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, errOverloaded), errors.Is(err, errQueueWait):
			if ri != nil {
				ri.admission = "rejected"
			}
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeError(w, r, http.StatusTooManyRequests, "overloaded", "%v", err)
		default:
			// Client went away while queued; nothing useful to write.
			if ri != nil {
				ri.admission = "canceled"
			}
			writeError(w, r, StatusClientClosedRequest, "canceled", "client closed request while queued")
		}
		return
	}
	defer release()
	if ri != nil {
		ri.admission = "ok"
	}
	if s.hookAdmitted != nil {
		s.hookAdmitted(r.Context())
	}

	// The solve runs under a cancelable child of the request context:
	// client disconnects propagate automatically, and the cancel endpoint
	// reaches it through the active map, keyed by the in-flight registry id
	// delivered via OnBegin.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	var obsID int64
	opts.OnBegin = func(id int64) {
		obsID = id
		s.activeMu.Lock()
		s.active[id] = cancel
		s.activeMu.Unlock()
	}
	defer func() {
		if obsID != 0 {
			s.activeMu.Lock()
			delete(s.active, obsID)
			s.activeMu.Unlock()
		}
	}()

	t0 := time.Now()
	res, err := s.runQuery(ctx, entry, &req, opts)
	entry.queries.Add(1)
	if ri != nil {
		ri.queryID = obsID
	}
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	if ri != nil {
		ri.cpuNS = res.Stats.CPUTime.Nanoseconds()
		ri.allocBytes = res.Stats.AllocBytes
	}
	out := QueryResponse{
		QueryID:   obsID,
		Graph:     req.Graph,
		Kind:      req.Kind,
		Pattern:   req.Pattern,
		ElapsedMS: float64(time.Since(t0).Microseconds()) / 1e3,
		Answers:   make([]AnswerJSON, 0, len(res.Answers)),
		Stats:     res.Stats,
		Explain:   res.Explain,
	}
	for _, a := range res.Answers {
		aj := AnswerJSON{Vertex: a.Vertex}
		for _, b := range a.Bindings {
			aj.Bindings = append(aj.Bindings, BindingJSON{Param: b.Param, Symbol: b.Symbol})
		}
		for _, st := range a.Witness {
			aj.Witness = append(aj.Witness, StepJSON{From: st.From, Label: st.Label, To: st.To})
		}
		out.Answers = append(out.Answers, aj)
	}
	writeJSON(w, http.StatusOK, out)
}

// runQuery dispatches one admitted request to the engine.
func (s *Server) runQuery(ctx context.Context, entry *graphEntry, req *QueryRequest, opts *rpq.Options) (*rpq.Result, error) {
	p, err := rpq.ParsePattern(req.Pattern)
	if err != nil {
		return nil, &patternError{err}
	}
	switch req.Kind {
	case "universal":
		return entry.g.UniversalContext(ctx, p, opts)
	case "violations":
		return entry.g.ViolationsContext(ctx, req.Pattern, req.WithExit, opts)
	default:
		return entry.g.ExistContext(ctx, p, opts)
	}
}

// patternError marks a pattern parse failure for status mapping.
type patternError struct{ err error }

func (e *patternError) Error() string { return e.err.Error() }
func (e *patternError) Unwrap() error { return e.err }

// writeQueryError maps engine errors onto HTTP statuses: parse and lint
// failures are the client's fault (400, with the RPQ0xx diagnostics as
// structured JSON), deadline breaches are 504 with the partial stats,
// cancellations are 499, a failed universal determinism check with an
// explicitly requested algorithm is 422, and anything else is a 500.
func (s *Server) writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *patternError
	if errors.As(err, &pe) {
		writeError(w, r, http.StatusBadRequest, "bad_pattern", "%v", pe.err)
		return
	}
	var le *rpq.LintError
	if errors.As(err, &le) {
		e := apiError{
			Error:       "lint_rejected",
			Message:     le.Error(),
			Diagnostics: le.Diags,
		}
		stampIdentity(r, &e)
		writeJSON(w, http.StatusBadRequest, e)
		return
	}
	var ie *rpq.InterruptError
	if errors.As(err, &ie) {
		code, name := StatusClientClosedRequest, "canceled"
		if errors.Is(err, rpq.ErrDeadline) {
			code, name = http.StatusGatewayTimeout, "deadline_exceeded"
		} else {
			s.gCanceled.Add(1)
		}
		body := map[string]any{
			"error":   name,
			"message": err.Error(),
			"stats":   ie.Stats,
		}
		if ri := requestInfo(r); ri != nil {
			ri.cpuNS = ie.Stats.CPUTime.Nanoseconds()
			ri.allocBytes = ie.Stats.AllocBytes
			body["request_id"] = ri.requestID
			body["trace_id"] = ri.trace.TraceIDString()
		}
		writeJSON(w, code, body)
		return
	}
	if errors.Is(err, rpq.ErrNondeterministic) {
		writeError(w, r, http.StatusUnprocessableEntity, "nondeterministic", "%v", err)
		return
	}
	writeError(w, r, http.StatusInternalServerError, "internal", "%v", err)
}

// handleListQueries serves the queries executing right now, straight from
// the in-flight registry the solvers report into (the same data as
// /debug/rpq/queries on the observability server), plus the admission view.
func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	snaps := s.cfg.Inflight.Snapshots()
	if snaps == nil {
		snaps = []rpq.QuerySnapshot{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":   snaps,
		"admission": s.adm.stats(),
	})
}

// handleCancelQuery cancels one in-flight query by its registry id. The
// canceled query's own request returns 499 with partial stats; this request
// returns whether the id was found.
func (s *Server) handleCancelQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad_request", "bad query id %q", r.PathValue("id"))
		return
	}
	s.activeMu.Lock()
	cancel, ok := s.active[id]
	s.activeMu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown_query", "query %d is not executing through this service", id)
		return
	}
	cancel()
	writeJSON(w, http.StatusAccepted, map[string]any{"canceling": id})
}
