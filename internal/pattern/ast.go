// Package pattern implements parametric regular-expression patterns: the
// query patterns of Liu et al., "Parametric Regular Path Queries" (PLDI
// 2004), Section 2. A pattern is a regular expression whose alphabet
// elements are transition labels (package label), which may contain
// parameters, wildcards, and negations.
package pattern

import (
	"sort"
	"strings"

	"rpq/internal/label"
	"rpq/internal/span"
)

// Expr is a node of a pattern's abstract syntax tree.
type Expr interface {
	isExpr()
	// write renders the expression into b; prec is the precedence of the
	// enclosing context (0 alternation, 1 concatenation, 2 repetition).
	write(b *strings.Builder, prec int)
}

// Each node carries the source Span the parser read it from; nodes built
// programmatically (the constructors below, Simplify, Mirror) have the zero
// span, which SpanOf callers treat as "no position". Spans are ignored by
// Equal.

// Epsilon matches the empty path. Written "eps".
type Epsilon struct {
	Span span.Span
}

// Lbl matches a single edge whose label matches the transition label Term.
type Lbl struct {
	Term *label.Term
	Span span.Span
}

// Concat matches the concatenation of its items.
type Concat struct {
	Items []Expr
	Span  span.Span
}

// Alt matches any one of its items.
type Alt struct {
	Items []Expr
	Span  span.Span
}

// Star matches zero or more repetitions of Sub.
type Star struct {
	Sub  Expr
	Span span.Span
}

// Plus matches one or more repetitions of Sub.
type Plus struct {
	Sub  Expr
	Span span.Span
}

// Opt matches zero or one occurrence of Sub.
type Opt struct {
	Sub  Expr
	Span span.Span
}

// SpanOf returns the source span of a node (the zero span for nodes not
// produced by the parser). For nodes whose own span is unset but whose
// children were parsed, it falls back to the union of the children's spans,
// so simplified or partially rebuilt trees keep approximate positions.
func SpanOf(e Expr) span.Span {
	switch n := e.(type) {
	case Epsilon:
		return n.Span
	case *Lbl:
		return n.Span
	case *Concat:
		if n.Span.Valid() {
			return n.Span
		}
		var s span.Span
		for _, it := range n.Items {
			s = s.Join(SpanOf(it))
		}
		return s
	case *Alt:
		if n.Span.Valid() {
			return n.Span
		}
		var s span.Span
		for _, it := range n.Items {
			s = s.Join(SpanOf(it))
		}
		return s
	case *Star:
		if n.Span.Valid() {
			return n.Span
		}
		return SpanOf(n.Sub)
	case *Plus:
		if n.Span.Valid() {
			return n.Span
		}
		return SpanOf(n.Sub)
	case *Opt:
		if n.Span.Valid() {
			return n.Span
		}
		return SpanOf(n.Sub)
	}
	return span.Span{}
}

func (Epsilon) isExpr() {}
func (*Lbl) isExpr()    {}
func (*Concat) isExpr() {}
func (*Alt) isExpr()    {}
func (*Star) isExpr()   {}
func (*Plus) isExpr()   {}
func (*Opt) isExpr()    {}

// Convenience constructors.

// Eps returns the empty-path pattern.
func Eps() Expr { return Epsilon{} }

// L returns a single-label pattern for the given transition label.
func L(t *label.Term) Expr { return &Lbl{Term: t} }

// Lit parses s as a transition label (pattern mode) and returns the
// single-label pattern; it panics on parse errors.
func Lit(s string) Expr { return L(label.MustParse(s, label.PatternMode)) }

// Seq returns the concatenation of the given patterns.
func Seq(items ...Expr) Expr {
	if len(items) == 1 {
		return items[0]
	}
	return &Concat{Items: items}
}

// Or returns the alternation of the given patterns.
func Or(items ...Expr) Expr {
	if len(items) == 1 {
		return items[0]
	}
	return &Alt{Items: items}
}

// Rep returns sub*.
func Rep(sub Expr) Expr { return &Star{Sub: sub} }

// Rep1 returns sub+.
func Rep1(sub Expr) Expr { return &Plus{Sub: sub} }

// Maybe returns sub?.
func Maybe(sub Expr) Expr { return &Opt{Sub: sub} }

// Any returns the wildcard label pattern "_".
func Any() Expr { return L(label.Wildcard()) }

// AnyStar returns "_*", the skip-anything prefix used by many queries.
func AnyStar() Expr { return Rep(Any()) }

// String renders the pattern in the syntax accepted by Parse.
func String(e Expr) string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

func (Epsilon) write(b *strings.Builder, prec int) { b.WriteString("eps") }

func (l *Lbl) write(b *strings.Builder, prec int) {
	s := l.Term.String()
	// A negated alternation label renders as !(a|b); it needs no extra
	// parentheses because '!' binds it syntactically.
	b.WriteString(s)
}

func (c *Concat) write(b *strings.Builder, prec int) {
	if prec > 1 {
		b.WriteByte('(')
	}
	for i, it := range c.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		it.write(b, 1)
	}
	if prec > 1 {
		b.WriteByte(')')
	}
}

func (a *Alt) write(b *strings.Builder, prec int) {
	if prec > 0 {
		b.WriteByte('(')
	}
	for i, it := range a.Items {
		if i > 0 {
			b.WriteString(" | ")
		}
		it.write(b, 0)
	}
	if prec > 0 {
		b.WriteByte(')')
	}
}

func writeRep(b *strings.Builder, sub Expr, suffix byte) {
	switch sub.(type) {
	case Epsilon, *Lbl:
		sub.write(b, 2)
	default:
		b.WriteByte('(')
		sub.write(b, 0)
		b.WriteByte(')')
	}
	b.WriteByte(suffix)
}

func (s *Star) write(b *strings.Builder, prec int) { writeRep(b, s.Sub, '*') }
func (p *Plus) write(b *strings.Builder, prec int) { writeRep(b, p.Sub, '+') }
func (o *Opt) write(b *strings.Builder, prec int)  { writeRep(b, o.Sub, '?') }

// Params returns the sorted parameter names occurring in the pattern.
func Params(e Expr) []string {
	set := map[string]bool{}
	collectParams(e, set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func collectParams(e Expr, set map[string]bool) {
	switch n := e.(type) {
	case Epsilon:
	case *Lbl:
		for _, p := range n.Term.Params() {
			set[p] = true
		}
	case *Concat:
		for _, it := range n.Items {
			collectParams(it, set)
		}
	case *Alt:
		for _, it := range n.Items {
			collectParams(it, set)
		}
	case *Star:
		collectParams(n.Sub, set)
	case *Plus:
		collectParams(n.Sub, set)
	case *Opt:
		collectParams(n.Sub, set)
	}
}

// Labels returns every transition label occurring in the pattern, in
// left-to-right order (with duplicates).
func Labels(e Expr) []*label.Term {
	var out []*label.Term
	var rec func(Expr)
	rec = func(e Expr) {
		switch n := e.(type) {
		case *Lbl:
			out = append(out, n.Term)
		case *Concat:
			for _, it := range n.Items {
				rec(it)
			}
		case *Alt:
			for _, it := range n.Items {
				rec(it)
			}
		case *Star:
			rec(n.Sub)
		case *Plus:
			rec(n.Sub)
		case *Opt:
			rec(n.Sub)
		}
	}
	rec(e)
	return out
}

// Size returns the number of AST nodes, a proxy for pattern size |P|.
func Size(e Expr) int {
	n := 1
	switch x := e.(type) {
	case *Concat:
		for _, it := range x.Items {
			n += Size(it)
		}
	case *Alt:
		for _, it := range x.Items {
			n += Size(it)
		}
	case *Star:
		n += Size(x.Sub)
	case *Plus:
		n += Size(x.Sub)
	case *Opt:
		n += Size(x.Sub)
	}
	return n
}

// Equal reports structural equality of two patterns.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Epsilon:
		_, ok := b.(Epsilon)
		return ok
	case *Lbl:
		y, ok := b.(*Lbl)
		return ok && x.Term.Equal(y.Term)
	case *Concat:
		y, ok := b.(*Concat)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case *Alt:
		y, ok := b.(*Alt)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case *Star:
		y, ok := b.(*Star)
		return ok && Equal(x.Sub, y.Sub)
	case *Plus:
		y, ok := b.(*Plus)
		return ok && Equal(x.Sub, y.Sub)
	case *Opt:
		y, ok := b.(*Opt)
		return ok && Equal(x.Sub, y.Sub)
	}
	return false
}
