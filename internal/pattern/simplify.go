package pattern

// Simplify returns a normalized pattern accepting exactly the same language:
// nested concatenations and alternations are flattened, ε units dropped from
// concatenations, duplicate alternation arms removed, and repetition towers
// collapsed ((e*)* → e*, (e+)+ → e+, (e?)? → e?, (e*)? and (e?)* → e*,
// (e+)? and (e?)+ → e*, (e+)* and (e*)+ → e*). Query front-ends run it
// before compilation; smaller patterns mean fewer automaton states.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case Epsilon, *Lbl:
		return e
	case *Concat:
		var items []Expr
		for _, it := range x.Items {
			s := Simplify(it)
			switch y := s.(type) {
			case Epsilon:
				// ε is the concatenation unit.
			case *Concat:
				items = append(items, y.Items...)
			default:
				items = append(items, s)
			}
		}
		switch len(items) {
		case 0:
			return Epsilon{}
		case 1:
			return items[0]
		}
		return &Concat{Items: items}
	case *Alt:
		var items []Expr
		seen := map[string]bool{}
		for _, it := range x.Items {
			s := Simplify(it)
			arms := []Expr{s}
			if a, ok := s.(*Alt); ok {
				arms = a.Items
			}
			for _, arm := range arms {
				key := String(arm)
				if !seen[key] {
					seen[key] = true
					items = append(items, arm)
				}
			}
		}
		if len(items) == 1 {
			return items[0]
		}
		return &Alt{Items: items}
	case *Star:
		s := Simplify(x.Sub)
		switch y := s.(type) {
		case Epsilon:
			return Epsilon{}
		case *Star:
			return y
		case *Plus:
			return &Star{Sub: y.Sub}
		case *Opt:
			return &Star{Sub: y.Sub}
		}
		return &Star{Sub: s}
	case *Plus:
		s := Simplify(x.Sub)
		switch y := s.(type) {
		case Epsilon:
			return Epsilon{}
		case *Star:
			return y
		case *Plus:
			return y
		case *Opt:
			return &Star{Sub: y.Sub}
		}
		return &Plus{Sub: s}
	case *Opt:
		s := Simplify(x.Sub)
		switch y := s.(type) {
		case Epsilon:
			return Epsilon{}
		case *Star:
			return y
		case *Opt:
			return y
		case *Plus:
			return &Star{Sub: y.Sub}
		}
		return &Opt{Sub: s}
	}
	return e
}
