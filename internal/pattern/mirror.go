package pattern

// Mirror returns the reversal of the pattern: a word w matches e iff the
// reversed word matches Mirror(e). Concatenations flip their order; labels,
// alternations, and repetitions are unchanged in structure.
//
// Section 5.1 of the paper discusses converting between forward and backward
// formulations of a query; Mirror is the mechanical half of that conversion:
// a path v0 → v in G matches P exactly when the corresponding reversed path
// v → v0 in the reversed graph matches Mirror(P). (The other half — moving
// parameter bindings ahead of negations, as the paper's hand-written
// backward queries do by adding a site parameter — changes the query's
// answers and stays the query writer's choice.)
func Mirror(e Expr) Expr {
	switch x := e.(type) {
	case Epsilon:
		return x
	case *Lbl:
		return x
	case *Concat:
		items := make([]Expr, len(x.Items))
		for i, it := range x.Items {
			items[len(x.Items)-1-i] = Mirror(it)
		}
		return &Concat{Items: items}
	case *Alt:
		items := make([]Expr, len(x.Items))
		for i, it := range x.Items {
			items[i] = Mirror(it)
		}
		return &Alt{Items: items}
	case *Star:
		return &Star{Sub: Mirror(x.Sub)}
	case *Plus:
		return &Plus{Sub: Mirror(x.Sub)}
	case *Opt:
		return &Opt{Sub: Mirror(x.Sub)}
	}
	return e
}
