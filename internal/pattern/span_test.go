package pattern

import (
	"strings"
	"testing"

	"rpq/internal/span"
)

// TestParseSpans pins the exact source spans the parser attaches to nodes.
func TestParseSpans(t *testing.T) {
	src := "(!def(x))* use(x)"
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*Concat)
	if !ok {
		t.Fatalf("parsed %T, want *Concat", e)
	}
	if got := SpanOf(c); got != span.New(1, 17) {
		t.Errorf("concat span = %v", got)
	}
	st, ok := c.Items[0].(*Star)
	if !ok {
		t.Fatalf("first item is %T, want *Star", c.Items[0])
	}
	if got := SpanOf(st); got != span.New(1, 10) {
		t.Errorf("star span = %v, want {1 10}", got)
	}
	lbl := st.Sub.(*Lbl)
	if got := lbl.Span; got != span.New(1, 8) {
		t.Errorf("negated label span = %v, want {1 8}", got)
	}
	if got := src[lbl.Span.Start:lbl.Span.End]; got != "!def(x)" {
		t.Errorf("label span text = %q", got)
	}
	use := c.Items[1].(*Lbl)
	if got := src[use.Span.Start:use.Span.End]; got != "use(x)" {
		t.Errorf("use span text = %q", got)
	}
}

func TestParseSpanEps(t *testing.T) {
	e, err := Parse("eps | use(x)")
	if err != nil {
		t.Fatal(err)
	}
	a := e.(*Alt)
	eps, ok := a.Items[0].(Epsilon)
	if !ok {
		t.Fatalf("first alt item is %T", a.Items[0])
	}
	if eps.Span != span.New(0, 3) {
		t.Errorf("eps span = %v", eps.Span)
	}
	if got := SpanOf(a); got != span.New(0, 12) {
		t.Errorf("alt span = %v", got)
	}
}

// TestParseErrorLineCol pins the new line:col error rendering with the caret
// snippet, replacing the old whole-source "at offset %d in %q" format.
func TestParseErrorLineCol(t *testing.T) {
	_, err := Parse("use(x")
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Off != 5 {
		t.Errorf("offset = %d, want 5", pe.Off)
	}
	msg := err.Error()
	if !strings.Contains(msg, "at 1:6") {
		t.Errorf("error lacks line:col: %q", msg)
	}
	if !strings.Contains(msg, "^") {
		t.Errorf("error lacks caret snippet: %q", msg)
	}
	if strings.Contains(msg, "offset") {
		t.Errorf("error still mentions byte offsets: %q", msg)
	}
}

// TestParseErrorMultiline checks line accounting across newlines and
// comments.
func TestParseErrorMultiline(t *testing.T) {
	src := "# leading comment\n_* use(x)\n(!def(x* )"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), " 3:") {
		t.Errorf("error not on line 3: %q", err.Error())
	}
}

// TestParseErrorTrimsLargeSource ensures a syntax error inside a large
// generated pattern renders a bounded snippet rather than echoing the whole
// source.
func TestParseErrorTrimsLargeSource(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 400; i++ {
		b.WriteString("use(x) ")
	}
	b.WriteString("def(") // unterminated
	_, err := Parse(b.String())
	if err == nil {
		t.Fatal("want error")
	}
	if len(err.Error()) > 300 {
		t.Errorf("error message is %d bytes; snippet not trimmed", len(err.Error()))
	}
}

// TestLabelParseErrorFormat pins that the label sub-parser's standalone
// errors use the same line:col + caret format.
func TestLabelParseErrorFormat(t *testing.T) {
	_, err := Parse("use(x,)")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "at 1:7") {
		t.Errorf("rebased label error position wrong: %q", err.Error())
	}
}
