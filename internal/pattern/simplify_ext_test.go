package pattern_test

// External test package so the language-preservation check can use the
// automata construction without an import cycle.

import (
	"math/rand"
	"testing"

	"rpq/internal/automata"
	"rpq/internal/label"
	"rpq/internal/pattern"
)

func TestSimplifyRules(t *testing.T) {
	cases := [][2]string{
		{"(a()*)*", "a()*"},
		{"(a()+)+", "a()+"},
		{"(a()?)?", "a()?"},
		{"(a()*)?", "a()*"},
		{"(a()?)*", "a()*"},
		{"(a()+)?", "a()*"},
		{"(a()?)+", "a()*"},
		{"(a()+)*", "a()*"},
		{"(a()*)+", "a()*"},
		{"eps a() eps", "a()"},
		{"a() (b() c())", "a() b() c()"},
		{"(a()|b())|a()", "a() | b()"},
		{"eps*", "eps"},
		{"eps?", "eps"},
		{"eps+", "eps"},
		{"(eps eps)", "eps"},
		{"a()|a()", "a()"},
	}
	for _, c := range cases {
		got := pattern.Simplify(pattern.MustParse(c[0]))
		want := pattern.MustParse(c[1])
		if !pattern.Equal(got, want) {
			t.Errorf("Simplify(%s) = %s, want %s", c[0], pattern.String(got), c[1])
		}
	}
}

// accepts runs an NFA over a word under a full substitution.
func accepts(n *automata.NFA, word []*label.CTerm, th []int32) bool {
	cur := map[int32]bool{n.Start: true}
	for _, el := range word {
		next := map[int32]bool{}
		for s := range cur {
			for _, tr := range n.Trans[s] {
				if label.MatchGround(tr.Label, el, th) {
					next[tr.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if n.Final[s] {
			return true
		}
	}
	return false
}

func genSimpExpr(rng *rand.Rand, depth int) pattern.Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return pattern.Eps()
		case 1:
			return pattern.Lit("a(x)")
		case 2:
			return pattern.Lit("b()")
		default:
			return pattern.Any()
		}
	}
	switch rng.Intn(6) {
	case 0:
		return pattern.Seq(genSimpExpr(rng, depth-1), genSimpExpr(rng, depth-1))
	case 1:
		return pattern.Or(genSimpExpr(rng, depth-1), genSimpExpr(rng, depth-1))
	case 2:
		return pattern.Rep(genSimpExpr(rng, depth-1))
	case 3:
		return pattern.Rep1(genSimpExpr(rng, depth-1))
	case 4:
		return pattern.Maybe(genSimpExpr(rng, depth-1))
	default:
		return genSimpExpr(rng, depth-1)
	}
}

// TestSimplifyPreservesLanguage compares acceptance of the original and the
// simplified pattern on random words and substitutions, and checks that
// simplification never grows the pattern.
func TestSimplifyPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 300; trial++ {
		e := genSimpExpr(rng, 4)
		s := pattern.Simplify(e)
		if pattern.Size(s) > pattern.Size(e) {
			t.Fatalf("Simplify grew %s (%d) to %s (%d)",
				pattern.String(e), pattern.Size(e), pattern.String(s), pattern.Size(s))
		}
		// Idempotence.
		if !pattern.Equal(pattern.Simplify(s), s) {
			t.Fatalf("Simplify not idempotent on %s -> %s", pattern.String(e), pattern.String(s))
		}
		u := label.NewUniverse()
		ps := &label.ParamSpace{}
		n1 := automata.MustFromPattern(e, u, ps)
		n2 := automata.MustFromPattern(s, u, ps)
		var letters []*label.CTerm
		for _, l := range []string{"a(k)", "a(m)", "b()", "c()"} {
			c, err := label.CompileGround(label.MustParse(l, label.GroundMode), u)
			if err != nil {
				t.Fatal(err)
			}
			letters = append(letters, c)
		}
		syms := u.AllSymbols()
		for w := 0; w < 30; w++ {
			word := make([]*label.CTerm, rng.Intn(5))
			for i := range word {
				word[i] = letters[rng.Intn(len(letters))]
			}
			th := make([]int32, ps.Len())
			for i := range th {
				th[i] = syms[rng.Intn(len(syms))]
			}
			if accepts(n1, word, th) != accepts(n2, word, th) {
				t.Fatalf("language changed: %s vs %s on %v", pattern.String(e), pattern.String(s), word)
			}
		}
	}
}
