package pattern

import (
	"fmt"

	"rpq/internal/label"
)

// Parse reads a pattern from its textual syntax.
//
// Grammar:
//
//	pattern := alt
//	alt     := concat ('|' concat)*
//	concat  := rep+
//	rep     := atom ('*' | '+' | '?')*
//	atom    := '(' alt ')' | 'eps' | LABEL
//
// where LABEL is a transition label in the syntax of package label, pattern
// mode: bare identifiers in argument position are parameters, quoted
// identifiers and numbers are symbols, '_' is a wildcard, '!' negates, and
// '!( a | b )' is a negated label alternation. Examples from the paper:
//
//	(!def(x))* use(x)
//	_* use(x,l) (!def(x))* entry()
//	(eps | _* close(f)) (!open(f))* access(f)
//	_* state(s) act('i')+ state(s)
//	((!access(x))* acq(l) (!rel(l))*)*
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("pattern: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		case '#':
			// Line comment to end of line.
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseAlt() (Expr, error) {
	var items []Expr
	for {
		c, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		items = append(items, c)
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &Alt{Items: items}, nil
}

func (p *parser) parseConcat() (Expr, error) {
	var items []Expr
	for {
		p.skipSpace()
		if !p.atAtomStart() {
			break
		}
		r, err := p.parseRep()
		if err != nil {
			return nil, err
		}
		items = append(items, r)
	}
	if len(items) == 0 {
		return nil, p.errf("expected a label, 'eps', or '('")
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &Concat{Items: items}, nil
}

// atAtomStart reports whether the next character can begin an atom.
func (p *parser) atAtomStart() bool {
	switch c := p.peek(); {
	case c == '(' || c == '!' || c == '_':
		return true
	case c == 0 || c == ')' || c == '|' || c == '*' || c == '+' || c == '?':
		return false
	default:
		return label.ParseArgsHint(p.src[p.pos:])
	}
}

func (p *parser) parseRep() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			e = &Star{Sub: e}
		case '+':
			p.pos++
			e = &Plus{Sub: e}
		case '?':
			p.pos++
			e = &Opt{Sub: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return e, nil
	case c == 0:
		return nil, p.errf("unexpected end of pattern")
	default:
		// The 'eps' keyword, unless it is a constructor application eps(...).
		if hasKeyword(p.src[p.pos:], "eps") {
			p.pos += 3
			return Epsilon{}, nil
		}
		t, n, err := label.ParsePrefix(p.src[p.pos:], label.PatternMode)
		if err != nil {
			return nil, p.errf("bad label: %v", err)
		}
		p.pos += n
		return &Lbl{Term: t}, nil
	}
}

// hasKeyword reports whether s begins with the keyword kw not followed by an
// identifier character or '('.
func hasKeyword(s, kw string) bool {
	if len(s) < len(kw) || s[:len(kw)] != kw {
		return false
	}
	if len(s) == len(kw) {
		return true
	}
	c := s[len(kw)]
	if c == '(' {
		return false
	}
	return !(c == '_' || c == '.' || c == '-' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9'))
}
