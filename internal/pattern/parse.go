package pattern

import (
	"errors"
	"fmt"
	"strings"

	"rpq/internal/label"
	"rpq/internal/span"
)

// ParseError is a pattern syntax error carrying the byte offset of the
// failure; it renders as line:col with a trimmed caret snippet, so errors on
// large generated patterns stay readable.
type ParseError struct {
	// Src is the full pattern source.
	Src string
	// Off is the byte offset of the error within Src.
	Off int
	// Msg describes the error.
	Msg string
}

// Error renders "pattern: <msg> at <line:col>" with a caret snippet.
func (e *ParseError) Error() string {
	s := fmt.Sprintf("pattern: %s at %s", e.Msg, span.PosOf(e.Src, e.Off))
	if snip := span.Caret(e.Src, span.Point(e.Off)); snip != "" {
		s += "\n  " + strings.ReplaceAll(snip, "\n", "\n  ")
	}
	return s
}

// Parse reads a pattern from its textual syntax.
//
// Grammar:
//
//	pattern := alt
//	alt     := concat ('|' concat)*
//	concat  := rep+
//	rep     := atom ('*' | '+' | '?')*
//	atom    := '(' alt ')' | 'eps' | LABEL
//
// where LABEL is a transition label in the syntax of package label, pattern
// mode: bare identifiers in argument position are parameters, quoted
// identifiers and numbers are symbols, '_' is a wildcard, '!' negates, and
// '!( a | b )' is a negated label alternation. Examples from the paper:
//
//	(!def(x))* use(x)
//	_* use(x,l) (!def(x))* entry()
//	(eps | _* close(f)) (!open(f))* access(f)
//	_* state(s) act('i')+ state(s)
//	((!access(x))* acq(l) (!rel(l))*)*
//
// Every node of the returned AST carries the source span it was read from
// (see SpanOf); parse errors are *ParseError values positioned by line:col.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return e, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return p.errAt(p.pos, format, args...)
}

func (p *parser) errAt(off int, format string, args ...any) error {
	return &ParseError{Src: p.src, Off: off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		case '#':
			// Line comment to end of line.
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseAlt() (Expr, error) {
	var items []Expr
	for {
		c, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		items = append(items, c)
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
	}
	if len(items) == 1 {
		return items[0], nil
	}
	var sp span.Span
	for _, it := range items {
		sp = sp.Join(SpanOf(it))
	}
	return &Alt{Items: items, Span: sp}, nil
}

func (p *parser) parseConcat() (Expr, error) {
	var items []Expr
	for {
		p.skipSpace()
		if !p.atAtomStart() {
			break
		}
		r, err := p.parseRep()
		if err != nil {
			return nil, err
		}
		items = append(items, r)
	}
	if len(items) == 0 {
		return nil, p.errf("expected a label, 'eps', or '('")
	}
	if len(items) == 1 {
		return items[0], nil
	}
	var sp span.Span
	for _, it := range items {
		sp = sp.Join(SpanOf(it))
	}
	return &Concat{Items: items, Span: sp}, nil
}

// atAtomStart reports whether the next character can begin an atom.
func (p *parser) atAtomStart() bool {
	switch c := p.peek(); {
	case c == '(' || c == '!' || c == '_':
		return true
	case c == 0 || c == ')' || c == '|' || c == '*' || c == '+' || c == '?':
		return false
	default:
		return label.ParseArgsHint(p.src[p.pos:])
	}
}

func (p *parser) parseRep() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		op := p.pos
		switch p.peek() {
		case '*':
			p.pos++
			e = &Star{Sub: e, Span: SpanOf(e).Join(span.Point(op))}
		case '+':
			p.pos++
			e = &Plus{Sub: e, Span: SpanOf(e).Join(span.Point(op))}
		case '?':
			p.pos++
			e = &Opt{Sub: e, Span: SpanOf(e).Join(span.Point(op))}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return e, nil
	case c == 0:
		return nil, p.errf("unexpected end of pattern")
	default:
		// The 'eps' keyword, unless it is a constructor application eps(...).
		if hasKeyword(p.src[p.pos:], "eps") {
			start := p.pos
			p.pos += 3
			return Epsilon{Span: span.New(start, p.pos)}, nil
		}
		start := p.pos
		t, n, err := label.ParsePrefix(p.src[p.pos:], label.PatternMode)
		if err != nil {
			// Rebase the sub-parser's offset into the pattern source so the
			// caret points into the full pattern, not the label fragment.
			var le *label.ParseError
			if errors.As(err, &le) {
				return nil, p.errAt(start+le.Off, "bad label: %s", le.Msg)
			}
			return nil, p.errAt(start, "bad label: %v", err)
		}
		p.pos += n
		return &Lbl{Term: t, Span: span.New(start, p.pos)}, nil
	}
}

// hasKeyword reports whether s begins with the keyword kw not followed by an
// identifier character or '('.
func hasKeyword(s, kw string) bool {
	if len(s) < len(kw) || s[:len(kw)] != kw {
		return false
	}
	if len(s) == len(kw) {
		return true
	}
	c := s[len(kw)]
	if c == '(' {
		return false
	}
	return !(c == '_' || c == '.' || c == '-' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9'))
}
