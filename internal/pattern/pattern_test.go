package pattern

import (
	"math/rand"
	"testing"

	"rpq/internal/label"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
	}{
		{"def(x)", Lit("def(x)")},
		{"eps", Eps()},
		{"_", Any()},
		{"_*", AnyStar()},
		{"def(x) use(x)", Seq(Lit("def(x)"), Lit("use(x)"))},
		{"def(x)|use(x)", Or(Lit("def(x)"), Lit("use(x)"))},
		{"(def(x))*", Rep(Lit("def(x)"))},
		{"def(x)*", Rep(Lit("def(x)"))},
		{"def(x)+", Rep1(Lit("def(x)"))},
		{"def(x)?", Maybe(Lit("def(x)"))},
		{"(!def(x))* use(x)", Seq(Rep(Lit("!def(x)")), Lit("use(x)"))},
		{"a() (b() | c())* d()", Seq(Lit("a()"), Rep(Or(Lit("b()"), Lit("c()"))), Lit("d()"))},
		{"eps | _* close(f)", Or(Eps(), Seq(AnyStar(), Lit("close(f)")))},
		{"def(x)**", Rep(Rep(Lit("def(x)")))},
		{"eps()", L(label.App("eps"))},
		{"epsilon()", L(label.App("epsilon"))},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %s, want %s", c.in, String(got), String(c.want))
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Every query pattern appearing in the paper must parse.
	queries := []string{
		"(!def(x))* use(x)",
		"(!(def(x)|use(x)))* use(x)",
		"_* use(x) (!def(x))*",
		"_* exp(x,op,y) (!(def(x)|def(y)))*",
		"_* def(x,c) (!(def(x)|def(x,_)))*",
		"(eps | _* close(f)) (!open(f))* access(f)",
		"(!close(f))* open(f)",
		"_* free(p) (!malloc(p))* (free(p)|deref(p))",
		"_* save(x) change() (!restore(x))* exit()",
		"_* open(f) (!close(f))* seteuid(!0)",
		"((!access(x))* acq(l) (!rel(l))*)*",
		"_* acq(l1) (!rel(l1))* acq(l2) _*",
		"_* state(s) act(_)",
		"_* state(s) act('i')+ state(s)",
		"_* use(x,l) (!def(x))* entry()",
		"_* use(x,l) (!(def(x)|use(x,_)))* entry()",
		"_* use(x) (!def(x))* entry()",
		"(open(f) (access(f))* close(f))*",
	}
	for _, q := range queries {
		e, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", q, err)
			continue
		}
		// Round trip.
		back, err := Parse(String(e))
		if err != nil {
			t.Errorf("re-Parse(%q) error: %v", String(e), err)
			continue
		}
		if !Equal(back, e) {
			t.Errorf("round trip of %q: %s != %s", q, String(back), String(e))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"(def(x)",
		"def(x))",
		"*",
		"def(x) |",
		"| def(x)",
		"def(x | y",
		"def(x) ) use(y)",
		"!",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParams(t *testing.T) {
	e := MustParse("_* use(x,l) (!def(x))* entry()")
	got := Params(e)
	if len(got) != 2 || got[0] != "l" || got[1] != "x" {
		t.Errorf("Params = %v, want [l x]", got)
	}
	if n := len(Params(MustParse("_* state('s')"))); n != 0 {
		t.Errorf("ground pattern has %d params", n)
	}
}

func TestLabelsAndSize(t *testing.T) {
	e := MustParse("(!def(x))* use(x)")
	ls := Labels(e)
	if len(ls) != 2 {
		t.Fatalf("Labels = %d, want 2", len(ls))
	}
	if ls[0].String() != "!def(x)" || ls[1].String() != "use(x)" {
		t.Errorf("Labels = %v %v", ls[0], ls[1])
	}
	if Size(e) < 4 {
		t.Errorf("Size = %d, want >= 4", Size(e))
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	e, err := Parse("(!def(x))*  # skip defs\n use(x)")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(e, Seq(Rep(Lit("!def(x)")), Lit("use(x)"))) {
		t.Errorf("comment parsing changed the pattern: %s", String(e))
	}
}

// genExpr builds a random pattern for round-trip testing.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Eps()
		case 1:
			return Any()
		case 2:
			return Lit("def(x)")
		default:
			return Lit("use(x,y)")
		}
	}
	switch rng.Intn(7) {
	case 0:
		return Seq(genExpr(rng, depth-1), genExpr(rng, depth-1))
	case 1:
		return Or(genExpr(rng, depth-1), genExpr(rng, depth-1))
	case 2:
		return Rep(genExpr(rng, depth-1))
	case 3:
		return Rep1(genExpr(rng, depth-1))
	case 4:
		return Maybe(genExpr(rng, depth-1))
	case 5:
		return Lit("!(def(x)|use(x))")
	default:
		return genExpr(rng, depth-1)
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 4)
		s := String(e)
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q) failed: %v (from %#v)", s, err, e)
		}
		if String(back) != s {
			t.Fatalf("round trip not stable: %q -> %q", s, String(back))
		}
	}
}
