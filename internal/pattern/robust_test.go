package pattern

import (
	"math/rand"
	"strings"
	"testing"

	"rpq/internal/label"
)

// fuzzish produces adversarial strings from pattern-relevant fragments.
func fuzzish(rng *rand.Rand) string {
	frag := []string{
		"def", "use", "(", ")", "|", "*", "+", "?", "!", "_", ",", "'", "\"",
		"x", "eps", " ", "0", "9", "def(x)", "!(", "))", "((", "#c\n", "\t",
		"é", "'''", "state(s)",
	}
	var b strings.Builder
	for i := rng.Intn(12); i > 0; i-- {
		b.WriteString(frag[rng.Intn(len(frag))])
	}
	return b.String()
}

func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		s := fuzzish(rng)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", s, r)
				}
			}()
			e, err := Parse(s)
			if err == nil {
				// Anything that parses must print and re-parse stably.
				back, err2 := Parse(String(e))
				if err2 != nil {
					t.Fatalf("re-Parse of %q (from %q) failed: %v", String(e), s, err2)
				}
				if String(back) != String(e) {
					t.Fatalf("unstable print for %q: %q vs %q", s, String(back), String(e))
				}
			}
		}()
	}
}

func TestLabelParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 20000; i++ {
		s := fuzzish(rng)
		for _, mode := range []label.ParseMode{label.GroundMode, label.PatternMode} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("label.Parse(%q, %v) panicked: %v", s, mode, r)
					}
				}()
				_, _ = label.Parse(s, mode)
			}()
		}
	}
}
