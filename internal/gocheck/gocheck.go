// Package gocheck runs the rpqcheck catalog (internal/queries.GoChecks)
// over Go packages lowered by internal/gofront, turning existential query
// answers into findings with exact file:line:col spans, honoring
// //rpqcheck:allow suppressions, and diffing against committed baselines so
// CI fails only on *new* findings.
package gocheck

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"rpq"
	"rpq/internal/analyze"
	"rpq/internal/gofront"
	"rpq/internal/queries"
	"rpq/internal/span"
)

// Options configures one rpqcheck run.
type Options struct {
	// Checks selects catalog checks by name; empty means all.
	Checks []string
	// Workers bounds both the parallel CFG fan-out and the solver pool.
	Workers int
	// IncludeTests also analyzes _test.go files.
	IncludeTests bool
	// ShowSuppressed keeps //rpqcheck:allow-suppressed findings in the
	// report (marked), instead of dropping them.
	ShowSuppressed bool
}

// Finding is one check hit at one program point.
type Finding struct {
	Check   string    `json:"check"`
	File    string    `json:"file"`
	Line    int       `json:"line"`
	Col     int       `json:"col"`
	Span    span.Span `json:"span"`
	Message string    `json:"message"`
	// Bindings maps query parameters to the qualified symbols they bound
	// to (x -> pkg/path.Func.v).
	Bindings map[string]string `json:"bindings,omitempty"`
	// Vertex is the graph vertex the answer names, for debugging.
	Vertex     string `json:"vertex,omitempty"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// Pos renders the finding position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

// Advisory is a query-vs-graph lint diagnostic (RPQ010/RPQ011/RPQ016
// alphabet coverage): the check still ran, but its pattern references
// constructors this graph never emits, so its answer set may be silently
// smaller or larger than intended.
type Advisory struct {
	Check      string             `json:"check"`
	Diagnostic analyze.Diagnostic `json:"diagnostic"`
}

// Stats summarizes the run for the report footer.
type Stats struct {
	Functions int   `json:"functions"`
	Vertices  int   `json:"vertices"`
	Edges     int   `json:"edges"`
	BuildNS   int64 `json:"build_ns"`
	SolveNS   int64 `json:"solve_ns"`
}

// Report is the full result of one run; the JSON form is schema
// "rpqcheck/1".
type Report struct {
	Schema     string     `json:"schema"`
	Checks     []string   `json:"checks"`
	Findings   []Finding  `json:"findings"`
	Suppressed int        `json:"suppressed"`
	Advisories []Advisory `json:"advisories,omitempty"`
	Stats      Stats      `json:"stats"`
}

// Run loads the packages named by patterns (gofront.Load syntax) and
// evaluates the selected checks.
func Run(patterns []string, opts Options) (*Report, error) {
	rep, _, err := RunWithPrograms(patterns, opts)
	return rep, err
}

// RunWithPrograms is Run, also returning the program graphs it built
// (intra- and interprocedural; either may be nil when no selected check
// needed it) so callers can render source snippets or inspect the graphs.
func RunWithPrograms(patterns []string, opts Options) (*Report, []*gofront.Program, error) {
	checks, err := selectChecks(opts.Checks)
	if err != nil {
		return nil, nil, err
	}
	needIntra, needInter := false, false
	for _, c := range checks {
		if c.Interproc {
			needInter = true
		} else {
			needIntra = true
		}
	}
	t0 := time.Now()
	var intra, inter *gofront.Program
	if needIntra {
		intra, err = gofront.Load(patterns, gofront.Config{
			Workers: opts.Workers, IncludeTests: opts.IncludeTests,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	if needInter {
		inter, err = gofront.Load(patterns, gofront.Config{
			Interproc: true, Workers: opts.Workers, IncludeTests: opts.IncludeTests,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	build := time.Since(t0)
	rep, err := runChecks(checks, intra, inter, opts)
	if err != nil {
		return nil, nil, err
	}
	rep.Stats.BuildNS = build.Nanoseconds()
	return rep, []*gofront.Program{intra, inter}, nil
}

// RunSource is Run over in-memory sources (the service loader path).
func RunSource(files map[string]string, opts Options) (*Report, error) {
	checks, err := selectChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	intra, err := gofront.LoadSource(files, gofront.Config{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	inter, err := gofront.LoadSource(files, gofront.Config{Interproc: true, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return runChecks(checks, intra, inter, opts)
}

func selectChecks(names []string) ([]queries.GoCheck, error) {
	all := queries.GoChecks()
	if len(names) == 0 {
		return all, nil
	}
	var out []queries.GoCheck
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := queries.GoCheckByName(n)
		if !ok {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("gocheck: unknown check %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

func runChecks(checks []queries.GoCheck, intra, inter *gofront.Program, opts Options) (*Report, error) {
	rep := &Report{Schema: "rpqcheck/1"}
	stats := func(p *gofront.Program) {
		if p != nil && rep.Stats.Functions == 0 {
			rep.Stats.Functions = len(p.Funcs)
		}
		if p != nil && p.Graph.NumVertices() > rep.Stats.Vertices {
			rep.Stats.Vertices = p.Graph.NumVertices()
			rep.Stats.Edges = p.Graph.NumEdges()
		}
	}
	stats(inter)
	stats(intra)

	t0 := time.Now()
	seen := map[string]bool{}
	for _, c := range checks {
		rep.Checks = append(rep.Checks, c.Name)
		prog := intra
		if c.Interproc {
			prog = inter
		}
		if prog == nil {
			return nil, fmt.Errorf("gocheck: no program graph for %s", c.Name)
		}
		pat, err := rpq.ParsePattern(c.Pattern)
		if err != nil {
			return nil, fmt.Errorf("gocheck: %s: %w", c.Name, err)
		}
		// Alphabet-coverage advisories (RPQ010/011/016): schema drift
		// between the check patterns and what the frontend emitted.
		for _, d := range analyze.LintForGraph(prog.Graph, pat.Expr(), c.Pattern, analyze.Config{}) {
			switch d.Code {
			case analyze.CodeUnknownCtor, analyze.CodeArityMismatch, analyze.CodeAlphabetCoverage:
				rep.Advisories = append(rep.Advisories, Advisory{Check: c.Name, Diagnostic: d})
			}
		}
		res, err := rpq.WrapGraph(prog.Graph).Exist(pat, &rpq.Options{Workers: opts.Workers})
		if err != nil {
			return nil, fmt.Errorf("gocheck: %s: %w", c.Name, err)
		}
		for _, a := range res.Answers {
			f, ok := toFinding(c, a, prog)
			if !ok {
				continue
			}
			key := f.Check + "\x00" + f.Pos() + "\x00" + f.Message
			if seen[key] {
				continue
			}
			seen[key] = true
			if prog.Allowed(f.File, f.Line, f.Check) {
				rep.Suppressed++
				if !opts.ShowSuppressed {
					continue
				}
				f.Suppressed = true
			}
			rep.Findings = append(rep.Findings, f)
		}
	}
	rep.Stats.SolveNS = time.Since(t0).Nanoseconds()
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return rep, nil
}

// toFinding maps one existential answer to a finding at the answer
// vertex's source location. Answers at synthetic vertices (joins, entry
// frames) have no location and are dropped: every real check effect
// (use/close/lock/... step) records one.
func toFinding(c queries.GoCheck, a rpq.Answer, prog *gofront.Program) (Finding, bool) {
	loc, ok := prog.Location(a.Vertex)
	if !ok {
		return Finding{}, false
	}
	f := Finding{
		Check:  c.Name,
		File:   loc.File,
		Line:   loc.Line,
		Col:    loc.Col,
		Span:   loc.Span,
		Vertex: a.Vertex,
	}
	if len(a.Bindings) > 0 {
		f.Bindings = map[string]string{}
		for _, b := range a.Bindings {
			f.Bindings[b.Param] = b.Symbol
		}
	}
	f.Message = expandMessage(c.Message, f.Bindings)
	return f, true
}

// expandMessage replaces {param} placeholders with the short form of the
// bound symbol: pkg/path.Func.x#2 reads as x.
func expandMessage(tmpl string, bindings map[string]string) string {
	out := tmpl
	for p, sym := range bindings {
		out = strings.ReplaceAll(out, "{"+p+"}", shortSym(sym))
	}
	return out
}

func shortSym(sym string) string {
	s := sym
	if i := strings.LastIndexByte(s, '.'); i >= 0 && i+1 < len(s) {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, '#'); i > 0 {
		s = s[:i]
	}
	return s
}

// ---- rendering ----

// WriteText renders the report in vet style: pos: message [check], with an
// optional caret snippet from the loaded sources.
func (r *Report) WriteText(w io.Writer, prog func(file string) (string, bool), carets bool) {
	for _, f := range r.Findings {
		suffix := ""
		if f.Suppressed {
			suffix = " (suppressed)"
		}
		fmt.Fprintf(w, "%s: %s [%s]%s\n", f.Pos(), f.Message, f.Check, suffix)
		if carets && prog != nil {
			if src, ok := prog(f.File); ok {
				fmt.Fprint(w, indent(span.Caret(src, f.Span), "\t"))
			}
		}
	}
	if len(r.Advisories) > 0 {
		fmt.Fprintln(w, "# query/graph alphabet advisories:")
		for _, a := range r.Advisories {
			fmt.Fprintf(w, "# [%s] %s %s\n", a.Check, a.Diagnostic.Code, a.Diagnostic.Message)
		}
	}
	fmt.Fprintf(w, "%d finding(s), %d suppressed — %d function(s), %d vertices, %d edges\n",
		len(r.Findings), r.Suppressed, r.Stats.Functions, r.Stats.Vertices, r.Stats.Edges)
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// WriteJSON renders the rpqcheck/1 document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ---- baselines ----

// Baseline is the committed set of accepted findings. Entries are stable
// keys — check, file, and bound symbols, but no positions — so unrelated
// edits to a file do not churn the baseline, while full findings are kept
// alongside for human review.
type Baseline struct {
	Schema   string    `json:"schema"`
	Keys     []string  `json:"keys"`
	Findings []Finding `json:"findings"`
}

// BaselineKey is the stable identity of a finding for baseline diffing.
func BaselineKey(f Finding) string {
	parts := []string{f.Check, f.File}
	params := make([]string, 0, len(f.Bindings))
	for p := range f.Bindings {
		params = append(params, p)
	}
	sort.Strings(params)
	for _, p := range params {
		parts = append(parts, p+"="+f.Bindings[p])
	}
	return strings.Join(parts, "|")
}

// NewBaseline captures the report's non-suppressed findings.
func NewBaseline(r *Report) *Baseline {
	b := &Baseline{Schema: "rpqcheck-baseline/1"}
	seen := map[string]bool{}
	for _, f := range r.Findings {
		if f.Suppressed {
			continue
		}
		k := BaselineKey(f)
		if !seen[k] {
			seen[k] = true
			b.Keys = append(b.Keys, k)
		}
		b.Findings = append(b.Findings, f)
	}
	sort.Strings(b.Keys)
	return b
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("gocheck: %s: %w", path, err)
	}
	if b.Schema != "rpqcheck-baseline/1" {
		return nil, fmt.Errorf("gocheck: %s: unexpected schema %q", path, b.Schema)
	}
	return &b, nil
}

// WriteBaseline writes the baseline document.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Diff splits the report's findings into new (not in the baseline) and
// fixed baseline keys (no longer found).
func (b *Baseline) Diff(r *Report) (news []Finding, fixed []string) {
	have := map[string]bool{}
	for _, k := range b.Keys {
		have[k] = true
	}
	current := map[string]bool{}
	for _, f := range r.Findings {
		if f.Suppressed {
			continue
		}
		k := BaselineKey(f)
		current[k] = true
		if !have[k] {
			news = append(news, f)
		}
	}
	for _, k := range b.Keys {
		if !current[k] {
			fixed = append(fixed, k)
		}
	}
	return news, fixed
}
