package gocheck

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpq/internal/gofront"
)

const fixtures = "../../testdata/goprog"

// runFixture evaluates all checks over one fixture directory and renders
// findings one per line as "file:line:col check message", with file paths
// trimmed to their base name so goldens are location-independent.
func runFixture(t *testing.T, dir string, opts Options) (*Report, string) {
	t.Helper()
	rep, err := Run([]string{filepath.Join(fixtures, dir)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range rep.Findings {
		suffix := ""
		if f.Suppressed {
			suffix = " (suppressed)"
		}
		b.WriteString(filepath.Base(f.File))
		b.WriteString(":")
		b.WriteString(strings.TrimPrefix(f.Pos(), f.File+":"))
		b.WriteString(" ")
		b.WriteString(f.Check)
		b.WriteString(" ")
		b.WriteString(f.Message)
		b.WriteString(suffix)
		b.WriteString("\n")
	}
	return rep, b.String()
}

// TestFixtureFindings pins the exact finding set — positions included —
// for every seeded fixture. Regenerate with UPDATE_GOLDEN=1.
func TestFixtureFindings(t *testing.T) {
	for _, dir := range []string{"uninit", "closechan", "locks", "deferloop"} {
		t.Run(dir, func(t *testing.T) {
			_, got := runFixture(t, dir, Options{})
			golden := filepath.Join("testdata", dir+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch (regen with UPDATE_GOLDEN=1)\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestSeededPositive asserts the canonical known-positive: Report in the
// uninit fixture reads total before any assignment, flagged at the exact
// `return total` span.
func TestSeededPositive(t *testing.T) {
	rep, _ := runFixture(t, "uninit", Options{Checks: []string{"uninit-use"}})
	var hit *Finding
	for i, f := range rep.Findings {
		if strings.HasSuffix(f.Bindings["x"], ".Report.total") {
			hit = &rep.Findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("seeded uninit-use on Report.total not found; findings: %+v", rep.Findings)
	}
	if filepath.Base(hit.File) != "uninit.go" || hit.Line != 14 || hit.Col != 9 {
		t.Errorf("seeded finding at %s, want uninit.go:14:9 (the total read in `return total`)", hit.Pos())
	}
	if !hit.Span.Valid() {
		t.Errorf("seeded finding has no byte span: %+v", hit.Span)
	}
	if !strings.Contains(hit.Message, "total") {
		t.Errorf("message should name the short symbol: %q", hit.Message)
	}
}

// TestSuppression: the Allowed function in the uninit fixture carries
// //rpqcheck:allow uninit-use, so its finding is dropped by default and
// marked when ShowSuppressed is set.
func TestSuppression(t *testing.T) {
	rep, _ := runFixture(t, "uninit", Options{Checks: []string{"uninit-use"}})
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", rep.Suppressed)
	}
	for _, f := range rep.Findings {
		if strings.Contains(f.Bindings["x"], ".Allowed.") {
			t.Errorf("suppressed finding leaked into report: %+v", f)
		}
	}
	rep2, _ := runFixture(t, "uninit", Options{Checks: []string{"uninit-use"}, ShowSuppressed: true})
	found := false
	for _, f := range rep2.Findings {
		if strings.Contains(f.Bindings["x"], ".Allowed.") && f.Suppressed {
			found = true
		}
	}
	if !found {
		t.Errorf("ShowSuppressed should surface the allowed finding as suppressed")
	}
}

func TestBaselineRoundtrip(t *testing.T) {
	rep, _ := runFixture(t, "locks", Options{})
	if len(rep.Findings) == 0 {
		t.Fatal("locks fixture should produce findings")
	}
	base := NewBaseline(rep)
	var buf bytes.Buffer
	if err := base.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	news, fixed := loaded.Diff(rep)
	if len(news) != 0 || len(fixed) != 0 {
		t.Errorf("self-diff should be empty, got %d new, %d fixed", len(news), len(fixed))
	}
	// A report missing one finding shows it as fixed; an extra one is new.
	trimmed := *rep
	trimmed.Findings = rep.Findings[1:]
	news, fixed = loaded.Diff(&trimmed)
	if len(news) != 0 || len(fixed) == 0 {
		t.Errorf("dropping a finding: got %d new, %d fixed", len(news), len(fixed))
	}
	extra := *rep
	extra.Findings = append([]Finding{{Check: "double-lock", File: "other.go",
		Bindings: map[string]string{"m": "pkg.F.mu"}}}, rep.Findings...)
	news, _ = loaded.Diff(&extra)
	if len(news) != 1 {
		t.Errorf("added finding: got %d new, want 1", len(news))
	}
}

// TestAdvisories: a pattern negating a constructor the graph never emits
// surfaces an RPQ016 alphabet-coverage advisory alongside the findings.
func TestAdvisories(t *testing.T) {
	rep, err := RunSource(map[string]string{"main.go": `package p
func F() {
	ch := make(chan int)
	close(ch)
	ch <- 1
}`}, Options{Checks: []string{"use-after-close", "uninit-use"}})
	if err != nil {
		t.Fatal(err)
	}
	// This tiny program has no decl/lock/mcall edges, so at least one check
	// pattern references constructors absent from the alphabet.
	if len(rep.Advisories) == 0 {
		t.Errorf("expected alphabet advisories for the missing constructors")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Check == "use-after-close" {
			found = true
		}
	}
	if !found {
		t.Errorf("send-after-close not flagged; findings: %+v", rep.Findings)
	}
}

func TestRunSourceTxtar(t *testing.T) {
	files := gofront.SplitSource(`-- go.mod --
module demo

-- a.go --
package main

import "sync"

var mu sync.Mutex

func main() {
	mu.Lock()
	helper()
}

-- b.go --
package main

func helper() {
	mu.Lock()
}
`)
	rep, err := RunSource(files, Options{Checks: []string{"double-lock"}})
	if err != nil {
		t.Fatal(err)
	}
	// The double lock spans main -> helper: only the interprocedural graph
	// sees it.
	if len(rep.Findings) != 1 || rep.Findings[0].Bindings["m"] != "demo.mu" {
		t.Errorf("cross-function double-lock: %+v", rep.Findings)
	}
}

func TestTextAndJSONRendering(t *testing.T) {
	rep, _ := runFixture(t, "deferloop", Options{})
	var txt bytes.Buffer
	rep.WriteText(&txt, nil, false)
	if !strings.Contains(txt.String(), "[defer-in-loop]") {
		t.Errorf("text output missing check tag:\n%s", txt.String())
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"schema": "rpqcheck/1"`) {
		t.Errorf("json output missing schema:\n%s", js.String())
	}
}

func TestUnknownCheck(t *testing.T) {
	_, err := Run([]string{filepath.Join(fixtures, "uninit")}, Options{Checks: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Errorf("want unknown-check error, got %v", err)
	}
}
