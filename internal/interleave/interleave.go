// Package interleave builds labeled transition systems as interleaving
// products of small communicating processes with exclusive shared resources
// — the kind of "formal descriptions of real-life concurrent systems" the
// VLTS inputs of the paper's Table 2 were generated from. The resulting LTS
// feeds the Section 2.3 deadlock and livelock queries; dining philosophers
// is the classic instance (see examples/philosophers).
package interleave

import (
	"fmt"
	"sort"

	"rpq/internal/lts"
)

// Action is one step of a process: it may atomically acquire and/or release
// exclusive resources. An acquire is enabled only while the resource is
// free; a release only while this process holds it. Name becomes the LTS
// action label; use lts.Invisible ("i") for internal steps.
type Action struct {
	Name string
	Acq  string // resource to acquire, or ""
	Rel  string // resource to release, or ""
}

// Trans is a local transition of one process.
type Trans struct {
	From int
	Act  Action
	To   int
}

// Process is a small automaton; local state 0 is initial.
type Process struct {
	Name      string
	NumStates int
	Trans     []Trans
}

// Validate checks state indices.
func (p *Process) Validate() error {
	if p.NumStates <= 0 {
		return fmt.Errorf("interleave: process %s has no states", p.Name)
	}
	for _, t := range p.Trans {
		if t.From < 0 || t.From >= p.NumStates || t.To < 0 || t.To >= p.NumStates {
			return fmt.Errorf("interleave: process %s transition %d→%d out of range", p.Name, t.From, t.To)
		}
	}
	return nil
}

// Product explores the asynchronous interleaving of the processes under
// exclusive resource semantics and returns the reachable global transition
// system. Exploration is breadth-first and deterministic; it fails if more
// than maxStates global states are reached (0 means 1<<20).
func Product(procs []*Process, resources []string, maxStates int) (*lts.LTS, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	for _, p := range procs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	resIdx := map[string]int{}
	for i, r := range resources {
		if _, dup := resIdx[r]; dup {
			return nil, fmt.Errorf("interleave: duplicate resource %q", r)
		}
		resIdx[r] = i
	}
	for _, p := range procs {
		for _, t := range p.Trans {
			if t.Act.Acq != "" {
				if _, ok := resIdx[t.Act.Acq]; !ok {
					return nil, fmt.Errorf("interleave: process %s acquires unknown resource %q", p.Name, t.Act.Acq)
				}
			}
			if t.Act.Rel != "" {
				if _, ok := resIdx[t.Act.Rel]; !ok {
					return nil, fmt.Errorf("interleave: process %s releases unknown resource %q", p.Name, t.Act.Rel)
				}
			}
		}
	}

	// Global state: local state per process + owner per resource (-1 free).
	type gstate struct {
		locals []int8
		owners []int8
	}
	encode := func(s gstate) string {
		b := make([]byte, 0, len(s.locals)+len(s.owners))
		for _, l := range s.locals {
			b = append(b, byte(l))
		}
		for _, o := range s.owners {
			b = append(b, byte(o+1))
		}
		return string(b)
	}
	clone := func(s gstate) gstate {
		out := gstate{locals: make([]int8, len(s.locals)), owners: make([]int8, len(s.owners))}
		copy(out.locals, s.locals)
		copy(out.owners, s.owners)
		return out
	}

	init := gstate{locals: make([]int8, len(procs)), owners: make([]int8, len(resources))}
	for i := range init.owners {
		init.owners[i] = -1
	}
	ids := map[string]int32{encode(init): 0}
	states := []gstate{init}
	out := &lts.LTS{Initial: 0, NumStates: 1}

	for cur := 0; cur < len(states); cur++ {
		s := states[cur]
		for pi, p := range procs {
			// Deterministic exploration order: transitions sorted by
			// (From, Name, To) within each process.
			trans := append([]Trans(nil), p.Trans...)
			sort.Slice(trans, func(i, j int) bool {
				a, b := trans[i], trans[j]
				if a.From != b.From {
					return a.From < b.From
				}
				if a.Act.Name != b.Act.Name {
					return a.Act.Name < b.Act.Name
				}
				return a.To < b.To
			})
			for _, t := range trans {
				if int(s.locals[pi]) != t.From {
					continue
				}
				if t.Act.Acq != "" && s.owners[resIdx[t.Act.Acq]] != -1 {
					continue // resource held
				}
				if t.Act.Rel != "" && s.owners[resIdx[t.Act.Rel]] != int8(pi) {
					continue // not the holder
				}
				ns := clone(s)
				ns.locals[pi] = int8(t.To)
				if t.Act.Acq != "" {
					ns.owners[resIdx[t.Act.Acq]] = int8(pi)
				}
				if t.Act.Rel != "" {
					ns.owners[resIdx[t.Act.Rel]] = -1
				}
				key := encode(ns)
				id, ok := ids[key]
				if !ok {
					if len(states) >= maxStates {
						return nil, fmt.Errorf("interleave: state space exceeds %d states", maxStates)
					}
					id = int32(len(states))
					ids[key] = id
					states = append(states, ns)
				}
				name := t.Act.Name
				if name == "" {
					name = lts.Invisible
				}
				actionName := name
				if name != lts.Invisible {
					actionName = p.Name + "_" + name
				}
				out.Trans = append(out.Trans, lts.Transition{From: int32(cur), Action: actionName, To: id})
			}
		}
	}
	out.NumStates = len(states)
	return out, nil
}

// Philosopher builds process i of the dining philosophers: think, take the
// first fork, take the second, eat, put both back. With leftFirst the
// philosopher grabs the left fork first — all-left systems deadlock; making
// one philosopher right-first breaks the cycle.
func Philosopher(i, n int, leftFirst bool) *Process {
	left := fmt.Sprintf("fork%d", i)
	right := fmt.Sprintf("fork%d", (i+1)%n)
	first, second := left, right
	if !leftFirst {
		first, second = right, left
	}
	return &Process{
		Name:      fmt.Sprintf("phil%d", i),
		NumStates: 5,
		Trans: []Trans{
			{From: 0, Act: Action{Name: "take1", Acq: first}, To: 1},
			{From: 1, Act: Action{Name: "take2", Acq: second}, To: 2},
			{From: 2, Act: Action{Name: "eat"}, To: 3},
			{From: 3, Act: Action{Name: "put1", Rel: second}, To: 4},
			{From: 4, Act: Action{Name: "put2", Rel: first}, To: 0},
		},
	}
}

// Philosophers builds the n-party dining table; rightFirstAt (if in range)
// flips one philosopher's fork order to break the deadlock cycle.
func Philosophers(n int, rightFirstAt int) ([]*Process, []string) {
	procs := make([]*Process, n)
	var forks []string
	for i := 0; i < n; i++ {
		procs[i] = Philosopher(i, n, i != rightFirstAt)
		forks = append(forks, fmt.Sprintf("fork%d", i))
	}
	return procs, forks
}
