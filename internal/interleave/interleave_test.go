package interleave

import (
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
)

func TestProductSmall(t *testing.T) {
	// Two independent two-state processes: 4 global states.
	a := &Process{Name: "a", NumStates: 2, Trans: []Trans{
		{From: 0, Act: Action{Name: "go"}, To: 1},
		{From: 1, Act: Action{Name: "back"}, To: 0},
	}}
	b := &Process{Name: "b", NumStates: 2, Trans: []Trans{
		{From: 0, Act: Action{Name: "go"}, To: 1},
	}}
	l, err := Product([]*Process{a, b}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates != 4 {
		t.Fatalf("states = %d, want 4", l.NumStates)
	}
	// Deterministic.
	l2, _ := Product([]*Process{a, b}, nil, 0)
	if l.String() != l2.String() {
		t.Fatal("product not deterministic")
	}
}

func TestResourceExclusion(t *testing.T) {
	// Two processes competing for one resource: the global state where both
	// hold it must not exist.
	mk := func(name string) *Process {
		return &Process{Name: name, NumStates: 2, Trans: []Trans{
			{From: 0, Act: Action{Name: "get", Acq: "r"}, To: 1},
			{From: 1, Act: Action{Name: "drop", Rel: "r"}, To: 0},
		}}
	}
	l, err := Product([]*Process{mk("p"), mk("q")}, []string{"r"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// States: (0,0,free), (1,0,p), (0,1,q) — both-held is unreachable.
	if l.NumStates != 3 {
		t.Fatalf("states = %d, want 3 (mutual exclusion)", l.NumStates)
	}
	if len(l.DeadlockStates()) != 0 {
		t.Fatalf("deadlock in a release-capable system")
	}
}

func TestValidation(t *testing.T) {
	bad := &Process{Name: "x", NumStates: 1, Trans: []Trans{{From: 0, Act: Action{Name: "a"}, To: 5}}}
	if _, err := Product([]*Process{bad}, nil, 0); err == nil {
		t.Error("out-of-range transition accepted")
	}
	p := &Process{Name: "x", NumStates: 1, Trans: []Trans{{From: 0, Act: Action{Name: "a", Acq: "nope"}, To: 0}}}
	if _, err := Product([]*Process{p}, nil, 0); err == nil {
		t.Error("unknown resource accepted")
	}
	if _, err := Product([]*Process{{Name: "e", NumStates: 0}}, nil, 0); err == nil {
		t.Error("empty process accepted")
	}
	if _, err := Product(nil, []string{"r", "r"}, 0); err == nil {
		t.Error("duplicate resource accepted")
	}
	// State-space cap.
	big := &Process{Name: "b", NumStates: 3, Trans: []Trans{
		{From: 0, Act: Action{Name: "a"}, To: 1},
		{From: 1, Act: Action{Name: "b"}, To: 2},
		{From: 2, Act: Action{Name: "c"}, To: 0},
	}}
	if _, err := Product([]*Process{big, big, big, big}, nil, 2); err == nil {
		t.Error("state cap not enforced")
	}
}

func TestDiningPhilosophersDeadlock(t *testing.T) {
	// All-left-first: the classic deadlock (everyone holds one fork).
	procs, forks := Philosophers(4, -1)
	l, err := Product(procs, forks, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := l.DeadlockStates()
	if len(dead) != 1 {
		t.Fatalf("deadlock states = %d, want exactly 1 (all holding left)", len(dead))
	}
	// The paper's query agrees: the deadlocked state is reachable but has
	// no outgoing action.
	g := l.ForExistential()
	q := core.MustCompile(pattern.MustParse("_* state(s) act(_)"), g.U)
	res, err := core.Exist(g, g.Start(), q, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sIdx, _ := q.PS.Lookup("s")
	alive := map[int32]bool{}
	for _, p := range res.Pairs {
		alive[p.Subst[sIdx]] = true
	}
	deadName := "s" // state symbol of the dead state
	deadSym, ok := g.U.Syms.Lookup(deadName + itoa(int(dead[0])))
	if !ok {
		t.Fatalf("dead state symbol missing")
	}
	if alive[deadSym] {
		t.Fatalf("query reports the deadlocked state as having actions")
	}
	// Query result covers every other reachable state.
	if len(alive) != l.NumStates-1 {
		t.Fatalf("alive states = %d, want %d", len(alive), l.NumStates-1)
	}

	// One right-first philosopher breaks the cycle.
	procs, forks = Philosophers(4, 0)
	l2, err := Product(procs, forks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.DeadlockStates()) != 0 {
		t.Fatalf("asymmetric table still deadlocks")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
