// Package xmldata turns XML documents into edge-labeled graphs so that
// parametric regular path queries can be used on semi-structured data — the
// application domain the paper's introduction motivates alongside program
// analysis ("regular path queries are also important in analyzing
// semi-structured data … particularly data in XML"). Section 5.4 positions
// the framework as a generalization of XPath: unbounded repeating patterns
// via the Kleene star (not just descendant skipping), querying over graphs,
// and parameters that correlate tags, attributes, and text across a path.
//
// Encoding: each element is a vertex; the document gets a root vertex.
//
//	child(tag)         parent element → child element
//	elem(tag)          self-loop carrying the element's tag
//	attr(name, value)  self-loop per attribute
//	text(value)        self-loop carrying trimmed character data (if short)
//
// Example queries:
//
//	child('bookstore') child('book')         the books (XPath /bookstore/book)
//	_* child('title')                        all titles (XPath //title)
//	_* child('book') attr('lang', l)         books with their lang attribute
//	_* child(t) child(t)                     same tag nested directly twice —
//	                                         inexpressible in XPath 1.0
package xmldata

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"rpq/internal/graph"
	"rpq/internal/label"
)

// MaxTextSymbol is the longest character-data run stored as a text() symbol;
// longer runs are skipped (symbols are atoms, not documents).
const MaxTextSymbol = 80

// FromXML parses the document and returns its graph. The start vertex is a
// synthetic root with a child(tag) edge to the document element.
func FromXML(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	root := g.Vertex("/")
	g.SetStart(root)

	dec := xml.NewDecoder(r)
	type open struct {
		vertex int32
		tag    string
	}
	stack := []open{{vertex: root, tag: ""}}
	counts := map[string]int{}

	addSelfLoop := func(v int32, t *label.Term) error {
		return g.AddEdge(v, t, v)
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldata: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			tag := t.Name.Local
			counts[tag]++
			name := fmt.Sprintf("%s[%d]", tag, counts[tag])
			v := g.Vertex(name)
			parent := stack[len(stack)-1]
			if err := g.AddEdge(parent.vertex, label.App("child", label.Sym(tag)), v); err != nil {
				return nil, err
			}
			if err := addSelfLoop(v, label.App("elem", label.Sym(tag))); err != nil {
				return nil, err
			}
			for _, a := range t.Attr {
				al := label.App("attr", label.Sym(a.Name.Local), label.Sym(a.Value))
				if err := addSelfLoop(v, al); err != nil {
					return nil, err
				}
			}
			stack = append(stack, open{vertex: v, tag: tag})
		case xml.EndElement:
			if len(stack) <= 1 {
				return nil, fmt.Errorf("xmldata: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" || len(text) > MaxTextSymbol {
				continue
			}
			cur := stack[len(stack)-1]
			if cur.vertex == root {
				continue
			}
			if err := addSelfLoop(cur.vertex, label.App("text", label.Sym(text))); err != nil {
				return nil, err
			}
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("xmldata: %d elements left open", len(stack)-1)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("xmldata: no document element")
	}
	return g, nil
}

// FromXMLString parses a document from a string.
func FromXMLString(s string) (*graph.Graph, error) { return FromXML(strings.NewReader(s)) }
