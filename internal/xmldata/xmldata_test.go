package xmldata

import (
	"strings"
	"testing"

	"rpq/internal/core"
	"rpq/internal/pattern"
)

const bookstore = `
<bookstore>
  <book lang="en" year="2003">
    <title>Types and Programming Languages</title>
    <author>Pierce</author>
  </book>
  <book lang="de" year="2004">
    <title>Compilerbau</title>
    <author>Wirth</author>
  </book>
  <review>
    <book lang="en">
      <title>Nested book inside review</title>
    </book>
  </review>
</bookstore>
`

func q(t *testing.T, doc, pat string) []string {
	t.Helper()
	g, err := FromXMLString(doc)
	if err != nil {
		t.Fatal(err)
	}
	cq := core.MustCompile(pattern.MustParse(pat), g.U)
	res, err := core.Exist(g, g.Start(), cq, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range res.Pairs {
		out = append(out, g.VertexName(p.Vertex)+" "+p.Subst.Format(g.U, cq.PS))
	}
	return out
}

func TestChildPaths(t *testing.T) {
	// XPath /bookstore/book: exactly the two top-level books.
	got := q(t, bookstore, "child('bookstore') child('book')")
	if len(got) != 2 {
		t.Fatalf("top-level books = %v", got)
	}
	// XPath //title: all three titles.
	got = q(t, bookstore, "_* child('title')")
	if len(got) != 3 {
		t.Fatalf("all titles = %v", got)
	}
}

func TestAttributesAndParameters(t *testing.T) {
	// Books and their languages, bound through a parameter.
	got := q(t, bookstore, "_* child('book') attr('lang', l)")
	if len(got) != 3 {
		t.Fatalf("books with lang = %v", got)
	}
	en := 0
	for _, s := range got {
		if strings.Contains(s, "l↦en") {
			en++
		}
	}
	if en != 2 {
		t.Fatalf("English books = %d, want 2 (%v)", en, got)
	}
	// Correlate attribute and text along the path: English titles.
	got = q(t, bookstore, "_* child('book') attr('lang','en') child('title') text(x)")
	if len(got) != 2 {
		t.Fatalf("English titles = %v", got)
	}
}

func TestSameTagTwice(t *testing.T) {
	// _* child(t) child(t): a tag directly nested in itself — requires a
	// parameter, beyond XPath 1.0. The review/book/book chain does not
	// match (different tags); construct one that does.
	doc := `<a><b><b><c/></b></b></a>`
	got := q(t, doc, "_* child(t) child(t)")
	if len(got) != 1 || !strings.Contains(got[0], "t↦b") {
		t.Fatalf("same-tag nesting = %v", got)
	}
	if got := q(t, bookstore, "_* child(t) child(t)"); len(got) != 0 {
		t.Fatalf("bookstore has no directly self-nested tags: %v", got)
	}
}

func TestElemAnchor(t *testing.T) {
	// elem(x) self-loops let queries bind the current tag without moving.
	got := q(t, bookstore, "_* child('review') child(x) elem(x)")
	if len(got) != 1 || !strings.Contains(got[0], "x↦book") {
		t.Fatalf("review children = %v", got)
	}
}

func TestMalformedXML(t *testing.T) {
	for _, doc := range []string{
		"<a><b></a></b>",
		"<a>",
		"text only",
	} {
		if _, err := FromXMLString(doc); err == nil {
			t.Errorf("FromXMLString(%q) succeeded, want error", doc)
		}
	}
}

func TestLongTextSkipped(t *testing.T) {
	doc := "<a>" + strings.Repeat("x", MaxTextSymbol+1) + "</a>"
	g, err := FromXMLString(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Labels() {
		if strings.HasPrefix(l.Format(g.U, nil), "text(") {
			t.Fatalf("overlong text was stored: %s", l.Format(g.U, nil))
		}
	}
}

func TestVertexNaming(t *testing.T) {
	g, err := FromXMLString(bookstore)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.LookupVertex("book[1]"); !ok {
		t.Errorf("book[1] vertex missing")
	}
	if _, ok := g.LookupVertex("book[3]"); !ok {
		t.Errorf("book[3] (nested) vertex missing")
	}
	if g.VertexName(g.Start()) != "/" {
		t.Errorf("root vertex name = %q", g.VertexName(g.Start()))
	}
}
