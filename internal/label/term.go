package label

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the variants of a Term.
type Kind uint8

const (
	// KApp is a constructor applied to zero or more argument terms.
	KApp Kind = iota
	// KSym is a concrete symbol (a name or literal from the graph).
	KSym
	// KParam is a pattern parameter that can be instantiated to symbols.
	KParam
	// KWildcard matches any edge label or argument.
	KWildcard
	// KNeg is the negation of its single argument term.
	KNeg
	// KOr is an alternation of transition labels. It appears in patterns
	// like ¬(def(x)|use(x)) (Section 2.2): a label matches ¬(A|B) iff it
	// matches neither A nor B. Positive alternations at the top level of a
	// label are split into automaton alternation during pattern
	// compilation, so the matcher only ever sees KOr under KNeg.
	KOr
)

func (k Kind) String() string {
	switch k {
	case KApp:
		return "app"
	case KSym:
		return "sym"
	case KParam:
		return "param"
	case KWildcard:
		return "wildcard"
	case KNeg:
		return "neg"
	case KOr:
		return "or"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Term is the parse-time (name-based) representation of an edge label or
// transition label. Compile resolves a Term against a Universe into a CTerm
// for efficient matching.
type Term struct {
	Kind Kind
	// Name is the constructor name for KApp, the symbol name for KSym, and
	// the parameter name for KParam.
	Name string
	// Args holds the arguments for KApp and the single negated term for KNeg.
	Args []*Term
}

// App returns the application of constructor ctor to args.
func App(ctor string, args ...*Term) *Term {
	return &Term{Kind: KApp, Name: ctor, Args: args}
}

// Sym returns the symbol term for name.
func Sym(name string) *Term { return &Term{Kind: KSym, Name: name} }

// Param returns the parameter term for name.
func Param(name string) *Term { return &Term{Kind: KParam, Name: name} }

// Wildcard returns the wildcard term, written "_".
func Wildcard() *Term { return &Term{Kind: KWildcard} }

// Neg returns the negation of t, written "!t".
func Neg(t *Term) *Term { return &Term{Kind: KNeg, Args: []*Term{t}} }

// Or returns the alternation of the given labels, written "(a|b|...)".
func Or(ts ...*Term) *Term { return &Term{Kind: KOr, Args: ts} }

// String renders the term in the textual syntax accepted by Parse: bare
// identifiers for constructors and parameters, quoted identifiers for symbols
// in argument position, "_" for wildcards, and "!" for negation.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b, true)
	return b.String()
}

func (t *Term) write(b *strings.Builder, top bool) {
	switch t.Kind {
	case KApp:
		b.WriteString(t.Name)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.write(b, false)
		}
		b.WriteByte(')')
	case KSym:
		if top || needsQuote(t.Name) {
			b.WriteByte('\'')
			b.WriteString(t.Name)
			b.WriteByte('\'')
		} else if isNumeric(t.Name) {
			b.WriteString(t.Name)
		} else {
			b.WriteByte('\'')
			b.WriteString(t.Name)
			b.WriteByte('\'')
		}
	case KParam:
		b.WriteString(t.Name)
	case KWildcard:
		b.WriteByte('_')
	case KNeg:
		b.WriteByte('!')
		inner := t.Args[0]
		if inner.Kind == KNeg {
			b.WriteByte('(')
			inner.write(b, top)
			b.WriteByte(')')
		} else {
			// KOr prints its own surrounding parentheses.
			inner.write(b, top)
		}
	case KOr:
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte('|')
			}
			a.write(b, top)
		}
		b.WriteByte(')')
	}
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for _, r := range s {
		if !(r == '_' || r == '.' || r == '-' ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')) {
			return true
		}
	}
	return false
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Equal reports structural equality of two terms.
func (t *Term) Equal(o *Term) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind || t.Name != o.Name || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// IsGround reports whether the term contains no parameters, wildcards, or
// negations, i.e. whether it is a valid edge label.
func (t *Term) IsGround() bool {
	switch t.Kind {
	case KSym:
		return true
	case KApp:
		for _, a := range t.Args {
			if !a.IsGround() {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Params returns the sorted set of parameter names occurring in the term.
func (t *Term) Params() []string {
	set := map[string]bool{}
	t.collectParams(set)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (t *Term) collectParams(set map[string]bool) {
	if t.Kind == KParam {
		set[t.Name] = true
	}
	for _, a := range t.Args {
		a.collectParams(set)
	}
}

// Size returns the number of nodes in the term, the "labelsize" quantity of
// the paper's complexity analysis.
func (t *Term) Size() int {
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	return n
}

// Validate checks the structural restrictions on transition labels: the top
// level must be an application, a negation of one, or a wildcard; KNeg has
// exactly one argument; symbol and parameter terms have none.
func (t *Term) Validate() error {
	switch t.Kind {
	case KApp, KWildcard, KOr:
	case KNeg:
		if inner := t.Args[0]; inner.Kind != KApp && inner.Kind != KWildcard && inner.Kind != KNeg && inner.Kind != KOr {
			return fmt.Errorf("label: top-level negation must surround a constructor application, got %v", inner.Kind)
		}
	default:
		return fmt.Errorf("label: a transition label must be an application, negation, or wildcard, got %v", t.Kind)
	}
	return t.validateRec()
}

func (t *Term) validateRec() error {
	switch t.Kind {
	case KSym, KParam, KWildcard:
		if len(t.Args) != 0 {
			return fmt.Errorf("label: %v term must have no arguments", t.Kind)
		}
	case KNeg:
		if len(t.Args) != 1 {
			return fmt.Errorf("label: negation must have exactly one argument, got %d", len(t.Args))
		}
		return t.Args[0].validateRec()
	case KApp:
		if t.Name == "" {
			return fmt.Errorf("label: constructor application with empty name")
		}
		for _, a := range t.Args {
			if err := a.validateRec(); err != nil {
				return err
			}
		}
	case KOr:
		if len(t.Args) < 2 {
			return fmt.Errorf("label: alternation must have at least two alternatives, got %d", len(t.Args))
		}
		for _, a := range t.Args {
			if a.Kind != KApp && a.Kind != KWildcard {
				return fmt.Errorf("label: alternation alternatives must be constructor applications or wildcards, got %v", a.Kind)
			}
			if err := a.validateRec(); err != nil {
				return err
			}
		}
	}
	return nil
}
