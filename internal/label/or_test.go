package label

import (
	"math/rand"
	"testing"
)

func TestParseNegatedAlternation(t *testing.T) {
	tm, err := Parse("!(def(x)|use(x))", PatternMode)
	if err != nil {
		t.Fatal(err)
	}
	want := Neg(Or(App("def", Param("x")), App("use", Param("x"))))
	if !tm.Equal(want) {
		t.Fatalf("Parse = %s, want %s", tm, want)
	}
	// Round-trips through String.
	back := MustParse(tm.String(), PatternMode)
	if !back.Equal(tm) {
		t.Fatalf("round trip: %s vs %s", back, tm)
	}
}

func TestOrValidate(t *testing.T) {
	if err := Neg(Or(App("a"), App("b"))).Validate(); err != nil {
		t.Errorf("valid negated alternation rejected: %v", err)
	}
	if err := Or(App("a")).Validate(); err == nil {
		t.Errorf("single-alternative alternation accepted")
	}
	if err := Or(App("a"), Sym("b")).Validate(); err == nil {
		t.Errorf("alternation over a bare symbol accepted")
	}
	if err := Or(App("a"), Neg(App("b"))).Validate(); err == nil {
		t.Errorf("alternation over a negation accepted")
	}
}

func TestMatchADNegatedAlternation(t *testing.T) {
	e := newEnv()
	// The first-use pattern's label: !(def(x)|use(x)).
	tl := e.tl("!(def(x)|use(x))")
	if !tl.ADCompatible() {
		t.Fatalf("!(def(x)|use(x)) should be AD-compatible")
	}
	m := MatchAD(tl, e.el("def(a)"))
	if !m.OK || len(m.Disagrees) != 1 {
		t.Fatalf("vs def(a): %+v, want one disagree set", m)
	}
	m = MatchAD(tl, e.el("assign(a)"))
	if !m.OK || len(m.Disagrees) != 0 {
		t.Fatalf("vs assign(a): %+v, want unconditional match", m)
	}
	// An edge matching both alternatives yields two disagree sets.
	tl2 := e.tl("!(f(x,_)|f(_,x))")
	m = MatchAD(tl2, e.el("f(a,b)"))
	if !m.OK || len(m.Disagrees) != 2 {
		t.Fatalf("!(f(x,_)|f(_,x)) vs f(a,b): %+v, want two disagree sets", m)
	}
	if ps := m.DisagreeParams(); len(ps) != 1 {
		t.Fatalf("DisagreeParams = %v, want the single parameter x", ps)
	}
	// A ground alternative that matches kills the label.
	tl3 := e.tl("!(f('a')|g(x))")
	if MatchAD(tl3, e.el("f(a)")).OK {
		t.Errorf("!(f('a')|g(x)) matched f(a)")
	}
	if !MatchAD(tl3, e.el("f(b)")).OK {
		t.Errorf("!(f('a')|g(x)) should match f(b)")
	}
}

func TestMatchGroundOrAgainstAD(t *testing.T) {
	// Same AD-vs-ground agreement property as TestMatchGroundAgainstAD, but
	// exercising negated alternations.
	e := newEnv()
	labels := []*CTerm{
		e.tl("!(def(x)|use(x))"),
		e.tl("!(f(x,_)|f(_,x))"),
		e.tl("!(f('a')|g(x))"),
		e.tl("use(y,!(f(x)|g(x)))"),
	}
	edges := []*CTerm{
		e.el("def(a)"), e.el("use(b)"), e.el("f(a,b)"), e.el("f(a)"),
		e.el("g(b)"), e.el("use(a,f(b))"), e.el("use(b,g(a))"), e.el("h(a)"),
	}
	syms := e.u.AllSymbols()
	pars := e.ps.Len()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		tl := labels[rng.Intn(len(labels))]
		el := edges[rng.Intn(len(edges))]
		th := make([]int32, pars)
		for i := range th {
			th[i] = syms[rng.Intn(len(syms))]
		}
		want := MatchGround(tl, el, th)
		m := MatchAD(tl, el)
		got := false
		if m.OK {
			got = true
			for _, b := range m.Agree {
				if th[b.Param] != b.Sym {
					got = false
				}
			}
			for _, d := range m.Disagrees {
				if !got {
					break
				}
				contra := false
				for _, b := range d {
					if th[b.Param] != b.Sym {
						contra = true
					}
				}
				got = got && contra
			}
		}
		if got != want {
			t.Fatalf("trial %d: tl=%s el=%s θ=%v: AD %v, ground %v (%+v)",
				trial, tl.Format(e.u, e.ps), el.Format(e.u, nil), th, got, want, m)
		}
	}
}
