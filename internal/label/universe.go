// Package label implements edge labels and transition labels for parametric
// regular path queries: constructor terms over symbols, parameters,
// wildcards, and negations, together with interning and the match operation
// of Liu et al., "Parametric Regular Path Queries" (PLDI 2004), Section 2.4
// and Section 3.
//
// An edge label is a ground term: a constructor applied to zero or more
// arguments, each a symbol or, recursively, a constructor application. A
// transition label additionally allows parameters, wildcards, and negations
// in any argument position or at the top level.
package label

// NoSym is the sentinel for "no symbol" / "unbound".
const NoSym int32 = -1

// Interner assigns dense int32 keys to strings. Keys are assigned in
// first-seen order starting at 0. The zero value is ready to use.
type Interner struct {
	byName map[string]int32
	names  []string
}

// Intern returns the key for name, assigning a fresh key if needed.
func (in *Interner) Intern(name string) int32 {
	if in.byName == nil {
		in.byName = make(map[string]int32)
	}
	if k, ok := in.byName[name]; ok {
		return k
	}
	k := int32(len(in.names))
	in.byName[name] = k
	in.names = append(in.names, name)
	return k
}

// Lookup returns the key for name and whether it has been interned.
func (in *Interner) Lookup(name string) (int32, bool) {
	k, ok := in.byName[name]
	return k, ok
}

// Name returns the string for key k. It panics if k was never assigned.
func (in *Interner) Name(k int32) string { return in.names[k] }

// Len reports the number of interned strings.
func (in *Interner) Len() int { return len(in.names) }

// Names returns the interned strings in key order. The returned slice is
// owned by the interner and must not be modified.
func (in *Interner) Names() []string { return in.names }

// Universe interns the constructor names and symbol names shared between a
// graph and the patterns queried against it. Patterns are compiled against
// the universe of the graph they will run on, so that symbol keys agree.
type Universe struct {
	Ctors Interner
	Syms  Interner
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe { return &Universe{} }

// NumSymbols reports the number of distinct symbols interned, which is the
// "symbs" quantity of the paper's complexity analysis (Figure 2).
func (u *Universe) NumSymbols() int { return u.Syms.Len() }

// AllSymbols returns the keys of every interned symbol, in key order.
func (u *Universe) AllSymbols() []int32 {
	out := make([]int32, u.Syms.Len())
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
