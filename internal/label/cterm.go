package label

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CTerm is a Term compiled against a Universe: constructor and symbol names
// are resolved to dense integer keys, and parameter names to indices in a
// pattern's parameter space. CTerms are immutable after compilation.
type CTerm struct {
	Kind  Kind
	Ctor  int32    // constructor key, for KApp
	Sym   int32    // symbol key, for KSym
	Param int32    // parameter index, for KParam
	Args  []*CTerm // arguments for KApp; the single body for KNeg

	// size caches Size(); numNegParams caches the count of negations that
	// contain at least one parameter, used by the matcher dispatch.
	size         int
	numNegParams int
	nestedNeg    bool
	params       []int32 // sorted parameter indices occurring in the term
	key          string  // canonical key, distinct terms have distinct keys
}

// ParamSpace assigns dense indices to parameter names across the labels of
// one compiled pattern. The zero value is ready to use.
type ParamSpace struct {
	in Interner
}

// Index interns the parameter name and returns its index.
func (ps *ParamSpace) Index(name string) int32 { return ps.in.Intern(name) }

// Lookup returns the index of name if it has been interned.
func (ps *ParamSpace) Lookup(name string) (int32, bool) { return ps.in.Lookup(name) }

// Name returns the name of parameter i.
func (ps *ParamSpace) Name(i int32) string { return ps.in.Name(i) }

// Len reports the number of parameters, the "pars" quantity of Figure 2.
func (ps *ParamSpace) Len() int { return ps.in.Len() }

// Names returns the parameter names in index order.
func (ps *ParamSpace) Names() []string { return ps.in.Names() }

// Compile resolves t against the universe u and parameter space ps.
// Compiling interns any constructor or symbol names not yet present in u.
func Compile(t *Term, u *Universe, ps *ParamSpace) (*CTerm, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	c := compileRec(t, u, ps)
	c.finish()
	return c, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(t *Term, u *Universe, ps *ParamSpace) *CTerm {
	c, err := Compile(t, u, ps)
	if err != nil {
		panic(err)
	}
	return c
}

// CompileGround resolves a ground term (edge label) against u. It fails if
// the term is not ground.
func CompileGround(t *Term, u *Universe) (*CTerm, error) {
	if !t.IsGround() {
		return nil, fmt.Errorf("label: %s is not ground", t)
	}
	c := compileRec(t, u, nil)
	c.finish()
	return c, nil
}

func compileRec(t *Term, u *Universe, ps *ParamSpace) *CTerm {
	c := &CTerm{Kind: t.Kind, Ctor: -1, Sym: NoSym, Param: -1}
	switch t.Kind {
	case KApp:
		c.Ctor = u.Ctors.Intern(t.Name)
		c.Args = make([]*CTerm, len(t.Args))
		for i, a := range t.Args {
			c.Args[i] = compileRec(a, u, ps)
		}
	case KSym:
		c.Sym = u.Syms.Intern(t.Name)
	case KParam:
		if ps == nil {
			panic("label: parameter in ground compilation")
		}
		c.Param = ps.Index(t.Name)
	case KNeg:
		c.Args = []*CTerm{compileRec(t.Args[0], u, ps)}
	case KOr:
		c.Args = make([]*CTerm, len(t.Args))
		for i, a := range t.Args {
			c.Args[i] = compileRec(a, u, ps)
		}
	case KWildcard:
	}
	return c
}

// finish computes the cached analyses (size, parameter set, negation
// classification, canonical key) on every node of a freshly built CTerm
// tree, bottom-up.
func (c *CTerm) finish() {
	for _, a := range c.Args {
		a.finish()
	}
	c.size = 1
	set := map[int32]bool{}
	switch c.Kind {
	case KParam:
		set[c.Param] = true
	case KNeg:
		inner := c.Args[0]
		c.size += inner.size
		for _, p := range inner.params {
			set[p] = true
		}
		c.numNegParams = inner.numNegParams
		if len(inner.params) > 0 {
			c.numNegParams++
		}
		c.nestedNeg = inner.nestedNeg || inner.containsNeg()
	case KApp, KOr:
		for _, a := range c.Args {
			c.size += a.size
			for _, p := range a.params {
				set[p] = true
			}
			c.numNegParams += a.numNegParams
			c.nestedNeg = c.nestedNeg || a.nestedNeg
		}
	}
	c.params = make([]int32, 0, len(set))
	for p := range set {
		c.params = append(c.params, p)
	}
	sort.Slice(c.params, func(i, j int) bool { return c.params[i] < c.params[j] })
	var b strings.Builder
	c.writeKey(&b)
	c.key = b.String()
}

// containsNeg reports whether a negation node occurs anywhere in the term.
func (c *CTerm) containsNeg() bool {
	if c.Kind == KNeg {
		return true
	}
	for _, a := range c.Args {
		if a.containsNeg() {
			return true
		}
	}
	return false
}

func (c *CTerm) writeKey(b *strings.Builder) {
	switch c.Kind {
	case KApp:
		b.WriteByte('a')
		b.WriteString(strconv.Itoa(int(c.Ctor)))
		b.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.writeKey(b)
		}
		b.WriteByte(')')
	case KSym:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(int(c.Sym)))
	case KParam:
		b.WriteByte('p')
		b.WriteString(strconv.Itoa(int(c.Param)))
	case KWildcard:
		b.WriteByte('w')
	case KNeg:
		b.WriteByte('!')
		c.Args[0].writeKey(b)
	case KOr:
		b.WriteByte('o')
		b.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteByte('|')
			}
			a.writeKey(b)
		}
		b.WriteByte(')')
	}
}

// NegOr builds the compiled label ¬(a1|a2|…) from already compiled
// alternatives (or ¬a1 if only one is given). It is used by the Section 5.4
// violation-query construction to skip all operations a discipline does not
// mention.
func NegOr(alts ...*CTerm) *CTerm {
	if len(alts) == 0 {
		panic("label: NegOr needs at least one alternative")
	}
	inner := alts[0]
	if len(alts) > 1 {
		inner = &CTerm{Kind: KOr, Ctor: -1, Sym: NoSym, Param: -1, Args: alts}
	}
	c := &CTerm{Kind: KNeg, Ctor: -1, Sym: NoSym, Param: -1, Args: []*CTerm{inner}}
	c.finish()
	return c
}

// Key returns a canonical string key: two compiled terms over the same
// universe have equal keys iff they are structurally equal.
func (c *CTerm) Key() string { return c.key }

// Size returns the node count ("labelsize" in Figure 2).
func (c *CTerm) Size() int { return c.size }

// Params returns the sorted parameter indices occurring in the term.
func (c *CTerm) Params() []int32 { return c.params }

// HasParams reports whether any parameter occurs in the term.
func (c *CTerm) HasParams() bool { return len(c.params) > 0 }

// NumNegWithParams reports the number of negation nodes whose bodies contain
// parameters. Labels with at most one such negation (and no nested negation)
// are handled by the efficient agree/disagree matcher; others require the
// generic extension-enumerating matcher (Section 3, "Negations and
// wildcards").
func (c *CTerm) NumNegWithParams() int { return c.numNegParams }

// HasNestedNeg reports whether a negation occurs inside another negation.
func (c *CTerm) HasNestedNeg() bool { return c.nestedNeg }

// ADCompatible reports whether the label can be matched with the
// agree/disagree mechanism: at most one parameter-carrying negation and no
// nested negations.
func (c *CTerm) ADCompatible() bool { return c.numNegParams <= 1 && !c.nestedNeg }

// IsGround reports whether the compiled term is a ground edge label.
func (c *CTerm) IsGround() bool {
	switch c.Kind {
	case KSym:
		return true
	case KApp:
		for _, a := range c.Args {
			if !a.IsGround() {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// String renders the compiled term using the universe-free canonical key.
// For human-readable output use Format with the owning universe.
func (c *CTerm) String() string { return c.key }

// Format renders the compiled term with names resolved against u and ps
// (ps may be nil for ground terms).
func (c *CTerm) Format(u *Universe, ps *ParamSpace) string {
	var b strings.Builder
	c.format(&b, u, ps, true)
	return b.String()
}

func (c *CTerm) format(b *strings.Builder, u *Universe, ps *ParamSpace, top bool) {
	switch c.Kind {
	case KApp:
		b.WriteString(u.Ctors.Name(c.Ctor))
		b.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.format(b, u, ps, false)
		}
		b.WriteByte(')')
	case KSym:
		name := u.Syms.Name(c.Sym)
		if isNumeric(name) {
			b.WriteString(name)
		} else {
			b.WriteByte('\'')
			b.WriteString(name)
			b.WriteByte('\'')
		}
	case KParam:
		if ps != nil {
			b.WriteString(ps.Name(c.Param))
		} else {
			fmt.Fprintf(b, "p%d", c.Param)
		}
	case KWildcard:
		b.WriteByte('_')
	case KNeg:
		b.WriteByte('!')
		inner := c.Args[0]
		if inner.Kind == KNeg {
			b.WriteByte('(')
			inner.format(b, u, ps, top)
			b.WriteByte(')')
		} else {
			// KOr prints its own surrounding parentheses.
			inner.format(b, u, ps, top)
		}
	case KOr:
		b.WriteByte('(')
		for i, a := range c.Args {
			if i > 0 {
				b.WriteByte('|')
			}
			a.format(b, u, ps, top)
		}
		b.WriteByte(')')
	}
}

// Instantiate returns a copy of c with every parameter replaced by its
// binding in subst (indexed by parameter; NoSym means unbound). It reports
// whether the result is ground (no unbound parameters remain). Negations and
// wildcards are preserved.
func (c *CTerm) Instantiate(subst []int32) (*CTerm, bool) {
	out, ground := c.instantiateRec(subst)
	out.finish()
	return out, ground
}

func (c *CTerm) instantiateRec(subst []int32) (*CTerm, bool) {
	switch c.Kind {
	case KParam:
		if int(c.Param) < len(subst) && subst[c.Param] != NoSym {
			return &CTerm{Kind: KSym, Ctor: -1, Param: -1, Sym: subst[c.Param]}, true
		}
		cp := *c
		return &cp, false
	case KSym, KWildcard:
		cp := *c
		return &cp, true
	case KNeg:
		inner, g := c.Args[0].instantiateRec(subst)
		return &CTerm{Kind: KNeg, Ctor: -1, Param: -1, Sym: NoSym, Args: []*CTerm{inner}}, g
	case KOr:
		args := make([]*CTerm, len(c.Args))
		ground := true
		for i, a := range c.Args {
			na, g := a.instantiateRec(subst)
			args[i] = na
			ground = ground && g
		}
		return &CTerm{Kind: KOr, Ctor: -1, Param: -1, Sym: NoSym, Args: args}, ground
	case KApp:
		args := make([]*CTerm, len(c.Args))
		ground := true
		for i, a := range c.Args {
			na, g := a.instantiateRec(subst)
			args[i] = na
			ground = ground && g
		}
		return &CTerm{Kind: KApp, Ctor: c.Ctor, Param: -1, Sym: NoSym, Args: args}, ground
	}
	panic("unreachable")
}

// PositivePositions calls fn for every (constructor key, argument index)
// position at which a parameter occurs positively (outside any negation).
// It is used for parameter-domain refinement (Section 5.3).
func (c *CTerm) PositivePositions(fn func(param int32, ctor int32, arg int)) {
	c.positivePositions(fn, false)
}

func (c *CTerm) positivePositions(fn func(param, ctor int32, arg int), underNeg bool) {
	switch c.Kind {
	case KApp:
		for i, a := range c.Args {
			if a.Kind == KParam && !underNeg {
				fn(a.Param, c.Ctor, i)
			}
			a.positivePositions(fn, underNeg)
		}
	case KNeg:
		c.Args[0].positivePositions(fn, true)
	case KOr:
		for _, a := range c.Args {
			a.positivePositions(fn, underNeg)
		}
	}
}

// AllPositions calls fn for every (constructor key, argument index) position
// at which a parameter occurs, whether positively or under negation.
func (c *CTerm) AllPositions(fn func(param int32, ctor int32, arg int)) {
	var rec func(t *CTerm)
	rec = func(t *CTerm) {
		switch t.Kind {
		case KApp:
			for i, a := range t.Args {
				if a.Kind == KParam {
					fn(a.Param, t.Ctor, i)
				}
				rec(a)
			}
		case KNeg, KOr:
			for _, a := range t.Args {
				rec(a)
			}
		}
	}
	rec(c)
}
